package main

import (
	"os"
	"path/filepath"
	"testing"

	"silkmoth"
)

func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig("containment", "eds", "skyline", 0.8, 0.7, 0, true, true, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Metric != silkmoth.SetContainment || cfg.Similarity != silkmoth.Eds ||
		cfg.Scheme != silkmoth.SchemeSkyline {
		t.Errorf("cfg = %+v", cfg)
	}
	if !cfg.DisableCheckFilter || !cfg.DisableNNFilter || !cfg.DisableReduction {
		t.Error("disable flags not carried")
	}
	if cfg.Concurrency != 4 {
		t.Error("workers not carried")
	}
	for _, simName := range []string{"jaccard", "neds"} {
		if _, err := buildConfig("similarity", simName, "dichotomy", 0.7, 0, 0, false, false, false, 0); err != nil {
			t.Errorf("sim %s rejected: %v", simName, err)
		}
	}
	if _, err := buildConfig("bogus", "jaccard", "dichotomy", 0.7, 0, 0, false, false, false, 0); err == nil {
		t.Error("bogus metric accepted")
	}
	if _, err := buildConfig("similarity", "bogus", "dichotomy", 0.7, 0, 0, false, false, false, 0); err == nil {
		t.Error("bogus similarity accepted")
	}
	if _, err := buildConfig("similarity", "jaccard", "bogus", 0.7, 0, 0, false, false, false, 0); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestLoadSetsFromSetFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sets.txt")
	if err := os.WriteFile(path, []byte("a: x y | z\nb: w\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sets, err := loadSets(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 || sets[0].Name != "a" || len(sets[0].Elements) != 2 {
		t.Errorf("sets = %+v", sets)
	}
}

func TestLoadSetsFromCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(path, []byte("c1,c2\na,b\nc,d\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sets, err := loadSets("", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 || len(sets[0].Elements) != 2 {
		t.Errorf("csv sets = %+v", sets)
	}
}

func TestLoadSetsErrors(t *testing.T) {
	if _, err := loadSets("", ""); err == nil {
		t.Error("no input should fail")
	}
	if _, err := loadSets("a", "b"); err == nil {
		t.Error("both inputs should fail")
	}
	if _, err := loadSets(filepath.Join(t.TempDir(), "missing"), ""); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := loadSets("", filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing csv should fail")
	}
}
