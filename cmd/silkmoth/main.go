// Command silkmoth finds related sets in plain-text set files or CSV
// columns, exposing the library's discovery and search modes.
//
// Usage:
//
//	silkmoth -mode discover -input sets.txt -metric similarity -delta 0.8
//	silkmoth -mode search -input sets.txt -ref query.txt -metric containment -delta 0.7
//	silkmoth -mode discover -csv table.csv -metric containment -delta 0.9
//
// Set files hold one set per line: an optional "name:" prefix, then
// elements separated by '|'. With -csv, each column of the file becomes a
// set of its distinct values (the inclusion-dependency use case).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"silkmoth"
	"silkmoth/internal/dataset"
)

func main() {
	var (
		mode      = flag.String("mode", "discover", "discover (all related pairs) or search (related to -ref)")
		input     = flag.String("input", "", "set file to index (one set per line)")
		csvFile   = flag.String("csv", "", "CSV file whose columns become sets (alternative to -input)")
		refFile   = flag.String("ref", "", "set file with reference sets (search mode)")
		metric    = flag.String("metric", "similarity", "similarity or containment")
		simName   = flag.String("sim", "jaccard", "element similarity: jaccard, eds, or neds")
		delta     = flag.Float64("delta", 0.7, "relatedness threshold δ in (0,1]")
		alpha     = flag.Float64("alpha", 0, "element similarity threshold α in [0,1)")
		q         = flag.Int("q", 0, "gram length for edit similarities (0 = auto)")
		scheme    = flag.String("scheme", "dichotomy", "signature scheme: dichotomy, skyline, weighted, combunweighted")
		noCheck   = flag.Bool("no-check", false, "disable the check filter")
		noNN      = flag.Bool("no-nn", false, "disable the nearest-neighbor filter")
		noRed     = flag.Bool("no-reduction", false, "disable reduction-based verification")
		workers   = flag.Int("workers", 0, "parallel search passes (0 = GOMAXPROCS)")
		showStats = flag.Bool("stats", false, "print the pruning funnel to stderr")
	)
	flag.Parse()

	cfg, err := buildConfig(*metric, *simName, *scheme, *delta, *alpha, *q, *noCheck, *noNN, *noRed, *workers)
	if err != nil {
		fatal(err)
	}

	sets, err := loadSets(*input, *csvFile)
	if err != nil {
		fatal(err)
	}
	eng, err := silkmoth.NewEngine(sets, cfg)
	if err != nil {
		fatal(err)
	}

	switch *mode {
	case "discover":
		for _, p := range eng.Discover() {
			fmt.Printf("%s\t%s\t%.4f\t%.4f\n", p.RName, p.SName, p.Relatedness, p.MatchingScore)
		}
	case "search":
		if *refFile == "" {
			fatal(fmt.Errorf("search mode requires -ref"))
		}
		refs, err := dataset.ReadRawSetsFile(*refFile)
		if err != nil {
			fatal(err)
		}
		for _, r := range refs {
			ms, err := eng.Search(silkmoth.Set{Name: r.Name, Elements: r.Elements})
			if err != nil {
				fatal(err)
			}
			for _, m := range ms {
				fmt.Printf("%s\t%s\t%.4f\t%.4f\n", r.Name, m.Name, m.Relatedness, m.MatchingScore)
			}
		}
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	if *showStats {
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "passes=%d candidates=%d after-check=%d after-nn=%d verified=%d\n",
			st.SearchPasses, st.Candidates, st.AfterCheck, st.AfterNN, st.Verified)
	}
}

func buildConfig(metric, simName, scheme string, delta, alpha float64, q int, noCheck, noNN, noRed bool, workers int) (silkmoth.Config, error) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := silkmoth.Config{
		Delta: delta, Alpha: alpha, Q: q,
		DisableCheckFilter: noCheck,
		DisableNNFilter:    noNN,
		DisableReduction:   noRed,
		Concurrency:        workers,
	}
	switch metric {
	case "similarity":
		cfg.Metric = silkmoth.SetSimilarity
	case "containment":
		cfg.Metric = silkmoth.SetContainment
	default:
		return cfg, fmt.Errorf("unknown -metric %q", metric)
	}
	switch simName {
	case "jaccard":
		cfg.Similarity = silkmoth.Jaccard
	case "eds":
		cfg.Similarity = silkmoth.Eds
	case "neds":
		cfg.Similarity = silkmoth.NEds
	default:
		return cfg, fmt.Errorf("unknown -sim %q", simName)
	}
	switch scheme {
	case "dichotomy":
		cfg.Scheme = silkmoth.SchemeDichotomy
	case "skyline":
		cfg.Scheme = silkmoth.SchemeSkyline
	case "weighted":
		cfg.Scheme = silkmoth.SchemeWeighted
	case "combunweighted":
		cfg.Scheme = silkmoth.SchemeCombUnweighted
	default:
		return cfg, fmt.Errorf("unknown -scheme %q", scheme)
	}
	return cfg, nil
}

func loadSets(input, csvFile string) ([]silkmoth.Set, error) {
	var raws []dataset.RawSet
	var err error
	switch {
	case input != "" && csvFile != "":
		return nil, fmt.Errorf("use either -input or -csv, not both")
	case input != "":
		raws, err = dataset.ReadRawSetsFile(input)
	case csvFile != "":
		f, ferr := os.Open(csvFile)
		if ferr != nil {
			return nil, ferr
		}
		defer f.Close()
		raws, err = dataset.ReadCSVColumns(f, "")
	default:
		return nil, fmt.Errorf("one of -input or -csv is required")
	}
	if err != nil {
		return nil, err
	}
	sets := make([]silkmoth.Set, len(raws))
	for i, r := range raws {
		sets[i] = silkmoth.Set{Name: r.Name, Elements: r.Elements}
	}
	return sets, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silkmoth:", err)
	os.Exit(1)
}
