// Command silkmoth finds related sets in plain-text set files or CSV
// columns, exposing the library's discovery and search modes.
//
// Usage:
//
//	silkmoth -mode discover -input sets.txt -metric similarity -delta 0.8
//	silkmoth -mode search -input sets.txt -ref query.txt -metric containment -delta 0.7
//	silkmoth -mode discover -csv table.csv -metric containment -delta 0.9
//
// Set files hold one set per line: an optional "name:" prefix, then
// elements separated by '|'. With -csv, each column of the file becomes a
// set of its distinct values (the inclusion-dependency use case).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"silkmoth"
	"silkmoth/internal/dataset"
)

func main() {
	var (
		mode      = flag.String("mode", "discover", "discover (all related pairs) or search (related to -ref)")
		input     = flag.String("input", "", "set file to index (one set per line)")
		csvFile   = flag.String("csv", "", "CSV file whose columns become sets (alternative to -input)")
		refFile   = flag.String("ref", "", "set file with reference sets (search mode)")
		metric    = flag.String("metric", "similarity", "similarity or containment")
		simName   = flag.String("sim", "jaccard", "element similarity: jaccard, eds, or neds")
		delta     = flag.Float64("delta", 0.7, "relatedness threshold δ in (0,1]")
		alpha     = flag.Float64("alpha", 0, "element similarity threshold α in [0,1)")
		q         = flag.Int("q", 0, "gram length for edit similarities (0 = auto)")
		scheme    = flag.String("scheme", "dichotomy", "signature scheme: dichotomy, skyline, weighted, combunweighted, auto (per-query cost-based)")
		noCheck   = flag.Bool("no-check", false, "disable the check filter")
		noNN      = flag.Bool("no-nn", false, "disable the nearest-neighbor filter")
		noRed     = flag.Bool("no-reduction", false, "disable reduction-based verification")
		workers   = flag.Int("workers", 0, "parallel search passes (0 = GOMAXPROCS)")
		topK      = flag.Int("k", 0, "search mode: keep only the k most related sets per reference (0 = all)")
		explain   = flag.Bool("explain", false, "print each query's plan (chosen scheme + pruning funnel + time) to stderr")
		showStats = flag.Bool("stats", false, "print the pruning funnel to stderr")
	)
	flag.Parse()

	cfg, err := buildConfig(*metric, *simName, *scheme, *delta, *alpha, *q, *noCheck, *noNN, *noRed, *workers)
	if err != nil {
		fatal(err)
	}

	sets, err := loadSets(*input, *csvFile)
	if err != nil {
		fatal(err)
	}
	eng, err := silkmoth.NewEngine(sets, cfg)
	if err != nil {
		fatal(err)
	}

	switch *mode {
	case "discover":
		var opts []silkmoth.QueryOption
		var ex silkmoth.Explain
		if *explain {
			opts = append(opts, silkmoth.WithExplain(&ex))
		}
		for _, p := range eng.Discover(opts...) {
			fmt.Printf("%s\t%s\t%.4f\t%.4f\n", p.RName, p.SName, p.Relatedness, p.MatchingScore)
		}
		if *explain {
			printExplain("discover", &ex)
		}
	case "search":
		if *refFile == "" {
			fatal(fmt.Errorf("search mode requires -ref"))
		}
		refs, err := dataset.ReadRawSetsFile(*refFile)
		if err != nil {
			fatal(err)
		}
		for _, r := range refs {
			var opts []silkmoth.QueryOption
			var ex silkmoth.Explain
			if *topK > 0 {
				opts = append(opts, silkmoth.WithK(*topK))
			}
			if *explain {
				opts = append(opts, silkmoth.WithExplain(&ex))
			}
			ms, err := eng.Search(silkmoth.Set{Name: r.Name, Elements: r.Elements}, opts...)
			if err != nil {
				fatal(err)
			}
			for _, m := range ms {
				fmt.Printf("%s\t%s\t%.4f\t%.4f\n", r.Name, m.Name, m.Relatedness, m.MatchingScore)
			}
			if *explain {
				printExplain(r.Name, &ex)
			}
		}
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	if *showStats {
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "passes=%d candidates=%d after-check=%d after-nn=%d verified=%d\n",
			st.SearchPasses, st.Candidates, st.AfterCheck, st.AfterNN, st.Verified)
	}
}

func buildConfig(metric, simName, scheme string, delta, alpha float64, q int, noCheck, noNN, noRed bool, workers int) (silkmoth.Config, error) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := silkmoth.Config{
		Delta: delta, Alpha: alpha, Q: q,
		DisableCheckFilter: noCheck,
		DisableNNFilter:    noNN,
		DisableReduction:   noRed,
		Concurrency:        workers,
	}
	switch metric {
	case "similarity":
		cfg.Metric = silkmoth.SetSimilarity
	case "containment":
		cfg.Metric = silkmoth.SetContainment
	default:
		return cfg, fmt.Errorf("unknown -metric %q", metric)
	}
	switch simName {
	case "jaccard":
		cfg.Similarity = silkmoth.Jaccard
	case "eds":
		cfg.Similarity = silkmoth.Eds
	case "neds":
		cfg.Similarity = silkmoth.NEds
	default:
		return cfg, fmt.Errorf("unknown -sim %q", simName)
	}
	sc, err := silkmoth.ParseScheme(scheme)
	if err != nil {
		return cfg, fmt.Errorf("unknown -scheme %q", scheme)
	}
	cfg.Scheme = sc
	return cfg, nil
}

// printExplain renders one query's plan on stderr: the chosen concrete
// scheme and the per-stage pruning funnel.
func printExplain(label string, ex *silkmoth.Explain) {
	fmt.Fprintf(os.Stderr,
		"explain %s: scheme=%s passes=%d sig-tokens=%d candidates=%d after-check=%d after-nn=%d verified=%d full-scans=%d elapsed=%s\n",
		label, ex.Scheme, ex.Passes, ex.SigTokens, ex.Candidates, ex.AfterCheck, ex.AfterNN, ex.Verified, ex.FullScans, ex.Elapsed)
}

func loadSets(input, csvFile string) ([]silkmoth.Set, error) {
	var raws []dataset.RawSet
	var err error
	switch {
	case input != "" && csvFile != "":
		return nil, fmt.Errorf("use either -input or -csv, not both")
	case input != "":
		raws, err = dataset.ReadRawSetsFile(input)
	case csvFile != "":
		f, ferr := os.Open(csvFile)
		if ferr != nil {
			return nil, ferr
		}
		defer f.Close()
		raws, err = dataset.ReadCSVColumns(f, "")
	default:
		return nil, fmt.Errorf("one of -input or -csv is required")
	}
	if err != nil {
		return nil, err
	}
	sets := make([]silkmoth.Set, len(raws))
	for i, r := range raws {
		sets[i] = silkmoth.Set{Name: r.Name, Elements: r.Elements}
	}
	return sets, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silkmoth:", err)
	os.Exit(1)
}
