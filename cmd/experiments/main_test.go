package main

import (
	"strings"
	"testing"
)

// TestRunFigure regenerates one cheap figure at tiny scale and checks the
// report's shape: a header line plus at least one data row per variant.
func TestRunFigure(t *testing.T) {
	var buf strings.Builder
	if err := run("fig4", 0.02, 1, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected header plus rows, got:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "figure") {
		t.Fatalf("missing header: %q", lines[0])
	}
	for _, variant := range []string{"NOOPT", "OPT"} {
		if !strings.Contains(out, variant) {
			t.Errorf("output missing variant %s:\n%s", variant, out)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf strings.Builder
	if err := run("fig99", 0.02, 1, &buf); err == nil {
		t.Fatal("unknown figure should fail")
	}
}
