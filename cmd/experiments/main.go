// Command experiments regenerates the paper's evaluation tables and figures
// (§8) on the synthetic corpora. Each row reports one variant at one
// parameter point: wall time, the candidate funnel (signature → check →
// nearest-neighbor → verified), and the result count.
//
// Usage:
//
//	experiments -figure all            # every table and figure
//	experiments -figure fig5b          # one figure
//	experiments -figure fig8a -scale 5 # larger corpus (paper ≈ scale 50-170)
//
// Figures: table3, fig4, fig5a-c, fig6a-c, fig7, fig8a-b, fig9a-c.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"silkmoth/internal/harness"
)

func main() {
	var (
		figure = flag.String("figure", "all", "experiment id or 'all': "+strings.Join(harness.Figures, ", "))
		scale  = flag.Float64("scale", 1, "corpus size multiplier (1 ≈ minutes on a laptop)")
		seed   = flag.Int64("seed", 1, "corpus generator seed")
	)
	flag.Parse()

	if err := run(*figure, *scale, *seed, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run prints the header and executes one figure (or all) at the given
// scale, writing rows to out.
func run(figure string, scale float64, seed int64, out io.Writer) error {
	harness.WriteHeader(out)
	_, err := harness.RunFigure(figure, scale, seed, out)
	return err
}
