package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot resolves the repository root so the linter runs against the
// real tree regardless of the test's working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

func runLint(t *testing.T, root string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/silkmothlint"}, args...)...)
	cmd.Dir = root
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	if err == nil {
		return 0, buf.String()
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), buf.String()
	}
	t.Fatalf("running silkmothlint: %v\n%s", err, buf.String())
	return -1, ""
}

// TestTreeIsClean is the meta-gate: the real tree must produce zero
// diagnostics. If this fails, either fix the violation or add a reasoned
// //silkmothlint:ignore — do not weaken the analyzer.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and analyzes the whole module")
	}
	code, out := runLint(t, moduleRoot(t), "./...")
	if code != 0 {
		t.Fatalf("silkmothlint ./... exited %d:\n%s", code, out)
	}
}

// TestFixturesAreDirty proves the analyzers actually fire: each fixture
// package must fail the lint run.
func TestFixturesAreDirty(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the linter")
	}
	root := moduleRoot(t)
	fixtures := []string{
		"internal/lint/testdata/src/hotpathfix",
		"internal/lint/testdata/src/internal/wal",
		"internal/lint/testdata/src/internal/core",
		"internal/lint/testdata/src/internal/server",
	}
	for _, dir := range fixtures {
		code, out := runLint(t, root, "-dir", dir)
		if code != 1 {
			t.Errorf("silkmothlint -dir %s exited %d, want 1:\n%s", dir, code, out)
		}
	}
}
