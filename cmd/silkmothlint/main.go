// Command silkmothlint runs the repo-invariant analyzer suite
// (internal/lint) over the module and exits non-zero if any contract is
// violated. It is the CI gate that keeps the hot-path, durability,
// context, and metric-naming invariants machine-checked.
//
// Usage:
//
//	silkmothlint [-analyzers hotpath,fsyncerr,ctxflow,metricnames] [packages]
//	silkmothlint -dir internal/lint/testdata/src/internal/wal
//	silkmothlint -list
//
// With no package arguments it analyzes ./... . The -dir form loads a bare
// directory (used for the testdata fixture packages, which the go tool
// refuses to list); the directory's pseudo import path is derived from its
// location under testdata/src/ so analyzer scoping applies unchanged.
package main

import (
	"flag"
	"fmt"
	"os"

	"silkmoth/internal/lint"
)

func main() {
	analyzerNames := flag.String("analyzers", "", "comma-separated analyzers to run (default: all)")
	dir := flag.String("dir", "", "analyze a single directory instead of package patterns")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Parse()

	analyzers, err := lint.ByName(*analyzerNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	var pkgs []*lint.Package
	if *dir != "" {
		pkg, err := lint.LoadDir(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pkgs = []*lint.Package{pkg}
	} else {
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		pkgs, err = lint.Load(patterns...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "silkmothlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
