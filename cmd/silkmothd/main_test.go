package main

import (
	"os"
	"path/filepath"
	"testing"

	"silkmoth"
)

func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig("containment", "eds", "skyline", 0.8, 0.6, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Metric != silkmoth.SetContainment || cfg.Similarity != silkmoth.Eds ||
		cfg.Scheme != silkmoth.SchemeSkyline || cfg.Delta != 0.8 || cfg.Alpha != 0.6 ||
		cfg.Q != 3 || cfg.Concurrency != 4 || cfg.Shards != 2 {
		t.Fatalf("cfg = %+v", cfg)
	}

	if cfg, err := buildConfig("similarity", "jaccard", "dichotomy", 0.7, 0, 0, 0, 1); err != nil {
		t.Fatal(err)
	} else if cfg.Concurrency < 1 {
		t.Fatalf("workers 0 should resolve to GOMAXPROCS, got %d", cfg.Concurrency)
	}

	for _, bad := range [][3]string{
		{"nope", "jaccard", "dichotomy"},
		{"similarity", "nope", "dichotomy"},
		{"similarity", "jaccard", "nope"},
	} {
		if _, err := buildConfig(bad[0], bad[1], bad[2], 0.7, 0, 0, 1, 1); err == nil {
			t.Errorf("buildConfig(%v) should fail", bad)
		}
	}
}

// TestBuildEngineSharded checks that a -shards daemon config builds a
// sharded engine over every loadable source.
func TestBuildEngineSharded(t *testing.T) {
	dir := t.TempDir()
	cfg, err := buildConfig("similarity", "jaccard", "dichotomy", 0.5, 0, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	setFile := filepath.Join(dir, "sets.txt")
	os.WriteFile(setFile, []byte("a: 77 Mass Ave | 5th St\nb: 77 Mass Ave | Elm St\nc: Oak St | Pine St\n"), 0o644)
	eng, n, err := buildEngine(cfg, setFile, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || eng.Shards() != 3 {
		t.Fatalf("n=%d shards=%d, want 3 sets on 3 shards", n, eng.Shards())
	}
	if ms, err := eng.Search(silkmoth.Set{Elements: []string{"77 Mass Ave", "5th St"}}); err != nil || len(ms) == 0 {
		t.Fatalf("sharded search: ms=%v err=%v", ms, err)
	}
}

func TestBuildEngineSources(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := buildConfig("similarity", "jaccard", "dichotomy", 0.5, 0, 0, 1, 1)

	// No source and two sources are both rejected.
	if _, _, err := buildEngine(cfg, "", "", "", ""); err == nil {
		t.Error("no source should fail")
	}
	if _, _, err := buildEngine(cfg, "a", "b", "", ""); err == nil {
		t.Error("two sources should fail")
	}

	setFile := filepath.Join(dir, "sets.txt")
	os.WriteFile(setFile, []byte("a: 77 Mass Ave | 5th St\nb: 77 Mass Ave | Elm St\n"), 0o644)
	eng, n, err := buildEngine(cfg, setFile, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || eng.Len() != 2 {
		t.Fatalf("set file: %d sets indexed", n)
	}

	csvFile := filepath.Join(dir, "t.csv")
	os.WriteFile(csvFile, []byte("city,state\nBoston,MA\nSeattle,WA\n"), 0o644)
	_, n, err = buildEngine(cfg, "", csvFile, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("csv: %d sets, want 2 columns", n)
	}

	jsonFile := filepath.Join(dir, "sets.json")
	os.WriteFile(jsonFile, []byte(`[{"name": "j1", "elements": ["x y", "z w"]}]`), 0o644)
	eng, n, err = buildEngine(cfg, "", "", jsonFile, "")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || eng.SetName(0) != "j1" {
		t.Fatalf("json: n=%d name=%q", n, eng.SetName(0))
	}

	// Round-trip through a saved collection.
	savedFile := filepath.Join(dir, "coll.bin")
	f, err := os.Create(savedFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveCollection(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	eng2, n, err := buildEngine(cfg, "", "", "", savedFile)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || eng2.SetName(0) != "j1" {
		t.Fatalf("saved: n=%d name=%q", n, eng2.SetName(0))
	}
}
