// Command silkmothd serves related-set queries over HTTP/JSON. It loads a
// collection at startup — from a plain-text set file, CSV columns, a JSON
// set array, or a previously saved binary collection — builds the engine
// once, and serves the full library surface concurrently:
//
//	POST /v1/search            related sets for one reference set
//	POST /v1/search/batch      many searches in one request
//	POST /v1/topk              the k best of a search
//	POST /v1/discover-against  all related pairs vs. a batch of references
//	POST /v1/compare           raw relatedness of two sets
//	GET/POST /v1/explain       one search + its plan (scheme, funnel, time)
//	POST /v1/sets              incrementally index more sets
//	DELETE /v1/sets/{id}       tombstone one set out of every future query
//	PUT  /v1/sets/{id}         atomically replace one set (new id returned)
//	POST /v1/snapshot          force a durable snapshot + WAL rotation (-data-dir)
//	GET  /v1/stats             engine pruning funnel + lifecycle + cache stats
//	GET  /v1/version           build metadata (module version, Go, revision)
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus text metrics
//	GET  /debug/pprof/*        runtime profiles (opt-in via -pprof)
//
// Usage:
//
//	silkmothd -input sets.txt -metric similarity -delta 0.8
//	silkmothd -csv table.csv -metric containment -delta 0.9 -addr :8080
//	silkmothd -json sets.json -sim eds -delta 0.75 -timeout 10s
//	silkmothd -json sets.json -log-format json -slow-query 250ms -pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"silkmoth"
	"silkmoth/internal/dataset"
	"silkmoth/internal/obs"
	"silkmoth/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":7133", "listen address")
		input    = flag.String("input", "", "set file to index (one set per line)")
		csvFile  = flag.String("csv", "", "CSV file whose columns become sets")
		jsonFile = flag.String("json", "", "JSON file with an array of {name, elements} sets")
		saved    = flag.String("saved", "", "binary collection previously written by the library's SaveCollection")
		dataDir  = flag.String("data-dir", "",
			"durability directory: recover from its latest snapshot + WAL at startup (the input flags then only bootstrap an empty directory); POST /v1/snapshot rotates")
		metric    = flag.String("metric", "similarity", "similarity or containment")
		simName   = flag.String("sim", "jaccard", "element similarity: jaccard, eds, neds, dice, or cosine")
		delta     = flag.Float64("delta", 0.7, "relatedness threshold δ in (0,1]")
		alpha     = flag.Float64("alpha", 0, "element similarity threshold α in [0,1)")
		q         = flag.Int("q", 0, "gram length for edit similarities (0 = auto)")
		scheme    = flag.String("scheme", "dichotomy", "signature scheme: dichotomy, skyline, weighted, combunweighted, auto (per-query cost-based)")
		workers   = flag.Int("workers", 0, "per-query verification parallelism (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 1, "hash-partition the collection into this many scatter-gather shards (<2 = unsharded)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout (negative disables)")
		inflight  = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 2*GOMAXPROCS)")
		cacheSize = flag.Int("cache-size", 1024, "result cache entries (negative disables)")
		compactAt = flag.Float64("compact-threshold", 0,
			"tombstone ratio triggering automatic index compaction after deletes/updates (0 = engine default, negative disables)")
		noExplain = flag.Bool("no-explain", false,
			"disable /v1/explain and per-request explain fields (explained queries bypass the result cache)")
		logFormat = flag.String("log-format", "text",
			"text (human startup/shutdown messages only) or json (adds one structured access line per request to stderr)")
		slowQuery = flag.Duration("slow-query", 0,
			"log any query at or past this engine latency as a JSON funnel line on stderr (0 disables)")
		slowSample = flag.Int("slow-query-sample", 0,
			"additionally log 1 in N queries' funnels regardless of latency, as a baseline (0 disables)")
		stageSample = flag.Int("stage-sample", 0,
			"time pipeline stages on 1 in N search passes for the /metrics stage histograms (0 = engine default 16, 1 = every pass, negative disables)")
		compress = flag.Bool("compressed-postings", false,
			"store posting lists as adaptive compressed containers decoded lazily (identical results, fraction of the heap; snapshot recovery becomes zero-copy via mmap)")
		postingCache = flag.Int64("posting-cache-bytes", 0,
			"decode-cache budget for hot compressed posting lists in bytes (0 = 64 MiB default; needs -compressed-postings)")
		pprofOn = flag.Bool("pprof", false,
			"mount /debug/pprof/* (CPU/heap profiles, goroutine dumps); off by default")
		version = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()

	if *version {
		bi := obs.ReadBuildInfo()
		fmt.Printf("silkmothd %s (%s", bi.Version, bi.GoVersion)
		if bi.Revision != "" {
			fmt.Printf(", %s", bi.Revision)
		}
		fmt.Println(")")
		return
	}
	if *logFormat != "text" && *logFormat != "json" {
		fatal(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
	}

	cfg, err := buildConfig(*metric, *simName, *scheme, *delta, *alpha, *q, *workers, *shards)
	if err != nil {
		fatal(err)
	}
	cfg.CompactionThreshold = *compactAt
	cfg.StageSample = *stageSample
	cfg.DataDir = *dataDir
	cfg.CompressedPostings = *compress
	cfg.PostingCacheBytes = *postingCache

	eng, n, err := buildEngine(cfg, *input, *csvFile, *jsonFile, *saved)
	if err != nil {
		fatal(err)
	}
	log.Printf("silkmothd: indexed %d sets (metric=%s sim=%s scheme=%s delta=%g alpha=%g shards=%d)",
		n, cfg.Metric, cfg.Similarity, cfg.Scheme, cfg.Delta, cfg.Alpha, eng.Shards())
	if *dataDir != "" {
		st := eng.Stats()
		if st.RecoveredSnapshot {
			log.Printf("silkmothd: recovered from %s (replayed %d WAL records, torn tail: %v)",
				*dataDir, st.WALReplayed, st.WALTornTail)
		} else {
			log.Printf("silkmothd: initialized %s with a fresh snapshot", *dataDir)
		}
	}

	srvOpts := server.Options{
		RequestTimeout:     *timeout,
		MaxInFlight:        *inflight,
		CacheSize:          *cacheSize,
		DisableExplain:     *noExplain,
		SlowQueryThreshold: *slowQuery,
		SlowQuerySample:    *slowSample,
		AccessLog:          *logFormat == "json",
		EnablePprof:        *pprofOn,
	}
	// Structured lines (access log, slow-query funnels) go to stderr
	// whenever anything emits them; stdout stays clean for redirection.
	if srvOpts.AccessLog || *slowQuery > 0 || *slowSample > 0 {
		srvOpts.LogWriter = os.Stderr
	}
	srv := server.New(eng, cfg, srvOpts)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	errc := make(chan error, 1)
	go func() {
		log.Printf("silkmothd: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case sig := <-sigc:
		log.Printf("silkmothd: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fatal(err)
		}
		// In-flight mutations have drained; release the WAL handle.
		if err := eng.Close(); err != nil {
			fatal(err)
		}
	}
}

// buildEngine loads the startup collection from exactly one source and
// builds the engine over it, returning the indexed set count. With
// cfg.DataDir set the sources become optional — recovery supplies the
// collection when the directory has state, and the engine may start empty —
// and when one is given it only bootstraps an empty directory.
func buildEngine(cfg silkmoth.Config, input, csvFile, jsonFile, saved string) (*silkmoth.Engine, int, error) {
	sources := 0
	for _, s := range []string{input, csvFile, jsonFile, saved} {
		if s != "" {
			sources++
		}
	}
	if cfg.DataDir == "" && sources != 1 {
		return nil, 0, fmt.Errorf("exactly one of -input, -csv, -json, or -saved is required")
	}
	if sources > 1 {
		return nil, 0, fmt.Errorf("at most one of -input, -csv, -json, or -saved may be given")
	}
	if sources == 0 {
		eng, err := silkmoth.NewEngine(nil, cfg)
		if err != nil {
			return nil, 0, err
		}
		return eng, eng.Len(), nil
	}

	if saved != "" {
		f, err := os.Open(saved)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		eng, err := silkmoth.NewEngineFromSaved(f, cfg)
		if err != nil {
			return nil, 0, err
		}
		return eng, eng.Len(), nil
	}

	var raws []dataset.RawSet
	var err error
	switch {
	case input != "":
		raws, err = dataset.ReadRawSetsFile(input)
	case csvFile != "":
		var f *os.File
		f, err = os.Open(csvFile)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		raws, err = dataset.ReadCSVColumns(f, "")
	case jsonFile != "":
		raws, err = dataset.ReadJSONSetsFile(jsonFile)
	}
	if err != nil {
		return nil, 0, err
	}
	sets := make([]silkmoth.Set, len(raws))
	for i, r := range raws {
		sets[i] = silkmoth.Set{Name: r.Name, Elements: r.Elements}
	}
	eng, err := silkmoth.NewEngine(sets, cfg)
	if err != nil {
		return nil, 0, err
	}
	return eng, len(sets), nil
}

func buildConfig(metric, simName, scheme string, delta, alpha float64, q, workers, shards int) (silkmoth.Config, error) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := silkmoth.Config{Delta: delta, Alpha: alpha, Q: q, Concurrency: workers, Shards: shards}
	switch metric {
	case "similarity":
		cfg.Metric = silkmoth.SetSimilarity
	case "containment":
		cfg.Metric = silkmoth.SetContainment
	default:
		return cfg, fmt.Errorf("unknown -metric %q", metric)
	}
	switch simName {
	case "jaccard":
		cfg.Similarity = silkmoth.Jaccard
	case "eds":
		cfg.Similarity = silkmoth.Eds
	case "neds":
		cfg.Similarity = silkmoth.NEds
	case "dice":
		cfg.Similarity = silkmoth.Dice
	case "cosine":
		cfg.Similarity = silkmoth.Cosine
	default:
		return cfg, fmt.Errorf("unknown -sim %q", simName)
	}
	sc, err := silkmoth.ParseScheme(scheme)
	if err != nil {
		return cfg, fmt.Errorf("unknown -scheme %q", scheme)
	}
	cfg.Scheme = sc
	return cfg, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silkmothd:", err)
	os.Exit(1)
}
