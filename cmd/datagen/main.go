// Command datagen writes the synthetic evaluation corpora to set files that
// cmd/silkmoth and the examples can consume.
//
// Usage:
//
//	datagen -app dblp -n 10000 -seed 1 -out dblp.txt
//	datagen -app schemas -n 50000 -out schemas.txt
//	datagen -app columns -n 50000 -out columns.txt -refs refs.txt -numrefs 1000
package main

import (
	"flag"
	"fmt"
	"os"

	"silkmoth/internal/datagen"
	"silkmoth/internal/dataset"
)

func main() {
	var (
		app     = flag.String("app", "dblp", "corpus: dblp, schemas, or columns")
		n       = flag.Int("n", 10000, "number of base sets")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output set file (default stdout)")
		refs    = flag.String("refs", "", "also write reference sets here (columns only)")
		numRefs = flag.Int("numrefs", 1000, "number of reference sets for -refs")
	)
	flag.Parse()

	var raws []dataset.RawSet
	switch *app {
	case "dblp":
		raws = datagen.DBLP(datagen.DBLPConfig{NumTitles: *n, Seed: *seed})
	case "schemas":
		raws = datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: *n, Seed: *seed})
	case "columns":
		raws = datagen.WebTableColumns(datagen.ColumnConfig{NumColumns: *n, Seed: *seed})
	default:
		fatal(fmt.Errorf("unknown -app %q", *app))
	}

	if err := writeSets(*out, raws); err != nil {
		fatal(err)
	}
	if *refs != "" {
		if *app != "columns" {
			fatal(fmt.Errorf("-refs only applies to -app columns"))
		}
		refRaws := datagen.PickReferences(raws, *numRefs, 4)
		if err := dataset.WriteRawSetsFile(*refs, refRaws); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d reference sets to %s\n", len(refRaws), *refs)
	}
	fmt.Fprintf(os.Stderr, "wrote %d sets\n", len(raws))
}

func writeSets(path string, raws []dataset.RawSet) error {
	if path == "" {
		return dataset.WriteRawSets(os.Stdout, raws)
	}
	return dataset.WriteRawSetsFile(path, raws)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
