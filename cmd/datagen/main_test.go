package main

import (
	"os"
	"path/filepath"
	"testing"

	"silkmoth/internal/dataset"
)

func TestWriteSetsToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	raws := []dataset.RawSet{{Name: "a", Elements: []string{"x y", "z"}}}
	if err := writeSets(path, raws); err != nil {
		t.Fatal(err)
	}
	got, err := dataset.ReadRawSetsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "a" || len(got[0].Elements) != 2 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestWriteSetsToStdout(t *testing.T) {
	// Redirect stdout to a pipe to keep test output clean.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	werr := writeSets("", []dataset.RawSet{{Name: "s", Elements: []string{"e"}}})
	w.Close()
	os.Stdout = old
	if werr != nil {
		t.Fatal(werr)
	}
	buf := make([]byte, 64)
	n, _ := r.Read(buf)
	if n == 0 {
		t.Error("nothing written to stdout")
	}
}
