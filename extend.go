package silkmoth

import (
	"context"
	"errors"
	"io"
	"slices"
	"time"

	"silkmoth/internal/core"
	"silkmoth/internal/dataset"
	"silkmoth/internal/wal"
)

// SearchTopK returns the k most related sets to ref among those whose
// relatedness reaches Delta, ordered by descending relatedness. It is
// exactly Search with a trailing WithK(k), so options compose the same
// way (the k argument wins over any WithK in opts).
func (e *Engine) SearchTopK(ref Set, k int, opts ...QueryOption) ([]Match, error) {
	return e.SearchTopKContext(context.Background(), ref, k, opts...)
}

// SearchTopKContext is SearchTopK with cancellation. On a sharded engine
// each shard contributes its local top k and a heap merge selects the
// global winners, so the answer costs k·Shards merged candidates instead
// of a full sort.
func (e *Engine) SearchTopKContext(ctx context.Context, ref Set, k int, opts ...QueryOption) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	// Appending WithK last makes the method's k argument override any
	// WithK in opts (later options win); the copy keeps the caller's
	// backing array untouched.
	withK := make([]QueryOption, 0, len(opts)+1)
	withK = append(append(withK, opts...), WithK(k))
	return e.SearchContext(ctx, ref, withK...)
}

// Add tokenizes and indexes additional sets, growing the engine's
// collection in place. Add is safe to call concurrently with queries: it
// takes the engine's write lock, so in-flight searches complete first and
// later ones see the grown collection.
//
// On a durable engine (Config.DataDir) the mutation is logged to the WAL
// and fsync'd before it is applied, so a nil return means the sets survive
// a crash. A heap-only engine's Add never fails.
func (e *Engine) Add(sets []Set) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	raws := toRaw(sets)
	if err := e.appendWAL(&wal.Record{Op: wal.OpAdd, Sets: raws}); err != nil {
		return err
	}
	e.applyAdd(raws)
	return nil
}

// SaveCollection writes the engine's tokenized collection to w in a
// self-contained binary form. Reload it with NewEngineFromSaved to skip
// re-tokenizing large corpora.
//
// A mutated engine saves compacted: only live sets are written, densely
// renumbered with a token table pruned to what they use, so the reloaded
// engine is indistinguishable from one built fresh over the surviving
// sets. Set ids therefore change across a save/load cycle once anything
// was deleted (live ids keep their relative order).
func (e *Engine) SaveCollection(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.sh != nil {
		if e.sh.Len() != len(e.coll.Sets) {
			live := e.sh.LiveSnapshot()
			return dataset.SaveCollectionLive(w, e.coll, func(i int) bool { return live[i] })
		}
		return dataset.SaveCollection(w, e.coll)
	}
	if e.eng.LiveCount() != len(e.coll.Sets) {
		return dataset.SaveCollectionLive(w, e.coll, e.eng.Alive)
	}
	return dataset.SaveCollection(w, e.coll)
}

// NewEngineFromSaved builds an engine from a collection previously written
// by SaveCollection. cfg must request the same tokenization the collection
// was built with: a word-token similarity (Jaccard, Dice, Cosine) for
// word-tokenized collections, an edit similarity with the same Q for q-gram
// collections (Q = 0 adopts the persisted value).
//
// With Config.DataDir set, existing durable state in the directory wins
// exactly as in NewEngine: r is only consumed when the directory is empty,
// to bootstrap the engine and its initial snapshot.
func NewEngineFromSaved(r io.Reader, cfg Config) (*Engine, error) {
	if cfg.DataDir != "" {
		fsys, err := wal.DirFS(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		return newDurableEngine(func() (*Engine, error) {
			return newHeapEngineFromSaved(r, cfg)
		}, cfg, fsys)
	}
	return newHeapEngineFromSaved(r, cfg)
}

func newHeapEngineFromSaved(r io.Reader, cfg Config) (*Engine, error) {
	opts, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	if opts.Delta <= 0 || opts.Delta > 1 {
		return nil, errors.New("silkmoth: Config.Delta must be in (0, 1]")
	}
	coll, err := dataset.LoadCollection(r)
	if err != nil {
		return nil, err
	}
	if opts.Q == 0 {
		opts.Q = coll.Q
	}
	return newEngineOverColl(coll, cfg, opts)
}

// SortMatchesByIndex re-sorts a search result list by collection index,
// for callers that want stable positional output instead of the default
// relatedness ordering.
func SortMatchesByIndex(ms []Match) {
	slices.SortFunc(ms, func(a, b Match) int { return a.Index - b.Index })
}

// Compare computes the relatedness of two sets directly — the maximum
// matching metric value (SET-SIMILARITY or SET-CONTAINMENT per cfg.Metric)
// without any engine machinery. Delta is not consulted; callers get the raw
// metric. For SetContainment, r is the contained side and |r| must not
// exceed |s| (the metric is 0 otherwise, per Definition 2).
//
// Compare accepts the same options as the query methods for uniformity,
// but a single pairwise matching probes no index: only WithExplain (one
// verified pair, wall time) and WithReduction observably apply; scheme,
// k, δ, and filter options are validated and otherwise inert.
func Compare(r, s Set, cfg Config, opts ...QueryOption) (float64, error) {
	qo, err := compileOptions(opts)
	if err != nil {
		return 0, err
	}
	var start time.Time
	if qo.explain != nil {
		start = time.Now()
	}
	if qo.reduction == core.ToggleOff {
		cfg.DisableReduction = true
	}
	if cfg.Delta == 0 {
		cfg.Delta = 1 // Delta is irrelevant here but must validate
	}
	cfg.Shards = 0 // one pairwise matching has nothing to shard
	eng, err := NewEngine([]Set{s}, cfg)
	if err != nil {
		return 0, err
	}
	rel := func() float64 {
		if len(r.Elements) > len(s.Elements) && cfg.Metric == SetContainment {
			return 0
		}
		score, nR, nS := eng.matchScore(r)
		if nR == 0 {
			return 0
		}
		if cfg.Metric == SetContainment {
			return score / float64(nR)
		}
		return score / (float64(nR+nS) - score)
	}()
	if qo.explain != nil {
		*qo.explain = Explain{Passes: 1, Verified: 1, Elapsed: time.Since(start)}
	}
	return rel, nil
}

// matchScore computes |r ∩̃ S0| between a query set and the engine's only
// collection set, returning the score and both sizes.
func (e *Engine) matchScore(r Set) (score float64, nR, nS int) {
	qc, release := e.tokenizeQuery([]Set{r})
	defer release()
	rs := &qc.Sets[0]
	ss := &e.coll.Sets[0]
	return e.eng.MatchScore(rs, ss), len(rs.Elements), len(ss.Elements)
}
