package silkmoth

import (
	"bytes"
	"reflect"
	"testing"
)

func TestSearchTopK(t *testing.T) {
	sets := []Set{
		{Name: "exact", Elements: []string{"a b c", "d e f"}},
		{Name: "close", Elements: []string{"a b c", "d e g"}},
		{Name: "closer", Elements: []string{"a b c", "d e f g"}},
		{Name: "far", Elements: []string{"x", "y"}},
	}
	eng, err := NewEngine(sets, Config{Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ref := Set{Elements: []string{"a b c", "d e f"}}
	top2, err := eng.SearchTopK(ref, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top2) != 2 || top2[0].Name != "exact" {
		t.Fatalf("top2 = %+v", top2)
	}
	if top2[1].Relatedness > top2[0].Relatedness {
		t.Error("topK not sorted by relatedness")
	}
	all, _ := eng.Search(ref)
	topAll, _ := eng.SearchTopK(ref, 100)
	if len(topAll) != len(all) {
		t.Errorf("k beyond result count should return everything: %d vs %d", len(topAll), len(all))
	}
	none, _ := eng.SearchTopK(ref, 0)
	if len(none) != 0 {
		t.Error("k=0 should return nothing")
	}
}

func TestAddIncremental(t *testing.T) {
	eng, err := NewEngine([]Set{
		{Name: "first", Elements: []string{"p q", "r s"}},
	}, Config{Delta: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	ref := Set{Elements: []string{"p q", "r s"}}
	ms, _ := eng.Search(ref)
	if len(ms) != 1 {
		t.Fatalf("pre-add matches = %+v", ms)
	}
	// Add a twin plus an unrelated set; both must be immediately findable.
	eng.Add([]Set{
		{Name: "twin", Elements: []string{"r s", "p q"}},
		{Name: "other", Elements: []string{"brand new tokens"}},
	})
	if eng.Len() != 3 {
		t.Fatalf("Len = %d after Add", eng.Len())
	}
	ms, _ = eng.Search(ref)
	if len(ms) != 2 {
		t.Fatalf("post-add matches = %+v", ms)
	}
	// New tokens must also resolve: a query for the new set alone.
	ms, _ = eng.Search(Set{Elements: []string{"brand new tokens"}})
	if len(ms) != 1 || ms[0].Name != "other" {
		t.Fatalf("new-token search = %+v", ms)
	}
	// Discovery over the grown collection matches a from-scratch engine.
	grown := eng.Discover()
	fresh, err := NewEngine([]Set{
		{Name: "first", Elements: []string{"p q", "r s"}},
		{Name: "twin", Elements: []string{"r s", "p q"}},
		{Name: "other", Elements: []string{"brand new tokens"}},
	}, Config{Delta: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Discover()
	if len(grown) != len(want) {
		t.Fatalf("incremental discovery diverges: %+v vs %+v", grown, want)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sets := []Set{
		{Name: "A", Elements: []string{"77 Mass Ave", "5th St"}},
		{Name: "B", Elements: []string{"77 Massachusetts Ave", "Fifth St"}},
	}
	cfg := Config{Delta: 0.5, Metric: SetContainment}
	eng, err := NewEngine(sets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveCollection(&buf); err != nil {
		t.Fatal(err)
	}
	eng2, err := NewEngineFromSaved(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1 := eng.Discover()
	p2 := eng2.Discover()
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("reloaded engine diverges: %+v vs %+v", p2, p1)
	}
	// Queries against the reloaded engine still tokenize correctly.
	m1, _ := eng.Search(sets[0])
	m2, _ := eng2.Search(sets[0])
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("reloaded search diverges: %+v vs %+v", m2, m1)
	}
}

func TestSaveLoadEditSimilarity(t *testing.T) {
	sets := []Set{
		{Name: "t1", Elements: []string{"Database", "Systems"}},
		{Name: "t2", Elements: []string{"Databose", "Systens"}},
	}
	cfg := Config{Delta: 0.7, Alpha: 0.7, Similarity: Eds}
	eng, err := NewEngine(sets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveCollection(&buf); err != nil {
		t.Fatal(err)
	}
	// Q = 0 in the reload config adopts the persisted q.
	eng2, err := NewEngineFromSaved(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eng.Discover(), eng2.Discover()) {
		t.Error("edit-similarity reload diverges")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := NewEngineFromSaved(bytes.NewReader([]byte("not a gob")), Config{Delta: 0.5}); err == nil {
		t.Error("garbage input should fail to load")
	}
}

func TestLoadWrongSimilarity(t *testing.T) {
	eng, err := NewEngine([]Set{{Name: "A", Elements: []string{"x y"}}}, Config{Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveCollection(&buf); err != nil {
		t.Fatal(err)
	}
	// A word-tokenized collection cannot serve an edit-similarity engine.
	if _, err := NewEngineFromSaved(&buf, Config{Delta: 0.5, Similarity: Eds}); err == nil {
		t.Error("tokenization mismatch should fail")
	}
}

func TestSortMatchesByIndex(t *testing.T) {
	ms := []Match{{Index: 2}, {Index: 0}, {Index: 1}}
	SortMatchesByIndex(ms)
	if ms[0].Index != 0 || ms[1].Index != 1 || ms[2].Index != 2 {
		t.Errorf("sorted = %+v", ms)
	}
}

func TestCompare(t *testing.T) {
	location := Set{Name: "L", Elements: []string{
		"77 Mass Ave Boston MA", "5th St 02115 Seattle WA", "77 5th St Chicago IL"}}
	s4 := Set{Name: "S4", Elements: []string{
		"77 Mass Ave MA", "5th St 02115 Seattle WA", "77 5th St Boston Seattle"}}
	// The paper's Example 2: containment(R, S4) = 2.2286/3 ≈ 0.743.
	got, err := Compare(location, s4, Config{Metric: SetContainment})
	if err != nil {
		t.Fatal(err)
	}
	want := (0.8 + 1.0 + 3.0/7.0) / 3
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Compare containment = %v, want %v", got, want)
	}
	// Similarity of a set with itself is 1.
	sim, err := Compare(location, location, Config{})
	if err != nil || sim != 1 {
		t.Errorf("self similarity = %v, %v", sim, err)
	}
	// Containment with an oversized reference is 0 by Definition 2.
	big := Set{Elements: []string{"a", "b", "c", "d"}}
	small := Set{Elements: []string{"a"}}
	if c, _ := Compare(big, small, Config{Metric: SetContainment}); c != 0 {
		t.Errorf("oversized containment = %v, want 0", c)
	}
	// Edit similarity path.
	e, err := Compare(Set{Elements: []string{"Database"}}, Set{Elements: []string{"Databose"}},
		Config{Similarity: Eds, Alpha: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0.5 || e >= 1 {
		t.Errorf("edit Compare = %v", e)
	}
	// Invalid config propagates.
	if _, err := Compare(location, s4, Config{Metric: Metric(9)}); err == nil {
		t.Error("invalid config should error")
	}
}
