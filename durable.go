package silkmoth

import (
	"errors"
	"fmt"
	"io"

	"silkmoth/internal/core"
	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/shard"
	"silkmoth/internal/wal"
)

// ErrNoDataDir reports a durability operation (Snapshot) on an engine
// built without Config.DataDir.
var ErrNoDataDir = errors.New("silkmoth: durability not enabled (Config.DataDir is empty)")

// newDurableEngine opens (or initializes) the snapshot/WAL store on fsys
// and returns a recovered or bootstrapped engine. When the store holds a
// snapshot, the engine is reconstructed from it — no re-tokenization, and
// for an unsharded engine no re-indexing either — and the paired log is
// replayed over it; otherwise build supplies a fresh engine and the
// initial snapshot is written before the first mutation can be logged.
func newDurableEngine(build func() (*Engine, error), cfg Config, fsys wal.FS) (*Engine, error) {
	st, err := wal.Open(fsys)
	if err != nil {
		return nil, err
	}
	var e *Engine
	loaded, m, err := st.RecoverData(func(data []byte) error {
		snap, err := dataset.LoadSnapshotBytes(data)
		if err != nil {
			return err
		}
		e, err = engineFromSnapshot(snap, cfg)
		return err
	})
	if err != nil {
		return nil, err
	}
	if m != nil {
		// The store memory-mapped the snapshot. When the engine's index
		// borrowed the mapped container bytes (compressed lazy load), the
		// mapping must outlive the engine — retain it for Close to unmap.
		// Every other load path copied what it needed.
		if e != nil && e.sh == nil && e.eng.Index().SharesContainers() {
			e.snapMap = m
		} else {
			m.Close()
		}
	}
	if loaded {
		e.store = st
		e.recovered = true
		n, torn, err := st.ReplayWAL(func(rec *wal.Record) error { return e.applyRecord(rec) })
		if err != nil {
			return nil, fmt.Errorf("silkmoth: recovering from %q: %w", cfg.DataDir, err)
		}
		e.replayed, e.torn = n, torn
		if err := st.Begin(); err != nil {
			return nil, err
		}
		return e, nil
	}
	e, err = build()
	if err != nil {
		return nil, err
	}
	e.store = st
	if err := e.writeSnapshotLocked(); err != nil {
		st.Close()
		return nil, fmt.Errorf("silkmoth: writing initial snapshot: %w", err)
	}
	return e, nil
}

// engineFromSnapshot reconstructs an engine from a loaded snapshot image:
// collection and dictionary as persisted (dead slots empty, ids intact for
// WAL replay), tombstone bitmap restored, and — unsharded, when the image
// carries postings — the inverted index imported instead of rebuilt.
func engineFromSnapshot(snap *dataset.SnapshotData, cfg Config) (*Engine, error) {
	opts, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	if opts.Delta <= 0 || opts.Delta > 1 {
		return nil, errors.New("silkmoth: Config.Delta must be in (0, 1]")
	}
	coll := snap.Coll
	if opts.Q == 0 {
		opts.Q = coll.Q
	}
	if cfg.Shards > 1 {
		sh, err := shard.NewFromSnapshot(coll, cfg.Shards, opts, snap.Dead)
		if err != nil {
			return nil, err
		}
		return &Engine{sh: sh, coll: coll}, nil
	}
	var eng *core.Engine
	switch {
	case opts.CompressPostings && snap.Containers != nil:
		// Zero-copy lazy load: wrap the snapshot's encoded containers —
		// possibly aliasing a memory-mapped file — and decode a posting
		// list only when a probe first touches it.
		ix := index.FromContainers(coll, snap.Containers, true, opts.PostingCacheBytes)
		eng, err = core.NewEngineFromIndex(ix, opts)
	case snap.HasPostings():
		var lists [][]index.Posting
		lists, err = snap.DecodePostings()
		if err != nil {
			return nil, fmt.Errorf("silkmoth: decoding snapshot postings: %w", err)
		}
		if opts.CompressPostings {
			// Legacy image under a compressed config: re-encode.
			eng, err = core.NewEngineFromIndex(index.FromListsCompressed(coll, lists, opts.PostingCacheBytes), opts)
		} else {
			eng, err = core.NewEngineFromIndex(index.FromLists(coll, lists), opts)
		}
	default:
		eng, err = core.NewEngine(coll, opts)
	}
	if err != nil {
		return nil, err
	}
	eng.MarkDeadSlots(snap.Dead)
	return &Engine{eng: eng, coll: coll}, nil
}

// applyRecord replays one WAL record against the engine's in-memory state.
// Replay runs before the engine is shared, so no locking — and crucially
// no re-logging — happens here. Records were appended after validation, so
// a target that is not alive at replay time means the log and snapshot
// disagree: corruption, reported as an error rather than skipped.
func (e *Engine) applyRecord(rec *wal.Record) error {
	switch rec.Op {
	case wal.OpAdd:
		e.applyAdd(rec.Sets)
		return nil
	case wal.OpDelete:
		return e.applyDelete(rec.ID)
	case wal.OpUpdate:
		if len(rec.Sets) != 1 {
			return fmt.Errorf("update record carries %d sets", len(rec.Sets))
		}
		_, err := e.applyUpdate(rec.ID, rec.Sets[0])
		return err
	default:
		return fmt.Errorf("unknown op %d", rec.Op)
	}
}

// applyAdd grows the collection and index in memory. Add and Update append
// at len(coll.Sets) unconditionally, which is what makes WAL replay
// reproduce the original id assignment exactly.
func (e *Engine) applyAdd(raws []dataset.RawSet) {
	if e.sh != nil {
		// The sharded engine appends to e.coll (its global collection)
		// itself and routes each new set to its owning shard.
		e.sh.Add(raws)
		return
	}
	from := dataset.Append(e.coll, raws)
	e.eng.AppendSets(from)
}

// applyDelete tombstones id in memory.
func (e *Engine) applyDelete(id int) error {
	var err error
	if e.sh != nil {
		err = e.sh.Delete(id)
	} else {
		err = e.eng.Delete(id)
	}
	if errors.Is(err, core.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

// applyUpdate replaces id in memory, returning the replacement's new id.
func (e *Engine) applyUpdate(id int, raw dataset.RawSet) (int, error) {
	if e.sh != nil {
		newID, err := e.sh.Update(id, raw)
		if errors.Is(err, core.ErrNotFound) {
			return 0, ErrNotFound
		}
		return newID, err
	}
	if !e.eng.Alive(id) {
		return 0, ErrNotFound
	}
	newID := dataset.Append(e.coll, []dataset.RawSet{raw})
	e.eng.AppendSets(newID)
	if err := e.eng.Delete(id); err != nil {
		return 0, err // unreachable: aliveness was just checked
	}
	return newID, nil
}

// appendWAL logs one mutation record, fsync'd, before the mutation is
// applied in memory (write-ahead ordering: an acknowledged mutation is
// always durable, and a logged-but-unapplied one is re-applied by replay).
// No-op on a heap-only engine. Callers hold the write lock.
func (e *Engine) appendWAL(rec *wal.Record) error {
	if e.store == nil {
		return nil
	}
	return e.store.Append(rec)
}

// liveLocked is Live for callers already holding a lock.
func (e *Engine) liveLocked(id int) bool {
	if e.sh != nil {
		return e.sh.Alive(id)
	}
	return e.eng.Alive(id)
}

// Snapshot writes a new durable snapshot of the engine's current state and
// rotates the write-ahead log: the image lands in a temp file, is fsync'd
// and atomically renamed into place, and a fresh empty log replaces the
// old one, whose records the snapshot now subsumes. Mutations are blocked
// for the duration (Snapshot takes the write lock); queries drain first.
// Returns ErrNoDataDir on a heap-only engine.
func (e *Engine) Snapshot() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.store == nil {
		return ErrNoDataDir
	}
	return e.writeSnapshotLocked()
}

func (e *Engine) writeSnapshotLocked() error {
	return e.store.WriteSnapshot(func(w io.Writer) error {
		return dataset.SaveSnapshot(w, e.snapshotData())
	})
}

// snapshotData assembles the engine's durable image. The id space is
// preserved verbatim — dead slots persist as empty placeholders — because
// any WAL record appended after this snapshot references these runtime
// ids. Unsharded engines contribute their posting lists (imported, not
// rebuilt, at load); sharded engines persist no postings — the per-shard
// lists are meaningless globally — and rebuild per shard at load, still
// without re-tokenizing.
func (e *Engine) snapshotData() *dataset.SnapshotData {
	sd := &dataset.SnapshotData{Coll: e.coll}
	if e.sh != nil {
		live := e.sh.LiveSnapshot()
		var dead []bool
		for g, l := range live {
			if !l {
				if dead == nil {
					dead = make([]bool, len(live))
				}
				dead[g] = true
			}
		}
		sd.Dead = dead
		return sd
	}
	if e.eng.LiveCount() != len(e.coll.Sets) {
		dead := make([]bool, len(e.coll.Sets))
		for i := range dead {
			dead[i] = !e.eng.Alive(i)
		}
		sd.Dead = dead
	}
	// The index itself is the postings source: the writer pulls lists on
	// demand (heap form) or copies encoded containers verbatim when exact
	// (compressed form), so snapshotting a lazily loaded index never forces
	// a full materialization.
	sd.Source = e.eng.Index()
	return sd
}

// Close releases the engine's durability resources (the open write-ahead
// log handle). It does not write a snapshot: the log already holds every
// acknowledged mutation, so a future open replays to the identical state.
// A heap-only engine's Close is a no-op. The engine must not be mutated
// after Close; further Add/Delete/Update calls fail.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.snapMap != nil {
		// The index borrowed the mapped snapshot's container bytes; copy
		// them onto the heap before the mapping goes away so reads after
		// Close stay safe.
		if e.eng != nil {
			e.eng.Index().UnshareContainers()
		}
		e.snapMap.Close()
		e.snapMap = nil
	}
	if e.store == nil {
		return nil
	}
	return e.store.Close()
}
