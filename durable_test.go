package silkmoth

import (
	"fmt"
	"sync"
	"testing"

	"silkmoth/internal/raceflag"
)

func durableCorpus() []Set {
	sets := crashBootstrap()
	return append(sets,
		Set{Name: "G", Elements: []string{"77 Mass Ave Boston", "Lake St"}},
		Set{Name: "H", Elements: []string{"5th St", "Main St Chicago"}},
	)
}

// compareEngineSurfaces requires got to answer every query bit-identically
// to want: same discovery pairs (ids included — both engines share one id
// space) and same matches with same scores for a Search per live set.
// With checkFunnel it additionally requires identical per-query explain
// funnels (candidate, filter, and verification counts) — a snapshot-loaded
// engine must probe an identical index, not merely reach the same answers.
// Funnel equality only holds against a compacted writer: snapshots persist
// compacted images, while a tombstoned writer still probes (and
// check-prunes) its dead sets' postings until it compacts.
func compareEngineSurfaces(t *testing.T, stage string, want, got *Engine, checkFunnel bool) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: Len = %d, want %d", stage, got.Len(), want.Len())
	}
	wantPairs := want.Discover()
	gotPairs := got.Discover()
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("%s: %d pairs, want %d", stage, len(gotPairs), len(wantPairs))
	}
	for i := range wantPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("%s: pair %d = %+v, want %+v", stage, i, gotPairs[i], wantPairs[i])
		}
	}
	for _, q := range liveRaws(want) {
		wantRes, err := want.Explain(q)
		if err != nil {
			t.Fatalf("%s: explain %q: %v", stage, q.Name, err)
		}
		gotRes, err := got.Explain(q)
		if err != nil {
			t.Fatalf("%s: loaded explain %q: %v", stage, q.Name, err)
		}
		if len(gotRes.Matches) != len(wantRes.Matches) {
			t.Fatalf("%s: query %q: %d matches, want %d", stage, q.Name, len(gotRes.Matches), len(wantRes.Matches))
		}
		for i := range wantRes.Matches {
			if gotRes.Matches[i] != wantRes.Matches[i] {
				t.Fatalf("%s: query %q match %d = %+v, want %+v",
					stage, q.Name, i, gotRes.Matches[i], wantRes.Matches[i])
			}
		}
		if !checkFunnel {
			continue
		}
		w, g := wantRes.Explain, gotRes.Explain
		if g.Scheme != w.Scheme || g.Passes != w.Passes || g.FullScans != w.FullScans ||
			g.SigTokens != w.SigTokens || g.Candidates != w.Candidates ||
			g.AfterCheck != w.AfterCheck || g.CheckPruned != w.CheckPruned ||
			g.AfterNN != w.AfterNN || g.NNPruned != w.NNPruned || g.Verified != w.Verified {
			t.Fatalf("%s: query %q funnel diverged:\nloaded %+v\nwriter %+v", stage, q.Name, g, w)
		}
	}
}

// TestSnapshotDifferentialGrid pins snapshot fidelity across the full
// configuration grid: for every metric × similarity × α × shard count, an
// engine reloaded from its snapshot must be indistinguishable from the
// engine that wrote it — identical matches, scores, orderings, and explain
// funnels — both with tombstones standing and after compaction.
func TestSnapshotDifferentialGrid(t *testing.T) {
	corpus := durableCorpus()
	type simCase struct {
		sim    Similarity
		alphas []float64
	}
	sims := []simCase{
		{Jaccard, []float64{0, 0.4}},
		{Dice, []float64{0}},
		{Cosine, []float64{0}},
		{Eds, []float64{0, 0.4}},
		{NEds, []float64{0.4}},
	}
	for _, metric := range []Metric{SetSimilarity, SetContainment} {
		for _, sc := range sims {
			for _, alpha := range sc.alphas {
				for _, shards := range []int{1, 2, 7} {
					t.Run(fmt.Sprintf("%v/%v/alpha=%v/shards=%d", metric, sc.sim, alpha, shards), func(t *testing.T) {
						cfg := Config{
							Metric:              metric,
							Similarity:          sc.sim,
							Delta:               0.5,
							Alpha:               alpha,
							Shards:              shards,
							DataDir:             t.TempDir(),
							CompactionThreshold: -1, // explicit Compact below
						}
						eng, err := NewEngine(corpus, cfg)
						if err != nil {
							t.Fatal(err)
						}
						defer eng.Close()
						// Tombstones and appended sets, so the snapshot
						// exercises dead placeholders and replay-safe ids.
						if err := eng.Delete(1); err != nil {
							t.Fatal(err)
						}
						if _, err := eng.Update(3, Set{Name: "D+v2", Elements: []string{"Lake Shore Dr Chicago", "5th Ave"}}); err != nil {
							t.Fatal(err)
						}
						if err := eng.Add([]Set{{Name: "I", Elements: []string{"Mass Ave", "Lake St Boston"}}}); err != nil {
							t.Fatal(err)
						}

						reloadAndCompare := func(stage string, checkFunnel bool) {
							t.Helper()
							if err := eng.Snapshot(); err != nil {
								t.Fatalf("%s: snapshot: %v", stage, err)
							}
							loaded, err := NewEngine(nil, cfg)
							if err != nil {
								t.Fatalf("%s: reload: %v", stage, err)
							}
							defer loaded.Close()
							if st := loaded.Stats(); !st.RecoveredSnapshot || st.WALReplayed != 0 {
								t.Fatalf("%s: reload stats %+v, want a clean snapshot recovery", stage, st)
							}
							compareEngineSurfaces(t, stage, eng, loaded, checkFunnel)
						}
						reloadAndCompare("tombstoned", false)
						eng.Compact()
						reloadAndCompare("compacted", true)
					})
				}
			}
		}
	}
}

// TestSnapshotWhileMutatingRace drives Snapshot concurrently with
// mutations, queries, and stats reads. Run under -race it proves the
// rotation path shares no unsynchronized state with the mutation path;
// afterwards a reload must see every acknowledged mutation.
func TestSnapshotWhileMutatingRace(t *testing.T) {
	cfg := Config{
		Metric:     SetSimilarity,
		Similarity: Jaccard,
		Delta:      0.5,
		DataDir:    t.TempDir(),
	}
	eng, err := NewEngine(durableCorpus(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	const mutations = 40
	var wg sync.WaitGroup
	done := make(chan struct{})
	expectedLive := len(durableCorpus())
	wg.Add(3)
	go func() { // the only mutator, so id assignment stays deterministic
		defer wg.Done()
		defer close(done)
		next := len(durableCorpus()) // the id the next append receives
		for i := 0; i < mutations; i++ {
			s := Set{Name: fmt.Sprintf("mut%d", i), Elements: []string{"77 Mass Ave", fmt.Sprintf("Pier %d", i)}}
			if err := eng.Add([]Set{s}); err != nil {
				t.Errorf("add %d: %v", i, err)
				return
			}
			id := next
			next++
			expectedLive++
			if i%3 == 0 {
				nid, err := eng.Update(id, Set{Name: s.Name + "+v2", Elements: []string{"Main St", fmt.Sprintf("Pier %d", i)}})
				if err != nil {
					t.Errorf("update %d: %v", id, err)
					return
				}
				if nid != next {
					t.Errorf("update %d assigned id %d, want %d", id, nid, next)
					return
				}
				id = nid
				next++
			}
			if i%4 == 0 {
				if err := eng.Delete(id); err != nil {
					t.Errorf("delete %d: %v", id, err)
					return
				}
				expectedLive--
			}
		}
	}()
	go func() { // snapshotter
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := eng.Snapshot(); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
		}
	}()
	go func() { // readers
		defer wg.Done()
		ref := Set{Name: "q", Elements: []string{"77 Mass Ave", "Main St"}}
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := eng.Search(ref); err != nil {
				t.Errorf("search: %v", err)
				return
			}
			_ = eng.Stats()
			_ = eng.Len()
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := NewEngine(nil, cfg)
	if err != nil {
		t.Fatalf("reload after concurrent snapshots: %v", err)
	}
	defer loaded.Close()
	if loaded.Len() != expectedLive {
		t.Fatalf("reloaded Len = %d, want %d", loaded.Len(), expectedLive)
	}
}

// TestSnapshotLoadAllocationBudget pins the property that gives snapshots
// their purpose: loading one performs no re-tokenization and (unsharded)
// no index rebuild. Decoding the image allocates the same collection and
// posting structures a build does, so load sits measurably below build —
// but if tokenization or index construction creeps into recovery, its cost
// stacks on top of the decode cost and load overtakes build, tripping the
// budget.
func TestSnapshotLoadAllocationBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; budgets hold only in plain builds")
	}
	sets := allocCorpus(300)
	heapCfg := Config{Similarity: Jaccard, Delta: 0.5}
	cfg := heapCfg
	cfg.DataDir = t.TempDir()
	eng, err := NewEngine(sets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	buildAllocs := testing.AllocsPerRun(5, func() {
		if _, err := newHeapEngine(sets, heapCfg); err != nil {
			t.Fatal(err)
		}
	})
	loadAllocs := testing.AllocsPerRun(5, func() {
		loaded, err := NewEngine(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !loaded.Stats().RecoveredSnapshot {
			t.Fatal("load fell back to a heap build")
		}
		loaded.Close()
	})
	t.Logf("snapshot load: %.0f allocs, heap build: %.0f", loadAllocs, buildAllocs)
	if loadAllocs > buildAllocs*9/10 {
		t.Errorf("snapshot load allocates %.0f objects vs %.0f for a full build — recovery is re-doing build work",
			loadAllocs, buildAllocs)
	}
}
