// Benchmarks for the mutable-collection lifecycle: what a Delete costs by
// itself (tombstone + dictionary release), what a compaction pass costs
// (index rebuild + reclamation), and what queries pay for carrying
// tombstones versus running over a compacted index. Together they are the
// tuning data for Config.CompactionThreshold: deletes are cheap and O(set),
// compaction is O(corpus) but makes search stop paying the dead-posting
// tax. Results land in BENCH_mutate.json.
package silkmoth_test

import (
	"testing"

	"silkmoth"
	"silkmoth/internal/datagen"
)

const mutateBenchSets = 300

func mutateBenchCorpus() []silkmoth.Set {
	raws := datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: mutateBenchSets, Seed: 17})
	sets := make([]silkmoth.Set, len(raws))
	for i, r := range raws {
		sets[i] = silkmoth.Set{Name: r.Name, Elements: r.Elements}
	}
	return sets
}

// mutateBenchConfig disables automatic compaction so each benchmark
// controls exactly when the rebuild happens.
func mutateBenchConfig() silkmoth.Config {
	return silkmoth.Config{
		Metric:              silkmoth.SetSimilarity,
		Similarity:          silkmoth.Jaccard,
		Delta:               0.6,
		CompactionThreshold: -1,
	}
}

func mutateBenchEngine(b *testing.B, sets []silkmoth.Set) *silkmoth.Engine {
	b.Helper()
	eng, err := silkmoth.NewEngine(sets, mutateBenchConfig())
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkDelete measures one tombstoning delete: the bitmap mark plus
// the dictionary reference release, no index work.
func BenchmarkDelete(b *testing.B) {
	sets := mutateBenchCorpus()
	b.ReportAllocs()
	var eng *silkmoth.Engine
	next := 0
	for i := 0; i < b.N; i++ {
		if eng == nil || next == len(sets)/2 {
			b.StopTimer()
			eng = mutateBenchEngine(b, sets)
			next = 0
			b.StartTimer()
		}
		if err := eng.Delete(next); err != nil {
			b.Fatal(err)
		}
		next++
	}
}

// BenchmarkUpdate measures one atomic replace: tokenize + index the new
// version, tombstone the old.
func BenchmarkUpdate(b *testing.B) {
	sets := mutateBenchCorpus()
	b.ReportAllocs()
	eng := mutateBenchEngine(b, sets)
	id := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		newID, err := eng.Update(id, sets[(i+7)%len(sets)])
		if err != nil {
			b.Fatal(err)
		}
		id = newID
	}
}

// BenchmarkCompact measures one full compaction pass over a corpus with a
// quarter of its sets tombstoned: the posting rebuild plus dictionary
// reclamation.
func BenchmarkCompact(b *testing.B) {
	sets := mutateBenchCorpus()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := mutateBenchEngine(b, sets)
		for j := 0; j < len(sets); j += 4 {
			if err := eng.Delete(j); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		eng.Compact()
	}
}

// benchSearchLoop drives the shared query loop of the tombstoned-vs-
// compacted pair.
func benchSearchLoop(b *testing.B, eng *silkmoth.Engine, queries []silkmoth.Set) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchTombstoned measures search cost while a quarter of the
// corpus is deleted but not yet compacted: dead postings still flow
// through candidate generation and are discarded by the liveness check.
func BenchmarkSearchTombstoned(b *testing.B) {
	sets := mutateBenchCorpus()
	eng := mutateBenchEngine(b, sets)
	for j := 0; j < len(sets); j += 4 {
		if err := eng.Delete(j); err != nil {
			b.Fatal(err)
		}
	}
	benchSearchLoop(b, eng, sets[1:33])
}

// BenchmarkSearchCompacted is the same workload after compaction: the
// rebuilt posting lists carry only live sets.
func BenchmarkSearchCompacted(b *testing.B) {
	sets := mutateBenchCorpus()
	eng := mutateBenchEngine(b, sets)
	for j := 0; j < len(sets); j += 4 {
		if err := eng.Delete(j); err != nil {
			b.Fatal(err)
		}
	}
	eng.Compact()
	benchSearchLoop(b, eng, sets[1:33])
}
