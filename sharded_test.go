package silkmoth

import (
	"bytes"
	"fmt"
	"testing"
)

// shardedCorpus builds a small corpus with planted near-duplicates so
// every query mode has non-trivial answers.
func shardedCorpus(n int) []Set {
	sets := make([]Set, 0, n*2)
	for i := 0; i < n; i++ {
		base := Set{Name: fmt.Sprintf("s%d", i), Elements: []string{
			fmt.Sprintf("alpha%d beta%d gamma", i, i%7),
			fmt.Sprintf("delta%d epsilon", i%5),
			"zeta eta theta",
		}}
		sets = append(sets, base)
		if i%3 == 0 {
			dup := Set{Name: base.Name + "dup", Elements: []string{
				base.Elements[0],
				base.Elements[1],
				"zeta eta iota", // one perturbed element
			}}
			sets = append(sets, dup)
		}
	}
	return sets
}

// TestShardedPublicEquivalence pins the public wrapper's sharded path to
// the unsharded one across every query mode, including after Add.
func TestShardedPublicEquivalence(t *testing.T) {
	sets := shardedCorpus(30) // 30 base + 10 planted dups = 40 sets
	cut := 28
	cfg := Config{Metric: SetSimilarity, Similarity: Jaccard, Delta: 0.5, Concurrency: 2}
	plain, err := NewEngine(sets[:cut], cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgSharded := cfg
	cfgSharded.Shards = 3
	sharded, err := NewEngine(sets[:cut], cfgSharded)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Shards() != 1 || sharded.Shards() != 3 {
		t.Fatalf("Shards() = %d / %d, want 1 / 3", plain.Shards(), sharded.Shards())
	}

	// Both engines grow identically after construction.
	plain.Add(sets[cut:])
	sharded.Add(sets[cut:])
	if plain.Len() != len(sets) || sharded.Len() != len(sets) {
		t.Fatalf("Len after Add: plain %d, sharded %d, want %d", plain.Len(), sharded.Len(), len(sets))
	}

	checkMatches := func(what string, a, b []Match) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: plain %d matches, sharded %d", what, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: match %d plain %+v, sharded %+v", what, i, a[i], b[i])
			}
		}
	}

	query := Set{Elements: sets[3].Elements}
	mp, err := plain.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	msh, err := sharded.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp) == 0 {
		t.Fatal("query found nothing; corpus too sparse for the test")
	}
	checkMatches("search", mp, msh)

	kp, err := plain.SearchTopK(query, 3)
	if err != nil {
		t.Fatal(err)
	}
	ksh, err := sharded.SearchTopK(query, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkMatches("topk", kp, ksh)

	pp := plain.Discover()
	psh := sharded.Discover()
	if len(pp) == 0 {
		t.Fatal("discover found nothing; corpus too sparse for the test")
	}
	if len(pp) != len(psh) {
		t.Fatalf("discover: plain %d pairs, sharded %d", len(pp), len(psh))
	}
	for i := range pp {
		if pp[i] != psh[i] {
			t.Fatalf("discover pair %d: plain %+v, sharded %+v", i, pp[i], psh[i])
		}
	}

	refs := []Set{query, {Elements: sets[7].Elements}}
	dp, err := plain.DiscoverAgainst(refs)
	if err != nil {
		t.Fatal(err)
	}
	dsh, err := sharded.DiscoverAgainst(refs)
	if err != nil {
		t.Fatal(err)
	}
	if len(dp) != len(dsh) {
		t.Fatalf("discover-against: plain %d pairs, sharded %d", len(dp), len(dsh))
	}
	for i := range dp {
		if dp[i] != dsh[i] {
			t.Fatalf("discover-against pair %d: plain %+v, sharded %+v", i, dp[i], dsh[i])
		}
	}

	if st := sharded.Stats(); st.SearchPasses == 0 || st.Verified == 0 {
		t.Fatalf("sharded stats not aggregated: %+v", st)
	}
}

// TestSearchBatchPublic pins SearchBatch to per-query Search on both
// engine shapes.
func TestSearchBatchPublic(t *testing.T) {
	sets := shardedCorpus(20)
	for _, shards := range []int{0, 3} {
		cfg := Config{Metric: SetSimilarity, Similarity: Jaccard, Delta: 0.5, Concurrency: 2, Shards: shards}
		eng, err := NewEngine(sets, cfg)
		if err != nil {
			t.Fatal(err)
		}
		refs := []Set{
			{Elements: sets[0].Elements},
			{Elements: sets[9].Elements},
			{Elements: []string{"nothing like this corpus"}},
		}
		batch, err := eng.SearchBatch(refs)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(refs) {
			t.Fatalf("shards=%d: %d results for %d refs", shards, len(batch), len(refs))
		}
		some := false
		for i, ref := range refs {
			want, err := eng.Search(ref)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch[i]) != len(want) {
				t.Fatalf("shards=%d ref %d: batch %d matches, search %d", shards, i, len(batch[i]), len(want))
			}
			for j := range want {
				if batch[i][j] != want[j] {
					t.Fatalf("shards=%d ref %d match %d: batch %+v, search %+v", shards, i, j, batch[i][j], want[j])
				}
			}
			some = some || len(want) > 0
		}
		if !some {
			t.Fatal("no batch query matched; corpus too sparse for the test")
		}
		if out, err := eng.SearchBatch(nil); err != nil || out != nil {
			t.Fatalf("empty batch = %v, %v", out, err)
		}
	}
}

// TestShardedSaveLoad round-trips a collection through SaveCollection and
// rebuilds it sharded.
func TestShardedSaveLoad(t *testing.T) {
	sets := shardedCorpus(12)
	cfg := Config{Metric: SetSimilarity, Similarity: Jaccard, Delta: 0.5, Shards: 2}
	eng, err := NewEngine(sets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveCollection(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewEngineFromSaved(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != 2 || loaded.Len() != eng.Len() {
		t.Fatalf("loaded: shards=%d len=%d, want 2, %d", loaded.Shards(), loaded.Len(), eng.Len())
	}
	want := eng.Discover()
	got := loaded.Discover()
	if len(want) != len(got) {
		t.Fatalf("discover: %d pairs before save, %d after", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pair %d: %+v before save, %+v after", i, want[i], got[i])
		}
	}

	// Compare must keep working when handed a sharded config.
	rel, err := Compare(sets[0], sets[1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	relPlain, err := Compare(sets[0], sets[1], Config{Metric: SetSimilarity, Similarity: Jaccard, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rel != relPlain {
		t.Fatalf("Compare diverges under a sharded config: %g vs %g", rel, relPlain)
	}
}
