package sim

import (
	"math/rand"
	"testing"

	"silkmoth/internal/tokens"
)

func benchStrings(n, length int) []string {
	rng := rand.New(rand.NewSource(1))
	out := make([]string, n)
	for i := range out {
		out[i] = randString(rng, length)
	}
	return out
}

// Ablation: the banded edit distance against the full dynamic program at a
// realistic α = 0.8 threshold. The band is what makes thresholded edit
// similarity affordable inside the check and NN filters.
func BenchmarkLevenshteinPlain(b *testing.B) {
	ss := benchStrings(64, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := ss[i%len(ss)]
		c := ss[(i+7)%len(ss)]
		Levenshtein(a, c)
	}
}

func BenchmarkLevenshteinBounded(b *testing.B) {
	ss := benchStrings(64, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := ss[i%len(ss)]
		c := ss[(i+7)%len(ss)]
		LevenshteinBounded(a, c, 5)
	}
}

func BenchmarkEdsAlphaThresholded(b *testing.B) {
	ss := benchStrings(64, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdsAlpha(ss[i%len(ss)], ss[(i+7)%len(ss)], 0.8)
	}
}

func BenchmarkEdsUnthresholded(b *testing.B) {
	ss := benchStrings(64, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Eds(ss[i%len(ss)], ss[(i+7)%len(ss)])
	}
}

func benchTokenSets(n, size, vocab int) [][]tokens.ID {
	rng := rand.New(rand.NewSource(2))
	out := make([][]tokens.ID, n)
	for i := range out {
		ids := make([]tokens.ID, size)
		for j := range ids {
			ids[j] = tokens.ID(rng.Intn(vocab))
		}
		out[i] = tokens.SortUnique(ids)
	}
	return out
}

func BenchmarkJaccardSorted(b *testing.B) {
	sets := benchTokenSets(64, 12, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JaccardSorted(sets[i%len(sets)], sets[(i+9)%len(sets)])
	}
}

func BenchmarkDiceSorted(b *testing.B) {
	sets := benchTokenSets(64, 12, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiceSorted(sets[i%len(sets)], sets[(i+9)%len(sets)])
	}
}

func BenchmarkCosineSorted(b *testing.B) {
	sets := benchTokenSets(64, 12, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CosineSorted(sets[i%len(sets)], sets[(i+9)%len(sets)])
	}
}
