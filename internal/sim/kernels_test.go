package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"unicode/utf8"

	"silkmoth/internal/tokens"
)

// refEds recomputes Eds purely from the scalar reference kernel.
func refEds(x, y string) float64 {
	lx, ly := utf8.RuneCountInString(x), utf8.RuneCountInString(y)
	if lx == 0 && ly == 0 {
		return 0
	}
	ld := LevenshteinRef(x, y)
	return 1 - 2*float64(ld)/float64(lx+ly+ld)
}

// refNEds recomputes NEds purely from the scalar reference kernel.
func refNEds(x, y string) float64 {
	lx, ly := utf8.RuneCountInString(x), utf8.RuneCountInString(y)
	m := lx
	if ly > m {
		m = ly
	}
	if m == 0 {
		return 0
	}
	ld := LevenshteinRef(x, y)
	return 1 - float64(ld)/float64(m)
}

// adversarialStrings is the kernel stress corpus: runs of equal runes
// (saturating the Eq masks), all-distinct runes (defeating them), strings
// straddling the 64-rune single-word/blocked boundary, Pad-rune collisions,
// multi-byte Unicode, and invalid UTF-8.
func adversarialStrings() []string {
	distinct := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteRune(rune('0' + i)) // all distinct codepoints
		}
		return b.String()
	}
	ss := []string{
		"",
		"a",
		strings.Repeat("a", 5),
		strings.Repeat("a", 63),
		strings.Repeat("a", 64),
		strings.Repeat("a", 65),
		strings.Repeat("ab", 64),      // 128 runes, period 2
		strings.Repeat("a", 63) + "b", // mismatch at the word edge
		strings.Repeat("a", 64) + "b", // mismatch just past it
		distinct(63),
		distinct(64),
		distinct(65),
		distinct(129),
		string(tokens.Pad),
		strings.Repeat(string(tokens.Pad), 3),
		"ab" + string(tokens.Pad) + "ba", // Pad collides mid-string
		strings.Repeat("x"+string(tokens.Pad), 40), // 80 runes, Pad every other
		"héllo wörld",
		strings.Repeat("日本語データベース", 10), // 90 multi-byte runes
		"\xff\xfe invalid utf8 \xff",    // decodes to RuneError runs
		strings.Repeat("\xff", 70),      // 70 RuneError runes (equal-rune run)
	}
	// A few seeded random strings over a small alphabet, spanning the
	// boundary lengths.
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{10, 24, 60, 64, 68, 130} {
		ss = append(ss, randString(rng, n))
	}
	return ss
}

// TestLevenshteinKernelsMatchReferenceGrid pins the bit-parallel kernels to
// the retained scalar references over the adversarial corpus and the full α
// grid: exact distance, bounded distance at every bound the α thresholds
// imply, and the Eds/NEds φ_α values built from them. "Bit-identical" is
// literal — distances are ints and the similarity formulas run on equal
// operands, so == holds with no epsilon.
func TestLevenshteinKernelsMatchReferenceGrid(t *testing.T) {
	ss := adversarialStrings()
	alphas := []float64{0, 0.3, 0.5, 0.7, 0.8, 0.9, 1}
	for _, a := range ss {
		for _, b := range ss {
			exact := LevenshteinRef(a, b)
			if got := Levenshtein(a, b); got != exact {
				t.Fatalf("Levenshtein(%q,%q) = %d, ref %d", a, b, got, exact)
			}
			for _, d := range []int{-2, -1, 0, 1, 2, 5, exact - 1, exact, exact + 1, 64, 65, 1 << 40} {
				want := exact
				if d < 0 || d+1 < want {
					want = d + 1
				}
				if d < 0 {
					want = d + 1
				}
				if got := LevenshteinBounded(a, b, d); got != want {
					t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d, want %d", a, b, d, got, want)
				}
				if got := LevenshteinBoundedRef(a, b, d); got != want {
					t.Fatalf("LevenshteinBoundedRef(%q,%q,%d) = %d, want %d", a, b, d, got, want)
				}
			}
			for _, alpha := range alphas {
				if got, want := Eds(a, b), refEds(a, b); got != want {
					t.Fatalf("Eds(%q,%q) = %v, ref %v", a, b, got, want)
				}
				if got, want := NEds(a, b), refNEds(a, b); got != want {
					t.Fatalf("NEds(%q,%q) = %v, ref %v", a, b, got, want)
				}
				if got, want := EdsAlpha(a, b, alpha), Alpha(refEds(a, b), alpha); got != want {
					t.Fatalf("EdsAlpha(%q,%q,%v) = %v, ref %v", a, b, alpha, got, want)
				}
				if got, want := NEdsAlpha(a, b, alpha), Alpha(refNEds(a, b), alpha); got != want {
					t.Fatalf("NEdsAlpha(%q,%q,%v) = %v, ref %v", a, b, alpha, got, want)
				}
			}
		}
	}
}

// adversarialTokenSets stresses the intersection kernels: empty, singleton,
// dense ranges, disjoint stripes, sizes straddling every skip-block and
// gallop-cutover boundary, and heavy skew.
func adversarialTokenSets() [][]tokens.ID {
	mk := func(ids ...tokens.ID) []tokens.ID { return ids }
	rangeSet := func(lo, n, stride int) []tokens.ID {
		out := make([]tokens.ID, n)
		for i := range out {
			out[i] = tokens.ID(lo + i*stride)
		}
		return out
	}
	sets := [][]tokens.ID{
		nil,
		mk(),
		mk(0),
		mk(5),
		rangeSet(0, 7, 1),
		rangeSet(0, 8, 1),
		rangeSet(0, 9, 1),
		rangeSet(0, 16, 1),
		rangeSet(1, 16, 2), // odds
		rangeSet(0, 16, 2), // evens — fully disjoint from odds
		rangeSet(0, 64, 1),
		rangeSet(32, 64, 1),
		rangeSet(0, 300, 3),
		rangeSet(1000, 5, 1), // far above everything
		rangeSet(0, 1024, 1), // gallop target
		rangeSet(500, 200, 7),
	}
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{3, 10, 50, 400} {
		ids := make([]tokens.ID, n)
		for i := range ids {
			ids[i] = tokens.ID(rng.Intn(600))
		}
		sets = append(sets, tokens.SortUnique(ids))
	}
	return sets
}

// TestIntersectionKernelsMatchReferenceGrid pins the adaptive intersection
// and every token-set metric built on it (Jaccard, Dice, cosine — the
// Metric × Similarity verification surface of the word-token engines) to
// the linear-merge reference across the adversarial set corpus and the α
// grid.
func TestIntersectionKernelsMatchReferenceGrid(t *testing.T) {
	sets := adversarialTokenSets()
	alphas := []float64{0, 0.3, 0.5, 0.8, 1}
	for _, a := range sets {
		for _, b := range sets {
			want := IntersectSizeSortedRef(a, b)
			if got := IntersectSizeSorted(a, b); got != want {
				t.Fatalf("IntersectSizeSorted(|a|=%d,|b|=%d) = %d, ref %d (a=%v b=%v)",
					len(a), len(b), got, want, a, b)
			}
			// The metrics must be bit-identical too: same intersection size
			// feeding the same float expressions.
			var refJac, refDice, refCos float64
			if len(a) != 0 && len(b) != 0 {
				refJac = float64(want) / float64(len(a)+len(b)-want)
				refDice = 2 * float64(want) / float64(len(a)+len(b))
				refCos = float64(want) / math.Sqrt(float64(len(a))*float64(len(b)))
			}
			if got := JaccardSorted(a, b); got != refJac {
				t.Fatalf("JaccardSorted = %v, ref %v", got, refJac)
			}
			if got := DiceSorted(a, b); got != refDice {
				t.Fatalf("DiceSorted = %v, ref %v", got, refDice)
			}
			if got := CosineSorted(a, b); got != refCos {
				t.Fatalf("CosineSorted = %v, ref %v", got, refCos)
			}
			for _, alpha := range alphas {
				if got, want := Alpha(JaccardSorted(a, b), alpha), Alpha(refJac, alpha); got != want {
					t.Fatalf("φ_α Jaccard = %v, ref %v", got, want)
				}
			}
		}
	}
}

// TestLevenshteinBoundedHugeBound is the regression test for the band
// arithmetic overflow: with maxDist near MaxInt, i+maxDist wrapped
// negative, every band row emptied, and an in-bound distance was reported
// as exceeded (maxDist+1, itself wrapping to MinInt). Both kernels must
// answer exactly when the bound cannot bind.
func TestLevenshteinBoundedHugeBound(t *testing.T) {
	cases := []struct{ a, b string }{
		{"a", "b"},
		{"kitten", "sitting"},
		{"", "abc"},
		{strings.Repeat("a", 100), strings.Repeat("b", 90)},
	}
	for _, c := range cases {
		exact := LevenshteinRef(c.a, c.b)
		for _, d := range []int{math.MaxInt, math.MaxInt - 1, math.MaxInt / 2, 1 << 40} {
			if got := LevenshteinBounded(c.a, c.b, d); got != exact {
				t.Errorf("LevenshteinBounded(%q,%q,%d) = %d, want exact %d", c.a, c.b, d, got, exact)
			}
			if got := LevenshteinBoundedRef(c.a, c.b, d); got != exact {
				t.Errorf("LevenshteinBoundedRef(%q,%q,%d) = %d, want exact %d", c.a, c.b, d, got, exact)
			}
		}
	}
}

// TestLevenshteinBoundedNegativeContract pins the documented negative-bound
// convention: any negative maxDist reports exceeded by returning maxDist+1
// (≤ 0) — even for equal strings, so callers must test `> maxDist`, never
// `== 0`.
func TestLevenshteinBoundedNegativeContract(t *testing.T) {
	for _, d := range []int{-1, -2, -10} {
		for _, c := range []struct{ a, b string }{
			{"same", "same"}, // equal strings still report exceeded
			{"", ""},
			{"a", "z"},
		} {
			if got := LevenshteinBounded(c.a, c.b, d); got != d+1 {
				t.Errorf("LevenshteinBounded(%q,%q,%d) = %d, want %d", c.a, c.b, d, got, d+1)
			}
			if got := LevenshteinBoundedRef(c.a, c.b, d); got != d+1 {
				t.Errorf("LevenshteinBoundedRef(%q,%q,%d) = %d, want %d", c.a, c.b, d, got, d+1)
			}
		}
	}
	// The misread the convention invites: 0 from a negative bound does not
	// mean "equal".
	if LevenshteinBounded("x", "y", -1) != 0 {
		t.Fatal("contract changed: LevenshteinBounded(x,y,-1) should be 0 (= maxDist+1)")
	}
}

// TestEmptyInputConvention pins the package-wide convention across every
// metric: any comparison with an empty side — including empty vs empty —
// has similarity 0, under every α.
func TestEmptyInputConvention(t *testing.T) {
	full := []tokens.ID{1, 2, 3}
	empty := []tokens.ID{}
	tokenMetrics := map[string]func(a, b []tokens.ID) float64{
		"JaccardSorted": JaccardSorted,
		"DiceSorted":    DiceSorted,
		"CosineSorted":  CosineSorted,
	}
	for name, m := range tokenMetrics {
		if got := m(empty, empty); got != 0 {
			t.Errorf("%s(empty, empty) = %v, want 0", name, got)
		}
		if got := m(nil, nil); got != 0 {
			t.Errorf("%s(nil, nil) = %v, want 0", name, got)
		}
		if got := m(empty, full); got != 0 {
			t.Errorf("%s(empty, non-empty) = %v, want 0", name, got)
		}
		if got := m(full, empty); got != 0 {
			t.Errorf("%s(non-empty, empty) = %v, want 0", name, got)
		}
	}
	stringMetrics := map[string]func(x, y string) float64{
		"Eds":            Eds,
		"NEds":           NEds,
		"EdsAlpha(0.5)":  func(x, y string) float64 { return EdsAlpha(x, y, 0.5) },
		"NEdsAlpha(0.5)": func(x, y string) float64 { return NEdsAlpha(x, y, 0.5) },
		"EdsAlpha(0)":    func(x, y string) float64 { return EdsAlpha(x, y, 0) },
		"NEdsAlpha(0)":   func(x, y string) float64 { return NEdsAlpha(x, y, 0) },
	}
	for name, m := range stringMetrics {
		if got := m("", ""); got != 0 {
			t.Errorf("%s(\"\", \"\") = %v, want 0", name, got)
		}
		if got := m("", "abc"); got != 0 {
			t.Errorf("%s(\"\", non-empty) = %v, want 0", name, got)
		}
		if got := m("abc", ""); got != 0 {
			t.Errorf("%s(non-empty, \"\") = %v, want 0", name, got)
		}
	}
}
