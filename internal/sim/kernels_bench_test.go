package sim

import (
	"math/rand"
	"testing"

	"silkmoth/internal/tokens"
)

// Kernel-vs-reference benchmarks: each pair runs the bit-parallel (or
// adaptive) kernel and the retained scalar reference on identical inputs,
// so the speedup the kernels claim is measurable in one -bench run.

var sinkInt int

func BenchmarkLevenshteinRef(b *testing.B) {
	ss := benchStrings(64, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = LevenshteinRef(ss[i%len(ss)], ss[(i+7)%len(ss)])
	}
}

func BenchmarkLevenshteinBoundedRef(b *testing.B) {
	ss := benchStrings(64, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = LevenshteinBoundedRef(ss[i%len(ss)], ss[(i+7)%len(ss)], 5)
	}
}

// The ≥64-rune pairs exercise the blocked multi-word kernel — patterns no
// longer fit one machine word, so every column advance chains carries
// across blocks.
func BenchmarkLevenshteinLong(b *testing.B) {
	ss := benchStrings(16, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = Levenshtein(ss[i%len(ss)], ss[(i+5)%len(ss)])
	}
}

func BenchmarkLevenshteinLongRef(b *testing.B) {
	ss := benchStrings(16, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = LevenshteinRef(ss[i%len(ss)], ss[(i+5)%len(ss)])
	}
}

// benchSkewedSets builds the intersection shape the galloping kernel
// exists for: a short query-element side against long indexed sides, both
// drawn from one shared vocabulary so the short side's ids interleave
// across the long side's whole range (disjoint ranges would let any merge
// exit early and measure nothing).
func benchSkewedSets(short, long int) ([][]tokens.ID, [][]tokens.ID) {
	rng := rand.New(rand.NewSource(3))
	vocab := long * 4
	mk := func(n, size int) [][]tokens.ID {
		out := make([][]tokens.ID, n)
		for i := range out {
			ids := make([]tokens.ID, size)
			for j := range ids {
				ids[j] = tokens.ID(rng.Intn(vocab))
			}
			out[i] = tokens.SortUnique(ids)
		}
		return out
	}
	return mk(32, short), mk(32, long)
}

func BenchmarkIntersectSkewed(b *testing.B) {
	shorts, longs := benchSkewedSets(8, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = IntersectSizeSorted(shorts[i%len(shorts)], longs[i%len(longs)])
	}
}

func BenchmarkIntersectSkewedRef(b *testing.B) {
	shorts, longs := benchSkewedSets(8, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = IntersectSizeSortedRef(shorts[i%len(shorts)], longs[i%len(longs)])
	}
}

func BenchmarkIntersectSimilar(b *testing.B) {
	as, bs := benchSkewedSets(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = IntersectSizeSorted(as[i%len(as)], bs[i%len(bs)])
	}
}

func BenchmarkIntersectSimilarRef(b *testing.B) {
	as, bs := benchSkewedSets(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = IntersectSizeSortedRef(as[i%len(as)], bs[i%len(bs)])
	}
}

// Disjoint id regions are where the adaptive merge's gallop mode engages:
// each side's ids cluster away from the other's, so the merge is dominated
// by runs the trigger converts into exponential skips.
func benchDisjointSets() ([]tokens.ID, []tokens.ID) {
	mk := func(lo, n int) []tokens.ID {
		out := make([]tokens.ID, n)
		for i := range out {
			out[i] = tokens.ID(lo + i)
		}
		return out
	}
	a := append(mk(0, 50), mk(200, 50)...)
	return a, mk(40, 100)
}

func BenchmarkIntersectClustered(b *testing.B) {
	as, bs := benchDisjointSets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = IntersectSizeSorted(as, bs)
	}
}

func BenchmarkIntersectClusteredRef(b *testing.B) {
	as, bs := benchDisjointSets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = IntersectSizeSortedRef(as, bs)
	}
}
