package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"silkmoth/internal/tokens"
)

func toksOf(words ...string) []tokens.ID {
	d := sharedDict
	ids := tokens.InternAll(d, words)
	return tokens.SortUnique(ids)
}

var sharedDict = tokens.NewDictionary()

func TestJaccardPaperExample(t *testing.T) {
	// Jac({50, Vassar, St, MA}, {50, Vassar, Street, MA}) = 3/5 (paper §2.1).
	a := toksOf("50", "Vassar", "St", "MA")
	b := toksOf("50", "Vassar", "Street", "MA")
	got := JaccardSorted(a, b)
	if math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Jaccard = %v, want 0.6", got)
	}
}

func TestJaccardIdentical(t *testing.T) {
	a := toksOf("x", "y", "z")
	if got := JaccardSorted(a, a); got != 1 {
		t.Errorf("Jaccard(a,a) = %v, want 1", got)
	}
}

func TestJaccardDisjoint(t *testing.T) {
	a := toksOf("p", "q")
	b := toksOf("r", "s")
	if got := JaccardSorted(a, b); got != 0 {
		t.Errorf("Jaccard disjoint = %v, want 0", got)
	}
}

func TestJaccardEmpty(t *testing.T) {
	a := toksOf("p")
	if JaccardSorted(nil, a) != 0 || JaccardSorted(a, nil) != 0 || JaccardSorted(nil, nil) != 0 {
		t.Error("Jaccard with empty side should be 0")
	}
}

func TestIntersectSizeSorted(t *testing.T) {
	cases := []struct {
		a, b []tokens.ID
		want int
	}{
		{[]tokens.ID{1, 2, 3}, []tokens.ID{2, 3, 4}, 2},
		{[]tokens.ID{1}, []tokens.ID{1}, 1},
		{[]tokens.ID{}, []tokens.ID{1, 2}, 0},
		{[]tokens.ID{1, 3, 5, 7}, []tokens.ID{2, 4, 6, 8}, 0},
		{[]tokens.ID{1, 2, 3, 4}, []tokens.ID{1, 2, 3, 4}, 4},
	}
	for _, c := range cases {
		if got := IntersectSizeSorted(c.a, c.b); got != c.want {
			t.Errorf("IntersectSizeSorted(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Jaccard is symmetric and within [0, 1].
func TestJaccardProperties(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a := make([]tokens.ID, len(ra))
		for i, v := range ra {
			a[i] = tokens.ID(v % 32)
		}
		b := make([]tokens.ID, len(rb))
		for i, v := range rb {
			b[i] = tokens.ID(v % 32)
		}
		a = tokens.SortUnique(a)
		b = tokens.SortUnique(b)
		s1 := JaccardSorted(a, b)
		s2 := JaccardSorted(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the Jaccard distance 1-Jac satisfies the triangle inequality
// (needed for the §5.3 reduction-based verification).
func TestJaccardTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randSet := func() []tokens.ID {
		n := rng.Intn(6) + 1
		ids := make([]tokens.ID, n)
		for i := range ids {
			ids[i] = tokens.ID(rng.Intn(10))
		}
		return tokens.SortUnique(ids)
	}
	for i := 0; i < 5000; i++ {
		a, b, c := randSet(), randSet(), randSet()
		dab := 1 - JaccardSorted(a, b)
		dbc := 1 - JaccardSorted(b, c)
		dac := 1 - JaccardSorted(a, c)
		if dac > dab+dbc+1e-12 {
			t.Fatalf("triangle inequality violated: d(a,c)=%v > d(a,b)+d(b,c)=%v (a=%v b=%v c=%v)",
				dac, dab+dbc, a, b, c)
		}
	}
}

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"abc", "abc", 0},
		{"flaw", "lawn", 2},
		{"intention", "execution", 5},
		{"a", "b", 1},
		{"ab", "ba", 2},
		{"héllo", "hello", 1}, // rune-level, not byte-level
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randString(rng *rand.Rand, n int) string {
	letters := []rune("abcdef")
	r := make([]rune, n)
	for i := range r {
		r[i] = letters[rng.Intn(len(letters))]
	}
	return string(r)
}

func TestLevenshteinBoundedMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		a := randString(rng, rng.Intn(18))
		b := randString(rng, rng.Intn(18))
		exact := Levenshtein(a, b)
		for _, maxDist := range []int{0, 1, 2, 3, 5, 8, 20} {
			got := LevenshteinBounded(a, b, maxDist)
			if exact <= maxDist {
				if got != exact {
					t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d, want exact %d", a, b, maxDist, got, exact)
				}
			} else if got <= maxDist {
				t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d, but exact %d exceeds bound", a, b, maxDist, got, exact)
			}
		}
	}
}

func TestLevenshteinBoundedNegative(t *testing.T) {
	if got := LevenshteinBounded("a", "a", -1); got > -1 == false {
		t.Errorf("negative maxDist should report exceeded, got %d", got)
	}
}

func TestEdsPaperExample(t *testing.T) {
	// Eds("50 Vassar St MA", "50 Vassar Street MA") = 15/19 (paper §2.1):
	// LD = 4, |x| = 15, |y| = 19 → 1 - 8/38 = 15/19.
	got := Eds("50 Vassar St MA", "50 Vassar Street MA")
	want := 15.0 / 19.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Eds = %v, want %v", got, want)
	}
}

func TestEdsIdentical(t *testing.T) {
	if Eds("same", "same") != 1 {
		t.Error("Eds of identical strings should be 1")
	}
}

func TestEdsEmpty(t *testing.T) {
	if Eds("", "") != 0 {
		t.Error("Eds(\"\",\"\") should be 0 by convention")
	}
	// One empty side: LD = |y|, Eds = 1 - 2|y|/(2|y|) = 0.
	if Eds("", "abc") != 0 {
		t.Error("Eds(\"\", abc) should be 0")
	}
}

func TestNEdsKnown(t *testing.T) {
	// NEds("abc", "abd") = 1 - 1/3 = 2/3.
	got := NEds("abc", "abd")
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("NEds = %v, want 2/3", got)
	}
	if NEds("x", "x") != 1 {
		t.Error("NEds identical should be 1")
	}
	if NEds("", "") != 0 {
		t.Error("NEds empty should be 0")
	}
}

// Property: Eds and NEds are symmetric, within [0,1], and NEds ≤ Eds never
// holds in general but both are 1 iff equal strings (for nonempty inputs).
func TestEditSimilarityProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a := randString(rng, rng.Intn(12)+1)
		b := randString(rng, rng.Intn(12)+1)
		e1, e2 := Eds(a, b), Eds(b, a)
		n1, n2 := NEds(a, b), NEds(b, a)
		if e1 != e2 || n1 != n2 {
			t.Fatalf("asymmetric edit similarity for %q, %q", a, b)
		}
		if e1 < 0 || e1 > 1 || n1 < 0 || n1 > 1 {
			t.Fatalf("edit similarity out of range for %q, %q: %v, %v", a, b, e1, n1)
		}
		if (e1 == 1) != (a == b) {
			t.Fatalf("Eds==1 must hold iff strings equal: %q, %q", a, b)
		}
	}
}

// Property: the dual distance 1-Eds satisfies the triangle inequality
// (paper §5.3 relies on this for the reduction-based verification).
func TestEdsTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		a := randString(rng, rng.Intn(8)+1)
		b := randString(rng, rng.Intn(8)+1)
		c := randString(rng, rng.Intn(8)+1)
		dab := 1 - Eds(a, b)
		dbc := 1 - Eds(b, c)
		dac := 1 - Eds(a, c)
		if dac > dab+dbc+1e-12 {
			t.Fatalf("1-Eds triangle inequality violated: %q %q %q", a, b, c)
		}
	}
}

func TestAlpha(t *testing.T) {
	if Alpha(0.5, 0.6) != 0 {
		t.Error("Alpha should zero out sub-threshold scores")
	}
	if Alpha(0.7, 0.6) != 0.7 {
		t.Error("Alpha should pass through above-threshold scores")
	}
	if Alpha(0.6, 0.6) != 0.6 {
		t.Error("Alpha at exactly the threshold should pass through")
	}
	if Alpha(0.3, 0) != 0.3 {
		t.Error("Alpha with α=0 should be the identity")
	}
}

func TestEdsAlphaMatchesEds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a := randString(rng, rng.Intn(15))
		b := randString(rng, rng.Intn(15))
		for _, alpha := range []float64{0, 0.3, 0.5, 0.7, 0.8, 0.9, 1.0} {
			want := Alpha(Eds(a, b), alpha)
			got := EdsAlpha(a, b, alpha)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("EdsAlpha(%q,%q,%v) = %v, want %v", a, b, alpha, got, want)
			}
		}
	}
}

func TestNEdsAlphaMatchesNEds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		a := randString(rng, rng.Intn(15))
		b := randString(rng, rng.Intn(15))
		for _, alpha := range []float64{0, 0.3, 0.5, 0.7, 0.9} {
			want := Alpha(NEds(a, b), alpha)
			got := NEdsAlpha(a, b, alpha)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("NEdsAlpha(%q,%q,%v) = %v, want %v", a, b, alpha, got, want)
			}
		}
	}
}
