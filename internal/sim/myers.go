package sim

// Myers' bit-parallel edit distance (Myers 1999, in the carry-save
// formulation of Hyyrö 2003). The dynamic-programming column is encoded as
// two bit vectors — Pv (positions where the column value increases by one)
// and Mv (where it decreases) — and one text character advances the whole
// column with a constant number of word operations, so a ≤64-rune pattern
// costs one word op per text rune instead of a 64-entry DP row.
//
// The scalar row DP these kernels replaced is retained as LevenshteinRef /
// LevenshteinBoundedRef; the differential fuzz targets and the kernel
// property grid pin the two bit-identical on every input.

// peqEntry maps one distinct pattern rune to its match bitmask: bit i is
// set when pattern[i] equals the rune.
type peqEntry struct {
	r rune
	m uint64
}

// peqTable is the Eq lookup for a ≤64-rune pattern. Patterns are short
// element strings, so a linear scan over distinct runes beats hashing and —
// unlike a map — lives entirely on the caller's stack.
type peqTable struct {
	n int
	e [64]peqEntry
}

//silkmoth:hotpath
func (t *peqTable) build(p []rune) {
	t.n = 0
	for i, c := range p {
		j := 0
		for j < t.n && t.e[j].r != c {
			j++
		}
		if j == t.n {
			t.e[j] = peqEntry{r: c}
			t.n++
		}
		t.e[j].m |= 1 << uint(i)
	}
}

//silkmoth:hotpath
func (t *peqTable) mask(c rune) uint64 {
	for j := 0; j < t.n; j++ {
		if t.e[j].r == c {
			return t.e[j].m
		}
	}
	return 0
}

// myers64 returns the edit distance between pattern p (1 ≤ len ≤ 64 runes)
// and text t. It allocates nothing.
//
//silkmoth:hotpath
func myers64(p, t []rune) int {
	return myers64Bounded(p, t, len(p)+len(t))
}

// myers64Bounded is myers64 with early abandonment: once even the most
// favorable suffix (one deletion per remaining text rune) cannot bring the
// distance back under maxDist, it returns maxDist+1. The exact distance is
// returned whenever it is ≤ maxDist, so the result is always
// min(exact, maxDist+1).
//
// All-ASCII patterns — the overwhelmingly common case for word and q-gram
// elements — use a direct-mapped Eq table (one load per text rune); any
// non-ASCII pattern rune falls back to the linear-scan peqTable.
//
//silkmoth:hotpath
func myers64Bounded(p, t []rune, maxDist int) int {
	var ascii [128]uint64
	for i, c := range p {
		if c >= 128 {
			return myers64BoundedGeneric(p, t, maxDist)
		}
		ascii[c] |= 1 << uint(i)
	}
	m := len(p)
	pv := ^uint64(0) >> uint(64-m)
	var mv uint64
	score := m
	hb := uint64(1) << uint(m-1)
	for j, c := range t {
		var eq uint64
		if c < 128 {
			eq = ascii[c]
		}
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&hb != 0 {
			score++
		} else if mh&hb != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
		// D(m, n) ≥ score - (remaining text runes): each further column
		// changes the bottom cell by at most one.
		if score-(len(t)-j-1) > maxDist {
			return maxDist + 1
		}
	}
	if score > maxDist {
		return maxDist + 1
	}
	return score
}

// myers64BoundedGeneric is the non-ASCII form of myers64Bounded: Eq comes
// from a linear scan over the pattern's distinct runes.
//
//silkmoth:hotpath
func myers64BoundedGeneric(p, t []rune, maxDist int) int {
	m := len(p)
	var tab peqTable
	tab.build(p)
	pv := ^uint64(0) >> uint(64-m)
	var mv uint64
	score := m
	hb := uint64(1) << uint(m-1)
	for j, c := range t {
		eq := tab.mask(c)
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&hb != 0 {
			score++
		} else if mh&hb != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
		if score-(len(t)-j-1) > maxDist {
			return maxDist + 1
		}
	}
	if score > maxDist {
		return maxDist + 1
	}
	return score
}

// blockPeq is the per-block Eq table of the multi-word kernel: for each
// distinct pattern rune, w consecutive words of masks.
type blockPeq struct {
	runes []rune
	masks []uint64 // len(runes) × w, block-major per rune
	w     int
}

func buildBlockPeq(p []rune, w int) blockPeq {
	bp := blockPeq{w: w}
	// Distinct runes first, so the mask arena is sized once.
	bp.runes = make([]rune, 0, len(p))
	for _, c := range p {
		if idxRune(bp.runes, c) < 0 {
			bp.runes = append(bp.runes, c)
		}
	}
	bp.masks = make([]uint64, len(bp.runes)*w)
	for i, c := range p {
		k := idxRune(bp.runes, c)
		bp.masks[k*w+i/64] |= 1 << uint(i%64)
	}
	return bp
}

func idxRune(rs []rune, c rune) int {
	for i, r := range rs {
		if r == c {
			return i
		}
	}
	return -1
}

func (bp *blockPeq) row(c rune) []uint64 {
	if k := idxRune(bp.runes, c); k >= 0 {
		return bp.masks[k*bp.w : (k+1)*bp.w]
	}
	return nil
}

// advanceBlock advances one 64-row block of the DP column by one text rune.
// hin ∈ {-1, 0, +1} is the horizontal delta entering the block's top row;
// the returned hout is the delta leaving its bottom row (read at bit 63).
//
//silkmoth:hotpath
func advanceBlock(pv, mv, eq uint64, hin int) (pvOut, mvOut uint64, hout int) {
	var hinNeg uint64
	if hin < 0 {
		hinNeg = 1
	}
	xv := eq | mv
	eq |= hinNeg
	xh := (((eq & pv) + pv) ^ pv) | eq
	ph := mv | ^(xh | pv)
	mh := pv & xh
	hout = int(ph>>63) - int(mh>>63)
	ph = ph << 1
	mh = mh<<1 | hinNeg
	if hin > 0 {
		ph |= 1
	}
	pvOut = mh | ^(xv | ph)
	mvOut = ph & xv
	return pvOut, mvOut, hout
}

// myersBlocked is the multi-word kernel for patterns longer than 64 runes:
// the column is split into ⌈m/64⌉ blocks whose horizontal deltas chain
// through advanceBlock. The score is tracked at the pattern's true last row
// (bit (m-1)%64 of the last block), so the unused high bits of that block
// never influence the result. Bounded like myers64Bounded.
func myersBlocked(p, t []rune, maxDist int) int {
	m := len(p)
	w := (m + 63) / 64
	bp := buildBlockPeq(p, w)
	pv := make([]uint64, w)
	mv := make([]uint64, w)
	for b := range pv {
		pv[b] = ^uint64(0)
	}
	last := w - 1
	lastBit := uint64(1) << uint((m-1)%64)
	score := m
	for j, c := range t {
		eqs := bp.row(c)
		hin := 1
		for b := 0; b < last; b++ {
			var eq uint64
			if eqs != nil {
				eq = eqs[b]
			}
			pv[b], mv[b], hin = advanceBlock(pv[b], mv[b], eq, hin)
		}
		// Last block: hout is read at the pattern's final row instead of
		// bit 63 (no further block consumes a bit-63 carry).
		var eq uint64
		if eqs != nil {
			eq = eqs[last]
		}
		pvL, mvL := pv[last], mv[last]
		var hinNeg uint64
		if hin < 0 {
			hinNeg = 1
		}
		xv := eq | mvL
		eq |= hinNeg
		xh := (((eq & pvL) + pvL) ^ pvL) | eq
		ph := mvL | ^(xh | pvL)
		mh := pvL & xh
		if ph&lastBit != 0 {
			score++
		} else if mh&lastBit != 0 {
			score--
		}
		ph = ph << 1
		mh = mh<<1 | hinNeg
		if hin > 0 {
			ph |= 1
		}
		pv[last] = mh | ^(xv | ph)
		mv[last] = ph & xv
		if score-(len(t)-j-1) > maxDist {
			return maxDist + 1
		}
	}
	if score > maxDist {
		return maxDist + 1
	}
	return score
}
