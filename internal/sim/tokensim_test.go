package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"silkmoth/internal/tokens"
)

func TestDiceKnown(t *testing.T) {
	a := toksOf("p", "q", "r")
	b := toksOf("q", "r", "s")
	// 2·2/(3+3) = 2/3.
	if got := DiceSorted(a, b); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Dice = %v, want 2/3", got)
	}
	if DiceSorted(a, a) != 1 {
		t.Error("Dice(a,a) should be 1")
	}
	if DiceSorted(a, nil) != 0 || DiceSorted(nil, nil) != 0 {
		t.Error("Dice with empty side should be 0")
	}
}

func TestCosineKnown(t *testing.T) {
	a := toksOf("aa", "bb", "cc", "dd")
	b := toksOf("cc")
	// 1/√(4·1) = 0.5.
	if got := CosineSorted(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Cosine = %v, want 0.5", got)
	}
	if CosineSorted(a, a) != 1 {
		t.Error("Cosine(a,a) should be 1")
	}
	if CosineSorted(nil, b) != 0 {
		t.Error("Cosine with empty side should be 0")
	}
}

// Property: Dice and Cosine are symmetric, in [0,1], and sandwich Jaccard:
// Jac ≤ Dice ≤ 1 and Jac ≤ Cos (standard inequalities on set overlap).
func TestTokenSimilarityOrderings(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a := make([]tokens.ID, len(ra))
		for i, v := range ra {
			a[i] = tokens.ID(v % 24)
		}
		b := make([]tokens.ID, len(rb))
		for i, v := range rb {
			b[i] = tokens.ID(v % 24)
		}
		a, b = tokens.SortUnique(a), tokens.SortUnique(b)
		jac := JaccardSorted(a, b)
		dice := DiceSorted(a, b)
		cos := CosineSorted(a, b)
		if dice != DiceSorted(b, a) || cos != CosineSorted(b, a) {
			return false
		}
		if dice < 0 || dice > 1 || cos < 0 || cos > 1+1e-12 {
			return false
		}
		// Jac = ∩/(a+b-∩) ≤ 2∩/(a+b) = Dice; Jac ≤ ∩/√(ab) = Cos.
		return jac <= dice+1e-12 && jac <= cos+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// The signature-family bounds must be sound for Dice and Cosine: an element
// s missing k tokens of r has Dice ≤ 2(|r|-k)/(2|r|-k) and
// Cos ≤ √((|r|-k)/|r|). Probe with random survivors.
func TestDiceCosineBoundSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(8) + 1
		r := make([]tokens.ID, n)
		for i := range r {
			r[i] = tokens.ID(i) // distinct
		}
		k := rng.Intn(n + 1)
		// s keeps at most n-k of r's tokens (missing the "signature" k),
		// plus arbitrary outside tokens.
		var s []tokens.ID
		for i := k; i < n; i++ {
			if rng.Intn(2) == 0 {
				s = append(s, r[i])
			}
		}
		extra := rng.Intn(4)
		for i := 0; i < extra; i++ {
			s = append(s, tokens.ID(100+rng.Intn(50)))
		}
		s = tokens.SortUnique(s)

		dice := DiceSorted(r, s)
		cos := CosineSorted(r, s)
		l := float64(n)
		diceBound := 2 * (l - float64(k)) / (2*l - float64(k))
		cosBound := math.Sqrt((l - float64(k)) / l)
		if dice > diceBound+1e-12 {
			t.Fatalf("Dice bound violated: %v > %v (n=%d k=%d s=%v)", dice, diceBound, n, k, s)
		}
		if cos > cosBound+1e-12 {
			t.Fatalf("Cosine bound violated: %v > %v (n=%d k=%d s=%v)", cos, cosBound, n, k, s)
		}
	}
}
