// Package sim implements the element-level similarity functions SilkMoth
// supports (paper §2.1): token-based Jaccard, Dice, and cosine similarity
// and the two character-based edit similarities Eds and NEds, plus the
// similarity threshold wrapper φ_α.
//
// # Empty-input convention
//
// Every metric in this package agrees on one convention for empty inputs:
// a comparison in which either side is empty — an empty token slice, an
// empty string — has similarity 0, including empty vs empty. An empty
// element matches nothing, not everything; two empty elements are not
// evidence of relatedness. TestEmptyInputConvention pins the full metric
// table to this rule.
//
// # Kernels
//
// The hot verification kernels are bit-parallel and branch-reduced:
// Levenshtein and LevenshteinBounded run Myers' algorithm (one word-op
// column advance per text rune for ≤64-rune strings, blocked beyond), and
// IntersectSizeSorted picks galloping or block-skipped merge by size ratio.
// The scalar implementations they replaced are retained as *Ref functions
// and pinned bit-identical by differential fuzz targets and property tests.
//
// The kernels carry //silkmoth:hotpath annotations: the hotpath analyzer
// (internal/lint, run as `silkmothlint` in CI) statically rejects
// allocation-inducing constructs inside them, so the zero-allocation claim
// above is enforced at the source level, not just by AllocsPerRun tests.
// The retained *Ref oracles are unannotated on purpose — they trade
// allocations for obviousness.
package sim

import "silkmoth/internal/tokens"

// JaccardSorted returns |a∩b| / |a∪b| for two sorted, duplicate-free token
// id slices. An empty side — including both sides empty — has similarity 0
// (the package-wide empty-input convention).
func JaccardSorted(a, b []tokens.ID) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := IntersectSizeSorted(a, b)
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Alpha applies the similarity threshold α to a raw similarity score,
// returning 0 when the score falls below α (the φ_α of paper §2.1).
func Alpha(score, alpha float64) float64 {
	if score < alpha {
		return 0
	}
	return score
}
