// Package sim implements the element-level similarity functions SilkMoth
// supports (paper §2.1): token-based Jaccard similarity and the two
// character-based edit similarities Eds and NEds, plus the similarity
// threshold wrapper φ_α.
package sim

import "silkmoth/internal/tokens"

// JaccardSorted returns |a∩b| / |a∪b| for two sorted, duplicate-free token
// id slices. Two empty slices have similarity 0 (there is nothing to match).
func JaccardSorted(a, b []tokens.ID) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := IntersectSizeSorted(a, b)
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// IntersectSizeSorted returns |a∩b| for two sorted, duplicate-free token id
// slices using a linear merge.
func IntersectSizeSorted(a, b []tokens.ID) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Alpha applies the similarity threshold α to a raw similarity score,
// returning 0 when the score falls below α (the φ_α of paper §2.1).
func Alpha(score, alpha float64) float64 {
	if score < alpha {
		return 0
	}
	return score
}
