package sim

import (
	"math"
	"testing"
	"unicode/utf8"

	"silkmoth/internal/tokens"
)

// FuzzLevenshteinBoundedMatchesUnbounded pins the exact contract of the
// bounded kernel for every d ≥ 0 on arbitrary Unicode (and invalid UTF-8)
// inputs:
//
//	LevenshteinBounded(a, b, d) == min(Levenshtein(a, b), d+1)
//
// — not merely "exceeded implies > d". The same contract is enforced on the
// retained scalar reference, so a divergence in either kernel's band-edge
// maintenance or early abandonment fails loudly. Negative d is pinned to
// the documented always-exceeded convention (returns d+1 ≤ 0).
func FuzzLevenshteinBoundedMatchesUnbounded(f *testing.F) {
	f.Add("kitten", "sitting", 3)
	f.Add("", "abc", 0)
	f.Add("héllo", "hello", 1)
	f.Add("aaaa", "aaab", 10)
	f.Add("日本語データベース", "日本語テープ", 2)
	f.Add("\x00\x1f", "\x1f\x00", 2)
	f.Add("abcabc", "abcabc", -1)
	f.Fuzz(func(t *testing.T, a, b string, d int) {
		if len(a) > 96 {
			a = a[:96]
		}
		if len(b) > 96 {
			b = b[:96]
		}
		// The contract's interesting range is d ∈ [-2, max(len)+2]; larger
		// bounds never bind and smaller ones are clamped in.
		limit := len(a) + 2
		if len(b)+2 > limit {
			limit = len(b) + 2
		}
		if d > limit || d < -2 {
			d = ((d%limit)+limit)%limit - 2
		}
		if d < 0 {
			for _, got := range []int{LevenshteinBounded(a, b, d), LevenshteinBoundedRef(a, b, d)} {
				if got != d+1 {
					t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d, want always-exceeded %d", a, b, d, got, d+1)
				}
			}
			return
		}
		exact := LevenshteinRef(a, b)
		want := exact
		if d+1 < want {
			want = d + 1
		}
		if got := LevenshteinBounded(a, b, d); got != want {
			t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d, want min(exact=%d, d+1)=%d", a, b, d, got, exact, want)
		}
		if got := LevenshteinBoundedRef(a, b, d); got != want {
			t.Fatalf("LevenshteinBoundedRef(%q,%q,%d) = %d, want min(exact=%d, d+1)=%d", a, b, d, got, exact, want)
		}
	})
}

// FuzzLevenshteinMatchesRef pins the bit-parallel unbounded kernel (both
// the single-word and the blocked multi-word path — inputs exceed 64 runes)
// to the scalar reference dynamic program.
func FuzzLevenshteinMatchesRef(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "")
	f.Add("日本語", "日本")
	f.Add("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
		"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaab")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 160 {
			a = a[:160]
		}
		if len(b) > 160 {
			b = b[:160]
		}
		if got, want := Levenshtein(a, b), LevenshteinRef(a, b); got != want {
			t.Fatalf("Levenshtein(%q,%q) = %d, ref = %d", a, b, got, want)
		}
	})
}

// FuzzIntersectSizeSorted pins the adaptive intersection (galloping and
// block-merge kernels, both cutover sides) to the linear-merge reference on
// arbitrary sorted deduplicated inputs.
func FuzzIntersectSizeSorted(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{9})
	f.Add([]byte{7}, []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, ra, rb []byte) {
		a := make([]tokens.ID, len(ra))
		for i, v := range ra {
			a[i] = tokens.ID(v)
		}
		b := make([]tokens.ID, len(rb))
		for i, v := range rb {
			b[i] = tokens.ID(v)
		}
		a = tokens.SortUnique(a)
		b = tokens.SortUnique(b)
		want := IntersectSizeSortedRef(a, b)
		if got := IntersectSizeSorted(a, b); got != want {
			t.Fatalf("IntersectSizeSorted(%v,%v) = %d, ref = %d", a, b, got, want)
		}
		if got := IntersectSizeSorted(b, a); got != want {
			t.Fatalf("IntersectSizeSorted(%v,%v) = %d, ref = %d (swapped)", b, a, got, want)
		}
	})
}

// FuzzLevenshteinBounded cross-checks the banded edit distance against the
// plain dynamic program on arbitrary inputs, including invalid UTF-8 and
// control characters.
func FuzzLevenshteinBounded(f *testing.F) {
	f.Add("kitten", "sitting", 3)
	f.Add("", "abc", 0)
	f.Add("héllo", "hello", 1)
	f.Add("aaaa", "aaab", 10)
	f.Add("\x00\x1f", "\x1f\x00", 2)
	f.Fuzz(func(t *testing.T, a, b string, maxDist int) {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		if maxDist < -2 || maxDist > 80 {
			maxDist %= 80
		}
		exact := Levenshtein(a, b)
		got := LevenshteinBounded(a, b, maxDist)
		if exact <= maxDist {
			if got != exact {
				t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d, want %d", a, b, maxDist, got, exact)
			}
		} else if got <= maxDist {
			t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d, but exact is %d", a, b, maxDist, got, exact)
		}
	})
}

// FuzzEditSimilarities checks the invariants every φ must keep on arbitrary
// inputs: range, symmetry, and the thresholded variants matching their
// unthresholded definitions.
func FuzzEditSimilarities(f *testing.F) {
	f.Add("abc", "abd", 0.5)
	f.Add("", "", 0.7)
	f.Add("日本語", "日本", 0.8)
	f.Fuzz(func(t *testing.T, a, b string, alpha float64) {
		if len(a) > 48 {
			a = a[:48]
		}
		if len(b) > 48 {
			b = b[:48]
		}
		if alpha < 0 || alpha >= 1 || math.IsNaN(alpha) {
			alpha = 0.6
		}
		e := Eds(a, b)
		n := NEds(a, b)
		if e < 0 || e > 1 || n < 0 || n > 1 {
			t.Fatalf("similarity out of range: Eds=%v NEds=%v for %q,%q", e, n, a, b)
		}
		if Eds(b, a) != e || NEds(b, a) != n {
			t.Fatalf("asymmetric: %q, %q", a, b)
		}
		if math.Abs(EdsAlpha(a, b, alpha)-Alpha(e, alpha)) > 1e-12 {
			t.Fatalf("EdsAlpha mismatch for %q,%q α=%v", a, b, alpha)
		}
		if math.Abs(NEdsAlpha(a, b, alpha)-Alpha(n, alpha)) > 1e-12 {
			t.Fatalf("NEdsAlpha mismatch for %q,%q α=%v", a, b, alpha)
		}
		// Rune-level: the distance never exceeds the longer rune count.
		la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
		m := la
		if lb > m {
			m = lb
		}
		if d := Levenshtein(a, b); d > m {
			t.Fatalf("LD(%q,%q) = %d > max rune len %d", a, b, d, m)
		}
	})
}
