package sim

import (
	"math"
	"testing"
	"unicode/utf8"
)

// FuzzLevenshteinBounded cross-checks the banded edit distance against the
// plain dynamic program on arbitrary inputs, including invalid UTF-8 and
// control characters.
func FuzzLevenshteinBounded(f *testing.F) {
	f.Add("kitten", "sitting", 3)
	f.Add("", "abc", 0)
	f.Add("héllo", "hello", 1)
	f.Add("aaaa", "aaab", 10)
	f.Add("\x00\x1f", "\x1f\x00", 2)
	f.Fuzz(func(t *testing.T, a, b string, maxDist int) {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		if maxDist < -2 || maxDist > 80 {
			maxDist %= 80
		}
		exact := Levenshtein(a, b)
		got := LevenshteinBounded(a, b, maxDist)
		if exact <= maxDist {
			if got != exact {
				t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d, want %d", a, b, maxDist, got, exact)
			}
		} else if got <= maxDist {
			t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d, but exact is %d", a, b, maxDist, got, exact)
		}
	})
}

// FuzzEditSimilarities checks the invariants every φ must keep on arbitrary
// inputs: range, symmetry, and the thresholded variants matching their
// unthresholded definitions.
func FuzzEditSimilarities(f *testing.F) {
	f.Add("abc", "abd", 0.5)
	f.Add("", "", 0.7)
	f.Add("日本語", "日本", 0.8)
	f.Fuzz(func(t *testing.T, a, b string, alpha float64) {
		if len(a) > 48 {
			a = a[:48]
		}
		if len(b) > 48 {
			b = b[:48]
		}
		if alpha < 0 || alpha >= 1 || math.IsNaN(alpha) {
			alpha = 0.6
		}
		e := Eds(a, b)
		n := NEds(a, b)
		if e < 0 || e > 1 || n < 0 || n > 1 {
			t.Fatalf("similarity out of range: Eds=%v NEds=%v for %q,%q", e, n, a, b)
		}
		if Eds(b, a) != e || NEds(b, a) != n {
			t.Fatalf("asymmetric: %q, %q", a, b)
		}
		if math.Abs(EdsAlpha(a, b, alpha)-Alpha(e, alpha)) > 1e-12 {
			t.Fatalf("EdsAlpha mismatch for %q,%q α=%v", a, b, alpha)
		}
		if math.Abs(NEdsAlpha(a, b, alpha)-Alpha(n, alpha)) > 1e-12 {
			t.Fatalf("NEdsAlpha mismatch for %q,%q α=%v", a, b, alpha)
		}
		// Rune-level: the distance never exceeds the longer rune count.
		la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
		m := la
		if lb > m {
			m = lb
		}
		if d := Levenshtein(a, b); d > m {
			t.Fatalf("LD(%q,%q) = %d > max rune len %d", a, b, d, m)
		}
	})
}
