package sim

import "silkmoth/internal/tokens"

// gallopRatio is the adaptive cutover of IntersectSizeSorted: when the
// longer side is at least this many times the shorter one, per-probe
// galloping (exponential probe + binary search, O(|a|·log(|b|/|a|)))
// beats walking the long side, even block-skipped. At smaller skews the
// block merge's sequential access wins.
const gallopRatio = 8

// mergeGallopTrigger is how many consecutive one-sided advances the
// adaptive merge tolerates before switching that side to a galloping skip.
// Below the trigger the loop is a plain merge (one counter update of
// overhead); at the trigger the run is provably long, so the exponential
// probe amortizes. An always-on 8-wide block skip was measured first and
// retired: evaluating block bounds every iteration made similar-size
// intersections ~2× slower than the plain merge it was meant to beat.
const mergeGallopTrigger = 8

// IntersectSizeSorted returns |a∩b| for two sorted, duplicate-free token id
// slices. It picks the kernel by size ratio: a run-adaptive merge for
// similar sizes (plain linear merge that shifts into galloping skips when
// one side runs far below the other — disjoint id regions cost log, not
// linear), and per-probe galloping for skewed ones (the common shape when a
// short query element meets a long indexed one). Both kernels are pinned
// bit-identical to the linear-merge reference IntersectSizeSortedRef.
//
//silkmoth:hotpath
func IntersectSizeSorted(a, b []tokens.ID) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= gallopRatio*len(a) {
		return intersectGallop(a, b)
	}
	if len(b) < adaptiveMinLong {
		// Tiny sets — the common word-element shape — cannot contain a run
		// long enough to trip the gallop trigger; skip the counters.
		return intersectMerge(a, b)
	}
	return intersectAdaptiveMerge(a, b)
}

// adaptiveMinLong is the smallest long-side size worth the adaptive
// merge's run counters: below roughly two trigger windows a gallop could
// never engage, so the plain merge's tighter loop wins outright.
const adaptiveMinLong = 2 * mergeGallopTrigger

// intersectMerge is the plain two-cursor linear merge, the fastest kernel
// for small similar-size sets.
//
//silkmoth:hotpath
func intersectMerge(a, b []tokens.ID) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// intersectGallop intersects by galloping: for each id of the short side a,
// exponentially probe forward in b for the first position ≥ id, then binary
// search inside the overshoot window. The cursor only moves forward, so the
// whole intersection costs O(|a|·log(|b|/|a|)).
//
//silkmoth:hotpath
func intersectGallop(a, b []tokens.ID) int {
	n, j := 0, 0
	for _, x := range a {
		j = gallopLowerBound(b, j, x)
		if j == len(b) {
			break
		}
		if b[j] == x {
			n++
			j++
		}
	}
	return n
}

// gallopLowerBound returns the smallest index ≥ lo with b[i] ≥ x, galloping
// from lo: doubling steps until overshoot, then binary search in the last
// window. b[lo:] must be sorted.
//
//silkmoth:hotpath
func gallopLowerBound(b []tokens.ID, lo int, x tokens.ID) int {
	if lo >= len(b) || b[lo] >= x {
		return lo
	}
	// Invariant: b[base] < x. Double the step until b[base+step] ≥ x or the
	// slice ends.
	base, step := lo, 1
	for base+step < len(b) && b[base+step] < x {
		base += step
		step <<= 1
	}
	hi := base + step
	if hi > len(b) {
		hi = len(b)
	}
	lo = base + 1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intersectAdaptiveMerge is a linear merge with a gallop mode: while the
// sides alternate it is the plain two-cursor merge, but once one cursor
// advances mergeGallopTrigger times in a row — the signature of disjoint id
// regions — that side's run is finished with an exponential probe plus
// binary search instead of one comparison per id.
//
//silkmoth:hotpath
func intersectAdaptiveMerge(a, b []tokens.ID) int {
	n, i, j := 0, 0, 0
	runA, runB := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
			runA++
			if runA >= mergeGallopTrigger {
				i = gallopLowerBound(a, i, b[j])
				runA = 0
			}
			runB = 0
		case a[i] > b[j]:
			j++
			runB++
			if runB >= mergeGallopTrigger {
				j = gallopLowerBound(b, j, a[i])
				runB = 0
			}
			runA = 0
		default:
			n++
			i++
			j++
			runA, runB = 0, 0
		}
	}
	return n
}

// IntersectSizeSortedRef is the plain linear merge IntersectSizeSorted
// replaced, retained as the reference oracle for the kernel fuzz targets
// and property tests.
func IntersectSizeSortedRef(a, b []tokens.ID) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
