package sim

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-rune insertions, deletions, and substitutions transforming one
// into the other. It dispatches to Myers' bit-parallel kernel (myers.go):
// one word-op column advance per text rune when the shorter string fits a
// 64-bit word, the blocked multi-word kernel beyond that. Strings of at
// most 64 runes are processed without heap allocation.
//
//silkmoth:hotpath
func Levenshtein(a, b string) int {
	var ab, bb [64]rune
	ra := appendRunes(ab[:0], a)
	rb := appendRunes(bb[:0], b)
	return levenshteinRunes(ra, rb)
}

//silkmoth:hotpath
func levenshteinRunes(ra, rb []rune) int {
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	// rb is the shorter string — the bit-parallel pattern.
	if len(rb) == 0 {
		return len(ra)
	}
	if len(rb) <= 64 {
		return myers64(rb, ra)
	}
	return myersBlocked(rb, ra, len(ra)+len(rb))
}

// LevenshteinBounded returns min(Levenshtein(a, b), maxDist+1): the exact
// edit distance whenever it is at most maxDist, and exactly maxDist+1
// otherwise. It runs the bit-parallel kernel with early abandonment — the
// column loop stops as soon as even the most favorable remaining suffix
// cannot bring the distance back under the bound — which is the thresholded
// fast path behind EdsAlpha and NEdsAlpha.
//
// A negative maxDist always reports exceeded by returning maxDist+1, which
// is ≤ 0; callers must test `> maxDist`, never `== 0`, to detect the
// exceeded case (LevenshteinBounded(x, x, -1) == 0 does not mean equal).
//
//silkmoth:hotpath
func LevenshteinBounded(a, b string, maxDist int) int {
	if maxDist < 0 {
		return maxDist + 1
	}
	var ab, bb [64]rune
	ra := appendRunes(ab[:0], a)
	rb := appendRunes(bb[:0], b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(ra)-len(rb) > maxDist {
		return maxDist + 1
	}
	if maxDist >= len(ra) {
		// The bound can never bind (distance ≤ longer length), and
		// maxDist+1 could overflow for huge bounds — answer exactly.
		return levenshteinRunes(ra, rb)
	}
	if len(rb) == 0 {
		return len(ra) // ≤ maxDist by the length check above
	}
	if len(rb) <= 64 {
		return myers64Bounded(rb, ra, maxDist)
	}
	return myersBlocked(rb, ra, maxDist)
}

// appendRunes appends the runes of s to buf and returns the result. Callers
// pass a stack-backed buffer so short strings decode without allocating.
//
//silkmoth:hotpath
func appendRunes(buf []rune, s string) []rune {
	for _, c := range s {
		buf = append(buf, c)
	}
	return buf
}

// LevenshteinRef is the scalar O(|a|·|b|) dynamic program Levenshtein
// replaced, retained as the reference oracle for the differential fuzz
// targets and kernel property tests. Production code should call
// Levenshtein.
func LevenshteinRef(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	// rb is the shorter string; the DP row has len(rb)+1 entries.
	if len(rb) == 0 {
		return len(ra)
	}
	row := make([]int, len(rb)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		prev := row[0] // row[i-1][0]
		row[0] = i
		for j := 1; j <= len(rb); j++ {
			cur := row[j]
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			row[j] = min3(row[j]+1, row[j-1]+1, prev+cost)
			prev = cur
		}
	}
	return row[len(rb)]
}

// LevenshteinBoundedRef is the scalar banded dynamic program
// LevenshteinBounded replaced: a diagonal band of width O(maxDist) with
// early termination once every in-band value exceeds the bound. Retained as
// the reference oracle; it keeps the same min(exact, maxDist+1) contract,
// including the negative-maxDist convention.
func LevenshteinBoundedRef(a, b string, maxDist int) int {
	if maxDist < 0 {
		return maxDist + 1
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(ra)-len(rb) > maxDist {
		return maxDist + 1
	}
	if maxDist >= len(ra) {
		// The bound can never bind. Answering exactly also keeps the band
		// arithmetic below overflow-free: with a huge maxDist, i+maxDist
		// would wrap negative, silently emptying every band row and
		// reporting an in-bound distance as exceeded.
		return LevenshteinRef(a, b)
	}
	if len(rb) == 0 {
		if len(ra) > maxDist {
			return maxDist + 1
		}
		return len(ra)
	}
	const inf = int(^uint(0) >> 2)
	n, m := len(ra), len(rb)
	// row[j] = edit distance between ra[:i] and rb[:j], computed only inside
	// the diagonal band |i-j| ≤ maxDist.
	row := make([]int, m+1)
	for j := 0; j <= m; j++ {
		if j > maxDist {
			row[j] = inf
		} else {
			row[j] = j
		}
	}
	for i := 1; i <= n; i++ {
		lo := i - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := i + maxDist
		if hi > m {
			hi = m
		}
		var prev int // row[i-1][lo-1]
		if lo-1 >= 0 {
			prev = row[lo-1]
		}
		if lo == 1 {
			if i > maxDist {
				row[0] = inf
			} else {
				row[0] = i
			}
		}
		if lo-2 >= 0 {
			row[lo-2] = inf // outside band for subsequent rows
		}
		best := inf
		for j := lo; j <= hi; j++ {
			cur := row[j]
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			up := inf
			if j <= i-1+maxDist { // row[i-1][j] inside previous band
				up = cur
			}
			left := inf
			if j-1 >= lo || j-1 == 0 {
				left = row[j-1]
			}
			v := prev + cost
			if up+1 < v {
				v = up + 1
			}
			if left+1 < v {
				v = left + 1
			}
			if v > inf {
				v = inf
			}
			row[j] = v
			if v < best {
				best = v
			}
			prev = cur
		}
		if hi < m {
			row[hi+1] = inf
		}
		if best > maxDist {
			return maxDist + 1
		}
	}
	if row[m] > maxDist {
		return maxDist + 1
	}
	return row[m]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
