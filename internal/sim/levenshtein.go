package sim

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-rune insertions, deletions, and substitutions transforming one
// into the other. It runs in O(|a|·|b|) time and O(min(|a|,|b|)) space.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	return levenshteinRunes(ra, rb)
}

func levenshteinRunes(ra, rb []rune) int {
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	// rb is the shorter string; the DP row has len(rb)+1 entries.
	if len(rb) == 0 {
		return len(ra)
	}
	row := make([]int, len(rb)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		prev := row[0] // row[i-1][0]
		row[0] = i
		for j := 1; j <= len(rb); j++ {
			cur := row[j]
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			row[j] = min3(row[j]+1, row[j-1]+1, prev+cost)
			prev = cur
		}
	}
	return row[len(rb)]
}

// LevenshteinBounded returns the edit distance between a and b if it is at
// most maxDist, and otherwise returns maxDist+1. It uses a banded dynamic
// program of width O(maxDist), running in O(maxDist·min(|a|,|b|)) time,
// which is the standard early-termination trick for thresholded edit
// similarity. A negative maxDist always reports exceeded.
func LevenshteinBounded(a, b string, maxDist int) int {
	if maxDist < 0 {
		return maxDist + 1
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(ra)-len(rb) > maxDist {
		return maxDist + 1
	}
	if len(rb) == 0 {
		if len(ra) > maxDist {
			return maxDist + 1
		}
		return len(ra)
	}
	const inf = int(^uint(0) >> 2)
	n, m := len(ra), len(rb)
	// row[j] = edit distance between ra[:i] and rb[:j], computed only inside
	// the diagonal band |i-j| ≤ maxDist.
	row := make([]int, m+1)
	for j := 0; j <= m; j++ {
		if j > maxDist {
			row[j] = inf
		} else {
			row[j] = j
		}
	}
	for i := 1; i <= n; i++ {
		lo := i - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := i + maxDist
		if hi > m {
			hi = m
		}
		var prev int // row[i-1][lo-1]
		if lo-1 >= 0 {
			prev = row[lo-1]
		}
		if lo == 1 {
			if i > maxDist {
				row[0] = inf
			} else {
				row[0] = i
			}
		}
		if lo-2 >= 0 {
			row[lo-2] = inf // outside band for subsequent rows
		}
		best := inf
		for j := lo; j <= hi; j++ {
			cur := row[j]
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			up := inf
			if j <= i-1+maxDist { // row[i-1][j] inside previous band
				up = cur
			}
			left := inf
			if j-1 >= lo || j-1 == 0 {
				left = row[j-1]
			}
			v := prev + cost
			if up+1 < v {
				v = up + 1
			}
			if left+1 < v {
				v = left + 1
			}
			if v > inf {
				v = inf
			}
			row[j] = v
			if v < best {
				best = v
			}
			prev = cur
		}
		if hi < m {
			row[hi+1] = inf
		}
		if best > maxDist {
			return maxDist + 1
		}
	}
	if row[m] > maxDist {
		return maxDist + 1
	}
	return row[m]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
