package sim

import "unicode/utf8"

// Eds returns the edit similarity of paper §2.1:
//
//	Eds(x, y) = 1 - 2·LD(x,y) / (|x| + |y| + LD(x,y))
//
// following Li & Liu's normalized Levenshtein metric, whose dual distance
// 1-Eds satisfies the triangle inequality. Two empty strings have
// similarity 0 (an empty element matches nothing).
func Eds(x, y string) float64 {
	lx, ly := utf8.RuneCountInString(x), utf8.RuneCountInString(y)
	if lx == 0 && ly == 0 {
		return 0
	}
	ld := Levenshtein(x, y)
	return 1 - 2*float64(ld)/float64(lx+ly+ld)
}

// NEds returns the alternative normalized edit similarity of paper §2.1:
//
//	NEds(x, y) = 1 - LD(x,y) / max(|x|, |y|)
//
// Its dual distance does not satisfy the triangle inequality, so the
// reduction-based verification of §5.3 is unavailable under NEds.
func NEds(x, y string) float64 {
	lx, ly := utf8.RuneCountInString(x), utf8.RuneCountInString(y)
	m := lx
	if ly > m {
		m = ly
	}
	if m == 0 {
		return 0
	}
	ld := Levenshtein(x, y)
	return 1 - float64(ld)/float64(m)
}

// EdsAlpha returns φ_α(x, y) under Eds: the edit similarity when it is at
// least alpha and 0 otherwise. For alpha > 0 it uses a banded edit distance
// computation that abandons early once the distance bound implied by alpha
// is exceeded: Eds(x,y) ≥ α ⟺ LD(x,y) ≤ (1-α)(|x|+|y|)/(1+α).
func EdsAlpha(x, y string, alpha float64) float64 {
	if alpha <= 0 {
		return Eds(x, y)
	}
	lx, ly := utf8.RuneCountInString(x), utf8.RuneCountInString(y)
	if lx == 0 && ly == 0 {
		return 0
	}
	maxDist := int((1-alpha)*float64(lx+ly)/(1+alpha)) + 1
	ld := LevenshteinBounded(x, y, maxDist)
	if ld > maxDist {
		return 0
	}
	s := 1 - 2*float64(ld)/float64(lx+ly+ld)
	return Alpha(s, alpha)
}

// NEdsAlpha returns φ_α(x, y) under NEds, using a banded edit distance
// computation for alpha > 0: NEds(x,y) ≥ α ⟺ LD(x,y) ≤ (1-α)·max(|x|,|y|).
func NEdsAlpha(x, y string, alpha float64) float64 {
	if alpha <= 0 {
		return NEds(x, y)
	}
	lx, ly := utf8.RuneCountInString(x), utf8.RuneCountInString(y)
	m := lx
	if ly > m {
		m = ly
	}
	if m == 0 {
		return 0
	}
	maxDist := int((1-alpha)*float64(m)) + 1
	ld := LevenshteinBounded(x, y, maxDist)
	if ld > maxDist {
		return 0
	}
	s := 1 - float64(ld)/float64(m)
	return Alpha(s, alpha)
}
