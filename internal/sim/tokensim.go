package sim

import (
	"math"

	"silkmoth/internal/tokens"
)

// DiceSorted returns the Dice coefficient 2|a∩b| / (|a|+|b|) for two sorted,
// duplicate-free token id slices. Two empty slices have similarity 0.
func DiceSorted(a, b []tokens.ID) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := IntersectSizeSorted(a, b)
	return 2 * float64(inter) / float64(len(a)+len(b))
}

// CosineSorted returns the set cosine similarity |a∩b| / √(|a|·|b|) for two
// sorted, duplicate-free token id slices. Two empty slices have
// similarity 0.
func CosineSorted(a, b []tokens.ID) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := IntersectSizeSorted(a, b)
	return float64(inter) / math.Sqrt(float64(len(a))*float64(len(b)))
}
