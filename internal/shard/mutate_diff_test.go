package shard

import (
	"context"
	"fmt"
	"testing"

	"silkmoth/internal/core"
	"silkmoth/internal/dataset"
)

// The mutation metamorphic harness: an engine that Adds then Deletes (and
// Updates) must be indistinguishable from an engine built fresh over only
// the surviving sets — same match sets, bit-identical scores, same
// canonical order — for every metric × similarity combination, on the
// serial core engine and on sharded engines at N ∈ {1, 2, 7}, both before
// and after compaction. Set indices differ between the two engines (the
// mutated one has tombstoned holes), but live ids keep their relative
// order, so a monotone id map makes the comparison exact. This is the
// delete-then-rebuild equivalence the VDBMS bug literature singles out:
// mutation paths must never change what a query returns.

// mutationPlan derives a deterministic mutation schedule over n original
// sets: every third set is deleted, and every fourth (not already chosen)
// is updated to carry another set's elements under a new name.
type mutationPlan struct {
	deletes []int
	updates []int
}

func planMutations(n int) mutationPlan {
	var p mutationPlan
	for i := 0; i < n; i++ {
		switch {
		case i%3 == 1:
			p.deletes = append(p.deletes, i)
		case i%4 == 2:
			p.updates = append(p.updates, i)
		}
	}
	return p
}

// updatedVersion is the deterministic replacement content for original set
// i: another set's elements under a fresh name, so updates genuinely move
// content around.
func updatedVersion(raws []dataset.RawSet, i int) dataset.RawSet {
	src := raws[(i*7+5)%len(raws)]
	return dataset.RawSet{Name: raws[i].Name + "+v2", Elements: src.Elements}
}

// survivors returns the fresh-build input: original sets that were neither
// deleted nor updated, in id order, followed by the updated versions in
// application order — exactly the live-id order of the mutated engine.
func survivors(raws []dataset.RawSet, p mutationPlan) []dataset.RawSet {
	gone := make(map[int]bool)
	for _, i := range p.deletes {
		gone[i] = true
	}
	for _, i := range p.updates {
		gone[i] = true
	}
	var out []dataset.RawSet
	for i, r := range raws {
		if !gone[i] {
			out = append(out, r)
		}
	}
	for _, i := range p.updates {
		out = append(out, updatedVersion(raws, i))
	}
	return out
}

// liveIDMap returns the mutated engine's live global ids in ascending
// order (position = fresh-engine index) plus the inverse map from global
// id to fresh index.
func liveIDMap(numSlots int, alive func(int) bool) (liveIDs []int, toFresh map[int]int) {
	toFresh = make(map[int]int)
	for g := 0; g < numSlots; g++ {
		if alive(g) {
			toFresh[g] = len(liveIDs)
			liveIDs = append(liveIDs, g)
		}
	}
	return liveIDs, toFresh
}

// mutatedEngine abstracts the serial core engine and the sharded engine
// behind the operations the harness replays and checks.
type mutatedEngine struct {
	name     string
	coll     *dataset.Collection // mutated collection (with holes)
	alive    func(g int) bool
	search   func(ctx context.Context, r *dataset.Set) ([]core.Match, error)
	topk     func(ctx context.Context, r *dataset.Set, k int) ([]core.Match, error)
	discover func(ctx context.Context) ([]core.Pair, error)
	compact  func()
}

// buildMutatedSerial applies the plan to a serial core engine over the
// full corpus.
func buildMutatedSerial(t *testing.T, raws []dataset.RawSet, p mutationPlan, sim core.SimKind, delta, alpha float64, opts core.Options) *mutatedEngine {
	t.Helper()
	coll := buildColl(raws, sim, delta, alpha)
	eng, err := core.NewEngine(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range p.updates {
		from := dataset.Append(coll, []dataset.RawSet{updatedVersion(raws, i)})
		eng.AppendSets(from)
		if err := eng.Delete(i); err != nil {
			t.Fatalf("update-delete %d: %v", i, err)
		}
	}
	for _, i := range p.deletes {
		if err := eng.Delete(i); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	return &mutatedEngine{
		name:  "serial",
		coll:  coll,
		alive: eng.Alive,
		search: func(ctx context.Context, r *dataset.Set) ([]core.Match, error) {
			ms, err := eng.SearchContext(ctx, r)
			sortMatches(ms)
			return ms, err
		},
		topk: func(ctx context.Context, r *dataset.Set, k int) ([]core.Match, error) {
			return eng.SearchTopKContext(ctx, r, k)
		},
		discover: func(ctx context.Context) ([]core.Pair, error) {
			ps, err := eng.DiscoverContext(ctx, coll)
			sortPairs(ps)
			return ps, err
		},
		compact: eng.Compact,
	}
}

// buildMutatedSharded applies the plan to a sharded engine.
func buildMutatedSharded(t *testing.T, raws []dataset.RawSet, p mutationPlan, n int, sim core.SimKind, delta, alpha float64, opts core.Options) *mutatedEngine {
	t.Helper()
	coll := buildColl(raws, sim, delta, alpha)
	e, err := New(coll, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range p.updates {
		if _, err := e.Update(i, updatedVersion(raws, i)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	for _, i := range p.deletes {
		if err := e.Delete(i); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	return &mutatedEngine{
		name:     fmt.Sprintf("N=%d", n),
		coll:     coll,
		alive:    e.Alive,
		search:   e.SearchContext,
		topk:     e.SearchTopKContext,
		discover: func(ctx context.Context) ([]core.Pair, error) { return e.DiscoverContext(ctx, e.Collection()) },
		compact:  e.Compact,
	}
}

// checkMutatedAgainstFresh compares one mutated engine's full query
// surface against the fresh reference results under the monotone id map.
func checkMutatedAgainstFresh(t *testing.T, stage string, m *mutatedEngine, fresh *dataset.Collection, wantMatches [][]core.Match, wantPairs []core.Pair) {
	t.Helper()
	ctx := context.Background()
	liveIDs, toFresh := liveIDMap(len(m.coll.Sets), m.alive)
	if len(liveIDs) != len(fresh.Sets) {
		t.Fatalf("%s/%s: %d live sets, fresh has %d", m.name, stage, len(liveIDs), len(fresh.Sets))
	}

	// Discovery: pairs map elementwise under the monotone id map.
	gotPairs, err := m.discover(ctx)
	if err != nil {
		t.Fatalf("%s/%s: discover: %v", m.name, stage, err)
	}
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("%s/%s: %d pairs, fresh found %d", m.name, stage, len(gotPairs), len(wantPairs))
	}
	for i, got := range gotPairs {
		mapped := core.Pair{R: toFresh[got.R], S: toFresh[got.S], Relatedness: got.Relatedness, Score: got.Score}
		if mapped != wantPairs[i] { // exact: mapped indices AND float scores
			t.Fatalf("%s/%s: pair %d = %+v (mapped %+v), fresh %+v", m.name, stage, i, got, mapped, wantPairs[i])
		}
	}

	// Per-reference search and top-k prefixes, one reference per live set.
	for fi, g := range liveIDs {
		got, err := m.search(ctx, &m.coll.Sets[g])
		if err != nil {
			t.Fatalf("%s/%s: search %d: %v", m.name, stage, g, err)
		}
		want := wantMatches[fi]
		if len(got) != len(want) {
			t.Fatalf("%s/%s: ref %d: %d matches, fresh found %d", m.name, stage, g, len(got), len(want))
		}
		for i, gm := range got {
			mapped := core.Match{Set: toFresh[gm.Set], Relatedness: gm.Relatedness, Score: gm.Score}
			if mapped != want[i] {
				t.Fatalf("%s/%s: ref %d match %d = %+v (mapped %+v), fresh %+v", m.name, stage, g, i, gm, mapped, want[i])
			}
		}
		for _, k := range []int{1, 3} {
			gotK, err := m.topk(ctx, &m.coll.Sets[g], k)
			if err != nil {
				t.Fatalf("%s/%s: topk %d: %v", m.name, stage, g, err)
			}
			wantK := want
			if len(wantK) > k {
				wantK = wantK[:k]
			}
			if len(gotK) != len(wantK) {
				t.Fatalf("%s/%s: ref %d top-%d: %d matches, want %d", m.name, stage, g, k, len(gotK), len(wantK))
			}
			for i, gm := range gotK {
				mapped := core.Match{Set: toFresh[gm.Set], Relatedness: gm.Relatedness, Score: gm.Score}
				if mapped != wantK[i] {
					t.Fatalf("%s/%s: ref %d top-%d item %d = %+v (mapped %+v), want %+v", m.name, stage, g, k, i, gm, mapped, wantK[i])
				}
			}
		}
	}
}

// runMutationDifferential is the harness body for one metric × similarity
// case.
func runMutationDifferential(t *testing.T, metric core.Metric, sim core.SimKind, delta, alpha float64) {
	t.Helper()
	raws := corpusRaws(sim, 77)
	p := planMutations(len(raws))
	opts := core.DefaultOptions(metric, sim, delta, alpha)
	opts.Concurrency = 3
	// Automatic compaction stays off (DefaultOptions) so the harness can
	// pin the tombstoned state first, then compact explicitly.

	// Fresh reference: a serial engine built from only the surviving sets.
	surv := survivors(raws, p)
	fresh := buildColl(surv, sim, delta, alpha)
	ref, err := core.NewEngine(fresh, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs, err := ref.DiscoverContext(context.Background(), fresh)
	if err != nil {
		t.Fatal(err)
	}
	sortPairs(wantPairs)
	if len(wantPairs) == 0 {
		t.Fatal("surviving workload produced no related pairs; tune the corpus or thresholds")
	}
	wantMatches := make([][]core.Match, len(fresh.Sets))
	for fi := range fresh.Sets {
		ms, err := ref.SearchContext(context.Background(), &fresh.Sets[fi])
		if err != nil {
			t.Fatal(err)
		}
		sortMatches(ms)
		wantMatches[fi] = ms
	}

	engines := []*mutatedEngine{
		buildMutatedSerial(t, raws, p, sim, delta, alpha, opts),
	}
	for _, n := range diffShardCounts {
		engines = append(engines, buildMutatedSharded(t, raws, p, n, sim, delta, alpha, opts))
	}
	for _, m := range engines {
		checkMutatedAgainstFresh(t, "tombstoned", m, fresh, wantMatches, wantPairs)
		m.compact()
		checkMutatedAgainstFresh(t, "compacted", m, fresh, wantMatches, wantPairs)
	}
}

// TestMutationDifferential sweeps the full metric × similarity grid
// through the delete-then-rebuild harness.
func TestMutationDifferential(t *testing.T) {
	for _, metric := range []core.Metric{core.SetSimilarity, core.SetContainment} {
		for _, sim := range []core.SimKind{core.Jaccard, core.Eds, core.NEds, core.Dice, core.Cosine} {
			metric, sim := metric, sim
			delta := 0.6
			if sim.TokenMode() == dataset.ModeQGram {
				delta = 0.7 // edit similarities: q = DefaultQ(0.7, 0) = 2
			}
			t.Run(fmt.Sprintf("%s/%s", metric, sim), func(t *testing.T) {
				t.Parallel()
				runMutationDifferential(t, metric, sim, delta, 0)
			})
		}
	}
}
