package shard

import (
	"context"
	"errors"
	"time"

	"silkmoth/internal/core"
	"silkmoth/internal/dataset"
)

// SearchBatchContext answers one search per reference set. Queries fan
// out across Concurrency workers; each worker owns one reusable
// core.Searcher per shard (verification runs serially within a pass, as
// in Discover), so batch parallelism stays bounded at Concurrency instead
// of compounding with per-pass verification fan-out, and the per-shard
// collector scratch amortizes across the whole batch. Results are
// positionally aligned with refs, each sorted by descending relatedness
// (ties by global index), identical to running SearchContext per ref. The
// first error aborts the whole batch.
func (e *Engine) SearchBatchContext(ctx context.Context, refs []*dataset.Set) ([][]core.Match, error) {
	return e.SearchBatchQueries(ctx, refs, nil)
}

// SearchBatchQueries is SearchBatchContext with per-item overrides: qs,
// when non-nil, must align positionally with refs, and each item's passes
// run under its own query (nil items inherit the engine's configuration).
// An item whose query carries a Stats capture also gets its wall time
// accumulated there (AddElapsed), measured around the item's full
// cross-shard pass sequence.
func (e *Engine) SearchBatchQueries(ctx context.Context, refs []*dataset.Set, qs []*core.Query) ([][]core.Match, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	if qs != nil && len(qs) != len(refs) {
		return nil, errors.New("shard: per-item queries must align with refs")
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			return nil, err
		}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	workers := Workers(e.opts.Concurrency, len(refs))
	searchers := make([][]*core.Searcher, workers)
	for w := range searchers {
		searchers[w] = make([]*core.Searcher, e.nshards)
		for s := range searchers[w] {
			searchers[w][s] = e.engines[s].NewSearcher()
		}
	}
	defer func() {
		for _, ss := range searchers {
			for _, sr := range ss {
				sr.Close()
			}
		}
	}()

	out := make([][]core.Match, len(refs))
	err := FanOut(ctx, len(refs), workers, func(ctx context.Context, w, qi int) error {
		var q *core.Query
		if qs != nil {
			q = qs[qi]
		}
		var start time.Time
		timed := q != nil && q.Stats != nil
		if timed {
			start = time.Now()
		}
		var ms []core.Match
		for s := 0; s < e.nshards; s++ {
			sm, err := searchers[w][s].SearchQuery(ctx, refs[qi], -1, q)
			if err != nil {
				return err
			}
			g := e.l2g[s]
			for i := range sm {
				sm[i].Set = g[sm[i].Set]
			}
			ms = append(ms, sm...)
		}
		sortMatches(ms)
		out[qi] = ms
		if timed {
			q.Stats.AddElapsed(time.Since(start))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
