package shard

import (
	"context"
	"runtime"
	"testing"

	"silkmoth/internal/core"
	"silkmoth/internal/datagen"
	"silkmoth/internal/dataset"
)

// The sharded-vs-serial benchmark pairs. Results are recorded in
// BENCH_shard.json; on a single-core container the sharded numbers track
// the serial ones (scatter-gather adds only goroutine overhead), with the
// speedup appearing as cores do.

const benchTables = 300

func benchColl(b *testing.B) *dataset.Collection {
	b.Helper()
	return wordColl(datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: benchTables, Seed: 11}))
}

func benchOpts() core.Options {
	return jaccardOpts(runtime.GOMAXPROCS(0))
}

func BenchmarkSerialDiscover(b *testing.B) {
	coll := benchColl(b)
	eng, err := core.NewEngine(coll, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ps, err := eng.DiscoverContext(context.Background(), coll); err != nil || len(ps) == 0 {
			b.Fatalf("pairs=%d err=%v", len(ps), err)
		}
	}
}

func BenchmarkShardedDiscover(b *testing.B) {
	coll := benchColl(b)
	eng, err := New(coll, 4, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ps, err := eng.DiscoverContext(context.Background(), eng.Collection()); err != nil || len(ps) == 0 {
			b.Fatalf("pairs=%d err=%v", len(ps), err)
		}
	}
}

// benchRefs uses the first 64 collection sets as the query batch.
func benchRefs(coll *dataset.Collection) []*dataset.Set {
	refs := make([]*dataset.Set, 64)
	for i := range refs {
		refs[i] = &coll.Sets[i]
	}
	return refs
}

func BenchmarkSerialSearchLoop(b *testing.B) {
	coll := benchColl(b)
	eng, err := core.NewEngine(coll, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	refs := benchRefs(coll)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range refs {
			if _, err := eng.SearchContext(context.Background(), r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSearchBatch(b *testing.B) {
	coll := benchColl(b)
	eng, err := New(coll, 4, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	refs := benchRefs(coll)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchBatchContext(context.Background(), refs); err != nil {
			b.Fatal(err)
		}
	}
}
