package shard

import (
	"context"
	"sync"
	"testing"

	"silkmoth/internal/datagen"
	"silkmoth/internal/dataset"
)

// TestConcurrentAddSearchBatchDiscover is the -race stress test for the
// sharded engine, mirroring the core package's concurrent coverage:
// writers grow the collection through Add while readers run SearchBatch,
// Discover, and top-k searches against it. Results are not asserted
// against a fixed expectation — the collection is a moving target — but
// every returned index must be in range and every call must complete
// without data races.
func TestConcurrentAddSearchBatchDiscover(t *testing.T) {
	ctx := context.Background()
	raws := datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 100, Seed: 3})
	base, extra := raws[:60], raws[60:]
	coll := wordColl(base)
	e, err := New(coll, 4, jaccardOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	dict := e.Collection().Dict

	queries := datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 8, Seed: 5})

	var wg sync.WaitGroup
	errc := make(chan error, 16)

	// Writer: feed the held-out sets in as four uneven batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for len(extra) > 0 {
			n := 11
			if n > len(extra) {
				n = len(extra)
			}
			e.Add(extra[:n])
			extra = extra[n:]
		}
	}()

	// Batch searchers: tokenize against the shared dictionary (interning
	// races with Add's interning by design) and fan batches out.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				qc := dataset.BuildWord(dict, queries)
				refs := make([]*dataset.Set, len(qc.Sets))
				for i := range qc.Sets {
					refs[i] = &qc.Sets[i]
				}
				res, err := e.SearchBatchContext(ctx, refs)
				if err != nil {
					errc <- err
					return
				}
				n := e.Len() // may have grown since the search; bound check only
				for _, ms := range res {
					for _, m := range ms {
						if m.Set < 0 || m.Set >= n {
							t.Errorf("batch match index %d out of range (%d sets)", m.Set, n)
							return
						}
					}
				}
			}
		}()
	}

	// Top-k searcher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 6; iter++ {
			qc := dataset.BuildWord(dict, queries[:2])
			if _, err := e.SearchTopKContext(ctx, &qc.Sets[0], 3); err != nil {
				errc <- err
				return
			}
		}
	}()

	// Discoverer: full self-joins interleaved with the adds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 3; iter++ {
			if _, err := e.DiscoverContext(ctx, e.Collection()); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// After the dust settles the engine must hold everything and answer a
	// final consistent discovery.
	if e.Len() != len(raws) {
		t.Fatalf("Len = %d, want %d", e.Len(), len(raws))
	}
	if _, err := e.DiscoverContext(ctx, e.Collection()); err != nil {
		t.Fatal(err)
	}
}
