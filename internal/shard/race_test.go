package shard

import (
	"context"
	"sync"
	"testing"

	"silkmoth/internal/core"
	"silkmoth/internal/datagen"
	"silkmoth/internal/dataset"
)

// TestConcurrentAddSearchBatchDiscover is the -race stress test for the
// sharded engine, mirroring the core package's concurrent coverage:
// writers grow the collection through Add while readers run SearchBatch,
// Discover, and top-k searches against it. Results are not asserted
// against a fixed expectation — the collection is a moving target — but
// every returned index must be in range and every call must complete
// without data races.
func TestConcurrentAddSearchBatchDiscover(t *testing.T) {
	ctx := context.Background()
	raws := datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 100, Seed: 3})
	base, extra := raws[:60], raws[60:]
	coll := wordColl(base)
	e, err := New(coll, 4, jaccardOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	dict := e.Collection().Dict

	queries := datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 8, Seed: 5})

	var wg sync.WaitGroup
	errc := make(chan error, 16)

	// Writer: feed the held-out sets in as four uneven batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for len(extra) > 0 {
			n := 11
			if n > len(extra) {
				n = len(extra)
			}
			e.Add(extra[:n])
			extra = extra[n:]
		}
	}()

	// Batch searchers: tokenize against the shared dictionary (interning
	// races with Add's interning by design) and fan batches out.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				qc := dataset.BuildWord(dict, queries)
				refs := make([]*dataset.Set, len(qc.Sets))
				for i := range qc.Sets {
					refs[i] = &qc.Sets[i]
				}
				res, err := e.SearchBatchContext(ctx, refs)
				if err != nil {
					errc <- err
					return
				}
				n := e.Len() // may have grown since the search; bound check only
				for _, ms := range res {
					for _, m := range ms {
						if m.Set < 0 || m.Set >= n {
							t.Errorf("batch match index %d out of range (%d sets)", m.Set, n)
							return
						}
					}
				}
			}
		}()
	}

	// Top-k searcher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 6; iter++ {
			qc := dataset.BuildWord(dict, queries[:2])
			if _, err := e.SearchTopKContext(ctx, &qc.Sets[0], 3); err != nil {
				errc <- err
				return
			}
		}
	}()

	// Discoverer: full self-joins interleaved with the adds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 3; iter++ {
			if _, err := e.DiscoverContext(ctx, e.Collection()); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// After the dust settles the engine must hold everything and answer a
	// final consistent discovery.
	if e.Len() != len(raws) {
		t.Fatalf("Len = %d, want %d", e.Len(), len(raws))
	}
	if _, err := e.DiscoverContext(ctx, e.Collection()); err != nil {
		t.Fatal(err)
	}
}

// tombstoneLog records which global ids have been deleted, with the
// mutation's completion ordered before the record. Readers snapshot it
// before issuing a query: any id deleted before the snapshot must be
// invisible to a query started after it, because mutations hold the
// engine's write lock.
type tombstoneLog struct {
	mu   sync.Mutex
	dead map[int]bool
}

func (l *tombstoneLog) record(id int) {
	l.mu.Lock()
	l.dead[id] = true
	l.mu.Unlock()
}

func (l *tombstoneLog) snapshot() map[int]bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[int]bool, len(l.dead))
	for id := range l.dead {
		out[id] = true
	}
	return out
}

// TestConcurrentMutateSearchDiscover is the -race stress test for the
// mutation lifecycle: one writer interleaves Delete, Update, and Add —
// with automatic compaction enabled aggressively enough to fire mid-run —
// while readers hammer SearchBatch, top-k, and full discovery. Beyond
// running clean under the race detector, the test asserts the lifecycle's
// core visibility guarantee: a query started after a delete completes
// never returns the deleted set, in any result surface.
func TestConcurrentMutateSearchDiscover(t *testing.T) {
	ctx := context.Background()
	raws := datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 110, Seed: 9})
	base, extra := raws[:80], raws[80:]
	coll := wordColl(base)
	opts := jaccardOpts(4)
	opts.CompactionThreshold = 0.15 // fire several compactions mid-run
	e, err := New(coll, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	dict := e.Collection().Dict
	log := &tombstoneLog{dead: make(map[int]bool)}

	// Queries reuse deleted sets' content, maximizing the chance a stale
	// posting or cache would resurface a tombstoned id.
	queries := append([]dataset.RawSet{}, base[:6]...)
	queries = append(queries, datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 4, Seed: 11})...)

	var wg sync.WaitGroup
	errc := make(chan error, 16)

	// Writer: delete every fourth base set, update every fourth (offset
	// by two), and feed the held-out sets in between.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(base); i += 2 {
			switch i % 4 {
			case 0:
				if err := e.Delete(i); err != nil {
					errc <- err
					return
				}
				log.record(i)
			case 2:
				if _, err := e.Update(i, dataset.RawSet{Name: base[i].Name + "+v2", Elements: base[(i+3)%len(base)].Elements}); err != nil {
					errc <- err
					return
				}
				log.record(i) // the old id is tombstoned by the update
			}
			if i%10 == 0 && len(extra) > 0 {
				n := 3
				if n > len(extra) {
					n = len(extra)
				}
				e.Add(extra[:n])
				extra = extra[n:]
			}
		}
	}()

	checkMatches := func(dead map[int]bool, ms []core.Match, surface string) bool {
		slots := e.NumSlots() // may have grown since; bound check only
		for _, m := range ms {
			if m.Set < 0 || m.Set >= slots {
				t.Errorf("%s: match index %d out of range (%d slots)", surface, m.Set, slots)
				return false
			}
			if dead[m.Set] {
				t.Errorf("%s: returned set %d deleted before the query started", surface, m.Set)
				return false
			}
		}
		return true
	}

	// Batch searchers. Queries tokenize outside the engine lock, racing
	// with compaction's dictionary recycling by design, so only liveness
	// and bounds are asserted — both hold regardless of what a recycled
	// token id resolves to (dead sets are skipped by the bitmap, not by
	// token identity).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 6; iter++ {
				dead := log.snapshot()
				qc := dataset.BuildWord(dict, queries)
				refs := make([]*dataset.Set, len(qc.Sets))
				for i := range qc.Sets {
					refs[i] = &qc.Sets[i]
				}
				res, err := e.SearchBatchContext(ctx, refs)
				if err != nil {
					errc <- err
					return
				}
				for _, ms := range res {
					if !checkMatches(dead, ms, "batch") {
						return
					}
				}
			}
		}()
	}

	// Top-k searcher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 8; iter++ {
			dead := log.snapshot()
			qc := dataset.BuildWord(dict, queries[:3])
			ms, err := e.SearchTopKContext(ctx, &qc.Sets[iter%3], 5)
			if err != nil {
				errc <- err
				return
			}
			if !checkMatches(dead, ms, "topk") {
				return
			}
		}
	}()

	// Discoverer: self-joins must neither emit dead references nor dead
	// candidates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 3; iter++ {
			dead := log.snapshot()
			ps, err := e.DiscoverContext(ctx, e.Collection())
			if err != nil {
				errc <- err
				return
			}
			for _, p := range ps {
				if dead[p.R] || dead[p.S] {
					t.Errorf("discover returned pair (%d, %d) involving a set deleted before the query started", p.R, p.S)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Settled state: every delete and update is reflected, compaction ran,
	// and a final discovery over the survivors answers cleanly.
	dead := log.snapshot()
	if got, want := e.Len(), e.NumSlots()-len(dead); got != want {
		t.Fatalf("Len = %d, want %d (slots %d - %d dead)", got, want, e.NumSlots(), len(dead))
	}
	if e.Compactions() == 0 {
		t.Fatal("expected automatic compaction to fire during the run")
	}
	for id := range dead {
		if e.Alive(id) {
			t.Fatalf("set %d should be dead", id)
		}
	}
	ps, err := e.DiscoverContext(ctx, e.Collection())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if dead[p.R] || dead[p.S] {
			t.Fatalf("final discovery emitted deleted set in pair (%d, %d)", p.R, p.S)
		}
	}
}
