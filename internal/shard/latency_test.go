package shard

import (
	"context"
	"testing"
	"time"

	"silkmoth/internal/datagen"
)

func TestShardLatenciesObserved(t *testing.T) {
	coll := wordColl(datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 60, Seed: 3}))
	e, err := New(coll, 3, jaccardOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	const queries = 5
	for i := 0; i < queries; i++ {
		if _, err := e.SearchContext(context.Background(), &coll.Sets[0]); err != nil {
			t.Fatal(err)
		}
	}
	ls := e.ShardLatencies()
	if len(ls) != 3 {
		t.Fatalf("got %d shard latency snapshots, want 3", len(ls))
	}
	for s, h := range ls {
		if h.Count != queries {
			t.Errorf("shard %d observed %d scatter passes, want %d", s, h.Count, queries)
		}
	}
	// Merged stage latencies must cover every timed pass (StageSample
	// defaults on, and 5 queries × 3 shards may or may not sample — just
	// check the merge is well-formed, not a specific count).
	for s, h := range e.StageLatencies() {
		if h.Count < 0 || h.SumNanos < 0 {
			t.Errorf("stage %d merged snapshot negative: %+v", s, h)
		}
	}
}

func TestNoteStraggler(t *testing.T) {
	e := &Engine{nshards: 4}
	ms := int64(time.Millisecond)
	cases := []struct {
		name string
		durs []int64
		want int64
	}{
		{"balanced", []int64{10 * ms, 11 * ms, 9 * ms, 10 * ms}, 0},
		{"straggler", []int64{10 * ms, 10 * ms, 10 * ms, 50 * ms}, 1},
		{"below floor", []int64{10, 10, 10, 50}, 0}, // nanoseconds: all noise
		{"single shard", []int64{50 * ms}, 0},
	}
	for _, c := range cases {
		before := e.Stragglers()
		e.noteStraggler(c.durs)
		if got := e.Stragglers() - before; got != c.want {
			t.Errorf("%s: straggler delta = %d, want %d", c.name, got, c.want)
		}
	}
}
