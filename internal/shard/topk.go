package shard

import (
	"container/heap"
	"context"

	"silkmoth/internal/core"
	"silkmoth/internal/dataset"
)

// SearchTopKContext returns the k most related sets to r across all
// shards, ordered by descending relatedness (ties by global index). Each
// shard contributes its local top k, and a k-way heap merge over the
// per-shard sorted streams selects the global winners — so answering
// costs k·N merged candidates, never a full concat-and-sort of every
// shard's matches.
func (e *Engine) SearchTopKContext(ctx context.Context, r *dataset.Set, k int) ([]core.Match, error) {
	return e.SearchTopKQueryContext(ctx, r, k, nil)
}

// SearchTopKQueryContext is SearchTopKContext with per-query overrides and
// stats capture threaded into every shard's pass. A nil q is exactly
// SearchTopKContext.
func (e *Engine) SearchTopKQueryContext(ctx context.Context, r *dataset.Set, k int, q *core.Query) ([]core.Match, error) {
	if k <= 0 {
		return nil, nil
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	per, err := e.scatter(ctx, r, k, q)
	if err != nil {
		return nil, err
	}
	return mergeTopK(per, k), nil
}

// mergeTopK merges per-stream sorted match lists (descending relatedness,
// ties by ascending set index) into the global top k, preserving that
// order. It is exactly the k-prefix of the fully merged sort.
//
//silkmoth:hotpath
func mergeTopK(per [][]core.Match, k int) []core.Match {
	h := make(streamHeap, 0, len(per))
	for _, ms := range per {
		if len(ms) > 0 {
			h = append(h, stream{ms: ms})
		}
	}
	heap.Init(&h)
	out := make([]core.Match, 0, k)
	for len(out) < k && h.Len() > 0 {
		s := &h[0]
		out = append(out, s.ms[s.pos])
		s.pos++
		if s.pos == len(s.ms) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// localTopK reduces ms to its canonical-order top k in place-ish: a
// bounded worst-at-root heap keeps the best k seen (O(m log k), never a
// full sort of the shard's matches), then the k survivors are sorted.
// Because the canonical order is total (set indices are unique), the
// result is exactly sort-then-truncate's.
//
//silkmoth:hotpath
func localTopK(ms []core.Match, k int) []core.Match {
	if len(ms) > k {
		h := worstHeap(ms[:k:k])
		heap.Init(&h)
		for _, m := range ms[k:] {
			if worse(m, h[0]) {
				continue
			}
			h[0] = m
			heap.Fix(&h, 0)
		}
		ms = h
	}
	sortMatches(ms)
	return ms
}

// worse reports whether a ranks strictly after b in the canonical order
// (descending relatedness, ties by ascending set index).
//
//silkmoth:hotpath
func worse(a, b core.Match) bool {
	if a.Relatedness != b.Relatedness {
		return a.Relatedness < b.Relatedness
	}
	return a.Set > b.Set
}

// worstHeap keeps the canonical-order-worst match at the root.
type worstHeap []core.Match

func (h worstHeap) Len() int           { return len(h) }
func (h worstHeap) Less(i, j int) bool { return worse(h[i], h[j]) }
func (h worstHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *worstHeap) Push(x any)        { *h = append(*h, x.(core.Match)) }
func (h *worstHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// stream is one shard's sorted match list with a read cursor.
type stream struct {
	ms  []core.Match
	pos int
}

type streamHeap []stream

func (h streamHeap) Len() int { return len(h) }

func (h streamHeap) Less(i, j int) bool {
	a, b := h[i].ms[h[i].pos], h[j].ms[h[j].pos]
	if a.Relatedness != b.Relatedness {
		return a.Relatedness > b.Relatedness
	}
	return a.Set < b.Set
}

func (h streamHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *streamHeap) Push(x any) { *h = append(*h, x.(stream)) }

func (h *streamHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
