package shard

import (
	"context"
	"testing"

	"silkmoth/internal/core"
	"silkmoth/internal/datagen"
	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

func jaccardOpts(conc int) core.Options {
	o := core.DefaultOptions(core.SetSimilarity, core.Jaccard, 0.6, 0)
	o.Concurrency = conc
	return o
}

func wordColl(raws []dataset.RawSet) *dataset.Collection {
	return dataset.BuildWord(tokens.NewDictionary(), raws)
}

func TestShardOfDeterministicAndBalanced(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16} {
		counts := make([]int, n)
		for g := 0; g < 10000; g++ {
			s := ShardOf(g, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", g, n, s)
			}
			if s != ShardOf(g, n) {
				t.Fatalf("ShardOf(%d, %d) not deterministic", g, n)
			}
			counts[s]++
		}
		mean := 10000 / n
		for s, c := range counts {
			if c < mean*7/10 || c > mean*13/10 {
				t.Errorf("n=%d shard %d holds %d of 10000 sets (mean %d); hash is unbalanced", n, s, c, mean)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	coll := wordColl(datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 5, Seed: 1}))
	if _, err := New(coll, 0, jaccardOpts(1)); err == nil {
		t.Error("shard count 0 should fail")
	}
	bad := jaccardOpts(1)
	bad.Delta = 2 // invalid, must surface from the parallel shard builds
	if _, err := New(coll, 3, bad); err == nil {
		t.Error("invalid options should fail")
	}
}

// TestRoutingConsistency checks the routing invariants New and Add must
// preserve: l2g is exactly the ShardOf assignment in increasing global
// order (strictly ascending per shard — the self-join dedup depends on
// that), and every global set sits in its shard's collection under the
// local index l2g implies.
func TestRoutingConsistency(t *testing.T) {
	raws := datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 60, Seed: 2})
	coll := wordColl(raws)
	e, err := New(coll, 7, jaccardOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	e.Add(datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 13, Seed: 3}))
	nextLocal := make([]int, 7) // expected local index per shard, walking globals in order
	for g := range e.global.Sets {
		s := ShardOf(g, 7)
		local := nextLocal[s]
		nextLocal[s]++
		if local >= len(e.l2g[s]) || e.l2g[s][local] != g {
			t.Fatalf("l2g[%d][%d] should be %d, have %v", s, local, g, e.l2g[s])
		}
		if local > 0 && e.l2g[s][local-1] >= g {
			t.Fatalf("shard %d l2g not strictly ascending at %d", s, local)
		}
		if e.colls[s].Sets[local].Name != e.global.Sets[g].Name {
			t.Fatalf("shard %d local %d holds %q, global %d is %q",
				s, local, e.colls[s].Sets[local].Name, g, e.global.Sets[g].Name)
		}
	}
	total := 0
	for s := range e.l2g {
		if len(e.l2g[s]) != nextLocal[s] {
			t.Fatalf("shard %d holds %d sets, expected %d", s, len(e.l2g[s]), nextLocal[s])
		}
		total += len(e.l2g[s])
	}
	if total != len(e.global.Sets) || total != e.Len() {
		t.Fatalf("shards hold %d sets, global has %d", total, len(e.global.Sets))
	}
}

// TestMoreShardsThanSets exercises empty shards: a 7-shard engine over 3
// sets must still answer correctly.
func TestMoreShardsThanSets(t *testing.T) {
	ctx := context.Background()
	raws := []dataset.RawSet{
		{Name: "a", Elements: []string{"77 Mass Ave Boston", "5th St Seattle"}},
		{Name: "b", Elements: []string{"77 Mass Ave Boston", "Elm St Seattle"}},
		{Name: "c", Elements: []string{"red bicycle", "blue kettle"}},
	}
	coll := wordColl(raws)
	e, err := New(coll, 7, jaccardOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := e.SearchContext(ctx, &coll.Sets[0])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Set == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("search from a should find b, got %+v", ms)
	}
	pairs, err := e.DiscoverContext(ctx, e.Collection())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].R != 0 || pairs[0].S != 1 {
		t.Fatalf("discover = %+v, want exactly (0,1)", pairs)
	}
}

func TestEmptyCollection(t *testing.T) {
	ctx := context.Background()
	e, err := New(wordColl(nil), 3, jaccardOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d", e.Len())
	}
	// Grow from empty through Add and query.
	e.Add([]dataset.RawSet{
		{Name: "a", Elements: []string{"x y z", "p q"}},
		{Name: "b", Elements: []string{"x y z", "p q r"}},
	})
	pairs, err := e.DiscoverContext(ctx, e.Collection())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v, want one", pairs)
	}
}

func TestMergeTopK(t *testing.T) {
	m := func(set int, rel float64) core.Match {
		return core.Match{Set: set, Relatedness: rel, Score: rel}
	}
	per := [][]core.Match{
		{m(4, 0.9), m(0, 0.7)},
		{},
		{m(2, 0.9), m(6, 0.8), m(9, 0.1)},
	}
	got := mergeTopK(per, 4)
	want := []core.Match{m(2, 0.9), m(4, 0.9), m(6, 0.8), m(0, 0.7)} // tie at 0.9 breaks by index
	if len(got) != len(want) {
		t.Fatalf("got %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if n := len(mergeTopK(per, 100)); n != 5 {
		t.Fatalf("k beyond supply: %d items, want all 5", n)
	}
	if n := len(mergeTopK(nil, 3)); n != 0 {
		t.Fatalf("no streams: %d items, want 0", n)
	}
}

func TestLocalTopK(t *testing.T) {
	m := func(set int, rel float64) core.Match {
		return core.Match{Set: set, Relatedness: rel, Score: rel}
	}
	ms := []core.Match{m(5, 0.3), m(1, 0.9), m(7, 0.9), m(2, 0.1), m(3, 0.9), m(0, 0.5)}
	got := localTopK(append([]core.Match(nil), ms...), 3)
	want := []core.Match{m(1, 0.9), m(3, 0.9), m(7, 0.9)} // 0.9 ties break by index
	if len(got) != len(want) {
		t.Fatalf("got %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if n := len(localTopK(append([]core.Match(nil), ms...), 100)); n != len(ms) {
		t.Fatalf("k beyond supply: %d items, want %d", n, len(ms))
	}
	if n := len(localTopK(nil, 3)); n != 0 {
		t.Fatalf("empty input: %d items, want 0", n)
	}
}

func TestSearchContextCancelled(t *testing.T) {
	coll := wordColl(datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 30, Seed: 4}))
	e, err := New(coll, 3, jaccardOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SearchContext(ctx, &coll.Sets[0]); err != context.Canceled {
		t.Fatalf("search err = %v, want context.Canceled", err)
	}
	if _, err := e.DiscoverContext(ctx, e.Collection()); err != context.Canceled {
		t.Fatalf("discover err = %v, want context.Canceled", err)
	}
	if _, err := e.SearchBatchContext(ctx, []*dataset.Set{&coll.Sets[0]}); err != context.Canceled {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
}

// TestIncrementalEqualsBatch is the incremental == batch invariant run
// deeper than the differential harness: several Add batches of uneven
// sizes (including a single-set batch) against a fresh full build, at a
// prime shard count.
func TestIncrementalEqualsBatch(t *testing.T) {
	ctx := context.Background()
	raws := datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 120, Seed: 9})
	opts := jaccardOpts(4)

	full, err := New(wordColl(raws), 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := New(wordColl(raws[:40]), 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range [][2]int{{40, 70}, {70, 71}, {71, len(raws)}} {
		inc.Add(raws[cut[0]:cut[1]])
	}
	if full.Len() != inc.Len() {
		t.Fatalf("lengths differ: full %d, incremental %d", full.Len(), inc.Len())
	}

	wantPairs, err := full.DiscoverContext(ctx, full.Collection())
	if err != nil {
		t.Fatal(err)
	}
	gotPairs, err := inc.DiscoverContext(ctx, inc.Collection())
	if err != nil {
		t.Fatal(err)
	}
	if len(wantPairs) == 0 {
		t.Fatal("workload produced no pairs; corpus too sparse for the test")
	}
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("pair counts differ: full %d, incremental %d", len(wantPairs), len(gotPairs))
	}
	for i := range wantPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("pair %d: full %+v, incremental %+v", i, wantPairs[i], gotPairs[i])
		}
	}
	for ri := range raws {
		want, err := full.SearchContext(ctx, &full.Collection().Sets[ri])
		if err != nil {
			t.Fatal(err)
		}
		got, err := inc.SearchContext(ctx, &inc.Collection().Sets[ri])
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("ref %d: full %d matches, incremental %d", ri, len(want), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ref %d match %d: full %+v, incremental %+v", ri, i, want[i], got[i])
			}
		}
	}
}
