package shard

import (
	"context"
	"fmt"
	"testing"

	"silkmoth/internal/core"
	"silkmoth/internal/datagen"
	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

// The differential harness: one seeded workload pushed through the serial
// core engine and the sharded engine at several shard counts, asserting
// the outputs are identical — same match sets, same scores bit for bit,
// same canonical order — for every metric × similarity combination, both
// when the sharded engine is built fresh over the full collection and when
// part of it arrives through Add after construction. This is the safety
// net the motivation calls for: optimized similarity-search paths must
// never silently diverge from the reference implementation.

// diffShardCounts are the shard counts every differential case runs at:
// the degenerate single shard, an even split, and a prime count that
// leaves shards unevenly loaded.
var diffShardCounts = []int{1, 2, 7}

// corpusRaws returns the seeded generator workload appropriate for the
// similarity's token mode: WebTable-style schemas for the word
// similarities, DBLP-style titles (short word elements, cheap edit
// distances) for the edit similarities.
func corpusRaws(sim core.SimKind, seed int64) []dataset.RawSet {
	if sim.TokenMode() == dataset.ModeWord {
		return datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 90, Seed: seed})
	}
	return datagen.DBLP(datagen.DBLPConfig{NumTitles: 24, Seed: seed, MeanWords: 5})
}

// buildColl tokenizes raws the way a core engine with these options would.
func buildColl(raws []dataset.RawSet, sim core.SimKind, delta, alpha float64) *dataset.Collection {
	dict := tokens.NewDictionary()
	if sim.TokenMode() == dataset.ModeWord {
		return dataset.BuildWord(dict, raws)
	}
	return dataset.BuildQGram(dict, raws, core.DefaultQ(delta, alpha))
}

// runDifferential is the reusable harness body for one metric × similarity
// case. The serial engine's discovery, per-reference search, and top-k
// prefixes are the reference; every (shard count, build mode) variant must
// reproduce them exactly.
func runDifferential(t *testing.T, metric core.Metric, sim core.SimKind, delta, alpha float64) {
	t.Helper()
	ctx := context.Background()
	raws := corpusRaws(sim, 42)
	opts := core.DefaultOptions(metric, sim, delta, alpha)
	opts.Concurrency = 3

	coll := buildColl(raws, sim, delta, alpha)
	serial, err := core.NewEngine(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs, err := serial.DiscoverContext(context.Background(), coll)
	if err != nil {
		t.Fatal(err)
	}
	sortPairs(wantPairs)
	if len(wantPairs) == 0 {
		t.Fatal("workload produced no related pairs; tune the corpus or thresholds")
	}
	wantMatches := make([][]core.Match, len(coll.Sets))
	for ri := range coll.Sets {
		ms, err := serial.SearchContext(context.Background(), &coll.Sets[ri])
		if err != nil {
			t.Fatal(err)
		}
		sortMatches(ms)
		wantMatches[ri] = ms
	}

	cut := len(raws) * 2 / 3
	for _, n := range diffShardCounts {
		for _, mode := range []string{"fresh", "post-add"} {
			name := fmt.Sprintf("N=%d/%s", n, mode)
			var e *Engine
			if mode == "fresh" {
				e, err = New(coll, n, opts)
			} else {
				// Build over a prefix (its own dictionary, so token ids
				// differ from the serial engine's — scores must not care),
				// then grow to the full corpus through Add.
				e, err = New(buildColl(raws[:cut], sim, delta, alpha), n, opts)
				if err == nil {
					e.Add(raws[cut:])
				}
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if e.Len() != len(coll.Sets) {
				t.Fatalf("%s: %d sets, want %d", name, e.Len(), len(coll.Sets))
			}

			gotPairs, err := e.DiscoverContext(ctx, e.Collection())
			if err != nil {
				t.Fatalf("%s: discover: %v", name, err)
			}
			if len(gotPairs) != len(wantPairs) {
				t.Fatalf("%s: %d pairs, serial found %d", name, len(gotPairs), len(wantPairs))
			}
			for i := range wantPairs {
				if gotPairs[i] != wantPairs[i] { // exact: indices AND float scores
					t.Fatalf("%s: pair %d = %+v, serial %+v", name, i, gotPairs[i], wantPairs[i])
				}
			}

			refs := e.Collection()
			for ri := range refs.Sets {
				got, err := e.SearchContext(ctx, &refs.Sets[ri])
				if err != nil {
					t.Fatalf("%s: search %d: %v", name, ri, err)
				}
				want := wantMatches[ri]
				if len(got) != len(want) {
					t.Fatalf("%s: ref %d: %d matches, serial found %d", name, ri, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: ref %d match %d = %+v, serial %+v", name, ri, i, got[i], want[i])
					}
				}
				for _, k := range []int{1, 3} {
					gotK, err := e.SearchTopKContext(ctx, &refs.Sets[ri], k)
					if err != nil {
						t.Fatalf("%s: topk %d: %v", name, ri, err)
					}
					wantK := want
					if len(wantK) > k {
						wantK = wantK[:k]
					}
					if len(gotK) != len(wantK) {
						t.Fatalf("%s: ref %d top-%d: %d matches, want %d", name, ri, k, len(gotK), len(wantK))
					}
					for i := range wantK {
						if gotK[i] != wantK[i] {
							t.Fatalf("%s: ref %d top-%d item %d = %+v, want %+v", name, ri, k, i, gotK[i], wantK[i])
						}
					}
				}
			}
		}
	}
}

// TestDifferentialSerialVsSharded sweeps the full metric × similarity
// grid through the harness.
func TestDifferentialSerialVsSharded(t *testing.T) {
	for _, metric := range []core.Metric{core.SetSimilarity, core.SetContainment} {
		for _, sim := range []core.SimKind{core.Jaccard, core.Eds, core.NEds, core.Dice, core.Cosine} {
			metric, sim := metric, sim
			delta := 0.6
			if sim.TokenMode() == dataset.ModeQGram {
				delta = 0.7 // edit similarities: q = DefaultQ(0.7, 0) = 2
			}
			t.Run(fmt.Sprintf("%s/%s", metric, sim), func(t *testing.T) {
				t.Parallel()
				runDifferential(t, metric, sim, delta, 0)
			})
		}
	}
}

// TestDifferentialBatchMatchesSearch pins SearchBatch to per-query
// SearchContext on both a serial-equivalent single shard and a multi-shard
// engine: batching is a scheduling optimization, never a result change.
func TestDifferentialBatchMatchesSearch(t *testing.T) {
	ctx := context.Background()
	raws := corpusRaws(core.Jaccard, 7)
	opts := core.DefaultOptions(core.SetSimilarity, core.Jaccard, 0.6, 0)
	opts.Concurrency = 4
	coll := buildColl(raws, core.Jaccard, 0.6, 0)

	for _, n := range diffShardCounts {
		e, err := New(coll, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]*dataset.Set, len(coll.Sets))
		for i := range coll.Sets {
			refs[i] = &coll.Sets[i]
		}
		got, err := e.SearchBatchContext(ctx, refs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(refs) {
			t.Fatalf("N=%d: %d results for %d refs", n, len(got), len(refs))
		}
		for ri, r := range refs {
			want, err := e.SearchContext(ctx, r)
			if err != nil {
				t.Fatal(err)
			}
			if len(got[ri]) != len(want) {
				t.Fatalf("N=%d ref %d: batch %d matches, search %d", n, ri, len(got[ri]), len(want))
			}
			for i := range want {
				if got[ri][i] != want[i] {
					t.Fatalf("N=%d ref %d match %d: batch %+v, search %+v", n, ri, i, got[ri][i], want[i])
				}
			}
		}
	}
}
