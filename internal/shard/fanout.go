package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Workers clamps a requested worker count to the job count, flooring at
// one. Callers sizing per-worker state use the same clamp FanOut applies.
func Workers(requested, n int) int {
	if requested > n {
		requested = n
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// FanOut runs fn(ctx, w, i) for every i in [0, n) on Workers(workers, n)
// goroutines pulling from a shared counter; w identifies the calling
// worker so fn can keep per-worker scratch (a core.Searcher, say). The
// first error cancels the context handed to the remaining calls and is
// returned — preferring a real failure over the context.Canceled noise
// that cancellation propagation causes in sibling workers. It is the one
// bounded scatter-gather loop behind the sharded engine's query paths and
// the public batch API.
func FanOut(parent context.Context, n, workers int, fn func(ctx context.Context, w, i int) error) error {
	if err := parent.Err(); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	workers = Workers(workers, n)
	errs := make([]error, workers)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if err := fn(ctx, w, i); err != nil {
					errs[w] = err
					cancel() // abort the siblings
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstError(errs)
}

// firstError picks the error to surface from a fan-out: a real failure
// wins over context.Canceled.
func firstError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}
