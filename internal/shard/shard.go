// Package shard implements a sharded scatter-gather engine over the core
// related-set pipeline. The collection is hash-partitioned into N
// independent core.Engine shards — each with its own inverted index, built
// in parallel — and every query fans out across the shards and merges
// their answers back under global set indices.
//
// The partitioning is an optimization, never a semantics change: because
// every shard runs the same exact pipeline over a disjoint slice of the
// collection, the union of per-shard answers is provably the serial
// engine's answer set, and scores are bit-identical (each pair's matching
// score depends only on the two sets, never on which index holds them).
// The package's differential tests pin this equivalence against the serial
// engine for every metric and similarity function.
package shard

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"silkmoth/internal/core"
	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/obs"
)

// Engine is a sharded related-set engine: N independent core engines over
// a hash-partitioned collection, queried by scatter-gather. It is safe for
// concurrent use, including Add interleaved with queries (mutations take
// the write side of an internal lock, queries the read side).
type Engine struct {
	// mu serializes Add against queries. Queries only ever take the read
	// side, so they proceed in parallel.
	mu      sync.RWMutex
	opts    core.Options
	nshards int
	// global is the full collection under global set indices — the same
	// ordering the serial engine would use, which is what makes sharded
	// results directly comparable.
	global  *dataset.Collection
	engines []*core.Engine
	colls   []*dataset.Collection
	// l2g maps each shard's local indices back to global ones (the
	// global-to-local direction is recomputed from ShardOf when needed).
	// Sets are assigned in increasing global order, so every l2g[s] is
	// sorted ascending — the self-join dedup below depends on that.
	l2g [][]int
	// dead is the global tombstone bitmap mirroring the per-shard core
	// bitmaps; self-join discovery consults it to skip dead references.
	dead    []bool
	numDead int
	// threshold is the engine-level tombstone ratio that triggers
	// compaction of every shard (<= 0 disables automatic compaction).
	// Per-shard core thresholds are disabled: the sharded engine drives
	// compaction globally so the shared dictionary and the global
	// collection headers are reclaimed together.
	threshold float64
	// shardHist[s] is shard s's scatter-pass latency histogram; every
	// scatter observes each shard's pass wall time, so a skewed partition
	// or a slow shard shows up as a diverging per-shard distribution.
	shardHist []obs.Histogram
	// stragglers counts scatters whose slowest shard exceeded
	// stragglerFactor × the median shard time (above stragglerFloor, with
	// at least two shards) — the tail-latency signal scatter-gather lives
	// or dies by.
	stragglers int64
}

// Straggler detection thresholds: a scatter counts as straggled when its
// slowest shard takes more than stragglerFactor times the median shard's
// wall time, and the slowest shard exceeded stragglerFloor (sub-100µs
// scatters are all noise).
const (
	stragglerFactor = 2
	stragglerFloor  = int64(100 * time.Microsecond)
)

// ShardOf returns the shard owning global set index g among n shards. The
// assignment hashes the index through a 64-bit finalizer, so shard loads
// stay balanced regardless of insertion patterns, and is a pure function
// of (g, n): rebuilding a collection reproduces the same partitioning,
// which the incremental == batch invariant relies on.
func ShardOf(g, n int) int {
	x := uint64(g)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(n))
}

// New hash-partitions coll into shards independent core engines and builds
// their inverted indexes in parallel. The shard collections share coll's
// dictionary, tokenization mode, and element storage: only the Set headers
// are copied, so sharding costs O(sets) extra memory, not O(tokens).
func New(coll *dataset.Collection, shards int, opts core.Options) (*Engine, error) {
	if shards < 1 {
		return nil, errors.New("shard: shard count must be >= 1")
	}
	e := &Engine{
		nshards:   shards,
		global:    coll,
		colls:     make([]*dataset.Collection, shards),
		engines:   make([]*core.Engine, shards),
		l2g:       make([][]int, shards),
		threshold: opts.CompactionThreshold,
	}
	e.shardHist = make([]obs.Histogram, shards)
	opts.CompactionThreshold = 0 // compaction is driven globally, not per shard
	for s := range e.colls {
		e.colls[s] = &dataset.Collection{Dict: coll.Dict, Mode: coll.Mode, Q: coll.Q}
	}
	for g := range coll.Sets {
		s := ShardOf(g, shards)
		c := e.colls[s]
		c.Sets = append(c.Sets, coll.Sets[g])
		e.l2g[s] = append(e.l2g[s], g)
	}
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			e.engines[s], errs[s] = core.NewEngine(e.colls[s], opts)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	e.opts = e.engines[0].Options()
	return e, nil
}

// NewFromSnapshot is New for a collection loaded from a snapshot, whose
// dead slots persist as empty placeholders: the global tombstone bitmap is
// restored and each shard marks its dead locals, so global ids — which WAL
// records replayed on top of the snapshot reference — keep their meaning.
// The per-shard indexes are rebuilt from the (already tokenized) shard
// collections; empty dead slots contribute no postings and no refcounts,
// so no release/compaction bookkeeping is owed for them.
func NewFromSnapshot(coll *dataset.Collection, shards int, opts core.Options, dead []bool) (*Engine, error) {
	e, err := New(coll, shards, opts)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, d := range dead {
		if d {
			n++
		}
	}
	if n == 0 {
		return e, nil
	}
	e.growDeadLocked()
	copy(e.dead, dead)
	e.numDead = n
	for s := 0; s < shards; s++ {
		local := make([]bool, len(e.l2g[s]))
		any := false
		for li, g := range e.l2g[s] {
			if g < len(dead) && dead[g] {
				local[li] = true
				any = true
			}
		}
		if any {
			e.engines[s].MarkDeadSlots(local)
		}
	}
	return e, nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return e.nshards }

// Options returns the effective (normalized) engine options.
func (e *Engine) Options() core.Options { return e.opts }

// Collection returns the global collection under global set indices. The
// pointer is stable across Add, but its Sets slice must not be read
// concurrently with Add; query methods take the engine's lock for you.
func (e *Engine) Collection() *dataset.Collection { return e.global }

// Len returns the number of live sets across all shards.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.global.Sets) - e.numDead
}

// NumSlots returns the size of the global index space: live sets plus
// tombstoned slots. Every match index is < NumSlots.
func (e *Engine) NumSlots() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.global.Sets)
}

// Alive reports whether global set g exists and is not deleted.
func (e *Engine) Alive(g int) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.aliveLocked(g)
}

// LiveSnapshot returns the liveness of every global slot under a single
// lock acquisition, for callers that sweep the whole collection (the
// compacted save path) and would otherwise pay one lock round-trip per
// set.
func (e *Engine) LiveSnapshot() []bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]bool, len(e.global.Sets))
	for g := range out {
		out[g] = g >= len(e.dead) || !e.dead[g]
	}
	return out
}

func (e *Engine) aliveLocked(g int) bool {
	return g >= 0 && g < len(e.global.Sets) && (g >= len(e.dead) || !e.dead[g])
}

// growDeadLocked sizes the global tombstone bitmap to the collection,
// allocating it on first use. Callers hold the write lock.
func (e *Engine) growDeadLocked() {
	for len(e.dead) < len(e.global.Sets) {
		e.dead = append(e.dead, false)
	}
}

// Tombstones returns the number of deleted sets still occupying postings,
// summed across shards (zero right after a compaction).
func (e *Engine) Tombstones() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	for _, eng := range e.engines {
		n += eng.Tombstones()
	}
	return n
}

// Compactions returns the number of per-shard compaction passes run.
func (e *Engine) Compactions() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var n int64
	for _, eng := range e.engines {
		n += eng.Compactions()
	}
	return n
}

// Storage returns posting-storage statistics summed across all shard
// engines. Compressed is reported when every shard's index is compressed
// (shards share one configuration, so in practice it is all or none).
func (e *Engine) Storage() index.StorageStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sum := index.StorageStats{Compressed: len(e.engines) > 0}
	for _, eng := range e.engines {
		st := eng.Storage()
		sum.Postings += st.Postings
		sum.HeapBytes += st.HeapBytes
		sum.EncodedBytes += st.EncodedBytes
		sum.ResidentBytes += st.ResidentBytes
		sum.CacheHits += st.CacheHits
		sum.CacheMisses += st.CacheMisses
		sum.DecodeErrors += st.DecodeErrors
		sum.Compressed = sum.Compressed && st.Compressed
	}
	return sum
}

// Stats returns the pruning funnel summed across all shard engines.
func (e *Engine) Stats() core.StatsSnapshot {
	var sum core.StatsSnapshot
	for _, eng := range e.engines {
		st := eng.Stats()
		sum.SearchPasses += st.SearchPasses
		sum.FullScans += st.FullScans
		sum.SigTokens += st.SigTokens
		sum.Candidates += st.Candidates
		sum.AfterCheck += st.AfterCheck
		sum.CheckPruned += st.CheckPruned
		sum.AfterNN += st.AfterNN
		sum.NNPruned += st.NNPruned
		sum.Verified += st.Verified
		sum.SchemeWeighted += st.SchemeWeighted
		sum.SchemeCombUnweighted += st.SchemeCombUnweighted
		sum.SchemeSkyline += st.SchemeSkyline
		sum.SchemeDichotomy += st.SchemeDichotomy
		sum.TimedPasses += st.TimedPasses
		sum.SigNanos += st.SigNanos
		sum.CollectNanos += st.CollectNanos
		sum.RefineNanos += st.RefineNanos
		sum.VerifyNanos += st.VerifyNanos
	}
	return sum
}

// Add tokenizes raws with the global collection's dictionary, appends them
// under the next global indices, and routes each new set to its owning
// shard, extending that shard's inverted index. Safe to call concurrently
// with queries: Add takes the write lock, so in-flight queries finish
// first and later ones see the grown collection.
func (e *Engine) Add(raws []dataset.RawSet) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.addLocked(raws)
}

func (e *Engine) addLocked(raws []dataset.RawSet) {
	from := dataset.Append(e.global, raws)
	// froms[s] is the local index the shard's index extension starts at,
	// or -1 for shards this batch never touches.
	froms := make([]int, e.nshards)
	for s := range froms {
		froms[s] = -1
	}
	for g := from; g < len(e.global.Sets); g++ {
		s := ShardOf(g, e.nshards)
		c := e.colls[s]
		if froms[s] < 0 {
			froms[s] = len(c.Sets)
		}
		c.Sets = append(c.Sets, e.global.Sets[g])
		e.l2g[s] = append(e.l2g[s], g)
	}
	for s, f := range froms {
		if f >= 0 {
			e.engines[s].AppendSets(f)
		}
	}
	if e.dead != nil { // stays nil (all-alive fast path) until first Delete
		e.growDeadLocked()
	}
}

// localOf resolves a global set index to its owning shard and the local
// index within it. Callers must hold the engine's lock.
func (e *Engine) localOf(g int) (shard, local int) {
	s := ShardOf(g, e.nshards)
	return s, sort.SearchInts(e.l2g[s], g)
}

// Delete tombstones global set g across the engine: the owning shard's
// core engine stops returning it immediately, self-join discovery skips
// it as a reference, and its slot index is never reused. Storage is
// reclaimed lazily: once the engine-wide tombstone ratio reaches the
// configured CompactionThreshold, every shard compacts and the shared
// dictionary is pruned.
//
// Delete is safe to call concurrently with the engine's query methods,
// with one caveat that compaction adds: reclaimed dictionary slots are
// recycled for future tokens, so a query set must not be tokenized
// against the shared dictionary before a compaction and searched after
// it — its interned ids could by then name different tokens. Callers
// must order query tokenization under the same read-side regime as the
// query itself (the public silkmoth.Engine does: it tokenizes inside the
// read-locked section of every query method).
func (e *Engine) Delete(g int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.deleteLocked(g)
}

func (e *Engine) deleteLocked(g int) error {
	if !e.aliveLocked(g) {
		return core.ErrNotFound
	}
	s, local := e.localOf(g)
	if err := e.engines[s].Delete(local); err != nil {
		return err
	}
	e.growDeadLocked()
	e.dead[g] = true
	e.numDead++
	e.maybeCompactLocked()
	return nil
}

// Update replaces global set g with a new tokenization of raw: the new
// version is appended under the next global index (returned) and the old
// slot is tombstoned, all under one write-lock critical section, so no
// query ever observes both or neither version.
func (e *Engine) Update(g int, raw dataset.RawSet) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.aliveLocked(g) {
		return 0, core.ErrNotFound
	}
	newID := len(e.global.Sets)
	e.addLocked([]dataset.RawSet{raw})
	if err := e.deleteLocked(g); err != nil {
		return 0, err
	}
	return newID, nil
}

// maybeCompactLocked compacts every shard once the engine-wide tombstone
// ratio reaches the threshold.
func (e *Engine) maybeCompactLocked() {
	if e.threshold <= 0 {
		return
	}
	tomb := 0
	for _, eng := range e.engines {
		tomb += eng.Tombstones()
	}
	if tomb == 0 {
		return
	}
	if float64(tomb) >= e.threshold*float64(len(e.global.Sets)-e.numDead+tomb) {
		e.compactLocked()
	}
}

// Compact forces a full compaction: dead sets' storage is dropped from the
// global collection, every shard rebuilds its posting lists over its live
// sets, and dictionary slots no live set references are freed for reuse.
// Global indices are unchanged.
func (e *Engine) Compact() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.compactLocked()
}

func (e *Engine) compactLocked() {
	// The shard collections copy Set headers from the global collection,
	// so the per-shard compaction below only clears the local copies;
	// clear the global headers too or the element storage stays reachable.
	for g := range e.dead {
		if e.dead[g] && e.global.Sets[g].Elements != nil {
			e.global.Sets[g].Elements = nil
		}
	}
	for _, eng := range e.engines {
		eng.Compact()
	}
}

// sortMatches orders matches canonically: descending relatedness, ties by
// ascending (global) set index. This is the order the public API promises
// and the order per-shard streams feed the top-k merge in.
//
//silkmoth:hotpath
func sortMatches(ms []core.Match) {
	slices.SortFunc(ms, func(a, b core.Match) int {
		if a.Relatedness != b.Relatedness {
			if a.Relatedness > b.Relatedness {
				return -1
			}
			return 1
		}
		return a.Set - b.Set
	})
}

// sortPairs orders pairs by (R, S).
func sortPairs(ps []core.Pair) {
	slices.SortFunc(ps, func(a, b core.Pair) int {
		if a.R != b.R {
			return a.R - b.R
		}
		return a.S - b.S
	})
}

// scatter fans one reference set across every shard concurrently and
// gathers per-shard match lists rewritten to global indices; k ≥ 0
// additionally sorts each shard's list canonically and truncates it to
// the local top k (k < 0 keeps the shard's native pass order — callers
// sort the union once). Each shard's pass verifies serially (a
// core.Searcher), so one query costs at most Shards goroutines — the
// shard fan-out IS the query's parallelism, never compounded with the
// per-pass verification pool. The first shard error cancels the remaining
// shards' passes. Callers must hold the engine's read lock.
//
// q's overrides apply to every shard's pass, and its Stats capture (being
// internally synchronized) absorbs all of their funnels — the query-level
// explain of a scatter is the sum over shards, with each shard counting
// one pass. Under scheme Auto the per-shard cost models may pick different
// concrete schemes; the capture's per-scheme counters keep the split.
func (e *Engine) scatter(ctx context.Context, r *dataset.Set, k int, q *core.Query) ([][]core.Match, error) {
	per := make([][]core.Match, e.nshards)
	durs := make([]int64, e.nshards)
	err := FanOut(ctx, e.nshards, e.nshards, func(ctx context.Context, _, s int) error {
		start := time.Now()
		sr := e.engines[s].NewSearcher()
		defer sr.Close()
		ms, err := sr.SearchQuery(ctx, r, -1, q)
		// Observe before the error check so cancelled shards still count
		// toward the latency distribution.
		d := time.Since(start)
		durs[s] = int64(d)
		e.shardHist[s].Observe(d)
		if err != nil {
			return err
		}
		g := e.l2g[s]
		for i := range ms {
			ms[i].Set = g[ms[i].Set]
		}
		if k >= 0 {
			ms = localTopK(ms, k)
		}
		per[s] = ms
		return nil
	})
	if err == nil {
		e.noteStraggler(durs)
	}
	return per, err
}

// noteStraggler bumps the straggler counter when the scatter's slowest
// shard ran away from the median. The median is found by rank counting —
// O(shards²) but allocation-free, and shard counts are small.
//
//silkmoth:hotpath
func (e *Engine) noteStraggler(durs []int64) {
	n := len(durs)
	if n < 2 {
		return
	}
	slowest := durs[0]
	for _, d := range durs[1:] {
		if d > slowest {
			slowest = d
		}
	}
	if slowest < stragglerFloor {
		return
	}
	var median int64
	for _, d := range durs {
		less, equal := 0, 0
		for _, o := range durs {
			switch {
			case o < d:
				less++
			case o == d:
				equal++
			}
		}
		// d is the (lower) median when rank n/2 falls inside its tie run.
		if less <= n/2 && less+equal > n/2 {
			median = d
			break
		}
	}
	if median > 0 && slowest > stragglerFactor*median {
		atomic.AddInt64(&e.stragglers, 1)
	}
}

// ShardLatencies returns per-shard snapshots of scatter-pass latency,
// indexed by shard.
func (e *Engine) ShardLatencies() []obs.HistogramSnapshot {
	out := make([]obs.HistogramSnapshot, len(e.shardHist))
	for s := range e.shardHist {
		out[s] = e.shardHist[s].Snapshot()
	}
	return out
}

// Stragglers returns the number of scatters whose slowest shard exceeded
// stragglerFactor × the median shard time.
func (e *Engine) Stragglers() int64 { return atomic.LoadInt64(&e.stragglers) }

// StageLatencies returns the per-stage latency histograms merged across
// every shard engine, indexed by core.Stage.
func (e *Engine) StageLatencies() [core.NumStages]obs.HistogramSnapshot {
	var out [core.NumStages]obs.HistogramSnapshot
	for _, eng := range e.engines {
		hs := eng.StageLatencies()
		for i := range out {
			out[i].Add(hs[i])
		}
	}
	return out
}

// SearchContext answers RELATED SET SEARCH for r by scatter-gather:
// every shard runs its pass concurrently and the union — equal to the
// serial engine's answer — is returned sorted by descending relatedness,
// ties by global index. r must be tokenized against the global
// collection's dictionary.
func (e *Engine) SearchContext(ctx context.Context, r *dataset.Set) ([]core.Match, error) {
	return e.SearchQueryContext(ctx, r, nil)
}

// SearchQueryContext is SearchContext with per-query overrides and stats
// capture threaded into every shard's pass. A nil q is exactly
// SearchContext.
func (e *Engine) SearchQueryContext(ctx context.Context, r *dataset.Set, q *core.Query) ([]core.Match, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	per, err := e.scatter(ctx, r, -1, q)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, ms := range per {
		n += len(ms)
	}
	out := make([]core.Match, 0, n)
	for _, ms := range per {
		out = append(out, ms...)
	}
	sortMatches(out)
	return out, nil
}

// DiscoverContext answers RELATED SET DISCOVERY for refs against the
// sharded collection. When refs is the engine's own global collection the
// self-join is deduplicated exactly like the serial engine's: no
// self-pairs, and under SET-SIMILARITY each unordered pair reported once.
// Pairs are returned sorted by (R, S); scores are bit-identical to the
// serial engine's.
func (e *Engine) DiscoverContext(ctx context.Context, refs *dataset.Collection) ([]core.Pair, error) {
	return e.DiscoverQueryContext(ctx, refs, nil)
}

// DiscoverQueryContext is DiscoverContext with per-query overrides and
// stats capture: q shapes every ⟨reference, shard⟩ pass and its Stats
// capture absorbs all of their funnels. A nil q is exactly DiscoverContext.
func (e *Engine) DiscoverQueryContext(ctx context.Context, refs *dataset.Collection, q *core.Query) ([]core.Pair, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	selfJoin := refs == e.global
	n := len(refs.Sets)
	workers := Workers(e.opts.Concurrency, n)

	// Per-worker searchers (reusable pass scratch per shard) and pair
	// accumulators, merged after the fan-out.
	searchers := make([][]*core.Searcher, workers)
	for w := range searchers {
		searchers[w] = make([]*core.Searcher, e.nshards)
		for s := range searchers[w] {
			searchers[w][s] = e.engines[s].NewSearcher()
		}
	}
	defer func() {
		for _, ss := range searchers {
			for _, sr := range ss {
				sr.Close()
			}
		}
	}()
	locals := make([][]core.Pair, workers)

	err := FanOut(ctx, n, workers, func(ctx context.Context, w, ri int) error {
		if selfJoin && ri < len(e.dead) && e.dead[ri] {
			return nil // deleted sets are no longer references
		}
		r := &refs.Sets[ri]
		for s := 0; s < e.nshards; s++ {
			skip := -1
			if selfJoin && e.opts.Metric == core.SetSimilarity {
				// The serial engine skips candidates with global index
				// ≤ ri; within this shard those are exactly the locals
				// whose global index is ≤ ri, a prefix of the sorted
				// l2g list.
				skip = sort.SearchInts(e.l2g[s], ri+1) - 1
			}
			ms, err := searchers[w][s].SearchQuery(ctx, r, skip, q)
			if err != nil {
				return err
			}
			g := e.l2g[s]
			for _, m := range ms {
				gi := g[m.Set]
				if selfJoin && gi == ri {
					continue // no self-pairs
				}
				locals[w] = append(locals[w], core.Pair{R: ri, S: gi, Relatedness: m.Relatedness, Score: m.Score})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pairs []core.Pair
	for _, local := range locals {
		pairs = append(pairs, local...)
	}
	sortPairs(pairs)
	return pairs, nil
}
