// Package paperdata reproduces the running example of the paper's Table 2:
// a reference set R (the Location column) and a collection S = {S1..S4},
// with token names t1..t12 in decreasing order of frequency. Tests and the
// quickstart example use it as ground truth: at δ = 0.7 under
// SET-CONTAINMENT with Jaccard and α = 0, only S4 is related to R, with
// |R ∩̃ S4| = 0.8 + 1 + 3/7 ≈ 2.229 and containment ≈ 0.743.
package paperdata

import "silkmoth/internal/dataset"

// Token names t1..t12 from the paper (t1="77", ..., t12="IL").
var tokenNames = map[string]string{
	"t1": "77", "t2": "Mass", "t3": "Ave", "t4": "5th",
	"t5": "St", "t6": "Boston", "t7": "02115", "t8": "MA",
	"t9": "Seattle", "t10": "WA", "t11": "Chicago", "t12": "IL",
}

func elem(ts ...string) string {
	out := ""
	for i, t := range ts {
		if i > 0 {
			out += " "
		}
		out += tokenNames[t]
	}
	return out
}

// ReferenceR returns the reference set R = Location of Table 2.
func ReferenceR() dataset.RawSet {
	return dataset.RawSet{
		Name: "R",
		Elements: []string{
			elem("t1", "t2", "t3", "t6", "t8"),   // r1
			elem("t4", "t5", "t7", "t9", "t10"),  // r2
			elem("t1", "t4", "t5", "t11", "t12"), // r3
		},
	}
}

// CollectionS returns the collection S = {S1, S2, S3, S4} of Table 2.
func CollectionS() []dataset.RawSet {
	return []dataset.RawSet{
		{Name: "S1", Elements: []string{
			elem("t2", "t3", "t5", "t6", "t7"),
			elem("t1", "t2", "t4", "t5", "t6"),
			elem("t1", "t2", "t3", "t4", "t7"),
		}},
		{Name: "S2", Elements: []string{
			elem("t1", "t6", "t8"),
			elem("t1", "t4", "t5", "t6", "t7"),
			elem("t1", "t2", "t3", "t7", "t9"),
		}},
		{Name: "S3", Elements: []string{
			elem("t1", "t2", "t3", "t4", "t6", "t8"),
			elem("t2", "t3", "t11", "t12"),
			elem("t1", "t2", "t3", "t5"),
		}},
		{Name: "S4", Elements: []string{
			elem("t1", "t2", "t3", "t8"),
			elem("t4", "t5", "t7", "t9", "t10"),
			elem("t1", "t4", "t5", "t6", "t9"),
		}},
	}
}

// TokenName resolves a paper token label like "t8" to its string ("MA").
func TokenName(label string) string { return tokenNames[label] }
