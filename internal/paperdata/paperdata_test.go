package paperdata

import (
	"context"
	"math"
	"testing"

	"silkmoth/internal/core"
	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

// TestTable2GroundTruth checks the package against the paper's running
// example: at δ = 0.7 under SET-CONTAINMENT with Jaccard and α = 0, only S4
// is related to R, with |R ∩̃ S4| = 0.8 + 1 + 3/7 ≈ 2.229.
func TestTable2GroundTruth(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, CollectionS())
	refs := dataset.BuildWord(dict, []dataset.RawSet{ReferenceR()})

	eng, err := core.NewEngine(coll, core.DefaultOptions(core.SetContainment, core.Jaccard, 0.7, 0))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := eng.SearchContext(context.Background(), &refs.Sets[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("got %d related sets, want exactly S4: %+v", len(ms), ms)
	}
	if name := coll.Sets[ms[0].Set].Name; name != "S4" {
		t.Fatalf("related set = %s, want S4", name)
	}
	wantScore := 0.8 + 1.0 + 3.0/7.0
	if math.Abs(ms[0].Score-wantScore) > 1e-9 {
		t.Errorf("score = %v, want %v", ms[0].Score, wantScore)
	}
	wantRel := wantScore / 3
	if math.Abs(ms[0].Relatedness-wantRel) > 1e-9 {
		t.Errorf("relatedness = %v, want %v", ms[0].Relatedness, wantRel)
	}
}

// TestShapes pins the example's structure: R has 3 elements, S has 4 sets
// of 3 elements each, and token labels resolve.
func TestShapes(t *testing.T) {
	r := ReferenceR()
	if r.Name != "R" || len(r.Elements) != 3 {
		t.Fatalf("R = %+v", r)
	}
	ss := CollectionS()
	if len(ss) != 4 {
		t.Fatalf("|S| = %d, want 4", len(ss))
	}
	for i, s := range ss {
		if len(s.Elements) != 3 {
			t.Errorf("S%d has %d elements, want 3", i+1, len(s.Elements))
		}
	}
	if TokenName("t8") != "MA" || TokenName("t1") != "77" {
		t.Errorf("token names: t8=%q t1=%q", TokenName("t8"), TokenName("t1"))
	}
	if TokenName("t99") != "" {
		t.Errorf("unknown token should resolve empty, got %q", TokenName("t99"))
	}
}
