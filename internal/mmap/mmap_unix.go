//go:build unix

package mmap

import (
	"os"
	"syscall"
)

// Open maps path read-only. An empty file yields an unmapped empty Mapping
// (zero-length mmap is invalid), and any mapping failure falls back to
// reading the file whole — Open only returns an error when the file itself
// cannot be read.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return FromBytes(nil), nil
	}
	if int64(int(size)) == size {
		data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
		if err == nil {
			return &Mapping{data: data, mapped: true}, nil
		}
	}
	return readWhole(f)
}

func munmap(data []byte) error { return syscall.Munmap(data) }
