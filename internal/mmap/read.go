package mmap

import (
	"io"
	"os"
)

// readWhole is the shared fallback: slurp the open file into a heap-backed
// Mapping.
func readWhole(f *os.File) (*Mapping, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return FromBytes(data), nil
}
