//go:build !unix

package mmap

import "os"

// Open reads path whole: this platform has no mapping support, so the
// Mapping owns a heap copy and Mapped() reports false.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readWhole(f)
}

// munmap is never reached here — only Open on a mapping platform sets
// mapped — but the shared Close needs the symbol.
func munmap([]byte) error { return nil }
