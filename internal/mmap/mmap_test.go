package mmap

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestOpenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	want := bytes.Repeat([]byte("silkmoth"), 1000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Data(), want) {
		t.Fatalf("mapped %d bytes, want %d identical", len(m.Data()), len(want))
	}
	if runtime.GOOS == "linux" && !m.Mapped() {
		t.Error("expected a real mapping on linux")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Data() != nil {
		t.Error("Data non-nil after Close")
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Data()) != 0 || m.Mapped() {
		t.Fatalf("empty file: %d bytes, mapped=%v", len(m.Data()), m.Mapped())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file opened")
	}
}

func TestFromBytes(t *testing.T) {
	data := []byte("abc")
	m := FromBytes(data)
	if m.Mapped() {
		t.Error("heap mapping reports mapped")
	}
	if !bytes.Equal(m.Data(), data) {
		t.Error("data differs")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	var nilm *Mapping
	if nilm.Data() != nil || nilm.Mapped() || nilm.Close() != nil {
		t.Error("nil Mapping not inert")
	}
}
