// Package mmap exposes a read-only file mapping behind one small type so
// callers can hold snapshot bytes without copying them onto the heap. On
// platforms (or files) where mapping is unavailable the package degrades
// to reading the file whole — the caller sees the same Mapping either way
// and can ask Mapped() whether the bytes are borrowed from the page cache
// or owned outright. A borrowed mapping's Data must not be written to and
// must not be read after Close.
package mmap

// Mapping holds a file's bytes, either as a live read-only memory mapping
// (Mapped() true — Close unmaps and the bytes vanish) or as an ordinary
// heap slice (Mapped() false — Close just drops the reference).
type Mapping struct {
	data   []byte
	mapped bool
}

// FromBytes wraps an ordinary heap slice in a Mapping so code paths that
// hand ownership of snapshot bytes around need only one type.
func FromBytes(data []byte) *Mapping {
	return &Mapping{data: data}
}

// Data returns the mapped or read bytes. Nil after Close.
func (m *Mapping) Data() []byte {
	if m == nil {
		return nil
	}
	return m.data
}

// Mapped reports whether Data aliases a live memory mapping (true) or a
// private heap copy (false). Only mapped data becomes invalid on Close.
func (m *Mapping) Mapped() bool { return m != nil && m.mapped }

// Close releases the mapping. Idempotent; safe on nil. After Close, Data
// returns nil, and any slice previously derived from a mapped Data must no
// longer be touched.
func (m *Mapping) Close() error {
	if m == nil || m.data == nil {
		return nil
	}
	data, wasMapped := m.data, m.mapped
	m.data, m.mapped = nil, false
	if wasMapped {
		return munmap(data)
	}
	return nil
}
