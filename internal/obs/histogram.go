// Package obs is silkmoth's dependency-free observability substrate:
// atomic fixed-bucket latency histograms with Prometheus text rendering, a
// structured JSON line logger with request ids, build/runtime introspection
// gauges, and a minimal parser for the Prometheus text exposition format
// (used by the conformance tests and the promcheck CLI so /metrics can
// never silently drift out of scrape-ability).
//
// Everything here is safe for concurrent use and allocation-free on the
// hot path (Histogram.Observe), so instrumentation can ride
// inside the engine's zero-alloc query pipeline.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBounds is the number of finite histogram bucket upper bounds; every
// histogram additionally has a terminal +Inf bucket, so NumBuckets counts
// one more.
//
// Bounds are log-spaced powers of two from 1µs to ~67s (1µs<<26): wide
// enough to cover a sub-microsecond plan stage and a straggling
// scatter-gather shard in the same shape, with constant-time bucketing
// (one bit-length instruction, no search).
const (
	NumBounds  = 27
	NumBuckets = NumBounds + 1
)

// bound0 is the first bucket's upper bound in nanoseconds (1µs); bound i
// is bound0 << i.
const bound0 = int64(1000)

// BucketBounds returns the finite upper bounds in seconds, ascending. The
// slice is freshly allocated; callers may keep it.
func BucketBounds() []float64 {
	out := make([]float64, NumBounds)
	for i := range out {
		out[i] = float64(bound0<<i) / 1e9
	}
	return out
}

// bucketOf returns the index of the bucket a duration falls in:
// bucket 0 is (-∞, 1µs], bucket i is (1µs<<(i-1), 1µs<<i], and bucket
// NumBounds is the +Inf overflow.
func bucketOf(d time.Duration) int {
	n := int64(d)
	if n <= bound0 {
		return 0
	}
	// Smallest i with n <= bound0<<i, i.e. the bit length of the
	// microsecond count rounded up.
	i := bits.Len64(uint64((n - 1) / bound0))
	if i >= NumBounds {
		return NumBounds
	}
	return i
}

// Histogram is a fixed-bucket log-spaced latency histogram over atomic
// counters. The zero value is ready to use; Observe is lock-free and
// allocation-free, so it can sit on per-request and per-pass hot paths.
// Histograms must not be copied after first use.
type Histogram struct {
	counts [NumBuckets]int64
	count  int64
	sum    int64 // nanoseconds
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	atomic.AddInt64(&h.counts[bucketOf(d)], 1)
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, int64(d))
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return atomic.LoadInt64(&h.count) }

// Snapshot returns a point-in-time copy of the histogram. Buckets are
// per-bucket (non-cumulative) counts; rendering accumulates them.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = atomic.LoadInt64(&h.counts[i])
	}
	s.Count = atomic.LoadInt64(&h.count)
	s.SumNanos = atomic.LoadInt64(&h.sum)
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, mergeable
// across shards.
type HistogramSnapshot struct {
	// Counts holds per-bucket observation counts: Counts[i] for bound
	// BucketBounds()[i], Counts[NumBounds] for +Inf.
	Counts [NumBuckets]int64
	// Count is the total number of observations (the sum of Counts).
	Count int64
	// SumNanos is the sum of all observed durations in nanoseconds.
	SumNanos int64
}

// Add folds another snapshot into s (merging per-shard histograms into an
// engine-wide one).
func (s *HistogramSnapshot) Add(o HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.SumNanos += o.SumNanos
}

// WriteHistogram renders one labeled histogram series in the Prometheus
// text exposition format: cumulative _bucket lines with a terminal +Inf,
// then _sum (seconds) and _count. labels is either empty or a
// pre-formatted label body like `path="/v1/search"`; the le label is
// appended to it. Callers emit the family's # HELP/# TYPE header once via
// WriteHistogramHeader before any series.
func WriteHistogram(w io.Writer, name, labels string, s HistogramSnapshot) {
	le := labels
	if le != "" {
		le += ","
	}
	cum := int64(0)
	for i := 0; i < NumBounds; i++ {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, le, formatBound(i), cum)
	}
	cum += s.Counts[NumBounds]
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, le, cum)
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, float64(s.SumNanos)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, s.Count)
}

// WriteHistogramHeader emits a histogram family's # HELP and # TYPE lines.
func WriteHistogramHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
}

// formatBound renders bucket bound i in seconds the way Prometheus
// clients conventionally do (shortest float form).
func formatBound(i int) string {
	return fmt.Sprintf("%g", float64(bound0<<i)/1e9)
}
