package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketOfBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5 * time.Second, 0}, // negative clamps into the first bucket
		{0, 0},
		{time.Microsecond, 0},            // exactly bound 0 → bucket 0 (le is inclusive)
		{time.Microsecond + 1, 1},        // one past bound 0
		{2 * time.Microsecond, 1},        // exactly bound 1
		{2*time.Microsecond + 1, 2},      // one past bound 1
		{1024 * time.Microsecond, 10},    // exactly bound 10 (1µs<<10)
		{1024*time.Microsecond + 1, 11},  // one past bound 10
		{time.Second, 20},                // 1µs<<20 ≈ 1.049s > 1s
		{1 << 26 * time.Microsecond, 26}, // last finite bound, ~67s
		{2 * time.Minute, NumBounds},     // overflow → +Inf bucket
	}
	for _, c := range cases {
		d := c.d
		if d < 0 {
			d = 0 // Observe clamps; bucketOf assumes non-negative
		}
		if got := bucketOf(d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestBucketBoundsAscending(t *testing.T) {
	b := BucketBounds()
	if len(b) != NumBounds {
		t.Fatalf("len = %d, want %d", len(b), NumBounds)
	}
	if b[0] != 1e-6 {
		t.Errorf("first bound = %g, want 1e-06", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Errorf("bound %d = %g, want %g", i, b[i], 2*b[i-1])
		}
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(90 * time.Second)
	h.Observe(-time.Second) // clamps to 0

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.Counts[0] != 2 { // 500ns and the clamped negative
		t.Errorf("bucket 0 = %d, want 2", s.Counts[0])
	}
	if s.Counts[2] != 2 { // 3µs ∈ (2µs, 4µs]
		t.Errorf("bucket 2 = %d, want 2", s.Counts[2])
	}
	if s.Counts[NumBounds] != 1 { // 90s overflows
		t.Errorf("+Inf bucket = %d, want 1", s.Counts[NumBounds])
	}
	wantSum := int64(500 + 2*3000 + 90*1e9)
	if s.SumNanos != wantSum {
		t.Errorf("SumNanos = %d, want %d", s.SumNanos, wantSum)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Errorf("bucket total %d != Count %d", total, s.Count)
	}
}

func TestHistogramSnapshotAdd(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	a.Observe(time.Second)
	b.Observe(time.Millisecond)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Add(sb)
	if sa.Count != 3 {
		t.Fatalf("merged Count = %d, want 3", sa.Count)
	}
	if want := int64(1000 + 1e9 + 1e6); sa.SumNanos != want {
		t.Errorf("merged SumNanos = %d, want %d", sa.SumNanos, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
}

func TestObserveAllocs(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(37 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", allocs)
	}
}

func TestWriteHistogramFormat(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond)
	h.Observe(2 * time.Minute)

	var unlabeled, labeled bytes.Buffer
	WriteHistogramHeader(&unlabeled, "x_seconds", "test histogram")
	WriteHistogram(&unlabeled, "x_seconds", "", h.Snapshot())
	WriteHistogramHeader(&labeled, "y_seconds", "labeled test histogram")
	WriteHistogram(&labeled, "y_seconds", `path="/v1/search"`, h.Snapshot())

	out := unlabeled.String()
	if strings.Contains(out, "{}") || strings.Contains(out, "{,") || strings.Contains(out, ",le=") {
		t.Errorf("unlabeled render has stray label syntax:\n%s", out)
	}
	if !strings.Contains(out, `x_seconds_bucket{le="+Inf"} 2`) {
		t.Errorf("missing +Inf terminal:\n%s", out)
	}
	if !strings.Contains(out, "x_seconds_count 2") {
		t.Errorf("missing bare _count:\n%s", out)
	}
	lout := labeled.String()
	if !strings.Contains(lout, `y_seconds_bucket{path="/v1/search",le="1e-06"} 0`) {
		t.Errorf("labeled bucket line malformed:\n%s", lout)
	}
	if !strings.Contains(lout, `y_seconds_count{path="/v1/search"} 2`) {
		t.Errorf("labeled _count malformed:\n%s", lout)
	}

	// Both renders must survive the conformance parser.
	for _, page := range []string{out, lout} {
		fams, err := ParseText(strings.NewReader(page))
		if err != nil {
			t.Fatalf("ParseText: %v\n%s", err, page)
		}
		if err := Validate(fams); err != nil {
			t.Fatalf("Validate: %v\n%s", err, page)
		}
	}
}
