package obs

import (
	"fmt"
	"io"
	"runtime"
)

// WriteRuntimeMetrics renders process-level runtime gauges in Prometheus
// text format: goroutine count, heap usage, and cumulative GC activity.
// It reads runtime.MemStats, which briefly stops the world — fine at
// scrape frequency, not for hot paths.
func WriteRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	fmt.Fprintf(w, "# HELP silkmothd_goroutines Number of live goroutines.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_goroutines gauge\n")
	fmt.Fprintf(w, "silkmothd_goroutines %d\n", runtime.NumGoroutine())

	fmt.Fprintf(w, "# HELP silkmothd_heap_alloc_bytes Bytes of allocated heap objects.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_heap_alloc_bytes gauge\n")
	fmt.Fprintf(w, "silkmothd_heap_alloc_bytes %d\n", ms.HeapAlloc)

	fmt.Fprintf(w, "# HELP silkmothd_heap_sys_bytes Bytes of heap obtained from the OS.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_heap_sys_bytes gauge\n")
	fmt.Fprintf(w, "silkmothd_heap_sys_bytes %d\n", ms.HeapSys)

	fmt.Fprintf(w, "# HELP silkmothd_gc_runs_total Completed GC cycles.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_gc_runs_total counter\n")
	fmt.Fprintf(w, "silkmothd_gc_runs_total %d\n", ms.NumGC)

	fmt.Fprintf(w, "# HELP silkmothd_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_gc_pause_seconds_total counter\n")
	fmt.Fprintf(w, "silkmothd_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
}

// WriteBuildInfoMetric renders the silkmothd_build_info gauge: constant 1
// with the binary's identity in labels, the conventional pattern for
// joining version metadata onto other series.
func WriteBuildInfoMetric(w io.Writer) {
	bi := ReadBuildInfo()
	fmt.Fprintf(w, "# HELP silkmothd_build_info Build metadata of the running binary; constant 1.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_build_info gauge\n")
	fmt.Fprintf(w, "silkmothd_build_info{version=%q,go=%q,revision=%q} 1\n",
		bi.Version, bi.GoVersion, bi.Revision)
}
