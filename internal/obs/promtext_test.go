package obs

import (
	"strings"
	"testing"
)

func parseAndValidate(t *testing.T, page string) error {
	t.Helper()
	fams, err := ParseText(strings.NewReader(page))
	if err != nil {
		return err
	}
	return Validate(fams)
}

func TestParseValidPage(t *testing.T) {
	page := `# HELP up Whether the target is up.
# TYPE up gauge
up 1
# HELP reqs_total Requests served.
# TYPE reqs_total counter
reqs_total{path="/v1/search",code="200"} 42
reqs_total{path="/v1/search",code="500"} 1
# HELP lat_seconds Request latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.001"} 10
lat_seconds_bucket{le="0.01"} 15
lat_seconds_bucket{le="+Inf"} 16
lat_seconds_sum 0.0123
lat_seconds_count 16
`
	fams, err := ParseText(strings.NewReader(page))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if err := Validate(fams); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if fams[1].Samples[0].Labels["path"] != "/v1/search" {
		t.Errorf("label parse: %+v", fams[1].Samples[0].Labels)
	}
	if fams[2].Name != "lat_seconds" || len(fams[2].Samples) != 5 {
		t.Errorf("histogram family grouping: name=%s samples=%d", fams[2].Name, len(fams[2].Samples))
	}
}

func TestParseEscapedLabels(t *testing.T) {
	page := "# HELP m test\n# TYPE m gauge\nm{k=\"a\\\"b\\\\c\\nd\"} 1\n"
	fams, err := ParseText(strings.NewReader(page))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if got := fams[0].Samples[0].Labels["k"]; got != "a\"b\\c\nd" {
		t.Errorf("unescape = %q", got)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		page string
		want string // substring of the expected error
	}{
		{"missing HELP", "# TYPE m gauge\nm 1\n", "missing HELP"},
		{"missing TYPE", "# HELP m test\nm 1\n", "missing TYPE"},
		{"bad metric name", "# HELP 9m test\n# TYPE 9m gauge\n9m 1\n", "illegal metric name"},
		{"bad label name", "# HELP m test\n# TYPE m gauge\nm{9k=\"v\"} 1\n", "illegal label name"},
		{"reserved label name", "# HELP m test\n# TYPE m gauge\nm{__k=\"v\"} 1\n", "illegal label name"},
		{"unquoted label value", "# HELP m test\n# TYPE m gauge\nm{k=v} 1\n", "quoted"},
		{"duplicate sample", "# HELP m test\n# TYPE m gauge\nm{k=\"v\"} 1\nm{k=\"v\"} 2\n", "duplicate sample"},
		{"bad value", "# HELP m test\n# TYPE m gauge\nm abc\n", "bad value"},
		{"unknown type", "# HELP m test\n# TYPE m widget\nm 1\n", "unknown TYPE"},
		{
			"non-cumulative buckets",
			"# HELP h test\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
			"not cumulative",
		},
		{
			"missing +Inf terminal",
			"# HELP h test\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_sum 1\nh_count 5\n",
			"want +Inf",
		},
		{
			"count mismatch",
			"# HELP h test\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
			"_count",
		},
		{
			"missing sum",
			"# HELP h test\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"missing _sum",
		},
		{
			"bounds not increasing",
			"# HELP h test\n# TYPE h histogram\nh_bucket{le=\"0.2\"} 5\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not increasing",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := parseAndValidate(t, c.page)
			if err == nil {
				t.Fatalf("accepted invalid page:\n%s", c.page)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestHistogramPerSeriesValidation(t *testing.T) {
	// Two labeled series in one family validate independently.
	page := `# HELP h test
# TYPE h histogram
h_bucket{path="/a",le="0.1"} 2
h_bucket{path="/a",le="+Inf"} 2
h_sum{path="/a"} 0.05
h_count{path="/a"} 2
h_bucket{path="/b",le="0.1"} 0
h_bucket{path="/b",le="+Inf"} 1
h_sum{path="/b"} 1.5
h_count{path="/b"} 1
`
	if err := parseAndValidate(t, page); err != nil {
		t.Fatalf("multi-series histogram rejected: %v", err)
	}
}

func TestPlainCounterWithHistogramSuffix(t *testing.T) {
	// A counter that merely ends in _count is its own family, not part of
	// some histogram.
	page := "# HELP gc_count total gcs\n# TYPE gc_count counter\ngc_count 7\n"
	fams, err := ParseText(strings.NewReader(page))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if len(fams) != 1 || fams[0].Name != "gc_count" {
		t.Fatalf("family split wrong: %+v", fams)
	}
	if err := Validate(fams); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
