package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLoggerEmitJSONLine(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC) }
	l.Emit("slow_query", map[string]any{
		"request_id": "abc-000001",
		"elapsed_ms": 12.5,
		"ts":         "spoofed", // must be ignored in favor of the logger's own
	})
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one newline-terminated line, got %q", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, line)
	}
	if m["event"] != "slow_query" || m["request_id"] != "abc-000001" {
		t.Errorf("fields: %v", m)
	}
	if m["ts"] != "2026-08-08T12:00:00.123456789Z" {
		t.Errorf("ts = %v", m["ts"])
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Emit("x", nil) // must not panic
	NewLogger(nil).Emit("x", map[string]any{"k": 1})
}

func TestLoggerUnmarshalableField(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Emit("x", map[string]any{"bad": func() {}, "good": "v"})
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("degraded line is not valid JSON: %v\n%s", err, buf.String())
	}
	if m["good"] != "v" {
		t.Errorf("good field lost: %v", m)
	}
}

func TestLoggerConcurrentLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Emit("e", map[string]any{"g": i, "j": j})
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 16*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 16*50)
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("interleaved line: %v\n%q", err, ln)
		}
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	const n = 10000
	seen := make(map[string]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 0, n/8)
			for i := 0; i < n/8; i++ {
				local = append(local, NewRequestID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate id %s", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	for id := range seen {
		if !ValidRequestID(id) {
			t.Fatalf("minted id fails own validation: %q", id)
		}
	}
}

func TestValidRequestID(t *testing.T) {
	ok := []string{"abc", "trace-123", "a", strings.Repeat("x", 128)}
	bad := []string{"", "has space", "quo\"te", "back\\slash", "ctrl\x01", "utf8-é", strings.Repeat("x", 129)}
	for _, s := range ok {
		if !ValidRequestID(s) {
			t.Errorf("rejected valid id %q", s)
		}
	}
	for _, s := range bad {
		if ValidRequestID(s) {
			t.Errorf("accepted invalid id %q", s)
		}
	}
}

func TestBuildInfo(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.GoVersion == "" {
		t.Error("empty GoVersion")
	}
	if bi.Version == "" {
		t.Error("empty Version")
	}
}

func TestRuntimeAndBuildInfoMetricsScrapeable(t *testing.T) {
	var buf bytes.Buffer
	WriteRuntimeMetrics(&buf)
	WriteBuildInfoMetric(&buf)
	fams, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if err := Validate(fams); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := map[string]bool{
		"silkmothd_goroutines": false, "silkmothd_heap_alloc_bytes": false,
		"silkmothd_build_info": false,
	}
	for _, f := range fams {
		if _, ok := want[f.Name]; ok {
			want[f.Name] = true
		}
	}
	for name, ok := range want {
		if !ok {
			t.Errorf("missing family %s", name)
		}
	}
}
