package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo describes the running binary, read once from the Go build
// metadata stamped into it (no version file or ldflags needed).
type BuildInfo struct {
	// Version is the main module's version: a tag for released builds,
	// a pseudo-version or "(devel)" otherwise.
	Version string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
	// Revision is the VCS commit hash when stamped, possibly suffixed
	// "+dirty"; empty when the build had no VCS info.
	Revision string
}

var buildInfoOnce = sync.OnceValue(func() BuildInfo {
	bi := BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if v := info.Main.Version; v != "" {
		bi.Version = v
	}
	if info.GoVersion != "" {
		bi.GoVersion = info.GoVersion
	}
	var rev string
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		bi.Revision = rev
	}
	return bi
})

// ReadBuildInfo returns the binary's build metadata. The first call reads
// and caches it; later calls are free.
func ReadBuildInfo() BuildInfo { return buildInfoOnce() }
