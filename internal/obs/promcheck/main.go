// Command promcheck validates a Prometheus text exposition page (a saved
// /metrics scrape) against the conformance rules in internal/obs: every
// family has HELP and TYPE, metric and label names are legal, histogram
// buckets are cumulative with a terminal +Inf, and _sum/_count are
// consistent. CI scrapes a live silkmothd and pipes the page through it.
//
// Usage:
//
//	promcheck [file]          # reads stdin when no file is given
//	promcheck -require name,name2 [file]
//
// -require lists family names that must be present, so CI fails if a
// route or stage histogram silently disappears, not just if it's broken.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"silkmoth/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric family names that must be present")
	flag.Parse()

	var in io.Reader = os.Stdin
	src := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in, src = f, flag.Arg(0)
	}

	fams, err := obs.ParseText(in)
	if err != nil {
		fatal("%s: parse: %v", src, err)
	}
	if err := obs.Validate(fams); err != nil {
		fatal("%s: %v", src, err)
	}
	have := make(map[string]bool, len(fams))
	for _, f := range fams {
		have[f.Name] = true
	}
	var missing []string
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name != "" && !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fatal("%s: missing required families: %s", src, strings.Join(missing, ", "))
	}
	fmt.Printf("promcheck: %s ok (%d families)\n", src, len(fams))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}
