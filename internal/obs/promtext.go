package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements a minimal parser and conformance validator for the
// Prometheus text exposition format (version 0.0.4) — just enough to prove
// a /metrics page is scrape-able: legal metric and label names, HELP/TYPE
// present for every family, histogram buckets cumulative with a terminal
// +Inf, and _sum/_count consistent. The server's conformance test and the
// promcheck CLI both run every emitted family through it, so the handcrafted
// rendering can never silently drift into something Prometheus would drop.

// MetricFamily is one family of samples sharing a base name.
type MetricFamily struct {
	// Name is the family's base name (for histograms, without the
	// _bucket/_sum/_count suffix).
	Name string
	// Help and Type come from the family's # HELP and # TYPE lines.
	Help string
	Type string
	// Samples are the family's sample lines in input order.
	Samples []Sample
}

// Sample is one sample line.
type Sample struct {
	// Name is the full sample name (including _bucket/_sum/_count).
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText parses a Prometheus text exposition page into its families,
// in input order. It fails on lines that are neither comments, blank, nor
// well-formed samples, on malformed label syntax, and on illegal metric or
// label names — the things that make a scrape fail outright.
func ParseText(r io.Reader) ([]*MetricFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var fams []*MetricFamily
	byName := make(map[string]*MetricFamily)
	family := func(base string) *MetricFamily {
		if f, ok := byName[base]; ok {
			return f
		}
		f := &MetricFamily{Name: base}
		byName[base] = f
		fams = append(fams, f)
		return f
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed HELP: %q", lineNo, line)
			}
			f := family(name)
			if f.Help != "" {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			f.Help = help
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, typ, name)
			}
			f := family(name)
			if f.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if len(f.Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			f.Type = typ
		case strings.HasPrefix(line, "#"):
			continue // free-form comment
		default:
			s, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			base := baseName(s.Name, byName)
			family(base).Samples = append(family(base).Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// baseName strips a histogram/summary suffix when the stripped name is a
// declared family (so a plain counter named x_count still parses).
func baseName(name string, byName map[string]*MetricFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f, exists := byName[base]; exists && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	return name
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample: %q", line)
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("illegal metric name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "" {
		return s, fmt.Errorf("missing value: %q", line)
	}
	// A timestamp may follow the value; silkmothd never emits one, but
	// accept it for generality.
	if sp := strings.IndexByte(valStr, ' '); sp >= 0 {
		valStr = valStr[:sp]
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `k1="v1",k2="v2"` into dst, validating names and
// unescaping values.
func parseLabels(body string, dst map[string]string) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair in %q", body)
		}
		name := body[:eq]
		if !validLabelName(name) {
			return fmt.Errorf("illegal label name %q", name)
		}
		body = body[eq+1:]
		if body == "" || body[0] != '"' {
			return fmt.Errorf("label %s: value must be quoted", name)
		}
		body = body[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(body); i++ {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return fmt.Errorf("label %s: dangling escape", name)
				}
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(body[i])
				default:
					return fmt.Errorf("label %s: unknown escape \\%c", name, body[i])
				}
				continue
			}
			if c == '"' {
				body = body[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := dst[name]; dup {
			return fmt.Errorf("duplicate label %s", name)
		}
		dst[name] = val.String()
		body = strings.TrimPrefix(body, ",")
	}
	return nil
}

// ValidMetricName reports whether s is a legal exposition-format metric
// family name ([a-zA-Z_:][a-zA-Z0-9_:]*). It is the same predicate the
// parser applies to scraped families, exported so the metricnames static
// analyzer enforces it on the literals that produce them.
func ValidMetricName(s string) bool {
	return validMetricName(s)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Validate checks parsed families for scrape-ability: every family has
// HELP and TYPE, no duplicate sample (same name and label set), and every
// histogram family satisfies the bucket invariants — counts cumulative
// and non-decreasing in le order, a terminal +Inf bucket, and _sum/_count
// present with _count equal to the +Inf bucket — per labeled series.
func Validate(fams []*MetricFamily) error {
	for _, f := range fams {
		if f.Help == "" {
			return fmt.Errorf("family %s: missing HELP", f.Name)
		}
		if f.Type == "" {
			return fmt.Errorf("family %s: missing TYPE", f.Name)
		}
		seen := make(map[string]bool)
		for _, s := range f.Samples {
			// Full label set including le: bucket lines of one series are
			// distinct samples.
			id := s.Name + "|" + fullLabelID(s.Labels)
			if seen[id] {
				return fmt.Errorf("family %s: duplicate sample %s{%s}", f.Name, s.Name, fullLabelID(s.Labels))
			}
			seen[id] = true
		}
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return fmt.Errorf("family %s: %v", f.Name, err)
			}
		}
	}
	return nil
}

// labelID renders labels in sorted order as a stable series identity,
// excluding the le bucket label (all buckets of one histogram series share
// an identity). fullLabelID keeps le, identifying individual sample lines.
func labelID(labels map[string]string) string { return renderLabels(labels, false) }

func fullLabelID(labels map[string]string) string { return renderLabels(labels, true) }

func renderLabels(labels map[string]string, keepLE bool) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" && !keepLE {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// histSeries accumulates one labeled histogram series during validation.
type histSeries struct {
	buckets []bucket // in input order
	sum     float64
	hasSum  bool
	count   float64
	hasCnt  bool
}

type bucket struct {
	le  float64
	cum float64
}

func validateHistogram(f *MetricFamily) error {
	series := make(map[string]*histSeries)
	get := func(labels map[string]string) *histSeries {
		id := labelID(labels)
		if s, ok := series[id]; ok {
			return s
		}
		s := &histSeries{}
		series[id] = s
		return s
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("bad le %q: %v", leStr, err)
			}
			hs := get(s.Labels)
			hs.buckets = append(hs.buckets, bucket{le: le, cum: s.Value})
		case f.Name + "_sum":
			hs := get(s.Labels)
			hs.sum, hs.hasSum = s.Value, true
		case f.Name + "_count":
			hs := get(s.Labels)
			hs.count, hs.hasCnt = s.Value, true
		default:
			return fmt.Errorf("unexpected sample %s in histogram family", s.Name)
		}
	}
	for id, hs := range series {
		name := id
		if name == "" {
			name = "(no labels)"
		}
		if len(hs.buckets) == 0 {
			return fmt.Errorf("series %s: no buckets", name)
		}
		for i := 1; i < len(hs.buckets); i++ {
			if hs.buckets[i].le <= hs.buckets[i-1].le {
				return fmt.Errorf("series %s: bucket bounds not increasing (%g after %g)",
					name, hs.buckets[i].le, hs.buckets[i-1].le)
			}
			if hs.buckets[i].cum < hs.buckets[i-1].cum {
				return fmt.Errorf("series %s: bucket counts not cumulative (%g after %g at le=%g)",
					name, hs.buckets[i].cum, hs.buckets[i-1].cum, hs.buckets[i].le)
			}
		}
		last := hs.buckets[len(hs.buckets)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("series %s: final bucket is le=%g, want +Inf", name, last.le)
		}
		if !hs.hasSum {
			return fmt.Errorf("series %s: missing _sum", name)
		}
		if !hs.hasCnt {
			return fmt.Errorf("series %s: missing _count", name)
		}
		if hs.count != last.cum {
			return fmt.Errorf("series %s: _count %g != +Inf bucket %g", name, hs.count, last.cum)
		}
		if hs.count == 0 && hs.sum != 0 {
			return fmt.Errorf("series %s: zero _count with nonzero _sum %g", name, hs.sum)
		}
	}
	return nil
}
