package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Logger writes structured one-line JSON events. Every line carries ts
// (RFC3339Nano) and event; callers add arbitrary fields. A mutex
// serializes writes so concurrent requests never interleave bytes of a
// line — the logger sits off the query hot path (access and slow-query
// logging only), so the lock is not a throughput concern.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // test seam; nil means time.Now
}

// NewLogger returns a Logger writing JSON lines to w. A nil w yields a
// logger whose Emit is a no-op, so call sites need no nil checks.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w}
}

// Enabled reports whether the logger has a destination.
func (l *Logger) Enabled() bool { return l != nil && l.w != nil }

// Emit writes one JSON line for event with the given fields. Fields named
// "ts" or "event" are ignored in favor of the logger's own. Marshal
// failures of individual values degrade to their fmt representation
// rather than dropping the line.
func (l *Logger) Emit(event string, fields map[string]any) {
	if !l.Enabled() {
		return
	}
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	line := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		if k == "ts" || k == "event" {
			continue
		}
		line[k] = v
	}
	line["ts"] = now().UTC().Format(time.RFC3339Nano)
	line["event"] = event
	buf, err := json.Marshal(line)
	if err != nil {
		// A value resisted marshaling (chan, func, NaN). Re-render every
		// field through fmt so the event still lands.
		safe := make(map[string]any, len(line))
		for k, v := range line {
			switch v.(type) {
			case string, bool, int, int64, uint64, float64, json.Number, nil:
				safe[k] = v
			default:
				safe[k] = fmt.Sprint(v)
			}
		}
		buf, _ = json.Marshal(safe)
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}

// Request ids: a per-process random 8-hex prefix plus an atomic counter —
// unique within and across silkmothd restarts without coordination, cheap
// enough to mint on every request.
var (
	ridPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to the startup time; uniqueness across processes
			// degrades but ids stay usable.
			binary.BigEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
		}
		return fmt.Sprintf("%08x", binary.BigEndian.Uint32(b[:]))
	}()
	ridCounter uint64
)

// NewRequestID mints a process-unique request id like "9f3a1c08-000042".
func NewRequestID() string {
	n := atomic.AddUint64(&ridCounter, 1)
	return fmt.Sprintf("%s-%06x", ridPrefix, n)
}

// ValidRequestID reports whether a caller-supplied X-Request-Id is safe to
// propagate and log: non-empty, at most 128 bytes, and printable ASCII
// without spaces, quotes, or backslashes (so it can never break a JSON
// line or header).
func ValidRequestID(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}
