package datagen

import (
	"fmt"
	"math/rand"

	"silkmoth/internal/dataset"
)

// DBLPConfig parameterizes the synthetic DBLP-like title corpus used by the
// approximate string matching application (paper §8.1): each title is a set,
// each whitespace word an element, each q-gram a token. Table 3 reports
// ~9 words per title.
type DBLPConfig struct {
	// NumTitles is the number of base titles to generate; near-duplicates
	// come on top of this.
	NumTitles int
	// Seed makes the corpus deterministic.
	Seed int64
	// DupRate is the fraction of titles that receive a near-duplicate
	// (default 0.3); near-duplicates are what the discovery experiments
	// find.
	DupRate float64
	// MeanWords is the mean title length in words (default 9, Table 3).
	MeanWords int
	// VocabSize is the word vocabulary size (default 4000).
	VocabSize int
}

func (c DBLPConfig) withDefaults() DBLPConfig {
	if c.DupRate == 0 {
		c.DupRate = 0.3
	}
	if c.MeanWords == 0 {
		c.MeanWords = 9
	}
	if c.VocabSize == 0 {
		c.VocabSize = 4000
	}
	return c
}

// DBLP generates the synthetic publication-title corpus. Roughly DupRate of
// the titles get one near-duplicate produced by light character edits
// (dropped letters, substitutions, an occasional dropped word), so that the
// corpus contains related pairs at edit-similarity thresholds α ∈ [0.7, 0.85]
// and relatedness δ ∈ [0.7, 0.85], like real DBLP's repeated/versioned
// titles.
func DBLP(cfg DBLPConfig) []dataset.RawSet {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := newZipfVocab(rng, cfg.VocabSize, 1.4, "")

	var out []dataset.RawSet
	for i := 0; i < cfg.NumTitles; i++ {
		n := cfg.MeanWords - 2 + rng.Intn(5) // mean ≈ MeanWords
		if n < 3 {
			n = 3
		}
		words := make([]string, n)
		for j := range words {
			w := vocab.next()
			for len(w) < 3 { // very short words tokenize poorly at q=3..5
				w += word(rng.Intn(100))
			}
			words[j] = w
		}
		out = append(out, dataset.RawSet{
			Name:     fmt.Sprintf("title%d", i),
			Elements: words,
		})
		if rng.Float64() < cfg.DupRate {
			out = append(out, dataset.RawSet{
				Name:     fmt.Sprintf("title%ddup", i),
				Elements: perturbWords(rng, words),
			})
		}
	}
	return out
}

// perturbWords lightly damages a title: each word suffers a single character
// edit with probability 0.25, and one word in ten is dropped entirely.
func perturbWords(rng *rand.Rand, words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		if len(out) > 0 && rng.Float64() < 0.1 {
			continue // drop the word
		}
		if rng.Float64() < 0.25 {
			w = charEdit(rng, w)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		out = append(out, words[0])
	}
	return out
}

// charEdit applies one random character-level edit to w.
func charEdit(rng *rand.Rand, w string) string {
	r := []rune(w)
	if len(r) == 0 {
		return w
	}
	pos := rng.Intn(len(r))
	switch rng.Intn(3) {
	case 0: // substitution
		r[pos] = rune('a' + rng.Intn(26))
	case 1: // deletion
		r = append(r[:pos], r[pos+1:]...)
	default: // insertion
		r = append(r[:pos], append([]rune{rune('a' + rng.Intn(26))}, r[pos:]...)...)
	}
	if len(r) == 0 {
		return w
	}
	return string(r)
}
