package datagen

import (
	"strings"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

func TestWordDeterministic(t *testing.T) {
	if word(17) != word(17) {
		t.Error("word not deterministic")
	}
	seen := make(map[string]int)
	for i := 0; i < 2000; i++ {
		w := word(i)
		if w == "" {
			t.Fatalf("empty word at %d", i)
		}
		if prev, ok := seen[w]; ok && prev != i {
			// Collisions are possible in principle but must be rare.
			t.Logf("collision: word(%d) == word(%d) == %q", prev, i, w)
		}
		seen[w] = i
	}
	if len(seen) < 1900 {
		t.Errorf("too many collisions: %d distinct of 2000", len(seen))
	}
}

func TestDBLPDeterministicAndShaped(t *testing.T) {
	a := DBLP(DBLPConfig{NumTitles: 300, Seed: 7})
	b := DBLP(DBLPConfig{NumTitles: 300, Seed: 7})
	if len(a) != len(b) {
		t.Fatal("DBLP not deterministic in size")
	}
	for i := range a {
		if a[i].Name != b[i].Name || strings.Join(a[i].Elements, "|") != strings.Join(b[i].Elements, "|") {
			t.Fatal("DBLP not deterministic in content")
		}
	}
	// Shape: mean words/title ≈ 9 (Table 3), with near-duplicates on top.
	if len(a) < 300 || len(a) > 450 {
		t.Errorf("unexpected corpus size %d", len(a))
	}
	totalWords := 0
	for _, s := range a {
		totalWords += len(s.Elements)
	}
	mean := float64(totalWords) / float64(len(a))
	if mean < 7 || mean > 11 {
		t.Errorf("mean words/title = %v, want ≈ 9", mean)
	}
	// Different seeds differ.
	c := DBLP(DBLPConfig{NumTitles: 300, Seed: 8})
	same := len(c) == len(a)
	if same {
		diff := false
		for i := range a {
			if strings.Join(a[i].Elements, "|") != strings.Join(c[i].Elements, "|") {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical corpora")
		}
	}
}

func TestDBLPHasNearDuplicates(t *testing.T) {
	raws := DBLP(DBLPConfig{NumTitles: 200, Seed: 3})
	dups := 0
	for _, s := range raws {
		if strings.HasSuffix(s.Name, "dup") {
			dups++
		}
	}
	if dups < 30 || dups > 100 {
		t.Errorf("dup count = %d, want ≈ 60 of 200", dups)
	}
}

func TestSchemaShape(t *testing.T) {
	raws := WebTableSchemas(SchemaConfig{NumTables: 300, Seed: 11})
	if len(raws) < 300 {
		t.Fatal("missing tables")
	}
	totalAttrs, totalTokens := 0, 0
	for _, s := range raws {
		totalAttrs += len(s.Elements)
		for _, a := range s.Elements {
			totalTokens += len(strings.Fields(a))
		}
	}
	meanAttrs := float64(totalAttrs) / float64(len(raws))
	meanTokens := float64(totalTokens) / float64(totalAttrs)
	if meanAttrs < 2 || meanAttrs > 4 {
		t.Errorf("mean attrs/schema = %v, want ≈ 3", meanAttrs)
	}
	if meanTokens < 8 || meanTokens > 14 {
		t.Errorf("mean tokens/attr = %v, want ≈ 11", meanTokens)
	}
}

func TestColumnsShapeAndContainments(t *testing.T) {
	raws := WebTableColumns(ColumnConfig{NumColumns: 300, Seed: 13})
	supers := 0
	heavy := 0
	totalVals, totalWords := 0, 0
	for _, s := range raws {
		if strings.HasSuffix(s.Name, "super") {
			supers++
		}
		if len(s.Elements) >= 100 {
			heavy++
		}
		totalVals += len(s.Elements)
		for _, v := range s.Elements {
			totalWords += len(strings.Fields(v))
		}
	}
	if supers < 30 || supers > 100 {
		t.Errorf("supercolumns = %d, want ≈ 60", supers)
	}
	if heavy == 0 {
		t.Error("no heavy-tail columns for the Figure 7 experiment")
	}
	meanVals := float64(totalVals) / float64(len(raws))
	if meanVals < 12 || meanVals > 40 {
		t.Errorf("mean values/column = %v, want ≈ 22", meanVals)
	}
	meanWords := float64(totalWords) / float64(totalVals)
	if meanWords < 1.5 || meanWords > 3 {
		t.Errorf("mean words/value = %v, want ≈ 2", meanWords)
	}
}

// Supercolumns must actually approximately contain their bases: tokenize and
// check that the planted containment holds at δ = 0.7 under plain Jaccard
// nearest-neighbor alignment (an upper-bound sanity check on the planting).
func TestPlantedContainmentsAreFindable(t *testing.T) {
	raws := WebTableColumns(ColumnConfig{NumColumns: 80, Seed: 17})
	byName := make(map[string]dataset.RawSet)
	for _, s := range raws {
		byName[s.Name] = s
	}
	checked := 0
	for _, s := range raws {
		if !strings.HasSuffix(s.Name, "super") {
			continue
		}
		base := byName[strings.TrimSuffix(s.Name, "super")]
		superVals := make(map[string]bool)
		for _, v := range s.Elements {
			superVals[v] = true
		}
		exact := 0
		for _, v := range base.Elements {
			if superVals[v] {
				exact++
			}
		}
		// At least 70% of base values carry over exactly; perturbed ones
		// still align approximately under the matching metric.
		if float64(exact) < 0.6*float64(len(base.Elements)) {
			t.Errorf("supercolumn %s keeps only %d/%d base values", s.Name, exact, len(base.Elements))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no supercolumns generated")
	}
}

func TestPickReferences(t *testing.T) {
	raws := WebTableColumns(ColumnConfig{NumColumns: 200, Seed: 19})
	refs := PickReferences(raws, 20, 4)
	if len(refs) == 0 || len(refs) > 20 {
		t.Fatalf("refs = %d", len(refs))
	}
	for _, r := range refs {
		if len(r.Elements) <= 4 {
			t.Errorf("reference %s has only %d values", r.Name, len(r.Elements))
		}
	}
	if got := PickReferences(nil, 5, 4); len(got) != 0 {
		t.Error("empty input should yield no references")
	}
}

// The generated corpora must tokenize cleanly in their application modes.
func TestCorporaTokenize(t *testing.T) {
	dblp := DBLP(DBLPConfig{NumTitles: 50, Seed: 1})
	coll := dataset.BuildQGram(tokens.NewDictionary(), dblp, 3)
	st := dataset.ComputeStats(coll)
	if st.NumSets == 0 || st.TokensPerElem < 2 {
		t.Errorf("DBLP tokenization stats: %+v", st)
	}
	schemas := WebTableSchemas(SchemaConfig{NumTables: 50, Seed: 1})
	coll = dataset.BuildWord(tokens.NewDictionary(), schemas)
	st = dataset.ComputeStats(coll)
	if st.TokensPerElem < 8 {
		t.Errorf("schema tokenization stats: %+v", st)
	}
	cols := WebTableColumns(ColumnConfig{NumColumns: 50, Seed: 1})
	coll = dataset.BuildWord(tokens.NewDictionary(), cols)
	st = dataset.ComputeStats(coll)
	if st.ElemsPerSet < 10 {
		t.Errorf("column tokenization stats: %+v", st)
	}
}
