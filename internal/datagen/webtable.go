package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"silkmoth/internal/dataset"
)

// SchemaConfig parameterizes the synthetic WebTable-schema corpus of the
// schema matching application (paper §8.1): each web-table schema is a set,
// each attribute an element, each attribute value a token. Table 3 reports
// ~3 attributes per schema and ~11.3 tokens per attribute.
type SchemaConfig struct {
	NumTables int
	Seed      int64
	// DupRate is the fraction of schemas receiving a perturbed copy
	// (default 0.25).
	DupRate float64
	// MeanAttrs is the mean number of attributes per schema (default 3).
	MeanAttrs int
	// MeanTokens is the mean number of value tokens per attribute
	// (default 11).
	MeanTokens int
	// NumDomains is the number of attribute value domains (default 60);
	// attributes drawn from the same domain share vocabulary, which is
	// what makes schema matching non-trivial.
	NumDomains int
}

func (c SchemaConfig) withDefaults() SchemaConfig {
	if c.DupRate == 0 {
		c.DupRate = 0.25
	}
	if c.MeanAttrs == 0 {
		c.MeanAttrs = 3
	}
	if c.MeanTokens == 0 {
		c.MeanTokens = 11
	}
	if c.NumDomains == 0 {
		c.NumDomains = 60
	}
	return c
}

// WebTableSchemas generates the synthetic schema corpus. Each attribute
// samples its value tokens from one of a fixed pool of Zipfian domains
// (cities, names, codes, ... in the real crawl); DupRate of the schemas get
// a perturbed copy with ~20% of each attribute's tokens replaced, which are
// the related pairs discovery finds at δ ∈ [0.7, 0.85].
func WebTableSchemas(cfg SchemaConfig) []dataset.RawSet {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	domains := make([]*zipfVocab, cfg.NumDomains)
	for d := range domains {
		domains[d] = newZipfVocab(rng, 500, 1.3, fmt.Sprintf("d%d_", d))
	}

	var out []dataset.RawSet
	for i := 0; i < cfg.NumTables; i++ {
		nAttrs := cfg.MeanAttrs - 1 + rng.Intn(3)
		if nAttrs < 1 {
			nAttrs = 1
		}
		attrs := make([]string, nAttrs)
		for a := range attrs {
			dom := domains[rng.Intn(len(domains))]
			k := cfg.MeanTokens - 3 + rng.Intn(7)
			if k < 2 {
				k = 2
			}
			attrs[a] = strings.Join(dom.sampleDistinct(rng, k), " ")
		}
		out = append(out, dataset.RawSet{
			Name:     fmt.Sprintf("table%d", i),
			Elements: attrs,
		})
		if rng.Float64() < cfg.DupRate {
			out = append(out, dataset.RawSet{
				Name:     fmt.Sprintf("table%ddup", i),
				Elements: perturbAttrs(rng, attrs),
			})
		}
	}
	return out
}

// perturbAttrs replaces a per-copy fraction (2-25%) of each attribute's
// tokens with fresh ones, simulating the value drift between copies of the
// same web table. Drawing the drift rate per copy spreads the duplicates'
// set similarities across [0.6, 0.97], so every δ in the paper's 0.7-0.85
// sweep has planted pairs above and below it.
func perturbAttrs(rng *rand.Rand, attrs []string) []string {
	drift := 0.02 + 0.23*rng.Float64()
	out := make([]string, len(attrs))
	for i, a := range attrs {
		toks := strings.Fields(a)
		for j := range toks {
			if rng.Float64() < drift {
				toks[j] = toks[j] + "x" // drifted value
			}
		}
		out[i] = strings.Join(toks, " ")
	}
	return out
}

// ColumnConfig parameterizes the synthetic WebTable-column corpus of the
// approximate inclusion dependency application (paper §8.1): each column is
// a set, each column value an element, each whitespace word a token.
// Table 3 reports ~22 values per column and ~2.2 words per value.
type ColumnConfig struct {
	NumColumns int
	Seed       int64
	// ContainRate is the fraction of base columns that get an
	// approximately-containing supercolumn (default 0.2).
	ContainRate float64
	// MeanValues is the mean number of values per column (default 22).
	MeanValues int
	// HeavyTail adds a fraction of much larger columns (≥ 100 values),
	// needed by the reduction experiment of Figure 7 (default 0.05).
	HeavyTail float64
	// NumDomains is the number of value domains (default 40).
	NumDomains int
}

func (c ColumnConfig) withDefaults() ColumnConfig {
	if c.ContainRate == 0 {
		c.ContainRate = 0.2
	}
	if c.MeanValues == 0 {
		c.MeanValues = 22
	}
	if c.HeavyTail == 0 {
		c.HeavyTail = 0.05
	}
	if c.NumDomains == 0 {
		c.NumDomains = 40
	}
	return c
}

// WebTableColumns generates the synthetic column corpus. ContainRate of the
// base columns get a supercolumn: every base value carries over (a few
// perturbed by a word swap) plus 30-100% extra values from the same domain.
// Searching a base column under SET-CONTAINMENT finds its supercolumns.
func WebTableColumns(cfg ColumnConfig) []dataset.RawSet {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	domains := make([]*zipfVocab, cfg.NumDomains)
	for d := range domains {
		domains[d] = newZipfVocab(rng, 2000, 1.25, fmt.Sprintf("c%d_", d))
	}

	mkValue := func(dom *zipfVocab) string {
		k := 1 + rng.Intn(3) // 1-3 words, mean ≈ 2
		words := make([]string, k)
		for i := range words {
			words[i] = dom.next()
		}
		return strings.Join(words, " ")
	}
	mkColumn := func(dom *zipfVocab, n int) []string {
		seen := make(map[string]bool, n)
		out := make([]string, 0, n)
		for len(out) < n {
			v := mkValue(dom)
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return out
	}

	var out []dataset.RawSet
	for i := 0; i < cfg.NumColumns; i++ {
		dom := domains[rng.Intn(len(domains))]
		n := cfg.MeanValues/2 + rng.Intn(cfg.MeanValues)
		if rng.Float64() < cfg.HeavyTail {
			n = 100 + rng.Intn(120)
		}
		if n < 5 {
			n = 5
		}
		vals := mkColumn(dom, n)
		out = append(out, dataset.RawSet{
			Name:     fmt.Sprintf("col%d", i),
			Elements: vals,
		})
		if rng.Float64() < cfg.ContainRate {
			super := make([]string, 0, n*2)
			for _, v := range vals {
				if rng.Float64() < 0.15 {
					v = swapOneWord(rng, v, dom)
				}
				super = append(super, v)
			}
			extra := n/3 + rng.Intn(n/2+1)
			super = append(super, mkColumn(dom, extra)...)
			out = append(out, dataset.RawSet{
				Name:     fmt.Sprintf("col%dsuper", i),
				Elements: dedupe(super),
			})
		}
	}
	return out
}

// swapOneWord replaces one word of a multi-word value, creating the
// approximate (non-exact) containments the maximum matching metric handles
// and exact containment misses.
func swapOneWord(rng *rand.Rand, v string, dom *zipfVocab) string {
	words := strings.Fields(v)
	if len(words) == 0 {
		return v
	}
	words[rng.Intn(len(words))] = dom.next()
	return strings.Join(words, " ")
}

func dedupe(vals []string) []string {
	seen := make(map[string]bool, len(vals))
	out := vals[:0]
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// PickReferences chooses every strideth column with more than minValues
// distinct values as a reference set for search mode, mirroring the paper's
// random draw of 1000 reference columns with > 4 distinct values.
func PickReferences(cols []dataset.RawSet, n, minValues int) []dataset.RawSet {
	var refs []dataset.RawSet
	if len(cols) == 0 || n <= 0 {
		return refs
	}
	stride := len(cols) / n
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(cols) && len(refs) < n; i += stride {
		if len(cols[i].Elements) > minValues {
			refs = append(refs, cols[i])
		}
	}
	return refs
}
