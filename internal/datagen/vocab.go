// Package datagen synthesizes the paper's three evaluation workloads
// (Table 3). The real corpora — DBLP publication titles and the WebTable
// crawl — are not redistributable in an offline module, so each generator
// reproduces the statistics the algorithms are sensitive to: token frequency
// skew (Zipfian vocabularies), the paper's set/element size distributions,
// and planted related pairs (near-duplicate titles, perturbed schemas,
// approximate column containments). All generators are deterministic in
// their seed.
package datagen

import (
	"math/rand"
	"strings"
)

// syllables compose synthetic vocabulary words; combining them by index
// digits yields unbounded, pronounceable, deterministic words.
var syllables = []string{
	"da", "ta", "ba", "se", "sys", "tem", "que", "ry", "op", "ti",
	"mi", "za", "tion", "in", "dex", "jo", "in", "stre", "am", "graph",
	"mod", "el", "lear", "ning", "net", "work", "dis", "trib", "ut", "ed",
	"clus", "ter", "par", "al", "lel", "sto", "rage", "tran", "sac", "proc",
}

// word returns the deterministic synthetic word for vocabulary index i.
func word(i int) string {
	if i < 0 {
		i = -i
	}
	var b strings.Builder
	n := i
	for {
		b.WriteString(syllables[n%len(syllables)])
		n /= len(syllables)
		if n == 0 {
			break
		}
	}
	return b.String()
}

// zipfVocab samples Zipf-distributed indices over a vocabulary of the given
// size, with skew s (>1; larger = more skewed). It reproduces the heavy-
// tailed token frequencies of real text, which the signature cost/value
// heuristics depend on.
type zipfVocab struct {
	z      *rand.Zipf
	prefix string
}

func newZipfVocab(rng *rand.Rand, size int, s float64, prefix string) *zipfVocab {
	return &zipfVocab{
		z:      rand.NewZipf(rng, s, 1, uint64(size-1)),
		prefix: prefix,
	}
}

// next returns a random vocabulary word.
func (v *zipfVocab) next() string {
	return v.prefix + word(int(v.z.Uint64()))
}

// sampleDistinct returns k distinct words from the vocabulary.
func (v *zipfVocab) sampleDistinct(rng *rand.Rand, k int) []string {
	seen := make(map[string]bool, k)
	out := make([]string, 0, k)
	for len(out) < k {
		w := v.next()
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}
