package core

import (
	"errors"

	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

// ErrNotFound reports a Delete or Update aimed at a set index that is out
// of range or already deleted.
var ErrNotFound = errors.New("core: no such set")

// alive reports whether collection set i is not tombstoned. It is the hot
// check candidate generation runs per distinct set, so the bitmap stays a
// plain slice guarded by the caller's engine lock.
func (e *Engine) alive(i int) bool {
	return i >= len(e.dead) || !e.dead[i]
}

// growDead sizes the tombstone bitmap to the collection, allocating it on
// first use (append on the nil slice).
func (e *Engine) growDead() {
	for len(e.dead) < len(e.coll.Sets) {
		e.dead = append(e.dead, false)
	}
}

// Alive reports whether collection set i exists and is not deleted.
func (e *Engine) Alive(i int) bool {
	return i >= 0 && i < len(e.coll.Sets) && e.alive(i)
}

// LiveCount returns the number of live (non-deleted) sets.
func (e *Engine) LiveCount() int { return len(e.coll.Sets) - e.numDead }

// Tombstones returns the number of deleted sets whose postings are still
// in the inverted index (reset to zero by compaction).
func (e *Engine) Tombstones() int { return e.tombstoned }

// Compactions returns the number of compaction passes the engine has run.
func (e *Engine) Compactions() int64 { return e.compactions }

// Delete tombstones collection set i: the slot keeps its index (stable
// ids), but the set disappears from every query — candidate generation,
// the full-scan fallback, and self-join discovery all skip it — and its
// dictionary tokens are released so compaction can shrink the vocabulary.
// Postings and element storage are reclaimed lazily by Compact, which
// Delete triggers itself once the tombstone ratio reaches the engine's
// CompactionThreshold. Not safe concurrently with queries: callers must
// serialize mutations, as with AppendSets.
func (e *Engine) Delete(i int) error {
	if i < 0 || i >= len(e.coll.Sets) || !e.alive(i) {
		return ErrNotFound
	}
	e.growDead()
	e.dead[i] = true
	e.numDead++
	e.tombstoned++
	releaseSet(e.coll.Dict, &e.coll.Sets[i])
	e.maybeCompact()
	return nil
}

// maybeCompact runs Compact once the tombstone ratio — dead-but-indexed
// sets over all indexed sets — reaches the configured threshold.
func (e *Engine) maybeCompact() {
	t := e.opts.CompactionThreshold
	if t <= 0 || e.tombstoned == 0 {
		return
	}
	indexed := e.LiveCount() + e.tombstoned
	if float64(e.tombstoned) >= t*float64(indexed) {
		e.Compact()
	}
}

// Compact reclaims everything the engine's tombstones still hold: dead
// sets' element storage is dropped, the inverted index is rebuilt over the
// live sets (so stale postings disappear and signature selection costs
// tighten back up), and dictionary slots no live set references are freed
// for reuse. Set indices are unchanged — dead slots stay dead — so results
// before and after compaction are identical. Not safe concurrently with
// queries.
func (e *Engine) Compact() {
	if e.tombstoned == 0 {
		return
	}
	for i := range e.dead {
		if e.dead[i] && e.coll.Sets[i].Elements != nil {
			e.coll.Sets[i].Elements = nil
		}
	}
	e.ix.Rebuild()
	e.coll.Dict.Reclaim()
	e.coll.Dict.Keys().Reclaim()
	e.tombstoned = 0
	e.compactions++
}

// retainSets bumps dictionary refcounts for every token occurrence of
// c.Sets[from:], the exact references releaseSet drops on delete.
func retainSets(c *dataset.Collection, from int) {
	for i := from; i < len(c.Sets); i++ {
		for j := range c.Sets[i].Elements {
			el := &c.Sets[i].Elements[j]
			c.Dict.Retain(el.Tokens)
			if len(el.Chunks) > 0 {
				c.Dict.Retain(el.Chunks)
			}
			if el.Key != dataset.NoKey {
				c.Dict.Keys().RetainID(el.Key)
			}
		}
	}
}

// releaseSet drops the dictionary references retainSets took for one set.
func releaseSet(d *tokens.Dictionary, s *dataset.Set) {
	for j := range s.Elements {
		el := &s.Elements[j]
		d.Release(el.Tokens)
		if len(el.Chunks) > 0 {
			d.Release(el.Chunks)
		}
		if el.Key != dataset.NoKey {
			d.Keys().ReleaseID(el.Key)
		}
	}
}
