package core

import (
	"context"
	"fmt"

	"silkmoth/internal/dataset"
	"silkmoth/internal/signature"
)

// Toggle is a tri-state boolean for per-query feature overrides: the zero
// value inherits the engine's configuration, ToggleOn forces the feature on
// and ToggleOff forces it off (subject to the same soundness normalization
// engine construction applies).
type Toggle int8

const (
	// ToggleInherit keeps the engine's configured value.
	ToggleInherit Toggle = 0
	// ToggleOn forces the feature on for this query.
	ToggleOn Toggle = 1
	// ToggleOff forces the feature off for this query.
	ToggleOff Toggle = -1
)

// apply resolves the toggle against the engine's configured value.
func (t Toggle) apply(configured bool) bool {
	switch t {
	case ToggleOn:
		return true
	case ToggleOff:
		return false
	default:
		return configured
	}
}

// Query carries one query's overrides and observation hooks through every
// engine path — serial passes, sharded scatter-gather, batch fan-out. A nil
// *Query (or the zero value) reproduces the engine's configured behavior
// exactly. Queries are read-only during execution and may be shared across
// the concurrent passes of one logical query (each shard of a scatter, each
// reference of a discovery); the Stats capture is internally synchronized.
type Query struct {
	// Scheme, when SchemeSet, overrides the engine's signature scheme for
	// this query. Schemes only decide how the index is probed, so results
	// are identical to the engine's configured scheme; the override trades
	// generation work against probe cost per query.
	Scheme    signature.Kind
	SchemeSet bool
	// Delta, when > 0, overrides the relatedness threshold δ for this
	// query. Unlike Scheme it changes results: matches are exactly those
	// of an engine built with the overridden δ.
	Delta float64
	// CheckFilter, NNFilter, and Reduction override the engine's filter
	// and verification-reduction configuration. The engine's soundness
	// normalization still applies: NNFilter implies CheckFilter, and the
	// reduction only engages where its metric requirements hold.
	CheckFilter Toggle
	NNFilter    Toggle
	Reduction   Toggle
	// Stats, when non-nil, captures this query's own per-stage funnel in
	// addition to the engine's cumulative counters. Adds are atomic, so
	// one PassStats may absorb a whole scatter-gather or batch item; read
	// it only after the query returns.
	Stats *PassStats
}

// Validate checks the override values against the engine-independent
// domains: δ ∈ (0, 1] when set, and a known signature scheme.
func (q *Query) Validate() error {
	if q == nil {
		return nil
	}
	if q.Delta != 0 && (q.Delta <= 0 || q.Delta > 1) {
		return fmt.Errorf("core: query delta must be in (0, 1], got %v", q.Delta)
	}
	if q.SchemeSet {
		switch q.Scheme {
		case signature.Weighted, signature.CombUnweighted, signature.Skyline,
			signature.Dichotomy, signature.Auto:
		default:
			return fmt.Errorf("core: unknown query signature scheme %v", q.Scheme)
		}
	}
	return nil
}

// queryOptions resolves the engine's options under q's overrides into the
// effective per-pass options, applying the same normalization engine
// construction does: the NN filter implies the check filter, and the §5.3
// reduction stays off wherever its metric requirements fail.
func (e *Engine) queryOptions(q *Query) Options {
	o := e.opts
	if q == nil {
		return o
	}
	if q.SchemeSet {
		o.Scheme = q.Scheme
	}
	if q.Delta > 0 {
		o.Delta = q.Delta
	}
	o.CheckFilter = q.CheckFilter.apply(o.CheckFilter)
	o.NNFilter = q.NNFilter.apply(o.NNFilter)
	o.Reduction = q.Reduction.apply(o.Reduction)
	if o.NNFilter {
		o.CheckFilter = true // the NN filter consumes check-filter state
	}
	if o.Reduction && (o.Alpha != 0 || (o.Sim != Jaccard && o.Sim != Eds)) {
		o.Reduction = false // 1-φ_α must be a metric (§6.5)
	}
	return o
}

// SearchQueryContext is SearchContext with per-query overrides and stats
// capture: q's scheme/δ/filter overrides shape this pass only, and q.Stats
// (when non-nil) receives the pass's funnel. A nil q is exactly
// SearchContext.
func (e *Engine) SearchQueryContext(ctx context.Context, r *dataset.Set, q *Query) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	sr := e.NewSearcher()
	ms, err := e.searchPass(ctx, r, -1, sr.w, true, q)
	sr.Close()
	return ms, err
}

// SearchQuery runs one search pass for r under q's overrides, excluding
// candidate sets with collection index ≤ skip. It is Searcher.Search with
// per-query overrides; a nil q is exactly Search.
func (s *Searcher) SearchQuery(ctx context.Context, r *dataset.Set, skip int, q *Query) ([]Match, error) {
	return s.e.searchPass(ctx, r, skip, s.w, false, q)
}
