package core

import (
	"sync/atomic"
	"time"

	"silkmoth/internal/obs"
)

// Stage identifies one stage of the search-pass pipeline for timing and
// histogram purposes. The order mirrors execution: signature generation,
// candidate collection + check filter, nearest-neighbor refinement, exact
// verification (the full-scan fallback charges verification).
type Stage int

const (
	StageSignature Stage = iota
	StageCollect
	StageRefine
	StageVerify
	// NumStages sizes per-stage arrays.
	NumStages
)

// String returns the stage's metric label.
func (s Stage) String() string {
	switch s {
	case StageSignature:
		return "signature"
	case StageCollect:
		return "collect"
	case StageRefine:
		return "refine"
	case StageVerify:
		return "verify"
	default:
		return "unknown"
	}
}

// DefaultStageSample is the default per-worker sampling interval for stage
// timing: one in every DefaultStageSample search passes is wall-timed.
// Sampling keeps the four time.Now pairs off most hot-loop passes while
// still feeding the stage histograms continuously; explained queries are
// always timed regardless.
const DefaultStageSample = 16

// sampleTick reports whether this pass should be stage-timed, advancing
// the worker's private pass counter. Workers are single-goroutine, so the
// counter needs no atomics; pooled workers keep their phase across
// queries, which only shifts which passes get sampled, not the rate.
func (w *worker) sampleTick(every int) bool {
	if every <= 0 {
		return false
	}
	if every == 1 {
		return true
	}
	w.passSeq++
	return w.passSeq%int64(every) == 0
}

// finishTiming folds a timed pass's per-stage wall time into the worker's
// stats shard, the query's capture, and the engine's stage histograms.
// refine/verify accumulated under atomics (parallel verification shares
// the plan across goroutines); by the time this runs those goroutines have
// been joined.
func (p *plan) finishTiming() {
	refine := atomic.LoadInt64(&p.refineNanos)
	verify := atomic.LoadInt64(&p.verifyNanos)
	p.w.st.addStageNanos(p.sigNanos, p.collectNanos, refine, verify)
	p.ps.addStageNanos(p.sigNanos, p.collectNanos, refine, verify)
	e := p.e
	e.stage[StageSignature].Observe(time.Duration(p.sigNanos))
	e.stage[StageCollect].Observe(time.Duration(p.collectNanos))
	e.stage[StageRefine].Observe(time.Duration(refine))
	e.stage[StageVerify].Observe(time.Duration(verify))
}

// StageLatencies returns snapshots of the engine's per-stage latency
// histograms, indexed by Stage. Each observation is one timed search
// pass's wall time in that stage.
func (e *Engine) StageLatencies() [NumStages]obs.HistogramSnapshot {
	var out [NumStages]obs.HistogramSnapshot
	for i := range e.stage {
		out[i] = e.stage[i].Snapshot()
	}
	return out
}
