package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/signature"
	"silkmoth/internal/tokens"
)

// benchFixture builds the pipeline benchmark corpus: word-mode, heavy token
// overlap, sizes chosen so a pass exercises every stage (signature,
// collect, check filter, NN filter, verify) without dwarfing the -benchmem
// signal with matching time.
func benchFixture(b *testing.B, scheme signature.Kind, alpha float64) (*Engine, *dataset.Set) {
	b.Helper()
	rng := rand.New(rand.NewSource(1234))
	raws := make([]dataset.RawSet, 500)
	for i := range raws {
		ne := 3 + rng.Intn(5)
		elems := make([]string, ne)
		for j := range elems {
			nw := 2 + rng.Intn(4)
			s := ""
			for k := 0; k < nw; k++ {
				if k > 0 {
					s += " "
				}
				s += fmt.Sprintf("w%03d", rng.Intn(150))
			}
			elems[j] = s
		}
		raws[i] = dataset.RawSet{Name: fmt.Sprintf("s%d", i), Elements: elems}
	}
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, raws)
	opts := DefaultOptions(SetSimilarity, Jaccard, 0.5, alpha)
	opts.Scheme = scheme
	e, err := NewEngine(coll, opts)
	if err != nil {
		b.Fatal(err)
	}
	return e, &coll.Sets[7]
}

// BenchmarkPipelineSearch is the per-query hot path benchmark the CI smoke
// step records (BENCH_pipeline.json): one full search pass on a reused
// Searcher. allocs/op is the load-bearing number — steady state must stay
// O(1) per query.
func BenchmarkPipelineSearch(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		scheme signature.Kind
		alpha  float64
	}{
		{"dichotomy", signature.Dichotomy, 0.3},
		{"auto", signature.Auto, 0.3},
		{"alpha0", signature.Dichotomy, 0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			e, ref := benchFixture(b, cfg.scheme, cfg.alpha)
			sr := e.NewSearcher()
			defer sr.Close()
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sr.Search(ctx, ref, -1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineVerify isolates exact verification (reduction on): the
// per-pair cost every candidate that survives refinement pays.
func BenchmarkPipelineVerify(b *testing.B) {
	e, ref := benchFixture(b, signature.Dichotomy, 0)
	var vs verifyScratch
	s := &e.coll.Sets[11]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.matchScore(ref, s, &vs)
	}
}

// BenchmarkPipelineDiscover runs the full self-join, the throughput shape
// production batch workloads take.
func BenchmarkPipelineDiscover(b *testing.B) {
	e, _ := benchFixture(b, signature.Dichotomy, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		discover(e, e.coll)
	}
}
