package core

import (
	"context"
	"testing"

	"silkmoth/internal/signature"
)

// TestStageTimingSampled drives an engine that times every pass and checks
// the wall time lands everywhere it should: the engine's cumulative stage
// counters and all four stage histograms.
func TestStageTimingSampled(t *testing.T) {
	e, ref := allocFixture(t, signature.Dichotomy)
	e.opts.StageSample = 1
	ctx := context.Background()
	const queries = 10
	for i := 0; i < queries; i++ {
		if _, err := e.SearchContext(ctx, ref); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.TimedPasses != queries {
		t.Fatalf("TimedPasses = %d, want %d", st.TimedPasses, queries)
	}
	if st.SigNanos <= 0 || st.CollectNanos <= 0 || st.VerifyNanos <= 0 {
		t.Errorf("stage nanos not accumulated: sig=%d collect=%d refine=%d verify=%d",
			st.SigNanos, st.CollectNanos, st.RefineNanos, st.VerifyNanos)
	}
	hs := e.StageLatencies()
	for s := Stage(0); s < NumStages; s++ {
		if hs[s].Count != queries {
			t.Errorf("stage %v histogram count = %d, want %d", s, hs[s].Count, queries)
		}
	}
}

// TestStageTimingDisabled checks negative StageSample turns timing off
// entirely.
func TestStageTimingDisabled(t *testing.T) {
	e, ref := allocFixture(t, signature.Dichotomy)
	e.opts.StageSample = -1
	if _, err := e.SearchContext(context.Background(), ref); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.TimedPasses != 0 {
		t.Fatalf("TimedPasses = %d with sampling disabled", st.TimedPasses)
	}
	for s, h := range e.StageLatencies() {
		if h.Count != 0 {
			t.Errorf("stage %v histogram count = %d with sampling disabled", Stage(s), h.Count)
		}
	}
}

// TestExplainAlwaysTimed checks a query with a stats capture is wall-timed
// regardless of the sampling interval, and its capture carries the
// per-stage split.
func TestExplainAlwaysTimed(t *testing.T) {
	e, ref := allocFixture(t, signature.Dichotomy)
	e.opts.StageSample = -1 // even with sampling off
	var ps PassStats
	q := &Query{Stats: &ps}
	sr := e.NewSearcher()
	defer sr.Close()
	if _, err := sr.SearchQuery(context.Background(), ref, -1, q); err != nil {
		t.Fatal(err)
	}
	if ps.TimedPasses != ps.Passes || ps.TimedPasses == 0 {
		t.Fatalf("TimedPasses = %d, Passes = %d; explained queries must time every pass",
			ps.TimedPasses, ps.Passes)
	}
	if ps.SigNanos <= 0 || ps.CollectNanos <= 0 || ps.VerifyNanos <= 0 {
		t.Errorf("capture missing stage nanos: sig=%d collect=%d refine=%d verify=%d",
			ps.SigNanos, ps.CollectNanos, ps.RefineNanos, ps.VerifyNanos)
	}
}

// TestSearchAllocsInstrumented re-pins the steady-state search budget with
// stage timing on every pass — observability must ride the zero-alloc
// pipeline for free.
func TestSearchAllocsInstrumented(t *testing.T) {
	skipUnderRace(t)
	e, ref := allocFixture(t, signature.Dichotomy)
	e.opts.StageSample = 1
	sr := e.NewSearcher()
	defer sr.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sr.Search(ctx, ref, -1); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := sr.Search(ctx, ref, -1); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 8 // identical to the uninstrumented gate
	if got > budget {
		t.Fatalf("instrumented Search allocates %.1f objects/query, budget %d", got, budget)
	}
	t.Logf("allocs/query = %.2f", got)
}
