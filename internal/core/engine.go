package core

import (
	"errors"
	"sync"

	"silkmoth/internal/dataset"
	"silkmoth/internal/filter"
	"silkmoth/internal/index"
	"silkmoth/internal/signature"
	"silkmoth/internal/sim"
)

// Numeric tolerances tying the pipeline's stages together. Pruning uses a
// slack three orders of magnitude larger than the acceptance epsilon, so a
// set discarded by any filter can never be one verification would accept;
// signature generation keeps its own ValiditySlack between the two.
const (
	// acceptEps is the absolute score tolerance of verification: a set is
	// related when its matching score reaches the exact threshold minus
	// acceptEps (absorbing float noise in the O(n³) matching itself).
	acceptEps = 1e-9
	// pruneSlack is how far below θ a sound upper bound must fall before
	// a filter may discard a candidate.
	pruneSlack = 1e-6
	// sizeEps guards the set-size filters' boundaries.
	sizeEps = 1e-9
)

// Match is one search result: a related set and its relatedness value.
type Match struct {
	// Set indexes the related set in the engine's collection.
	Set int
	// Relatedness is the metric value (similarity or containment), ≥ δ.
	Relatedness float64
	// Score is the underlying maximum matching score |R ∩̃ S|.
	Score float64
}

// Pair is one discovery result: indices of a related pair of sets.
type Pair struct {
	R, S        int
	Relatedness float64
	Score       float64
}

// Engine runs related-set search passes against one indexed collection.
// It is safe for concurrent use once built.
type Engine struct {
	opts Options
	coll *dataset.Collection
	ix   *index.Inverted
	phi  filter.SimFunc
	st   Stats
}

// NewEngine validates opts, checks that the collection's tokenization
// matches the similarity function, and builds the inverted index.
func NewEngine(coll *dataset.Collection, opts Options) (*Engine, error) {
	return newEngine(coll, nil, opts)
}

// NewEngineFromIndex builds an engine over a pre-built inverted index,
// letting callers amortize one index across many engine configurations
// (the experiment harness sweeps schemes and filters over one corpus).
func NewEngineFromIndex(ix *index.Inverted, opts Options) (*Engine, error) {
	return newEngine(ix.Collection(), ix, opts)
}

func newEngine(coll *dataset.Collection, ix *index.Inverted, opts Options) (*Engine, error) {
	o, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if coll.Mode != o.Sim.TokenMode() {
		return nil, errors.New("core: collection tokenization does not match similarity function")
	}
	if o.Sim.TokenMode() == dataset.ModeQGram && coll.Q != o.Q {
		return nil, errors.New("core: collection q does not match options q")
	}
	if ix == nil {
		ix = index.Build(coll)
	}
	e := &Engine{opts: o, coll: coll, ix: ix}
	e.phi = phiFunc(o)
	return e, nil
}

// phiFunc builds the α-thresholded element similarity φ_α.
func phiFunc(o Options) filter.SimFunc {
	alpha := o.Alpha
	switch o.Sim {
	case Jaccard:
		return func(r, s *dataset.Element) float64 {
			return sim.Alpha(sim.JaccardSorted(r.Tokens, s.Tokens), alpha)
		}
	case Eds:
		return func(r, s *dataset.Element) float64 {
			return sim.EdsAlpha(r.Raw, s.Raw, alpha)
		}
	case NEds:
		return func(r, s *dataset.Element) float64 {
			return sim.NEdsAlpha(r.Raw, s.Raw, alpha)
		}
	case Dice:
		return func(r, s *dataset.Element) float64 {
			return sim.Alpha(sim.DiceSorted(r.Tokens, s.Tokens), alpha)
		}
	case Cosine:
		return func(r, s *dataset.Element) float64 {
			return sim.Alpha(sim.CosineSorted(r.Tokens, s.Tokens), alpha)
		}
	default:
		panic("core: unknown similarity kind")
	}
}

// Options returns the engine's effective (normalized) options.
func (e *Engine) Options() Options { return e.opts }

// Collection returns the indexed collection.
func (e *Engine) Collection() *dataset.Collection { return e.coll }

// Search runs one related-set search pass (paper §3) for reference set r,
// which must be tokenized against the engine collection's dictionary.
func (e *Engine) Search(r *dataset.Set) []Match {
	return e.searchPass(r, -1, e.newWorker())
}

// worker bundles the per-goroutine scratch of search passes: the candidate
// collector and the nearest-neighbor searcher.
type worker struct {
	cl *filter.Collector
	ns *filter.NNSearcher
}

func (e *Engine) newWorker() *worker {
	return &worker{
		cl: filter.NewCollector(e.ix),
		ns: filter.NewNNSearcher(e.ix, e.phi),
	}
}

// sizeAccept reports whether a set of size nS can possibly be related to a
// reference of size nR under the engine's metric (paper footnote 6 and
// Definition 2's |R| ≤ |S| requirement).
func (e *Engine) sizeAccept(nR, nS int) bool {
	switch e.opts.Metric {
	case SetContainment:
		return nS >= nR
	default:
		d := e.opts.Delta
		return float64(nS) >= d*float64(nR)-sizeEps &&
			float64(nS) <= float64(nR)/d+sizeEps
	}
}

// searchPass generates r's signature, collects and refines candidates, and
// verifies survivors. Candidate sets with index ≤ selfSkip are excluded
// (selfSkip = the reference's own index during self-join discovery under
// SET-SIMILARITY; -1 otherwise). Pass a reusable NN searcher.
func (e *Engine) searchPass(r *dataset.Set, selfSkip int, w *worker) []Match {
	e.st.addSearchPasses(1)
	nR := len(r.Elements)
	if nR == 0 {
		return nil
	}
	theta := e.opts.Delta * float64(nR)
	pruneThreshold := theta - pruneSlack

	accept := func(set int32) bool {
		if int(set) <= selfSkip {
			return false
		}
		return e.sizeAccept(nR, len(e.coll.Sets[set].Elements))
	}

	sig := signature.Generate(e.opts.Scheme, r, signature.Params{
		Delta:  e.opts.Delta,
		Alpha:  e.opts.Alpha,
		Family: e.opts.Sim.family(),
	}, e.ix)

	var out []Match
	if !sig.Valid {
		// No valid signature exists (edit similarity, §7.3): compare r
		// against every acceptable set.
		e.st.addFullScans(1)
		for s := range e.coll.Sets {
			if !accept(int32(s)) {
				continue
			}
			e.st.addVerified(1)
			if m, ok := e.verify(r, s); ok {
				out = append(out, m)
			}
		}
		return out
	}

	cands, raw := w.cl.Collect(r, &sig, e.phi, filter.Options{
		Accept:         accept,
		CheckFilter:    e.opts.CheckFilter,
		PruneThreshold: pruneThreshold,
	})
	e.st.addCandidates(int64(raw))
	e.st.addAfterCheck(int64(len(cands)))

	var floors []float64
	if e.opts.NNFilter {
		floors = filter.NoShareFloors(r, &sig, e.coll.Mode, e.opts.Alpha)
	}
	for _, c := range cands {
		if e.opts.NNFilter && !filter.NNFilter(r, &sig, c, w.ns, floors, pruneThreshold) {
			continue
		}
		e.st.addAfterNN(1)
		e.st.addVerified(1)
		if m, ok := e.verify(r, int(c.Set)); ok {
			out = append(out, m)
		}
	}
	return out
}

// Discover solves RELATED SET DISCOVERY (Problem 1) for the reference
// collection refs against the engine's collection. refs must share the
// engine collection's dictionary. When refs is the engine's own collection,
// the self-join is deduplicated under SET-SIMILARITY (each unordered pair
// reported once, self-pairs skipped); under SET-CONTAINMENT every ordered
// pair ⟨R, S⟩ with |R| ≤ |S|, R ≠ S is considered.
func (e *Engine) Discover(refs *dataset.Collection) []Pair {
	selfJoin := refs == e.coll
	type job struct{ r int }
	workers := e.opts.Concurrency

	var mu sync.Mutex
	var pairs []Pair
	jobs := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := e.newWorker()
			var local []Pair
			for ri := range jobs {
				selfSkip := -1
				if selfJoin && e.opts.Metric == SetSimilarity {
					selfSkip = ri
				}
				ms := e.searchPass(&refs.Sets[ri], selfSkip, wk)
				for _, m := range ms {
					if selfJoin && m.Set == ri {
						continue // no self-pairs
					}
					local = append(local, Pair{R: ri, S: m.Set, Relatedness: m.Relatedness, Score: m.Score})
				}
			}
			mu.Lock()
			pairs = append(pairs, local...)
			mu.Unlock()
		}()
	}
	for ri := range refs.Sets {
		jobs <- ri
	}
	close(jobs)
	wg.Wait()
	return pairs
}
