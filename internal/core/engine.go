package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"silkmoth/internal/dataset"
	"silkmoth/internal/filter"
	"silkmoth/internal/index"
	"silkmoth/internal/signature"
	"silkmoth/internal/sim"
)

// Numeric tolerances tying the pipeline's stages together. Pruning uses a
// slack three orders of magnitude larger than the acceptance epsilon, so a
// set discarded by any filter can never be one verification would accept;
// signature generation keeps its own ValiditySlack between the two.
const (
	// acceptEps is the absolute score tolerance of verification: a set is
	// related when its matching score reaches the exact threshold minus
	// acceptEps (absorbing float noise in the O(n³) matching itself).
	acceptEps = 1e-9
	// pruneSlack is how far below θ a sound upper bound must fall before
	// a filter may discard a candidate.
	pruneSlack = 1e-6
	// sizeEps guards the set-size filters' boundaries.
	sizeEps = 1e-9
)

// cancelCheckStride is how many verification-loop iterations pass between
// context checks. Verification is the expensive stage (O(n³) matching), so
// a small stride keeps cancellation latency near one matching computation.
const cancelCheckStride = 8

// parallelCandMin is the minimum surviving-candidate count before a single
// search pass shards its verification loop across goroutines; below it the
// goroutine overhead outweighs the matching work.
const parallelCandMin = 16

// Match is one search result: a related set and its relatedness value.
type Match struct {
	// Set indexes the related set in the engine's collection.
	Set int
	// Relatedness is the metric value (similarity or containment), ≥ δ.
	Relatedness float64
	// Score is the underlying maximum matching score |R ∩̃ S|.
	Score float64
}

// Pair is one discovery result: indices of a related pair of sets.
type Pair struct {
	R, S        int
	Relatedness float64
	Score       float64
}

// Engine runs related-set search passes against one indexed collection.
// It is safe for concurrent use once built. Mutations — AppendSets,
// Delete, Compact — must be serialized against queries by the caller
// (the public silkmoth.Engine and the sharded engine hold a write lock
// around them).
type Engine struct {
	opts Options
	coll *dataset.Collection
	ix   *index.Inverted
	phi  filter.SimFunc
	st   Stats
	// dead is the tombstone bitmap, allocated on first Delete. A dead
	// set keeps its collection slot (indices stay stable) but is skipped
	// by candidate generation, the full-scan fallback, and self-join
	// discovery; compaction later drops its postings and storage.
	dead        []bool
	numDead     int   // all dead sets (slots never resurrect)
	tombstoned  int   // dead sets whose postings are still indexed
	compactions int64 // compaction passes run
}

// NewEngine validates opts, checks that the collection's tokenization
// matches the similarity function, and builds the inverted index.
func NewEngine(coll *dataset.Collection, opts Options) (*Engine, error) {
	return newEngine(coll, nil, opts)
}

// NewEngineFromIndex builds an engine over a pre-built inverted index,
// letting callers amortize one index across many engine configurations
// (the experiment harness sweeps schemes and filters over one corpus).
func NewEngineFromIndex(ix *index.Inverted, opts Options) (*Engine, error) {
	return newEngine(ix.Collection(), ix, opts)
}

func newEngine(coll *dataset.Collection, ix *index.Inverted, opts Options) (*Engine, error) {
	o, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if coll.Mode != o.Sim.TokenMode() {
		return nil, errors.New("core: collection tokenization does not match similarity function")
	}
	if o.Sim.TokenMode() == dataset.ModeQGram && coll.Q != o.Q {
		return nil, errors.New("core: collection q does not match options q")
	}
	if ix == nil {
		ix = index.Build(coll)
	}
	e := &Engine{opts: o, coll: coll, ix: ix}
	e.phi = phiFunc(o)
	retainSets(coll, 0)
	return e, nil
}

// phiFunc builds the α-thresholded element similarity φ_α.
func phiFunc(o Options) filter.SimFunc {
	alpha := o.Alpha
	switch o.Sim {
	case Jaccard:
		return func(r, s *dataset.Element) float64 {
			return sim.Alpha(sim.JaccardSorted(r.Tokens, s.Tokens), alpha)
		}
	case Eds:
		return func(r, s *dataset.Element) float64 {
			return sim.EdsAlpha(r.Raw, s.Raw, alpha)
		}
	case NEds:
		return func(r, s *dataset.Element) float64 {
			return sim.NEdsAlpha(r.Raw, s.Raw, alpha)
		}
	case Dice:
		return func(r, s *dataset.Element) float64 {
			return sim.Alpha(sim.DiceSorted(r.Tokens, s.Tokens), alpha)
		}
	case Cosine:
		return func(r, s *dataset.Element) float64 {
			return sim.Alpha(sim.CosineSorted(r.Tokens, s.Tokens), alpha)
		}
	default:
		panic("core: unknown similarity kind")
	}
}

// Options returns the engine's effective (normalized) options.
func (e *Engine) Options() Options { return e.opts }

// Collection returns the indexed collection.
func (e *Engine) Collection() *dataset.Collection { return e.coll }

// Search runs one related-set search pass (paper §3) for reference set r,
// which must be tokenized against the engine collection's dictionary.
func (e *Engine) Search(r *dataset.Set) []Match {
	ms, _ := e.SearchContext(context.Background(), r)
	return ms
}

// SearchContext is Search with cancellation: it aborts between verification
// steps when ctx is done and returns ctx.Err(). When the engine's
// Concurrency allows, the candidate-verification loop of the pass is
// sharded across a worker pool; results are identical to the serial path.
func (e *Engine) SearchContext(ctx context.Context, r *dataset.Set) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w := e.newWorker()
	ms, err := e.searchPass(ctx, r, -1, w, true)
	e.st.merge(&w.st)
	return ms, err
}

// Searcher runs repeated search passes against one engine, reusing the
// per-pass scratch (candidate collector, nearest-neighbor searcher, stats
// shard) across calls. It is the building block for callers that drive many
// passes themselves — Discover's workers and the sharded scatter-gather
// engine. A Searcher is not safe for concurrent use; create one per
// goroutine and Close it when done so its counters reach the engine.
type Searcher struct {
	e *Engine
	w *worker
}

// NewSearcher returns a fresh Searcher over e.
func (e *Engine) NewSearcher() *Searcher {
	return &Searcher{e: e, w: e.newWorker()}
}

// Search runs one search pass for r, excluding candidate sets with
// collection index ≤ skip (pass -1 to consider every set). Verification
// runs serially within the pass: callers parallelize across passes, not
// within them.
func (s *Searcher) Search(ctx context.Context, r *dataset.Set, skip int) ([]Match, error) {
	return s.e.searchPass(ctx, r, skip, s.w, false)
}

// Close folds the searcher's private stats shard into the engine's
// counters. The Searcher must not be used afterwards.
func (s *Searcher) Close() {
	s.e.st.merge(&s.w.st)
}

// worker bundles the per-goroutine scratch of search passes: the candidate
// collector, the nearest-neighbor searcher, and a private stats shard that
// is merged into the engine's counters when the worker retires (so hot
// loops never contend on shared atomics).
type worker struct {
	cl *filter.Collector
	ns *filter.NNSearcher
	st Stats
}

func (e *Engine) newWorker() *worker {
	return &worker{
		cl: filter.NewCollector(e.ix),
		ns: filter.NewNNSearcher(e.ix, e.phi),
	}
}

// newVerifyWorker returns a worker for verification-only shards: no
// collector (whose scratch is O(collection size) and unused after
// candidate collection), just the nearest-neighbor searcher and a stats
// shard.
func (e *Engine) newVerifyWorker() *worker {
	return &worker{ns: filter.NewNNSearcher(e.ix, e.phi)}
}

// sizeAccept reports whether a set of size nS can possibly be related to a
// reference of size nR under the engine's metric (paper footnote 6 and
// Definition 2's |R| ≤ |S| requirement).
func (e *Engine) sizeAccept(nR, nS int) bool {
	switch e.opts.Metric {
	case SetContainment:
		return nS >= nR
	default:
		d := e.opts.Delta
		return float64(nS) >= d*float64(nR)-sizeEps &&
			float64(nS) <= float64(nR)/d+sizeEps
	}
}

// searchPass generates r's signature, collects and refines candidates, and
// verifies survivors. Candidate sets with index ≤ selfSkip are excluded
// (selfSkip = the reference's own index during self-join discovery under
// SET-SIMILARITY; -1 otherwise). Pass a reusable worker; its stats shard
// absorbs the pass's counters. parallelOK permits sharding the verification
// loop across goroutines (true for top-level searches, false inside
// Discover's workers, which are already parallel).
func (e *Engine) searchPass(ctx context.Context, r *dataset.Set, selfSkip int, w *worker, parallelOK bool) ([]Match, error) {
	w.st.addSearchPasses(1)
	nR := len(r.Elements)
	if nR == 0 {
		return nil, nil
	}
	theta := e.opts.Delta * float64(nR)
	pruneThreshold := theta - pruneSlack

	accept := func(set int32) bool {
		if int(set) <= selfSkip {
			return false
		}
		if !e.alive(int(set)) {
			return false // tombstoned: postings remain until compaction
		}
		return e.sizeAccept(nR, len(e.coll.Sets[set].Elements))
	}

	sig := signature.Generate(e.opts.Scheme, r, signature.Params{
		Delta:  e.opts.Delta,
		Alpha:  e.opts.Alpha,
		Family: e.opts.Sim.family(),
	}, e.ix)

	if !sig.Valid {
		// No valid signature exists (edit similarity, §7.3): compare r
		// against every acceptable set.
		w.st.addFullScans(1)
		var out []Match
		for s := range e.coll.Sets {
			if s%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if !accept(int32(s)) {
				continue
			}
			w.st.addVerified(1)
			if m, ok := e.verify(r, s); ok {
				out = append(out, m)
			}
		}
		return out, nil
	}

	cands, raw := w.cl.Collect(r, &sig, e.phi, filter.Options{
		Accept:         accept,
		CheckFilter:    e.opts.CheckFilter,
		PruneThreshold: pruneThreshold,
	})
	w.st.addCandidates(int64(raw))
	w.st.addAfterCheck(int64(len(cands)))

	var floors []float64
	if e.opts.NNFilter {
		floors = filter.NoShareFloors(r, &sig, e.coll.Mode, e.opts.Alpha)
	}

	if parallelOK && e.opts.Concurrency > 1 && len(cands) >= parallelCandMin {
		return e.verifyCandidatesParallel(ctx, r, &sig, cands, floors, pruneThreshold, w)
	}

	var out []Match
	for i, c := range cands {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if m, ok := e.refineAndVerify(r, &sig, c, floors, pruneThreshold, w); ok {
			out = append(out, m)
		}
	}
	return out, nil
}

// refineAndVerify runs one candidate through the nearest-neighbor filter and
// exact verification, charging the worker's stats shard.
func (e *Engine) refineAndVerify(r *dataset.Set, sig *signature.Signature, c *filter.Candidate, floors []float64, pruneThreshold float64, w *worker) (Match, bool) {
	if e.opts.NNFilter && !filter.NNFilter(r, sig, c, w.ns, floors, pruneThreshold) {
		return Match{}, false
	}
	w.st.addAfterNN(1)
	w.st.addVerified(1)
	return e.verify(r, int(c.Set))
}

// verifyCandidatesParallel shards one pass's surviving candidates across
// Concurrency goroutines. Each shard worker owns its nearest-neighbor
// searcher and stats shard; results land in per-candidate slots, so the
// assembled output is byte-identical to the serial loop's order.
func (e *Engine) verifyCandidatesParallel(ctx context.Context, r *dataset.Set, sig *signature.Signature, cands []*filter.Candidate, floors []float64, pruneThreshold float64, w *worker) ([]Match, error) {
	nw := e.opts.Concurrency
	if nw > len(cands) {
		nw = len(cands)
	}
	results := make([]Match, len(cands))
	hits := make([]bool, len(cands))
	var next int64
	var wg sync.WaitGroup
	workers := make([]*worker, nw)
	for wi := 0; wi < nw; wi++ {
		// The caller's worker serves shard 0; extra shards get their own
		// verification-only scratch.
		sw := w
		if wi > 0 {
			sw = e.newVerifyWorker()
			workers[wi] = sw
		}
		wg.Add(1)
		go func(sw *worker) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(cands) {
					return
				}
				if i%cancelCheckStride == 0 && ctx.Err() != nil {
					return
				}
				if m, ok := e.refineAndVerify(r, sig, cands[i], floors, pruneThreshold, sw); ok {
					results[i] = m
					hits[i] = true
				}
			}
		}(sw)
	}
	wg.Wait()
	for _, sw := range workers[1:] {
		w.st.merge(&sw.st)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(cands))
	for i := range results {
		if hits[i] {
			out = append(out, results[i])
		}
	}
	return out, nil
}

// Discover solves RELATED SET DISCOVERY (Problem 1) for the reference
// collection refs against the engine's collection. refs must share the
// engine collection's dictionary. When refs is the engine's own collection,
// the self-join is deduplicated under SET-SIMILARITY (each unordered pair
// reported once, self-pairs skipped); under SET-CONTAINMENT every ordered
// pair ⟨R, S⟩ with |R| ≤ |S|, R ≠ S is considered.
func (e *Engine) Discover(refs *dataset.Collection) []Pair {
	ps, _ := e.DiscoverContext(context.Background(), refs)
	return ps
}

// DiscoverContext is Discover with cancellation: reference passes are
// sharded across the engine's Concurrency workers, each with its own
// scratch and stats shard (merged on retirement), and the whole discovery
// aborts with ctx.Err() when ctx is done. Pair order varies with worker
// interleaving; the pair set does not.
func (e *Engine) DiscoverContext(ctx context.Context, refs *dataset.Collection) ([]Pair, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	selfJoin := refs == e.coll
	n := len(refs.Sets)
	workers := e.opts.Concurrency
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	var mu sync.Mutex
	var pairs []Pair
	var firstErr error
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr := e.NewSearcher()
			var local []Pair
			var err error
			for {
				ri := int(atomic.AddInt64(&next, 1)) - 1
				if ri >= n {
					break
				}
				if err = ctx.Err(); err != nil {
					break
				}
				if selfJoin && !e.alive(ri) {
					continue // deleted sets are no longer references
				}
				selfSkip := -1
				if selfJoin && e.opts.Metric == SetSimilarity {
					selfSkip = ri
				}
				var ms []Match
				ms, err = sr.Search(ctx, &refs.Sets[ri], selfSkip)
				if err != nil {
					break
				}
				for _, m := range ms {
					if selfJoin && m.Set == ri {
						continue // no self-pairs
					}
					local = append(local, Pair{R: ri, S: m.Set, Relatedness: m.Relatedness, Score: m.Score})
				}
			}
			sr.Close()
			mu.Lock()
			pairs = append(pairs, local...)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return pairs, nil
}
