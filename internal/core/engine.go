package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"silkmoth/internal/dataset"
	"silkmoth/internal/filter"
	"silkmoth/internal/index"
	"silkmoth/internal/obs"
	"silkmoth/internal/sim"
)

// Numeric tolerances tying the pipeline's stages together. Pruning uses a
// slack three orders of magnitude larger than the acceptance epsilon, so a
// set discarded by any filter can never be one verification would accept;
// signature generation keeps its own ValiditySlack between the two.
const (
	// acceptEps is the absolute score tolerance of verification: a set is
	// related when its matching score reaches the exact threshold minus
	// acceptEps (absorbing float noise in the O(n³) matching itself).
	acceptEps = 1e-9
	// pruneSlack is how far below θ a sound upper bound must fall before
	// a filter may discard a candidate.
	pruneSlack = 1e-6
	// sizeEps guards the set-size filters' boundaries.
	sizeEps = 1e-9
)

// cancelCheckStride is how many verification-loop iterations pass between
// context checks. Verification is the expensive stage (O(n³) matching), so
// a small stride keeps cancellation latency near one matching computation.
const cancelCheckStride = 8

// parallelCandMin is the minimum surviving-candidate count before a single
// search pass shards its verification loop across goroutines; below it the
// goroutine overhead outweighs the matching work.
const parallelCandMin = 16

// Match is one search result: a related set and its relatedness value.
type Match struct {
	// Set indexes the related set in the engine's collection.
	Set int
	// Relatedness is the metric value (similarity or containment), ≥ δ.
	Relatedness float64
	// Score is the underlying maximum matching score |R ∩̃ S|.
	Score float64
}

// Pair is one discovery result: indices of a related pair of sets.
type Pair struct {
	R, S        int
	Relatedness float64
	Score       float64
}

// Engine runs related-set search passes against one indexed collection.
// It is safe for concurrent use once built. Mutations — AppendSets,
// Delete, Compact — must be serialized against queries by the caller
// (the public silkmoth.Engine and the sharded engine hold a write lock
// around them).
type Engine struct {
	opts Options
	coll *dataset.Collection
	ix   *index.Inverted
	phi  filter.SimFunc
	st   Stats
	// stage holds the per-stage latency histograms fed by timed passes
	// (Options.StageSample); snapshot via StageLatencies.
	stage [NumStages]obs.Histogram
	// srPool recycles Searchers (and the workers inside them): every
	// query path draws its per-pass scratch from here, so steady-state
	// queries reuse a bounded set of arenas instead of allocating.
	srPool sync.Pool
	// dead is the tombstone bitmap, allocated on first Delete. A dead
	// set keeps its collection slot (indices stay stable) but is skipped
	// by candidate generation, the full-scan fallback, and self-join
	// discovery; compaction later drops its postings and storage.
	dead        []bool
	numDead     int   // all dead sets (slots never resurrect)
	tombstoned  int   // dead sets whose postings are still indexed
	compactions int64 // compaction passes run
}

// NewEngine validates opts, checks that the collection's tokenization
// matches the similarity function, and builds the inverted index.
func NewEngine(coll *dataset.Collection, opts Options) (*Engine, error) {
	return newEngine(coll, nil, opts)
}

// NewEngineFromIndex builds an engine over a pre-built inverted index,
// letting callers amortize one index across many engine configurations
// (the experiment harness sweeps schemes and filters over one corpus).
func NewEngineFromIndex(ix *index.Inverted, opts Options) (*Engine, error) {
	return newEngine(ix.Collection(), ix, opts)
}

func newEngine(coll *dataset.Collection, ix *index.Inverted, opts Options) (*Engine, error) {
	o, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if coll.Mode != o.Sim.TokenMode() {
		return nil, errors.New("core: collection tokenization does not match similarity function")
	}
	if o.Sim.TokenMode() == dataset.ModeQGram && coll.Q != o.Q {
		return nil, errors.New("core: collection q does not match options q")
	}
	if ix == nil {
		if o.CompressPostings {
			ix = index.BuildCompressed(coll, o.PostingCacheBytes)
		} else {
			ix = index.Build(coll)
		}
	}
	e := &Engine{opts: o, coll: coll, ix: ix}
	e.phi = phiFunc(o)
	retainSets(coll, 0)
	return e, nil
}

// phiFunc builds the α-thresholded element similarity φ_α.
func phiFunc(o Options) filter.SimFunc {
	alpha := o.Alpha
	switch o.Sim {
	case Jaccard:
		return func(r, s *dataset.Element) float64 {
			return sim.Alpha(sim.JaccardSorted(r.Tokens, s.Tokens), alpha)
		}
	case Eds:
		return func(r, s *dataset.Element) float64 {
			return sim.EdsAlpha(r.Raw, s.Raw, alpha)
		}
	case NEds:
		return func(r, s *dataset.Element) float64 {
			return sim.NEdsAlpha(r.Raw, s.Raw, alpha)
		}
	case Dice:
		return func(r, s *dataset.Element) float64 {
			return sim.Alpha(sim.DiceSorted(r.Tokens, s.Tokens), alpha)
		}
	case Cosine:
		return func(r, s *dataset.Element) float64 {
			return sim.Alpha(sim.CosineSorted(r.Tokens, s.Tokens), alpha)
		}
	default:
		panic("core: unknown similarity kind")
	}
}

// Options returns the engine's effective (normalized) options.
func (e *Engine) Options() Options { return e.opts }

// Collection returns the indexed collection.
func (e *Engine) Collection() *dataset.Collection { return e.coll }

// SearchContext runs one related-set search pass (paper §3) for reference
// set r, which must be tokenized against the engine collection's
// dictionary. It aborts between verification
// steps when ctx is done and returns ctx.Err(). When the engine's
// Concurrency allows, the candidate-verification loop of the pass is
// sharded across a worker pool; results are identical to the serial path.
func (e *Engine) SearchContext(ctx context.Context, r *dataset.Set) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sr := e.NewSearcher()
	ms, err := e.searchPass(ctx, r, -1, sr.w, true, nil)
	sr.Close()
	return ms, err
}

// Searcher runs repeated search passes against one engine, reusing the
// per-pass scratch (candidate collector, nearest-neighbor searcher,
// signature selector, verification scratch, stats shard) across calls. It
// is the building block for callers that drive many passes themselves —
// Discover's workers, the sharded scatter-gather engine, and the public
// batch API. A Searcher is not safe for concurrent use; create one per
// goroutine and Close it when done so its counters reach the engine and
// its scratch returns to the engine's pool.
type Searcher struct {
	e *Engine
	w *worker
}

// NewSearcher returns a Searcher over e, recycled from the engine's pool
// when one is available.
func (e *Engine) NewSearcher() *Searcher {
	if v := e.srPool.Get(); v != nil {
		return v.(*Searcher)
	}
	return &Searcher{e: e, w: e.newWorker()}
}

// Search runs one search pass for r, excluding candidate sets with
// collection index ≤ skip (pass -1 to consider every set). Verification
// runs serially within the pass: callers parallelize across passes, not
// within them.
func (s *Searcher) Search(ctx context.Context, r *dataset.Set, skip int) ([]Match, error) {
	return s.e.searchPass(ctx, r, skip, s.w, false, nil)
}

// Close folds the searcher's private stats shard into the engine's
// counters and returns the searcher to the engine's pool. The caller must
// not use the Searcher afterwards.
func (s *Searcher) Close() {
	s.e.st.merge(&s.w.st)
	s.w.st.reset()
	s.e.srPool.Put(s)
}

// sizeAccept reports whether a set of size nS can possibly be related to a
// reference of size nR under the engine's metric (paper footnote 6 and
// Definition 2's |R| ≤ |S| requirement).
func (e *Engine) sizeAccept(nR, nS int) bool {
	return e.sizeAcceptDelta(nR, nS, e.opts.Delta)
}

// sizeAcceptDelta is sizeAccept under an explicit threshold — the pass's
// effective δ, which a query may have overridden.
func (e *Engine) sizeAcceptDelta(nR, nS int, delta float64) bool {
	switch e.opts.Metric {
	case SetContainment:
		return nS >= nR
	default:
		return float64(nS) >= delta*float64(nR)-sizeEps &&
			float64(nS) <= float64(nR)/delta+sizeEps
	}
}

// DiscoverContext solves RELATED SET DISCOVERY (Problem 1) for the
// reference collection refs against the engine's collection. refs must
// share the engine collection's dictionary. When refs is the engine's own
// collection, the self-join is deduplicated under SET-SIMILARITY (each
// unordered pair reported once, self-pairs skipped); under SET-CONTAINMENT
// every ordered pair ⟨R, S⟩ with |R| ≤ |S|, R ≠ S is considered.
//
// Reference passes are
// sharded across the engine's Concurrency workers, each with its own
// scratch and stats shard (merged on retirement), and the whole discovery
// aborts with ctx.Err() when ctx is done. Pair order varies with worker
// interleaving; the pair set does not.
func (e *Engine) DiscoverContext(ctx context.Context, refs *dataset.Collection) ([]Pair, error) {
	return e.DiscoverQueryContext(ctx, refs, nil)
}

// DiscoverQueryContext is DiscoverContext with per-query overrides and
// stats capture: q shapes every reference pass of the discovery, and
// q.Stats (when non-nil) absorbs the passes' summed funnel. A nil q is
// exactly DiscoverContext.
func (e *Engine) DiscoverQueryContext(ctx context.Context, refs *dataset.Collection, q *Query) ([]Pair, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	selfJoin := refs == e.coll
	n := len(refs.Sets)
	workers := e.opts.Concurrency
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	var mu sync.Mutex
	var pairs []Pair
	var firstErr error
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr := e.NewSearcher()
			var local []Pair
			var err error
			for {
				ri := int(atomic.AddInt64(&next, 1)) - 1
				if ri >= n {
					break
				}
				if err = ctx.Err(); err != nil {
					break
				}
				if selfJoin && !e.alive(ri) {
					continue // deleted sets are no longer references
				}
				selfSkip := -1
				if selfJoin && e.opts.Metric == SetSimilarity {
					selfSkip = ri
				}
				var ms []Match
				ms, err = sr.SearchQuery(ctx, &refs.Sets[ri], selfSkip, q)
				if err != nil {
					break
				}
				for _, m := range ms {
					if selfJoin && m.Set == ri {
						continue // no self-pairs
					}
					local = append(local, Pair{R: ri, S: m.Set, Relatedness: m.Relatedness, Score: m.Score})
				}
			}
			sr.Close()
			mu.Lock()
			pairs = append(pairs, local...)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return pairs, nil
}
