package core

import (
	"math"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/paperdata"
	"silkmoth/internal/signature"
	"silkmoth/internal/tokens"
)

func paperEngine(t *testing.T, opts Options) (*Engine, *dataset.Set) {
	t.Helper()
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, paperdata.CollectionS())
	eng, err := NewEngine(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	refColl := dataset.BuildWord(dict, []dataset.RawSet{paperdata.ReferenceR()})
	return eng, &refColl.Sets[0]
}

// Paper Example 2: under SET-CONTAINMENT with Jac, α = 0, δ = 0.7, the
// search returns only S4, with |R ∩̃ S4| = 0.8 + 1 + 3/7 ≈ 2.229 and
// containment ≈ 0.743.
func TestPaperExample2Containment(t *testing.T) {
	for _, scheme := range []signature.Kind{
		signature.Weighted, signature.Skyline, signature.Dichotomy, signature.CombUnweighted,
	} {
		for _, filters := range []struct{ check, nn bool }{
			{false, false}, {true, false}, {true, true},
		} {
			opts := Options{
				Metric:      SetContainment,
				Sim:         Jaccard,
				Delta:       0.7,
				Scheme:      scheme,
				CheckFilter: filters.check,
				NNFilter:    filters.nn,
				Reduction:   true,
			}
			eng, r := paperEngine(t, opts)
			got := search(eng, r)
			if len(got) != 1 {
				t.Fatalf("%v/%+v: got %d results, want 1 (S4)", scheme, filters, len(got))
			}
			m := got[0]
			if eng.Collection().Sets[m.Set].Name != "S4" {
				t.Errorf("%v: matched %s, want S4", scheme, eng.Collection().Sets[m.Set].Name)
			}
			wantScore := 0.8 + 1.0 + 3.0/7.0
			if math.Abs(m.Score-wantScore) > 1e-9 {
				t.Errorf("%v: score = %v, want %v", scheme, m.Score, wantScore)
			}
			if math.Abs(m.Relatedness-wantScore/3) > 1e-9 {
				t.Errorf("%v: containment = %v, want %v", scheme, m.Relatedness, wantScore/3)
			}
		}
	}
}

// Example 3's walk-through quotes 0.743 for similar(R, S4), but that is the
// containment value M/|R|; Definition 1's actual SET-SIMILARITY is
// M/(|R|+|S|-M) = 2.2286/3.7714 ≈ 0.591. At δ = 0.55 the search must return
// exactly S4 (the correct value clears the threshold; no other set comes
// close).
func TestPaperExample3Similarity(t *testing.T) {
	opts := DefaultOptions(SetSimilarity, Jaccard, 0.55, 0)
	eng, r := paperEngine(t, opts)
	got := search(eng, r)
	if len(got) != 1 || eng.Collection().Sets[got[0].Set].Name != "S4" {
		t.Fatalf("similarity search = %+v, want only S4", got)
	}
	// similar = M / (|R|+|S|-M) with M = 2.2286, |R| = |S| = 3.
	m := got[0]
	wantSim := m.Score / (6 - m.Score)
	if math.Abs(m.Relatedness-wantSim) > 1e-12 {
		t.Errorf("similarity = %v, want %v", m.Relatedness, wantSim)
	}
	if m.Relatedness < 0.55 {
		t.Errorf("similarity %v below δ", m.Relatedness)
	}
}

func TestSearchMatchesBruteForceOnPaperData(t *testing.T) {
	for _, metric := range []Metric{SetSimilarity, SetContainment} {
		for _, delta := range []float64{0.3, 0.5, 0.7, 0.9} {
			opts := DefaultOptions(metric, Jaccard, delta, 0)
			eng, r := paperEngine(t, opts)
			got := search(eng, r)
			want := eng.BruteForceSearch(r)
			if len(got) != len(want) {
				t.Fatalf("%v δ=%v: engine %d results, oracle %d", metric, delta, len(got), len(want))
			}
		}
	}
}

func TestStatsCounting(t *testing.T) {
	opts := DefaultOptions(SetContainment, Jaccard, 0.7, 0)
	eng, r := paperEngine(t, opts)
	search(eng, r)
	st := eng.Stats()
	if st.SearchPasses != 1 {
		t.Errorf("passes = %d", st.SearchPasses)
	}
	if st.Candidates == 0 || st.Verified == 0 {
		t.Errorf("stats not counted: %+v", st)
	}
	if st.AfterNN > st.AfterCheck || st.AfterCheck > st.Candidates {
		t.Errorf("funnel not monotone: %+v", st)
	}
	eng.ResetStats()
	if eng.Stats().SearchPasses != 0 {
		t.Error("ResetStats failed")
	}
}

func TestOptionValidation(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, paperdata.CollectionS())
	if _, err := NewEngine(coll, Options{Delta: 0, Sim: Jaccard}); err == nil {
		t.Error("delta 0 should fail")
	}
	if _, err := NewEngine(coll, Options{Delta: 1.5, Sim: Jaccard}); err == nil {
		t.Error("delta > 1 should fail")
	}
	if _, err := NewEngine(coll, Options{Delta: 0.7, Alpha: 1.0, Sim: Jaccard}); err == nil {
		t.Error("alpha 1 should fail")
	}
	if _, err := NewEngine(coll, Options{Delta: 0.7, Sim: Eds}); err == nil {
		t.Error("word-mode collection with edit similarity should fail")
	}
	qcoll := dataset.BuildQGram(tokens.NewDictionary(), paperdata.CollectionS(), 3)
	if _, err := NewEngine(qcoll, Options{Delta: 0.7, Sim: Jaccard}); err == nil {
		t.Error("qgram-mode collection with Jaccard should fail")
	}
	if _, err := NewEngine(qcoll, Options{Delta: 0.7, Alpha: 0.8, Sim: Eds, Q: 2}); err == nil {
		t.Error("mismatched q should fail")
	}
	eng, err := NewEngine(qcoll, Options{Delta: 0.7, Alpha: 0.8, Sim: Eds, Q: 3})
	if err != nil {
		t.Fatalf("valid edit engine failed: %v", err)
	}
	if eng.Options().Q != 3 {
		t.Error("q not preserved")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	o, err := Options{Delta: 0.7, Sim: Jaccard, NNFilter: true, Reduction: true, Alpha: 0.5}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !o.CheckFilter {
		t.Error("NN filter should imply check filter")
	}
	if o.Reduction {
		t.Error("reduction must be disabled for α > 0")
	}
	if o.Concurrency != 1 {
		t.Error("concurrency default should be 1")
	}
	o, _ = Options{Delta: 0.7, Sim: NEds, Alpha: 0, Reduction: true}.normalize()
	if o.Reduction {
		t.Error("reduction must be disabled for NEds")
	}
	if o.Q < 1 {
		t.Error("q default missing for edit similarity")
	}
}

func TestDefaultQ(t *testing.T) {
	cases := []struct {
		delta, alpha float64
		want         int
	}{
		{0.7, 0.85, 5}, // paper footnote 11: α=0.85 → q=5
		{0.7, 0.8, 3},  // α=0.8 → q < 4 → 3
		{0.7, 0.7, 2},  // q < 7/3 → 2
		{0.7, 0, 2},    // q < δ/(1-δ) = 7/3 → 2
		{0.5, 0, 1},    // q < 1 floored at 1
	}
	for _, c := range cases {
		if got := DefaultQ(c.delta, c.alpha); got != c.want {
			t.Errorf("DefaultQ(%v, %v) = %d, want %d", c.delta, c.alpha, got, c.want)
		}
	}
}

func TestScoreThresholdAndRelatedness(t *testing.T) {
	// Containment: θ = δ|R|.
	if got := scoreThreshold(SetContainment, 0.7, 3, 10); math.Abs(got-2.1) > 1e-12 {
		t.Errorf("containment threshold = %v", got)
	}
	// Similarity: M/(|R|+|S|-M) = δ at M = δ(|R|+|S|)/(1+δ).
	tt := scoreThreshold(SetSimilarity, 0.7, 3, 4)
	if r := relatedness(SetSimilarity, tt, 3, 4); math.Abs(r-0.7) > 1e-12 {
		t.Errorf("similarity threshold inconsistent: metric at threshold = %v", r)
	}
	if r := relatedness(SetContainment, 2.1, 3, 10); math.Abs(r-0.7) > 1e-12 {
		t.Errorf("containment relatedness = %v", r)
	}
}

func TestEmptyReferenceSearch(t *testing.T) {
	eng, _ := paperEngine(t, DefaultOptions(SetSimilarity, Jaccard, 0.7, 0))
	if got := search(eng, &dataset.Set{Name: "empty"}); len(got) != 0 {
		t.Errorf("empty reference matched %d sets", len(got))
	}
}

func TestMetricAndSimKindStrings(t *testing.T) {
	if SetSimilarity.String() != "SET-SIMILARITY" || SetContainment.String() != "SET-CONTAINMENT" {
		t.Error("Metric strings broken")
	}
	if Jaccard.String() != "Jac" || Eds.String() != "Eds" || NEds.String() != "NEds" {
		t.Error("SimKind strings broken")
	}
	if Metric(9).String() == "" || SimKind(9).String() == "" {
		t.Error("unknown enum strings broken")
	}
	if Jaccard.TokenMode() != dataset.ModeWord || Eds.TokenMode() != dataset.ModeQGram {
		t.Error("TokenMode mapping broken")
	}
}

// The containment metric only considers |R| ≤ |S| (Definition 2): a large
// reference must not match smaller sets even if they contain it perfectly.
func TestContainmentSizeRequirement(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, []dataset.RawSet{
		{Name: "small", Elements: []string{"a b c"}},
	})
	eng, err := NewEngine(coll, DefaultOptions(SetContainment, Jaccard, 0.5, 0))
	if err != nil {
		t.Fatal(err)
	}
	refColl := dataset.BuildWord(dict, []dataset.RawSet{
		{Name: "big", Elements: []string{"a b c", "d e f"}},
	})
	if got := search(eng, &refColl.Sets[0]); len(got) != 0 {
		t.Errorf("containment matched a smaller set: %+v", got)
	}
}

// Self-join discovery under SET-SIMILARITY reports each unordered pair once.
func TestDiscoverSelfJoinDedup(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, []dataset.RawSet{
		{Name: "A", Elements: []string{"x y z", "p q"}},
		{Name: "B", Elements: []string{"x y z", "p q"}},
		{Name: "C", Elements: []string{"completely different tokens"}},
	})
	eng, err := NewEngine(coll, DefaultOptions(SetSimilarity, Jaccard, 0.9, 0))
	if err != nil {
		t.Fatal(err)
	}
	pairs := discover(eng, coll)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v, want exactly one (A,B)", pairs)
	}
	if pairs[0].R >= pairs[0].S {
		t.Errorf("pair not ordered: %+v", pairs[0])
	}
}

func TestDiscoverCrossCollections(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, paperdata.CollectionS())
	eng, err := NewEngine(coll, DefaultOptions(SetContainment, Jaccard, 0.7, 0))
	if err != nil {
		t.Fatal(err)
	}
	refs := dataset.BuildWord(dict, []dataset.RawSet{paperdata.ReferenceR()})
	pairs := discover(eng, refs)
	if len(pairs) != 1 || coll.Sets[pairs[0].S].Name != "S4" {
		t.Fatalf("cross discovery = %+v, want R→S4", pairs)
	}
	want := eng.BruteForceDiscover(refs)
	if len(want) != 1 {
		t.Fatalf("oracle = %+v", want)
	}
}

func TestConcurrentDiscoverMatchesSerial(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, paperdata.CollectionS())
	serialOpts := DefaultOptions(SetSimilarity, Jaccard, 0.5, 0)
	parallelOpts := serialOpts
	parallelOpts.Concurrency = 4
	engS, err := NewEngine(coll, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	engP, err := NewEngine(coll, parallelOpts)
	if err != nil {
		t.Fatal(err)
	}
	ps := discover(engS, coll)
	pp := discover(engP, coll)
	sortPairs(ps)
	sortPairs(pp)
	if len(ps) != len(pp) {
		t.Fatalf("parallel discovery differs: %d vs %d pairs", len(pp), len(ps))
	}
	for i := range ps {
		if ps[i] != pp[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, pp[i], ps[i])
		}
	}
	// Both engines did the same logical work.
	if engS.Stats().Verified != engP.Stats().Verified {
		t.Errorf("verified counts differ: %d vs %d",
			engP.Stats().Verified, engS.Stats().Verified)
	}
}

// Determinism: identical inputs produce identical outputs across runs
// (greedy tie-breaks and map iteration must not leak into results).
func TestDiscoverDeterministic(t *testing.T) {
	run := func() []Pair {
		dict := tokens.NewDictionary()
		coll := dataset.BuildWord(dict, paperdata.CollectionS())
		eng, err := NewEngine(coll, DefaultOptions(SetSimilarity, Jaccard, 0.4, 0))
		if err != nil {
			t.Fatal(err)
		}
		ps := discover(eng, coll)
		sortPairs(ps)
		return ps
	}
	base := run()
	for i := 0; i < 5; i++ {
		got := run()
		if len(got) != len(base) {
			t.Fatalf("run %d: %d pairs vs %d", i, len(got), len(base))
		}
		for j := range got {
			if got[j] != base[j] {
				t.Fatalf("run %d pair %d differs", i, j)
			}
		}
	}
}

func TestSearchTopKCore(t *testing.T) {
	eng, r := paperEngine(t, DefaultOptions(SetContainment, Jaccard, 0.3, 0))
	all := search(eng, r)
	top1 := searchTopK(eng, r, 1)
	if len(top1) != 1 {
		t.Fatalf("top1 = %+v", top1)
	}
	best := all[0]
	for _, m := range all {
		if m.Relatedness > best.Relatedness {
			best = m
		}
	}
	if top1[0].Set != best.Set {
		t.Errorf("top1 = %+v, want best %+v", top1[0], best)
	}
	if got := searchTopK(eng, r, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := searchTopK(eng, r, 99); len(got) != len(all) {
		t.Errorf("large k should return all %d, got %d", len(all), len(got))
	}
}

// When no valid signature exists (edit similarity with q ≥ δ/(1-δ), §7.3),
// the engine must fall back to a full scan and still return exact results.
func TestFullScanFallback(t *testing.T) {
	raws := []dataset.RawSet{
		{Name: "A", Elements: []string{"abcdefgh"}},
		{Name: "B", Elements: []string{"abcdefgx"}},
		{Name: "C", Elements: []string{"zzzzzzzz"}},
	}
	dict := tokens.NewDictionary()
	coll := dataset.BuildQGram(dict, raws, 8) // one chunk per element
	opts := Options{
		Metric: SetSimilarity, Sim: Eds,
		Delta: 0.75, Alpha: 0, Q: 8,
		Scheme:      signature.Dichotomy,
		CheckFilter: true, NNFilter: true,
	}
	eng, err := NewEngine(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	pairs := discover(eng, coll)
	want := eng.BruteForceDiscover(coll)
	if len(pairs) != len(want) {
		t.Fatalf("full-scan fallback diverges: %d vs %d", len(pairs), len(want))
	}
	if eng.Stats().FullScans == 0 {
		t.Error("expected full-scan fallbacks to be counted")
	}
	// Eds("abcdefgh","abcdefgx") = 15/17 → similarity 0.79 ≥ 0.75: A~B.
	if len(pairs) != 1 {
		t.Errorf("pairs = %+v, want exactly A~B", pairs)
	}
}
