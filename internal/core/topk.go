package core

import (
	"context"
	"slices"

	"silkmoth/internal/dataset"
)

// SearchTopKContext returns the k most related sets to r among those whose
// relatedness reaches the engine's δ, ordered by descending relatedness
// (ties by index). δ acts as the quality floor: the result is exactly the
// top k of SearchContext's output, computed without materializing more
// than SearchContext already verifies.
func (e *Engine) SearchTopKContext(ctx context.Context, r *dataset.Set, k int) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	ms, err := e.SearchContext(ctx, r)
	if err != nil {
		return nil, err
	}
	slices.SortFunc(ms, func(a, b Match) int {
		if a.Relatedness != b.Relatedness {
			if a.Relatedness > b.Relatedness {
				return -1
			}
			return 1
		}
		return a.Set - b.Set
	})
	if len(ms) > k {
		ms = ms[:k]
	}
	return ms, nil
}

// AppendSets extends the engine's inverted index over sets appended to its
// collection since index build (dataset.Append), retaining their dictionary
// tokens and growing the tombstone bitmap. Not safe concurrently with
// queries: callers must serialize appends against searches.
func (e *Engine) AppendSets(from int) {
	e.ix.AppendSets(from)
	retainSets(e.coll, from)
	if e.dead != nil { // stays nil (all-alive fast path) until first Delete
		e.growDead()
	}
}
