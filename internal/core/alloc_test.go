package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/raceflag"
	"silkmoth/internal/signature"
	"silkmoth/internal/tokens"
)

// skipUnderRace skips allocation pins in race builds: the instrumentation
// itself allocates.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; budgets hold only in plain builds")
	}
}

// allocFixture builds a word-mode collection big enough that a query
// touches many candidates, so any per-candidate or per-pair allocation
// would show up multiplied in the AllocsPerRun counts.
func allocFixture(t testing.TB, scheme signature.Kind) (*Engine, *dataset.Set) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	vocab := make([]string, 120)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%03d", i)
	}
	raws := make([]dataset.RawSet, 300)
	for i := range raws {
		ne := 3 + rng.Intn(5)
		elems := make([]string, ne)
		for j := range elems {
			nw := 2 + rng.Intn(4)
			ws := make([]byte, 0, 32)
			for k := 0; k < nw; k++ {
				if k > 0 {
					ws = append(ws, ' ')
				}
				ws = append(ws, vocab[rng.Intn(len(vocab))]...)
			}
			elems[j] = string(ws)
		}
		raws[i] = dataset.RawSet{Name: fmt.Sprintf("s%d", i), Elements: elems}
	}
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, raws)
	opts := DefaultOptions(SetSimilarity, Jaccard, 0.5, 0.3)
	opts.Scheme = scheme
	e, err := NewEngine(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e, &coll.Sets[7]
}

// TestSearchAllocs pins the steady-state allocation budget of one search
// pass on a reused Searcher: the hot path must allocate only the result
// slice (O(1) amortized per query), never per candidate or per verified
// pair. If this number regresses, scratch reuse broke somewhere in the
// signature → collect → refine → verify pipeline.
func TestSearchAllocs(t *testing.T) {
	skipUnderRace(t)
	for _, scheme := range []signature.Kind{signature.Dichotomy, signature.Auto} {
		t.Run(scheme.String(), func(t *testing.T) {
			e, ref := allocFixture(t, scheme)
			sr := e.NewSearcher()
			defer sr.Close()
			ctx := context.Background()
			// Warm the scratch arenas.
			for i := 0; i < 3; i++ {
				if _, err := sr.Search(ctx, ref, -1); err != nil {
					t.Fatal(err)
				}
			}
			got := testing.AllocsPerRun(200, func() {
				if _, err := sr.Search(ctx, ref, -1); err != nil {
					t.Fatal(err)
				}
			})
			const budget = 8
			if got > budget {
				t.Fatalf("steady-state Search allocates %.1f objects/query, budget %d", got, budget)
			}
			t.Logf("allocs/query = %.2f", got)
		})
	}
}

// TestSearchContextAllocs pins the pooled top-level SearchContext path,
// which draws its worker from the engine pool per call.
func TestSearchContextAllocs(t *testing.T) {
	skipUnderRace(t)
	e, ref := allocFixture(t, signature.Dichotomy)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := e.SearchContext(ctx, ref); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := e.SearchContext(ctx, ref); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 10
	if got > budget {
		t.Fatalf("steady-state SearchContext allocates %.1f objects/query, budget %d", got, budget)
	}
	t.Logf("allocs/query = %.2f", got)
}

// TestVerifyAllocs pins exact verification alone: with a reused scratch,
// computing |R ∩̃ S| (reduction on) must not allocate at all.
func TestVerifyAllocs(t *testing.T) {
	skipUnderRace(t)
	e, ref := allocFixture(t, signature.Dichotomy)
	var vs verifyScratch
	s := &e.coll.Sets[11]
	got := testing.AllocsPerRun(500, func() {
		e.matchScore(ref, s, &vs)
	})
	if got > 0 {
		t.Fatalf("steady-state matchScore allocates %.1f objects/pair, want 0", got)
	}
}
