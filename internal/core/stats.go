package core

import (
	"fmt"
	"sync/atomic"
)

// Stats counts the work done by an engine across all search passes. All
// counters are cumulative and safe to read concurrently.
type Stats struct {
	searchPasses int64
	fullScans    int64
	candidates   int64
	afterCheck   int64
	afterNN      int64
	verified     int64
}

func (s *Stats) addSearchPasses(n int64) { atomic.AddInt64(&s.searchPasses, n) }
func (s *Stats) addFullScans(n int64)    { atomic.AddInt64(&s.fullScans, n) }
func (s *Stats) addCandidates(n int64)   { atomic.AddInt64(&s.candidates, n) }
func (s *Stats) addAfterCheck(n int64)   { atomic.AddInt64(&s.afterCheck, n) }
func (s *Stats) addAfterNN(n int64)      { atomic.AddInt64(&s.afterNN, n) }
func (s *Stats) addVerified(n int64)     { atomic.AddInt64(&s.verified, n) }

// merge folds a retiring worker's stats shard into s. Workers accumulate
// privately and merge once, so hot verification loops never contend on the
// engine's shared counters.
func (s *Stats) merge(from *Stats) {
	atomic.AddInt64(&s.searchPasses, atomic.LoadInt64(&from.searchPasses))
	atomic.AddInt64(&s.fullScans, atomic.LoadInt64(&from.fullScans))
	atomic.AddInt64(&s.candidates, atomic.LoadInt64(&from.candidates))
	atomic.AddInt64(&s.afterCheck, atomic.LoadInt64(&from.afterCheck))
	atomic.AddInt64(&s.afterNN, atomic.LoadInt64(&from.afterNN))
	atomic.AddInt64(&s.verified, atomic.LoadInt64(&from.verified))
}

// StatsSnapshot is a point-in-time copy of an engine's counters.
type StatsSnapshot struct {
	// SearchPasses is the number of search passes run.
	SearchPasses int64
	// FullScans counts passes that fell back to comparing every set
	// because no valid signature existed (edit similarity, §7.3).
	FullScans int64
	// Candidates counts sets matched by signature tokens, before any
	// refinement (the signature scheme's selectivity, Figure 5's driver).
	Candidates int64
	// AfterCheck counts candidates surviving the check filter.
	AfterCheck int64
	// AfterNN counts candidates surviving the nearest-neighbor filter;
	// equal to AfterCheck when the filter is disabled.
	AfterNN int64
	// Verified counts maximum-matching computations.
	Verified int64
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() StatsSnapshot {
	return StatsSnapshot{
		SearchPasses: atomic.LoadInt64(&e.st.searchPasses),
		FullScans:    atomic.LoadInt64(&e.st.fullScans),
		Candidates:   atomic.LoadInt64(&e.st.candidates),
		AfterCheck:   atomic.LoadInt64(&e.st.afterCheck),
		AfterNN:      atomic.LoadInt64(&e.st.afterNN),
		Verified:     atomic.LoadInt64(&e.st.verified),
	}
}

// ResetStats zeroes the engine's counters.
func (e *Engine) ResetStats() {
	atomic.StoreInt64(&e.st.searchPasses, 0)
	atomic.StoreInt64(&e.st.fullScans, 0)
	atomic.StoreInt64(&e.st.candidates, 0)
	atomic.StoreInt64(&e.st.afterCheck, 0)
	atomic.StoreInt64(&e.st.afterNN, 0)
	atomic.StoreInt64(&e.st.verified, 0)
}

// String renders the snapshot as one report line.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("passes=%d full-scans=%d candidates=%d after-check=%d after-nn=%d verified=%d",
		s.SearchPasses, s.FullScans, s.Candidates, s.AfterCheck, s.AfterNN, s.Verified)
}
