package core

import (
	"fmt"
	"sync/atomic"

	"silkmoth/internal/signature"
)

// Stats counts the work done by an engine across all search passes, stage
// by stage: signature generation (size and chosen scheme), candidate
// selection, the check filter, the nearest-neighbor filter, and exact
// verification. All counters are cumulative and safe to read concurrently.
type Stats struct {
	searchPasses int64
	fullScans    int64
	sigTokens    int64
	candidates   int64
	afterCheck   int64
	checkPruned  int64
	afterNN      int64
	nnPruned     int64
	verified     int64
	// Concrete scheme each signatured pass probed with — under Scheme
	// Auto this is the per-query cost-based choice; under a fixed scheme
	// it just counts passes.
	schemeWeighted  int64
	schemeComb      int64
	schemeSkyline   int64
	schemeDichotomy int64
	// Stage wall time from sampled timed passes (see Options.StageSample):
	// timedPasses counts the passes measured, the nanos fields their summed
	// per-stage durations. Divide to estimate where a pass spends its time.
	timedPasses  int64
	sigNanos     int64
	collectNanos int64
	refineNanos  int64
	verifyNanos  int64
}

func (s *Stats) addSearchPasses(n int64) { atomic.AddInt64(&s.searchPasses, n) }
func (s *Stats) addFullScans(n int64)    { atomic.AddInt64(&s.fullScans, n) }
func (s *Stats) addSigTokens(n int64)    { atomic.AddInt64(&s.sigTokens, n) }
func (s *Stats) addCandidates(n int64)   { atomic.AddInt64(&s.candidates, n) }
func (s *Stats) addAfterCheck(n int64)   { atomic.AddInt64(&s.afterCheck, n) }
func (s *Stats) addCheckPruned(n int64)  { atomic.AddInt64(&s.checkPruned, n) }
func (s *Stats) addAfterNN(n int64)      { atomic.AddInt64(&s.afterNN, n) }
func (s *Stats) addNNPruned(n int64)     { atomic.AddInt64(&s.nnPruned, n) }
func (s *Stats) addVerified(n int64)     { atomic.AddInt64(&s.verified, n) }

// addStageNanos records one timed pass's per-stage wall time.
func (s *Stats) addStageNanos(sig, collect, refine, verify int64) {
	atomic.AddInt64(&s.timedPasses, 1)
	atomic.AddInt64(&s.sigNanos, sig)
	atomic.AddInt64(&s.collectNanos, collect)
	atomic.AddInt64(&s.refineNanos, refine)
	atomic.AddInt64(&s.verifyNanos, verify)
}

// addScheme records which concrete scheme a pass probed with.
func (s *Stats) addScheme(k signature.Kind) {
	switch k {
	case signature.Weighted:
		atomic.AddInt64(&s.schemeWeighted, 1)
	case signature.CombUnweighted:
		atomic.AddInt64(&s.schemeComb, 1)
	case signature.Skyline:
		atomic.AddInt64(&s.schemeSkyline, 1)
	case signature.Dichotomy:
		atomic.AddInt64(&s.schemeDichotomy, 1)
	}
}

// merge folds a retiring worker's stats shard into s. Workers accumulate
// privately and merge once, so hot verification loops never contend on the
// engine's shared counters.
func (s *Stats) merge(from *Stats) {
	atomic.AddInt64(&s.searchPasses, atomic.LoadInt64(&from.searchPasses))
	atomic.AddInt64(&s.fullScans, atomic.LoadInt64(&from.fullScans))
	atomic.AddInt64(&s.sigTokens, atomic.LoadInt64(&from.sigTokens))
	atomic.AddInt64(&s.candidates, atomic.LoadInt64(&from.candidates))
	atomic.AddInt64(&s.afterCheck, atomic.LoadInt64(&from.afterCheck))
	atomic.AddInt64(&s.checkPruned, atomic.LoadInt64(&from.checkPruned))
	atomic.AddInt64(&s.afterNN, atomic.LoadInt64(&from.afterNN))
	atomic.AddInt64(&s.nnPruned, atomic.LoadInt64(&from.nnPruned))
	atomic.AddInt64(&s.verified, atomic.LoadInt64(&from.verified))
	atomic.AddInt64(&s.schemeWeighted, atomic.LoadInt64(&from.schemeWeighted))
	atomic.AddInt64(&s.schemeComb, atomic.LoadInt64(&from.schemeComb))
	atomic.AddInt64(&s.schemeSkyline, atomic.LoadInt64(&from.schemeSkyline))
	atomic.AddInt64(&s.schemeDichotomy, atomic.LoadInt64(&from.schemeDichotomy))
	atomic.AddInt64(&s.timedPasses, atomic.LoadInt64(&from.timedPasses))
	atomic.AddInt64(&s.sigNanos, atomic.LoadInt64(&from.sigNanos))
	atomic.AddInt64(&s.collectNanos, atomic.LoadInt64(&from.collectNanos))
	atomic.AddInt64(&s.refineNanos, atomic.LoadInt64(&from.refineNanos))
	atomic.AddInt64(&s.verifyNanos, atomic.LoadInt64(&from.verifyNanos))
}

// reset zeroes a retired worker's private shard so the worker can be pooled
// and reused without double-counting. Only safe on shards with no
// concurrent writers.
func (s *Stats) reset() {
	*s = Stats{}
}

// StatsSnapshot is a point-in-time copy of an engine's counters.
type StatsSnapshot struct {
	// SearchPasses is the number of search passes run.
	SearchPasses int64
	// FullScans counts passes that fell back to comparing every set
	// because no valid signature existed (edit similarity, §7.3).
	FullScans int64
	// SigTokens is the total number of per-element signature tokens
	// generated across signatured passes — the probe volume drivers.
	SigTokens int64
	// Candidates counts sets matched by signature tokens, before any
	// refinement (the signature scheme's selectivity, Figure 5's driver).
	Candidates int64
	// AfterCheck counts candidates surviving the check filter;
	// CheckPruned counts the ones it rejected (Candidates = AfterCheck +
	// CheckPruned on check-filtered passes).
	AfterCheck  int64
	CheckPruned int64
	// AfterNN counts candidates surviving the nearest-neighbor filter
	// (equal to AfterCheck when the filter is disabled); NNPruned counts
	// the refinement's rejections.
	AfterNN  int64
	NNPruned int64
	// Verified counts maximum-matching computations.
	Verified int64
	// Scheme* count signatured passes by the concrete scheme that
	// generated the probe signature. Under Scheme Auto they expose the
	// per-query cost-based selection; under a fixed scheme exactly one
	// of them grows.
	SchemeWeighted       int64
	SchemeCombUnweighted int64
	SchemeSkyline        int64
	SchemeDichotomy      int64
	// TimedPasses counts the search passes whose stages were wall-timed
	// (sampled per Options.StageSample, plus every explained query); the
	// *Nanos fields hold those passes' summed per-stage durations.
	TimedPasses  int64
	SigNanos     int64
	CollectNanos int64
	RefineNanos  int64
	VerifyNanos  int64
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() StatsSnapshot {
	return StatsSnapshot{
		SearchPasses:         atomic.LoadInt64(&e.st.searchPasses),
		FullScans:            atomic.LoadInt64(&e.st.fullScans),
		SigTokens:            atomic.LoadInt64(&e.st.sigTokens),
		Candidates:           atomic.LoadInt64(&e.st.candidates),
		AfterCheck:           atomic.LoadInt64(&e.st.afterCheck),
		CheckPruned:          atomic.LoadInt64(&e.st.checkPruned),
		AfterNN:              atomic.LoadInt64(&e.st.afterNN),
		NNPruned:             atomic.LoadInt64(&e.st.nnPruned),
		Verified:             atomic.LoadInt64(&e.st.verified),
		SchemeWeighted:       atomic.LoadInt64(&e.st.schemeWeighted),
		SchemeCombUnweighted: atomic.LoadInt64(&e.st.schemeComb),
		SchemeSkyline:        atomic.LoadInt64(&e.st.schemeSkyline),
		SchemeDichotomy:      atomic.LoadInt64(&e.st.schemeDichotomy),
		TimedPasses:          atomic.LoadInt64(&e.st.timedPasses),
		SigNanos:             atomic.LoadInt64(&e.st.sigNanos),
		CollectNanos:         atomic.LoadInt64(&e.st.collectNanos),
		RefineNanos:          atomic.LoadInt64(&e.st.refineNanos),
		VerifyNanos:          atomic.LoadInt64(&e.st.verifyNanos),
	}
}

// ResetStats zeroes the engine's counters.
func (e *Engine) ResetStats() {
	atomic.StoreInt64(&e.st.searchPasses, 0)
	atomic.StoreInt64(&e.st.fullScans, 0)
	atomic.StoreInt64(&e.st.sigTokens, 0)
	atomic.StoreInt64(&e.st.candidates, 0)
	atomic.StoreInt64(&e.st.afterCheck, 0)
	atomic.StoreInt64(&e.st.checkPruned, 0)
	atomic.StoreInt64(&e.st.afterNN, 0)
	atomic.StoreInt64(&e.st.nnPruned, 0)
	atomic.StoreInt64(&e.st.verified, 0)
	atomic.StoreInt64(&e.st.schemeWeighted, 0)
	atomic.StoreInt64(&e.st.schemeComb, 0)
	atomic.StoreInt64(&e.st.schemeSkyline, 0)
	atomic.StoreInt64(&e.st.schemeDichotomy, 0)
	atomic.StoreInt64(&e.st.timedPasses, 0)
	atomic.StoreInt64(&e.st.sigNanos, 0)
	atomic.StoreInt64(&e.st.collectNanos, 0)
	atomic.StoreInt64(&e.st.refineNanos, 0)
	atomic.StoreInt64(&e.st.verifyNanos, 0)
}

// String renders the snapshot as one report line.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("passes=%d full-scans=%d sig-tokens=%d candidates=%d after-check=%d after-nn=%d verified=%d",
		s.SearchPasses, s.FullScans, s.SigTokens, s.Candidates, s.AfterCheck, s.AfterNN, s.Verified)
}
