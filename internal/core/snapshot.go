package core

import "silkmoth/internal/index"

// Index returns the engine's inverted index, for snapshot writers that
// persist its posting lists. Callers must hold the mutation lock the
// engine's owner uses to serialize mutations.
func (e *Engine) Index() *index.Inverted { return e.ix }

// Storage returns the index's posting-storage statistics (compression
// ratio, resident decoded bytes, cache traffic). O(vocabulary); intended
// for stats endpoints, not hot paths.
func (e *Engine) Storage() index.StorageStats { return e.ix.Storage() }

// MarkDeadSlots marks the slots with dead[i] true as deleted without
// touching postings, refcounts, or the tombstone counter. It exists for
// loading snapshots, whose dead slots are empty placeholders: they hold no
// elements, carry no postings, and retained nothing at build time, so
// there is nothing to release and nothing for a later compaction to
// reclaim — the slot just has to stay invisible to queries and keep its
// index reserved.
func (e *Engine) MarkDeadSlots(dead []bool) {
	for i, d := range dead {
		if d && i < len(e.coll.Sets) && e.alive(i) {
			e.growDead()
			e.dead[i] = true
			e.numDead++
		}
	}
}
