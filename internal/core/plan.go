package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"silkmoth/internal/dataset"
	"silkmoth/internal/filter"
	"silkmoth/internal/signature"
)

// PassStats captures the per-stage funnel of a single logical query — one
// search pass, or the sum of the passes one query fans out into (every
// shard of a scatter-gather, every reference of a discovery). It is the
// per-query counterpart of the engine's cumulative Stats: a query that
// wants its own funnel hangs a PassStats off its Query and reads it back
// after the call returns.
//
// All adds are atomic, so one PassStats may be shared by the concurrent
// passes of one query (shard fan-out, parallel verification); the fields
// must only be read once the query has returned.
type PassStats struct {
	// Passes counts the search passes that charged this capture (shards ×
	// references).
	Passes int64
	// FullScans counts passes with no valid signature that fell back to
	// comparing every set.
	FullScans int64
	// SigTokens is the number of signature tokens generated — the index
	// probe volume.
	SigTokens int64
	// Candidates counts sets matched by signature tokens before any
	// refinement; AfterCheck/CheckPruned split them by the check filter
	// (Candidates = AfterCheck + CheckPruned), and AfterNN/NNPruned split
	// the survivors by the nearest-neighbor filter.
	Candidates  int64
	AfterCheck  int64
	CheckPruned int64
	AfterNN     int64
	NNPruned    int64
	// Verified counts maximum-matching computations.
	Verified int64
	// Scheme* count signatured passes by the concrete scheme that probed
	// the index (per-shard choices may differ under Auto).
	SchemeWeighted       int64
	SchemeSkyline        int64
	SchemeDichotomy      int64
	SchemeCombUnweighted int64
	// ElapsedNanos accumulates wall time at whatever granularity the
	// caller measures (whole query, or per batch item).
	ElapsedNanos int64
	// Per-stage wall time summed over the capture's timed passes. A query
	// with a capture is always timed, so these are populated whenever the
	// funnel is; TimedPasses counts the passes measured (equal to Passes
	// for explained queries).
	TimedPasses  int64
	SigNanos     int64
	CollectNanos int64
	RefineNanos  int64
	VerifyNanos  int64
}

// The add methods are nil-safe so the plan's stages charge them
// unconditionally; a query without capture pays one predicted branch.

func (ps *PassStats) addPasses(n int64) {
	if ps != nil {
		atomic.AddInt64(&ps.Passes, n)
	}
}

func (ps *PassStats) addFullScans(n int64) {
	if ps != nil {
		atomic.AddInt64(&ps.FullScans, n)
	}
}

func (ps *PassStats) addSigTokens(n int64) {
	if ps != nil {
		atomic.AddInt64(&ps.SigTokens, n)
	}
}

func (ps *PassStats) addCandidates(n int64) {
	if ps != nil {
		atomic.AddInt64(&ps.Candidates, n)
	}
}

func (ps *PassStats) addAfterCheck(n int64) {
	if ps != nil {
		atomic.AddInt64(&ps.AfterCheck, n)
	}
}

func (ps *PassStats) addCheckPruned(n int64) {
	if ps != nil {
		atomic.AddInt64(&ps.CheckPruned, n)
	}
}

func (ps *PassStats) addAfterNN(n int64) {
	if ps != nil {
		atomic.AddInt64(&ps.AfterNN, n)
	}
}

func (ps *PassStats) addNNPruned(n int64) {
	if ps != nil {
		atomic.AddInt64(&ps.NNPruned, n)
	}
}

func (ps *PassStats) addVerified(n int64) {
	if ps != nil {
		atomic.AddInt64(&ps.Verified, n)
	}
}

func (ps *PassStats) addScheme(k signature.Kind) {
	if ps == nil {
		return
	}
	switch k {
	case signature.Weighted:
		atomic.AddInt64(&ps.SchemeWeighted, 1)
	case signature.CombUnweighted:
		atomic.AddInt64(&ps.SchemeCombUnweighted, 1)
	case signature.Skyline:
		atomic.AddInt64(&ps.SchemeSkyline, 1)
	case signature.Dichotomy:
		atomic.AddInt64(&ps.SchemeDichotomy, 1)
	}
}

// addStageNanos records one timed pass's per-stage wall time.
func (ps *PassStats) addStageNanos(sig, collect, refine, verify int64) {
	if ps == nil {
		return
	}
	atomic.AddInt64(&ps.TimedPasses, 1)
	atomic.AddInt64(&ps.SigNanos, sig)
	atomic.AddInt64(&ps.CollectNanos, collect)
	atomic.AddInt64(&ps.RefineNanos, refine)
	atomic.AddInt64(&ps.VerifyNanos, verify)
}

// AddElapsed folds wall time into the capture (atomically, like every other
// field). Batch paths call it per item; single-query callers usually
// measure around the whole call instead.
func (ps *PassStats) AddElapsed(d time.Duration) {
	if ps != nil {
		atomic.AddInt64(&ps.ElapsedNanos, int64(d))
	}
}

// Elapsed returns the accumulated wall time.
func (ps *PassStats) Elapsed() time.Duration {
	if ps == nil {
		return 0
	}
	return time.Duration(atomic.LoadInt64(&ps.ElapsedNanos))
}

// worker bundles the per-goroutine scratch of search passes — everything a
// pass reuses across queries so the steady-state hot path performs no
// per-query heap allocations:
//
//   - the candidate collector (pooled Candidate slots),
//   - the nearest-neighbor searcher,
//   - the signature selector (two generator arenas, for Scheme Auto),
//   - the verification scratch (flat Hungarian buffers, interned key
//     slices),
//   - the no-share floor buffer and the parallel-verification result
//     buffers,
//   - a private stats shard merged into the engine's counters when the
//     worker retires (hot loops never contend on shared atomics).
//
// Workers are pooled by the engine (NewSearcher/Close), so a steady stream
// of queries recycles a bounded set of them.
type worker struct {
	cl  *filter.Collector
	ns  *filter.NNSearcher
	sel signature.Selector
	vs  verifyScratch
	// floors backs the pass's no-share floor slice.
	floors []float64
	// resBuf/hitBuf back the parallel verification stage's per-candidate
	// result slots.
	resBuf []Match
	hitBuf []bool
	// acc + acceptFn are the pass's candidate acceptance test; the
	// closure is created once per worker so passes never allocate it.
	acc      acceptState
	acceptFn func(set int32) bool
	st       Stats
	// passSeq drives stage-timing sampling (see sampleTick); single-
	// goroutine like the rest of the worker.
	passSeq int64
}

// acceptState parameterizes the per-pass candidate acceptance test. delta
// is the pass's effective threshold (the engine's, unless the query
// overrode it), set alongside nR at pass start.
type acceptState struct {
	e        *Engine
	selfSkip int
	nR       int
	delta    float64
}

//silkmoth:hotpath
func (a *acceptState) accept(set int32) bool {
	if int(set) <= a.selfSkip {
		return false
	}
	if !a.e.alive(int(set)) {
		return false // tombstoned: postings remain until compaction
	}
	return a.e.sizeAcceptDelta(a.nR, len(a.e.coll.Sets[set].Elements), a.delta)
}

func (e *Engine) newWorker() *worker {
	w := &worker{
		cl: filter.NewCollector(e.ix),
		ns: filter.NewNNSearcher(e.ix, e.phi),
	}
	w.acc.e = e
	w.acceptFn = w.acc.accept
	return w
}

// plan is the compiled execution of one search pass through the pipeline's
// stages:
//
//	signature   scheme selection (Auto resolves here) + generation
//	collect     index probing + check filter (Algorithm 1)
//	refine      nearest-neighbor filter (Algorithm 2)
//	verify      exact maximum-matching verification
//
// Every stage charges the worker's stats shard, so the funnel — signature
// size, candidates, check/NN prunes, verifications — is observable per
// engine. The plan itself lives on the stack; all reusable state belongs to
// the worker.
type plan struct {
	e          *Engine
	w          *worker
	r          *dataset.Set
	selfSkip   int
	parallelOK bool
	// opts is the pass's effective configuration: the engine's options
	// with the query's overrides applied (queryOptions). Every stage reads
	// it, never e.opts, so per-query overrides reach the whole pipeline.
	opts Options
	// ps is the query's own stats capture, nil unless requested. It is
	// charged in lockstep with the worker's cumulative shard.
	ps *PassStats
	// timed marks a pass whose stages are wall-timed: sampled per
	// Options.StageSample, or unconditionally when ps != nil. sigNanos and
	// collectNanos are written serially; refineNanos/verifyNanos accumulate
	// under atomics because parallel verification shares the plan.
	timed        bool
	sigNanos     int64
	collectNanos int64
	refineNanos  int64
	verifyNanos  int64

	pruneThreshold float64
	scheme         signature.Kind
	sig            *signature.Signature
	cands          []*filter.Candidate
	floors         []float64
}

// searchPass generates r's signature, collects and refines candidates, and
// verifies survivors. Candidate sets with index ≤ selfSkip are excluded
// (selfSkip = the reference's own index during self-join discovery under
// SET-SIMILARITY; -1 otherwise). Pass a reusable worker; its stats shard
// absorbs the pass's counters. parallelOK permits sharding the verification
// loop across goroutines (true for top-level searches, false inside
// Discover's workers, which are already parallel). q, when non-nil,
// overrides scheme/δ/filters for this pass and captures its funnel.
//
//silkmoth:hotpath
func (e *Engine) searchPass(ctx context.Context, r *dataset.Set, selfSkip int, w *worker, parallelOK bool, q *Query) ([]Match, error) {
	w.st.addSearchPasses(1)
	var ps *PassStats
	if q != nil {
		ps = q.Stats
	}
	ps.addPasses(1)
	nR := len(r.Elements)
	if nR == 0 {
		return nil, nil
	}
	p := plan{
		e:          e,
		w:          w,
		r:          r,
		selfSkip:   selfSkip,
		parallelOK: parallelOK,
		opts:       e.queryOptions(q),
		ps:         ps,
	}
	p.pruneThreshold = p.opts.Delta*float64(nR) - pruneSlack
	w.acc.selfSkip = selfSkip
	w.acc.nR = nR
	w.acc.delta = p.opts.Delta
	// Explained queries are always stage-timed; otherwise sampling decides.
	p.timed = ps != nil || w.sampleTick(p.opts.StageSample)

	if !p.timed {
		if !p.buildSignature() {
			return p.fullScan(ctx)
		}
		p.collect()
		p.prepareRefine()
		return p.verifyAll(ctx)
	}

	var ms []Match
	var err error
	t0 := time.Now()
	if !p.buildSignature() {
		t1 := time.Now()
		p.sigNanos = t1.Sub(t0).Nanoseconds()
		ms, err = p.fullScan(ctx)
		// The signatureless fallback is all verification.
		p.verifyNanos = time.Since(t1).Nanoseconds()
	} else {
		t1 := time.Now()
		p.sigNanos = t1.Sub(t0).Nanoseconds()
		p.collect()
		t2 := time.Now()
		p.collectNanos = t2.Sub(t1).Nanoseconds()
		p.prepareRefine()
		// Floor precomputation belongs to refinement; the per-candidate
		// NN-filter/verify split is timed inside refineAndVerify.
		p.refineNanos = time.Since(t2).Nanoseconds()
		ms, err = p.verifyAll(ctx)
	}
	p.finishTiming()
	return ms, err
}

// buildSignature runs the signature stage: the worker's selector resolves
// the engine's scheme (cost-based for Auto) and generates the probe
// signature. It reports false when no valid signature exists (edit
// similarity, §7.3) and the pass must fall back to a full scan.
//
//silkmoth:hotpath
func (p *plan) buildSignature() bool {
	e, w := p.e, p.w
	sig, kind := w.sel.Generate(p.opts.Scheme, p.r, signature.Params{
		Delta:  p.opts.Delta,
		Alpha:  p.opts.Alpha,
		Family: p.opts.Sim.family(),
	}, e.ix)
	p.sig, p.scheme = sig, kind
	if !sig.Valid {
		w.st.addFullScans(1)
		p.ps.addFullScans(1)
		return false
	}
	w.st.addScheme(kind)
	p.ps.addScheme(kind)
	n := 0
	for i := range sig.Elements {
		n += len(sig.Elements[i].Tokens)
	}
	w.st.addSigTokens(int64(n))
	p.ps.addSigTokens(int64(n))
	return true
}

// fullScan compares r against every acceptable set — the signatureless
// fallback.
func (p *plan) fullScan(ctx context.Context) ([]Match, error) {
	e, w := p.e, p.w
	var out []Match
	for s := range e.coll.Sets {
		if s%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !w.acceptFn(int32(s)) {
			continue
		}
		w.st.addVerified(1)
		p.ps.addVerified(1)
		if m, ok := e.verifyWith(p.r, s, &w.vs, &p.opts); ok {
			out = append(out, m)
		}
	}
	return out, nil
}

// collect runs candidate selection plus the check filter over the inverted
// index. The resulting candidate slice points into the worker's collector
// scratch and is consumed before the pass ends.
//
//silkmoth:hotpath
func (p *plan) collect() {
	e, w := p.e, p.w
	cands, raw := w.cl.Collect(p.r, p.sig, e.phi, filter.Options{
		Accept:         w.acceptFn,
		CheckFilter:    p.opts.CheckFilter,
		PruneThreshold: p.pruneThreshold,
	})
	p.cands = cands
	w.st.addCandidates(int64(raw))
	p.ps.addCandidates(int64(raw))
	w.st.addAfterCheck(int64(len(cands)))
	p.ps.addAfterCheck(int64(len(cands)))
	if p.opts.CheckFilter {
		w.st.addCheckPruned(int64(raw - len(cands)))
		p.ps.addCheckPruned(int64(raw - len(cands)))
	}
}

// prepareRefine precomputes the nearest-neighbor filter's no-share floors
// into the worker's buffer.
//
//silkmoth:hotpath
func (p *plan) prepareRefine() {
	e, w := p.e, p.w
	if p.opts.NNFilter {
		w.floors = filter.AppendNoShareFloors(w.floors, p.r, p.sig, e.coll.Mode, p.opts.Alpha)
		p.floors = w.floors
	} else {
		p.floors = nil
	}
}

// verifyAll refines and verifies the surviving candidates, serially or —
// when permitted and worthwhile — sharded across the engine's concurrency.
func (p *plan) verifyAll(ctx context.Context) ([]Match, error) {
	e := p.e
	if p.parallelOK && e.opts.Concurrency > 1 && len(p.cands) >= parallelCandMin {
		return p.verifyParallel(ctx)
	}
	var out []Match
	for i, c := range p.cands {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if m, ok := p.refineAndVerify(c, p.w); ok {
			out = append(out, m)
		}
	}
	return out, nil
}

// refineAndVerify runs one candidate through the nearest-neighbor filter and
// exact verification, charging the given worker's stats shard (the parallel
// stage hands each goroutine its own worker).
//
//silkmoth:hotpath
func (p *plan) refineAndVerify(c *filter.Candidate, w *worker) (Match, bool) {
	e := p.e
	if !p.timed {
		if p.opts.NNFilter && !filter.NNFilter(p.r, p.sig, c, w.ns, p.floors, p.pruneThreshold) {
			w.st.addNNPruned(1)
			p.ps.addNNPruned(1)
			return Match{}, false
		}
		w.st.addAfterNN(1)
		p.ps.addAfterNN(1)
		w.st.addVerified(1)
		p.ps.addVerified(1)
		return e.verifyWith(p.r, int(c.Set), &w.vs, &p.opts)
	}
	// Timed pass: split this candidate's cost between the refine and
	// verify stages. Atomic adds — parallel verification shares the plan.
	t0 := time.Now()
	if p.opts.NNFilter && !filter.NNFilter(p.r, p.sig, c, w.ns, p.floors, p.pruneThreshold) {
		w.st.addNNPruned(1)
		p.ps.addNNPruned(1)
		atomic.AddInt64(&p.refineNanos, time.Since(t0).Nanoseconds())
		return Match{}, false
	}
	t1 := time.Now()
	atomic.AddInt64(&p.refineNanos, t1.Sub(t0).Nanoseconds())
	w.st.addAfterNN(1)
	p.ps.addAfterNN(1)
	w.st.addVerified(1)
	p.ps.addVerified(1)
	m, ok := e.verifyWith(p.r, int(c.Set), &w.vs, &p.opts)
	atomic.AddInt64(&p.verifyNanos, time.Since(t1).Nanoseconds())
	return m, ok
}

// verifyParallel shards the pass's surviving candidates across Concurrency
// goroutines. Each extra shard borrows a pooled searcher (its own
// nearest-neighbor scratch, verification scratch, and stats shard); results
// land in per-candidate slots, so the assembled output is byte-identical to
// the serial loop's order.
func (p *plan) verifyParallel(ctx context.Context) ([]Match, error) {
	e, w, cands := p.e, p.w, p.cands
	nw := e.opts.Concurrency
	if nw > len(cands) {
		nw = len(cands)
	}
	if cap(w.resBuf) < len(cands) {
		w.resBuf = make([]Match, len(cands))
		w.hitBuf = make([]bool, len(cands))
	}
	results := w.resBuf[:len(cands)]
	hits := w.hitBuf[:len(cands)]
	for i := range hits {
		hits[i] = false
	}
	var next int64
	var wg sync.WaitGroup
	for wi := 0; wi < nw; wi++ {
		// The caller's worker serves shard 0; extra shards borrow pooled
		// searchers, whose Close returns both the scratch and the stats.
		sw := w
		var sr *Searcher
		if wi > 0 {
			sr = e.NewSearcher()
			sw = sr.w
		}
		wg.Add(1)
		go func(sw *worker, sr *Searcher) {
			defer wg.Done()
			if sr != nil {
				defer sr.Close()
			}
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(cands) {
					return
				}
				if i%cancelCheckStride == 0 && ctx.Err() != nil {
					return
				}
				if m, ok := p.refineAndVerify(cands[i], sw); ok {
					results[i] = m
					hits[i] = true
				}
			}
		}(sw, sr)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(cands))
	for i := range results {
		if hits[i] {
			out = append(out, results[i])
		}
	}
	return out, nil
}
