package core

import (
	"context"
	"testing"

	"silkmoth/internal/datagen"
	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

// schemaCorpus builds a WebTable-like corpus big enough that search passes
// carry many candidates (exercising the sharded verification loop).
func schemaCorpus(t *testing.T, n int) *dataset.Collection {
	t.Helper()
	raws := datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: n, Seed: 7})
	return dataset.BuildWord(tokens.NewDictionary(), raws)
}

// TestParallelDiscoverByteIdentical pins the acceptance criterion: parallel
// Discover must return exactly the serial path's pairs — same pairs, same
// scores bit for bit — on a harness-style workload.
func TestParallelDiscoverByteIdentical(t *testing.T) {
	coll := schemaCorpus(t, 400)
	serial := DefaultOptions(SetSimilarity, Jaccard, 0.6, 0)
	parallel := serial
	parallel.Concurrency = 8

	engS, err := NewEngine(coll, serial)
	if err != nil {
		t.Fatal(err)
	}
	engP, err := NewEngine(coll, parallel)
	if err != nil {
		t.Fatal(err)
	}
	ps := discover(engS, coll)
	pp := discover(engP, coll)
	sortPairs(ps)
	sortPairs(pp)
	if len(ps) == 0 {
		t.Fatal("workload produced no pairs; corpus too sparse for the test")
	}
	if len(ps) != len(pp) {
		t.Fatalf("pair counts differ: serial %d, parallel %d", len(ps), len(pp))
	}
	for i := range ps {
		if ps[i] != pp[i] { // exact struct equality: indices AND float scores
			t.Fatalf("pair %d differs: serial %+v, parallel %+v", i, ps[i], pp[i])
		}
	}
	if engS.Stats().Verified != engP.Stats().Verified {
		t.Errorf("verified counts differ: serial %d, parallel %d",
			engS.Stats().Verified, engP.Stats().Verified)
	}
}

// TestParallelSearchByteIdentical checks the sharded candidate-verification
// loop inside one search pass: with Concurrency > 1 and many candidates,
// SearchContext must return the serial loop's matches in the same order.
func TestParallelSearchByteIdentical(t *testing.T) {
	coll := schemaCorpus(t, 400)
	serial := DefaultOptions(SetSimilarity, Jaccard, 0.5, 0)
	parallel := serial
	parallel.Concurrency = 8

	engS, err := NewEngine(coll, serial)
	if err != nil {
		t.Fatal(err)
	}
	engP, err := NewEngine(coll, parallel)
	if err != nil {
		t.Fatal(err)
	}
	sawParallel := false
	for ri := range coll.Sets {
		r := &coll.Sets[ri]
		ms := search(engS, r)
		mp := search(engP, r)
		if len(ms) != len(mp) {
			t.Fatalf("ref %d: match counts differ: serial %d, parallel %d", ri, len(ms), len(mp))
		}
		for i := range ms {
			if ms[i] != mp[i] {
				t.Fatalf("ref %d match %d differs: serial %+v, parallel %+v", ri, i, ms[i], mp[i])
			}
		}
	}
	// The corpus must actually have driven the sharded path at least once:
	// passes with >= parallelCandMin surviving candidates.
	st := engP.Stats()
	if st.AfterCheck >= int64(parallelCandMin) {
		sawParallel = true
	}
	if !sawParallel {
		t.Skipf("corpus never produced %d+ candidates in a pass; parallel path unexercised", parallelCandMin)
	}
}

func TestSearchContextCancelled(t *testing.T) {
	coll := schemaCorpus(t, 50)
	eng, err := NewEngine(coll, DefaultOptions(SetSimilarity, Jaccard, 0.6, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.SearchContext(ctx, &coll.Sets[0]); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDiscoverContextCancelled(t *testing.T) {
	coll := schemaCorpus(t, 50)
	eng, err := NewEngine(coll, DefaultOptions(SetSimilarity, Jaccard, 0.6, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.DiscoverContext(ctx, coll); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
