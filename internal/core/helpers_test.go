package core

import (
	"context"

	"silkmoth/internal/dataset"
)

// The engine's query entrypoints all thread a context (the ctxflow
// analyzer pins that contract); these helpers keep the no-cancellation
// test call sites terse.

func search(e *Engine, r *dataset.Set) []Match {
	ms, err := e.SearchContext(context.Background(), r)
	if err != nil {
		panic(err)
	}
	return ms
}

func discover(e *Engine, refs *dataset.Collection) []Pair {
	ps, err := e.DiscoverContext(context.Background(), refs)
	if err != nil {
		panic(err)
	}
	return ps
}

func searchTopK(e *Engine, r *dataset.Set, k int) []Match {
	ms, err := e.SearchTopKContext(context.Background(), r, k)
	if err != nil {
		panic(err)
	}
	return ms
}
