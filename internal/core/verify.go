package core

import (
	"silkmoth/internal/dataset"
	"silkmoth/internal/matching"
)

// scoreThreshold returns the minimum maximum-matching score for two sets of
// the given sizes to be related: θ = δ|R| under SET-CONTAINMENT, and
// δ(|R|+|S|)/(1+δ) under SET-SIMILARITY (solving M/(|R|+|S|-M) ≥ δ for M).
func scoreThreshold(metric Metric, delta float64, nR, nS int) float64 {
	if metric == SetContainment {
		return delta * float64(nR)
	}
	return delta * float64(nR+nS) / (1 + delta)
}

// relatedness converts a matching score into the metric value.
func relatedness(metric Metric, score float64, nR, nS int) float64 {
	if metric == SetContainment {
		return score / float64(nR)
	}
	return score / (float64(nR+nS) - score)
}

// verify computes the exact maximum matching score between r and collection
// set s (with the §5.3 reduction when enabled) and reports whether the pair
// is related under the engine's metric.
func (e *Engine) verify(r *dataset.Set, s int) (Match, bool) {
	sSet := &e.coll.Sets[s]
	score := e.matchScore(r, sSet)
	nR, nS := len(r.Elements), len(sSet.Elements)
	t := scoreThreshold(e.opts.Metric, e.opts.Delta, nR, nS)
	if score < t-acceptEps {
		return Match{}, false
	}
	return Match{
		Set:         s,
		Relatedness: relatedness(e.opts.Metric, score, nR, nS),
		Score:       score,
	}, true
}

// matchScore computes |R ∩̃ S| between two tokenized sets.
func (e *Engine) matchScore(r, s *dataset.Set) float64 {
	simFn := func(i, j int) float64 {
		return e.phi(&r.Elements[i], &s.Elements[j])
	}
	if e.opts.Reduction {
		keyR := make([]string, len(r.Elements))
		for i := range r.Elements {
			keyR[i] = dataset.ElementKey(&r.Elements[i], e.coll.Mode)
		}
		keyS := make([]string, len(s.Elements))
		for j := range s.Elements {
			keyS[j] = dataset.ElementKey(&s.Elements[j], e.coll.Mode)
		}
		return matching.ScoreWithReduction(keyR, keyS, simFn)
	}
	return matching.Score(len(r.Elements), len(s.Elements), simFn)
}

// BruteForceSearch is the naive oracle for RELATED SET SEARCH: it verifies r
// against every set in the collection (subject only to the metric's size
// requirement), with no signatures or filters. It returns exactly what
// Search must return.
func (e *Engine) BruteForceSearch(r *dataset.Set) []Match {
	var out []Match
	nR := len(r.Elements)
	if nR == 0 {
		return nil
	}
	for s := range e.coll.Sets {
		if !e.sizeAccept(nR, len(e.coll.Sets[s].Elements)) {
			continue
		}
		if m, ok := e.verify(r, s); ok {
			out = append(out, m)
		}
	}
	return out
}

// BruteForceDiscover is the naive m² oracle for RELATED SET DISCOVERY,
// mirroring Discover's pairing rules (self-join deduplication under
// SET-SIMILARITY, ordered pairs under SET-CONTAINMENT).
func (e *Engine) BruteForceDiscover(refs *dataset.Collection) []Pair {
	selfJoin := refs == e.coll
	var pairs []Pair
	for ri := range refs.Sets {
		r := &refs.Sets[ri]
		nR := len(r.Elements)
		if nR == 0 {
			continue
		}
		for s := range e.coll.Sets {
			if selfJoin {
				if s == ri {
					continue
				}
				if e.opts.Metric == SetSimilarity && s < ri {
					continue
				}
			}
			if !e.sizeAccept(nR, len(e.coll.Sets[s].Elements)) {
				continue
			}
			if m, ok := e.verify(r, s); ok {
				pairs = append(pairs, Pair{R: ri, S: s, Relatedness: m.Relatedness, Score: m.Score})
			}
		}
	}
	return pairs
}

// MatchScore exposes the exact maximum matching score |R ∩̃ S| between a
// query set and an arbitrary tokenized set (both over the engine's
// dictionary), applying the engine's reduction setting.
func (e *Engine) MatchScore(r, s *dataset.Set) float64 {
	return e.matchScore(r, s)
}
