package core

import (
	"silkmoth/internal/dataset"
	"silkmoth/internal/filter"
	"silkmoth/internal/matching"
)

// scoreThreshold returns the minimum maximum-matching score for two sets of
// the given sizes to be related: θ = δ|R| under SET-CONTAINMENT, and
// δ(|R|+|S|)/(1+δ) under SET-SIMILARITY (solving M/(|R|+|S|-M) ≥ δ for M).
//
//silkmoth:hotpath
func scoreThreshold(metric Metric, delta float64, nR, nS int) float64 {
	if metric == SetContainment {
		return delta * float64(nR)
	}
	return delta * float64(nR+nS) / (1 + delta)
}

// relatedness converts a matching score into the metric value.
//
//silkmoth:hotpath
func relatedness(metric Metric, score float64, nR, nS int) float64 {
	if metric == SetContainment {
		return score / float64(nR)
	}
	return score / (float64(nR+nS) - score)
}

// pairSim adapts the engine's φ_α to matching.Weights for one ⟨R, S⟩ pair.
// It lives inside verifyScratch so setting the pair is a field write, never
// a closure allocation.
type pairSim struct {
	phi  filter.SimFunc
	r, s *dataset.Set
}

//silkmoth:hotpath
func (p *pairSim) At(i, j int) float64 {
	return p.phi(&p.r.Elements[i], &p.s.Elements[j])
}

// verifyScratch bundles the reusable state of exact verification: the
// matching scratch (flat Hungarian buffers, reduction tables) and the
// interned element-key slices the §5.3 reduction compares. One lives in
// every worker; verification performs no per-pair heap allocations.
type verifyScratch struct {
	mat        matching.Scratch
	keyR, keyS []int32
	ps         pairSim
}

// verify computes the exact maximum matching score between r and collection
// set s (with the §5.3 reduction when enabled) and reports whether the pair
// is related under the engine's metric.
func (e *Engine) verify(r *dataset.Set, s int, vs *verifyScratch) (Match, bool) {
	return e.verifyWith(r, s, vs, &e.opts)
}

// verifyWith is verify under explicit effective options — the engine's
// configuration with any per-query overrides (δ, reduction) applied. The
// search pipeline always routes through it so query overrides reach exact
// verification.
//
//silkmoth:hotpath
func (e *Engine) verifyWith(r *dataset.Set, s int, vs *verifyScratch, o *Options) (Match, bool) {
	sSet := &e.coll.Sets[s]
	score := e.matchScoreWith(r, sSet, vs, o.Reduction)
	nR, nS := len(r.Elements), len(sSet.Elements)
	t := scoreThreshold(o.Metric, o.Delta, nR, nS)
	if score < t-acceptEps {
		return Match{}, false
	}
	return Match{
		Set:         s,
		Relatedness: relatedness(o.Metric, score, nR, nS),
		Score:       score,
	}, true
}

// matchScore computes |R ∩̃ S| between two tokenized sets under the
// engine's reduction setting.
func (e *Engine) matchScore(r, s *dataset.Set, vs *verifyScratch) float64 {
	return e.matchScoreWith(r, s, vs, e.opts.Reduction)
}

// matchScoreWith computes |R ∩̃ S| between two tokenized sets. With the
// reduction enabled it compares the elements' build-time interned keys
// (dataset.Element.Key) — integers, never materialized strings.
//
//silkmoth:hotpath
func (e *Engine) matchScoreWith(r, s *dataset.Set, vs *verifyScratch, reduction bool) float64 {
	vs.ps.phi = e.phi
	vs.ps.r, vs.ps.s = r, s
	if reduction {
		vs.keyR = appendElementKeys(vs.keyR[:0], r.Elements)
		vs.keyS = appendElementKeys(vs.keyS[:0], s.Elements)
		return vs.mat.ScoreReduced(vs.keyR, vs.keyS, &vs.ps)
	}
	return vs.mat.Score(len(r.Elements), len(s.Elements), &vs.ps)
}

// appendElementKeys copies the elements' interned content keys into dst
// (dataset.NoKey becomes the reduction's negative "never reduce" marker).
//
//silkmoth:hotpath
func appendElementKeys(dst []int32, els []dataset.Element) []int32 {
	for i := range els {
		dst = append(dst, int32(els[i].Key))
	}
	return dst
}

// BruteForceSearch is the naive oracle for RELATED SET SEARCH: it verifies r
// against every set in the collection (subject only to the metric's size
// requirement), with no signatures or filters. It returns exactly what
// Search must return.
func (e *Engine) BruteForceSearch(r *dataset.Set) []Match {
	var out []Match
	var vs verifyScratch
	nR := len(r.Elements)
	if nR == 0 {
		return nil
	}
	for s := range e.coll.Sets {
		if !e.sizeAccept(nR, len(e.coll.Sets[s].Elements)) {
			continue
		}
		if m, ok := e.verify(r, s, &vs); ok {
			out = append(out, m)
		}
	}
	return out
}

// BruteForceDiscover is the naive m² oracle for RELATED SET DISCOVERY,
// mirroring Discover's pairing rules (self-join deduplication under
// SET-SIMILARITY, ordered pairs under SET-CONTAINMENT).
func (e *Engine) BruteForceDiscover(refs *dataset.Collection) []Pair {
	selfJoin := refs == e.coll
	var pairs []Pair
	var vs verifyScratch
	for ri := range refs.Sets {
		r := &refs.Sets[ri]
		nR := len(r.Elements)
		if nR == 0 {
			continue
		}
		for s := range e.coll.Sets {
			if selfJoin {
				if s == ri {
					continue
				}
				if e.opts.Metric == SetSimilarity && s < ri {
					continue
				}
			}
			if !e.sizeAccept(nR, len(e.coll.Sets[s].Elements)) {
				continue
			}
			if m, ok := e.verify(r, s, &vs); ok {
				pairs = append(pairs, Pair{R: ri, S: s, Relatedness: m.Relatedness, Score: m.Score})
			}
		}
	}
	return pairs
}

// MatchScore exposes the exact maximum matching score |R ∩̃ S| between a
// query set and an arbitrary tokenized set (both over the engine's
// dictionary), applying the engine's reduction setting.
func (e *Engine) MatchScore(r, s *dataset.Set) float64 {
	var vs verifyScratch
	return e.matchScore(r, s, &vs)
}
