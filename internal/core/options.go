// Package core assembles SilkMoth's unified framework (paper §3, Algorithm
// 3): tokenized collections feed an inverted index; each search pass
// generates a signature for the reference set, selects and refines
// candidates, and verifies the survivors with maximum-weight bipartite
// matching. The package supports both RELATED SET SEARCH and RELATED SET
// DISCOVERY, both SET-SIMILARITY and SET-CONTAINMENT, Jaccard and edit
// similarities with an optional element threshold α, and the brute-force
// and FastJoin-style baselines the paper evaluates against.
//
// # Hot-path annotations
//
// The steady-state query pipeline — the per-pass stages in plan.go
// (signature build, candidate collection, refine-and-verify) and the
// verification helpers in verify.go — is annotated //silkmoth:hotpath.
// The annotation is a machine-checked contract: the hotpath analyzer
// (internal/lint, run as `silkmothlint` in CI) rejects allocation-inducing
// constructs inside annotated functions, complementing the AllocsPerRun
// gates in alloc_test.go. Deliberately allocating paths (fullScan,
// verifyAll, verifyParallel) are left unannotated; keep the marker off any
// function that is supposed to allocate.
package core

import (
	"errors"
	"fmt"

	"silkmoth/internal/dataset"
	"silkmoth/internal/signature"
)

// Metric selects the set relatedness metric (paper Definitions 1 and 2).
type Metric int

const (
	// SetSimilarity is |R ∩̃ S| / (|R|+|S|-|R ∩̃ S|) ≥ δ.
	SetSimilarity Metric = iota
	// SetContainment is |R ∩̃ S| / |R| ≥ δ, defined for |R| ≤ |S|.
	SetContainment
)

func (m Metric) String() string {
	switch m {
	case SetSimilarity:
		return "SET-SIMILARITY"
	case SetContainment:
		return "SET-CONTAINMENT"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// SimKind selects the element similarity function φ (paper §2.1).
type SimKind int

const (
	// Jaccard compares elements as sets of whitespace words.
	Jaccard SimKind = iota
	// Eds is the edit similarity 1 - 2LD/(|x|+|y|+LD).
	Eds
	// NEds is the normalized edit similarity 1 - LD/max(|x|,|y|).
	NEds
	// Dice compares elements as sets of whitespace words with the Dice
	// coefficient 2|∩|/(|a|+|b|). Supported via the generalized weighted
	// scheme bounds (the paper's §2.1 notes other token-based functions
	// "can be supported in similar ways").
	Dice
	// Cosine compares elements as sets of whitespace words with the set
	// cosine similarity |∩|/√(|a||b|).
	Cosine
)

func (s SimKind) String() string {
	switch s {
	case Jaccard:
		return "Jac"
	case Eds:
		return "Eds"
	case NEds:
		return "NEds"
	case Dice:
		return "Dice"
	case Cosine:
		return "Cosine"
	default:
		return fmt.Sprintf("SimKind(%d)", int(s))
	}
}

// TokenMode returns the dataset tokenization the similarity requires:
// whitespace words for the token-based functions, q-grams for the edit
// similarities.
func (s SimKind) TokenMode() dataset.TokenMode {
	switch s {
	case Jaccard, Dice, Cosine:
		return dataset.ModeWord
	default:
		return dataset.ModeQGram
	}
}

// family maps the similarity to its signature bound family.
func (s SimKind) family() signature.Family {
	switch s {
	case Jaccard:
		return signature.FamilyJaccard
	case Eds, NEds:
		return signature.FamilyEdit
	case Dice:
		return signature.FamilyDice
	case Cosine:
		return signature.FamilyCosine
	default:
		panic("core: unknown similarity kind")
	}
}

// Options configures an Engine.
type Options struct {
	// Metric is the relatedness metric; default SetSimilarity.
	Metric Metric
	// Sim is the element similarity function; default Jaccard.
	Sim SimKind
	// Delta is the relatedness threshold δ ∈ (0, 1].
	Delta float64
	// Alpha is the element similarity threshold α ∈ [0, 1); similarities
	// below α count as 0 (paper §2.1, §6).
	Alpha float64
	// Q is the gram length for edit similarities. When 0 it defaults to
	// the largest sound value: ⌈α/(1-α)⌉-1 if α > 0 (paper footnote 11),
	// otherwise ⌈δ/(1-δ)⌉-1 (paper §7.3), floored at 1.
	Q int
	// Scheme is the signature scheme; default Dichotomy (the paper's
	// best performer at high α, identical to Weighted at α = 0).
	// signature.Auto selects among the weighted-family schemes per query
	// by the §4.3 probe-cost model over the inverted index's posting
	// statistics; results are identical to any fixed valid scheme.
	Scheme signature.Kind
	// CheckFilter enables the check filter (§5.1).
	CheckFilter bool
	// NNFilter enables the nearest-neighbor filter (§5.2); it subsumes
	// the check filter, which it requires.
	NNFilter bool
	// Reduction enables reduction-based verification (§5.3). It is only
	// sound for α = 0 under Jaccard or Eds (whose dual distances are
	// metrics) and is ignored otherwise.
	Reduction bool
	// Concurrency is the number of parallel search passes Discover may
	// run; values < 1 mean one.
	Concurrency int
	// StageSample is the per-worker sampling interval for per-stage wall
	// timing: one in every StageSample search passes records
	// signature/collect/refine/verify durations into the engine's stage
	// histograms and counters. 0 means DefaultStageSample, 1 times every
	// pass, negative disables sampling entirely. Queries with a stats
	// capture (explain) are always timed.
	StageSample int
	// CompactionThreshold triggers automatic compaction after a Delete
	// once the tombstone ratio — dead-but-still-indexed sets over all
	// indexed sets — reaches it. Compaction rebuilds the posting lists
	// over live sets, frees tombstoned element storage, and reclaims
	// dictionary entries no live set references. Values <= 0 disable
	// automatic compaction (Compact can still be called explicitly).
	CompactionThreshold float64
	// CompressPostings stores the inverted index's posting lists as
	// adaptive compressed containers (array / packed / bitmap) instead of
	// materialized slices, decoding lists lazily through a bounded LRU.
	// Results are identical; the trade is decode work on cold probes for a
	// fraction of the index heap.
	CompressPostings bool
	// PostingCacheBytes bounds the compressed index's LRU of materialized
	// hot lists; <= 0 selects index.DefaultPostingCacheBytes. Ignored
	// unless CompressPostings is set (or the index was loaded compressed).
	PostingCacheBytes int64
}

// DefaultOptions returns the full-strength SilkMoth configuration the
// paper's "OPT" uses: dichotomy signatures, both filters, and the
// verification reduction.
func DefaultOptions(metric Metric, simKind SimKind, delta, alpha float64) Options {
	return Options{
		Metric:      metric,
		Sim:         simKind,
		Delta:       delta,
		Alpha:       alpha,
		Scheme:      signature.Dichotomy,
		CheckFilter: true,
		NNFilter:    true,
		Reduction:   true,
	}
}

// FastJoinOptions returns the FastJoin-style baseline of §8.5: the combined
// unweighted signature scheme, no refinement filters, and plain
// verification.
func FastJoinOptions(metric Metric, simKind SimKind, delta, alpha float64) Options {
	return Options{
		Metric: metric,
		Sim:    simKind,
		Delta:  delta,
		Alpha:  alpha,
		Scheme: signature.CombUnweighted,
	}
}

// normalize validates o and fills defaults, returning the effective options.
func (o Options) normalize() (Options, error) {
	if o.Delta <= 0 || o.Delta > 1 {
		return o, fmt.Errorf("core: delta must be in (0, 1], got %v", o.Delta)
	}
	if o.Alpha < 0 || o.Alpha >= 1 {
		return o, fmt.Errorf("core: alpha must be in [0, 1), got %v", o.Alpha)
	}
	if o.Sim.TokenMode() == dataset.ModeQGram {
		if o.Q == 0 {
			o.Q = DefaultQ(o.Delta, o.Alpha)
		}
		if o.Q < 1 {
			return o, errors.New("core: q must be positive for edit similarities")
		}
	} else {
		o.Q = 0 // token-based similarities have no gram length
	}
	switch o.Scheme {
	case signature.Weighted, signature.CombUnweighted, signature.Skyline,
		signature.Dichotomy, signature.Auto:
	default:
		return o, fmt.Errorf("core: unknown signature scheme %v", o.Scheme)
	}
	if o.NNFilter {
		o.CheckFilter = true // the NN filter consumes check-filter state
	}
	if o.Concurrency < 1 {
		o.Concurrency = 1
	}
	if o.StageSample == 0 {
		o.StageSample = DefaultStageSample
	}
	if o.Reduction && (o.Alpha != 0 || (o.Sim != Jaccard && o.Sim != Eds)) {
		// The §5.3 reduction needs 1-φ_α to be a metric: true only for
		// Jaccard and Eds at α = 0 (§6.5); NEds, Dice, and Cosine duals
		// violate the triangle inequality.
		o.Reduction = false
	}
	return o, nil
}

// DefaultQ returns the largest sound gram length for the given thresholds:
// q < α/(1-α) when α > 0 (so sharing no q-gram forces φ_α = 0), else
// q < δ/(1-δ) (so the weighted scheme is non-empty, §7.3), floored at 1.
func DefaultQ(delta, alpha float64) int {
	bound := delta / (1 - delta)
	if alpha > 0 {
		bound = alpha / (1 - alpha)
	}
	// The inequality is strict, and the bound may compute a hair above an
	// exact integer (0.8/(1-0.8) = 4.000000000000001), so nudge down.
	q := int(bound - 1e-9)
	if q < 1 {
		q = 1
	}
	return q
}
