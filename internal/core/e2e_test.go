package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/signature"
	"silkmoth/internal/tokens"
)

// randWordCorpus builds a random word-mode corpus with planted near-
// duplicates so that related pairs actually exist at high thresholds.
func randWordCorpus(rng *rand.Rand, numSets, vocab int) []dataset.RawSet {
	var raws []dataset.RawSet
	mkElem := func() string {
		k := rng.Intn(4) + 1
		s := ""
		for i := 0; i < k; i++ {
			if i > 0 {
				s += " "
			}
			s += fmt.Sprintf("w%d", rng.Intn(vocab))
		}
		return s
	}
	mkSet := func(name string) dataset.RawSet {
		n := rng.Intn(4) + 1
		elems := make([]string, n)
		for i := range elems {
			elems[i] = mkElem()
		}
		return dataset.RawSet{Name: name, Elements: elems}
	}
	for i := 0; i < numSets; i++ {
		s := mkSet(fmt.Sprintf("S%d", i))
		raws = append(raws, s)
		if rng.Intn(3) == 0 && len(s.Elements) > 1 {
			// Plant a near-duplicate: copy with one element perturbed.
			dup := dataset.RawSet{Name: s.Name + "dup", Elements: append([]string(nil), s.Elements...)}
			dup.Elements[rng.Intn(len(dup.Elements))] = mkElem()
			raws = append(raws, dup)
		}
	}
	return raws
}

// randStringCorpus builds a qgram-mode corpus of letter strings with planted
// near-duplicates (single-character edits).
func randStringCorpus(rng *rand.Rand, numSets int) []dataset.RawSet {
	letters := "abcde"
	mkStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	var raws []dataset.RawSet
	for i := 0; i < numSets; i++ {
		n := rng.Intn(3) + 1
		elems := make([]string, n)
		for j := range elems {
			elems[j] = mkStr(rng.Intn(6) + 3)
		}
		raws = append(raws, dataset.RawSet{Name: fmt.Sprintf("S%d", i), Elements: elems})
		if rng.Intn(3) == 0 {
			dup := dataset.RawSet{Name: fmt.Sprintf("S%ddup", i), Elements: append([]string(nil), elems...)}
			b := []byte(dup.Elements[0])
			b[rng.Intn(len(b))] = letters[rng.Intn(len(letters))]
			dup.Elements[0] = string(b)
			raws = append(raws, dup)
		}
	}
	return raws
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].R != ps[j].R {
			return ps[i].R < ps[j].R
		}
		return ps[i].S < ps[j].S
	})
}

func comparePairs(t *testing.T, label string, got, want []Pair) {
	t.Helper()
	sortPairs(got)
	sortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("%s: engine found %d pairs, oracle %d\nengine: %+v\noracle: %+v",
			label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].R != want[i].R || got[i].S != want[i].S {
			t.Fatalf("%s: pair %d differs: %+v vs %+v", label, i, got[i], want[i])
		}
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("%s: score differs on (%d,%d): %v vs %v",
				label, got[i].R, got[i].S, got[i].Score, want[i].Score)
		}
	}
}

// TestEndToEndJaccardMatchesBruteForce is the paper's core exactness claim:
// SilkMoth produces exactly the brute-force output, for every combination of
// metric, scheme, filters, reduction, δ, and α under Jaccard similarity.
func TestEndToEndJaccardMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2001))
	schemes := []signature.Kind{signature.Weighted, signature.CombUnweighted, signature.Skyline, signature.Dichotomy}
	filters := []struct{ check, nn bool }{{false, false}, {true, false}, {true, true}}

	for trial := 0; trial < 12; trial++ {
		raws := randWordCorpus(rng, 25, 12)
		dict := tokens.NewDictionary()
		coll := dataset.BuildWord(dict, raws)
		for _, metric := range []Metric{SetSimilarity, SetContainment} {
			for _, delta := range []float64{0.5, 0.7, 0.9} {
				for _, alpha := range []float64{0, 0.4, 0.7} {
					for _, scheme := range schemes {
						for _, f := range filters {
							for _, reduction := range []bool{false, true} {
								opts := Options{
									Metric: metric, Sim: Jaccard,
									Delta: delta, Alpha: alpha,
									Scheme:      scheme,
									CheckFilter: f.check, NNFilter: f.nn,
									Reduction: reduction,
								}
								eng, err := NewEngine(coll, opts)
								if err != nil {
									t.Fatal(err)
								}
								label := fmt.Sprintf("trial=%d %v %v δ=%v α=%v %v check=%v nn=%v red=%v",
									trial, metric, Jaccard, delta, alpha, scheme, f.check, f.nn, reduction)
								comparePairs(t, label, discover(eng, coll), eng.BruteForceDiscover(coll))
							}
						}
					}
				}
			}
		}
	}
}

// TestEndToEndEditMatchesBruteForce: the same exactness property under edit
// similarities, including infeasible-signature full-scan fallbacks.
func TestEndToEndEditMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2002))
	for trial := 0; trial < 8; trial++ {
		raws := randStringCorpus(rng, 18)
		for _, simKind := range []SimKind{Eds, NEds} {
			for _, delta := range []float64{0.6, 0.8} {
				for _, alpha := range []float64{0, 0.7, 0.8} {
					q := DefaultQ(delta, alpha)
					dict := tokens.NewDictionary()
					coll := dataset.BuildQGram(dict, raws, q)
					for _, scheme := range []signature.Kind{signature.Weighted, signature.CombUnweighted, signature.Skyline, signature.Dichotomy} {
						for _, nn := range []bool{false, true} {
							opts := Options{
								Metric: SetSimilarity, Sim: simKind,
								Delta: delta, Alpha: alpha, Q: q,
								Scheme:      scheme,
								CheckFilter: true, NNFilter: nn,
								Reduction: true,
							}
							eng, err := NewEngine(coll, opts)
							if err != nil {
								t.Fatal(err)
							}
							label := fmt.Sprintf("trial=%d %v δ=%v α=%v q=%d %v nn=%v",
								trial, simKind, delta, alpha, q, scheme, nn)
							comparePairs(t, label, discover(eng, coll), eng.BruteForceDiscover(coll))
						}
					}
				}
			}
		}
	}
}

// Containment search mode (the inclusion-dependency application): reference
// sets drawn from the collection itself.
func TestEndToEndContainmentSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2003))
	for trial := 0; trial < 10; trial++ {
		raws := randWordCorpus(rng, 30, 10)
		dict := tokens.NewDictionary()
		coll := dataset.BuildWord(dict, raws)
		for _, alpha := range []float64{0, 0.5} {
			opts := DefaultOptions(SetContainment, Jaccard, 0.7, alpha)
			eng, err := NewEngine(coll, opts)
			if err != nil {
				t.Fatal(err)
			}
			for ri := 0; ri < len(coll.Sets); ri += 7 {
				r := &coll.Sets[ri]
				got := search(eng, r)
				want := eng.BruteForceSearch(r)
				if len(got) != len(want) {
					t.Fatalf("trial %d ref %d α=%v: %d vs %d results", trial, ri, alpha, len(got), len(want))
				}
				sort.Slice(got, func(i, j int) bool { return got[i].Set < got[j].Set })
				sort.Slice(want, func(i, j int) bool { return want[i].Set < want[j].Set })
				for i := range got {
					if got[i].Set != want[i].Set {
						t.Fatalf("trial %d ref %d: sets differ", trial, ri)
					}
				}
			}
		}
	}
}

// Degenerate inputs must not panic or diverge from the oracle.
func TestEndToEndDegenerateInputs(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, []dataset.RawSet{
		{Name: "empty", Elements: nil},
		{Name: "emptyElems", Elements: []string{"", "", ""}},
		{Name: "single", Elements: []string{"only one"}},
		{Name: "dupes", Elements: []string{"a a a", "a", "a"}},
		{Name: "normal", Elements: []string{"x y", "z w"}},
		{Name: "normal2", Elements: []string{"x y", "z w"}},
	})
	for _, metric := range []Metric{SetSimilarity, SetContainment} {
		for _, delta := range []float64{0.3, 0.7, 1.0} {
			eng, err := NewEngine(coll, DefaultOptions(metric, Jaccard, delta, 0))
			if err != nil {
				t.Fatal(err)
			}
			comparePairs(t, fmt.Sprintf("%v δ=%v", metric, delta),
				discover(eng, coll), eng.BruteForceDiscover(coll))
		}
	}
}

// δ = 1 demands perfect matchings; only exact duplicates qualify.
func TestDeltaOneOnlyExactDuplicates(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, []dataset.RawSet{
		{Name: "A", Elements: []string{"p q", "r s"}},
		{Name: "B", Elements: []string{"r s", "p q"}}, // same elements, reordered
		{Name: "C", Elements: []string{"p q", "r t"}}, // one token off
	})
	eng, err := NewEngine(coll, DefaultOptions(SetSimilarity, Jaccard, 1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	pairs := discover(eng, coll)
	if len(pairs) != 1 || pairs[0].R != 0 || pairs[0].S != 1 {
		t.Errorf("δ=1 pairs = %+v, want only (A,B)", pairs)
	}
}
