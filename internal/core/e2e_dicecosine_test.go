package core

import (
	"fmt"
	"math/rand"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/signature"
	"silkmoth/internal/tokens"
)

// TestEndToEndDiceCosineMatchesBruteForce extends the exactness matrix to
// the generalized token similarities: the Dice and Cosine signature bounds
// must never lose a related pair, for every scheme and filter combination.
func TestEndToEndDiceCosineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3001))
	schemes := []signature.Kind{signature.Weighted, signature.CombUnweighted, signature.Skyline, signature.Dichotomy}
	for trial := 0; trial < 8; trial++ {
		raws := randWordCorpus(rng, 22, 12)
		dict := tokens.NewDictionary()
		coll := dataset.BuildWord(dict, raws)
		for _, simKind := range []SimKind{Dice, Cosine} {
			for _, metric := range []Metric{SetSimilarity, SetContainment} {
				for _, delta := range []float64{0.5, 0.75, 0.9} {
					for _, alpha := range []float64{0, 0.5, 0.8} {
						for _, scheme := range schemes {
							for _, nn := range []bool{false, true} {
								opts := Options{
									Metric: metric, Sim: simKind,
									Delta: delta, Alpha: alpha,
									Scheme:      scheme,
									CheckFilter: true, NNFilter: nn,
								}
								eng, err := NewEngine(coll, opts)
								if err != nil {
									t.Fatal(err)
								}
								label := fmt.Sprintf("trial=%d %v %v δ=%v α=%v %v nn=%v",
									trial, simKind, metric, delta, alpha, scheme, nn)
								comparePairs(t, label, discover(eng, coll), eng.BruteForceDiscover(coll))
							}
						}
					}
				}
			}
		}
	}
}

// Dice and Cosine relax Jaccard, so at the same δ they can only find more
// pairs, never fewer (Jac ≤ Dice and Jac ≤ Cos pointwise).
func TestDiceCosineFindSupersetsOfJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(3002))
	for trial := 0; trial < 6; trial++ {
		raws := randWordCorpus(rng, 30, 10)
		dict := tokens.NewDictionary()
		coll := dataset.BuildWord(dict, raws)
		for _, delta := range []float64{0.5, 0.7} {
			count := func(simKind SimKind) int {
				eng, err := NewEngine(coll, DefaultOptions(SetSimilarity, simKind, delta, 0))
				if err != nil {
					t.Fatal(err)
				}
				return len(discover(eng, coll))
			}
			jac, dice, cos := count(Jaccard), count(Dice), count(Cosine)
			if dice < jac {
				t.Errorf("trial %d δ=%v: Dice found %d < Jaccard %d", trial, delta, dice, jac)
			}
			if cos < jac {
				t.Errorf("trial %d δ=%v: Cosine found %d < Jaccard %d", trial, delta, cos, jac)
			}
		}
	}
}

// Reduction must stay disabled for Dice and Cosine even when requested:
// their dual distances violate the triangle inequality.
func TestDiceCosineReductionDisabled(t *testing.T) {
	for _, simKind := range []SimKind{Dice, Cosine} {
		o, err := Options{Delta: 0.7, Sim: simKind, Reduction: true}.normalize()
		if err != nil {
			t.Fatal(err)
		}
		if o.Reduction {
			t.Errorf("%v: reduction not disabled", simKind)
		}
		if o.Q != 0 {
			t.Errorf("%v: token similarity should have q=0, got %d", simKind, o.Q)
		}
	}
}
