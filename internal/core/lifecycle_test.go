package core

import (
	"errors"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

// lifecycleColl builds a small word-token collection whose last set holds
// tokens nothing else uses, so deleting it can demonstrably shrink the
// dictionary after compaction.
func lifecycleColl() *dataset.Collection {
	dict := tokens.NewDictionary()
	return dataset.BuildWord(dict, []dataset.RawSet{
		{Name: "a", Elements: []string{"red green blue", "red blue"}},
		{Name: "b", Elements: []string{"red green blue", "green blue"}},
		{Name: "c", Elements: []string{"red green", "red blue green"}},
		{Name: "unique", Elements: []string{"zebra quagga okapi", "zebra okapi"}},
	})
}

func lifecycleOpts() Options {
	return DefaultOptions(SetSimilarity, Jaccard, 0.5, 0)
}

func searchIndices(e *Engine, r *dataset.Set) []int {
	var out []int
	for _, m := range search(e, r) {
		out = append(out, m.Set)
	}
	return out
}

func TestDeleteTombstonesAndCompactReclaims(t *testing.T) {
	coll := lifecycleColl()
	e, err := NewEngine(coll, lifecycleOpts())
	if err != nil {
		t.Fatal(err)
	}

	ref := coll.Sets[0] // "a": related to b, c, and itself
	before := searchIndices(e, &ref)
	if len(before) < 2 {
		t.Fatalf("reference should relate to several sets, got %v", before)
	}

	// Every set's tokens are retained; "zebra" is used only by set 3.
	zebra, ok := coll.Dict.Lookup("zebra")
	if !ok || coll.Dict.Refs(zebra) != 2 {
		t.Fatalf("zebra should be retained twice, got %d", coll.Dict.Refs(zebra))
	}

	if err := e.Delete(1); err != nil {
		t.Fatal(err)
	}
	if e.LiveCount() != 3 || e.Tombstones() != 1 {
		t.Fatalf("after delete: live=%d tombstones=%d", e.LiveCount(), e.Tombstones())
	}
	if e.Alive(1) {
		t.Fatal("deleted set still alive")
	}
	for _, got := range searchIndices(e, &ref) {
		if got == 1 {
			t.Fatal("search returned the deleted set")
		}
	}

	// Deleting the unique-token set releases its dictionary refs…
	if err := e.Delete(3); err != nil {
		t.Fatal(err)
	}
	if coll.Dict.Refs(zebra) != 0 {
		t.Fatalf("zebra refs after delete = %d, want 0", coll.Dict.Refs(zebra))
	}
	if coll.Dict.FreeSlots() != 0 {
		t.Fatal("slots must not be freed before compaction")
	}

	// …and compaction reclaims the slots, drops dead storage, and leaves
	// results unchanged.
	want := searchIndices(e, &ref)
	e.Compact()
	if e.Compactions() != 1 || e.Tombstones() != 0 {
		t.Fatalf("after compact: compactions=%d tombstones=%d", e.Compactions(), e.Tombstones())
	}
	if coll.Dict.FreeSlots() == 0 {
		t.Fatal("compaction should reclaim the unique tokens")
	}
	if coll.Sets[3].Elements != nil {
		t.Fatal("compaction should drop dead element storage")
	}
	got := searchIndices(e, &ref)
	if len(got) != len(want) {
		t.Fatalf("results changed across compaction: %v vs %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("results changed across compaction: %v vs %v", got, want)
		}
	}

	// Compact with no tombstones is a no-op.
	e.Compact()
	if e.Compactions() != 1 {
		t.Fatal("empty compaction should be skipped")
	}
}

func TestDeleteErrors(t *testing.T) {
	e, err := NewEngine(lifecycleColl(), lifecycleOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, 4, 100} {
		if err := e.Delete(bad); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Delete(%d) = %v, want ErrNotFound", bad, err)
		}
	}
	if err := e.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
}

func TestAutoCompactionThreshold(t *testing.T) {
	opts := lifecycleOpts()
	opts.CompactionThreshold = 0.5
	e, err := NewEngine(lifecycleColl(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(0); err != nil {
		t.Fatal(err)
	}
	if e.Compactions() != 0 {
		t.Fatal("1/4 dead should not compact at threshold 0.5")
	}
	if err := e.Delete(1); err != nil {
		t.Fatal(err)
	}
	// 2 tombstones over 2 live + 2 tombstoned = 0.5 >= threshold.
	if e.Compactions() != 1 {
		t.Fatalf("compactions = %d, want 1 (auto-triggered)", e.Compactions())
	}
	if e.Tombstones() != 0 {
		t.Fatal("tombstones should be reset by the auto compaction")
	}
}

func TestAddAfterCompactReusesDictionarySlots(t *testing.T) {
	coll := lifecycleColl()
	e, err := NewEngine(coll, lifecycleOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(3); err != nil { // the zebra/quagga/okapi set
		t.Fatal(err)
	}
	e.Compact()
	freed := coll.Dict.FreeSlots()
	if freed == 0 {
		t.Fatal("expected freed slots after compacting the unique set away")
	}
	sizeBefore := coll.Dict.Size()

	from := dataset.Append(coll, []dataset.RawSet{
		{Name: "new", Elements: []string{"walrus red", "walrus blue"}},
	})
	e.AppendSets(from)
	if coll.Dict.Size() != sizeBefore {
		t.Fatalf("dictionary grew from %d to %d; new token should reuse a freed slot",
			sizeBefore, coll.Dict.Size())
	}
	if coll.Dict.FreeSlots() != freed-1 {
		t.Fatalf("free slots = %d, want %d", coll.Dict.FreeSlots(), freed-1)
	}

	// The recycled id must resolve to fresh postings: searching for the new
	// content finds the new set and never the dead one.
	qc := dataset.BuildWord(coll.Dict, []dataset.RawSet{{Name: "q", Elements: []string{"walrus red", "walrus blue"}}})
	found := false
	for _, m := range search(e, &qc.Sets[0]) {
		if m.Set == 3 {
			t.Fatal("search returned the deleted set via a recycled token id")
		}
		if m.Set == from {
			found = true
		}
	}
	if !found {
		t.Fatal("search should find the newly added set")
	}
}
