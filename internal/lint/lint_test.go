package lint

import (
	"strings"
	"testing"
)

// TestFixturesGolden runs each analyzer over its fixture package and
// compares the diagnostics against the fixture's // want comments, in
// both directions: every want must be produced, every diagnostic wanted.
func TestFixturesGolden(t *testing.T) {
	cases := []struct {
		dir       string
		analyzers string
		wantPath  string
	}{
		{"testdata/src/hotpathfix", "hotpath", "hotpathfix"},
		{"testdata/src/internal/wal", "fsyncerr", "internal/wal"},
		{"testdata/src/internal/core", "ctxflow", "internal/core"},
		{"testdata/src/internal/server", "metricnames", "internal/server"},
	}
	for _, c := range cases {
		t.Run(c.analyzers, func(t *testing.T) {
			pkg, err := LoadDir(c.dir)
			if err != nil {
				t.Fatal(err)
			}
			if pkg.Path != c.wantPath {
				t.Fatalf("pseudo import path = %q, want %q", pkg.Path, c.wantPath)
			}
			as, err := ByName(c.analyzers)
			if err != nil {
				t.Fatal(err)
			}
			diags := Run([]*Package{pkg}, as)
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no diagnostics; the analyzer is not firing", c.dir)
			}
			for _, fail := range CheckGolden(pkg, diags) {
				t.Error(fail)
			}
		})
	}
}

// TestFixtureReadmeResolution pins that a fixture directory's own README
// shadows the module root catalog.
func TestFixtureReadmeResolution(t *testing.T) {
	pkg, err := LoadDir("testdata/src/internal/server")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(pkg.ReadmePath, "testdata/src/internal/server/README.md") {
		t.Fatalf("ReadmePath = %q, want the fixture's own README", pkg.ReadmePath)
	}
}

// TestSuppressionRequiresReason pins that a bare //silkmothlint:ignore
// without a reason does not silence anything.
func TestSuppressionRequiresReason(t *testing.T) {
	pkg, err := LoadDir("testdata/src/internal/wal")
	if err != nil {
		t.Fatal(err)
	}
	sup := suppressions(pkg)
	if len(sup) != 1 {
		t.Fatalf("fixture should carry exactly one valid suppression, got %d", len(sup))
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("hotpath,nosuch"); err == nil {
		t.Fatal("unknown analyzer name should error")
	}
	as, err := ByName("")
	if err != nil || len(as) != 4 {
		t.Fatalf("default suite = %d analyzers (%v), want 4", len(as), err)
	}
}
