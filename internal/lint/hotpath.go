package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPath enforces the zero-allocation contract on functions annotated
// //silkmoth:hotpath. The AllocsPerRun gates catch a regression after the
// fact on whichever workload a test happens to drive; this analyzer rejects
// the allocation-inducing construct itself, on every path, at review time.
//
// Flagged inside an annotated function:
//   - any call into package fmt (formatting allocates and takes ...any)
//   - sort.Slice / sort.SliceStable / sort.SliceIsSorted (reflect-based;
//     use slices.SortFunc or a concrete sort.Interface instead)
//   - string ↔ []byte / []rune conversions (each one copies)
//   - map literals, slice literals, and &T{...} pointer literals (value
//     struct literals are fine — they stay on the stack)
//   - append to a slice declared `var s []T` in the same function
//     (zero-capacity growth reallocates; pre-size with make or reuse a
//     pooled scratch buffer)
//   - closures that capture enclosing variables (the captures force a
//     heap-allocated environment; non-capturing func literals are fine)
//   - concrete non-pointer-shaped arguments passed to interface
//     parameters (boxing allocates; pointers, maps, chans, and funcs are
//     word-sized and do not)
var HotPath = &Analyzer{
	Name:    "hotpath",
	Doc:     "functions annotated //silkmoth:hotpath must avoid allocation-inducing constructs",
	Applies: func(*Package) bool { return true },
	Run:     runHotPath,
}

// hotPathMarker is the annotation that opts a function into the contract.
const hotPathMarker = "//silkmoth:hotpath"

func runHotPath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPathFunc(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func isHotPathFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotPathMarker || strings.HasPrefix(c.Text, hotPathMarker+" ") {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Locals declared `var s []T` with no initializer: appending to these
	// grows from zero capacity.
	growable := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := ds.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if _, ok := obj.Type().Underlying().(*types.Slice); ok {
					growable[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, info, n, growable)
		case *ast.UnaryExpr:
			if cl, ok := unparen(n.X).(*ast.CompositeLit); ok && n.Op.String() == "&" {
				pass.Reportf(n.Pos(), "hot path allocates: &%s{...} composite literal escapes to the heap", typeLabel(info, cl))
			}
		case *ast.CompositeLit:
			switch n.Type.(type) {
			case nil:
				// Nested literal ({{...}} inside an outer literal); the
				// outer one carries the diagnostic.
			default:
				switch info.TypeOf(n).Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "hot path allocates: map literal")
				case *types.Slice:
					pass.Reportf(n.Pos(), "hot path allocates: slice literal")
				}
			}
		case *ast.FuncLit:
			if capt := captured(info, fd, n); capt != "" {
				pass.Reportf(n.Pos(), "hot path allocates: closure captures %s", capt)
			}
		}
		return true
	})
}

func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr, growable map[types.Object]bool) {
	// Conversions: flag the string ↔ []byte/[]rune pairs, which copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			dst, src := tv.Type, info.TypeOf(call.Args[0])
			if isStringType(dst) && isByteOrRuneSlice(src) {
				pass.Reportf(call.Pos(), "hot path allocates: %s→string conversion copies", typeString(src))
			} else if isByteOrRuneSlice(dst) && isStringType(src) {
				pass.Reportf(call.Pos(), "hot path allocates: string→%s conversion copies", typeString(dst))
			}
		}
		return
	}

	// append to a zero-capacity local.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" && len(call.Args) > 0 {
				if target, ok := unparen(call.Args[0]).(*ast.Ident); ok && growable[info.Uses[target]] {
					pass.Reportf(call.Pos(), "hot path allocates: append grows %s, declared without capacity; pre-size with make or reuse a scratch buffer", target.Name)
				}
			}
			return
		}
	}

	// Banned packages/functions.
	if obj := calleeObject(info, call); obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "fmt":
			pass.Reportf(call.Pos(), "hot path allocates: fmt.%s call", obj.Name())
			return
		case "sort":
			switch obj.Name() {
			case "Slice", "SliceStable", "SliceIsSorted":
				pass.Reportf(call.Pos(), "hot path allocates: reflection-based sort.%s; use slices.SortFunc or a concrete sort.Interface", obj.Name())
				return
			}
		}
	}

	// Interface boxing at the call site.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isUntypedNil(at) {
			continue
		}
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		if pointerShaped(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path allocates: %s argument boxes into interface parameter", typeString(at))
	}
}

// captured names the first enclosing-function variable a func literal
// closes over, or "" if the literal is capture-free.
func captured(info *types.Info, fd *ast.FuncDecl, fl *ast.FuncLit) string {
	name := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured ⇔ declared inside the annotated function but outside
		// this literal. (Package-level vars fail the first test; the
		// literal's own params and locals fail the second.)
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && !(v.Pos() >= fl.Pos() && v.Pos() < fl.End()) {
			name = v.Name()
		}
		return true
	})
	return name
}

func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t fit in one word without
// boxing when stored in an interface.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func typeLabel(info *types.Info, cl *ast.CompositeLit) string {
	if t := info.TypeOf(cl); t != nil {
		return typeString(t)
	}
	return "T"
}
