package lint

import (
	"go/ast"
	"go/token"
	"os"
	"regexp"
	"strconv"
	"strings"

	"silkmoth/internal/obs"
)

// MetricNames keeps the exposition surface honest: every silkmothd_*
// metric family named in a string literal in internal/server or
// internal/obs must (1) satisfy the in-repo exposition parser's name
// grammar, (2) follow the repo's all-lowercase convention, and (3) appear
// in the README metric catalog. The observability e2e test proves the
// endpoint parses; this analyzer proves the docs and the code name the
// same families, so a metric cannot be added or renamed without its
// catalog row.
var MetricNames = &Analyzer{
	Name: "metricnames",
	Doc:  "silkmothd_* family names must parse, be lowercase, and appear in the README catalog",
	Applies: func(pkg *Package) bool {
		return hasSuffixPath(pkg.Path, "internal/server") ||
			hasSuffixPath(pkg.Path, "internal/obs")
	},
	Run: runMetricNames,
}

// metricNameRE captures a whole silkmothd_-prefixed token, deliberately
// wider than the legal name grammar (it stops only at exposition-format
// delimiters) so that a malformed name like silkmothd_bad-name is captured
// whole and rejected by ValidMetricName rather than silently truncated at
// the first illegal character.
var metricNameRE = regexp.MustCompile(`silkmothd_[^\s"{}()%,;=|]*`)

// catalogNameRE extracts documented family names from the README; the
// catalog side only ever lists legal names.
var catalogNameRE = regexp.MustCompile(`silkmothd_[a-zA-Z0-9_:]*`)

func runMetricNames(pass *Pass) {
	catalog, catalogErr := readCatalog(pass.Pkg.ReadmePath)
	reportedMissing := make(map[string]bool)

	inspectFiles(pass.Pkg, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		val, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		for _, name := range metricNameRE.FindAllString(val, -1) {
			if !obs.ValidMetricName(name) {
				pass.Reportf(lit.Pos(), "metric family %q fails the exposition parser's name rules", name)
				continue
			}
			if name != strings.ToLower(name) {
				pass.Reportf(lit.Pos(), "metric family %q breaks the all-lowercase naming convention", name)
				continue
			}
			if catalogErr != nil {
				if !reportedMissing["\x00catalog"] {
					reportedMissing["\x00catalog"] = true
					pass.Reportf(lit.Pos(), "cannot check metric catalog: %v", catalogErr)
				}
				continue
			}
			if !catalog[name] && !reportedMissing[name] {
				reportedMissing[name] = true
				pass.Reportf(lit.Pos(), "metric family %q is not in the README metric catalog (%s)", name, pass.Pkg.ReadmePath)
			}
		}
		return true
	})
}

// readCatalog extracts the set of documented family names: every
// silkmothd_* identifier mentioned anywhere in the README.
func readCatalog(path string) (map[string]bool, error) {
	if path == "" {
		return nil, os.ErrNotExist
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	catalog := make(map[string]bool)
	for _, name := range catalogNameRE.FindAllString(string(data), -1) {
		catalog[name] = true
	}
	return catalog, nil
}
