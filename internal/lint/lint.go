// Package lint is SilkMoth's repo-invariant analyzer suite: custom static
// analyzers over go/parser + go/types that mechanically enforce contracts
// the dynamic harnesses (AllocsPerRun gates, crash-injection enumeration,
// metrics-scrape conformance) can only catch after the fact. The suite is
// dependency-free by design — packages are loaded through `go list -export`
// and type-checked with the standard library's export-data importer, so the
// linter builds with the same zero third-party imports as the engine.
//
// The analyzers (run by cmd/silkmothlint, gated in CI):
//
//	hotpath      functions annotated //silkmoth:hotpath must be free of
//	             allocation-inducing constructs (fmt, reflection sort.Slice,
//	             string↔[]byte/[]rune conversions, map/slice literals,
//	             zero-capacity append growth, capturing closures, interface
//	             boxing at call sites)
//	fsyncerr     internal/wal durability calls (Write/Sync/Close/Rename/
//	             Truncate/SyncDir) must not discard their errors
//	ctxflow      no context.Background()/TODO() inside internal/core,
//	             internal/shard, internal/server; exported query
//	             entrypoints must thread a context.Context
//	metricnames  every silkmothd_* metric family named in internal/server /
//	             internal/obs must pass the in-repo exposition parser's
//	             name rules and appear in the README metric catalog
//
// A diagnostic on a line that genuinely cannot follow the rule is silenced
// with a trailing comment of the form
//
//	//silkmothlint:ignore <analyzer> <reason>
//
// where the reason is mandatory: suppressions are grep-able design notes,
// not mute buttons.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	Name string
	// Doc is the one-line rule statement shown by `silkmothlint -list`.
	Doc string
	// Applies reports whether the analyzer's scope includes the package.
	// Scope is matched on import-path suffixes so fixture packages under
	// testdata/src/ can claim in-scope paths (e.g. internal/wal).
	Applies func(pkg *Package) bool
	Run     func(pass *Pass)
}

// Pass is one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{HotPath, FsyncErr, CtxFlow, MetricNames}
}

// ByName resolves a comma-separated analyzer list ("hotpath,ctxflow").
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run applies each in-scope analyzer to each package, filters suppressed
// findings, and returns the remainder ordered by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := suppressions(pkg)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &pkgDiags}
			a.Run(pass)
		}
		for _, d := range pkgDiags {
			if sup[supKey{file: d.Pos.Filename, line: d.Pos.Line, analyzer: d.Analyzer}] {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

type supKey struct {
	file     string
	line     int
	analyzer string
}

// suppressions collects //silkmothlint:ignore comments. A suppression
// silences one analyzer on the comment's own line and requires a reason.
func suppressions(pkg *Package) map[supKey]bool {
	sup := make(map[supKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//silkmothlint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// No reason given: leave the finding standing so the
					// bare suppression is itself visible in the run.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sup[supKey{file: pos.Filename, line: pos.Line, analyzer: fields[0]}] = true
			}
		}
	}
	return sup
}

// hasSuffixPath reports whether path ends with the slash-separated suffix
// (e.g. "silkmoth/internal/wal" matches suffix "internal/wal", while
// "silkmoth/internal/wal/failfs" does not).
func hasSuffixPath(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// inspectFiles walks every non-test file of the package.
func inspectFiles(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}
