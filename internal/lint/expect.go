package lint

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
)

// expectation is one `// want "regex"` declared in a fixture, pinned to
// the line the comment sits on.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// CheckGolden compares diagnostics against the fixture's `// want`
// comments — the same convention as x/tools' analysistest: a comment of
// the form
//
//	code // want `regex` `another regex`
//
// declares that its line produces exactly one diagnostic per pattern,
// each matching its regex. The return value lists every mismatch in both
// directions (a diagnostic no want expects, a want no diagnostic
// satisfies); empty means the run matches the golden expectations.
func CheckGolden(pkg *Package, diags []Diagnostic) []string {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := cutWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(rest, -1) {
					pat, err := unquoteWant(q)
					if err != nil {
						return []string{fmt.Sprintf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return []string{fmt.Sprintf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)}
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}

	var fails []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			fails = append(fails, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			fails = append(fails, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw))
		}
	}
	sort.Strings(fails)
	return fails
}

func cutWant(comment string) (string, bool) {
	const marker = "// want "
	for i := 0; i+len(marker) <= len(comment); i++ {
		if comment[i:i+len(marker)] == marker {
			return comment[i+len(marker):], true
		}
	}
	return "", false
}

func unquoteWant(q string) (string, error) {
	if q[0] == '`' {
		return q[1 : len(q)-1], nil
	}
	return strconv.Unquote(q)
}
