package lint

import (
	"go/ast"
	"go/types"
)

// FsyncErr enforces the WAL's durability contract at the call-site level:
// inside internal/wal, every error from a Write/Sync/Close/Rename/Truncate/
// SyncDir call must flow somewhere — not be dropped in an expression
// statement, a bare defer, or a blank assignment. The crash-injection
// harness proves recovery works when failures surface; this analyzer makes
// sure they surface. (internal/wal/failfs is out of scope: it is the fault
// injector, not a durability path.)
var FsyncErr = &Analyzer{
	Name:    "fsyncerr",
	Doc:     "internal/wal must check every Write/Sync/Close/Rename/Truncate/SyncDir error",
	Applies: func(pkg *Package) bool { return hasSuffixPath(pkg.Path, "internal/wal") },
	Run:     runFsyncErr,
}

var durabilityMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"Sync":        true,
	"Close":       true,
	"Rename":      true,
	"Truncate":    true,
	"SyncDir":     true,
}

func runFsyncErr(pass *Pass) {
	info := pass.Pkg.Info
	inspectFiles(pass.Pkg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				reportDiscarded(pass, info, call, "discarded")
			}
		case *ast.DeferStmt:
			reportDiscarded(pass, info, n.Call, "discarded by defer; close explicitly and merge the error")
		case *ast.GoStmt:
			reportDiscarded(pass, info, n.Call, "discarded by go statement")
		case *ast.AssignStmt:
			checkBlankAssign(pass, info, n)
		}
		return true
	})
}

// reportDiscarded flags call if it is a durability call whose error result
// the surrounding statement throws away.
func reportDiscarded(pass *Pass, info *types.Info, call *ast.CallExpr, how string) {
	if name, ok := durabilityCall(info, call); ok {
		pass.Reportf(call.Pos(), "durability error %s: %s returns an error that must be checked", how, name)
	}
}

// checkBlankAssign flags `_ = f.Sync()` and the multi-value form where the
// error position lands on the blank identifier.
func checkBlankAssign(pass *Pass, info *types.Info, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := durabilityCall(info, call)
		if !ok {
			return
		}
		sig, _ := info.TypeOf(call.Fun).(*types.Signature)
		if sig == nil {
			return
		}
		for i := 0; i < sig.Results().Len() && i < len(as.Lhs); i++ {
			if isErrorType(sig.Results().At(i).Type()) && isBlank(as.Lhs[i]) {
				pass.Reportf(call.Pos(), "durability error assigned to _: %s returns an error that must be checked", name)
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		if call, ok := unparen(rhs).(*ast.CallExpr); ok {
			if name, ok := durabilityCall(info, call); ok {
				pass.Reportf(call.Pos(), "durability error assigned to _: %s returns an error that must be checked", name)
			}
		}
	}
}

// durabilityCall reports whether call invokes one of the durability methods
// and returns an error.
func durabilityCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := calleeObject(info, call)
	if obj == nil || !durabilityMethods[obj.Name()] {
		return "", false
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return "", false
	}
	return obj.Name(), true
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
