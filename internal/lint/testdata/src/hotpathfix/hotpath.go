// Package hotpathfix is the hotpath analyzer's fixture: each annotated
// function trips one rule, and the unannotated/compliant functions pin the
// constructs the analyzer must accept.
package hotpathfix

import (
	"fmt"
	"sort"
)

type item struct{ k, v int }

func sink(x any) int { return 0 }

//silkmoth:hotpath
func literals(s string) int {
	m := map[int]int{1: 2} // want `hot path allocates: map literal`
	ys := []int{1, 2, 3}   // want `hot path allocates: slice literal`
	p := &item{k: 1}       // want `hot path allocates: &hotpathfix\.item\{\.\.\.\} composite literal escapes to the heap`
	return len(m) + len(ys) + p.k
}

//silkmoth:hotpath
func conversions(s string) string {
	b := []byte(s)   // want `hot path allocates: string→\[\]byte conversion copies`
	return string(b) // want `hot path allocates: \[\]byte→string conversion copies`
}

//silkmoth:hotpath
func growth(xs []int) int {
	var acc []int            // zero-capacity declaration...
	acc = append(acc, xs...) // want `hot path allocates: append grows acc, declared without capacity`
	return len(acc)
}

//silkmoth:hotpath
func formatting(v int) {
	fmt.Println(v) // want `hot path allocates: fmt\.Println call`
}

//silkmoth:hotpath
func reflectionSort(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `hot path allocates: reflection-based sort\.Slice` `hot path allocates: closure captures xs`
}

//silkmoth:hotpath
func boxes(v int) int {
	return sink(v) // want `hot path allocates: int argument boxes into interface parameter`
}

// compliant stays diagnostic-free: value struct literals, pre-sized append,
// non-capturing func literals, and pointer-shaped interface arguments are
// all allowed on the hot path.
//
//silkmoth:hotpath
func compliant(xs []int) int {
	it := item{k: 1, v: 2}
	buf := make([]int, 0, len(xs))
	buf = append(buf, xs...)
	cmp := func(a, b int) int { return a - b }
	return it.k + len(buf) + cmp(1, 2) + sink(&it)
}

// unannotated functions are out of contract: none of this is flagged.
func unannotated(s string) []byte {
	var out []byte
	out = append(out, []byte(s)...)
	fmt.Println(len(out))
	return out
}
