// Package server is the metricnames fixture; the catalog it is checked
// against is this directory's own README.md.
package server

const good = "silkmothd_good_total"

const undocumented = "silkmothd_rogue_total" // want `metric family "silkmothd_rogue_total" is not in the README metric catalog`

const uppercase = "silkmothd_BadCase_total" // want `metric family "silkmothd_BadCase_total" breaks the all-lowercase naming convention`

const malformed = "silkmothd_bad-name_total" // want `metric family "silkmothd_bad-name_total" fails the exposition parser's name rules`

// Exposition-format text is scanned too, including HELP/TYPE headers.
func expo() string {
	return "# HELP silkmothd_documented_seconds latency\nsilkmothd_documented_seconds 1\n"
}
