// Package wal is the fsyncerr fixture. Its directory sits under
// testdata/src/internal/wal, so LoadDir assigns the pseudo import path
// internal/wal and the analyzer's scope rule treats it as the real WAL.
package wal

import "os"

func rotate(f *os.File, dir string) error {
	f.Sync()                      // want `durability error discarded: Sync returns an error that must be checked`
	_ = f.Close()                 // want `durability error assigned to _: Close returns an error that must be checked`
	defer f.Close()               // want `durability error discarded by defer`
	os.Rename(dir+"/a", dir+"/b") // want `durability error discarded: Rename returns an error that must be checked`
	n, _ := f.Write([]byte("x"))  // want `durability error assigned to _: Write returns an error that must be checked`
	_ = n
	if err := f.Sync(); err != nil { // checked: not flagged
		return err
	}
	f.Close() //silkmothlint:ignore fsyncerr fixture proves suppression silences a finding
	return nil
}
