// Package core is the ctxflow fixture; its pseudo import path
// internal/core places it in the analyzer's scope.
package core

import "context"

type Engine struct{}

type Match struct{}

func (e *Engine) refresh() {
	ctx := context.Background() // want `context\.Background\(\) mints an uncancellable root context`
	_ = ctx
	_ = context.TODO() // want `context\.TODO\(\) mints an uncancellable root context`
}

func (e *Engine) Search(r int) []Match { // want `exported query entrypoint Search must take a context\.Context`
	return nil
}

func (e *Engine) SearchContext(ctx context.Context, r int) ([]Match, error) {
	return nil, ctx.Err()
}

func Discover(refs []int) []Match { // want `exported query entrypoint Discover must take a context\.Context`
	return nil
}

type inner struct{}

// Methods on unexported types are not entrypoints; not flagged.
func (in *inner) SearchLocal(r int) []Match { return nil }
