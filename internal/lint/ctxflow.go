package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces cancellation plumbing in the engine's long-running
// layers: internal/core, internal/shard, and internal/server must never
// mint their own root context with context.Background() or context.TODO()
// (a query that synthesizes a root context is a query the server cannot
// cancel or deadline), and every exported Search*/Discover* entrypoint in
// those packages must accept a context.Context so callers have somewhere
// to thread one.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "internal/{core,shard,server} must thread contexts, never mint Background/TODO",
	Applies: func(pkg *Package) bool {
		return hasSuffixPath(pkg.Path, "internal/core") ||
			hasSuffixPath(pkg.Path, "internal/shard") ||
			hasSuffixPath(pkg.Path, "internal/server")
	},
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	info := pass.Pkg.Info
	inspectFiles(pass.Pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(info, call)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
			return true
		}
		if obj.Name() == "Background" || obj.Name() == "TODO" {
			pass.Reportf(call.Pos(), "context.%s() mints an uncancellable root context; thread the caller's context instead", obj.Name())
		}
		return true
	})

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			name := fd.Name.Name
			if !strings.HasPrefix(name, "Search") && !strings.HasPrefix(name, "Discover") {
				continue
			}
			if fd.Recv != nil && !receiverExported(fd) {
				continue
			}
			if !hasContextParam(info, fd) {
				pass.Reportf(fd.Name.Pos(), "exported query entrypoint %s must take a context.Context", name)
			}
		}
	}
}

func receiverExported(fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func hasContextParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}
