package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. Only
// non-test files are loaded: the invariants the suite enforces are about
// production code, and test files are free to allocate, discard errors,
// and use context.Background().
type Package struct {
	// Path is the import path. Fixture packages loaded with LoadDir get a
	// pseudo-path derived from their location under testdata/src/, so the
	// analyzers' path-suffix scoping applies to them unchanged.
	Path     string
	Dir      string
	Fset     *token.FileSet
	Files    []*ast.File
	TypesPkg *types.Package
	Info     *types.Info
	// ReadmePath is the metric catalog the metricnames analyzer checks
	// against: the package directory's own README.md if present (fixtures),
	// otherwise the module root's.
	ReadmePath string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path, Dir string }
}

// Load resolves patterns ("./...", "silkmoth/internal/wal") to the module's
// packages and type-checks them without any dependency beyond the go tool:
// `go list -deps -export` surfaces the build cache's export-data files and
// importer.ForCompiler reads dependency types straight from them.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range targets {
		pkg, err := typeCheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		if p.Module.Dir != "" {
			pkg.ReadmePath = filepath.Join(p.Module.Dir, "README.md")
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads a single directory of Go files as one package — the fixture
// path: testdata trees are invisible to the go tool, so the files are
// enumerated directly and dependency types come from a lazy per-import
// `go list -export` lookup. The package's pseudo import path is whatever
// follows "testdata/src/" in the directory path, which is what lets a
// fixture stand in for, say, internal/wal.
func LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}
	sort.Strings(goFiles)

	path := filepath.ToSlash(abs)
	if _, after, ok := strings.Cut(path, "/testdata/src/"); ok {
		path = after
	} else {
		path = filepath.Base(abs)
	}

	fset := token.NewFileSet()
	exports := make(map[string]string)
	imp := importer.ForCompiler(fset, "gc", func(ipath string) (io.ReadCloser, error) {
		f, ok := exports[ipath]
		if !ok {
			out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", ipath).Output()
			if err != nil {
				return nil, fmt.Errorf("no export data for %q: %v", ipath, err)
			}
			f = strings.TrimSpace(string(out))
			if f == "" {
				return nil, fmt.Errorf("no export data for %q", ipath)
			}
			exports[ipath] = f
		}
		return os.Open(f)
	})

	pkg, err := typeCheck(fset, imp, path, abs, goFiles)
	if err != nil {
		return nil, err
	}
	pkg.ReadmePath = readmeFor(abs)
	return pkg, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{
		Path:     path,
		Dir:      dir,
		Fset:     fset,
		Files:    files,
		TypesPkg: tpkg,
		Info:     info,
	}, nil
}

// readmeFor finds the metric catalog that governs dir: its own README.md if
// it ships one, else the nearest README.md walking up to the filesystem root.
func readmeFor(dir string) string {
	for d := dir; ; {
		p := filepath.Join(d, "README.md")
		if _, err := os.Stat(p); err == nil {
			return p
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}
