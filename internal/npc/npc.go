// Package npc makes the paper's appendix executable: the NP-completeness of
// optimal valid signature selection (Theorem 2) is proved by reducing
// 3-CNF-SAT to an inverse-prime subset sum problem (Lemma 3) and that to the
// decision version of signature selection (Theorem 6). This package
// constructs both reductions with exact rational arithmetic, so tests can
// verify the equivalences end-to-end on small instances — including the
// appendix's own worked example (Tables 4-6).
package npc

import (
	"fmt"
	"math/big"
)

// Literal is a 3-CNF literal: a 1-based variable index, negative when
// negated.
type Literal int

// Clause is a disjunction of exactly three literals.
type Clause [3]Literal

// Formula is a 3-CNF formula over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Satisfiable reports whether the formula has a satisfying assignment, by
// exhaustive search (test-oracle use only; exponential).
func (f Formula) Satisfiable() (bool, []bool) {
	n := f.NumVars
	for mask := 0; mask < 1<<n; mask++ {
		assign := make([]bool, n+1)
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<(v-1)) != 0
		}
		if f.eval(assign) {
			return true, assign
		}
	}
	return false, nil
}

func (f Formula) eval(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, lit := range c {
			v := int(lit)
			if v > 0 && assign[v] || v < 0 && !assign[-v] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Primes returns the first n primes starting from 7 (the paper's p_i is the
// (i+3)rd prime: p_1 = 7, p_2 = 11, ...).
func Primes(n int) []int64 {
	var out []int64
	cand := int64(7)
	for len(out) < n {
		if isPrime(cand) {
			out = append(out, cand)
		}
		cand += 2
	}
	return out
}

func isPrime(n int64) bool {
	if n < 2 {
		return false
	}
	for d := int64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// SubsetSum is an inverse-prime subset sum instance ⟨A, s, l⟩: every number
// of A is a sum of reciprocals of distinct primes from P = {p_1..p_l}, and
// the question is whether some subset of A sums exactly to S.
type SubsetSum struct {
	A []*big.Rat
	S *big.Rat
	L int
	// PrimeSets[i] records which primes compose A[i], for inspection.
	PrimeSets [][]int64
}

// Solvable reports whether some subset of A sums to S, by exhaustive search
// (exponential; test-oracle use only), returning the subset's indices.
func (p SubsetSum) Solvable() (bool, []int) {
	n := len(p.A)
	for mask := 0; mask < 1<<n; mask++ {
		sum := new(big.Rat)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sum.Add(sum, p.A[i])
			}
		}
		if sum.Cmp(p.S) == 0 {
			var idx []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					idx = append(idx, i)
				}
			}
			return true, idx
		}
	}
	return false, nil
}

// ReduceSATToSubsetSum builds the Lemma 3 instance for a 3-CNF formula:
// l = n+m primes; a "true" number t_i (1/p_i plus 1/p_{n+j} for each clause
// c_j containing x_i) and a "false" number f_i (the same with ¬x_i) per
// variable; two padding numbers u_j = v_j = 1/p_{n+j} per clause; and target
// S = Σ_{i≤n} 1/p_i + 3·Σ_{j} 1/p_{n+j}.
func ReduceSATToSubsetSum(f Formula) SubsetSum {
	n, m := f.NumVars, len(f.Clauses)
	primes := Primes(n + m)
	inv := func(p int64) *big.Rat { return new(big.Rat).SetFrac64(1, p) }

	var a []*big.Rat
	var primeSets [][]int64
	addNumber := func(ps []int64) {
		sum := new(big.Rat)
		for _, p := range ps {
			sum.Add(sum, inv(p))
		}
		a = append(a, sum)
		primeSets = append(primeSets, ps)
	}

	for v := 1; v <= n; v++ {
		tSet := []int64{primes[v-1]}
		fSet := []int64{primes[v-1]}
		for j, c := range f.Clauses {
			// Deduplicate repeated literals within a clause: each
			// number must be a sum over a *set* of primes.
			inT, inF := false, false
			for _, lit := range c {
				inT = inT || int(lit) == v
				inF = inF || int(lit) == -v
			}
			if inT {
				tSet = append(tSet, primes[n+j])
			}
			if inF {
				fSet = append(fSet, primes[n+j])
			}
		}
		addNumber(tSet)
		addNumber(fSet)
	}
	for j := 0; j < m; j++ {
		addNumber([]int64{primes[n+j]}) // u_j
		addNumber([]int64{primes[n+j]}) // v_j
	}

	s := new(big.Rat)
	for v := 1; v <= n; v++ {
		s.Add(s, inv(primes[v-1]))
	}
	three := new(big.Rat).SetInt64(3)
	for j := 0; j < m; j++ {
		s.Add(s, new(big.Rat).Mul(three, inv(primes[n+j])))
	}
	return SubsetSum{A: a, S: s, L: n + m, PrimeSets: primeSets}
}

// SignatureDecision is the Theorem 6 instance ⟨I, R, δ, k⟩: a reference set
// R of elements, per-token inverted list lengths, and the question of
// whether some valid signature (weighted scheme, Definition 5) has total
// cost at most K.
type SignatureDecision struct {
	// Elements[e] lists the candidate token ids of element e; every
	// element also carries DummyPad[e] dummy tokens whose inverted lists
	// are arbitrarily long (they can never profitably join a signature).
	Elements [][]int
	// ElemSize[e] is |r_e| including dummies.
	ElemSize []int
	// Cost[t] is |I[t]| for candidate token t.
	Cost []*big.Rat
	// Delta is the relatedness threshold δ.
	Delta *big.Rat
	// K is the cost budget.
	K *big.Rat
}

// ReduceSubsetSumToSignature builds the Theorem 6 instance: one token t_i
// per number a_i with |I[t_i]| = a_i·Πp; one element r_i^p of size p per
// prime p ∈ P_i, containing t_i and p-1 dummies; K = S·Πp; and
// δ = 1 - (S - ε)/Σ|P_i|.
func ReduceSubsetSumToSignature(p SubsetSum) SignatureDecision {
	prodP := new(big.Rat).SetInt64(1)
	primes := Primes(p.L)
	for _, pr := range primes {
		prodP.Mul(prodP, new(big.Rat).SetInt64(pr))
	}

	var elements [][]int
	var elemSize []int
	totalElems := 0
	cost := make([]*big.Rat, len(p.A))
	for i, ai := range p.A {
		cost[i] = new(big.Rat).Mul(ai, prodP)
		for _, pr := range p.PrimeSets[i] {
			elements = append(elements, []int{i})
			elemSize = append(elemSize, int(pr))
			totalElems++
		}
	}

	k := new(big.Rat).Mul(p.S, prodP)

	// δ = 1 - (S - ε)/|R| with ε below the smallest representable gap:
	// sums of 1/p over l primes differ by at least 1/Πp, so ε = 1/(2Πp).
	eps := new(big.Rat).Inv(new(big.Rat).Mul(new(big.Rat).SetInt64(2), prodP))
	sMinusEps := new(big.Rat).Sub(p.S, eps)
	nR := new(big.Rat).SetInt64(int64(totalElems))
	delta := new(big.Rat).Sub(new(big.Rat).SetInt64(1), new(big.Rat).Quo(sMinusEps, nR))

	return SignatureDecision{
		Elements: elements,
		ElemSize: elemSize,
		Cost:     cost,
		Delta:    delta,
		K:        k,
	}
}

// Decide answers the decision problem by exhaustive search over candidate
// token subsets (dummy tokens never help: their cost is unbounded), using
// exact rational arithmetic throughout. Test-oracle use only; exponential.
func (d SignatureDecision) Decide() (bool, []int) {
	numTokens := len(d.Cost)
	nR := int64(len(d.Elements))
	theta := new(big.Rat).Mul(d.Delta, new(big.Rat).SetInt64(nR))
	for mask := 0; mask < 1<<numTokens; mask++ {
		cost := new(big.Rat)
		for t := 0; t < numTokens; t++ {
			if mask&(1<<t) != 0 {
				cost.Add(cost, d.Cost[t])
			}
		}
		if cost.Cmp(d.K) > 0 {
			continue
		}
		// Validity: Σ (|r_e| - |k_e|)/|r_e| < θ, where |k_e| = 1 when
		// the element's token is selected (dummies never selected).
		sum := new(big.Rat)
		for e, toks := range d.Elements {
			size := int64(d.ElemSize[e])
			kept := int64(0)
			for _, t := range toks {
				if mask&(1<<t) != 0 {
					kept++
				}
			}
			sum.Add(sum, new(big.Rat).SetFrac64(size-kept, size))
		}
		if sum.Cmp(theta) < 0 {
			var idx []int
			for t := 0; t < numTokens; t++ {
				if mask&(1<<t) != 0 {
					idx = append(idx, t)
				}
			}
			return true, idx
		}
	}
	return false, nil
}

// PaperExampleFormula returns the appendix's worked example, reconstructed
// from Table 4: c1 = (x1 ∨ x2 ∨ x3), c2 = (¬x1 ∨ ¬x2 ∨ x3),
// c3 = (¬x1 ∨ x2 ∨ ¬x3), c4 = (x1 ∨ ¬x2 ∨ x3). The all-true assignment
// satisfies it, matching the appendix's chosen subset (Table 6).
func PaperExampleFormula() Formula {
	return Formula{
		NumVars: 3,
		Clauses: []Clause{
			{1, 2, 3},
			{-1, -2, 3},
			{-1, 2, -3},
			{1, -2, 3},
		},
	}
}

// String renders a formula in conventional notation.
func (f Formula) String() string {
	out := ""
	for j, c := range f.Clauses {
		if j > 0 {
			out += " ∧ "
		}
		out += "("
		for i, lit := range c {
			if i > 0 {
				out += " ∨ "
			}
			if lit < 0 {
				out += fmt.Sprintf("¬x%d", -lit)
			} else {
				out += fmt.Sprintf("x%d", lit)
			}
		}
		out += ")"
	}
	return out
}
