package npc

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"
)

func TestPrimes(t *testing.T) {
	got := Primes(7)
	want := []int64{7, 11, 13, 17, 19, 23, 29}
	for i, p := range want {
		if got[i] != p {
			t.Fatalf("Primes[%d] = %d, want %d", i, got[i], p)
		}
	}
}

// The appendix's worked example: n = 3, m = 4, satisfied by all-true.
func TestPaperExampleFormula(t *testing.T) {
	f := PaperExampleFormula()
	sat, assign := f.Satisfiable()
	if !sat {
		t.Fatal("paper example must be satisfiable")
	}
	if !assign[1] || !assign[2] || !assign[3] {
		// All-true satisfies it (the appendix's chosen assignment);
		// exhaustive search scans masks in order so all-true (mask 7)
		// may not be first. Check it directly instead.
		all := []bool{false, true, true, true}
		if !f.eval(all) {
			t.Error("all-true must satisfy the paper's formula")
		}
	}
	if !strings.Contains(f.String(), "¬x1") {
		t.Errorf("String() = %q", f.String())
	}
}

// Lemma 3 on the worked example: the numbers of Tables 4-5 and target s
// come out exactly, and the instance is solvable (Table 6's subset).
func TestReduceSATToSubsetSumPaperExample(t *testing.T) {
	f := PaperExampleFormula()
	p := ReduceSATToSubsetSum(f)
	if p.L != 7 {
		t.Fatalf("l = %d, want 7", p.L)
	}
	if len(p.A) != 2*3+2*4 {
		t.Fatalf("|A| = %d, want 14", len(p.A))
	}
	// t1 = 1/7 + 1/17 + 1/29 (x1 ∈ c1, c4).
	want := new(big.Rat)
	want.Add(want, big.NewRat(1, 7))
	want.Add(want, big.NewRat(1, 17))
	want.Add(want, big.NewRat(1, 29))
	if p.A[0].Cmp(want) != 0 {
		t.Errorf("t1 = %v, want %v", p.A[0], want)
	}
	// f1 = 1/7 + 1/19 + 1/23 (¬x1 ∈ c2, c3).
	want = new(big.Rat)
	want.Add(want, big.NewRat(1, 7))
	want.Add(want, big.NewRat(1, 19))
	want.Add(want, big.NewRat(1, 23))
	if p.A[1].Cmp(want) != 0 {
		t.Errorf("f1 = %v, want %v", p.A[1], want)
	}
	// s = 1/7 + 1/11 + 1/13 + 3(1/17 + 1/19 + 1/23 + 1/29).
	s := new(big.Rat)
	for _, d := range []int64{7, 11, 13} {
		s.Add(s, big.NewRat(1, d))
	}
	for _, d := range []int64{17, 19, 23, 29} {
		s.Add(s, big.NewRat(3, d))
	}
	if p.S.Cmp(s) != 0 {
		t.Errorf("s = %v, want %v", p.S, s)
	}
	ok, subset := p.Solvable()
	if !ok {
		t.Fatal("paper instance must be solvable")
	}
	if len(subset) == 0 {
		t.Fatal("empty solving subset")
	}
}

// The Lemma 3 equivalence: φ satisfiable ⟺ the subset sum instance is
// solvable, across random small formulas.
func TestSATSubsetSumEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(2) + 2 // 2-3 variables
		m := rng.Intn(3) + 1 // 1-3 clauses
		f := Formula{NumVars: n}
		for j := 0; j < m; j++ {
			var c Clause
			for i := range c {
				v := rng.Intn(n) + 1
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[i] = Literal(v)
			}
			f.Clauses = append(f.Clauses, c)
		}
		sat, _ := f.Satisfiable()
		p := ReduceSATToSubsetSum(f)
		solvable, _ := p.Solvable()
		if sat != solvable {
			t.Fatalf("equivalence broken for %s: sat=%v solvable=%v", f, sat, solvable)
		}
	}
}

// A tiny unsatisfiable formula must produce an unsolvable instance.
func TestUnsatFormula(t *testing.T) {
	f := Formula{
		NumVars: 1,
		Clauses: []Clause{
			{1, 1, 1},
			{-1, -1, -1},
		},
	}
	if sat, _ := f.Satisfiable(); sat {
		t.Fatal("formula should be unsatisfiable")
	}
	p := ReduceSATToSubsetSum(f)
	if ok, _ := p.Solvable(); ok {
		t.Error("reduction of an UNSAT formula must be unsolvable")
	}
}

// Theorem 6's equivalence: the subset sum instance is solvable ⟺ the
// signature decision instance is a yes-instance.
func TestSubsetSumSignatureEquivalence(t *testing.T) {
	cases := []Formula{
		PaperExampleFormula(),
		{NumVars: 1, Clauses: []Clause{{1, 1, 1}, {-1, -1, -1}}}, // UNSAT
		{NumVars: 2, Clauses: []Clause{{1, 2, 2}}},               // SAT
		{NumVars: 2, Clauses: []Clause{{1, -2, -2}, {-1, 2, 2}}}, // SAT
	}
	for ci, f := range cases {
		p := ReduceSATToSubsetSum(f)
		if len(p.A) > 16 {
			t.Fatalf("case %d too large for the oracle", ci)
		}
		solvable, _ := p.Solvable()
		d := ReduceSubsetSumToSignature(p)
		yes, tokens := d.Decide()
		if yes != solvable {
			t.Fatalf("case %d (%s): subset-sum %v but signature decision %v",
				ci, f, solvable, yes)
		}
		if yes && len(tokens) == 0 && p.S.Sign() != 0 {
			t.Fatalf("case %d: yes-instance with empty signature", ci)
		}
	}
}

// The full chain on the paper's example: SAT ⟹ subset sum ⟹ cheap valid
// signature; and the decision's selected tokens sum to exactly k.
func TestFullChainPaperExample(t *testing.T) {
	f := PaperExampleFormula()
	p := ReduceSATToSubsetSum(f)
	d := ReduceSubsetSumToSignature(p)
	yes, tokens := d.Decide()
	if !yes {
		t.Fatal("paper example must be a yes-instance")
	}
	cost := new(big.Rat)
	for _, tk := range tokens {
		cost.Add(cost, d.Cost[tk])
	}
	if cost.Cmp(d.K) > 0 {
		t.Errorf("selected cost %v exceeds k %v", cost, d.K)
	}
	// The chosen numbers sum exactly to s (the equivalence's witness).
	sum := new(big.Rat)
	for _, tk := range tokens {
		sum.Add(sum, p.A[tk])
	}
	if sum.Cmp(p.S) != 0 {
		t.Errorf("witness subset sums to %v, want %v", sum, p.S)
	}
}

func TestIsPrime(t *testing.T) {
	if isPrime(1) || isPrime(0) || isPrime(9) {
		t.Error("composite accepted")
	}
	if !isPrime(2) || !isPrime(31) {
		t.Error("prime rejected")
	}
}
