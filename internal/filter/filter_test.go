package filter

import (
	"math"
	"sort"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/paperdata"
	"silkmoth/internal/signature"
	"silkmoth/internal/sim"
	"silkmoth/internal/tokens"
)

const pruneSlack = 1e-6

// paperSetup builds Table 2's collection, index, reference set, and the
// signature of Examples 6/8/9: K_R = {{t8}, {t9,t10}, {t11,t12}} with
// bounds 0.8, 0.6, 0.6 (SumBound = 2.0 < θ = 2.1).
func paperSetup(t *testing.T) (*dataset.Set, *signature.Signature, *index.Inverted, *dataset.Collection) {
	t.Helper()
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, paperdata.CollectionS())
	ix := index.Build(coll)
	refColl := dataset.BuildWord(dict, []dataset.RawSet{paperdata.ReferenceR()})
	r := &refColl.Sets[0]

	id := func(label string) tokens.ID {
		v, ok := dict.Lookup(paperdata.TokenName(label))
		if !ok {
			t.Fatalf("token %s missing", label)
		}
		return v
	}
	sig := &signature.Signature{
		Elements: []signature.ElemSig{
			{Tokens: []tokens.ID{id("t8")}, Bound: 0.8},
			{Tokens: tokens.SortUnique([]tokens.ID{id("t9"), id("t10")}), Bound: 0.6},
			{Tokens: tokens.SortUnique([]tokens.ID{id("t11"), id("t12")}), Bound: 0.6},
		},
		SumBound: 2.0,
		Valid:    true,
	}
	return r, sig, ix, coll
}

func jacPhi(r, s *dataset.Element) float64 {
	return sim.JaccardSorted(r.Tokens, s.Tokens)
}

func candidateNames(coll *dataset.Collection, cs []*Candidate) []string {
	var names []string
	for _, c := range cs {
		names = append(names, coll.Sets[c.Set].Name)
	}
	sort.Strings(names)
	return names
}

// Example 3: the signature tokens produce candidates S2, S3, S4 (never S1).
func TestCandidateSelectionPaperExample3(t *testing.T) {
	r, sig, ix, coll := paperSetup(t)
	cands, _ := Collect(r, sig, ix, jacPhi, Options{CheckFilter: false})
	got := candidateNames(coll, cands)
	want := []string{"S2", "S3", "S4"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("candidates = %v, want %v", got, want)
	}
}

// Example 8: the check filter prunes S2 (both probed pairs fall below their
// bounds) and keeps S3 and S4.
func TestCheckFilterPaperExample8(t *testing.T) {
	r, sig, ix, coll := paperSetup(t)
	theta := 0.7 * 3
	cands, _ := Collect(r, sig, ix, jacPhi, Options{
		CheckFilter:    true,
		PruneThreshold: theta - pruneSlack,
	})
	got := candidateNames(coll, cands)
	if len(got) != 2 || got[0] != "S3" || got[1] != "S4" {
		t.Fatalf("after check filter = %v, want [S3 S4]", got)
	}
	// Verify the reuse data on S3: r1 passed with similarity 5/6.
	for _, c := range cands {
		if coll.Sets[c.Set].Name != "S3" {
			continue
		}
		if !c.Passed[0] || math.Abs(c.BestSim[0]-5.0/6.0) > 1e-12 {
			t.Errorf("S3 r1: passed=%v best=%v, want true, 5/6", c.Passed[0], c.BestSim[0])
		}
		if c.Passed[1] {
			t.Error("S3 r2 should not pass (its signature tokens miss S3)")
		}
	}
}

// Example 9: the nearest-neighbor filter prunes S3 — the estimate
// 5/6 + 0.125 + 0.6 < 2.1 — and terminates before searching r3.
func TestNNFilterPaperExample9(t *testing.T) {
	r, sig, ix, coll := paperSetup(t)
	theta := 0.7 * 3
	cands, _ := Collect(r, sig, ix, jacPhi, Options{
		CheckFilter:    true,
		PruneThreshold: theta - pruneSlack,
	})
	floors := NoShareFloors(r, sig, dataset.ModeWord, 0)

	searches := 0
	counting := func(re, se *dataset.Element) float64 {
		searches++
		return jacPhi(re, se)
	}
	ns := NewNNSearcher(ix, counting)

	for _, c := range cands {
		name := coll.Sets[c.Set].Name
		keep := NNFilter(r, sig, c, ns, floors, theta-pruneSlack)
		switch name {
		case "S3":
			if keep {
				t.Error("NN filter should prune S3")
			}
		case "S4":
			if !keep {
				t.Error("NN filter should keep S4")
			}
		}
	}
	// Early termination: for S3 only r2 is searched (2 probes: s31 via t4,
	// s33 via t5); r3's search never happens. S4 needs one search for r3.
	if searches > 4 {
		t.Errorf("NN search probed %d element pairs; early termination broken", searches)
	}
}

func TestNNSearcherFindsTrueNearestNeighbor(t *testing.T) {
	r, _, ix, coll := paperSetup(t)
	ns := NewNNSearcher(ix, jacPhi)
	// Exhaustively verify Search against direct max for every (element, set).
	for i := range r.Elements {
		for set := range coll.Sets {
			got := ns.Search(&r.Elements[i], int32(set))
			want := 0.0
			for j := range coll.Sets[set].Elements {
				if s := jacPhi(&r.Elements[i], &coll.Sets[set].Elements[j]); s > want {
					want = s
				}
			}
			// Under Jaccard, elements sharing no token have similarity
			// 0, so index-based search is exhaustive.
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("NNSearch(r%d, S%d) = %v, want %v", i+1, set+1, got, want)
			}
		}
	}
}

func TestNNSearcherDedupesAcrossTokens(t *testing.T) {
	r, _, ix, _ := paperSetup(t)
	calls := 0
	ns := NewNNSearcher(ix, func(re, se *dataset.Element) float64 {
		calls++
		return jacPhi(re, se)
	})
	// r1 shares many tokens with S3's elements; each element must be
	// evaluated exactly once despite appearing in several token lists.
	ns.Search(&r.Elements[0], 2)
	if calls > 3 {
		t.Errorf("NN search evaluated %d similarities for a 3-element set", calls)
	}
}

func TestCollectAcceptPredicate(t *testing.T) {
	r, sig, ix, coll := paperSetup(t)
	calls := make(map[int32]int)
	cands, _ := Collect(r, sig, ix, jacPhi, Options{
		CheckFilter: false,
		Accept: func(set int32) bool {
			calls[set]++
			return coll.Sets[set].Name != "S2"
		},
	})
	got := candidateNames(coll, cands)
	if len(got) != 2 || got[0] != "S3" || got[1] != "S4" {
		t.Errorf("accept-filtered candidates = %v", got)
	}
	for set, n := range calls {
		if n != 1 {
			t.Errorf("Accept called %d times for set %d, want 1", n, set)
		}
	}
}

func TestCollectEmptySignature(t *testing.T) {
	r, _, ix, _ := paperSetup(t)
	sig := &signature.Signature{
		Elements: make([]signature.ElemSig, len(r.Elements)),
		Valid:    true,
	}
	cands, _ := Collect(r, sig, ix, jacPhi, Options{CheckFilter: true, PruneThreshold: 2})
	if len(cands) != 0 {
		t.Errorf("empty signature should yield no candidates, got %d", len(cands))
	}
}

// A signature whose SumBound exceeds the pruning threshold (the
// CombUnweighted case) must keep candidates even when nothing passes the
// check: pruning on unsound totals would lose related sets.
func TestCheckFilterRespectsSumBound(t *testing.T) {
	r, sig, ix, _ := paperSetup(t)
	big := &signature.Signature{
		Elements: sig.Elements,
		SumBound: 3.0, // ≥ θ: the bound argument proves nothing
		Valid:    true,
	}
	theta := 0.7 * 3
	withBig, _ := Collect(r, big, ix, jacPhi, Options{CheckFilter: true, PruneThreshold: theta - pruneSlack})
	noCheck, _ := Collect(r, big, ix, jacPhi, Options{CheckFilter: false})
	if len(withBig) != len(noCheck) {
		t.Errorf("check filter pruned despite SumBound ≥ θ: %d vs %d", len(withBig), len(noCheck))
	}
}

func TestNoShareFloorsWordModeZero(t *testing.T) {
	r, sig, _, _ := paperSetup(t)
	floors := NoShareFloors(r, sig, dataset.ModeWord, 0)
	for i, f := range floors {
		if f != 0 {
			t.Errorf("word-mode floor[%d] = %v, want 0", i, f)
		}
	}
}

func TestNoShareFloorsQGram(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildQGram(dict, []dataset.RawSet{
		{Name: "S", Elements: []string{"abcdef"}},
	}, 2)
	ix := index.Build(coll)
	_ = ix
	refColl := dataset.BuildQGram(dict, []dataset.RawSet{
		{Name: "R", Elements: []string{"abcdef"}}, // |r|=6, 3 chunks
	}, 2)
	r := &refColl.Sets[0]
	sig := &signature.Signature{
		Elements: []signature.ElemSig{{Tokens: r.Elements[0].Chunks[:1], Bound: 6.0 / 7.0}},
		SumBound: 6.0 / 7.0,
		Valid:    true,
	}
	// α = 0: floor = |r|/(|r|+⌈|r|/q⌉) = 6/9, capped at Bound.
	floors := NoShareFloors(r, sig, dataset.ModeQGram, 0)
	if math.Abs(floors[0]-6.0/9.0) > 1e-12 {
		t.Errorf("floor = %v, want 2/3", floors[0])
	}
	// α = 0.8 > 2/3: the floor collapses to 0.
	floors = NoShareFloors(r, sig, dataset.ModeQGram, 0.8)
	if floors[0] != 0 {
		t.Errorf("thresholded floor = %v, want 0", floors[0])
	}
	// The floor never exceeds the element bound.
	sig.Elements[0].Bound = 0.5
	floors = NoShareFloors(r, sig, dataset.ModeQGram, 0)
	if floors[0] != 0.5 {
		t.Errorf("capped floor = %v, want 0.5", floors[0])
	}
}

// Property-style soundness check: every set the NN filter prunes must truly
// score below θ under maximum matching (exhaustive comparison on Table 2).
func TestNNFilterSoundnessOnPaperData(t *testing.T) {
	r, sig, ix, coll := paperSetup(t)
	theta := 0.7 * 3
	cands, _ := Collect(r, sig, ix, jacPhi, Options{CheckFilter: true, PruneThreshold: theta - pruneSlack})
	floors := NoShareFloors(r, sig, dataset.ModeWord, 0)
	ns := NewNNSearcher(ix, jacPhi)
	for _, c := range cands {
		if NNFilter(r, sig, c, ns, floors, theta-pruneSlack) {
			continue
		}
		// Pruned: its true matching score must fall below θ.
		score := exactScore(r, &coll.Sets[c.Set])
		if score >= theta {
			t.Errorf("NN filter pruned %s whose true score %v ≥ θ", coll.Sets[c.Set].Name, score)
		}
	}
}

// exactScore computes the true maximum matching score via the n³ matcher.
func exactScore(r, s *dataset.Set) float64 {
	w := make([][]float64, len(r.Elements))
	for i := range w {
		w[i] = make([]float64, len(s.Elements))
		for j := range w[i] {
			w[i][j] = jacPhi(&r.Elements[i], &s.Elements[j])
		}
	}
	best := 0.0
	var rec func(i int, used map[int]bool, acc float64)
	rec = func(i int, used map[int]bool, acc float64) {
		if i == len(w) {
			if acc > best {
				best = acc
			}
			return
		}
		rec(i+1, used, acc)
		for j := range w[i] {
			if used[j] {
				continue
			}
			used[j] = true
			rec(i+1, used, acc+w[i][j])
			used[j] = false
		}
	}
	rec(0, map[int]bool{}, 0)
	return best
}
