package filter

import (
	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/signature"
)

// NNSearcher finds nearest neighbors of reference elements inside one
// candidate set via the inverted index (§5.2, adapting the prefix-filter
// technique of Xiao et al.): it walks the reference element's tokens,
// locates the candidate set's postings by binary search, and evaluates φ_α
// against each distinct candidate element found. It is not safe for
// concurrent use; create one per worker.
type NNSearcher struct {
	ix  *index.Inverted
	phi SimFunc
	// visited implements O(1) per-element dedup across calls: an element
	// is visited when visited[elem] == epoch.
	visited []uint32
	epoch   uint32
	// scratch is the reusable decode buffer SetRangeInto fills when the
	// probed range must come off a compressed container, keeping per-probe
	// work allocation-free in steady state.
	scratch []index.Posting
}

// NewNNSearcher returns a searcher over the given index and similarity.
func NewNNSearcher(ix *index.Inverted, phi SimFunc) *NNSearcher {
	return &NNSearcher{ix: ix, phi: phi}
}

// Search returns the largest φ_α between r and any element of candidate set
// `set` that shares at least one token with r. Elements sharing no token are
// not probed; callers must account for them with a no-share floor.
func (s *NNSearcher) Search(r *dataset.Element, set int32) float64 {
	coll := s.ix.Collection()
	elems := coll.Sets[set].Elements
	if len(s.visited) < len(elems) {
		s.visited = append(s.visited, make([]uint32, len(elems)-len(s.visited))...)
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale marks could collide, reset
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
	best := 0.0
	for _, t := range r.Tokens {
		var rng []index.Posting
		rng, s.scratch = s.ix.SetRangeInto(t, set, s.scratch)
		for _, p := range rng {
			if s.visited[p.Elem] == s.epoch {
				continue
			}
			s.visited[p.Elem] = s.epoch
			if score := s.phi(r, &elems[p.Elem]); score > best {
				best = score
			}
		}
	}
	return best
}

// NNFilter applies the nearest-neighbor filter (Algorithm 2) to one
// candidate. It starts from the signature's bound sum, substitutes exact
// nearest-neighbor similarities — reusing the check filter's computations
// for passed elements — and terminates early once the running upper bound
// drops below pruneThreshold. It returns true when the candidate survives.
//
// noShareFloor[i] is a sound upper bound on φ_α(r_i, s) for candidate
// elements sharing no token with r_i: 0 under Jaccard, the chunk-count bound
// |r|/(|r|+⌈|r|/q⌉) (thresholded by α and capped at Bound_i) under edit
// similarity.
func NNFilter(r *dataset.Set, sig *signature.Signature, c *Candidate, ns *NNSearcher, noShareFloor []float64, pruneThreshold float64) bool {
	total := sig.SumBound
	// Computation reuse: for passed elements the check filter's best
	// similarity is exactly the nearest-neighbor similarity (§5.2).
	for i, passed := range c.Passed {
		if passed {
			total += c.BestSim[i] - sig.Elements[i].Bound
		}
	}
	if total < pruneThreshold {
		return false
	}
	// Remaining elements: replace each bound by the true nearest-neighbor
	// similarity, terminating as soon as the estimate falls below the
	// threshold (Algorithm 2 lines 6-9).
	for i := range c.Passed {
		if c.Passed[i] {
			continue
		}
		esig := &sig.Elements[i]
		if esig.Bound == 0 {
			continue // bound already tight: nothing to gain
		}
		nn := ns.Search(&r.Elements[i], c.Set)
		if floor := noShareFloor[i]; floor > nn {
			nn = floor
		}
		if nn > esig.Bound {
			nn = esig.Bound // bounds are sound; never increase the estimate
		}
		total += nn - esig.Bound
		if total < pruneThreshold {
			return false
		}
	}
	return true
}

// NoShareFloors precomputes NNFilter's per-element no-share floors for a
// reference set. Under ModeWord elements sharing no token have Jaccard 0.
// Under ModeQGram an element sharing no q-gram with r_i has at least
// ⌈|r_i|/q⌉ mismatching q-chunks, so Eds ≤ |r_i|/(|r_i|+⌈|r_i|/q⌉)
// (and NEds ≤ Eds, §7.1); a value below α collapses to 0.
func NoShareFloors(r *dataset.Set, sig *signature.Signature, mode dataset.TokenMode, alpha float64) []float64 {
	return AppendNoShareFloors(nil, r, sig, mode, alpha)
}

// AppendNoShareFloors is NoShareFloors into a caller-owned buffer: dst is
// resized (reusing its capacity) and returned, so per-pass workers compute
// floors without allocating.
func AppendNoShareFloors(dst []float64, r *dataset.Set, sig *signature.Signature, mode dataset.TokenMode, alpha float64) []float64 {
	n := len(r.Elements)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	floors := dst[:n]
	for i := range floors {
		floors[i] = 0
	}
	if mode == dataset.ModeWord {
		return floors
	}
	for i := range r.Elements {
		el := &r.Elements[i]
		if el.Length == 0 || len(el.Chunks) == 0 {
			continue
		}
		raw := float64(el.Length) / float64(el.Length+len(el.Chunks))
		if raw < alpha {
			raw = 0
		}
		if b := sig.Elements[i].Bound; raw > b {
			raw = b
		}
		floors[i] = raw
	}
	return floors
}
