// Package filter implements SilkMoth's candidate selection and refinement
// stages (paper §5): the check filter of Algorithm 1 and the nearest-
// neighbor filter of Algorithm 2, including the efficient index-based
// nearest-neighbor search, computation reuse, and early termination.
//
// All pruning in this package is conservative: a candidate is dropped only
// when a sound upper bound on its maximum matching score sits below the
// pruning threshold supplied by the caller, so no truly related set is ever
// lost (the engine's exactness guarantee).
package filter

import (
	"sync"

	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/signature"
)

// SimFunc computes φ_α between a reference element and a candidate element.
type SimFunc func(r, s *dataset.Element) float64

// Candidate carries one candidate set through the refinement stages along
// with the check-filter state reused by the nearest-neighbor filter
// (the "computation reuse" of §5.2).
type Candidate struct {
	// Set indexes the candidate in the indexed collection.
	Set int32
	// BestSim[i] is the highest φ_α seen between reference element i and
	// any candidate element sharing one of i's signature tokens, or -1
	// when no such element was probed.
	BestSim []float64
	// Passed[i] reports whether element i passed the check filter:
	// BestSim[i] ≥ Bound_i and BestSim[i] > 0. For passed elements
	// BestSim[i] is exactly the nearest-neighbor similarity (§5.2).
	Passed []bool
	// NumPassed counts true entries of Passed.
	NumPassed int
}

// Options configures candidate collection.
type Options struct {
	// Accept, when non-nil, is consulted once per distinct set id;
	// sets that fail it never become candidates (self-join ordering and
	// size filters live here).
	Accept func(set int32) bool
	// CheckFilter enables the φ-bound test of Algorithm 1 lines 5-6.
	// When disabled, every accepted set sharing a signature token
	// becomes a candidate and no similarities are computed.
	CheckFilter bool
	// PruneThreshold is the score bound below which a candidate may be
	// discarded (θ minus the engine's pruning slack).
	PruneThreshold float64
}

// Collector runs candidate selection over one inverted index, reusing its
// per-set scratch across search passes (discovery runs one pass per
// reference set, so per-pass map allocations would dominate). Candidate
// values are pooled per set slot: a slot's Candidate (and its BestSim /
// Passed backing) is allocated the first time the set is ever touched and
// recycled on every later pass, so steady-state collection performs no
// per-candidate heap allocations. The slice Collect returns is likewise
// reused — its contents are valid only until the next Collect call. A
// Collector is not safe for concurrent use; create one per worker.
//
// Retention is capped: a slot whose set has not been touched for trimAge
// passes has its pooled Candidate released at the next trim boundary
// (every trimInterval passes), so a long-lived worker's arena tracks its
// recent working set instead of every set the collection ever matched —
// O(recently touched), not O(collection). Slots a steady workload touches
// every pass are never trimmed, keeping the steady-state zero-allocation
// budget intact.
type Collector struct {
	ix *index.Inverted
	// Per-set scratch, epoch-stamped so clearing is O(1) per pass.
	seen     []uint32 // last epoch the set was touched
	rejected []bool   // valid when seen[set] == epoch
	cand     []*Candidate
	epoch    uint32
	// order records touched set ids so output order is deterministic
	// (first-touch order) and iteration avoids scanning all sets.
	order []int32
	// out is the reused survivor slice handed to the caller.
	out []*Candidate
}

// Trim policy: every trimInterval passes, pooled Candidates for slots
// untouched in the last trimAge passes are released to the garbage
// collector. The interval amortizes the O(collection) sweep to O(1) per
// pass; the age keeps any slot in a worker's recent working set resident.
const (
	trimInterval = 256
	trimAge      = 256
)

// NewCollector returns a collector over the given index.
func NewCollector(ix *index.Inverted) *Collector {
	n := len(ix.Collection().Sets)
	return &Collector{
		ix:       ix,
		seen:     make([]uint32, n),
		rejected: make([]bool, n),
		cand:     make([]*Candidate, n),
	}
}

// Collect implements candidate selection plus the check filter
// (Algorithm 1). It probes the inverted index with every signature token,
// computes φ_α for the probed ⟨reference element, candidate element⟩ pairs
// (at most once per pair), and returns the surviving candidates.
//
// A candidate is dropped only when no pair passed its element bound test
// and the signature's SumBound proves every such set unrelated
// (SumBound < PruneThreshold). Signatures whose SumBound exceeds θ — the
// CombUnweighted baseline — therefore keep all matching candidates, which
// reproduces the baseline's larger candidate sets.
//
// The second result is the raw candidate count: accepted sets sharing at
// least one signature token, before the check filter's rejection.
//
//silkmoth:hotpath
func (cl *Collector) Collect(r *dataset.Set, sig *signature.Signature, phi SimFunc, opts Options) ([]*Candidate, int) {
	coll := cl.ix.Collection()
	if n := len(coll.Sets); n > len(cl.seen) {
		// The collection grew (incremental appends); grow the scratch.
		cl.seen = append(cl.seen, make([]uint32, n-len(cl.seen))...)
		cl.rejected = append(cl.rejected, make([]bool, n-len(cl.rejected))...)
		cl.cand = append(cl.cand, make([]*Candidate, n-len(cl.cand))...)
	}
	cl.maybeTrim()
	cl.epoch++
	if cl.epoch == 0 { // wrapped: reset stamps
		for i := range cl.seen {
			cl.seen[i] = 0
		}
		cl.epoch = 1
	}
	cl.order = cl.order[:0]
	n := len(r.Elements)

	for i := range sig.Elements {
		esig := &sig.Elements[i]
		if len(esig.Tokens) == 0 {
			continue
		}
		rElem := &r.Elements[i]
		for _, t := range esig.Tokens {
			// Cursor instead of List: a compressed index streams huge cold
			// lists straight off the container bytes instead of
			// materializing them for one pass.
			cur := cl.ix.Cursor(t)
			for {
				p, ok := cur.Next()
				if !ok {
					break
				}
				var c *Candidate
				if cl.seen[p.Set] == cl.epoch {
					if cl.rejected[p.Set] {
						continue
					}
					c = cl.cand[p.Set]
				} else {
					cl.seen[p.Set] = cl.epoch
					if opts.Accept != nil && !opts.Accept(p.Set) {
						cl.rejected[p.Set] = true
						continue
					}
					cl.rejected[p.Set] = false
					c = cl.candidateFor(p.Set, n)
					cl.order = append(cl.order, p.Set)
				}
				if !opts.CheckFilter {
					continue
				}
				sElem := &coll.Sets[p.Set].Elements[p.Elem]
				score := phi(rElem, sElem)
				if score > c.BestSim[i] {
					c.BestSim[i] = score
					if !c.Passed[i] && score > 0 && score >= esig.Bound {
						c.Passed[i] = true
						c.NumPassed++
					}
				}
			}
		}
	}

	cl.out = cl.out[:0]
	for _, set := range cl.order {
		c := cl.cand[set]
		if opts.CheckFilter && c.NumPassed == 0 && sig.SumBound < opts.PruneThreshold {
			continue // Algorithm 1's rejection: bounds prove it unrelated
		}
		cl.out = append(cl.out, c)
	}
	return cl.out, len(cl.order)
}

// maybeTrim releases pooled Candidates for cold slots at trim boundaries.
// It runs before the pass's epoch bump, so the previous pass's survivors —
// which the caller consumed before starting this pass — are the youngest
// slots and always survive. After an epoch wrap every stamp was reset to
// 0, which makes all slots look cold at the next boundary; that one-time
// full release is the cap working as intended.
//
//silkmoth:hotpath
func (cl *Collector) maybeTrim() {
	if cl.epoch == 0 || cl.epoch%trimInterval != 0 {
		return
	}
	for set, c := range cl.cand {
		if c != nil && cl.epoch-cl.seen[set] > trimAge {
			cl.cand[set] = nil
		}
	}
}

// candidateFor returns the pooled Candidate for a set slot, allocating it
// on the slot's first-ever touch and resetting its per-pass state (BestSim
// to -1, Passed to false) sized to the reference's n elements.
func (cl *Collector) candidateFor(set int32, n int) *Candidate {
	c := cl.cand[set]
	if c == nil {
		c = &Candidate{Set: set}
		cl.cand[set] = c
	}
	if cap(c.BestSim) < n {
		c.BestSim = make([]float64, n)
		c.Passed = make([]bool, n)
	}
	c.BestSim = c.BestSim[:n]
	c.Passed = c.Passed[:n]
	for i := 0; i < n; i++ {
		c.BestSim[i] = -1
		c.Passed[i] = false
	}
	c.NumPassed = 0
	return c
}

// collectorPool recycles whole Collectors for the single-shot Collect form.
// Entries are bound to the index they were built over; a pooled collector
// whose index differs from the caller's is discarded and rebuilt.
var collectorPool sync.Pool

// Collect is the single-shot convenience form of Collector.Collect: it
// borrows a pooled Collector (the collection logic lives only on the
// Collector; this function owns no duplicate of it) and deep-copies the
// survivors out of the collector's scratch, so the returned candidates stay
// valid indefinitely — unlike Collector.Collect's reused buffers.
func Collect(r *dataset.Set, sig *signature.Signature, ix *index.Inverted, phi SimFunc, opts Options) ([]*Candidate, int) {
	cl, _ := collectorPool.Get().(*Collector)
	if cl == nil || cl.ix != ix {
		cl = NewCollector(ix)
	}
	cands, raw := cl.Collect(r, sig, phi, opts)
	out := make([]*Candidate, len(cands))
	for i, c := range cands {
		cp := &Candidate{
			Set:       c.Set,
			BestSim:   append([]float64(nil), c.BestSim...),
			Passed:    append([]bool(nil), c.Passed...),
			NumPassed: c.NumPassed,
		}
		out[i] = cp
	}
	collectorPool.Put(cl)
	return out, raw
}
