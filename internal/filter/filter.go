// Package filter implements SilkMoth's candidate selection and refinement
// stages (paper §5): the check filter of Algorithm 1 and the nearest-
// neighbor filter of Algorithm 2, including the efficient index-based
// nearest-neighbor search, computation reuse, and early termination.
//
// All pruning in this package is conservative: a candidate is dropped only
// when a sound upper bound on its maximum matching score sits below the
// pruning threshold supplied by the caller, so no truly related set is ever
// lost (the engine's exactness guarantee).
package filter

import (
	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/signature"
)

// SimFunc computes φ_α between a reference element and a candidate element.
type SimFunc func(r, s *dataset.Element) float64

// Candidate carries one candidate set through the refinement stages along
// with the check-filter state reused by the nearest-neighbor filter
// (the "computation reuse" of §5.2).
type Candidate struct {
	// Set indexes the candidate in the indexed collection.
	Set int32
	// BestSim[i] is the highest φ_α seen between reference element i and
	// any candidate element sharing one of i's signature tokens, or -1
	// when no such element was probed.
	BestSim []float64
	// Passed[i] reports whether element i passed the check filter:
	// BestSim[i] ≥ Bound_i and BestSim[i] > 0. For passed elements
	// BestSim[i] is exactly the nearest-neighbor similarity (§5.2).
	Passed []bool
	// NumPassed counts true entries of Passed.
	NumPassed int
}

// Options configures candidate collection.
type Options struct {
	// Accept, when non-nil, is consulted once per distinct set id;
	// sets that fail it never become candidates (self-join ordering and
	// size filters live here).
	Accept func(set int32) bool
	// CheckFilter enables the φ-bound test of Algorithm 1 lines 5-6.
	// When disabled, every accepted set sharing a signature token
	// becomes a candidate and no similarities are computed.
	CheckFilter bool
	// PruneThreshold is the score bound below which a candidate may be
	// discarded (θ minus the engine's pruning slack).
	PruneThreshold float64
}

// Collector runs candidate selection over one inverted index, reusing its
// per-set scratch across search passes (discovery runs one pass per
// reference set, so per-pass map allocations would dominate). It is not
// safe for concurrent use; create one per worker.
type Collector struct {
	ix *index.Inverted
	// Per-set scratch, epoch-stamped so clearing is O(1) per pass.
	seen     []uint32 // last epoch the set was touched
	rejected []bool   // valid when seen[set] == epoch
	cand     []*Candidate
	epoch    uint32
	// order records touched set ids so output order is deterministic
	// (first-touch order) and iteration avoids scanning all sets.
	order []int32
}

// NewCollector returns a collector over the given index.
func NewCollector(ix *index.Inverted) *Collector {
	n := len(ix.Collection().Sets)
	return &Collector{
		ix:       ix,
		seen:     make([]uint32, n),
		rejected: make([]bool, n),
		cand:     make([]*Candidate, n),
	}
}

// Collect implements candidate selection plus the check filter
// (Algorithm 1). It probes the inverted index with every signature token,
// computes φ_α for the probed ⟨reference element, candidate element⟩ pairs
// (at most once per pair), and returns the surviving candidates.
//
// A candidate is dropped only when no pair passed its element bound test
// and the signature's SumBound proves every such set unrelated
// (SumBound < PruneThreshold). Signatures whose SumBound exceeds θ — the
// CombUnweighted baseline — therefore keep all matching candidates, which
// reproduces the baseline's larger candidate sets.
//
// The second result is the raw candidate count: accepted sets sharing at
// least one signature token, before the check filter's rejection.
func (cl *Collector) Collect(r *dataset.Set, sig *signature.Signature, phi SimFunc, opts Options) ([]*Candidate, int) {
	coll := cl.ix.Collection()
	if n := len(coll.Sets); n > len(cl.seen) {
		// The collection grew (incremental appends); grow the scratch.
		cl.seen = append(cl.seen, make([]uint32, n-len(cl.seen))...)
		cl.rejected = append(cl.rejected, make([]bool, n-len(cl.rejected))...)
		cl.cand = append(cl.cand, make([]*Candidate, n-len(cl.cand))...)
	}
	cl.epoch++
	if cl.epoch == 0 { // wrapped: reset stamps
		for i := range cl.seen {
			cl.seen[i] = 0
		}
		cl.epoch = 1
	}
	cl.order = cl.order[:0]
	n := len(r.Elements)

	for i := range sig.Elements {
		esig := &sig.Elements[i]
		if len(esig.Tokens) == 0 {
			continue
		}
		rElem := &r.Elements[i]
		for _, t := range esig.Tokens {
			for _, p := range cl.ix.List(t) {
				var c *Candidate
				if cl.seen[p.Set] == cl.epoch {
					if cl.rejected[p.Set] {
						continue
					}
					c = cl.cand[p.Set]
				} else {
					cl.seen[p.Set] = cl.epoch
					if opts.Accept != nil && !opts.Accept(p.Set) {
						cl.rejected[p.Set] = true
						continue
					}
					cl.rejected[p.Set] = false
					c = newCandidate(p.Set, n)
					cl.cand[p.Set] = c
					cl.order = append(cl.order, p.Set)
				}
				if !opts.CheckFilter {
					continue
				}
				sElem := &coll.Sets[p.Set].Elements[p.Elem]
				score := phi(rElem, sElem)
				if score > c.BestSim[i] {
					c.BestSim[i] = score
					if !c.Passed[i] && score > 0 && score >= esig.Bound {
						c.Passed[i] = true
						c.NumPassed++
					}
				}
			}
		}
	}

	out := make([]*Candidate, 0, len(cl.order))
	for _, set := range cl.order {
		c := cl.cand[set]
		cl.cand[set] = nil // release for GC; Candidate escapes to caller
		if opts.CheckFilter && c.NumPassed == 0 && sig.SumBound < opts.PruneThreshold {
			continue // Algorithm 1's rejection: bounds prove it unrelated
		}
		out = append(out, c)
	}
	return out, len(cl.order)
}

// Collect is the single-shot convenience form of Collector.Collect.
func Collect(r *dataset.Set, sig *signature.Signature, ix *index.Inverted, phi SimFunc, opts Options) ([]*Candidate, int) {
	return NewCollector(ix).Collect(r, sig, phi, opts)
}

func newCandidate(set int32, n int) *Candidate {
	c := &Candidate{
		Set:     set,
		BestSim: make([]float64, n),
		Passed:  make([]bool, n),
	}
	for i := range c.BestSim {
		c.BestSim[i] = -1
	}
	return c
}
