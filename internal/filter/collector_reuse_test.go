package filter

import (
	"testing"

	"silkmoth/internal/raceflag"
)

// TestCollectorReuseMatchesFresh runs the same collection repeatedly on one
// Collector and checks each pass against a fresh Collector: pooled
// Candidate slots must be fully reset per pass (BestSim, Passed, NumPassed)
// and the reused output slice must carry no stale survivors.
func TestCollectorReuseMatchesFresh(t *testing.T) {
	r, sig, ix, _ := paperSetup(t)
	opts := Options{CheckFilter: true, PruneThreshold: 2.1 - pruneSlack}
	reused := NewCollector(ix)
	for pass := 0; pass < 5; pass++ {
		got, gotRaw := reused.Collect(r, sig, jacPhi, opts)
		want, wantRaw := NewCollector(ix).Collect(r, sig, jacPhi, opts)
		if gotRaw != wantRaw || len(got) != len(want) {
			t.Fatalf("pass %d: reused collector (%d cands, raw %d) != fresh (%d, %d)",
				pass, len(got), gotRaw, len(want), wantRaw)
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Set != w.Set || g.NumPassed != w.NumPassed {
				t.Fatalf("pass %d cand %d: got set=%d passed=%d, want set=%d passed=%d",
					pass, i, g.Set, g.NumPassed, w.Set, w.NumPassed)
			}
			for x := range g.BestSim {
				if g.BestSim[x] != w.BestSim[x] || g.Passed[x] != w.Passed[x] {
					t.Fatalf("pass %d cand %d elem %d: got (%v,%v), want (%v,%v)",
						pass, i, x, g.BestSim[x], g.Passed[x], w.BestSim[x], w.Passed[x])
				}
			}
		}
	}
}

// TestCollectorSteadyStateAllocs pins candidate collection at zero
// steady-state allocations: every Candidate and its backing slices must be
// recycled across passes.
func TestCollectorSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; budgets hold only in plain builds")
	}
	r, sig, ix, _ := paperSetup(t)
	opts := Options{CheckFilter: true, PruneThreshold: 2.1 - pruneSlack}
	cl := NewCollector(ix)
	cl.Collect(r, sig, jacPhi, opts)
	cl.Collect(r, sig, jacPhi, opts)
	if got := testing.AllocsPerRun(100, func() { cl.Collect(r, sig, jacPhi, opts) }); got > 0 {
		t.Errorf("steady-state Collect allocates %.1f objects, want 0", got)
	}
}

// TestFreeCollectCopiesOut checks the pooled single-shot form: results from
// consecutive calls must not alias each other (the pooled collector's
// scratch is recycled between them).
func TestFreeCollectCopiesOut(t *testing.T) {
	r, sig, ix, _ := paperSetup(t)
	opts := Options{CheckFilter: true, PruneThreshold: 2.1 - pruneSlack}
	first, _ := Collect(r, sig, ix, jacPhi, opts)
	snapshot := make([]Candidate, len(first))
	for i, c := range first {
		snapshot[i] = Candidate{Set: c.Set, NumPassed: c.NumPassed,
			BestSim: append([]float64(nil), c.BestSim...),
			Passed:  append([]bool(nil), c.Passed...)}
	}
	Collect(r, sig, ix, jacPhi, Options{CheckFilter: false}) // would stomp shared scratch
	for i, c := range first {
		w := &snapshot[i]
		if c.Set != w.Set || c.NumPassed != w.NumPassed {
			t.Fatalf("cand %d mutated by later Collect: got set=%d passed=%d, want set=%d passed=%d",
				i, c.Set, c.NumPassed, w.Set, w.NumPassed)
		}
		for x := range c.BestSim {
			if c.BestSim[x] != w.BestSim[x] || c.Passed[x] != w.Passed[x] {
				t.Fatalf("cand %d elem %d mutated by later Collect", i, x)
			}
		}
	}
}
