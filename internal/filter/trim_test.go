package filter

import (
	"fmt"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/raceflag"
	"silkmoth/internal/signature"
	"silkmoth/internal/tokens"
)

// trimSetup builds a collection where one "hot" set and many "cold" sets
// are reachable through disjoint tokens, plus a reference whose broad
// signature touches every set and whose narrow signature touches only the
// hot one.
func trimSetup(t *testing.T, cold int) (r *dataset.Set, broad, narrow *signature.Signature, ix *index.Inverted) {
	t.Helper()
	dict := tokens.NewDictionary()
	raws := []dataset.RawSet{{Name: "hot", Elements: []string{"hot"}}}
	for i := 0; i < cold; i++ {
		raws = append(raws, dataset.RawSet{
			Name:     fmt.Sprintf("cold%d", i),
			Elements: []string{fmt.Sprintf("tok%d", i)},
		})
	}
	coll := dataset.BuildWord(dict, raws)
	ix = index.Build(coll)

	var allTokens []string
	for i := 0; i < cold; i++ {
		allTokens = append(allTokens, fmt.Sprintf("tok%d", i))
	}
	refColl := dataset.BuildQuery(dict, []dataset.RawSet{{
		Name:     "ref",
		Elements: []string{"hot", join(allTokens)},
	}}, coll.Mode, coll.Q)
	r = &refColl.Sets[0]

	id := func(name string) tokens.ID {
		v, ok := dict.Lookup(name)
		if !ok {
			t.Fatalf("token %q missing", name)
		}
		return v
	}
	hotSig := signature.ElemSig{Tokens: []tokens.ID{id("hot")}}
	coldIDs := make([]tokens.ID, 0, cold)
	for i := 0; i < cold; i++ {
		coldIDs = append(coldIDs, id(fmt.Sprintf("tok%d", i)))
	}
	broad = &signature.Signature{
		Elements: []signature.ElemSig{hotSig, {Tokens: tokens.SortUnique(coldIDs)}},
		Valid:    true,
	}
	narrow = &signature.Signature{
		Elements: []signature.ElemSig{hotSig, {}},
		Valid:    true,
	}
	return r, broad, narrow, ix
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}

// retainedSlots counts slots still holding a pooled Candidate.
func retainedSlots(cl *Collector) int {
	n := 0
	for _, c := range cl.cand {
		if c != nil {
			n++
		}
	}
	return n
}

// TestCollectorTrimReleasesColdSlots pins the retention cap: slots whose
// sets stop appearing in passes must have their pooled Candidates released
// once a trim boundary finds them older than trimAge, while slots the
// workload keeps touching stay resident.
func TestCollectorTrimReleasesColdSlots(t *testing.T) {
	const coldSets = 40
	r, broad, narrow, ix := trimSetup(t, coldSets)
	cl := NewCollector(ix)
	opts := Options{CheckFilter: true}

	// Pass 1 touches every set — the hot slot plus all cold ones.
	cands, _ := cl.Collect(r, broad, jacPhi, opts)
	if len(cands) != coldSets+1 {
		t.Fatalf("broad pass collected %d candidates, want %d", len(cands), coldSets+1)
	}
	before := retainedSlots(cl)

	// The narrow signature keeps touching only the hot slot for well past
	// a trim boundary plus the age window.
	for pass := 0; pass < trimInterval+trimAge+trimInterval; pass++ {
		hc, _ := cl.Collect(r, narrow, jacPhi, opts)
		if len(hc) != 1 {
			t.Fatalf("narrow pass collected %d candidates, want 1", len(hc))
		}
	}

	got := retainedSlots(cl)
	if got >= before {
		t.Fatalf("trim released nothing: %d slots retained before, %d after %d narrow passes",
			before, got, trimInterval+trimAge+trimInterval)
	}
	if got < 1 {
		t.Fatalf("trim released the hot slot touched every pass (retained %d)", got)
	}

	// Trimmed slots must be rebuilt correctly when the broad signature
	// returns: results identical to a fresh collector's.
	back, backRaw := cl.Collect(r, broad, jacPhi, opts)
	want, wantRaw := NewCollector(ix).Collect(r, broad, jacPhi, opts)
	if backRaw != wantRaw || len(back) != len(want) {
		t.Fatalf("post-trim collection diverged: got %d cands raw %d, want %d raw %d",
			len(back), backRaw, len(want), wantRaw)
	}
	for i := range back {
		g, w := back[i], want[i]
		if g.Set != w.Set || g.NumPassed != w.NumPassed {
			t.Fatalf("post-trim cand %d: got set=%d passed=%d, want set=%d passed=%d",
				i, g.Set, g.NumPassed, w.Set, w.NumPassed)
		}
	}
}

// TestCollectorTrimKeepsSteadyStateAllocFree pins the arena budget across
// trim boundaries: a workload that touches the same slots every pass must
// never have them trimmed, so steady-state collection stays at zero
// allocations even while the collector crosses multiple trim intervals.
func TestCollectorTrimKeepsSteadyStateAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; budgets hold only in plain builds")
	}
	r, sig, ix, _ := paperSetup(t)
	cl := NewCollector(ix)
	opts := Options{CheckFilter: true, PruneThreshold: 2.1 - pruneSlack}
	cl.Collect(r, sig, jacPhi, opts)
	cl.Collect(r, sig, jacPhi, opts)
	// 3 × trimInterval runs cross at least three trim boundaries.
	if got := testing.AllocsPerRun(3*trimInterval, func() { cl.Collect(r, sig, jacPhi, opts) }); got > 0 {
		t.Errorf("steady-state Collect allocates %.2f objects across trim boundaries, want 0", got)
	}
}
