//go:build race

// Package raceflag reports whether the race detector instruments this
// build. Allocation-regression tests skip themselves under -race: the
// instrumentation itself allocates, so AllocsPerRun budgets only hold in
// plain builds (which CI runs separately from the race suite).
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = true
