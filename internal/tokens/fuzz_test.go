package tokens

import (
	"strings"
	"testing"
)

// FuzzQGramChunkConsistency checks the structural invariants of gram/chunk
// extraction on arbitrary input, including multi-byte runes: n runes yield n
// grams and ⌈n/q⌉ chunks, every chunk is the gram at its own offset, and the
// chunks re-cover the padded string.
func FuzzQGramChunkConsistency(f *testing.F) {
	f.Add("50 Vassar St MA", 4)
	f.Add("日本語テキスト", 2)
	f.Add("", 3)
	f.Add("a", 1)
	f.Fuzz(func(t *testing.T, s string, q int) {
		if q <= 0 || q > 8 {
			q = q&7 + 1
		}
		s = strings.ReplaceAll(s, string(Pad), "")
		if len(s) > 64 {
			s = s[:64]
		}
		runes := []rune(s)
		grams := QGrams(s, q)
		chunks := QChunks(s, q)
		if len(grams) != len(runes) {
			t.Fatalf("grams = %d, want %d for %q q=%d", len(grams), len(runes), s, q)
		}
		if len(chunks) != NumQChunks(len(runes), q) {
			t.Fatalf("chunks = %d, want %d", len(chunks), NumQChunks(len(runes), q))
		}
		for i, c := range chunks {
			if len([]rune(c)) != q {
				t.Fatalf("chunk %d has %d runes, want %d", i, len([]rune(c)), q)
			}
			if i*q < len(grams) && grams[i*q] != c {
				t.Fatalf("chunk %d != gram at offset %d", i, i*q)
			}
		}
		// Re-cover check at the rune level: invalid UTF-8 bytes are
		// normalized to U+FFFD by rune conversion on both sides, so the
		// invariant holds for string(runes), not the raw bytes.
		joined := strings.Join(chunks, "")
		if len(runes) > 0 && !strings.HasPrefix(joined, string(runes)) {
			t.Fatalf("chunks do not re-cover %q", s)
		}
	})
}
