package tokens

import (
	"unicode"
	"unicode/utf8"
)

// Scratch holds reusable tokenization buffers for the query path. The
// slice-returning tokenizers (Words, QGrams, QChunks) allocate a string per
// token plus the token slice itself — fine for indexing, where the strings
// live on in the dictionary, but pure overhead per query. The Append*IDs
// methods produce the same token streams as InternAll(dict, Words/QGrams/
// QChunks(...)) while staging every token in the scratch's buffers, so a
// warmed-up scratch tokenizes with zero allocations as long as every token
// is already interned (first-time tokens must still materialize the string
// the dictionary retains).
//
// A Scratch is not safe for concurrent use; pool one per worker.
type Scratch struct {
	runes []rune // decoded + padded element runes
	gram  []byte // UTF-8 encoding of the current gram/chunk
	ids   []ID   // staging for pre-dedup token ids
}

// AppendWordIDs appends the interned id of each whitespace-separated word
// of s — the token stream of InternAll(d, Words(s)) — to dst and returns
// the extended slice. Word boundaries follow unicode.IsSpace, matching
// strings.Fields.
//
//silkmoth:hotpath
func (sc *Scratch) AppendWordIDs(dst []ID, d *Dictionary, s string) []ID {
	start := -1 // start of the current word, -1 while in whitespace
	for i, c := range s {
		if unicode.IsSpace(c) {
			if start >= 0 {
				dst = append(dst, d.Intern(s[start:i]))
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		dst = append(dst, d.Intern(s[start:]))
	}
	return dst
}

// AppendQGramIDs appends the interned id of each q-gram of s — the token
// stream of InternAll(d, QGrams(s, q)) — to dst and returns the extended
// slice. q must be positive.
//
//silkmoth:hotpath
func (sc *Scratch) AppendQGramIDs(dst []ID, d *Dictionary, s string, q int) []ID {
	if q <= 0 {
		panic("tokens: AppendQGramIDs requires q > 0")
	}
	r := sc.padded(s, q)
	n := len(r) - q + 1
	for i := 0; i < n; i++ {
		dst = append(dst, d.InternBytes(sc.encode(r[i:i+q])))
	}
	return dst
}

// AppendQChunkIDs appends the interned id of each q-chunk of s — the token
// stream of InternAll(d, QChunks(s, q)) — to dst and returns the extended
// slice. q must be positive.
//
//silkmoth:hotpath
func (sc *Scratch) AppendQChunkIDs(dst []ID, d *Dictionary, s string, q int) []ID {
	if q <= 0 {
		panic("tokens: AppendQChunkIDs requires q > 0")
	}
	r := sc.padded(s, q)
	n := len(r) - q + 1
	if n <= 0 {
		return dst
	}
	numChunks := (n + q - 1) / q
	for i := 0; i < numChunks; i++ {
		dst = append(dst, d.InternBytes(sc.encode(r[i*q:i*q+q])))
	}
	return dst
}

// padded stages the runes of s followed by q-1 Pad runes in the scratch
// rune buffer.
//
//silkmoth:hotpath
func (sc *Scratch) padded(s string, q int) []rune {
	r := sc.runes[:0]
	for _, c := range s {
		r = append(r, c)
	}
	if len(s) > 0 {
		for i := 0; i < q-1; i++ {
			r = append(r, Pad)
		}
	}
	sc.runes = r
	return r
}

// encode stages the UTF-8 encoding of rs in the scratch byte buffer. The
// encoding matches string(rs) exactly, including the U+FFFD replacement of
// invalid runes, so InternBytes sees the same key QGrams would intern.
//
//silkmoth:hotpath
func (sc *Scratch) encode(rs []rune) []byte {
	b := sc.gram[:0]
	for _, c := range rs {
		b = utf8.AppendRune(b, c)
	}
	sc.gram = b
	return b
}
