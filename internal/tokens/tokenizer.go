package tokens

import (
	"slices"
	"strings"
)

// Pad is the special rune appended q-1 times to the end of a string before
// q-gram and q-chunk extraction, per footnote 3 of the paper. It is a
// non-printing control character that should not occur in real data.
const Pad rune = '\x1f'

// Words splits s on whitespace and returns the resulting word tokens.
// Consecutive whitespace is collapsed; an all-whitespace string yields nil.
func Words(s string) []string {
	return strings.Fields(s)
}

// QGrams returns every q-length substring of s after padding the end of s
// with q-1 Pad runes, so a string of n runes yields exactly n q-grams
// (n ≥ 1). The empty string yields no q-grams. q must be positive.
func QGrams(s string, q int) []string {
	if q <= 0 {
		panic("tokens: QGrams requires q > 0")
	}
	r := padded(s, q)
	n := len(r) - q + 1 // == rune length of s, or 0 for empty s
	if n <= 0 {
		return nil
	}
	grams := make([]string, n)
	for i := 0; i < n; i++ {
		grams[i] = string(r[i : i+q])
	}
	return grams
}

// QChunks returns the ⌈n/q⌉ non-overlapping q-length substrings that cover
// the padded string, where n is the rune length of s (paper §7.1). The empty
// string yields no chunks. q must be positive.
func QChunks(s string, q int) []string {
	if q <= 0 {
		panic("tokens: QChunks requires q > 0")
	}
	r := padded(s, q)
	n := len(r) - q + 1
	if n <= 0 {
		return nil
	}
	numChunks := (n + q - 1) / q
	chunks := make([]string, numChunks)
	for i := 0; i < numChunks; i++ {
		chunks[i] = string(r[i*q : i*q+q])
	}
	return chunks
}

// NumQChunks returns the number of q-chunks of a string of n runes, ⌈n/q⌉.
func NumQChunks(n, q int) int {
	if n <= 0 {
		return 0
	}
	return (n + q - 1) / q
}

// padded returns the runes of s followed by q-1 Pad runes.
func padded(s string, q int) []rune {
	r := make([]rune, 0, len(s)+q-1)
	r = append(r, []rune(s)...)
	for i := 0; i < q-1; i++ {
		r = append(r, Pad)
	}
	return r
}

// InternAll interns each string of ss and returns the ids in order,
// including duplicates.
func InternAll(d *Dictionary, ss []string) []ID {
	ids := make([]ID, len(ss))
	for i, s := range ss {
		ids[i] = d.Intern(s)
	}
	return ids
}

// SortUnique sorts ids in place and returns the slice with duplicates
// removed. The returned slice aliases the input. It allocates nothing:
// slices.Sort specializes on the ordered element type, unlike the
// reflection-based sort.Slice it replaced, whose closure and interface
// header escaped to the heap on every call.
func SortUnique(ids []ID) []ID {
	if len(ids) <= 1 {
		return ids
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}
