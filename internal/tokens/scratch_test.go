package tokens

import (
	"testing"
)

// scratchCorpus exercises every tokenization edge the scratch path must
// reproduce: empty strings, pure whitespace, exotic Unicode space classes
// (strings.Fields semantics), multi-byte runes, invalid UTF-8 (which both
// paths must replace identically), and Pad-rune collisions in the input.
var scratchCorpus = []string{
	"",
	" ",
	"\t\n\v\f\r ",
	"one",
	"two words",
	"  leading and   trailing  ",
	"non break spaces", // U+00A0 and U+2009 are unicode spaces
	"héllo wörld",
	"日本語 データベース",
	"\xff\xfeinvalid\xff utf8",
	"pad\x1fcollision mid\x1f\x1ftoken",
	"a b c d e f g h i j k l m n o p",
}

// TestScratchAppendMatchesSliceTokenizers pins the scratch tokenizers to
// the slice-returning originals: identical id streams through a shared
// dictionary, for words and for every q in range, on every corpus string.
func TestScratchAppendMatchesSliceTokenizers(t *testing.T) {
	for _, q := range []int{1, 2, 3, 5} {
		dict := NewDictionary()
		var sc Scratch
		for _, s := range scratchCorpus {
			want := InternAll(dict, Words(s))
			got := sc.AppendWordIDs(nil, dict, s)
			if !equalIDs(got, want) {
				t.Errorf("AppendWordIDs(%q) = %v, want %v", s, got, want)
			}
			want = InternAll(dict, QGrams(s, q))
			got = sc.AppendQGramIDs(nil, dict, s, q)
			if !equalIDs(got, want) {
				t.Errorf("AppendQGramIDs(%q, %d) = %v, want %v", s, q, got, want)
			}
			want = InternAll(dict, QChunks(s, q))
			got = sc.AppendQChunkIDs(nil, dict, s, q)
			if !equalIDs(got, want) {
				t.Errorf("AppendQChunkIDs(%q, %d) = %v, want %v", s, q, got, want)
			}
		}
	}
}

// TestScratchAppendExtends pins that the Append*IDs methods extend dst
// rather than replace it, so callers can pack many elements into one arena.
func TestScratchAppendExtends(t *testing.T) {
	dict := NewDictionary()
	var sc Scratch
	ids := sc.AppendWordIDs(nil, dict, "a b")
	n := len(ids)
	ids = sc.AppendQGramIDs(ids, dict, "cd", 2)
	if len(ids) <= n {
		t.Fatalf("AppendQGramIDs did not extend: %v", ids)
	}
	prefix := sc.AppendWordIDs(nil, dict, "a b")
	if !equalIDs(ids[:n], prefix) {
		t.Fatalf("arena prefix clobbered: %v vs %v", ids[:n], prefix)
	}
}

func equalIDs(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSortUniqueZeroAllocs pins the slices.Sort rewrite: sorting and
// deduplicating in place must not allocate (the reflection-based sort.Slice
// it replaced heap-allocated its closure on every call — on the per-query
// tokenization path).
func TestSortUniqueZeroAllocs(t *testing.T) {
	ids := make([]ID, 64)
	allocs := testing.AllocsPerRun(100, func() {
		ids = ids[:64]
		for i := range ids {
			ids[i] = ID((i * 37) % 19)
		}
		ids = SortUnique(ids)
	})
	if allocs != 0 {
		t.Errorf("SortUnique allocates %.1f objects per call, want 0", allocs)
	}
}

// TestScratchSteadyStateAllocs pins the point of the scratch: once its
// buffers are warm and every token is interned, tokenizing allocates
// nothing at all.
func TestScratchSteadyStateAllocs(t *testing.T) {
	dict := NewDictionary()
	var sc Scratch
	ids := make([]ID, 0, 64)
	warm := func() {
		ids = sc.AppendWordIDs(ids[:0], dict, "the quick brown fox jumps")
		ids = sc.AppendQGramIDs(ids[:0], dict, "edit distance", 2)
		ids = sc.AppendQChunkIDs(ids[:0], dict, "edit distance", 2)
	}
	warm()
	if allocs := testing.AllocsPerRun(100, warm); allocs != 0 {
		t.Errorf("warm scratch tokenization allocates %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkSortUnique(b *testing.B) {
	ids := make([]ID, 48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ids = ids[:48]
		for j := range ids {
			ids[j] = ID((j * 31) % 29)
		}
		ids = SortUnique(ids)
	}
}

var sinkIDs []ID

func BenchmarkTokenizeQueryElement(b *testing.B) {
	dict := NewDictionary()
	const elem = "the quick brown fox jumps over the lazy dog"
	b.Run("slices", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkIDs = SortUnique(InternAll(dict, Words(elem)))
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var sc Scratch
		ids := make([]ID, 0, 16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ids = SortUnique(sc.AppendWordIDs(ids[:0], dict, elem))
		}
		sinkIDs = ids
	})
}
