package tokens

import (
	"fmt"
	"sync"
	"testing"
)

// TestDictionaryConcurrentIntern hammers one dictionary from many goroutines
// with overlapping token vocabularies. Run under -race this is the proof
// that parallel query-time tokenization no longer needs an external lock.
func TestDictionaryConcurrentIntern(t *testing.T) {
	d := NewDictionary()
	// Pre-intern half the vocabulary so readers exercise the fast path.
	for i := 0; i < 50; i++ {
		d.Intern(fmt.Sprintf("tok%d", i))
	}

	const goroutines = 8
	const rounds = 500
	var wg sync.WaitGroup
	ids := make([][]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]ID, 100)
			for r := 0; r < rounds; r++ {
				for i := 0; i < 100; i++ {
					tok := fmt.Sprintf("tok%d", i)
					id := d.Intern(tok)
					if r == 0 {
						ids[g][i] = id
					} else if ids[g][i] != id {
						t.Errorf("goroutine %d: token %q id changed %d -> %d", g, tok, ids[g][i], id)
						return
					}
					if got, ok := d.Lookup(tok); !ok || got != id {
						t.Errorf("goroutine %d: Lookup(%q) = %d,%v want %d", g, tok, got, ok, id)
						return
					}
					if d.String(id) != tok {
						t.Errorf("goroutine %d: String(%d) = %q want %q", g, id, d.String(id), tok)
						return
					}
					_ = d.Count(id)
					_ = d.Size()
				}
			}
		}(g)
	}
	wg.Wait()

	// All goroutines must agree on every id.
	for g := 1; g < goroutines; g++ {
		for i := range ids[0] {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d disagrees on token %d: %d vs %d", g, i, ids[g][i], ids[0][i])
			}
		}
	}
	if d.Size() != 100 {
		t.Fatalf("Size = %d, want 100", d.Size())
	}
	// Every token was interned goroutines*rounds times (+1 for the 50
	// pre-interned ones). Counts are exact: the fast path uses atomics.
	for i := 0; i < 100; i++ {
		id, _ := d.Lookup(fmt.Sprintf("tok%d", i))
		want := int64(goroutines * rounds)
		if i < 50 {
			want++
		}
		if got := d.Count(id); got != want {
			t.Errorf("Count(tok%d) = %d, want %d", i, got, want)
		}
	}
}
