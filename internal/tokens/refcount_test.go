package tokens

import "testing"

func TestRetainReleaseReclaim(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("alpha")
	bID := d.Intern("beta")
	c := d.Intern("gamma")

	d.Retain([]ID{a, a, bID, c})
	if d.Refs(a) != 2 || d.Refs(bID) != 1 || d.Refs(c) != 1 {
		t.Fatalf("refs = %d/%d/%d", d.Refs(a), d.Refs(bID), d.Refs(c))
	}

	// Releasing to zero only marks the id pending; the slot stays intact
	// until Reclaim.
	d.Release([]ID{bID})
	if d.Refs(bID) != 0 {
		t.Fatalf("beta refs = %d, want 0", d.Refs(bID))
	}
	if d.FreeSlots() != 0 {
		t.Fatal("release must not free slots")
	}
	if s := d.String(bID); s != "beta" {
		t.Fatalf("beta string = %q before reclaim", s)
	}

	// A re-retained id survives Reclaim (resurrection).
	d.Release([]ID{c})
	d.Retain([]ID{c})
	if n := d.Reclaim(); n != 1 {
		t.Fatalf("Reclaim freed %d ids, want 1 (beta only)", n)
	}
	if _, ok := d.Lookup("beta"); ok {
		t.Fatal("beta should be gone from the intern map")
	}
	if _, ok := d.Lookup("gamma"); !ok {
		t.Fatal("gamma was resurrected and must survive")
	}
	if d.FreeSlots() != 1 {
		t.Fatalf("free slots = %d, want 1", d.FreeSlots())
	}

	// The freed slot is recycled for the next new token; the id space
	// does not grow.
	size := d.Size()
	reused := d.Intern("delta")
	if reused != bID {
		t.Fatalf("delta got id %d, want recycled %d", reused, bID)
	}
	if d.Size() != size {
		t.Fatalf("size grew from %d to %d", size, d.Size())
	}
	if d.FreeSlots() != 0 {
		t.Fatal("recycling should consume the free slot")
	}
	if d.Count(reused) != 1 {
		t.Fatalf("recycled count = %d, want 1", d.Count(reused))
	}

	// Double-release is clamped, and a double-pending id is freed once.
	d.Release([]ID{a, a, a})
	if d.Refs(a) != 0 {
		t.Fatalf("alpha refs = %d, want 0", d.Refs(a))
	}
	if n := d.Reclaim(); n != 1 {
		t.Fatalf("Reclaim freed %d, want 1", n)
	}
}
