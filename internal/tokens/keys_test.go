package tokens

import "testing"

// TestKeyInternerLifecycle covers the element-key interner riding along
// with the dictionary: dense ids, single-id retain/release symmetry, and
// reclamation recycling slots exactly like the token side.
func TestKeyInternerLifecycle(t *testing.T) {
	d := NewDictionary()
	keys := d.Keys()
	if keys == nil {
		t.Fatal("Keys() = nil")
	}
	a := keys.Intern("alpha")
	b := keys.Intern("beta")
	if a == b {
		t.Fatal("distinct keys interned to one id")
	}
	if got := keys.Intern("alpha"); got != a {
		t.Fatalf("re-intern = %d, want %d", got, a)
	}

	keys.RetainID(a)
	keys.RetainID(a)
	keys.RetainID(b)
	keys.ReleaseID(a)
	if keys.Refs(a) != 1 {
		t.Fatalf("refs(a) = %d, want 1", keys.Refs(a))
	}
	// a is still retained: Reclaim must not free it.
	keys.ReleaseID(b)
	if n := keys.Reclaim(); n != 1 {
		t.Fatalf("Reclaim freed %d, want 1 (only b)", n)
	}
	if _, ok := keys.Lookup("alpha"); !ok {
		t.Fatal("retained key reclaimed")
	}
	if _, ok := keys.Lookup("beta"); ok {
		t.Fatal("released key survived reclaim")
	}
	// The freed slot is recycled for the next new key.
	c := keys.Intern("gamma")
	if c != b {
		t.Fatalf("new key got id %d, want recycled slot %d", c, b)
	}
	// Query-style keys (interned, never retained) are never reclaimed.
	q := keys.Intern("query-only")
	keys.Reclaim()
	if _, ok := keys.Lookup("query-only"); !ok {
		t.Fatal("unretained query key was reclaimed")
	}
	if keys.Refs(q) != 0 {
		t.Fatalf("refs(query) = %d, want 0", keys.Refs(q))
	}
}
