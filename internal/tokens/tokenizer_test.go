package tokens

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"77 Mass Ave Boston MA", []string{"77", "Mass", "Ave", "Boston", "MA"}},
		{"  leading and   trailing  ", []string{"leading", "and", "trailing"}},
		{"", nil},
		{"   ", nil},
		{"single", []string{"single"}},
		{"tab\tseparated\nlines", []string{"tab", "separated", "lines"}},
	}
	for _, c := range cases {
		got := Words(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestQGramsPaperExample(t *testing.T) {
	// Paper §3: the 4-grams of "50 Vassar St MA" start with "50 V", "0 Va", ...
	got := QGrams("50 Vassar St MA", 4)
	if got[0] != "50 V" || got[1] != "0 Va" {
		t.Fatalf("QGrams paper example: got %q, %q", got[0], got[1])
	}
	// n runes yield exactly n q-grams.
	if len(got) != len("50 Vassar St MA") {
		t.Fatalf("QGrams count = %d, want %d", len(got), len("50 Vassar St MA"))
	}
}

func TestQGramsPadding(t *testing.T) {
	got := QGrams("ab", 3)
	want := []string{"ab" + string(Pad), "b" + string(Pad) + string(Pad)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams(ab, 3) = %q, want %q", got, want)
	}
}

func TestQGramsEmpty(t *testing.T) {
	if got := QGrams("", 3); got != nil {
		t.Errorf("QGrams(\"\", 3) = %v, want nil", got)
	}
}

func TestQGramsQ1(t *testing.T) {
	got := QGrams("abc", 1)
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams(abc, 1) = %v, want %v", got, want)
	}
}

func TestQChunks(t *testing.T) {
	// "abcde" with q=2: padded "abcde\x1f", chunks "ab", "cd", "e\x1f".
	got := QChunks("abcde", 2)
	want := []string{"ab", "cd", "e" + string(Pad)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QChunks(abcde, 2) = %q, want %q", got, want)
	}
	if len(got) != NumQChunks(5, 2) {
		t.Errorf("NumQChunks mismatch: %d vs %d", len(got), NumQChunks(5, 2))
	}
}

func TestQChunksExactMultiple(t *testing.T) {
	got := QChunks("abcdef", 3)
	want := []string{"abc", "def"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QChunks(abcdef, 3) = %q, want %q", got, want)
	}
}

func TestQChunksEmpty(t *testing.T) {
	if got := QChunks("", 4); got != nil {
		t.Errorf("QChunks(\"\", 4) = %v, want nil", got)
	}
	if NumQChunks(0, 4) != 0 {
		t.Error("NumQChunks(0, 4) != 0")
	}
}

func TestQChunksUnicode(t *testing.T) {
	got := QChunks("héllo", 2) // 5 runes
	if len(got) != 3 {
		t.Fatalf("QChunks rune handling: got %d chunks, want 3", len(got))
	}
	if got[0] != "hé" {
		t.Errorf("first chunk = %q, want %q", got[0], "hé")
	}
}

// Property: chunks are a subset of grams (every chunk appears among the
// grams at its own offset), and concatenated chunks re-cover the padded
// string.
func TestQChunkGramRelationProperty(t *testing.T) {
	f := func(s string, qRaw uint8) bool {
		q := int(qRaw%5) + 1
		s = strings.ReplaceAll(s, string(Pad), "")
		grams := QGrams(s, q)
		chunks := QChunks(s, q)
		gramSet := make(map[string]bool, len(grams))
		for _, g := range grams {
			gramSet[g] = true
		}
		// Every chunk except possibly ones overlapping the pad tail must be a
		// gram; chunks that contain pad runes may extend past the last gram.
		for i, c := range chunks {
			if i*q < len(grams) {
				if grams[i*q] != c {
					return false
				}
			}
			_ = gramSet
		}
		joined := strings.Join(chunks, "")
		runes := []rune(s)
		if len(runes) > 0 && !strings.HasPrefix(joined, string(runes)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: number of q-grams equals the rune length of the input.
func TestQGramCountProperty(t *testing.T) {
	f := func(s string, qRaw uint8) bool {
		q := int(qRaw%6) + 1
		s = strings.ReplaceAll(s, string(Pad), "")
		return len(QGrams(s, q)) == len([]rune(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	a2 := d.Intern("alpha")
	if a != a2 {
		t.Errorf("re-interning returned different id: %d vs %d", a, a2)
	}
	if a == b {
		t.Error("distinct strings share an id")
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d, want 2", d.Size())
	}
	if d.String(a) != "alpha" || d.String(b) != "beta" {
		t.Error("String roundtrip failed")
	}
	if d.Count(a) != 2 || d.Count(b) != 1 {
		t.Errorf("Count = %d, %d; want 2, 1", d.Count(a), d.Count(b))
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup of unknown string reported ok")
	}
	if id, ok := d.Lookup("beta"); !ok || id != b {
		t.Error("Lookup of known string failed")
	}
}

func TestDictionaryDenseIDs(t *testing.T) {
	d := NewDictionary()
	for i := 0; i < 100; i++ {
		id := d.Intern(strings.Repeat("x", i+1))
		if int(id) != i {
			t.Fatalf("ids are not dense: got %d at step %d", id, i)
		}
	}
}

func TestInternAll(t *testing.T) {
	d := NewDictionary()
	ids := InternAll(d, []string{"a", "b", "a"})
	if len(ids) != 3 || ids[0] != ids[2] || ids[0] == ids[1] {
		t.Errorf("InternAll = %v", ids)
	}
}

func TestSortUnique(t *testing.T) {
	got := SortUnique([]ID{5, 3, 5, 1, 3, 1, 1})
	want := []ID{1, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortUnique = %v, want %v", got, want)
	}
	if SortUnique(nil) != nil {
		t.Error("SortUnique(nil) != nil")
	}
	one := SortUnique([]ID{7})
	if len(one) != 1 || one[0] != 7 {
		t.Errorf("SortUnique single = %v", one)
	}
}

// Property: SortUnique output is sorted, duplicate-free, and preserves the
// input's value set.
func TestSortUniqueProperty(t *testing.T) {
	f := func(raw []int16) bool {
		in := make([]ID, len(raw))
		set := make(map[ID]bool)
		for i, v := range raw {
			in[i] = ID(v)
			set[ID(v)] = true
		}
		out := SortUnique(in)
		if len(out) != len(set) {
			return false
		}
		for i, v := range out {
			if !set[v] {
				return false
			}
			if i > 0 && out[i-1] >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
