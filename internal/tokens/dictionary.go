// Package tokens provides tokenization primitives for SilkMoth: a string
// interning dictionary that maps tokens to dense integer ids, whitespace word
// tokenization for Jaccard similarity, and q-gram / q-chunk tokenization for
// edit similarity (paper §3 and §7).
package tokens

import (
	"sync"
	"sync/atomic"
)

// ID is a dense integer identifier for an interned token string.
// Dense ids let the inverted index be a plain slice instead of a map.
type ID int32

// Dictionary interns token strings and assigns each distinct string a dense
// ID starting from zero. It also tracks how many times each token was
// interned, which approximates collection frequency.
//
// A Dictionary is safe for concurrent use. Interning an already-known token
// — the overwhelmingly common case at query time — takes only the read side
// of the lock, so parallel queries do not serialize on each other; only
// first-time interning of a new token takes the write lock.
//
// Mutable collections additionally refcount their tokens through
// Retain/Release: an engine retains every indexed set's token ids and
// releases them when the set is deleted. An id whose refcount reaches zero
// is only a reclamation *candidate*; Reclaim — called by the engine's
// compaction, when the inverted index is rebuilt and the stale postings
// disappear — actually frees the slot, and Intern reuses freed slots for
// new tokens, so the vocabulary shrinks with the data instead of growing
// forever on a long-lived mutable engine.
type Dictionary struct {
	mu    sync.RWMutex
	ids   map[string]ID
	strs  []string
	count []int64
	// refs counts live collection references per id (Retain/Release).
	// Query-time interning does not retain, so purely-query tokens sit at
	// zero but are never pending and thus never reclaimed.
	refs []int32
	// pending are ids whose refcount fell to zero since the last Reclaim;
	// Reclaim frees those still at zero (a later Retain resurrects).
	pending []ID
	// free are reclaimed ids available for reuse; freed marks them so a
	// slot cannot be double-freed.
	free  []ID
	freed []bool
	// keys is the element-key interner that rides along with the token
	// dictionary: exact element content keys (dataset.ElementKey) interned
	// to dense ids so verification compares integers instead of building
	// strings per pair. It is itself a Dictionary — query keys follow the
	// same "interned but never reclaimed until retained and released"
	// lifecycle as query tokens — and shares the main dictionary's
	// concurrency story. Nil on the keys dictionary itself.
	keys *Dictionary
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{
		ids:  make(map[string]ID),
		keys: &Dictionary{ids: make(map[string]ID)},
	}
}

// Keys returns the element-key interner attached to this dictionary. Every
// collection sharing the dictionary (including query collections tokenized
// against it) interns element keys here, so two elements are identical iff
// their key ids are equal — the integer form of the §5.3 reduction test.
func (d *Dictionary) Keys() *Dictionary { return d.keys }

// Intern returns the ID for s, assigning a fresh one if s is new, and bumps
// its frequency counter. New tokens reuse reclaimed slots before growing
// the id space.
func (d *Dictionary) Intern(s string) ID {
	// Fast path: known token, shared lock only. The count bump is atomic
	// because other readers may be bumping the same slot; the slice itself
	// cannot be reallocated while any read lock is held.
	d.mu.RLock()
	if id, ok := d.ids[s]; ok {
		atomic.AddInt64(&d.count[id], 1)
		d.mu.RUnlock()
		return id
	}
	d.mu.RUnlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[s]; ok { // raced with another writer
		d.count[id]++
		return id
	}
	if n := len(d.free); n > 0 {
		id := d.free[n-1]
		d.free = d.free[:n-1]
		d.freed[id] = false
		d.ids[s] = id
		d.strs[id] = s
		d.count[id] = 1
		return id
	}
	id := ID(len(d.strs))
	d.ids[s] = id
	d.strs = append(d.strs, s)
	d.count = append(d.count, 1)
	d.refs = append(d.refs, 0)
	d.freed = append(d.freed, false)
	return id
}

// InternBytes is Intern for a token held in a byte buffer. On the fast path
// — the token is already known, the overwhelmingly common case at query
// time — the map lookup uses the compiler's zero-copy string([]byte) form
// and nothing allocates; only a first-time token materializes a string (it
// must outlive b, which callers reuse as scratch).
func (d *Dictionary) InternBytes(b []byte) ID {
	d.mu.RLock()
	if id, ok := d.ids[string(b)]; ok {
		atomic.AddInt64(&d.count[id], 1)
		d.mu.RUnlock()
		return id
	}
	d.mu.RUnlock()
	return d.Intern(string(b))
}

// LookupBytes is Lookup for a token held in a byte buffer; it never
// allocates.
func (d *Dictionary) LookupBytes(b []byte) (ID, bool) {
	d.mu.RLock()
	id, ok := d.ids[string(b)]
	d.mu.RUnlock()
	return id, ok
}

// Retain bumps the collection refcount of every id in ids. Engines retain
// each indexed occurrence of a set's tokens (and chunks) so Release on
// delete is exactly symmetric.
func (d *Dictionary) Retain(ids []ID) {
	d.mu.Lock()
	for _, id := range ids {
		d.refs[id]++
	}
	d.mu.Unlock()
}

// RetainID bumps the collection refcount of a single id — the per-element
// form of Retain, used for interned element keys (one key per element).
func (d *Dictionary) RetainID(id ID) {
	d.mu.Lock()
	d.refs[id]++
	d.mu.Unlock()
}

// ReleaseID drops one refcount bumped by RetainID.
func (d *Dictionary) ReleaseID(id ID) {
	d.mu.Lock()
	if d.refs[id] > 0 {
		d.refs[id]--
		if d.refs[id] == 0 {
			d.pending = append(d.pending, id)
		}
	}
	d.mu.Unlock()
}

// Release drops collection refcounts bumped by Retain. Ids that reach zero
// become reclamation candidates for the next Reclaim; their strings and
// slots stay valid until then.
func (d *Dictionary) Release(ids []ID) {
	d.mu.Lock()
	for _, id := range ids {
		if d.refs[id] > 0 {
			d.refs[id]--
			if d.refs[id] == 0 {
				d.pending = append(d.pending, id)
			}
		}
	}
	d.mu.Unlock()
}

// Reclaim frees every pending id whose refcount is still zero: the string
// is dropped from the intern map and the slot queued for reuse by future
// Interns. Callers must only invoke it when no index still resolves the
// freed ids to live postings — in practice, during engine compaction,
// right after posting lists are rebuilt. It returns the number of slots
// freed.
func (d *Dictionary) Reclaim() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, id := range d.pending {
		if d.refs[id] != 0 || d.freed[id] {
			continue // resurrected by a later Retain, or already freed
		}
		delete(d.ids, d.strs[id])
		d.strs[id] = ""
		d.count[id] = 0
		d.freed[id] = true
		d.free = append(d.free, id)
		n++
	}
	d.pending = d.pending[:0]
	return n
}

// FreeSlots returns the number of reclaimed ids currently awaiting reuse.
func (d *Dictionary) FreeSlots() int {
	d.mu.RLock()
	n := len(d.free)
	d.mu.RUnlock()
	return n
}

// Refs returns the current collection refcount of id.
func (d *Dictionary) Refs(id ID) int {
	d.mu.RLock()
	n := int(d.refs[id])
	d.mu.RUnlock()
	return n
}

// Lookup returns the ID for s without interning. The second return value
// reports whether s is known.
func (d *Dictionary) Lookup(s string) (ID, bool) {
	d.mu.RLock()
	id, ok := d.ids[s]
	d.mu.RUnlock()
	return id, ok
}

// String returns the token string for id. It panics if id is out of range.
func (d *Dictionary) String(id ID) string {
	d.mu.RLock()
	s := d.strs[id]
	d.mu.RUnlock()
	return s
}

// Count returns how many times the token with this id has been interned.
func (d *Dictionary) Count(id ID) int64 {
	d.mu.RLock()
	n := atomic.LoadInt64(&d.count[id])
	d.mu.RUnlock()
	return n
}

// Size returns the number of distinct tokens interned so far.
func (d *Dictionary) Size() int {
	d.mu.RLock()
	n := len(d.strs)
	d.mu.RUnlock()
	return n
}
