// Package tokens provides tokenization primitives for SilkMoth: a string
// interning dictionary that maps tokens to dense integer ids, whitespace word
// tokenization for Jaccard similarity, and q-gram / q-chunk tokenization for
// edit similarity (paper §3 and §7).
package tokens

import (
	"sync"
	"sync/atomic"
)

// ID is a dense integer identifier for an interned token string.
// Dense ids let the inverted index be a plain slice instead of a map.
type ID int32

// Dictionary interns token strings and assigns each distinct string a dense
// ID starting from zero. It also tracks how many times each token was
// interned, which approximates collection frequency.
//
// A Dictionary is safe for concurrent use. Interning an already-known token
// — the overwhelmingly common case at query time — takes only the read side
// of the lock, so parallel queries do not serialize on each other; only
// first-time interning of a new token takes the write lock.
type Dictionary struct {
	mu    sync.RWMutex
	ids   map[string]ID
	strs  []string
	count []int64
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]ID)}
}

// Intern returns the ID for s, assigning a fresh one if s is new, and bumps
// its frequency counter.
func (d *Dictionary) Intern(s string) ID {
	// Fast path: known token, shared lock only. The count bump is atomic
	// because other readers may be bumping the same slot; the slice itself
	// cannot be reallocated while any read lock is held.
	d.mu.RLock()
	if id, ok := d.ids[s]; ok {
		atomic.AddInt64(&d.count[id], 1)
		d.mu.RUnlock()
		return id
	}
	d.mu.RUnlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[s]; ok { // raced with another writer
		d.count[id]++
		return id
	}
	id := ID(len(d.strs))
	d.ids[s] = id
	d.strs = append(d.strs, s)
	d.count = append(d.count, 1)
	return id
}

// Lookup returns the ID for s without interning. The second return value
// reports whether s is known.
func (d *Dictionary) Lookup(s string) (ID, bool) {
	d.mu.RLock()
	id, ok := d.ids[s]
	d.mu.RUnlock()
	return id, ok
}

// String returns the token string for id. It panics if id is out of range.
func (d *Dictionary) String(id ID) string {
	d.mu.RLock()
	s := d.strs[id]
	d.mu.RUnlock()
	return s
}

// Count returns how many times the token with this id has been interned.
func (d *Dictionary) Count(id ID) int64 {
	d.mu.RLock()
	n := atomic.LoadInt64(&d.count[id])
	d.mu.RUnlock()
	return n
}

// Size returns the number of distinct tokens interned so far.
func (d *Dictionary) Size() int {
	d.mu.RLock()
	n := len(d.strs)
	d.mu.RUnlock()
	return n
}
