// Package tokens provides tokenization primitives for SilkMoth: a string
// interning dictionary that maps tokens to dense integer ids, whitespace word
// tokenization for Jaccard similarity, and q-gram / q-chunk tokenization for
// edit similarity (paper §3 and §7).
package tokens

// ID is a dense integer identifier for an interned token string.
// Dense ids let the inverted index be a plain slice instead of a map.
type ID int32

// Dictionary interns token strings and assigns each distinct string a dense
// ID starting from zero. It also tracks how many times each token was
// interned, which approximates collection frequency.
type Dictionary struct {
	ids   map[string]ID
	strs  []string
	count []int64
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]ID)}
}

// Intern returns the ID for s, assigning a fresh one if s is new, and bumps
// its frequency counter.
func (d *Dictionary) Intern(s string) ID {
	if id, ok := d.ids[s]; ok {
		d.count[id]++
		return id
	}
	id := ID(len(d.strs))
	d.ids[s] = id
	d.strs = append(d.strs, s)
	d.count = append(d.count, 1)
	return id
}

// Lookup returns the ID for s without interning. The second return value
// reports whether s is known.
func (d *Dictionary) Lookup(s string) (ID, bool) {
	id, ok := d.ids[s]
	return id, ok
}

// String returns the token string for id. It panics if id is out of range.
func (d *Dictionary) String(id ID) string { return d.strs[id] }

// Count returns how many times the token with this id has been interned.
func (d *Dictionary) Count(id ID) int64 { return d.count[id] }

// Size returns the number of distinct tokens interned so far.
func (d *Dictionary) Size() int { return len(d.strs) }
