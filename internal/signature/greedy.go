package signature

import (
	"container/heap"
	"math"
	"sort"

	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/tokens"
)

// elemState tracks one reference element during greedy selection.
type elemState struct {
	length    int  // |r_i|: token count (word) or rune length (edit)
	totalOcc  int  // available signature token occurrences
	picked    int  // occurrences picked so far
	satSize   int  // sim-thresh occurrence count, when satOK
	satOK     bool // whether saturation is attainable
	saturated bool
	contrib   float64 // current Bound_i contribution
	// distinct picked tokens and their per-element occurrence counts
	pickedTokens []tokens.ID
	pickedOccs   []int
}

// tokEntry is one distinct candidate signature token.
type tokEntry struct {
	id    tokens.ID
	cost  float64 // |I[t]|
	elems []int   // reference elements containing the token
	occs  []int   // occurrences per element (chunks can repeat)
	value float64 // value at the time of the last heap push
}

// contribAfter returns Bound_i when k signature token occurrences of an
// element of size `length` are picked: the family's sound upper bound on
// φ(r, s) for any s containing none of them.
func contribAfter(f Family, length, k int) float64 {
	if length == 0 {
		return 0
	}
	l, kk := float64(length), float64(k)
	switch f {
	case FamilyJaccard:
		// (|r|-k)/|r| (§4.2); k never exceeds |r| because occurrences
		// are distinct word tokens.
		return (l - kk) / l
	case FamilyEdit:
		// |r|/(|r|+k) (§7.1, Definition 11).
		return l / (l + kk)
	case FamilyDice:
		// 2(|r|-k)/(2|r|-k): the worst case |s| = |r∩s| = |r|-k.
		return 2 * (l - kk) / (2*l - kk)
	case FamilyCosine:
		// √((|r|-k)/|r|): from |∩|/√(|r||s|) ≤ √(|∩|/|r|).
		return math.Sqrt((l - kk) / l)
	default:
		panic("signature: unknown family")
	}
}

// tokenValue recomputes the current marginal value of t: the total decrease
// of Σ Bound_i from picking it now, skipping saturated elements.
func tokenValue(f Family, es []elemState, t *tokEntry) float64 {
	v := 0.0
	for x, e := range t.elems {
		s := &es[e]
		if s.saturated || s.length == 0 {
			continue
		}
		v += s.contrib - contribAfter(f, s.length, s.picked+t.occs[x])
	}
	return v
}

// ratioHeap is a min-heap over cost/value. Entries may be stale; pops
// revalidate against the current value (lazy deletion). Ratios are compared
// as cost₁·value₂ < cost₂·value₁ to avoid dividing by tiny values.
type ratioHeap []*tokEntry

func (h ratioHeap) Len() int { return len(h) }
func (h ratioHeap) Less(i, j int) bool {
	a, b := h[i].cost*h[j].value, h[j].cost*h[i].value
	if a != b {
		return a < b
	}
	// Deterministic tie-breaks: cheaper token first, then smaller id.
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].id < h[j].id
}
func (h ratioHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ratioHeap) Push(x interface{}) { *h = append(*h, x.(*tokEntry)) }
func (h *ratioHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// buildStates prepares the element states and candidate tokens for r.
func buildStates(r *dataset.Set, p Params, ix *index.Inverted, q int) ([]elemState, []*tokEntry, float64) {
	n := len(r.Elements)
	es := make([]elemState, n)
	byToken := make(map[tokens.ID]*tokEntry)
	remaining := 0.0
	for i := range r.Elements {
		el := &r.Elements[i]
		s := &es[i]
		s.length = el.Length
		addOcc := func(t tokens.ID, occ int) {
			e := byToken[t]
			if e == nil {
				e = &tokEntry{id: t, cost: float64(ix.ListLen(t))}
				byToken[t] = e
			}
			e.elems = append(e.elems, i)
			e.occs = append(e.occs, occ)
		}
		if !p.Family.usesChunks() {
			// Word tokens are already distinct: no occurrence map needed.
			s.totalOcc = len(el.Tokens)
			for _, t := range el.Tokens {
				addOcc(t, 1)
			}
		} else {
			s.totalOcc = len(el.Chunks)
			occCount := make(map[tokens.ID]int, len(el.Chunks))
			for _, t := range el.Chunks {
				occCount[t]++
			}
			for t, occ := range occCount {
				addOcc(t, occ)
			}
		}
		s.satSize, s.satOK = simThreshSize(p.Family, p.Alpha, s.length, s.totalOcc)
		s.contrib = contribAfter(p.Family, s.length, 0)
		remaining += s.contrib
	}
	entries := make([]*tokEntry, 0, len(byToken))
	for _, e := range byToken {
		entries = append(entries, e)
	}
	// Deterministic processing order independent of map iteration.
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	return es, entries, remaining
}

// generateGreedy implements the cost/value greedy of §4.3 over the weighted
// scheme, and with dichotomy=true the advanced heuristic of §6.4 in which an
// element whose picked occurrences reach the sim-thresh size saturates: its
// bound drops to 0 and it stops attracting signature tokens.
func generateGreedy(r *dataset.Set, p Params, ix *index.Inverted, q int, dichotomy bool) Signature {
	n := len(r.Elements)
	// Stop only once the bound sum sits a full ValiditySlack below θ, so
	// float drift in `remaining` cannot admit an invalid signature.
	target := p.Theta(n) - ValiditySlack
	es, entries, remaining := buildStates(r, p, ix, q)

	h := make(ratioHeap, 0, len(entries))
	for _, e := range entries {
		e.value = tokenValue(p.Family, es, e)
		if e.value > 0 {
			h = append(h, e)
		}
	}
	heap.Init(&h)

	const valueEps = 1e-15
	for remaining >= target && h.Len() > 0 {
		e := heap.Pop(&h).(*tokEntry)
		cur := tokenValue(p.Family, es, e)
		if cur <= 0 {
			continue // all its elements saturated; drop
		}
		if cur < e.value-valueEps {
			e.value = cur // stale: value shrank, ratio grew; reinsert
			heap.Push(&h, e)
			continue
		}
		// Pick e for every unsaturated element containing it.
		for x, ei := range e.elems {
			s := &es[ei]
			if s.saturated || s.length == 0 {
				continue
			}
			after := contribAfter(p.Family, s.length, s.picked+e.occs[x])
			remaining -= s.contrib - after
			s.contrib = after
			s.picked += e.occs[x]
			s.pickedTokens = append(s.pickedTokens, e.id)
			s.pickedOccs = append(s.pickedOccs, e.occs[x])
			if dichotomy && s.satOK && s.picked >= s.satSize {
				remaining -= s.contrib
				s.contrib = 0
				s.saturated = true
			}
		}
	}

	sig := Signature{Elements: make([]ElemSig, n), Valid: remaining < target}
	for i := range es {
		s := &es[i]
		sig.Elements[i] = ElemSig{
			Tokens: tokens.SortUnique(append([]tokens.ID(nil), s.pickedTokens...)),
			Bound:  s.contrib,
		}
		sig.SumBound += s.contrib
	}
	return sig
}

// applySkylineCut post-processes a weighted signature into a skyline
// signature (§6.3): any element whose signature tokens reach the sim-thresh
// size is cut down to the cheapest sim-thresh-sized subset and its bound
// drops to 0.
func applySkylineCut(sig *Signature, r *dataset.Set, p Params, ix *index.Inverted, q int) {
	if !sig.Valid {
		return
	}
	sum := 0.0
	for i := range sig.Elements {
		el := &r.Elements[i]
		esig := &sig.Elements[i]
		available := len(el.Tokens)
		if p.Family.usesChunks() {
			available = len(el.Chunks)
		}
		satSize, ok := simThreshSize(p.Family, p.Alpha, el.Length, available)
		if ok {
			cut, covered := cheapestCovering(esig.Tokens, el, p.Family, satSize, ix)
			if covered {
				esig.Tokens = cut
				esig.Bound = 0
			}
		}
		sum += esig.Bound
	}
	sig.SumBound = sum
}

// cheapestCovering returns the cheapest subset of candidate tokens whose
// occurrence count within el reaches need, and whether that is possible.
// Under word mode every token counts one occurrence; under edit mode a chunk
// token counts its multiplicity in el.
func cheapestCovering(candidates []tokens.ID, el *dataset.Element, f Family, need int, ix *index.Inverted) ([]tokens.ID, bool) {
	type tc struct {
		id   tokens.ID
		cost int
		occ  int
	}
	var occOf map[tokens.ID]int
	if f.usesChunks() {
		occOf = make(map[tokens.ID]int, len(el.Chunks))
		for _, c := range el.Chunks {
			occOf[c]++
		}
	}
	tcs := make([]tc, 0, len(candidates))
	total := 0
	for _, t := range candidates {
		occ := 1
		if occOf != nil {
			occ = occOf[t]
			if occ == 0 {
				occ = 1 // defensive: token not a chunk of el
			}
		}
		tcs = append(tcs, tc{id: t, cost: ix.ListLen(t), occ: occ})
		total += occ
	}
	if total < need {
		return nil, false
	}
	sort.Slice(tcs, func(i, j int) bool {
		if tcs[i].cost != tcs[j].cost {
			return tcs[i].cost < tcs[j].cost
		}
		return tcs[i].id < tcs[j].id
	})
	var out []tokens.ID
	covered := 0
	for _, t := range tcs {
		if covered >= need {
			break
		}
		out = append(out, t.id)
		covered += t.occ
	}
	return tokens.SortUnique(out), true
}
