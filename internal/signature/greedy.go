package signature

import (
	"container/heap"
	"math"
	"slices"

	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/tokens"
)

// elemState tracks one reference element during greedy selection. Its slice
// fields are persistent scratch: a Generator reuses them across passes, so
// steady-state generation performs no per-query heap allocations.
type elemState struct {
	length    int  // |r_i|: token count (word) or rune length (edit)
	totalOcc  int  // available signature token occurrences
	picked    int  // occurrences picked so far
	satSize   int  // sim-thresh occurrence count, when satOK
	satOK     bool // whether saturation is attainable
	saturated bool
	contrib   float64 // current Bound_i contribution
	// pickedTokens holds the element's distinct picked signature tokens
	// and doubles as the ElemSig.Tokens backing after assembly.
	pickedTokens []tokens.ID
	// cutTokens backs the element's skyline-cut signature when the cut
	// applies (a subset of pickedTokens, chosen cheapest-first).
	cutTokens []tokens.ID
}

// tokEntry is one distinct candidate signature token. Entries live in the
// Generator's arena and keep their slice capacities across passes.
type tokEntry struct {
	id    tokens.ID
	cost  float64 // |I[t]|
	elems []int32 // reference elements containing the token
	occs  []int32 // occurrences per element (chunks can repeat)
	value float64 // value at the time of the last heap push
}

// contribAfter returns Bound_i when k signature token occurrences of an
// element of size `length` are picked: the family's sound upper bound on
// φ(r, s) for any s containing none of them.
func contribAfter(f Family, length, k int) float64 {
	if length == 0 {
		return 0
	}
	l, kk := float64(length), float64(k)
	switch f {
	case FamilyJaccard:
		// (|r|-k)/|r| (§4.2); k never exceeds |r| because occurrences
		// are distinct word tokens.
		return (l - kk) / l
	case FamilyEdit:
		// |r|/(|r|+k) (§7.1, Definition 11).
		return l / (l + kk)
	case FamilyDice:
		// 2(|r|-k)/(2|r|-k): the worst case |s| = |r∩s| = |r|-k.
		return 2 * (l - kk) / (2*l - kk)
	case FamilyCosine:
		// √((|r|-k)/|r|): from |∩|/√(|r||s|) ≤ √(|∩|/|r|).
		return math.Sqrt((l - kk) / l)
	default:
		panic("signature: unknown family")
	}
}

// tokenValue recomputes the current marginal value of t: the total decrease
// of Σ Bound_i from picking it now, skipping saturated elements.
func tokenValue(f Family, es []elemState, t *tokEntry) float64 {
	v := 0.0
	for x, e := range t.elems {
		s := &es[e]
		if s.saturated || s.length == 0 {
			continue
		}
		v += s.contrib - contribAfter(f, s.length, s.picked+int(t.occs[x]))
	}
	return v
}

// ratioHeap is a min-heap over cost/value. Entries may be stale; pops
// revalidate against the current value (lazy deletion). Ratios are compared
// as cost₁·value₂ < cost₂·value₁ to avoid dividing by tiny values.
type ratioHeap []*tokEntry

func (h ratioHeap) Len() int { return len(h) }
func (h ratioHeap) Less(i, j int) bool {
	a, b := h[i].cost*h[j].value, h[j].cost*h[i].value
	if a != b {
		return a < b
	}
	// Deterministic tie-breaks: cheaper token first, then smaller id.
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].id < h[j].id
}
func (h ratioHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ratioHeap) Push(x interface{}) { *h = append(*h, x.(*tokEntry)) }
func (h *ratioHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Generator owns the reusable scratch of signature generation: element
// states, the candidate-token arena with its epoch-stamped dedup tables
// (dense token ids replace the historical per-pass maps), the selection
// heap, and the output Signature's buffers. Steady-state generation of the
// weighted-family schemes performs no per-query heap allocations.
//
// The Signature returned by Generate points into the Generator's buffers
// and is valid only until the next Generate call; one search pass consumes
// it before the next begins. A Generator is not safe for concurrent use;
// create one per worker. The zero value is ready to use.
type Generator struct {
	sig Signature
	es  []elemState
	// arena holds the pass's distinct candidate tokens; slot/stamp give
	// O(1) token → arena-index lookup without a map (stamp[t] == epoch
	// marks slot[t] valid).
	arena []tokEntry
	slot  []int32
	stamp []uint32
	epoch uint32
	// occ* count chunk occurrences within one element (and back the
	// skyline cut's occurrence lookup), epoch-stamped per element.
	occStamp []uint32
	occCnt   []int32
	occEpoch uint32
	occOrder []tokens.ID
	h        ratioHeap
	// tcs is the skyline cut's cost-sorting scratch.
	tcs []tokCost
}

type tokCost struct {
	id   tokens.ID
	cost int
	occ  int
}

// Generate builds a signature of the given kind for reference set r against
// the inverted index ix (whose lengths are the token costs), reusing the
// generator's scratch. Params.Family selects between the Jaccard-style (§4),
// edit-similarity (§7), and the Dice/Cosine generalized formulations; it
// must match the collection's tokenization. Kind Auto is resolved by
// Selector, not here.
func (g *Generator) Generate(kind Kind, r *dataset.Set, p Params, ix *index.Inverted) *Signature {
	if p.Family.usesChunks() != (ix.Collection().Mode == dataset.ModeQGram) {
		panic("signature: Params.Family does not match collection tokenization")
	}
	q := ix.Collection().Q
	switch kind {
	case Weighted:
		g.generateGreedy(r, p, ix, false)
	case Dichotomy:
		g.generateGreedy(r, p, ix, true)
	case Skyline:
		g.generateGreedy(r, p, ix, false)
		g.applySkylineCut(r, p, ix)
	case CombUnweighted:
		g.sig = generateCombUnweighted(r, p, ix, q)
	default:
		panic("signature: Generate requires a concrete scheme kind")
	}
	return &g.sig
}

// bumpEpoch advances the token-dedup epoch, resetting stamps on wrap.
func (g *Generator) bumpEpoch() {
	g.epoch++
	if g.epoch == 0 {
		for i := range g.stamp {
			g.stamp[i] = 0
		}
		g.epoch = 1
	}
}

// bumpOccEpoch advances the per-element occurrence epoch.
func (g *Generator) bumpOccEpoch() {
	g.occEpoch++
	if g.occEpoch == 0 {
		for i := range g.occStamp {
			g.occStamp[i] = 0
		}
		g.occEpoch = 1
	}
}

// ensureTok sizes the token-keyed tables to cover id t (query sets can
// intern tokens past the indexed dictionary's size).
func (g *Generator) ensureTok(t tokens.ID) {
	if int(t) < len(g.stamp) {
		return
	}
	n := int(t) + 1
	if n < 2*len(g.stamp) {
		n = 2 * len(g.stamp)
	}
	stamp := make([]uint32, n)
	copy(stamp, g.stamp)
	g.stamp = stamp
	slot := make([]int32, n)
	copy(slot, g.slot)
	g.slot = slot
}

// ensureOcc sizes the occurrence tables to cover id t.
func (g *Generator) ensureOcc(t tokens.ID) {
	if int(t) < len(g.occStamp) {
		return
	}
	n := int(t) + 1
	if n < 2*len(g.occStamp) {
		n = 2 * len(g.occStamp)
	}
	stamp := make([]uint32, n)
	copy(stamp, g.occStamp)
	g.occStamp = stamp
	cnt := make([]int32, n)
	copy(cnt, g.occCnt)
	g.occCnt = cnt
}

// addOcc records one (element, token, occurrences) triple, creating the
// token's arena entry on first encounter this pass.
func (g *Generator) addOcc(i int, t tokens.ID, occ int, ix *index.Inverted) {
	g.ensureTok(t)
	var idx int32
	if g.stamp[t] == g.epoch {
		idx = g.slot[t]
	} else {
		g.stamp[t] = g.epoch
		if len(g.arena) < cap(g.arena) {
			g.arena = g.arena[:len(g.arena)+1]
		} else {
			g.arena = append(g.arena, tokEntry{})
		}
		idx = int32(len(g.arena) - 1)
		e := &g.arena[idx]
		e.id = t
		e.cost = float64(ix.ListLen(t))
		e.elems = e.elems[:0]
		e.occs = e.occs[:0]
		e.value = 0
		g.slot[t] = idx
	}
	e := &g.arena[idx]
	e.elems = append(e.elems, int32(i))
	e.occs = append(e.occs, int32(occ))
}

// buildStates prepares the element states and candidate tokens for r,
// returning the initial Σ Bound_i.
func (g *Generator) buildStates(r *dataset.Set, p Params, ix *index.Inverted) float64 {
	n := len(r.Elements)
	if cap(g.es) < n {
		g.es = make([]elemState, n)
	}
	g.es = g.es[:n]
	g.arena = g.arena[:0]
	g.bumpEpoch()
	remaining := 0.0
	for i := range r.Elements {
		el := &r.Elements[i]
		s := &g.es[i]
		s.length = el.Length
		s.picked = 0
		s.saturated = false
		s.pickedTokens = s.pickedTokens[:0]
		if !p.Family.usesChunks() {
			// Word tokens are already distinct: no occurrence counting.
			s.totalOcc = len(el.Tokens)
			for _, t := range el.Tokens {
				g.addOcc(i, t, 1, ix)
			}
		} else {
			s.totalOcc = len(el.Chunks)
			g.bumpOccEpoch()
			g.occOrder = g.occOrder[:0]
			for _, t := range el.Chunks {
				g.ensureOcc(t)
				if g.occStamp[t] != g.occEpoch {
					g.occStamp[t] = g.occEpoch
					g.occCnt[t] = 0
					g.occOrder = append(g.occOrder, t)
				}
				g.occCnt[t]++
			}
			for _, t := range g.occOrder {
				g.addOcc(i, t, int(g.occCnt[t]), ix)
			}
		}
		s.satSize, s.satOK = simThreshSize(p.Family, p.Alpha, s.length, s.totalOcc)
		s.contrib = contribAfter(p.Family, s.length, 0)
		remaining += s.contrib
	}
	return remaining
}

// generateGreedy implements the cost/value greedy of §4.3 over the weighted
// scheme, and with dichotomy=true the advanced heuristic of §6.4 in which an
// element whose picked occurrences reach the sim-thresh size saturates: its
// bound drops to 0 and it stops attracting signature tokens. The result
// lands in g.sig.
func (g *Generator) generateGreedy(r *dataset.Set, p Params, ix *index.Inverted, dichotomy bool) {
	n := len(r.Elements)
	// Stop only once the bound sum sits a full ValiditySlack below θ, so
	// float drift in `remaining` cannot admit an invalid signature.
	target := p.Theta(n) - ValiditySlack
	remaining := g.buildStates(r, p, ix)
	es := g.es

	g.h = g.h[:0]
	for idx := range g.arena {
		e := &g.arena[idx]
		e.value = tokenValue(p.Family, es, e)
		if e.value > 0 {
			g.h = append(g.h, e)
		}
	}
	heap.Init(&g.h)

	const valueEps = 1e-15
	for remaining >= target && g.h.Len() > 0 {
		e := heap.Pop(&g.h).(*tokEntry)
		cur := tokenValue(p.Family, es, e)
		if cur <= 0 {
			continue // all its elements saturated; drop
		}
		if cur < e.value-valueEps {
			e.value = cur // stale: value shrank, ratio grew; reinsert
			heap.Push(&g.h, e)
			continue
		}
		// Pick e for every unsaturated element containing it.
		for x, ei := range e.elems {
			s := &es[ei]
			if s.saturated || s.length == 0 {
				continue
			}
			after := contribAfter(p.Family, s.length, s.picked+int(e.occs[x]))
			remaining -= s.contrib - after
			s.contrib = after
			s.picked += int(e.occs[x])
			s.pickedTokens = append(s.pickedTokens, e.id)
			if dichotomy && s.satOK && s.picked >= s.satSize {
				remaining -= s.contrib
				s.contrib = 0
				s.saturated = true
			}
		}
	}

	if cap(g.sig.Elements) < n {
		g.sig.Elements = make([]ElemSig, n)
	}
	g.sig.Elements = g.sig.Elements[:n]
	g.sig.SumBound = 0
	g.sig.Valid = remaining < target
	for i := range es {
		s := &es[i]
		// Picked tokens are distinct by construction (each arena entry is
		// picked at most once and lists an element at most once); sorting
		// in place yields the canonical ElemSig form without copying.
		slices.Sort(s.pickedTokens)
		g.sig.Elements[i] = ElemSig{Tokens: s.pickedTokens, Bound: s.contrib}
		g.sig.SumBound += s.contrib
	}
}

// applySkylineCut post-processes the weighted signature in g.sig into a
// skyline signature (§6.3): any element whose signature tokens reach the
// sim-thresh size is cut down to the cheapest sim-thresh-sized subset and
// its bound drops to 0.
func (g *Generator) applySkylineCut(r *dataset.Set, p Params, ix *index.Inverted) {
	if !g.sig.Valid {
		return
	}
	sum := 0.0
	for i := range g.sig.Elements {
		el := &r.Elements[i]
		esig := &g.sig.Elements[i]
		available := len(el.Tokens)
		if p.Family.usesChunks() {
			available = len(el.Chunks)
		}
		satSize, ok := simThreshSize(p.Family, p.Alpha, el.Length, available)
		if ok {
			if cut, covered := g.cheapestCovering(esig.Tokens, el, p.Family, satSize, ix, &g.es[i]); covered {
				esig.Tokens = cut
				esig.Bound = 0
			}
		}
		sum += esig.Bound
	}
	g.sig.SumBound = sum
}

// cheapestCovering returns the cheapest subset of candidate tokens whose
// occurrence count within el reaches need, and whether that is possible.
// Under word mode every token counts one occurrence; under edit mode a chunk
// token counts its multiplicity in el. The result is written into the
// element's cutTokens scratch.
func (g *Generator) cheapestCovering(candidates []tokens.ID, el *dataset.Element, f Family, need int, ix *index.Inverted, s *elemState) ([]tokens.ID, bool) {
	hasOcc := f.usesChunks()
	if hasOcc {
		g.bumpOccEpoch()
		for _, c := range el.Chunks {
			g.ensureOcc(c)
			if g.occStamp[c] != g.occEpoch {
				g.occStamp[c] = g.occEpoch
				g.occCnt[c] = 0
			}
			g.occCnt[c]++
		}
	}
	g.tcs = g.tcs[:0]
	total := 0
	for _, t := range candidates {
		occ := 1
		if hasOcc {
			g.ensureOcc(t)
			if g.occStamp[t] == g.occEpoch && g.occCnt[t] > 0 {
				occ = int(g.occCnt[t])
			} // else defensive: token not a chunk of el, counts one
		}
		g.tcs = append(g.tcs, tokCost{id: t, cost: ix.ListLen(t), occ: occ})
		total += occ
	}
	if total < need {
		return nil, false
	}
	slices.SortFunc(g.tcs, func(a, b tokCost) int {
		if a.cost != b.cost {
			if a.cost < b.cost {
				return -1
			}
			return 1
		}
		if a.id < b.id {
			return -1
		}
		if a.id > b.id {
			return 1
		}
		return 0
	})
	s.cutTokens = s.cutTokens[:0]
	covered := 0
	for _, t := range g.tcs {
		if covered >= need {
			break
		}
		s.cutTokens = append(s.cutTokens, t.id)
		covered += t.occ
	}
	slices.Sort(s.cutTokens)
	return s.cutTokens, true
}
