package signature

import (
	"fmt"
	"math/rand"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/matching"
	"silkmoth/internal/sim"
	"silkmoth/internal/tokens"
)

// vocabWord returns the name for word id v; ids overlap heavily across sets
// so signatures face realistic frequency skew.
func vocabWord(v int) string { return fmt.Sprintf("w%02d", v) }

func randRawSet(rng *rand.Rand, name string, vocab int) dataset.RawSet {
	n := rng.Intn(4) + 1
	elems := make([]string, n)
	for i := range elems {
		k := rng.Intn(5) + 1
		words := make(map[string]bool)
		for len(words) < k {
			words[vocabWord(rng.Intn(vocab))] = true
		}
		s := ""
		for w := range words {
			if s != "" {
				s += " "
			}
			s += w
		}
		elems[i] = s
	}
	return dataset.RawSet{Name: name, Elements: elems}
}

// adversarialValidityCheck verifies Lemma 1 / Theorem 3 behaviour for one
// generated signature: for an adversarial set S built from R's elements with
// every signature token removed (the Lemma 2 construction), the maximum
// matching score under φ_α stays below θ. This must hold for every scheme
// whose SumBound < θ; for CombUnweighted (whose validity argument is the
// count argument, not the bound sum) it must hold whenever S shares no token
// with the signature, which the construction guarantees too.
func adversarialValidityCheck(t *testing.T, kind Kind, rng *rand.Rand) {
	t.Helper()
	vocab := 20
	var raws []dataset.RawSet
	for i := 0; i < 8; i++ {
		raws = append(raws, randRawSet(rng, fmt.Sprintf("S%d", i), vocab))
	}
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, raws)
	ix := index.Build(coll)

	refColl := dataset.BuildWord(dict, []dataset.RawSet{randRawSet(rng, "R", vocab)})
	r := &refColl.Sets[0]

	deltas := []float64{0.5, 0.7, 0.85}
	alphas := []float64{0, 0.4, 0.7}
	for _, delta := range deltas {
		for _, alpha := range alphas {
			p := Params{Delta: delta, Alpha: alpha}
			sig := Generate(kind, r, p, ix)
			if !sig.Valid {
				t.Fatalf("%v: signature invalid under Jaccard (δ=%v α=%v)", kind, delta, alpha)
			}
			theta := p.Theta(len(r.Elements))

			// Lemma 2 adversary: s_i = r_i \ K^T.
			sigTokens := make(map[tokens.ID]bool)
			for _, id := range sig.TokenSet() {
				sigTokens[id] = true
			}
			adv := make([][]tokens.ID, len(r.Elements))
			for i, el := range r.Elements {
				for _, tok := range el.Tokens {
					if !sigTokens[tok] {
						adv[i] = append(adv[i], tok)
					}
				}
			}
			score := matching.Score(len(r.Elements), len(adv), func(i, j int) float64 {
				return sim.Alpha(sim.JaccardSorted(r.Elements[i].Tokens, adv[j]), alpha)
			})
			if score >= theta {
				t.Fatalf("%v δ=%v α=%v: adversarial set scores %v ≥ θ=%v (signature not valid)",
					kind, delta, alpha, score, theta)
			}
		}
	}
}

func TestAdversarialValidityWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 150; i++ {
		adversarialValidityCheck(t, Weighted, rng)
	}
}

func TestAdversarialValiditySkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for i := 0; i < 150; i++ {
		adversarialValidityCheck(t, Skyline, rng)
	}
}

func TestAdversarialValidityDichotomy(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < 150; i++ {
		adversarialValidityCheck(t, Dichotomy, rng)
	}
}

func TestAdversarialValidityCombUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for i := 0; i < 150; i++ {
		adversarialValidityCheck(t, CombUnweighted, rng)
	}
}

// The per-element Bound must be sound: any element sharing no signature
// token with element i has φ_α ≤ Bound_i. Exercise it with adversarial
// per-element probes.
func TestElementBoundSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 200; trial++ {
		vocab := 15
		var raws []dataset.RawSet
		for i := 0; i < 6; i++ {
			raws = append(raws, randRawSet(rng, fmt.Sprintf("S%d", i), vocab))
		}
		dict := tokens.NewDictionary()
		coll := dataset.BuildWord(dict, raws)
		ix := index.Build(coll)
		refColl := dataset.BuildWord(dict, []dataset.RawSet{randRawSet(rng, "R", vocab)})
		r := &refColl.Sets[0]

		for _, kind := range []Kind{Weighted, Skyline, Dichotomy, CombUnweighted} {
			alpha := []float64{0, 0.5, 0.75}[rng.Intn(3)]
			sig := Generate(kind, r, Params{Delta: 0.7, Alpha: alpha}, ix)
			for i, es := range sig.Elements {
				sigSet := make(map[tokens.ID]bool)
				for _, id := range es.Tokens {
					sigSet[id] = true
				}
				// Probe: r_i with signature tokens stripped plus noise.
				var probe []tokens.ID
				for _, tok := range r.Elements[i].Tokens {
					if !sigSet[tok] {
						probe = append(probe, tok)
					}
				}
				probe = append(probe, tokens.ID(dict.Size()+rng.Intn(3))) // unseen token
				probe = tokens.SortUnique(probe)
				phi := sim.Alpha(sim.JaccardSorted(r.Elements[i].Tokens, probe), alpha)
				if phi > es.Bound+1e-12 {
					t.Fatalf("%v: element %d bound %v violated by probe with φ=%v",
						kind, i, es.Bound, phi)
				}
			}
		}
	}
}

// Under edit similarity, the adversarial construction uses strings sharing
// no q-chunk with the signature: mutate every signature chunk's characters.
func TestEditSchemeValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	q := 2
	letters := "abcdefgh"
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	for trial := 0; trial < 100; trial++ {
		var raws []dataset.RawSet
		for i := 0; i < 5; i++ {
			raws = append(raws, dataset.RawSet{
				Name:     fmt.Sprintf("S%d", i),
				Elements: []string{randStr(rng.Intn(6) + 4), randStr(rng.Intn(6) + 4)},
			})
		}
		dict := tokens.NewDictionary()
		coll := dataset.BuildQGram(dict, raws, q)
		ix := index.Build(coll)
		refColl := dataset.BuildQGram(dict, []dataset.RawSet{{
			Name:     "R",
			Elements: []string{randStr(rng.Intn(6) + 4), randStr(rng.Intn(6) + 4), randStr(rng.Intn(6) + 4)},
		}}, q)
		r := &refColl.Sets[0]

		for _, kind := range []Kind{Weighted, Skyline, Dichotomy} {
			p := Params{Delta: 0.6, Alpha: 0, Family: FamilyEdit}
			sig := Generate(kind, r, p, ix)
			if !sig.Valid {
				continue // infeasible is allowed under edit similarity
			}
			theta := p.Theta(len(r.Elements))
			if sig.SumBound >= theta {
				t.Fatalf("%v: valid edit signature with SumBound %v ≥ θ %v", kind, sig.SumBound, theta)
			}
			// An adversary sharing no q-gram at all: strings over a
			// disjoint alphabet. Its matching score must be < θ.
			adv := make([]string, len(r.Elements))
			for i := range adv {
				adv[i] = randUpper(rng, len(r.Elements[i].Raw))
			}
			score := matching.Score(len(r.Elements), len(adv), func(i, j int) float64 {
				return sim.Eds(r.Elements[i].Raw, adv[j])
			})
			if score >= theta {
				t.Fatalf("%v: disjoint-alphabet adversary scores %v ≥ θ %v", kind, score, theta)
			}
		}
	}
}

func randUpper(rng *rand.Rand, n int) string {
	letters := "QRSTUVWX"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
