package signature

import (
	"fmt"
	"math/rand"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/tokens"
)

// benchSetup builds a 2000-set corpus with realistic Zipf-ish skew and one
// reference set, the shape one signature generation sees in discovery.
func benchSetup(setSize int) (*dataset.Set, *index.Inverted) {
	rng := rand.New(rand.NewSource(3))
	var raws []dataset.RawSet
	mkElem := func() string {
		s := ""
		for i := 0; i < 8; i++ {
			if i > 0 {
				s += " "
			}
			// Skewed vocabulary: low ids much more frequent.
			s += fmt.Sprintf("w%d", rng.Intn(rng.Intn(400)+1))
		}
		return s
	}
	for i := 0; i < 2000; i++ {
		elems := make([]string, 5)
		for j := range elems {
			elems[j] = mkElem()
		}
		raws = append(raws, dataset.RawSet{Name: fmt.Sprintf("S%d", i), Elements: elems})
	}
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, raws)
	ix := index.Build(coll)
	relems := make([]string, setSize)
	for j := range relems {
		relems[j] = mkElem()
	}
	refColl := dataset.BuildWord(dict, []dataset.RawSet{{Name: "R", Elements: relems}})
	return &refColl.Sets[0], ix
}

// BenchmarkGenerate measures one signature generation per scheme — the
// fixed cost of every search pass. The paper reports it as negligible
// against candidate verification; these numbers confirm that.
func BenchmarkGenerate(b *testing.B) {
	r, ix := benchSetup(20)
	for _, kind := range []Kind{Weighted, CombUnweighted, Skyline, Dichotomy} {
		for _, alpha := range []float64{0, 0.7} {
			b.Run(fmt.Sprintf("%s/alpha=%.1f", kind, alpha), func(b *testing.B) {
				p := Params{Delta: 0.75, Alpha: alpha}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					Generate(kind, r, p, ix)
				}
			})
		}
	}
}

// BenchmarkGenerateLargeSet is the lazy-heap stress case: a reference set
// with hundreds of elements and thousands of candidate tokens.
func BenchmarkGenerateLargeSet(b *testing.B) {
	r, ix := benchSetup(200)
	p := Params{Delta: 0.75, Alpha: 0.7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(Dichotomy, r, p, ix)
	}
}
