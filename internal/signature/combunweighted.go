package signature

import (
	"math"
	"sort"

	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/tokens"
)

// generateCombUnweighted implements the combined unweighted scheme of §6.2,
// the FastJoin-style baseline: for the maximum matching score to reach
// θ there must be at least c = ⌈θ⌉ element pairs with positive similarity,
// so removing any c-1 token occurrences from the multiset R^T leaves a valid
// signature (§4.2, "unweighted signature scheme"). The removal greedy drops
// the occurrences with the longest inverted lists. With α > 0, each element
// is additionally cut down to its sim-thresh signature when possible (§6.2).
//
// Under edit similarity the scheme requires α > 0 and q < α/(1-α); positive
// edit similarity does not imply a shared q-gram, so without that constraint
// there is no valid unweighted signature and the result is marked invalid
// (the engine then falls back to a full scan, mirroring FastJoin's own
// limitation, paper footnote 12).
func generateCombUnweighted(r *dataset.Set, p Params, ix *index.Inverted, q int) Signature {
	n := len(r.Elements)
	theta := p.Theta(n)
	sig := Signature{Elements: make([]ElemSig, n), Valid: true}

	if p.Family.usesChunks() {
		if p.Alpha <= 0 || float64(q) >= p.Alpha/(1-p.Alpha) {
			sig.Valid = false
			return sig
		}
	}

	c := int(math.Ceil(theta - 1e-9))
	if c < 1 {
		c = 1
	}
	budget := c - 1 // occurrences we may remove

	// One removal unit per distinct (element, token); under edit similarity
	// it weighs the token's occurrence count in the element.
	type unit struct {
		elem int
		tok  tokens.ID
		occ  int
		cost int
	}
	var units []unit
	occLeft := make([]map[tokens.ID]int, n) // remaining occurrences per element
	for i := range r.Elements {
		el := &r.Elements[i]
		occ := make(map[tokens.ID]int)
		if !p.Family.usesChunks() {
			for _, t := range el.Tokens {
				occ[t] = 1
			}
		} else {
			for _, t := range el.Chunks {
				occ[t]++
			}
		}
		occLeft[i] = occ
		for t, o := range occ {
			units = append(units, unit{elem: i, tok: t, occ: o, cost: ix.ListLen(t)})
		}
	}
	sort.Slice(units, func(a, b int) bool {
		if units[a].cost != units[b].cost {
			return units[a].cost > units[b].cost // longest lists removed first
		}
		if units[a].tok != units[b].tok {
			return units[a].tok < units[b].tok
		}
		return units[a].elem < units[b].elem
	})
	for _, u := range units {
		if budget <= 0 {
			break
		}
		if u.occ > budget {
			continue // cannot afford a partial removal; try cheaper units
		}
		budget -= u.occ
		delete(occLeft[u.elem], u.tok)
	}

	// Assemble per-element signatures with the α cut.
	for i := range r.Elements {
		el := &r.Elements[i]
		keep := make([]tokens.ID, 0, len(occLeft[i]))
		occs := 0
		for t, o := range occLeft[i] {
			keep = append(keep, t)
			occs += o
		}
		keep = tokens.SortUnique(keep)
		// contribAfter's k counts the element's signature occurrences:
		// the kept distinct tokens under word mode, the kept chunk
		// occurrences under edit mode.
		var bound float64
		if !p.Family.usesChunks() {
			bound = contribAfter(p.Family, el.Length, len(keep))
		} else {
			bound = contribAfter(p.Family, el.Length, occs)
		}
		available := len(el.Tokens)
		if p.Family.usesChunks() {
			available = len(el.Chunks)
		}
		if satSize, ok := simThreshSize(p.Family, p.Alpha, el.Length, available); ok {
			if cut, covered := cheapestCoveringAlloc(keep, el, p.Family, satSize, ix); covered {
				keep = cut
				bound = 0
			}
		}
		sig.Elements[i] = ElemSig{Tokens: keep, Bound: bound}
		sig.SumBound += bound
	}
	return sig
}

// cheapestCoveringAlloc is the baseline's allocation-per-call form of the
// covering selection: it delegates to Generator.cheapestCovering on a
// throwaway generator (one covering rule for every scheme) and copies the
// result out of the generator's scratch. CombUnweighted exists as the
// paper's comparison baseline, so it does not thread worker scratch
// through.
func cheapestCoveringAlloc(candidates []tokens.ID, el *dataset.Element, f Family, need int, ix *index.Inverted) ([]tokens.ID, bool) {
	var g Generator
	var s elemState
	cut, ok := g.cheapestCovering(candidates, el, f, need, ix, &s)
	if !ok {
		return nil, false
	}
	return append([]tokens.ID(nil), cut...), true
}
