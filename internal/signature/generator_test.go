package signature

import (
	"fmt"
	"math/rand"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/raceflag"
	"silkmoth/internal/tokens"
)

// randomWordSetup builds a random word-mode corpus and returns its index
// plus the tokenized references.
func randomWordSetup(seed int64, nSets, nRefs int) ([]*dataset.Set, *index.Inverted) {
	rng := rand.New(rand.NewSource(seed))
	mk := func(n int) []dataset.RawSet {
		raws := make([]dataset.RawSet, n)
		for i := range raws {
			ne := 1 + rng.Intn(5)
			elems := make([]string, ne)
			for j := range elems {
				k := 1 + rng.Intn(5)
				s := ""
				for w := 0; w < k; w++ {
					if w > 0 {
						s += " "
					}
					s += fmt.Sprintf("t%d", rng.Intn(30))
				}
				elems[j] = s
			}
			raws[i] = dataset.RawSet{Name: fmt.Sprintf("s%d", i), Elements: elems}
		}
		return raws
	}
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, mk(nSets))
	ix := index.Build(coll)
	refColl := dataset.BuildWord(dict, mk(nRefs))
	refs := make([]*dataset.Set, nRefs)
	for i := range refs {
		refs[i] = &refColl.Sets[i]
	}
	return refs, ix
}

func sigEqual(a, b *Signature) bool {
	if a.Valid != b.Valid || a.SumBound != b.SumBound || len(a.Elements) != len(b.Elements) {
		return false
	}
	for i := range a.Elements {
		ea, eb := &a.Elements[i], &b.Elements[i]
		if ea.Bound != eb.Bound || len(ea.Tokens) != len(eb.Tokens) {
			return false
		}
		for x := range ea.Tokens {
			if ea.Tokens[x] != eb.Tokens[x] {
				return false
			}
		}
	}
	return true
}

// TestGeneratorReuseMatchesFresh drives one Generator across many
// references and schemes, checking every signature bit-for-bit against a
// fresh generation: arena and buffer reuse must never leak state between
// passes.
func TestGeneratorReuseMatchesFresh(t *testing.T) {
	refs, ix := randomWordSetup(11, 40, 25)
	for _, alpha := range []float64{0, 0.5} {
		p := Params{Delta: 0.6, Alpha: alpha}
		var g Generator
		for _, kind := range []Kind{Weighted, Dichotomy, Skyline, CombUnweighted} {
			for ri, r := range refs {
				got := g.Generate(kind, r, p, ix)
				fresh := Generate(kind, r, p, ix)
				if !sigEqual(got, &fresh) {
					t.Fatalf("α=%v %v ref %d: reused generator diverged from fresh:\n got=%+v\nwant=%+v",
						alpha, kind, ri, got, fresh)
				}
			}
		}
	}
}

// TestSelectorAutoPicksCheapest pins the Auto cost model: the selected
// signature's probe cost never exceeds the other candidate's, and at α = 0
// the selector short-circuits to Weighted.
func TestSelectorAutoPicksCheapest(t *testing.T) {
	refs, ix := randomWordSetup(13, 40, 25)
	var sel Selector
	p := Params{Delta: 0.6}
	for _, r := range refs {
		_, kind := sel.Generate(Auto, r, p, ix)
		if kind != Weighted {
			t.Fatalf("α=0 Auto must resolve to Weighted, got %v", kind)
		}
	}
	p.Alpha = 0.5
	var gen Generator
	for ri, r := range refs {
		sig, kind := sel.Generate(Auto, r, p, ix)
		cost := ProbeCost(sig, ix)
		costD := ProbeCost(gen.Generate(Dichotomy, r, p, ix), ix)
		costS := ProbeCost(gen.Generate(Skyline, r, p, ix), ix)
		minCost := costD
		if costS < minCost {
			minCost = costS
		}
		if cost != minCost {
			t.Fatalf("ref %d: Auto picked %v with cost %d, cheapest candidate costs %d (dich %d, sky %d)",
				ri, kind, cost, minCost, costD, costS)
		}
		if kind != Dichotomy && kind != Skyline {
			t.Fatalf("ref %d: α>0 Auto must pick Dichotomy or Skyline, got %v", ri, kind)
		}
	}
}

// TestGeneratorAllocs pins steady-state generation allocations for the
// weighted-family schemes at zero.
func TestGeneratorAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; budgets hold only in plain builds")
	}
	refs, ix := randomWordSetup(17, 60, 1)
	r := refs[0]
	p := Params{Delta: 0.6, Alpha: 0.5}
	for _, kind := range []Kind{Weighted, Dichotomy, Skyline} {
		var g Generator
		g.Generate(kind, r, p, ix)
		g.Generate(kind, r, p, ix)
		if got := testing.AllocsPerRun(100, func() { g.Generate(kind, r, p, ix) }); got > 0 {
			t.Errorf("%v: steady-state generation allocates %.1f objects, want 0", kind, got)
		}
	}
}
