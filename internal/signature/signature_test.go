package signature

import (
	"math"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/paperdata"
	"silkmoth/internal/tokens"
)

// paperSetup tokenizes Table 2's collection S, builds its inverted index,
// and tokenizes the reference R against the same dictionary.
func paperSetup(t *testing.T) (*dataset.Set, *index.Inverted, *tokens.Dictionary) {
	t.Helper()
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, paperdata.CollectionS())
	ix := index.Build(coll)
	refColl := dataset.BuildWord(dict, []dataset.RawSet{paperdata.ReferenceR()})
	return &refColl.Sets[0], ix, dict
}

// tokenNames maps signature token ids back to strings for assertions.
func tokenNames(d *tokens.Dictionary, ids []tokens.ID) map[string]bool {
	out := make(map[string]bool, len(ids))
	for _, id := range ids {
		out[d.String(id)] = true
	}
	return out
}

func TestWeightedSchemeConditionHolds(t *testing.T) {
	r, ix, _ := paperSetup(t)
	p := Params{Delta: 0.7}
	sig := Generate(Weighted, r, p, ix)
	if !sig.Valid {
		t.Fatal("weighted signature must always be valid under Jaccard")
	}
	theta := p.Theta(len(r.Elements))
	if sig.SumBound >= theta {
		t.Errorf("weighted condition violated: SumBound %v >= θ %v", sig.SumBound, theta)
	}
	// The paper's Example 7 heuristic reaches total inverted-list cost
	// 1+1+1+3+3 = 9; the greedy must not do worse than that on this input.
	cost := 0
	for _, id := range sig.TokenSet() {
		cost += ix.ListLen(id)
	}
	if cost > 9 {
		t.Errorf("greedy cost = %d, paper's heuristic achieves 9", cost)
	}
}

func TestWeightedBoundsMatchDefinition(t *testing.T) {
	r, ix, _ := paperSetup(t)
	sig := Generate(Weighted, r, Params{Delta: 0.7}, ix)
	for i, es := range sig.Elements {
		want := float64(r.Elements[i].Length-len(es.Tokens)) / float64(r.Elements[i].Length)
		if math.Abs(es.Bound-want) > 1e-12 {
			t.Errorf("element %d bound = %v, want (|r|-|k|)/|r| = %v", i, es.Bound, want)
		}
	}
}

// Paper Example 13: dichotomy with α = δ = 0.7 on Table 2 yields the flat
// signature {t11, t12} = {Chicago, IL}.
func TestDichotomyPaperExample13(t *testing.T) {
	r, ix, dict := paperSetup(t)
	sig := Generate(Dichotomy, r, Params{Delta: 0.7, Alpha: 0.7}, ix)
	if !sig.Valid {
		t.Fatal("dichotomy signature should be valid")
	}
	names := tokenNames(dict, sig.TokenSet())
	if len(names) != 2 || !names["Chicago"] || !names["IL"] {
		t.Errorf("dichotomy signature = %v, want {Chicago, IL}", names)
	}
	// r3 saturated: bound 0; r1 and r2 contribute 1 each; 2 < θ = 2.1.
	if sig.Elements[2].Bound != 0 {
		t.Errorf("r3 should be saturated, bound = %v", sig.Elements[2].Bound)
	}
	if math.Abs(sig.SumBound-2.0) > 1e-12 {
		t.Errorf("SumBound = %v, want 2.0", sig.SumBound)
	}
}

// Example 10's sim-thresh size: α = 0.7 and |r| = 5 → ⌊0.3·5⌋+1 = 2.
func TestSimThreshSizeJaccard(t *testing.T) {
	size, ok := simThreshSize(FamilyJaccard, 0.7, 5, 5)
	if !ok || size != 2 {
		t.Errorf("simThreshSize = %d,%v; want 2,true", size, ok)
	}
	// α = 0 never saturates.
	if _, ok := simThreshSize(FamilyJaccard, 0, 5, 5); ok {
		t.Error("α=0 must not saturate")
	}
	// Empty elements never saturate.
	if _, ok := simThreshSize(FamilyJaccard, 0.7, 0, 0); ok {
		t.Error("empty element must not saturate")
	}
	// Requirement above availability fails.
	if _, ok := simThreshSize(FamilyJaccard, 0.1, 10, 5); ok {
		t.Error("size beyond availability must not saturate")
	}
}

func TestSimThreshSizeEdit(t *testing.T) {
	// α = 0.8, |r| = 12 → ⌊0.25·12⌋+1 = 4 chunk occurrences.
	size, ok := simThreshSize(FamilyEdit, 0.8, 12, 4)
	if !ok || size != 4 {
		t.Errorf("edit simThreshSize = %d,%v; want 4,true", size, ok)
	}
	// With only 3 chunks available it is unattainable.
	if _, ok := simThreshSize(FamilyEdit, 0.8, 12, 3); ok {
		t.Error("edit saturation should be unattainable with too few chunks")
	}
}

func TestSkylineReducesToWeightedAtAlphaZero(t *testing.T) {
	r, ix, _ := paperSetup(t)
	w := Generate(Weighted, r, Params{Delta: 0.7}, ix)
	s := Generate(Skyline, r, Params{Delta: 0.7, Alpha: 0}, ix)
	d := Generate(Dichotomy, r, Params{Delta: 0.7, Alpha: 0}, ix)
	ws, ss, ds := w.TokenSet(), s.TokenSet(), d.TokenSet()
	if len(ws) != len(ss) || len(ws) != len(ds) {
		t.Fatalf("schemes should coincide at α=0: %v %v %v", ws, ss, ds)
	}
	for i := range ws {
		if ws[i] != ss[i] || ws[i] != ds[i] {
			t.Fatalf("schemes diverge at α=0: %v %v %v", ws, ss, ds)
		}
	}
}

func TestSkylineCutZeroesBounds(t *testing.T) {
	r, ix, _ := paperSetup(t)
	p := Params{Delta: 0.7, Alpha: 0.7}
	sig := Generate(Skyline, r, p, ix)
	if !sig.Valid {
		t.Fatal("skyline should be valid")
	}
	theta := p.Theta(len(r.Elements))
	if sig.SumBound >= theta {
		t.Errorf("skyline SumBound %v >= θ %v", sig.SumBound, theta)
	}
	// Any element with ≥ satSize (=2) signature tokens must be cut to
	// exactly the cheapest 2 and have bound 0.
	for i, es := range sig.Elements {
		if len(es.Tokens) >= 2 && es.Bound != 0 {
			t.Errorf("element %d with %d tokens should have bound 0, got %v",
				i, len(es.Tokens), es.Bound)
		}
		if len(es.Tokens) > 2 {
			t.Errorf("element %d not cut: %d tokens", i, len(es.Tokens))
		}
	}
}

func TestCombUnweightedValid(t *testing.T) {
	r, ix, _ := paperSetup(t)
	sig := Generate(CombUnweighted, r, Params{Delta: 0.7}, ix)
	if !sig.Valid {
		t.Fatal("comb-unweighted should be valid under Jaccard")
	}
	// c-1 = ⌈2.1⌉-1 = 2 occurrences removed from 15: at least 13 remain.
	total := 0
	for _, es := range sig.Elements {
		total += len(es.Tokens)
	}
	if total < 13 {
		t.Errorf("comb-unweighted removed too much: %d tokens left", total)
	}
	// Example 5: removing t11 and t12 is not what the longest-list greedy
	// does; it removes the two most frequent occurrences (t1 twice or
	// t1+t2). Either way the two occurrences with the longest lists go.
	if total > 13 {
		t.Errorf("comb-unweighted removed too little: %d tokens left", total)
	}
}

func TestCombUnweightedEditRequiresAlpha(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildQGram(dict, []dataset.RawSet{
		{Name: "S", Elements: []string{"Database", "Systems"}},
	}, 3)
	ix := index.Build(coll)
	refColl := dataset.BuildQGram(dict, []dataset.RawSet{
		{Name: "R", Elements: []string{"Databases", "System"}},
	}, 3)
	r := &refColl.Sets[0]
	// α = 0: positive Eds does not imply a shared gram → invalid.
	sig := Generate(CombUnweighted, r, Params{Delta: 0.8, Alpha: 0, Family: FamilyEdit}, ix)
	if sig.Valid {
		t.Error("comb-unweighted must be invalid for edit similarity at α=0")
	}
	// q = 3 ≥ α/(1-α) = 7/3 at α = 0.7 → invalid.
	sig = Generate(CombUnweighted, r, Params{Delta: 0.8, Alpha: 0.7, Family: FamilyEdit}, ix)
	if sig.Valid {
		t.Error("comb-unweighted must be invalid when q ≥ α/(1-α)")
	}
	// α = 0.8 → q < 4: q = 3 is fine.
	sig = Generate(CombUnweighted, r, Params{Delta: 0.8, Alpha: 0.8, Family: FamilyEdit}, ix)
	if !sig.Valid {
		t.Error("comb-unweighted should be valid at α=0.8, q=3")
	}
}

func TestEditWeightedScheme(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildQGram(dict, []dataset.RawSet{
		{Name: "S1", Elements: []string{"Database Systems", "Concepts"}},
		{Name: "S2", Elements: []string{"Databose Systems", "Concapts"}},
	}, 2)
	ix := index.Build(coll)
	refColl := dataset.BuildQGram(dict, []dataset.RawSet{
		{Name: "R", Elements: []string{"Database Systems", "Concepts"}},
	}, 2)
	r := &refColl.Sets[0]
	p := Params{Delta: 0.7, Family: FamilyEdit}
	sig := Generate(Weighted, r, p, ix)
	if !sig.Valid {
		t.Fatal("q=2 < δ/(1-δ)=2.33 should admit a valid signature (§7.3)")
	}
	theta := p.Theta(len(r.Elements))
	if sig.SumBound >= theta {
		t.Errorf("edit weighted condition violated: %v >= %v", sig.SumBound, theta)
	}
	// Per Definition 11 the per-element bound is |r|/(|r|+k).
	for i, es := range sig.Elements {
		el := &r.Elements[i]
		if len(es.Tokens) == 0 {
			continue
		}
		if es.Bound >= 1 || es.Bound <= 0 {
			t.Errorf("element %d bound %v out of (0,1)", i, es.Bound)
		}
		if es.Bound < float64(el.Length)/float64(el.Length+len(el.Chunks)) {
			t.Errorf("element %d bound below the all-chunks floor", i)
		}
	}
}

// §7.3: when q ≥ δ/(1-δ), the weighted scheme for edit similarity can be
// empty and the signature must be reported invalid.
func TestEditWeightedInfeasibleLargeQ(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildQGram(dict, []dataset.RawSet{
		{Name: "S1", Elements: []string{"abcdefgh", "ijklmnop"}},
	}, 8)
	ix := index.Build(coll)
	refColl := dataset.BuildQGram(dict, []dataset.RawSet{
		{Name: "R", Elements: []string{"abcdefgh", "ijklmnop"}},
	}, 8)
	r := &refColl.Sets[0]
	// With q=8 and |r|=8 there is one chunk per element, so even picking
	// every chunk leaves Σ|r|/(|r|+k) = 2·(8/9) ≈ 1.78 ≥ θ = 0.85·2 = 1.7:
	// the weighted scheme is empty (q ≥ δ/(1-δ) ≈ 5.7, §7.3) → infeasible.
	sig := Generate(Weighted, r, Params{Delta: 0.85, Family: FamilyEdit}, ix)
	if sig.Valid {
		t.Errorf("expected infeasible signature, got SumBound %v", sig.SumBound)
	}
}

func TestEmptyReferenceSet(t *testing.T) {
	_, ix, _ := paperSetup(t)
	empty := &dataset.Set{Name: "empty"}
	sig := Generate(Weighted, empty, Params{Delta: 0.7}, ix)
	// θ = 0 and SumBound = 0: 0 < 0 is false → invalid: the engine falls
	// back to scanning, where nothing can be related anyway.
	if sig.Valid {
		t.Error("empty set signature should be invalid (θ = 0)")
	}
}

func TestSetWithEmptyElements(t *testing.T) {
	_, ix, dict := paperSetup(t)
	refColl := dataset.BuildWord(dict, []dataset.RawSet{
		{Name: "R", Elements: []string{"77 Mass Ave", "", "5th St"}},
	})
	r := &refColl.Sets[0]
	sig := Generate(Weighted, r, Params{Delta: 0.5}, ix)
	if !sig.Valid {
		t.Fatal("signature should be valid")
	}
	if sig.Elements[1].Bound != 0 || len(sig.Elements[1].Tokens) != 0 {
		t.Errorf("empty element should have no tokens and bound 0: %+v", sig.Elements[1])
	}
}

// A reference whose δ is high but whose elements are few: when the number of
// non-empty elements already falls below θ, the empty signature is valid and
// no set can be related.
func TestAllEmptyElementsBelowTheta(t *testing.T) {
	_, ix, dict := paperSetup(t)
	refColl := dataset.BuildWord(dict, []dataset.RawSet{
		{Name: "R", Elements: []string{"", "", "77"}},
	})
	r := &refColl.Sets[0]
	sig := Generate(Weighted, r, Params{Delta: 0.7}, ix)
	// θ = 2.1 but only one non-empty element: SumBound ≤ 1 < 2.1 with no
	// tokens at all.
	if !sig.Valid {
		t.Fatal("signature should be valid")
	}
	if len(sig.TokenSet()) != 0 {
		t.Errorf("expected empty signature, got %v", sig.TokenSet())
	}
}

func TestKindString(t *testing.T) {
	if Weighted.String() != "WEIGHTED" || CombUnweighted.String() != "COMBUNWEIGHTED" ||
		Skyline.String() != "SKYLINE" || Dichotomy.String() != "DICHOTOMY" {
		t.Error("Kind.String broken")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestGenerateUnknownKindPanics(t *testing.T) {
	r, ix, _ := paperSetup(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown kind")
		}
	}()
	Generate(Kind(42), r, Params{Delta: 0.7}, ix)
}

func TestThetaHelper(t *testing.T) {
	p := Params{Delta: 0.7}
	if p.Theta(3) != 2.1 && math.Abs(p.Theta(3)-2.1) > 1e-12 {
		t.Errorf("Theta(3) = %v", p.Theta(3))
	}
}
