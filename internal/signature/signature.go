// Package signature implements SilkMoth's valid-signature generation
// (paper §4, §6, §7). A signature for a reference set R is a subset of R's
// tokens such that any set S related to R must share at least one signature
// token. Selecting the cheapest valid signature is NP-complete (paper
// Theorem 2), so the package implements the paper's greedy cost/value
// heuristics for four schemes:
//
//   - Weighted (§4.2/§4.3): the full space of valid signatures for α = 0.
//   - CombUnweighted (§6.2): the state-of-the-art FastJoin-style scheme,
//     kept as the comparison baseline.
//   - Skyline (§6.3): weighted signature post-cut by the similarity
//     threshold α.
//   - Dichotomy (§6.4): cost/value greedy that saturates whole elements,
//     letting the sim-thresh signature cut them down.
//
// Under edit similarity (paper §7) signature tokens are q-chunks rather than
// word tokens, with the bound Σ |r|/(|r|+|k|) < θ in place of
// Σ (|r|-|k|)/|r| < θ.
package signature

import (
	"fmt"
	"math"

	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/tokens"
)

// Kind selects a signature scheme.
type Kind int

const (
	// Weighted is the weighted signature scheme of §4.2 (α ignored).
	Weighted Kind = iota
	// CombUnweighted is the combined unweighted scheme of §6.2, which
	// "more precisely describes the signature scheme proposed by
	// [FastJoin]". It is the baseline SilkMoth is compared against.
	CombUnweighted
	// Skyline is the skyline scheme of §6.3.
	Skyline
	// Dichotomy is the dichotomy scheme of §6.4.
	Dichotomy
	// Auto selects among the weighted-family schemes per query by the
	// §4.3 cost model over inverted-index posting statistics: signature
	// selection is framed as cost minimization, so the engine generates
	// the candidate signatures and probes with the cheapest (Selector).
	// Because every valid signature yields exactly the same matches,
	// Auto never changes results — only how much the index is probed.
	Auto
)

func (k Kind) String() string {
	switch k {
	case Weighted:
		return "WEIGHTED"
	case CombUnweighted:
		return "COMBUNWEIGHTED"
	case Skyline:
		return "SKYLINE"
	case Dichotomy:
		return "DICHOTOMY"
	case Auto:
		return "AUTO"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ElemSig is the per-element part of an unflattened signature.
type ElemSig struct {
	// Tokens is l_i: the signature tokens of element i, deduplicated.
	// Under edit similarity these are q-chunk ids (which are also q-gram
	// strings, so they can be probed against the q-gram inverted index).
	Tokens []tokens.ID
	// Bound is a sound upper bound on φ_α(r_i, s) for any element s that
	// contains none of Tokens. Saturated elements (sim-thresh cut) have
	// Bound 0; elements never contributing (empty) also have Bound 0.
	Bound float64
}

// Signature is an unflattened valid signature for one reference set.
type Signature struct {
	// Elements holds one ElemSig per element of the reference set.
	Elements []ElemSig
	// SumBound is Σ_i Bound_i, the upper bound on the maximum matching
	// score against any set sharing no signature token. For weighted-
	// family schemes SumBound < θ by construction; for CombUnweighted it
	// may exceed θ (its validity rests on the count argument instead), in
	// which case the refinement filters must not prune on bounds alone.
	SumBound float64
	// Valid reports whether the scheme could produce a valid signature.
	// When false (possible only under edit similarity, §7.3), the engine
	// must compare the reference against every set.
	Valid bool
}

// TokenSet returns the deduplicated union of all element signature tokens
// (the flattened signature K^T_R).
func (s *Signature) TokenSet() []tokens.ID {
	var all []tokens.ID
	for i := range s.Elements {
		all = append(all, s.Elements[i].Tokens...)
	}
	return tokens.SortUnique(all)
}

// Family identifies the per-element similarity bound shape a signature is
// generated under. The paper derives the weighted scheme for Jaccard (§4.2)
// and edit similarity (§7.1) and notes other token- and character-based
// functions "can be supported in similar ways"; Dice and Cosine instantiate
// that claim with their own sound bounds.
type Family int

const (
	// FamilyJaccard: missing k of |r| tokens bounds φ by (|r|-k)/|r|.
	FamilyJaccard Family = iota
	// FamilyEdit: missing k q-chunk occurrences forces LD ≥ k, bounding
	// Eds (and NEds ≤ Eds) by |r|/(|r|+k). Signature tokens are q-chunks.
	FamilyEdit
	// FamilyDice: with |r∩s| ≤ |r|-k and |s| ≥ |r∩s|,
	// Dice = 2|∩|/(|r|+|s|) ≤ 2(|r|-k)/(2|r|-k).
	FamilyDice
	// FamilyCosine: Cos = |∩|/√(|r||s|) ≤ |∩|/√(|r||∩|) = √(|∩|/|r|)
	// ≤ √((|r|-k)/|r|).
	FamilyCosine
)

func (f Family) String() string {
	switch f {
	case FamilyJaccard:
		return "jaccard"
	case FamilyEdit:
		return "edit"
	case FamilyDice:
		return "dice"
	case FamilyCosine:
		return "cosine"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// usesChunks reports whether signature tokens are q-chunks (edit family)
// rather than the element's word tokens.
func (f Family) usesChunks() bool { return f == FamilyEdit }

// Params carries the thresholds a signature is generated for.
type Params struct {
	// Delta is the relatedness threshold δ > 0; the maximum matching
	// threshold is θ = δ·|R| (§4.2).
	Delta float64
	// Alpha is the element similarity threshold α ∈ [0, 1).
	Alpha float64
	// Family selects the per-element bound shape; the zero value is
	// FamilyJaccard. It must agree with the collection's tokenization:
	// FamilyEdit for q-gram collections, any token family for word
	// collections.
	Family Family
}

// Theta returns the maximum matching threshold θ = δ·n for a reference set
// of n elements.
func (p Params) Theta(n int) float64 { return p.Delta * float64(n) }

// Generate builds a signature of the given kind for reference set r against
// the inverted index ix (whose lengths are the token costs). Params.Family
// selects between the Jaccard-style (§4), edit-similarity (§7), and the
// Dice/Cosine generalized formulations; it must match the collection's
// tokenization.
//
// This is the allocation-per-call convenience form; the engine's hot path
// holds a Selector (or Generator) per worker and reuses its scratch across
// queries. Kind Auto resolves through a throwaway Selector here.
func Generate(kind Kind, r *dataset.Set, p Params, ix *index.Inverted) Signature {
	var sel Selector
	sig, _ := sel.Generate(kind, r, p, ix)
	return *sig
}

// Selector resolves a signature scheme per query: concrete kinds pass
// through to one Generator; Auto generates the competing weighted-family
// signatures and keeps the one with the lowest probe cost (the §4.3 cost
// model Σ |I[t]| over the signature's per-element tokens, read off the
// inverted index's posting statistics).
//
// At α = 0 the sim-thresh size is unattainable, so Dichotomy never
// saturates and Skyline never cuts: all three weighted-family schemes
// produce the same signature, and Auto short-circuits to one Weighted
// generation. At α > 0 the skyline cut only ever shrinks a weighted
// signature (the cut is a subset of the element's tokens), so Weighted is
// dominated and Auto compares Skyline against Dichotomy, whose saturation
// reshapes greedy selection and can win or lose depending on the
// reference's posting lengths — exactly the trade the paper's §6
// experiments sweep.
//
// Like Generator, a Selector is not safe for concurrent use and the
// returned Signature is valid until its next Generate call. The zero value
// is ready to use.
type Selector struct {
	gen Generator
	// alt is the second arena Auto needs: the two candidate signatures
	// must be alive at once to compare costs.
	alt Generator
}

// Generate builds (or, for Auto, selects) the signature for r and returns
// it along with the concrete scheme that produced it.
func (s *Selector) Generate(kind Kind, r *dataset.Set, p Params, ix *index.Inverted) (*Signature, Kind) {
	if kind != Auto {
		return s.gen.Generate(kind, r, p, ix), kind
	}
	if p.Alpha <= 0 {
		return s.gen.Generate(Weighted, r, p, ix), Weighted
	}
	sigD := s.gen.Generate(Dichotomy, r, p, ix)
	sigS := s.alt.Generate(Skyline, r, p, ix)
	// An invalid signature means a full scan; any valid one beats it.
	if sigD.Valid != sigS.Valid {
		if sigD.Valid {
			return sigD, Dichotomy
		}
		return sigS, Skyline
	}
	if ProbeCost(sigS, ix) < ProbeCost(sigD, ix) {
		return sigS, Skyline
	}
	return sigD, Dichotomy // ties go to the paper's overall best performer
}

// ProbeCost is the §4.3 cost of probing the index with sig: the sum of
// posting-list lengths over every per-element signature token — the number
// of ⟨reference element, posting⟩ visits candidate collection will make.
func ProbeCost(sig *Signature, ix *index.Inverted) int64 {
	var cost int64
	for i := range sig.Elements {
		for _, t := range sig.Elements[i].Tokens {
			cost += int64(ix.ListLen(t))
		}
	}
	return cost
}

// ValiditySlack is the absolute margin kept between a signature's SumBound
// and θ. Greedy selection keeps picking tokens until SumBound < θ -
// ValiditySlack, so that incremental floating-point drift in the bound sum
// can never make a mathematically-invalid signature (SumBound = θ exactly)
// appear valid. Refinement filters prune with the same margin. The margin is
// far above accumulated float error (≤ ~1e-12 for realistic set sizes) and
// far below any meaningful score difference.
const ValiditySlack = 1e-7

// floorEps guards ⌊x⌋ computations whose x is mathematically an integer but
// computed slightly below it (e.g. (1-0.8)/0.8·12 = 2.9999...96): sizes
// derived from such floors must round up, never down, to stay sound.
const floorEps = 1e-9

// simThreshSize returns the number of signature token occurrences that force
// φ(r, s) < α for any s missing all of them (§6.1, §7.2, and the analogous
// derivations for Dice and Cosine):
//
//	Jaccard: |∩|/|∪| ≤ (|r|-m)/|r| < α        ⟸ m > (1-α)·|r|
//	Edit:    LD ≥ m  ⇒ Eds ≤ |r|/(|r|+m) < α ⟸ m > (1-α)/α·|r|
//	Dice:    2(|r|-m)/(2|r|-m) < α            ⟸ m > 2(1-α)/(2-α)·|r|
//	Cosine:  √((|r|-m)/|r|) < α               ⟸ m > (1-α²)·|r|
//
// It returns (size, true), or (0, false) when saturation is unattainable
// (α = 0, empty elements, or more occurrences required than available).
func simThreshSize(f Family, alpha float64, elemLen, available int) (int, bool) {
	if alpha <= 0 || elemLen == 0 {
		return 0, false
	}
	l := float64(elemLen)
	var need float64
	switch f {
	case FamilyJaccard:
		need = (1 - alpha) * l
	case FamilyEdit:
		need = (1 - alpha) / alpha * l
	case FamilyDice:
		need = 2 * (1 - alpha) / (2 - alpha) * l
	case FamilyCosine:
		need = (1 - alpha*alpha) * l
	default:
		panic("signature: unknown family")
	}
	size := int(math.Floor(need+floorEps)) + 1
	if size > available {
		return 0, false
	}
	return size, true
}
