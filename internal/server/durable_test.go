package server

import (
	"net/http"
	"strings"
	"testing"

	"silkmoth"
)

// POST /v1/snapshot on a heap-only engine is a usage conflict, not a
// server error, and the stats durability block stays zeroed.
func TestSnapshotEndpointHeapOnly(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	w := postJSON(t, s, "/v1/snapshot", "")
	if w.Code != http.StatusConflict {
		t.Fatalf("code = %d, want 409: %s", w.Code, w.Body.String())
	}
	st := decode[statsResponse](t, get(t, s, "/v1/stats"))
	if st.Durability.Enabled || st.Durability.Snapshots != 0 || st.Durability.WALRecords != 0 {
		t.Fatalf("heap-only durability stats = %+v", st.Durability)
	}
}

// A durable server: mutations append WAL records, POST /v1/snapshot
// rotates, stats and metrics report the durability counters, and a server
// restarted on the same data directory recovers the full collection.
func TestSnapshotEndpointDurable(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	eng, err := silkmoth.NewEngine(testSets(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, cfg, Options{})

	w := postJSON(t, s, "/v1/sets", `{"sets":[{"name":"pois","elements":["77 Mass Ave Boston MA","Pike Pl Seattle WA"]}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("add: code = %d: %s", w.Code, w.Body.String())
	}

	w = postJSON(t, s, "/v1/snapshot", "")
	if w.Code != http.StatusOK {
		t.Fatalf("snapshot: code = %d: %s", w.Code, w.Body.String())
	}
	snap := decode[snapshotResponse](t, w)
	// Bootstrap wrote snapshot 1; this request wrote snapshot 2.
	if snap.Snapshots != 2 || snap.Sets != 4 || snap.Generation != 1 {
		t.Fatalf("snapshot response = %+v", snap)
	}

	st := decode[statsResponse](t, get(t, s, "/v1/stats"))
	d := st.Durability
	if !d.Enabled || d.Snapshots != 2 || d.WALRecords != 1 || d.RecoveredSnapshot || d.WALReplayed != 0 || d.WALTornTail {
		t.Fatalf("durability stats = %+v", d)
	}

	metrics := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"silkmothd_snapshots_total 2",
		"silkmothd_wal_appends_total 1",
		"silkmothd_wal_replayed_records 0",
		"silkmothd_recovered_snapshot 0",
		"silkmothd_wal_torn_tail 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Restart on the same directory: the new server recovers the snapshot
	// (the rotation subsumed the WAL record) and serves all four sets.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, err := silkmoth.NewEngine(nil, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	s2 := New(eng2, cfg, Options{})
	st2 := decode[statsResponse](t, get(t, s2, "/v1/stats"))
	d2 := st2.Durability
	if !d2.Enabled || !d2.RecoveredSnapshot || d2.WALReplayed != 0 || d2.WALTornTail {
		t.Fatalf("post-restart durability stats = %+v", d2)
	}
	health := decode[healthResponse](t, get(t, s2, "/healthz"))
	if health.Sets != 4 {
		t.Fatalf("recovered server serves %d sets, want 4", health.Sets)
	}
}
