package server

import (
	"container/list"
	"sync"
)

// resultCache is a mutex-protected LRU over marshaled response bodies.
// Keys encode the query's full identity — endpoint kind, metric, δ, α, and
// the query sets' raw elements — so one cache safely serves every endpoint.
// Add invalidates the whole cache: any grown collection can change any
// result.
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[string]*list.Element
	// evicted counts entries pushed out by capacity pressure — not purges,
	// which are deliberate invalidation. A climbing rate under a steady
	// working set means the cache is undersized.
	evicted int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns an LRU holding up to max entries; max < 1 disables
// caching (every lookup misses, every store is dropped).
func newResultCache(max int) *resultCache {
	return &resultCache{
		max:   max,
		order: list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// get returns the cached body for key and whether it was present.
func (c *resultCache) get(key string) ([]byte, bool) {
	if c.max < 1 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least-recently-used entry when
// full. The caller must not mutate body afterwards.
func (c *resultCache) put(key string, body []byte) {
	if c.max < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// purge drops every entry.
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.byKey = make(map[string]*list.Element)
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// evictions reports how many entries capacity pressure has pushed out.
func (c *resultCache) evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}
