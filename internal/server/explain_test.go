package server

import (
	"fmt"
	"net/http"
	"testing"

	"silkmoth"
)

// checkFunnel asserts the per-stage arithmetic every explain capture must
// satisfy: candidates split exactly across the check filter, check-filter
// survivors split exactly across the NN filter, and every NN survivor of a
// signatured pass is verified.
func checkFunnel(t *testing.T, label string, ex ExplainJSON) {
	t.Helper()
	if ex.Passes == 0 {
		t.Fatalf("%s: explain recorded no passes", label)
	}
	if ex.Candidates != ex.AfterCheck+ex.CheckPruned {
		t.Fatalf("%s: candidates %d != after_check %d + check_pruned %d",
			label, ex.Candidates, ex.AfterCheck, ex.CheckPruned)
	}
	if ex.AfterCheck != ex.AfterNN+ex.NNPruned {
		t.Fatalf("%s: after_check %d != after_nn %d + nn_pruned %d",
			label, ex.AfterCheck, ex.AfterNN, ex.NNPruned)
	}
	if ex.FullScans == 0 && ex.Verified != ex.AfterNN {
		t.Fatalf("%s: signatured pass verified %d != after_nn %d",
			label, ex.Verified, ex.AfterNN)
	}
	if ex.Scheme == "" {
		t.Fatalf("%s: explain missing scheme (counts %v, full scans %d)",
			label, ex.Schemes, ex.FullScans)
	}
}

// TestExplainEndpoint pins GET and POST /v1/explain on serial and sharded
// engines: a consistent funnel, a concrete scheme, and matches identical
// to a plain /v1/search.
func TestExplainEndpoint(t *testing.T) {
	for _, shards := range []int{0, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := testConfig()
			cfg.Shards = shards
			eng, err := silkmoth.NewEngine(testSets(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := New(eng, cfg, Options{})

			body := `{"set":{"elements":["77 Mass Ave Boston MA","5th St Seattle WA","State St Chicago IL"]}}`
			w := postJSON(t, s, "/v1/explain", body)
			if w.Code != http.StatusOK {
				t.Fatalf("POST explain: %d: %s", w.Code, w.Body.String())
			}
			resp := decode[explainResponse](t, w)
			checkFunnel(t, "post", resp.Explain)
			if resp.Explain.Passes != int64(eng.Shards()) {
				t.Fatalf("explain passes %d, want one per shard (%d)", resp.Explain.Passes, eng.Shards())
			}

			plain := postJSON(t, s, "/v1/search", body)
			plainResp := decode[searchResponse](t, plain)
			if len(plainResp.Matches) != len(resp.Matches) {
				t.Fatalf("explain returned %d matches, search %d", len(resp.Matches), len(plainResp.Matches))
			}
			for i := range resp.Matches {
				if resp.Matches[i] != plainResp.Matches[i] {
					t.Fatalf("match %d differs: explain %+v search %+v", i, resp.Matches[i], plainResp.Matches[i])
				}
			}

			g := get(t, s, "/v1/explain?e=77+Mass+Ave+Boston+MA&e=5th+St+Seattle+WA&e=State+St+Chicago+IL")
			if g.Code != http.StatusOK {
				t.Fatalf("GET explain: %d: %s", g.Code, g.Body.String())
			}
			gresp := decode[explainResponse](t, g)
			checkFunnel(t, "get", gresp.Explain)
			if len(gresp.Matches) != len(resp.Matches) {
				t.Fatalf("GET explain %d matches, POST %d", len(gresp.Matches), len(resp.Matches))
			}
		})
	}
}

// TestExplainFilterToggles checks the what-if knobs: disabling the NN
// filter may only move candidates from nn_pruned to verified, never change
// matches.
func TestExplainFilterToggles(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	on := decode[explainResponse](t, postJSON(t, s, "/v1/explain",
		`{"set":{"elements":["77 Mass Ave Boston MA","5th St Seattle WA"]}}`))
	off := decode[explainResponse](t, postJSON(t, s, "/v1/explain",
		`{"set":{"elements":["77 Mass Ave Boston MA","5th St Seattle WA"]},"disable_nn_filter":true,"disable_check_filter":true}`))
	checkFunnel(t, "filters-on", on.Explain)
	checkFunnel(t, "filters-off", off.Explain)
	if off.Explain.NNPruned != 0 || off.Explain.CheckPruned != 0 {
		t.Fatalf("disabled filters still pruned: %+v", off.Explain)
	}
	if len(on.Matches) != len(off.Matches) {
		t.Fatalf("filter toggles changed matches: %d vs %d", len(on.Matches), len(off.Matches))
	}
	if off.Explain.Verified < on.Explain.Verified {
		t.Fatalf("filters off verified %d < filters on %d", off.Explain.Verified, on.Explain.Verified)
	}
}

// TestSearchExplainField pins the explain request field on /v1/search and
// its cache bypass: explained responses are never served from or stored in
// the cache.
func TestSearchExplainField(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	body := `{"set":{"elements":["77 Mass Ave Boston MA","5th St Seattle WA"]},"explain":true}`
	w := postJSON(t, s, "/v1/search", body)
	if w.Code != http.StatusOK {
		t.Fatalf("search explain: %d: %s", w.Code, w.Body.String())
	}
	resp := decode[searchResponse](t, w)
	if resp.Explain == nil {
		t.Fatal("explain:true returned no explain block")
	}
	checkFunnel(t, "search", *resp.Explain)
	w2 := postJSON(t, s, "/v1/search", body)
	if got := w2.Header().Get("X-Silkmoth-Cache"); got == "hit" {
		t.Fatal("explained search response was served from cache")
	}
}

// TestExplainDisabled pins the -no-explain server mode: the endpoint 404s
// and explain request fields are rejected.
func TestExplainDisabled(t *testing.T) {
	s, _ := newTestServer(t, Options{DisableExplain: true})
	if w := postJSON(t, s, "/v1/explain", `{"set":{"elements":["x"]}}`); w.Code != http.StatusNotFound {
		t.Fatalf("explain endpoint with DisableExplain: got %d, want 404", w.Code)
	}
	if w := postJSON(t, s, "/v1/search", `{"set":{"elements":["x"]},"explain":true}`); w.Code != http.StatusBadRequest {
		t.Fatalf("explain field with DisableExplain: got %d, want 400", w.Code)
	}
}

// TestSearchSchemeAndDeltaOverrides pins the per-request knobs on
// /v1/search: a pinned scheme returns identical matches (schemes never
// change results), a δ override matches an engine built with that δ, and
// malformed values 400.
func TestSearchSchemeAndDeltaOverrides(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	base := decode[searchResponse](t, postJSON(t, s, "/v1/search",
		`{"set":{"elements":["77 Mass Ave Boston MA","5th St Seattle WA"]}}`))
	for _, scheme := range []string{"dichotomy", "skyline", "weighted", "combunweighted", "auto"} {
		w := postJSON(t, s, "/v1/search",
			`{"set":{"elements":["77 Mass Ave Boston MA","5th St Seattle WA"]},"scheme":"`+scheme+`"}`)
		if w.Code != http.StatusOK {
			t.Fatalf("scheme %s: %d: %s", scheme, w.Code, w.Body.String())
		}
		resp := decode[searchResponse](t, w)
		if len(resp.Matches) != len(base.Matches) {
			t.Fatalf("scheme %s changed result count: %d vs %d", scheme, len(resp.Matches), len(base.Matches))
		}
	}

	// δ = 0.9 keeps only near-identical sets; the looser base must have at
	// least as many matches, and a fresh engine at 0.9 must agree exactly.
	tight := decode[searchResponse](t, postJSON(t, s, "/v1/search",
		`{"set":{"elements":["77 Mass Ave Boston MA","5th St Seattle WA","State St Chicago IL"]},"delta":0.9}`))
	cfg9 := testConfig()
	cfg9.Delta = 0.9
	eng9, err := silkmoth.NewEngine(testSets(), cfg9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng9.Search(silkmoth.Set{Elements: []string{"77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tight.Matches) != len(want) {
		t.Fatalf("delta override found %d matches, fresh δ=0.9 engine %d", len(tight.Matches), len(want))
	}
	for i, m := range want {
		got := tight.Matches[i]
		if got.Index != m.Index || got.Relatedness != m.Relatedness || got.MatchingScore != m.MatchingScore {
			t.Fatalf("delta override match %d: got %+v want %+v", i, got, m)
		}
	}

	if w := postJSON(t, s, "/v1/search", `{"set":{"elements":["x"]},"scheme":"bogus"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bogus scheme: got %d, want 400", w.Code)
	}
	if w := postJSON(t, s, "/v1/search", `{"set":{"elements":["x"]},"delta":1.5}`); w.Code != http.StatusBadRequest {
		t.Fatalf("delta 1.5: got %d, want 400", w.Code)
	}
}

// TestBatchPerItemSchemes pins the batch per-item override surface: pinned
// items report the pinned concrete scheme, auto items report Auto's
// per-query choice, and matches stay identical across pins.
func TestBatchPerItemSchemes(t *testing.T) {
	for _, shards := range []int{0, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := testConfig()
			cfg.Scheme = silkmoth.SchemeAuto
			cfg.Shards = shards
			eng, err := silkmoth.NewEngine(testSets(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := New(eng, cfg, Options{})

			body := `{"sets":[
				{"elements":["77 Mass Ave Boston MA","5th St Seattle WA"]},
				{"elements":["77 Mass Ave Boston MA","5th St Seattle WA"]},
				{"elements":["77 Mass Ave Boston MA","5th St Seattle WA"]}],
				"schemes":["skyline","",  "dichotomy"]}`
			w := postJSON(t, s, "/v1/search/batch", body)
			if w.Code != http.StatusOK {
				t.Fatalf("batch schemes: %d: %s", w.Code, w.Body.String())
			}
			resp := decode[batchSearchResponse](t, w)
			if len(resp.Results) != 3 {
				t.Fatalf("got %d results, want 3", len(resp.Results))
			}
			if got := resp.Results[0].Scheme; got != "skyline" {
				t.Fatalf("pinned skyline item reports scheme %q", got)
			}
			if got := resp.Results[2].Scheme; got != "dichotomy" {
				t.Fatalf("pinned dichotomy item reports scheme %q", got)
			}
			if got := resp.Results[1].Scheme; got == "" {
				t.Fatal("auto item reports no chosen scheme")
			}
			for i := 1; i < 3; i++ {
				if len(resp.Results[i].Matches) != len(resp.Results[0].Matches) {
					t.Fatalf("item %d matches differ from item 0 despite identical sets", i)
				}
				for j := range resp.Results[i].Matches {
					if resp.Results[i].Matches[j] != resp.Results[0].Matches[j] {
						t.Fatalf("item %d match %d differs: %+v vs %+v",
							i, j, resp.Results[i].Matches[j], resp.Results[0].Matches[j])
					}
				}
			}

			// Misaligned schemes array is rejected before any work.
			bad := postJSON(t, s, "/v1/search/batch",
				`{"sets":[{"elements":["x"]}],"schemes":["auto","auto"]}`)
			if bad.Code != http.StatusBadRequest {
				t.Fatalf("misaligned schemes: got %d, want 400", bad.Code)
			}
		})
	}
}

// TestBatchExplain pins per-item explain on the batch endpoint, including
// funnel consistency per item and the cache bypass.
func TestBatchExplain(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	body := `{"sets":[
		{"elements":["77 Mass Ave Boston MA","5th St Seattle WA"]},
		{"elements":[]},
		{"elements":["red bicycle","blue kettle"]}],
		"explain":true}`
	w := postJSON(t, s, "/v1/search/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch explain: %d: %s", w.Code, w.Body.String())
	}
	resp := decode[batchSearchResponse](t, w)
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[1].Error == "" || resp.Results[1].Explain != nil {
		t.Fatalf("invalid item should carry an error and no explain: %+v", resp.Results[1])
	}
	for _, i := range []int{0, 2} {
		if resp.Results[i].Explain == nil {
			t.Fatalf("item %d missing explain", i)
		}
		checkFunnel(t, fmt.Sprintf("item %d", i), *resp.Results[i].Explain)
	}
	w2 := postJSON(t, s, "/v1/search/batch", body)
	if got := w2.Header().Get("X-Silkmoth-Cache"); got == "hit" {
		t.Fatal("explained batch response was served from cache")
	}
}

// TestStatsReportsSchemeName pins the Scheme.String plumbing into
// /v1/stats.
func TestStatsReportsSchemeName(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = silkmoth.SchemeAuto
	eng, err := silkmoth.NewEngine(testSets(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, cfg, Options{})
	resp := decode[statsResponse](t, get(t, s, "/v1/stats"))
	if resp.ConfiguredScheme != "auto" {
		t.Fatalf("stats scheme = %q, want auto", resp.ConfiguredScheme)
	}
}
