package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"silkmoth/internal/obs"
)

// metrics collects the server's counters and renders them in the Prometheus
// text exposition format (version 0.0.4). It deliberately avoids external
// dependencies, and its hot path — observe, called once per request — takes
// no lock: per-route latency histograms are pre-registered in a read-only
// map at construction (the route label space is bounded by knownPaths), and
// the {path, code} request counters live in a copy-on-write map where only
// the first observation of a new pair pays a mutex.
type metrics struct {
	start time.Time

	inflight    int64
	cacheHits   int64
	cacheMisses int64

	// queueDepth counts requests waiting for a worker-pool slot; queueHWM
	// is the deepest the queue has ever been (admission-control sizing).
	queueDepth int64
	queueHWM   int64

	// Rejections split by cause: the pool never freed a slot within the
	// request's budget (pool_full), or the engine gave up mid-query on a
	// deadline (timeout) or a client hangup (cancelled).
	rejectPoolFull  int64
	rejectTimeout   int64
	rejectCancelled int64

	// routeHist maps every route label to its latency histogram. Built
	// once in newMetrics and never mutated, so observe reads it lock-free.
	routeHist map[string]*obs.Histogram

	// counts holds requests_total{path,code}. The map value is immutable;
	// inserting a new pair copies it under countsMu, while bumping an
	// existing pair is one atomic add. Bounded because paths and status
	// codes are.
	counts   atomic.Value // map[routeKey]*int64
	countsMu sync.Mutex
}

type routeKey struct {
	path string
	code int
}

func newMetrics() *metrics {
	m := &metrics{start: time.Now()}
	m.routeHist = make(map[string]*obs.Histogram, len(knownPaths)+1)
	for path := range knownPaths {
		m.routeHist[path] = &obs.Histogram{}
	}
	m.routeHist[otherRoute] = &obs.Histogram{}
	m.counts.Store(make(map[routeKey]*int64))
	return m
}

// observe records one served request. path must already be normalized to a
// route label (metricPath); the fast path is histogram bucketing plus two
// atomic adds.
func (m *metrics) observe(path string, code int, d time.Duration) {
	h := m.routeHist[path]
	if h == nil {
		h = m.routeHist[otherRoute] // metricPath should prevent this
	}
	h.Observe(d)
	key := routeKey{path: path, code: code}
	counts := m.counts.Load().(map[routeKey]*int64)
	c := counts[key]
	if c == nil {
		c = m.registerCount(key)
	}
	atomic.AddInt64(c, 1)
}

// registerCount inserts a counter for a first-seen {path, code} pair by
// copying the map — readers keep going lock-free on the old snapshot.
func (m *metrics) registerCount(key routeKey) *int64 {
	m.countsMu.Lock()
	defer m.countsMu.Unlock()
	counts := m.counts.Load().(map[routeKey]*int64)
	if c := counts[key]; c != nil {
		return c // another request registered it while we waited
	}
	next := make(map[routeKey]*int64, len(counts)+1)
	for k, v := range counts {
		next[k] = v
	}
	c := new(int64)
	next[key] = c
	m.counts.Store(next)
	return c
}

func (m *metrics) addInflight(n int64) { atomic.AddInt64(&m.inflight, n) }

// enterQueue marks one request waiting for a pool slot, ratcheting the
// high-water mark.
func (m *metrics) enterQueue() {
	d := atomic.AddInt64(&m.queueDepth, 1)
	for {
		hwm := atomic.LoadInt64(&m.queueHWM)
		if d <= hwm || atomic.CompareAndSwapInt64(&m.queueHWM, hwm, d) {
			return
		}
	}
}

func (m *metrics) exitQueue() { atomic.AddInt64(&m.queueDepth, -1) }

// Rejection causes. rejectPoolFull is charged when a request never got a
// worker slot; the other two when the engine aborted a running query.
const (
	causePoolFull  = "pool_full"
	causeTimeout   = "timeout"
	causeCancelled = "cancelled"
)

func (m *metrics) reject(cause string) {
	switch cause {
	case causePoolFull:
		atomic.AddInt64(&m.rejectPoolFull, 1)
	case causeTimeout:
		atomic.AddInt64(&m.rejectTimeout, 1)
	case causeCancelled:
		atomic.AddInt64(&m.rejectCancelled, 1)
	}
}

func (m *metrics) cacheHit()             { atomic.AddInt64(&m.cacheHits, 1) }
func (m *metrics) cacheMiss()            { atomic.AddInt64(&m.cacheMisses, 1) }
func (m *metrics) hits() int64           { return atomic.LoadInt64(&m.cacheHits) }
func (m *metrics) misses() int64         { return atomic.LoadInt64(&m.cacheMisses) }
func (m *metrics) inflightNow() int64    { return atomic.LoadInt64(&m.inflight) }
func (m *metrics) uptime() time.Duration { return time.Since(m.start) }

// write renders all metrics. extra emits server-specific gauges (engine
// funnel, collection size, stage histograms) supplied by the caller.
func (m *metrics) write(w io.Writer, extra func(io.Writer)) {
	fmt.Fprintf(w, "# HELP silkmothd_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "silkmothd_uptime_seconds %g\n", m.uptime().Seconds())

	fmt.Fprintf(w, "# HELP silkmothd_inflight_requests Query requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_inflight_requests gauge\n")
	fmt.Fprintf(w, "silkmothd_inflight_requests %d\n", m.inflightNow())

	fmt.Fprintf(w, "# HELP silkmothd_queue_depth Requests waiting for a worker-pool slot.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_queue_depth gauge\n")
	fmt.Fprintf(w, "silkmothd_queue_depth %d\n", atomic.LoadInt64(&m.queueDepth))
	fmt.Fprintf(w, "# HELP silkmothd_queue_depth_high_water Deepest the worker-pool queue has been since startup.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_queue_depth_high_water gauge\n")
	fmt.Fprintf(w, "silkmothd_queue_depth_high_water %d\n", atomic.LoadInt64(&m.queueHWM))

	fmt.Fprintf(w, "# HELP silkmothd_rejections_total Query requests that failed without a full result, by cause.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_rejections_total counter\n")
	fmt.Fprintf(w, "silkmothd_rejections_total{cause=%q} %d\n", causePoolFull, atomic.LoadInt64(&m.rejectPoolFull))
	fmt.Fprintf(w, "silkmothd_rejections_total{cause=%q} %d\n", causeTimeout, atomic.LoadInt64(&m.rejectTimeout))
	fmt.Fprintf(w, "silkmothd_rejections_total{cause=%q} %d\n", causeCancelled, atomic.LoadInt64(&m.rejectCancelled))

	fmt.Fprintf(w, "# HELP silkmothd_cache_hits_total Result-cache hits.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_cache_hits_total counter\n")
	fmt.Fprintf(w, "silkmothd_cache_hits_total %d\n", m.hits())
	fmt.Fprintf(w, "# HELP silkmothd_cache_misses_total Result-cache misses.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_cache_misses_total counter\n")
	fmt.Fprintf(w, "silkmothd_cache_misses_total %d\n", m.misses())

	type row struct {
		routeKey
		count int64
	}
	counts := m.counts.Load().(map[routeKey]*int64)
	rows := make([]row, 0, len(counts))
	for key, c := range counts {
		rows = append(rows, row{routeKey: key, count: atomic.LoadInt64(c)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].path != rows[j].path {
			return rows[i].path < rows[j].path
		}
		return rows[i].code < rows[j].code
	})
	fmt.Fprintf(w, "# HELP silkmothd_requests_total Requests served, by path and status code.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_requests_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "silkmothd_requests_total{path=%q,code=\"%d\"} %d\n", r.path, r.code, r.count)
	}

	paths := make([]string, 0, len(m.routeHist))
	for path := range m.routeHist {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	obs.WriteHistogramHeader(w, "silkmothd_request_seconds", "Request latency by route.")
	for _, path := range paths {
		obs.WriteHistogram(w, "silkmothd_request_seconds", fmt.Sprintf("path=%q", path), m.routeHist[path].Snapshot())
	}

	if extra != nil {
		extra(w)
	}
}
