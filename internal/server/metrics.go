package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics collects the server's counters and renders them in the Prometheus
// text exposition format (version 0.0.4). It deliberately avoids external
// dependencies: a handful of atomics and one small locked map are all a
// text endpoint needs.
type metrics struct {
	start time.Time

	inflight    int64
	cacheHits   int64
	cacheMisses int64

	mu sync.Mutex
	// perRoute aggregates request counts and latency; bounded because
	// routes and status codes are.
	perRoute map[routeKey]*routeStats
}

type routeKey struct {
	path string
	code int
}

type routeStats struct {
	count   int64
	seconds float64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), perRoute: make(map[routeKey]*routeStats)}
}

func (m *metrics) observe(path string, code int, d time.Duration) {
	key := routeKey{path: path, code: code}
	m.mu.Lock()
	rs := m.perRoute[key]
	if rs == nil {
		rs = &routeStats{}
		m.perRoute[key] = rs
	}
	rs.count++
	rs.seconds += d.Seconds()
	m.mu.Unlock()
}

func (m *metrics) addInflight(n int64)   { atomic.AddInt64(&m.inflight, n) }
func (m *metrics) cacheHit()             { atomic.AddInt64(&m.cacheHits, 1) }
func (m *metrics) cacheMiss()            { atomic.AddInt64(&m.cacheMisses, 1) }
func (m *metrics) hits() int64           { return atomic.LoadInt64(&m.cacheHits) }
func (m *metrics) misses() int64         { return atomic.LoadInt64(&m.cacheMisses) }
func (m *metrics) inflightNow() int64    { return atomic.LoadInt64(&m.inflight) }
func (m *metrics) uptime() time.Duration { return time.Since(m.start) }

// write renders all metrics. extra emits server-specific gauges (engine
// funnel, collection size) supplied by the caller.
func (m *metrics) write(w io.Writer, extra func(io.Writer)) {
	fmt.Fprintf(w, "# HELP silkmothd_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "silkmothd_uptime_seconds %g\n", m.uptime().Seconds())

	fmt.Fprintf(w, "# HELP silkmothd_inflight_requests Query requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_inflight_requests gauge\n")
	fmt.Fprintf(w, "silkmothd_inflight_requests %d\n", m.inflightNow())

	fmt.Fprintf(w, "# HELP silkmothd_cache_hits_total Result-cache hits.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_cache_hits_total counter\n")
	fmt.Fprintf(w, "silkmothd_cache_hits_total %d\n", m.hits())
	fmt.Fprintf(w, "# HELP silkmothd_cache_misses_total Result-cache misses.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_cache_misses_total counter\n")
	fmt.Fprintf(w, "silkmothd_cache_misses_total %d\n", m.misses())

	type row struct {
		routeKey
		routeStats
	}
	var rows []row
	m.mu.Lock()
	for key, rs := range m.perRoute {
		rows = append(rows, row{routeKey: key, routeStats: *rs})
	}
	m.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].path != rows[j].path {
			return rows[i].path < rows[j].path
		}
		return rows[i].code < rows[j].code
	})

	fmt.Fprintf(w, "# HELP silkmothd_requests_total Requests served, by path and status code.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_requests_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "silkmothd_requests_total{path=%q,code=\"%d\"} %d\n", r.path, r.code, r.count)
	}
	fmt.Fprintf(w, "# HELP silkmothd_request_seconds_total Cumulative request latency, by path and status code.\n")
	fmt.Fprintf(w, "# TYPE silkmothd_request_seconds_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "silkmothd_request_seconds_total{path=%q,code=\"%d\"} %g\n", r.path, r.code, r.seconds)
	}

	if extra != nil {
		extra(w)
	}
}
