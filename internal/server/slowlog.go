package server

import (
	"net/http"
	"sync/atomic"
	"time"

	"silkmoth"
)

// Slow-query capture: query handlers attach a server-side explain capture
// to the engine call (never changing the response body), and after the
// query finishes its full execution funnel — chosen scheme, per-stage
// survivor counts, per-stage wall time, shard count — is emitted as one
// JSON line when the query was slow or drawn by the 1-in-N sample. Cache
// hits skip capture entirely: they never touch the engine, and a cached
// answer is never the slow one.

// captureSlow reports whether query handlers should capture server-side
// execution metadata: a log destination exists and at least one trigger
// (threshold or sample) is configured.
func (s *Server) captureSlow() bool {
	return s.log.Enabled() && (s.opts.SlowQueryThreshold > 0 || s.opts.SlowQuerySample > 0)
}

// slowReason decides whether one finished query's funnel gets logged:
// "threshold" when its engine time met SlowQueryThreshold, "sampled" when
// the 1-in-N baseline drew it, "" to skip. Threshold wins so a slow query
// is always labeled slow, and sampling only consumes a draw when the
// threshold did not fire.
func (s *Server) slowReason(elapsed time.Duration) string {
	if t := s.opts.SlowQueryThreshold; t > 0 && elapsed >= t {
		return "threshold"
	}
	if n := s.opts.SlowQuerySample; n > 0 && atomic.AddInt64(&s.slowSeq, 1)%int64(n) == 0 {
		return "sampled"
	}
	return ""
}

// logSlow emits one query's funnel as a single JSON line on the server's
// log writer, tagged with the request id so fan-out (batch items share
// their request's id) stays correlated. extra merges endpoint-specific
// fields (like a batch item's index) into the line.
func (s *Server) logSlow(r *http.Request, route string, ex *silkmoth.Explain, extra map[string]any) {
	if !s.log.Enabled() {
		return
	}
	reason := s.slowReason(ex.Elapsed)
	if reason == "" {
		return
	}
	fields := map[string]any{
		"request_id":   requestID(r),
		"route":        route,
		"reason":       reason,
		"elapsed_us":   ex.Elapsed.Microseconds(),
		"scheme":       ex.Scheme,
		"passes":       ex.Passes,
		"full_scans":   ex.FullScans,
		"sig_tokens":   ex.SigTokens,
		"candidates":   ex.Candidates,
		"after_check":  ex.AfterCheck,
		"check_pruned": ex.CheckPruned,
		"after_nn":     ex.AfterNN,
		"nn_pruned":    ex.NNPruned,
		"verified":     ex.Verified,
		"stage_ns": map[string]int64{
			"signature": ex.Stages.Signature.Nanoseconds(),
			"collect":   ex.Stages.Collect.Nanoseconds(),
			"refine":    ex.Stages.Refine.Nanoseconds(),
			"verify":    ex.Stages.Verify.Nanoseconds(),
		},
		"shards": s.eng.Shards(),
	}
	for k, v := range extra {
		fields[k] = v
	}
	s.log.Emit("slow_query", fields)
}
