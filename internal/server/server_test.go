package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"silkmoth"
)

// testSets is a small corpus with known relatedness structure: addresses
// and locations overlap heavily, products is unrelated.
func testSets() []silkmoth.Set {
	return []silkmoth.Set{
		{Name: "addresses", Elements: []string{
			"77 Mass Ave Boston MA", "5th St Seattle WA", "Michigan Ave Chicago IL",
		}},
		{Name: "locations", Elements: []string{
			"77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL",
		}},
		{Name: "products", Elements: []string{
			"red bicycle", "blue kettle", "green lamp",
		}},
	}
}

func testConfig() silkmoth.Config {
	return silkmoth.Config{
		Metric:      silkmoth.SetSimilarity,
		Similarity:  silkmoth.Jaccard,
		Delta:       0.5,
		Concurrency: 2,
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *silkmoth.Engine) {
	t.Helper()
	cfg := testConfig()
	eng, err := silkmoth.NewEngine(testSets(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(eng, cfg, opts), eng
}

func postJSON(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	w := get(t, s, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("code = %d, want 200", w.Code)
	}
	resp := decode[healthResponse](t, w)
	if resp.Status != "ok" || resp.Sets != 3 {
		t.Fatalf("health = %+v", resp)
	}
}

func TestSearch(t *testing.T) {
	s, eng := newTestServer(t, Options{})
	body := `{"set": {"name": "q", "elements": ["77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL"]}}`
	w := postJSON(t, s, "/v1/search", body)
	if w.Code != http.StatusOK {
		t.Fatalf("code = %d, body %s", w.Code, w.Body)
	}
	resp := decode[searchResponse](t, w)

	want, err := eng.Search(silkmoth.Set{Elements: []string{
		"77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != len(want) {
		t.Fatalf("got %d matches, engine says %d", len(resp.Matches), len(want))
	}
	for i := range want {
		if resp.Matches[i].Index != want[i].Index || resp.Matches[i].Name != want[i].Name {
			t.Errorf("match %d: got %+v want %+v", i, resp.Matches[i], want[i])
		}
	}
	if len(resp.Matches) == 0 || resp.Matches[0].Name != "locations" {
		t.Fatalf("expected locations as best match, got %+v", resp.Matches)
	}
}

func TestSearchMalformed(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	cases := []struct {
		name, path, body string
	}{
		{"bad json", "/v1/search", `{"set": {`},
		{"empty body", "/v1/search", ``},
		{"no elements", "/v1/search", `{"set": {"name": "q", "elements": []}}`},
		{"topk bad json", "/v1/topk", `not json`},
		{"topk zero k", "/v1/topk", `{"set": {"elements": ["x"]}, "k": 0}`},
		{"discover no sets", "/v1/discover-against", `{"sets": []}`},
		{"discover bad json", "/v1/discover-against", `[`},
		{"compare missing s", "/v1/compare", `{"r": {"elements": ["x"]}}`},
		{"compare bad json", "/v1/compare", `{{`},
		{"add no sets", "/v1/sets", `{"sets": []}`},
		{"add empty set", "/v1/sets", `{"sets": [{"name": "e", "elements": []}]}`},
		{"add bad json", "/v1/sets", `"nope`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, s, tc.path, tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("code = %d, want 400 (body %s)", w.Code, w.Body)
			}
			if resp := decode[errorResponse](t, w); resp.Error == "" {
				t.Fatal("error body missing")
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	w := get(t, s, "/v1/search")
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/search = %d, want 405", w.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", rec.Code)
	}
}

func TestTopK(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	body := `{"set": {"elements": ["77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL"]}, "k": 1}`
	w := postJSON(t, s, "/v1/topk", body)
	if w.Code != http.StatusOK {
		t.Fatalf("code = %d, body %s", w.Code, w.Body)
	}
	resp := decode[searchResponse](t, w)
	if len(resp.Matches) != 1 {
		t.Fatalf("got %d matches, want 1", len(resp.Matches))
	}
	if resp.Matches[0].Name != "locations" {
		t.Fatalf("top-1 = %q, want locations", resp.Matches[0].Name)
	}
}

func TestDiscoverAgainst(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	body := `{"sets": [
		{"name": "q1", "elements": ["77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL"]},
		{"name": "q2", "elements": ["purple submarine", "orange cat"]}
	]}`
	w := postJSON(t, s, "/v1/discover-against", body)
	if w.Code != http.StatusOK {
		t.Fatalf("code = %d, body %s", w.Code, w.Body)
	}
	resp := decode[discoverResponse](t, w)
	if len(resp.Pairs) == 0 {
		t.Fatal("expected pairs for q1")
	}
	for _, p := range resp.Pairs {
		if p.RName == "q2" {
			t.Errorf("q2 should relate to nothing, got pair %+v", p)
		}
		if p.RName == "q1" && p.SName == "products" {
			t.Errorf("q1 should not relate to products")
		}
	}
}

func TestCompare(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	body := `{"r": {"elements": ["77 Mass Ave Boston MA"]}, "s": {"elements": ["77 Mass Ave Boston MA"]}}`
	w := postJSON(t, s, "/v1/compare", body)
	if w.Code != http.StatusOK {
		t.Fatalf("code = %d, body %s", w.Code, w.Body)
	}
	resp := decode[compareResponse](t, w)
	if resp.Relatedness != 1 {
		t.Fatalf("identical sets relatedness = %g, want 1", resp.Relatedness)
	}
}

func TestCompareSizeBound(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxCompareElements: 2})
	body := `{"r": {"elements": ["a", "b", "c"]}, "s": {"elements": ["a"]}}`
	w := postJSON(t, s, "/v1/compare", body)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("oversized compare code = %d, want 400 (body %s)", w.Code, w.Body)
	}
	if !strings.Contains(decode[errorResponse](t, w).Error, "limited to 2") {
		t.Fatalf("error should name the bound: %s", w.Body)
	}
}

func TestMetricsPathCardinality(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	for i := 0; i < 5; i++ {
		get(t, s, fmt.Sprintf("/scanner/probe%d", i))
	}
	w := get(t, s, "/metrics")
	text := w.Body.String()
	if strings.Contains(text, "scanner") {
		t.Fatalf("unmatched paths must not become metric labels:\n%s", text)
	}
	if !strings.Contains(text, `silkmothd_requests_total{path="other",code="404"} 5`) {
		t.Fatalf("unmatched paths should aggregate under \"other\":\n%s", text)
	}
}

func TestAddSetsAndCacheInvalidation(t *testing.T) {
	s, eng := newTestServer(t, Options{})
	query := `{"set": {"elements": ["Pine St Portland OR", "Oak St Denver CO"]}}`

	// Initially nothing matches the query.
	w := postJSON(t, s, "/v1/search", query)
	if resp := decode[searchResponse](t, w); len(resp.Matches) != 0 {
		t.Fatalf("unexpected matches before add: %+v", resp.Matches)
	}

	// Add a set that matches exactly; the cached empty result must not
	// be served afterwards.
	add := `{"sets": [{"name": "streets", "elements": ["Pine St Portland OR", "Oak St Denver CO"]}]}`
	w = postJSON(t, s, "/v1/sets", add)
	if w.Code != http.StatusOK {
		t.Fatalf("add code = %d, body %s", w.Code, w.Body)
	}
	addResp := decode[addSetsResponse](t, w)
	if addResp.Added != 1 || addResp.Total != 4 {
		t.Fatalf("add = %+v, want added 1 total 4", addResp)
	}
	if eng.Len() != 4 {
		t.Fatalf("engine len = %d, want 4", eng.Len())
	}

	w = postJSON(t, s, "/v1/search", query)
	resp := decode[searchResponse](t, w)
	if len(resp.Matches) != 1 || resp.Matches[0].Name != "streets" {
		t.Fatalf("after add: matches = %+v, want [streets]", resp.Matches)
	}
}

func TestResultCache(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	body := `{"set": {"elements": ["77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL"]}}`

	w1 := postJSON(t, s, "/v1/search", body)
	if got := w1.Header().Get("X-Silkmoth-Cache"); got != "miss" {
		t.Fatalf("first request cache header = %q, want miss", got)
	}
	w2 := postJSON(t, s, "/v1/search", body)
	if got := w2.Header().Get("X-Silkmoth-Cache"); got != "hit" {
		t.Fatalf("second request cache header = %q, want hit", got)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("cached body differs from computed body")
	}

	// The funnel must not grow on a cache hit.
	st := get(t, s, "/v1/stats")
	stats := decode[statsResponse](t, st)
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit 1 miss", stats.Cache)
	}
	if stats.Engine.SearchPasses != 1 {
		t.Fatalf("search passes = %d, want 1 (hit must not re-run)", stats.Engine.SearchPasses)
	}
}

func TestCacheDisabled(t *testing.T) {
	s, _ := newTestServer(t, Options{CacheSize: -1})
	body := `{"set": {"elements": ["77 Mass Ave Boston MA"]}}`
	postJSON(t, s, "/v1/search", body)
	w := postJSON(t, s, "/v1/search", body)
	if got := w.Header().Get("X-Silkmoth-Cache"); got != "miss" {
		t.Fatalf("cache disabled but header = %q", got)
	}
}

func TestStats(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	w := get(t, s, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("code = %d", w.Code)
	}
	resp := decode[statsResponse](t, w)
	if resp.Sets != 3 || resp.Metric != "set-similarity" || resp.Similarity != "jaccard" {
		t.Fatalf("stats = %+v", resp)
	}
	if resp.Delta != 0.5 {
		t.Fatalf("delta = %g, want 0.5", resp.Delta)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	postJSON(t, s, "/v1/search", `{"set": {"elements": ["77 Mass Ave Boston MA"]}}`)
	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("code = %d", w.Code)
	}
	text := w.Body.String()
	for _, want := range []string{
		"silkmothd_requests_total{path=\"/v1/search\",code=\"200\"} 1",
		"silkmothd_cache_misses_total 1",
		"silkmothd_collection_sets 3",
		"silkmothd_engine_search_passes_total",
		"silkmothd_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
}

func TestRequestTimeout(t *testing.T) {
	s, _ := newTestServer(t, Options{RequestTimeout: time.Nanosecond})
	w := postJSON(t, s, "/v1/search", `{"set": {"elements": ["77 Mass Ave Boston MA"]}}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("code = %d, want 504 (body %s)", w.Code, w.Body)
	}
}

// TestConcurrentQueries exercises the acceptance criterion: concurrent
// /v1/search and /v1/discover-against traffic (with an Add thrown in) must
// be served correctly under -race.
func TestConcurrentQueries(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxInFlight: 4})
	searchBody := `{"set": {"elements": ["77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL"]}}`
	discoverBody := `{"sets": [{"name": "q", "elements": ["77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL"]}]}`

	const goroutines = 12
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch {
				case g%3 == 0:
					req := httptest.NewRequest(http.MethodPost, "/v1/search", strings.NewReader(searchBody))
					w := httptest.NewRecorder()
					s.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						errs <- fmt.Sprintf("search: code %d body %s", w.Code, w.Body)
						return
					}
					var resp searchResponse
					if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
						errs <- fmt.Sprintf("search: %v", err)
						return
					}
					if len(resp.Matches) == 0 {
						errs <- "search: no matches"
						return
					}
				case g%3 == 1:
					req := httptest.NewRequest(http.MethodPost, "/v1/discover-against", strings.NewReader(discoverBody))
					w := httptest.NewRecorder()
					s.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						errs <- fmt.Sprintf("discover: code %d body %s", w.Code, w.Body)
						return
					}
					var resp discoverResponse
					if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
						errs <- fmt.Sprintf("discover: %v", err)
						return
					}
					if len(resp.Pairs) == 0 {
						errs <- "discover: no pairs"
						return
					}
				default:
					// Grow the collection mid-traffic with sets that
					// never match the queries above.
					add := fmt.Sprintf(`{"sets": [{"name": "extra%d-%d", "elements": ["zz%dqq%d ww%d"]}]}`, g, r, g, r, r)
					req := httptest.NewRequest(http.MethodPost, "/v1/sets", strings.NewReader(add))
					w := httptest.NewRecorder()
					s.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						errs <- fmt.Sprintf("add: code %d body %s", w.Code, w.Body)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// newShardedTestServer builds a server over a sharded engine.
func newShardedTestServer(t *testing.T, shards int, opts Options) (*Server, *silkmoth.Engine) {
	t.Helper()
	cfg := testConfig()
	cfg.Shards = shards
	eng, err := silkmoth.NewEngine(testSets(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(eng, cfg, opts), eng
}

func TestSearchBatch(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, eng := newShardedTestServer(t, shards, Options{})
			body := `{"sets": [
				{"name": "q1", "elements": ["77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL"]},
				{"name": "q2", "elements": ["purple submarine", "orange cat"]}
			]}`
			w := postJSON(t, s, "/v1/search/batch", body)
			if w.Code != http.StatusOK {
				t.Fatalf("code = %d, body %s", w.Code, w.Body)
			}
			resp := decode[batchSearchResponse](t, w)
			if len(resp.Results) != 2 {
				t.Fatalf("got %d results, want 2", len(resp.Results))
			}
			// Each item must equal the single-query endpoint's answer.
			want1, err := eng.Search(silkmoth.Set{Elements: []string{
				"77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL",
			}})
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Results[0].Matches) != len(want1) {
				t.Fatalf("item 0: %d matches, engine says %d", len(resp.Results[0].Matches), len(want1))
			}
			for i, m := range resp.Results[0].Matches {
				if m.Index != want1[i].Index || m.Relatedness != want1[i].Relatedness {
					t.Fatalf("item 0 match %d: got %+v want %+v", i, m, want1[i])
				}
			}
			if len(resp.Results[0].Matches) == 0 || resp.Results[0].Matches[0].Name != "locations" {
				t.Fatalf("q1 best match should be locations, got %+v", resp.Results[0].Matches)
			}
			if len(resp.Results[1].Matches) != 0 || resp.Results[1].Error != "" {
				t.Fatalf("q2 should match nothing without error, got %+v", resp.Results[1])
			}
		})
	}
}

func TestSearchBatchTopK(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	body := `{"sets": [{"elements": ["77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL"]}], "k": 1}`
	w := postJSON(t, s, "/v1/search/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("code = %d, body %s", w.Code, w.Body)
	}
	resp := decode[batchSearchResponse](t, w)
	if len(resp.Results) != 1 || len(resp.Results[0].Matches) != 1 {
		t.Fatalf("k=1 should truncate to one match per item, got %+v", resp.Results)
	}
	if resp.Results[0].Matches[0].Name != "locations" {
		t.Fatalf("top-1 = %q, want locations", resp.Results[0].Matches[0].Name)
	}
}

func TestSearchBatchPerItemErrors(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	body := `{"sets": [
		{"elements": ["77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL"]},
		{"name": "empty", "elements": []},
		{"elements": ["purple submarine"]}
	]}`
	w := postJSON(t, s, "/v1/search/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("an invalid item must not fail the batch: code = %d, body %s", w.Code, w.Body)
	}
	resp := decode[batchSearchResponse](t, w)
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if len(resp.Results[0].Matches) == 0 || resp.Results[0].Error != "" {
		t.Fatalf("item 0 should succeed, got %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" || len(resp.Results[1].Matches) != 0 {
		t.Fatalf("item 1 should carry a per-item error, got %+v", resp.Results[1])
	}
	if resp.Results[2].Error != "" {
		t.Fatalf("item 2 should succeed, got %+v", resp.Results[2])
	}
}

func TestSearchBatchRejects(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxBatchSize: 2})
	cases := []struct {
		name, body string
		code       int
	}{
		{"empty batch", `{"sets": []}`, http.StatusBadRequest},
		{"bad json", `{"sets": [`, http.StatusBadRequest},
		{"negative k", `{"sets": [{"elements": ["x"]}], "k": -1}`, http.StatusBadRequest},
		{"oversized", `{"sets": [{"elements": ["a"]}, {"elements": ["b"]}, {"elements": ["c"]}]}`,
			http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, s, "/v1/search/batch", tc.body)
			if w.Code != tc.code {
				t.Fatalf("code = %d, want %d (body %s)", w.Code, tc.code, w.Body)
			}
			if resp := decode[errorResponse](t, w); resp.Error == "" {
				t.Fatal("error body missing")
			}
		})
	}
}

func TestOversizedBodyIs413(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxBodyBytes: 64})
	body := `{"set": {"elements": ["` + strings.Repeat("x", 200) + `"]}}`
	w := postJSON(t, s, "/v1/search", body)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("code = %d, want 413 (body %s)", w.Code, w.Body)
	}
	if resp := decode[errorResponse](t, w); resp.Error == "" {
		t.Fatal("error body missing")
	}
}

func TestSearchBatchCached(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	body := `{"sets": [{"elements": ["77 Mass Ave Boston MA"]}]}`
	w := postJSON(t, s, "/v1/search/batch", body)
	if w.Code != http.StatusOK || w.Header().Get("X-Silkmoth-Cache") != "miss" {
		t.Fatalf("first call: code %d cache %q", w.Code, w.Header().Get("X-Silkmoth-Cache"))
	}
	w = postJSON(t, s, "/v1/search/batch", body)
	if w.Code != http.StatusOK || w.Header().Get("X-Silkmoth-Cache") != "hit" {
		t.Fatalf("second call: code %d cache %q", w.Code, w.Header().Get("X-Silkmoth-Cache"))
	}
}

func TestStatsAndMetricsShards(t *testing.T) {
	s, _ := newShardedTestServer(t, 2, Options{})
	w := get(t, s, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats code = %d", w.Code)
	}
	st := decode[statsResponse](t, w)
	if st.Shards != 2 || st.Sets != 3 {
		t.Fatalf("stats shards=%d sets=%d, want 2 and 3", st.Shards, st.Sets)
	}
	w = get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics code = %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "silkmothd_engine_shards 2") {
		t.Fatalf("metrics missing shard gauge:\n%s", w.Body.String())
	}
}
