package server

import (
	"net/http"
	"strconv"

	"silkmoth"
)

// ExplainJSON is a query's execution metadata on the wire: the concrete
// signature scheme that probed the index, the per-stage pruning funnel
// (candidates = after_check + check_pruned; after_check = after_nn +
// nn_pruned; every after_nn survivor is verified), and wall time in
// microseconds.
type ExplainJSON struct {
	Scheme      string           `json:"scheme"`
	Schemes     map[string]int64 `json:"schemes,omitempty"`
	Passes      int64            `json:"passes"`
	FullScans   int64            `json:"full_scans"`
	SigTokens   int64            `json:"sig_tokens"`
	Candidates  int64            `json:"candidates"`
	AfterCheck  int64            `json:"after_check"`
	CheckPruned int64            `json:"check_pruned"`
	AfterNN     int64            `json:"after_nn"`
	NNPruned    int64            `json:"nn_pruned"`
	Verified    int64            `json:"verified"`
	ElapsedUS   int64            `json:"elapsed_us"`
}

func explainJSON(ex *silkmoth.Explain) *ExplainJSON {
	return &ExplainJSON{
		Scheme:      ex.Scheme,
		Schemes:     ex.Schemes,
		Passes:      ex.Passes,
		FullScans:   ex.FullScans,
		SigTokens:   ex.SigTokens,
		Candidates:  ex.Candidates,
		AfterCheck:  ex.AfterCheck,
		CheckPruned: ex.CheckPruned,
		AfterNN:     ex.AfterNN,
		NNPruned:    ex.NNPruned,
		Verified:    ex.Verified,
		ElapsedUS:   ex.Elapsed.Microseconds(),
	}
}

// explainRequest is the POST /v1/explain body: a search request plus
// filter toggles for interactive what-if tuning (how many more candidates
// reach verification with a filter off?).
type explainRequest struct {
	Set    SetJSON `json:"set"`
	K      int     `json:"k,omitempty"`
	Scheme string  `json:"scheme,omitempty"`
	Delta  float64 `json:"delta,omitempty"`
	// DisableCheckFilter / DisableNNFilter turn pipeline stages off for
	// this query only. Results never change — only the funnel does.
	DisableCheckFilter bool `json:"disable_check_filter,omitempty"`
	DisableNNFilter    bool `json:"disable_nn_filter,omitempty"`
}

type explainResponse struct {
	Matches []MatchJSON `json:"matches"`
	Explain ExplainJSON `json:"explain"`
}

// handleExplain serves GET/POST /v1/explain: it runs one search and
// returns its matches together with the plan's execution metadata —
// chosen concrete scheme, signature token count, per-stage survivor
// counts, wall time — making filter and scheme tuning self-service.
//
// POST takes an explainRequest body. GET takes query parameters for
// curl-friendly poking: repeated e=<element> for the reference set's
// elements, plus optional k, scheme, delta. Explain responses are never
// cached (wall time would go stale).
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if s.opts.DisableExplain {
		writeError(w, http.StatusNotFound, "explain is disabled on this server")
		return
	}
	var req explainRequest
	if r.Method == http.MethodGet {
		if !parseExplainQuery(w, r, &req) {
			return
		}
	} else if err := s.decodeBody(w, r, &req); err != nil {
		writeDecodeErr(w, err)
		return
	}
	if len(req.Set.Elements) == 0 {
		writeError(w, http.StatusBadRequest, "set.elements must be non-empty (GET: repeated e= parameters)")
		return
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, "k must be >= 0")
		return
	}
	var ex silkmoth.Explain
	opts, _, ok := s.overrides(w, req.Scheme, req.Delta, true, &ex)
	if !ok {
		return
	}
	if req.K >= 1 {
		opts = append(opts, silkmoth.WithK(req.K))
	}
	if req.DisableCheckFilter {
		opts = append(opts, silkmoth.WithCheckFilter(false))
	}
	if req.DisableNNFilter {
		opts = append(opts, silkmoth.WithNNFilter(false))
	}

	ctx, cancel := s.queryCtx(r)
	defer cancel()
	if !s.acquire(ctx, w) {
		return
	}
	defer s.release()

	ms, err := s.eng.SearchContext(ctx, req.Set.toSet(), opts...)
	if err != nil {
		s.writeCtxErr(w, err)
		return
	}
	s.logSlow(r, "/v1/explain", &ex, nil)
	writeJSON(w, http.StatusOK, explainResponse{
		Matches: matchesJSON(ms),
		Explain: *explainJSON(&ex),
	})
}

// parseExplainQuery fills req from GET query parameters, reporting false
// (response written) on malformed values.
func parseExplainQuery(w http.ResponseWriter, r *http.Request, req *explainRequest) bool {
	q := r.URL.Query()
	req.Set = SetJSON{Name: q.Get("name"), Elements: q["e"]}
	req.Scheme = q.Get("scheme")
	if raw := q.Get("k"); raw != "" {
		k, err := strconv.Atoi(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "k must be an integer: %q", raw)
			return false
		}
		req.K = k
	}
	if raw := q.Get("delta"); raw != "" {
		d, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "delta must be a number: %q", raw)
			return false
		}
		req.Delta = d
	}
	req.DisableCheckFilter = q.Get("no_check_filter") == "1" || q.Get("no_check_filter") == "true"
	req.DisableNNFilter = q.Get("no_nn_filter") == "1" || q.Get("no_nn_filter") == "true"
	return true
}
