package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"silkmoth"
	"silkmoth/internal/obs"
)

// scrape fetches /metrics and parses it with the in-repo exposition
// parser, failing the test on any conformance violation.
func scrape(t *testing.T, s *Server) []*obs.MetricFamily {
	t.Helper()
	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics code = %d", w.Code)
	}
	fams, err := obs.ParseText(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatalf("parsing /metrics: %v\n%s", err, w.Body.String())
	}
	if err := obs.Validate(fams); err != nil {
		t.Fatalf("validating /metrics: %v\n%s", err, w.Body.String())
	}
	return fams
}

func familyNames(fams []*obs.MetricFamily) map[string]bool {
	names := make(map[string]bool, len(fams))
	for _, f := range fams {
		names[f.Name] = true
	}
	return names
}

// TestMetricsConformance drives mixed traffic through the server — search,
// batch, explain, a cache hit, a 404 — then checks the whole /metrics
// payload survives the exposition parser and carries every advertised
// family: route histograms, stage histograms, rejection and queue
// counters, runtime gauges, build info.
func TestMetricsConformance(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	postJSON(t, s, "/v1/search", `{"set": {"elements": ["77 Mass Ave Boston MA"]}}`)
	postJSON(t, s, "/v1/search", `{"set": {"elements": ["77 Mass Ave Boston MA"]}}`) // cache hit
	postJSON(t, s, "/v1/search/batch", `{"sets": [{"elements": ["5th St Seattle WA"]}]}`)
	postJSON(t, s, "/v1/explain", `{"set": {"elements": ["State St Chicago IL"]}}`)
	get(t, s, "/nosuch")

	names := familyNames(scrape(t, s))
	for _, want := range []string{
		"silkmothd_uptime_seconds",
		"silkmothd_inflight_requests",
		"silkmothd_queue_depth",
		"silkmothd_queue_depth_high_water",
		"silkmothd_rejections_total",
		"silkmothd_cache_hits_total",
		"silkmothd_cache_misses_total",
		"silkmothd_requests_total",
		"silkmothd_request_seconds",
		"silkmothd_collection_sets",
		"silkmothd_engine_search_passes_total",
		"silkmothd_result_cache_entries",
		"silkmothd_result_cache_evictions_total",
		"silkmothd_stage_seconds",
		"silkmothd_shard_stragglers_total",
		"silkmothd_goroutines",
		"silkmothd_heap_alloc_bytes",
		"silkmothd_gc_pause_seconds_total",
		"silkmothd_build_info",
	} {
		if !names[want] {
			t.Errorf("metrics missing family %q", want)
		}
	}
}

// TestMetricsRouteHistograms checks every known route label renders a
// latency histogram (even before traffic), and that observed traffic lands
// in the right series.
func TestMetricsRouteHistograms(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	postJSON(t, s, "/v1/search", `{"set": {"elements": ["77 Mass Ave Boston MA"]}}`)
	fams := scrape(t, s)
	var hist *obs.MetricFamily
	for _, f := range fams {
		if f.Name == "silkmothd_request_seconds" {
			hist = f
		}
	}
	if hist == nil {
		t.Fatal("no silkmothd_request_seconds family")
	}
	counts := make(map[string]float64)
	for _, sm := range hist.Samples {
		if strings.HasSuffix(sm.Name, "_count") {
			counts[sm.Labels["path"]] = sm.Value
		}
	}
	for path := range knownPaths {
		if _, ok := counts[path]; !ok {
			t.Errorf("route %q has no latency histogram", path)
		}
	}
	if _, ok := counts[otherRoute]; !ok {
		t.Error("aggregate other route has no latency histogram")
	}
	if counts["/v1/search"] != 1 {
		t.Errorf("search histogram count = %g, want 1", counts["/v1/search"])
	}
}

// TestMetricsShardHistograms checks a sharded engine exposes per-shard
// scatter latency series.
func TestMetricsShardHistograms(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 2
	eng, err := silkmoth.NewEngine(testSets(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, cfg, Options{})
	postJSON(t, s, "/v1/search", `{"set": {"elements": ["77 Mass Ave Boston MA"]}}`)
	fams := scrape(t, s)
	shards := make(map[string]bool)
	for _, f := range fams {
		if f.Name != "silkmothd_shard_seconds" {
			continue
		}
		for _, sm := range f.Samples {
			shards[sm.Labels["shard"]] = true
		}
	}
	if !shards["0"] || !shards["1"] {
		t.Fatalf("missing per-shard latency series, got shards %v", shards)
	}
}

// TestRequestIDEcho checks the X-Request-Id contract: a well-formed caller
// id is echoed back, a malformed one is replaced, and absent ids are
// generated fresh per request.
func TestRequestIDEcho(t *testing.T) {
	s, _ := newTestServer(t, Options{})

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-id-42")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if got := w.Header().Get("X-Request-Id"); got != "caller-id-42" {
		t.Errorf("valid caller id not echoed: got %q", got)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-Id", "has space\"quote")
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if got := w.Header().Get("X-Request-Id"); got == "" || strings.Contains(got, " ") {
		t.Errorf("malformed caller id not replaced: got %q", got)
	}

	a := get(t, s, "/healthz").Header().Get("X-Request-Id")
	b := get(t, s, "/healthz").Header().Get("X-Request-Id")
	if a == "" || b == "" || a == b {
		t.Errorf("generated ids must be unique and non-empty: %q, %q", a, b)
	}
}

// slowLine is the decoded slow-query log schema.
type slowLine struct {
	TS         string           `json:"ts"`
	Event      string           `json:"event"`
	RequestID  string           `json:"request_id"`
	Route      string           `json:"route"`
	Reason     string           `json:"reason"`
	ElapsedUS  int64            `json:"elapsed_us"`
	Scheme     string           `json:"scheme"`
	Passes     int64            `json:"passes"`
	FullScans  int64            `json:"full_scans"`
	SigTokens  int64            `json:"sig_tokens"`
	Candidates int64            `json:"candidates"`
	AfterCheck int64            `json:"after_check"`
	CheckPrune int64            `json:"check_pruned"`
	AfterNN    int64            `json:"after_nn"`
	NNPruned   int64            `json:"nn_pruned"`
	Verified   int64            `json:"verified"`
	StageNS    map[string]int64 `json:"stage_ns"`
	Shards     int              `json:"shards"`
	BatchIndex *int             `json:"batch_index"`
}

func decodeSlowLines(t *testing.T, buf *bytes.Buffer) []slowLine {
	t.Helper()
	var lines []slowLine
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if raw == "" {
			continue
		}
		var ln slowLine
		if err := json.Unmarshal([]byte(raw), &ln); err != nil {
			t.Fatalf("slow log line is not valid JSON: %v\n%s", err, raw)
		}
		lines = append(lines, ln)
	}
	return lines
}

// TestSlowQueryLog checks a query past the threshold emits exactly one
// JSON line carrying the request id and an arithmetically consistent
// funnel with per-stage times.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	s, _ := newTestServer(t, Options{
		SlowQueryThreshold: time.Nanosecond, // every query is slow
		LogWriter:          &buf,
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/search",
		strings.NewReader(`{"set": {"elements": ["77 Mass Ave Boston MA"]}}`))
	req.Header.Set("X-Request-Id", "slow-test-7")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("search code = %d: %s", w.Code, w.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Explain != nil {
		t.Error("server-side capture leaked an explain into the response")
	}

	lines := decodeSlowLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d slow-query lines, want exactly 1:\n%s", len(lines), buf.String())
	}
	ln := lines[0]
	if ln.Event != "slow_query" || ln.Reason != "threshold" {
		t.Errorf("event/reason = %q/%q", ln.Event, ln.Reason)
	}
	if ln.RequestID != "slow-test-7" {
		t.Errorf("request id = %q, want slow-test-7", ln.RequestID)
	}
	if ln.Route != "/v1/search" {
		t.Errorf("route = %q", ln.Route)
	}
	if ln.TS == "" || ln.Scheme == "" || ln.Passes < 1 || ln.Shards < 1 {
		t.Errorf("incomplete line: ts=%q scheme=%q passes=%d shards=%d", ln.TS, ln.Scheme, ln.Passes, ln.Shards)
	}
	if ln.Candidates != ln.AfterCheck+ln.CheckPrune {
		t.Errorf("funnel broken: candidates %d != after_check %d + check_pruned %d",
			ln.Candidates, ln.AfterCheck, ln.CheckPrune)
	}
	if ln.AfterCheck != ln.AfterNN+ln.NNPruned {
		t.Errorf("funnel broken: after_check %d != after_nn %d + nn_pruned %d",
			ln.AfterCheck, ln.AfterNN, ln.NNPruned)
	}
	for _, stage := range []string{"signature", "collect", "refine", "verify"} {
		if _, ok := ln.StageNS[stage]; !ok {
			t.Errorf("stage_ns missing %q: %v", stage, ln.StageNS)
		}
	}
}

// TestSlowQuerySampleBatch checks 1-in-N sampling and batch fan-out: every
// item of a sampled batch logs its own funnel line under the batch
// request's id, positionally indexed.
func TestSlowQuerySampleBatch(t *testing.T) {
	var buf bytes.Buffer
	s, _ := newTestServer(t, Options{
		SlowQuerySample: 1, // every query drawn
		LogWriter:       &buf,
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/search/batch",
		strings.NewReader(`{"sets": [{"elements": ["77 Mass Ave Boston MA"]}, {"elements": ["red bicycle"]}]}`))
	req.Header.Set("X-Request-Id", "batch-rid-1")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch code = %d: %s", w.Code, w.Body.String())
	}
	var resp batchSearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i, item := range resp.Results {
		if item.Scheme != "" || item.Explain != nil {
			t.Errorf("item %d: capture leaked into response: %+v", i, item)
		}
	}

	lines := decodeSlowLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (one per batch item):\n%s", len(lines), buf.String())
	}
	seen := make(map[int]bool)
	for _, ln := range lines {
		if ln.RequestID != "batch-rid-1" {
			t.Errorf("batch item line lost the request id: %q", ln.RequestID)
		}
		if ln.Reason != "sampled" {
			t.Errorf("reason = %q, want sampled", ln.Reason)
		}
		if ln.BatchIndex == nil {
			t.Error("batch item line missing batch_index")
			continue
		}
		seen[*ln.BatchIndex] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("batch indexes not covered: %v", seen)
	}
}

// TestAccessLog checks the per-request access line schema.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s, _ := newTestServer(t, Options{AccessLog: true, LogWriter: &buf})
	get(t, s, "/healthz")
	var line struct {
		Event     string `json:"event"`
		RequestID string `json:"request_id"`
		Method    string `json:"method"`
		Path      string `json:"path"`
		Route     string `json:"route"`
		Code      int    `json:"code"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &line); err != nil {
		t.Fatalf("access line not valid JSON: %v\n%s", err, buf.String())
	}
	if line.Event != "access" || line.Method != "GET" || line.Path != "/healthz" ||
		line.Route != "/healthz" || line.Code != 200 || line.RequestID == "" {
		t.Errorf("bad access line: %+v", line)
	}
}

// TestVersionEndpoint checks /v1/version reports embedded build metadata.
func TestVersionEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	w := get(t, s, "/v1/version")
	if w.Code != http.StatusOK {
		t.Fatalf("code = %d", w.Code)
	}
	v := decode[versionResponse](t, w)
	if v.GoVersion == "" || v.Version == "" {
		t.Errorf("incomplete version: %+v", v)
	}
}

// TestCacheEvictionMetric checks capacity-pressure evictions are counted
// and exposed.
func TestCacheEvictionMetric(t *testing.T) {
	s, _ := newTestServer(t, Options{CacheSize: 1})
	postJSON(t, s, "/v1/search", `{"set": {"elements": ["77 Mass Ave Boston MA"]}}`)
	postJSON(t, s, "/v1/search", `{"set": {"elements": ["red bicycle"]}}`) // evicts the first
	if got := s.cache.evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	w := get(t, s, "/metrics")
	if !strings.Contains(w.Body.String(), "silkmothd_result_cache_evictions_total 1") {
		t.Error("metrics missing eviction count")
	}
}

// TestPoolFullRejection occupies the whole worker pool and checks a
// request that never gets a slot is rejected and charged to pool_full.
func TestPoolFullRejection(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxInFlight: 1, RequestTimeout: 20 * time.Millisecond})
	s.sem <- struct{}{} // occupy the only slot
	defer func() { <-s.sem }()
	w := postJSON(t, s, "/v1/search", `{"set": {"elements": ["77 Mass Ave Boston MA"]}}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("code = %d, want 504", w.Code)
	}
	mw := get(t, s, "/metrics")
	if !strings.Contains(mw.Body.String(), `silkmothd_rejections_total{cause="pool_full"} 1`) {
		t.Errorf("pool_full rejection not counted:\n%s", mw.Body.String())
	}
}

// TestRejectionCauses checks the engine-abort paths split timeout from
// client cancellation.
func TestRejectionCauses(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	s.writeCtxErr(httptest.NewRecorder(), context.DeadlineExceeded)
	s.writeCtxErr(httptest.NewRecorder(), context.Canceled)
	w := get(t, s, "/metrics")
	for _, want := range []string{
		`silkmothd_rejections_total{cause="timeout"} 1`,
		`silkmothd_rejections_total{cause="cancelled"} 1`,
	} {
		if !strings.Contains(w.Body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestPprofOptIn checks pprof handlers are mounted only when enabled.
func TestPprofOptIn(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	if w := get(t, s, "/debug/pprof/"); w.Code != http.StatusNotFound {
		t.Errorf("pprof mounted without opt-in: code %d", w.Code)
	}
	s, _ = newTestServer(t, Options{EnablePprof: true})
	if w := get(t, s, "/debug/pprof/"); w.Code != http.StatusOK {
		t.Errorf("pprof index code = %d, want 200", w.Code)
	}
}
