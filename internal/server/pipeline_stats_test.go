package server

import (
	"net/http"
	"strings"
	"testing"

	"silkmoth"
)

// TestPipelineFunnelStats checks that the per-stage pipeline counters —
// signature size, candidate funnel, check/NN prunes, scheme selections —
// reach /v1/stats after real query traffic, and that the funnel's
// arithmetic holds (candidates = after_check + check_pruned).
func TestPipelineFunnelStats(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = silkmoth.SchemeAuto
	eng, err := silkmoth.NewEngine(testSets(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, cfg, Options{})

	for i := 0; i < 3; i++ {
		w := postJSON(t, s, "/v1/discover-against",
			`{"sets": [{"elements": ["77 Mass Ave Boston MA", "5th St Seattle WA"]}], "nocache": true}`)
		if w.Code != http.StatusOK {
			t.Fatalf("discover-against = %d (%s)", w.Code, w.Body)
		}
	}

	w := get(t, s, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats = %d", w.Code)
	}
	resp := decode[statsResponse](t, w)
	e := resp.Engine
	if e.SearchPasses == 0 {
		t.Fatal("no search passes recorded")
	}
	if e.SigTokens == 0 {
		t.Fatalf("sig_tokens = 0 after %d passes", e.SearchPasses)
	}
	if e.Candidates != e.AfterCheck+e.CheckPruned {
		t.Fatalf("funnel mismatch: candidates %d != after_check %d + check_pruned %d",
			e.Candidates, e.AfterCheck, e.CheckPruned)
	}
	if e.AfterCheck != e.AfterNN+e.NNPruned {
		t.Fatalf("funnel mismatch: after_check %d != after_nn %d + nn_pruned %d",
			e.AfterCheck, e.AfterNN, e.NNPruned)
	}
	selections := e.Scheme.Weighted + e.Scheme.Skyline + e.Scheme.Dichotomy + e.Scheme.CombUnweighted
	if selections != e.SearchPasses-e.FullScans {
		t.Fatalf("scheme selections %d != signatured passes %d", selections, e.SearchPasses-e.FullScans)
	}
}

// TestPipelineFunnelMetrics checks the Prometheus rendering of the same
// counters.
func TestPipelineFunnelMetrics(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	postJSON(t, s, "/v1/search", `{"set": {"elements": ["77 Mass Ave Boston MA"]}}`)
	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	}
	text := w.Body.String()
	for _, want := range []string{
		"silkmothd_engine_signature_tokens_total",
		"silkmothd_engine_candidates_total",
		"silkmothd_engine_check_pruned_total",
		"silkmothd_engine_nn_pruned_total",
		"silkmothd_engine_full_scans_total",
		`silkmothd_engine_scheme_selected_total{scheme="dichotomy"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
