package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"silkmoth"
)

// newMutTestServer is newTestServer with automatic compaction disabled,
// so tombstone counts stay observable on the tiny corpus (the default
// threshold would compact after a single delete of three sets).
func newMutTestServer(t *testing.T) (*Server, *silkmoth.Engine) {
	t.Helper()
	cfg := testConfig()
	cfg.CompactionThreshold = -1
	eng, err := silkmoth.NewEngine(testSets(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(eng, cfg, Options{}), eng
}

// doJSON issues a request with an optional JSON body under any method.
func doJSON(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestDeleteSet(t *testing.T) {
	s, eng := newMutTestServer(t)

	w := doJSON(t, s, http.MethodDelete, "/v1/sets/2", "")
	if w.Code != http.StatusOK {
		t.Fatalf("code = %d, body %s", w.Code, w.Body)
	}
	resp := decode[deleteSetResponse](t, w)
	if resp.Deleted != 2 || resp.Live != 2 || resp.Generation != 1 {
		t.Fatalf("delete response = %+v", resp)
	}
	if eng.Live(2) {
		t.Fatal("set 2 should be dead")
	}
	if eng.Len() != 2 {
		t.Fatalf("Len = %d, want 2", eng.Len())
	}

	// Stats reflect the tombstone, the live count, and the generation.
	st := decode[statsResponse](t, get(t, s, "/v1/stats"))
	if st.Sets != 2 || st.Tombstones != 1 || st.Generation != 1 {
		t.Fatalf("stats = sets %d tombstones %d generation %d, want 2/1/1", st.Sets, st.Tombstones, st.Generation)
	}

	// Deleting again, or deleting the never-existing, is 404.
	for _, path := range []string{"/v1/sets/2", "/v1/sets/99", "/v1/sets/-1"} {
		if w := doJSON(t, s, http.MethodDelete, path, ""); w.Code != http.StatusNotFound {
			t.Fatalf("DELETE %s code = %d, want 404", path, w.Code)
		}
	}
	// A non-integer id is 400.
	if w := doJSON(t, s, http.MethodDelete, "/v1/sets/abc", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("DELETE /v1/sets/abc code = %d, want 400", w.Code)
	}
}

func TestDeleteConflict(t *testing.T) {
	s, _ := newTestServer(t, Options{})

	// A stale generation token must conflict and change nothing.
	w := doJSON(t, s, http.MethodDelete, "/v1/sets/0?if_generation=41", "")
	if w.Code != http.StatusConflict {
		t.Fatalf("stale delete code = %d, want 409", w.Code)
	}
	st := decode[statsResponse](t, get(t, s, "/v1/stats"))
	if st.Sets != 3 || st.Generation != 0 {
		t.Fatalf("conflicting delete mutated state: %+v", st)
	}

	// The current generation applies cleanly.
	if w := doJSON(t, s, http.MethodDelete, "/v1/sets/0?if_generation=0", ""); w.Code != http.StatusOK {
		t.Fatalf("conditional delete code = %d, body %s", w.Code, w.Body)
	}
	// A malformed token is 400, not a silent unconditional delete.
	if w := doJSON(t, s, http.MethodDelete, "/v1/sets/1?if_generation=xyz", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed if_generation code = %d, want 400", w.Code)
	}
}

func TestUpdateSet(t *testing.T) {
	s, eng := newMutTestServer(t)

	body := `{"set": {"name": "products-v2", "elements": ["silver bicycle", "blue kettle", "green lamp"]}}`
	w := doJSON(t, s, http.MethodPut, "/v1/sets/2", body)
	if w.Code != http.StatusOK {
		t.Fatalf("code = %d, body %s", w.Code, w.Body)
	}
	resp := decode[updateSetResponse](t, w)
	if resp.Replaced != 2 || resp.ID != 3 || resp.Live != 3 || resp.Generation != 1 {
		t.Fatalf("update response = %+v", resp)
	}
	if eng.Live(2) || !eng.Live(3) {
		t.Fatal("old id should be dead, new id live")
	}
	if name := eng.SetName(3); name != "products-v2" {
		t.Fatalf("new set name = %q", name)
	}

	// The old id is gone for good: updating or deleting it is 404.
	if w := doJSON(t, s, http.MethodPut, "/v1/sets/2", body); w.Code != http.StatusNotFound {
		t.Fatalf("update of dead id code = %d, want 404", w.Code)
	}
	if w := doJSON(t, s, http.MethodDelete, "/v1/sets/2", ""); w.Code != http.StatusNotFound {
		t.Fatalf("delete of dead id code = %d, want 404", w.Code)
	}

	// Validation: unknown id, empty elements, stale generation (body field).
	if w := doJSON(t, s, http.MethodPut, "/v1/sets/77", body); w.Code != http.StatusNotFound {
		t.Fatalf("update of unknown id code = %d, want 404", w.Code)
	}
	if w := doJSON(t, s, http.MethodPut, "/v1/sets/0", `{"set": {"elements": []}}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty update code = %d, want 400", w.Code)
	}
	stale := `{"set": {"elements": ["x"]}, "if_generation": 0}`
	if w := doJSON(t, s, http.MethodPut, "/v1/sets/0", stale); w.Code != http.StatusConflict {
		t.Fatalf("stale conditional update code = %d, want 409", w.Code)
	}
	fresh := fmt.Sprintf(`{"set": {"elements": ["x y z"]}, "if_generation": %d}`, resp.Generation)
	if w := doJSON(t, s, http.MethodPut, "/v1/sets/0", fresh); w.Code != http.StatusOK {
		t.Fatalf("current-generation conditional update code = %d, body %s", w.Code, w.Body)
	}
}

// TestDeleteInvalidatesCache pins the lifecycle's cache-coherence rule: a
// cached query result must never serve a set deleted after it was stored.
func TestDeleteInvalidatesCache(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	body := `{"set": {"elements": ["77 Mass Ave Boston MA", "5th St Seattle WA", "State St Chicago IL"]}}`

	w := postJSON(t, s, "/v1/search", body)
	if w.Code != http.StatusOK || w.Header().Get("X-Silkmoth-Cache") != "miss" {
		t.Fatalf("first search: code %d cache %q", w.Code, w.Header().Get("X-Silkmoth-Cache"))
	}
	first := decode[searchResponse](t, w)
	found := false
	for _, m := range first.Matches {
		if m.Name == "locations" {
			found = true
		}
	}
	if !found {
		t.Fatalf("locations should match before the delete: %+v", first.Matches)
	}
	if w = postJSON(t, s, "/v1/search", body); w.Header().Get("X-Silkmoth-Cache") != "hit" {
		t.Fatal("second search should be served from cache")
	}

	// Delete "locations" (id 1): the cached result must not survive.
	if w = doJSON(t, s, http.MethodDelete, "/v1/sets/1", ""); w.Code != http.StatusOK {
		t.Fatalf("delete code = %d", w.Code)
	}
	w = postJSON(t, s, "/v1/search", body)
	if w.Header().Get("X-Silkmoth-Cache") != "miss" {
		t.Fatal("search after delete must not be served from the stale cache")
	}
	after := decode[searchResponse](t, w)
	for _, m := range after.Matches {
		if m.Name == "locations" || m.Index == 1 {
			t.Fatalf("deleted set served after delete: %+v", after.Matches)
		}
	}
}

// TestMetricsLifecycleGauges checks the tombstone/compaction/generation
// series appear on /metrics and move with mutations.
func TestMetricsLifecycleGauges(t *testing.T) {
	s, _ := newMutTestServer(t)
	if w := doJSON(t, s, http.MethodDelete, "/v1/sets/0", ""); w.Code != http.StatusOK {
		t.Fatalf("delete code = %d", w.Code)
	}
	body := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"silkmothd_collection_sets 2",
		"silkmothd_collection_tombstones 1",
		"silkmothd_mutation_generation 1",
		"silkmothd_engine_compactions_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}
