// Package server exposes a silkmoth.Engine over HTTP/JSON: the related-set
// primitives of the paper (search, top-k, discovery, pairwise compare) plus
// the full collection lifecycle — incremental indexing, per-set delete and
// update with optimistic concurrency (if_generation, 409 on conflict) —
// health, stats, and Prometheus-style metrics. It is the serving layer
// behind cmd/silkmothd.
//
// Query endpoints share one bounded worker pool (a semaphore over the
// engine) and an LRU result cache keyed on the query's full identity —
// endpoint, metric, δ, α, and the query sets' raw elements. Every request
// carries a context with the configured timeout; cancellation propagates
// into the engine's search and discovery loops, so an abandoned request
// stops burning matching computations.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"silkmoth"
	"silkmoth/internal/obs"
)

// Options configures the serving layer. The zero value serves with sane
// defaults: a 30-second request timeout, 2×GOMAXPROCS in-flight queries,
// and a 1024-entry result cache.
type Options struct {
	// RequestTimeout bounds each query request's execution, including
	// time spent waiting for a worker slot. 0 means the 30s default;
	// negative disables the timeout.
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently executing query requests; excess
	// requests wait (within their timeout) for a slot. 0 means
	// 2×GOMAXPROCS; negative means 1.
	MaxInFlight int
	// CacheSize is the result cache's entry capacity. 0 means 1024;
	// negative disables caching.
	CacheSize int
	// MaxBodyBytes bounds request body size. 0 means 64 MiB.
	MaxBodyBytes int64
	// MaxCompareElements bounds the per-set element count accepted by
	// /v1/compare. Unlike search passes — which hit cancellation checks
	// between candidates — one compare is a single O(n³) matching the
	// context cannot interrupt, so its size must be bounded up front.
	// 0 means 512; negative disables the bound.
	MaxCompareElements int
	// MaxBatchSize bounds the set count accepted by /v1/search/batch; a
	// larger batch is rejected with 413 before any work starts. 0 means
	// 256; negative disables the bound.
	MaxBatchSize int
	// DisableExplain turns off execution introspection: /v1/explain
	// answers 404 and explain request fields are rejected with 400.
	// Explained responses bypass the result cache (their wall-time field
	// would otherwise go stale), so operators fronting hot repeated
	// workloads may prefer them off. Server-side slow-query capture is
	// unaffected — it never changes response bodies.
	DisableExplain bool
	// LogWriter receives the server's structured JSON logs (access lines
	// and slow-query funnels), one object per line. Nil disables logging.
	LogWriter io.Writer
	// AccessLog emits one JSON line per request to LogWriter: request id,
	// method, path, route label, status, latency.
	AccessLog bool
	// SlowQueryThreshold emits a query's full execution funnel — chosen
	// scheme, per-stage survivor counts, per-stage nanoseconds, shard
	// count — as one JSON line on LogWriter whenever its engine time
	// meets the threshold. 0 disables threshold-triggered capture.
	SlowQueryThreshold time.Duration
	// SlowQuerySample emits the same funnel line for one in every N
	// queries regardless of latency, so the log always carries a baseline
	// to compare slow outliers against. 0 disables sampling.
	SlowQuerySample int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — CPU and
	// heap profiles, goroutine dumps, execution traces. Off by default:
	// profiles can leak operational detail, so exposure is opt-in.
	EnablePprof bool
}

func (o Options) normalize() Options {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if o.MaxInFlight < 1 {
		o.MaxInFlight = 1
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.MaxCompareElements == 0 {
		o.MaxCompareElements = 512
	}
	if o.MaxBatchSize == 0 {
		o.MaxBatchSize = 256
	}
	return o
}

// Server is the HTTP serving layer over one engine. Create with New and
// mount anywhere an http.Handler goes.
type Server struct {
	eng   *silkmoth.Engine
	cfg   silkmoth.Config
	opts  Options
	sem   chan struct{}
	cache *resultCache
	met   *metrics
	log   *obs.Logger
	mux   *http.ServeMux
	// slowSeq drives 1-in-N slow-query sampling across all query
	// endpoints.
	slowSeq int64
	// gen is bumped by every mutation (Add, Delete, Update) and baked
	// into cache keys, so a result computed against an older collection
	// can never be served after the collection changes — even if it is
	// stored late. It doubles as the optimistic-concurrency token for
	// conditional mutations (the if_generation conflict check).
	gen int64
	// mutMu serializes mutations so the if_generation check-then-apply
	// is atomic: between a conditional mutation's generation check and
	// its generation bump, no other mutation can slip in.
	mutMu sync.Mutex
}

// New builds a server over eng. cfg must be the configuration eng was built
// with; the compare endpoint and the stats report read it.
func New(eng *silkmoth.Engine, cfg silkmoth.Config, opts Options) *Server {
	opts = opts.normalize()
	s := &Server{
		eng:   eng,
		cfg:   cfg,
		opts:  opts,
		sem:   make(chan struct{}, opts.MaxInFlight),
		cache: newResultCache(opts.CacheSize),
		met:   newMetrics(),
	}
	if opts.LogWriter != nil {
		s.log = obs.NewLogger(opts.LogWriter)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/search/batch", s.handleSearchBatch)
	mux.HandleFunc("POST /v1/topk", s.handleTopK)
	mux.HandleFunc("POST /v1/discover-against", s.handleDiscoverAgainst)
	mux.HandleFunc("GET /v1/explain", s.handleExplain)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("POST /v1/compare", s.handleCompare)
	mux.HandleFunc("POST /v1/sets", s.handleAddSets)
	mux.HandleFunc("DELETE /v1/sets/{id}", s.handleDeleteSet)
	mux.HandleFunc("PUT /v1/sets/{id}", s.handleUpdateSet)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opts.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// knownPaths bounds the metrics label space: anything else (scanners,
// typos) is aggregated under "other" so perRoute cannot grow without
// bound on a long-running server.
var knownPaths = map[string]bool{
	"/v1/search":           true,
	"/v1/search/batch":     true,
	"/v1/topk":             true,
	"/v1/discover-against": true,
	"/v1/explain":          true,
	"/v1/compare":          true,
	"/v1/sets":             true,
	"/v1/sets/{id}":        true,
	"/v1/snapshot":         true,
	"/v1/stats":            true,
	"/v1/version":          true,
	"/healthz":             true,
	"/metrics":             true,
	"/debug/pprof":         true,
}

// otherRoute is the aggregate label for paths outside knownPaths.
const otherRoute = "other"

// metricPath collapses a request path to its bounded route label: set ids
// and pprof profile names fold into one label each, and anything unmatched
// (scanners, typos) aggregates under otherRoute.
func metricPath(path string) string {
	if rest, ok := strings.CutPrefix(path, "/v1/sets/"); ok && rest != "" && !strings.Contains(rest, "/") {
		return "/v1/sets/{id}"
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "/debug/pprof"
	}
	if !knownPaths[path] {
		return otherRoute
	}
	return path
}

// ridKey carries the request id through the request context.
type ridKey struct{}

// requestID returns the id ServeHTTP assigned to this request.
func requestID(r *http.Request) string {
	rid, _ := r.Context().Value(ridKey{}).(string)
	return rid
}

// ServeHTTP dispatches to the API routes. Every request gets an id — the
// caller's X-Request-Id when it is well-formed, a fresh one otherwise —
// echoed in the response header and carried through the context so log
// lines from any layer correlate. Per-route request counts and latency are
// recorded lock-free, and an access line is emitted when configured.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := r.Header.Get("X-Request-Id")
	if !obs.ValidRequestID(rid) {
		rid = obs.NewRequestID()
	}
	w.Header().Set("X-Request-Id", rid)
	r = r.WithContext(context.WithValue(r.Context(), ridKey{}, rid))
	rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	path := metricPath(r.URL.Path)
	elapsed := time.Since(start)
	s.met.observe(path, rec.code, elapsed)
	if s.opts.AccessLog && s.log.Enabled() {
		s.log.Emit("access", map[string]any{
			"request_id": rid,
			"method":     r.Method,
			"path":       r.URL.Path,
			"route":      path,
			"code":       rec.code,
			"elapsed_us": elapsed.Microseconds(),
		})
	}
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// ---- wire types ----

// SetJSON is a set on the wire.
type SetJSON struct {
	Name     string   `json:"name,omitempty"`
	Elements []string `json:"elements"`
}

func (s SetJSON) toSet() silkmoth.Set {
	return silkmoth.Set{Name: s.Name, Elements: s.Elements}
}

// MatchJSON is one search result on the wire.
type MatchJSON struct {
	Index         int     `json:"index"`
	Name          string  `json:"name"`
	Relatedness   float64 `json:"relatedness"`
	MatchingScore float64 `json:"matching_score"`
}

// PairJSON is one discovery result on the wire.
type PairJSON struct {
	R             int     `json:"r"`
	S             int     `json:"s"`
	RName         string  `json:"r_name"`
	SName         string  `json:"s_name"`
	Relatedness   float64 `json:"relatedness"`
	MatchingScore float64 `json:"matching_score"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func matchesJSON(ms []silkmoth.Match) []MatchJSON {
	out := make([]MatchJSON, len(ms))
	for i, m := range ms {
		out[i] = MatchJSON{Index: m.Index, Name: m.Name, Relatedness: m.Relatedness, MatchingScore: m.MatchingScore}
	}
	return out
}

func pairsJSON(ps []silkmoth.Pair) []PairJSON {
	out := make([]PairJSON, len(ps))
	for i, p := range ps {
		out[i] = PairJSON{R: p.R, S: p.S, RName: p.RName, SName: p.SName, Relatedness: p.Relatedness, MatchingScore: p.MatchingScore}
	}
	return out
}

// ---- plumbing ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"internal: encoding response"}`, http.StatusInternalServerError)
		return
	}
	writeJSONBytes(w, code, body)
}

func writeJSONBytes(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeDecodeErr maps a request-decoding failure to its status: 413 when
// the body blew the MaxBodyBytes limit (matching the oversized-batch
// path), 400 for everything malformed.
func writeDecodeErr(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// decodeBody unmarshals the request body into v, enforcing the body size
// limit. It returns a client-facing error for malformed input.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		return fmt.Errorf("reading body: %w", err)
	}
	if len(data) == 0 {
		return errors.New("empty request body")
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("malformed JSON: %w", err)
	}
	return nil
}

// queryCtx applies the configured request timeout to the request context.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	}
	return r.Context(), func() {}
}

// acquire takes a worker-pool slot, waiting within ctx. It reports whether
// the slot was obtained; on false the response has already been written and
// the rejection charged to the pool (the slot never freed within the
// request's budget — however the wait ended, the pool was the bottleneck).
func (s *Server) acquire(ctx context.Context, w http.ResponseWriter) bool {
	s.met.enterQueue()
	defer s.met.exitQueue()
	select {
	case s.sem <- struct{}{}:
		s.met.addInflight(1)
		return true
	case <-ctx.Done():
		s.met.reject(causePoolFull)
		s.writeHTTPCtxErr(w, ctx.Err())
		return false
	}
}

func (s *Server) release() {
	s.met.addInflight(-1)
	<-s.sem
}

// writeCtxErr reports a query the engine abandoned mid-flight, splitting
// the rejection counter by whether the deadline fired or the client hung
// up.
func (s *Server) writeCtxErr(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.met.reject(causeTimeout)
	} else {
		s.met.reject(causeCancelled)
	}
	s.writeHTTPCtxErr(w, err)
}

// writeHTTPCtxErr maps a context error to its response without touching
// rejection counters (callers attribute the cause).
func (s *Server) writeHTTPCtxErr(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "request timed out")
		return
	}
	writeError(w, http.StatusServiceUnavailable, "request cancelled")
}

// cacheKey builds the result cache key for one query: endpoint kind, the
// engine's metric/δ/α identity, any endpoint scalar (like k), any
// per-query override spec (scheme/δ overrides change the response body,
// so they must key separately), then every query set's elements, all
// length-prefixed so distinct queries can never collide.
func (s *Server) cacheKey(kind string, scalar int, overrides string, sets ...SetJSON) string {
	var b strings.Builder
	b.WriteString(kind)
	b.WriteByte(0)
	fmt.Fprintf(&b, "%d|%d|%d|%g|%g|%d|%s", atomic.LoadInt64(&s.gen),
		int(s.cfg.Metric), int(s.cfg.Similarity), s.cfg.Delta, s.cfg.Alpha, scalar, overrides)
	for _, set := range sets {
		b.WriteByte(0)
		b.WriteString(strconv.Itoa(len(set.Elements)))
		for _, el := range set.Elements {
			b.WriteByte(0)
			b.WriteString(strconv.Itoa(len(el)))
			b.WriteByte(':')
			b.WriteString(el)
		}
	}
	return b.String()
}

// serveCached writes the cached body for key if present, marking the cache
// header, and reports whether it did.
func (s *Server) serveCached(w http.ResponseWriter, key string) bool {
	if body, ok := s.cache.get(key); ok {
		s.met.cacheHit()
		w.Header().Set("X-Silkmoth-Cache", "hit")
		writeJSONBytes(w, http.StatusOK, body)
		return true
	}
	s.met.cacheMiss()
	return false
}

// finish marshals v, stores it under key, and writes it.
func (s *Server) finish(w http.ResponseWriter, key string, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal: encoding response")
		return
	}
	s.cache.put(key, body)
	w.Header().Set("X-Silkmoth-Cache", "miss")
	writeJSONBytes(w, http.StatusOK, body)
}

// ---- handlers ----

type searchRequest struct {
	Set SetJSON `json:"set"`
	K   int     `json:"k,omitempty"`
	// Scheme pins this query's signature scheme ("dichotomy", "skyline",
	// "weighted", "combunweighted", "auto"); empty inherits the engine's.
	Scheme string `json:"scheme,omitempty"`
	// Delta overrides the relatedness threshold δ ∈ (0, 1] for this query;
	// 0 inherits the engine's.
	Delta float64 `json:"delta,omitempty"`
	// Explain attaches the query's execution metadata to the response.
	// Explained responses bypass the result cache.
	Explain bool `json:"explain,omitempty"`
}

// overrides validates the request's per-query fields and compiles them to
// engine options plus the cache-key override spec. ex, when non-nil, is
// the explain destination wired through WithExplain.
func (s *Server) overrides(w http.ResponseWriter, scheme string, delta float64, explain bool, ex *silkmoth.Explain) (opts []silkmoth.QueryOption, keySpec string, ok bool) {
	if scheme != "" {
		sc, err := silkmoth.ParseScheme(scheme)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return nil, "", false
		}
		opts = append(opts, silkmoth.WithScheme(sc))
	}
	if delta != 0 {
		if delta < 0 || delta > 1 {
			writeError(w, http.StatusBadRequest, "delta must be in (0, 1], got %g", delta)
			return nil, "", false
		}
		opts = append(opts, silkmoth.WithDelta(delta))
	}
	if explain {
		if s.opts.DisableExplain {
			writeError(w, http.StatusBadRequest, "explain is disabled on this server")
			return nil, "", false
		}
		opts = append(opts, silkmoth.WithExplain(ex))
	}
	return opts, fmt.Sprintf("%s|%g", scheme, delta), true
}

type searchResponse struct {
	Matches []MatchJSON  `json:"matches"`
	Explain *ExplainJSON `json:"explain,omitempty"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.serveSearch(w, r, false)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.serveSearch(w, r, true)
}

func (s *Server) serveSearch(w http.ResponseWriter, r *http.Request, topk bool) {
	var req searchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeDecodeErr(w, err)
		return
	}
	if len(req.Set.Elements) == 0 {
		writeError(w, http.StatusBadRequest, "set.elements must be non-empty")
		return
	}
	kind, k := "search", -1
	if topk {
		if req.K < 1 {
			writeError(w, http.StatusBadRequest, "k must be >= 1")
			return
		}
		kind, k = "topk", req.K
	}
	var ex silkmoth.Explain
	opts, keySpec, ok := s.overrides(w, req.Scheme, req.Delta, req.Explain, &ex)
	if !ok {
		return
	}
	// Slow-query logging needs the funnel even when the client did not ask
	// for it; the capture is server-side only, so the response body (and
	// its cacheability) is unchanged.
	capture := s.captureSlow()
	if capture && !req.Explain {
		opts = append(opts, silkmoth.WithExplain(&ex))
	}

	// Explained responses carry wall time, which a cache would freeze;
	// they skip both lookup and store.
	key := s.cacheKey(kind, k, keySpec, req.Set)
	if !req.Explain && s.serveCached(w, key) {
		return
	}

	ctx, cancel := s.queryCtx(r)
	defer cancel()
	if !s.acquire(ctx, w) {
		return
	}
	defer s.release()

	var ms []silkmoth.Match
	var err error
	if topk {
		ms, err = s.eng.SearchTopKContext(ctx, req.Set.toSet(), req.K, opts...)
	} else {
		ms, err = s.eng.SearchContext(ctx, req.Set.toSet(), opts...)
	}
	if err != nil {
		s.writeCtxErr(w, err)
		return
	}
	if req.Explain || capture {
		s.logSlow(r, metricPath(r.URL.Path), &ex, nil)
	}
	resp := searchResponse{Matches: matchesJSON(ms)}
	if req.Explain {
		resp.Explain = explainJSON(&ex)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.finish(w, key, resp)
}

type batchSearchRequest struct {
	Sets []SetJSON `json:"sets"`
	// K, when ≥ 1, truncates each item's matches to its top k.
	K int `json:"k,omitempty"`
	// Schemes, when present, must align positionally with Sets: each
	// non-empty entry pins that item's signature scheme (an empty string
	// inherits the engine's, including Auto's per-query choice). The
	// response reports the concrete scheme each item probed with.
	Schemes []string `json:"schemes,omitempty"`
	// Explain attaches per-item execution metadata to every result.
	// Explained responses bypass the result cache.
	Explain bool `json:"explain,omitempty"`
}

// BatchItemJSON is one batch item's outcome on the wire: its matches, or a
// per-item error (e.g. an empty set) that left the rest of the batch
// unaffected. When the request pinned schemes or asked for explain, Scheme
// carries the concrete signature scheme the item's passes probed with.
type BatchItemJSON struct {
	Matches []MatchJSON  `json:"matches"`
	Scheme  string       `json:"scheme,omitempty"`
	Explain *ExplainJSON `json:"explain,omitempty"`
	Error   string       `json:"error,omitempty"`
}

type batchSearchResponse struct {
	Results []BatchItemJSON `json:"results"`
}

// handleSearchBatch answers many searches in one request. Invalid items
// are reported in place — the response carries one result per request set,
// positionally aligned — while the valid remainder runs as a single
// engine batch, amortizing tokenization and fanning across shards.
func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req batchSearchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeDecodeErr(w, err)
		return
	}
	if len(req.Sets) == 0 {
		writeError(w, http.StatusBadRequest, "sets must be non-empty")
		return
	}
	if max := s.opts.MaxBatchSize; max > 0 && len(req.Sets) > max {
		writeError(w, http.StatusRequestEntityTooLarge, "batch is limited to %d sets, got %d", max, len(req.Sets))
		return
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, "k must be >= 0")
		return
	}
	if req.Schemes != nil && len(req.Schemes) != len(req.Sets) {
		writeError(w, http.StatusBadRequest, "schemes must align with sets: %d schemes for %d sets",
			len(req.Schemes), len(req.Sets))
		return
	}
	perItem := req.Schemes != nil || req.Explain
	// Slow-query capture rides the same per-item explain plumbing but is
	// invisible on the wire: the response only reports schemes/explains
	// when the request asked for them.
	capture := s.captureSlow()
	schemes := make([]silkmoth.Scheme, len(req.Sets))
	pinned := make([]bool, len(req.Sets))
	for i, name := range req.Schemes {
		if name == "" {
			continue
		}
		sc, err := silkmoth.ParseScheme(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, "schemes[%d]: %v", i, err)
			return
		}
		schemes[i], pinned[i] = sc, true
	}
	if req.Explain && s.opts.DisableExplain {
		writeError(w, http.StatusBadRequest, "explain is disabled on this server")
		return
	}

	// The key must separate a nil schemes array from one of empty strings:
	// their results match, but only the latter reports per-item chosen
	// schemes, so the response bodies differ.
	keySpec := ""
	if req.Schemes != nil {
		keySpec = "schemes:" + strings.Join(req.Schemes, ",")
	}
	key := s.cacheKey("search-batch", req.K, keySpec, req.Sets...)
	if !req.Explain && s.serveCached(w, key) {
		return
	}

	ctx, cancel := s.queryCtx(r)
	defer cancel()
	if !s.acquire(ctx, w) {
		return
	}
	defer s.release()

	// Split valid queries from per-item rejects; only the former reach
	// the engine.
	queries := make([]silkmoth.BatchQuery, 0, len(req.Sets))
	explains := make([]*silkmoth.Explain, 0, len(req.Sets))
	validAt := make([]int, 0, len(req.Sets))
	results := make([]BatchItemJSON, len(req.Sets))
	for i, set := range req.Sets {
		if len(set.Elements) == 0 {
			// Empty (not null) matches, so the wire shape is uniform
			// across rejected and matchless items.
			results[i] = BatchItemJSON{Matches: []MatchJSON{}, Error: "elements must be non-empty"}
			continue
		}
		bq := silkmoth.BatchQuery{Set: set.toSet()}
		var ex *silkmoth.Explain
		if perItem || capture {
			// Per-item chosen schemes come from the same capture explain
			// uses, so both features ride one option.
			ex = &silkmoth.Explain{}
			bq.Options = append(bq.Options, silkmoth.WithExplain(ex))
		}
		if pinned[i] {
			bq.Options = append(bq.Options, silkmoth.WithScheme(schemes[i]))
		}
		queries = append(queries, bq)
		explains = append(explains, ex)
		validAt = append(validAt, i)
	}
	if len(queries) > 0 {
		per, err := s.eng.SearchBatchQueriesContext(ctx, queries)
		if err != nil {
			s.writeCtxErr(w, err)
			return
		}
		for qi, res := range per {
			ms := res.Matches
			if req.K >= 1 && len(ms) > req.K {
				ms = ms[:req.K] // matches are sorted, so the prefix is the top k
			}
			item := &results[validAt[qi]]
			item.Matches = matchesJSON(ms)
			if ex := explains[qi]; ex != nil {
				if perItem {
					item.Scheme = ex.Scheme
					if req.Explain {
						item.Explain = explainJSON(ex)
					}
				}
				if capture {
					// Fan-out keeps the batch request's id, so every
					// item's funnel line correlates back to one request.
					s.logSlow(r, "/v1/search/batch", ex, map[string]any{"batch_index": validAt[qi]})
				}
			}
		}
	}
	resp := batchSearchResponse{Results: results}
	if req.Explain {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.finish(w, key, resp)
}

type discoverRequest struct {
	Sets []SetJSON `json:"sets"`
}

type discoverResponse struct {
	Pairs []PairJSON `json:"pairs"`
}

func (s *Server) handleDiscoverAgainst(w http.ResponseWriter, r *http.Request) {
	var req discoverRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeDecodeErr(w, err)
		return
	}
	if len(req.Sets) == 0 {
		writeError(w, http.StatusBadRequest, "sets must be non-empty")
		return
	}

	key := s.cacheKey("discover-against", -1, "", req.Sets...)
	if s.serveCached(w, key) {
		return
	}

	ctx, cancel := s.queryCtx(r)
	defer cancel()
	if !s.acquire(ctx, w) {
		return
	}
	defer s.release()

	refs := make([]silkmoth.Set, len(req.Sets))
	for i, set := range req.Sets {
		refs[i] = set.toSet()
	}
	var ex silkmoth.Explain
	var opts []silkmoth.QueryOption
	capture := s.captureSlow()
	if capture {
		opts = append(opts, silkmoth.WithExplain(&ex))
	}
	ps, err := s.eng.DiscoverAgainstContext(ctx, refs, opts...)
	if err != nil {
		s.writeCtxErr(w, err)
		return
	}
	if capture {
		s.logSlow(r, "/v1/discover-against", &ex, nil)
	}
	s.finish(w, key, discoverResponse{Pairs: pairsJSON(ps)})
}

type compareRequest struct {
	R SetJSON `json:"r"`
	S SetJSON `json:"s"`
}

type compareResponse struct {
	Relatedness float64 `json:"relatedness"`
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeDecodeErr(w, err)
		return
	}
	if len(req.R.Elements) == 0 || len(req.S.Elements) == 0 {
		writeError(w, http.StatusBadRequest, "r.elements and s.elements must be non-empty")
		return
	}
	if max := s.opts.MaxCompareElements; max > 0 &&
		(len(req.R.Elements) > max || len(req.S.Elements) > max) {
		writeError(w, http.StatusBadRequest, "compare sets are limited to %d elements each", max)
		return
	}

	key := s.cacheKey("compare", -1, "", req.R, req.S)
	if s.serveCached(w, key) {
		return
	}

	ctx, cancel := s.queryCtx(r)
	defer cancel()
	if !s.acquire(ctx, w) {
		return
	}
	defer s.release()
	if err := ctx.Err(); err != nil {
		s.writeCtxErr(w, err)
		return
	}

	rel, err := silkmoth.Compare(req.R.toSet(), req.S.toSet(), s.cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.finish(w, key, compareResponse{Relatedness: rel})
}

type addSetsRequest struct {
	Sets []SetJSON `json:"sets"`
}

type addSetsResponse struct {
	Added      int   `json:"added"`
	Total      int   `json:"total"`
	Generation int64 `json:"generation"`
}

func (s *Server) handleAddSets(w http.ResponseWriter, r *http.Request) {
	var req addSetsRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeDecodeErr(w, err)
		return
	}
	if len(req.Sets) == 0 {
		writeError(w, http.StatusBadRequest, "sets must be non-empty")
		return
	}
	for i, set := range req.Sets {
		if len(set.Elements) == 0 {
			writeError(w, http.StatusBadRequest, "sets[%d].elements must be non-empty", i)
			return
		}
	}

	add := make([]silkmoth.Set, len(req.Sets))
	for i, set := range req.Sets {
		add[i] = set.toSet()
	}
	s.mutMu.Lock()
	if err := s.eng.Add(add); err != nil {
		s.mutMu.Unlock()
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.bumpGeneration()
	resp := addSetsResponse{
		Added:      len(add),
		Total:      s.eng.Len(),
		Generation: atomic.LoadInt64(&s.gen),
	}
	s.mutMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

type snapshotResponse struct {
	// Snapshots counts durable snapshots written since startup (including
	// the one this request triggered); Generation is the mutation token the
	// snapshot captured the collection at.
	Snapshots  int64 `json:"snapshots"`
	Sets       int   `json:"sets"`
	Generation int64 `json:"generation"`
}

// handleSnapshot serves POST /v1/snapshot: it forces a durable snapshot of
// the engine's current state and rotates the write-ahead log. Requires the
// server's engine to have been built with a data directory; 409 otherwise.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	if err := s.eng.Snapshot(); err != nil {
		if errors.Is(err, silkmoth.ErrNoDataDir) {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{
		Snapshots:  s.eng.Stats().Snapshots,
		Sets:       s.eng.Len(),
		Generation: atomic.LoadInt64(&s.gen),
	})
}

// bumpGeneration retires every cached result after a mutation: the bump
// invalidates the keys, the purge frees the memory. Callers hold mutMu.
func (s *Server) bumpGeneration() {
	atomic.AddInt64(&s.gen, 1)
	s.cache.purge()
}

// pathID parses the {id} segment of a /v1/sets/{id} request. On failure it
// writes the 400 response and reports false.
func pathID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "set id must be an integer: %q", r.PathValue("id"))
		return 0, false
	}
	return id, true
}

// ifGeneration parses the optional if_generation query parameter — the
// optimistic-concurrency token for conditional mutations. The second
// result reports whether a condition is present, the third whether the
// request was well-formed (on false the response has been written).
func ifGeneration(w http.ResponseWriter, r *http.Request) (int64, bool, bool) {
	raw := r.URL.Query().Get("if_generation")
	if raw == "" {
		return 0, false, true
	}
	gen, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "if_generation must be an integer: %q", raw)
		return 0, false, false
	}
	return gen, true, true
}

// applyMutation runs one conditional set mutation under the mutation
// mutex: the if_generation token (when conditional) is compared against
// the current generation (mismatch → 409), apply is invoked, ErrNotFound
// maps to 404, and success bumps the generation and purges the cache. It
// reports whether the mutation applied; on false the response has been
// written. DELETE and PUT share it so their concurrency semantics cannot
// drift apart.
func (s *Server) applyMutation(w http.ResponseWriter, conditional bool, ifGen int64, id int, apply func() error) bool {
	if conditional && ifGen != atomic.LoadInt64(&s.gen) {
		writeError(w, http.StatusConflict, "generation is %d, not %d: collection changed since it was read",
			atomic.LoadInt64(&s.gen), ifGen)
		return false
	}
	if err := apply(); err != nil {
		if errors.Is(err, silkmoth.ErrNotFound) {
			writeError(w, http.StatusNotFound, "no set with id %d", id)
			return false
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return false
	}
	s.bumpGeneration()
	return true
}

type deleteSetResponse struct {
	Deleted    int   `json:"deleted"`
	Live       int   `json:"live"`
	Generation int64 `json:"generation"`
}

// handleDeleteSet serves DELETE /v1/sets/{id}: the set is tombstoned out
// of every future query and the result cache is invalidated. With
// ?if_generation=G the delete only applies while the mutation generation
// is still G; a concurrent mutation in between yields 409 and no change.
func (s *Server) handleDeleteSet(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	ifGen, conditional, ok := ifGeneration(w, r)
	if !ok {
		return
	}
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	if !s.applyMutation(w, conditional, ifGen, id, func() error { return s.eng.Delete(id) }) {
		return
	}
	writeJSON(w, http.StatusOK, deleteSetResponse{
		Deleted:    id,
		Live:       s.eng.Len(),
		Generation: atomic.LoadInt64(&s.gen),
	})
}

type updateSetRequest struct {
	Set SetJSON `json:"set"`
	// IfGeneration, when present, makes the update conditional on the
	// mutation generation (same token /v1/stats reports); a mismatch
	// yields 409 and no change. The if_generation query parameter is an
	// equivalent alternative.
	IfGeneration *int64 `json:"if_generation,omitempty"`
}

type updateSetResponse struct {
	ID         int   `json:"id"`
	Replaced   int   `json:"replaced"`
	Live       int   `json:"live"`
	Generation int64 `json:"generation"`
}

// handleUpdateSet serves PUT /v1/sets/{id}: the set is atomically replaced
// by the request body's version, which gets a fresh id (returned); the old
// id is tombstoned and never reused.
func (s *Server) handleUpdateSet(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	qGen, qConditional, ok := ifGeneration(w, r)
	if !ok {
		return
	}
	var req updateSetRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeDecodeErr(w, err)
		return
	}
	if len(req.Set.Elements) == 0 {
		writeError(w, http.StatusBadRequest, "set.elements must be non-empty")
		return
	}
	ifGen, conditional := qGen, qConditional
	if req.IfGeneration != nil {
		ifGen, conditional = *req.IfGeneration, true
	}
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	var newID int
	apply := func() (err error) {
		newID, err = s.eng.Update(id, req.Set.toSet())
		return err
	}
	if !s.applyMutation(w, conditional, ifGen, id, apply) {
		return
	}
	writeJSON(w, http.StatusOK, updateSetResponse{
		ID:         newID,
		Replaced:   id,
		Live:       s.eng.Len(),
		Generation: atomic.LoadInt64(&s.gen),
	})
}

type statsResponse struct {
	// Sets is the live set count; Tombstones counts deleted sets whose
	// postings await compaction. Generation is the mutation counter
	// conditional mutations (if_generation) compare against.
	Sets       int    `json:"sets"`
	Tombstones int    `json:"tombstones"`
	Generation int64  `json:"generation"`
	Shards     int    `json:"shards"`
	Metric     string `json:"metric"`
	Similarity string `json:"similarity"`
	// ConfiguredScheme is the engine's signature scheme by name ("auto"
	// means per-query cost-based selection; individual queries may also
	// pin a scheme per request).
	ConfiguredScheme string  `json:"scheme"`
	Delta            float64 `json:"delta"`
	Alpha            float64 `json:"alpha"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Engine           struct {
		SearchPasses int64 `json:"search_passes"`
		FullScans    int64 `json:"full_scans"`
		SigTokens    int64 `json:"sig_tokens"`
		Candidates   int64 `json:"candidates"`
		AfterCheck   int64 `json:"after_check"`
		CheckPruned  int64 `json:"check_pruned"`
		AfterNN      int64 `json:"after_nn"`
		NNPruned     int64 `json:"nn_pruned"`
		Verified     int64 `json:"verified"`
		Compactions  int64 `json:"compactions"`
		// Scheme counts signatured passes by the concrete signature
		// scheme that probed the index; with -scheme auto it exposes
		// the per-query cost-based selection.
		Scheme struct {
			Weighted       int64 `json:"weighted"`
			Skyline        int64 `json:"skyline"`
			Dichotomy      int64 `json:"dichotomy"`
			CombUnweighted int64 `json:"combunweighted"`
		} `json:"scheme"`
	} `json:"engine"`
	Cache struct {
		Entries int   `json:"entries"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
	} `json:"cache"`
	// Storage reports how the inverted index's posting lists are held:
	// materialized on the heap (compressed false) or as adaptive compressed
	// containers decoded lazily through a bounded cache (compressed true).
	Storage struct {
		Compressed bool `json:"compressed"`
		// Postings is the logical posting count; HeapBytes / EncodedBytes /
		// ResidentBytes are materialized, compressed-container, and
		// decode-cache storage respectively. Postings*8/EncodedBytes is the
		// compression ratio when compressed.
		Postings      int   `json:"postings"`
		HeapBytes     int64 `json:"heap_bytes"`
		EncodedBytes  int64 `json:"encoded_bytes"`
		ResidentBytes int64 `json:"resident_bytes"`
		CacheHits     int64 `json:"cache_hits"`
		CacheMisses   int64 `json:"cache_misses"`
		DecodeErrors  int64 `json:"decode_errors"`
		// SnapshotMapped reports a zero-copy load: container bytes alias
		// the memory-mapped snapshot and page in from disk on demand.
		SnapshotMapped bool `json:"snapshot_mapped"`
	} `json:"storage"`
	// Durability reports the snapshot/WAL layer; all-zero (and enabled
	// false) on an engine without a data directory.
	Durability struct {
		Enabled bool `json:"enabled"`
		// Snapshots counts durable snapshots written since startup;
		// WALRecords counts fsync'd mutation records appended since
		// startup (cumulative across snapshot rotations).
		Snapshots  int64 `json:"snapshots"`
		WALRecords int64 `json:"wal_records"`
		// RecoveredSnapshot and WALReplayed describe what startup found:
		// whether a snapshot was loaded, and how many logged mutations
		// were replayed over it. WALTornTail reports a torn (partially
		// written) final record discarded during replay — expected after
		// a crash mid-append, alarming otherwise.
		RecoveredSnapshot bool `json:"recovered_snapshot"`
		WALReplayed       int  `json:"wal_replayed"`
		WALTornTail       bool `json:"wal_torn_tail"`
	} `json:"durability"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	var resp statsResponse
	resp.Sets = st.Live
	resp.Tombstones = st.Tombstones
	resp.Generation = atomic.LoadInt64(&s.gen)
	resp.Shards = s.eng.Shards()
	resp.Metric = s.cfg.Metric.String()
	resp.Similarity = s.cfg.Similarity.String()
	resp.ConfiguredScheme = s.cfg.Scheme.String()
	resp.Delta = s.cfg.Delta
	resp.Alpha = s.cfg.Alpha
	resp.UptimeSeconds = s.met.uptime().Seconds()
	resp.Engine.SearchPasses = st.SearchPasses
	resp.Engine.FullScans = st.FullScans
	resp.Engine.SigTokens = st.SigTokens
	resp.Engine.Candidates = st.Candidates
	resp.Engine.AfterCheck = st.AfterCheck
	resp.Engine.CheckPruned = st.CheckPruned
	resp.Engine.AfterNN = st.AfterNN
	resp.Engine.NNPruned = st.NNPruned
	resp.Engine.Verified = st.Verified
	resp.Engine.Compactions = st.Compactions
	resp.Engine.Scheme.Weighted = st.SchemeWeighted
	resp.Engine.Scheme.Skyline = st.SchemeSkyline
	resp.Engine.Scheme.Dichotomy = st.SchemeDichotomy
	resp.Engine.Scheme.CombUnweighted = st.SchemeCombUnweighted
	resp.Cache.Entries = s.cache.len()
	resp.Cache.Hits = s.met.hits()
	resp.Cache.Misses = s.met.misses()
	resp.Storage.Compressed = st.CompressedPostings
	resp.Storage.Postings = st.Postings
	resp.Storage.HeapBytes = st.PostingHeapBytes
	resp.Storage.EncodedBytes = st.PostingEncodedBytes
	resp.Storage.ResidentBytes = st.PostingResidentBytes
	resp.Storage.CacheHits = st.PostingCacheHits
	resp.Storage.CacheMisses = st.PostingCacheMisses
	resp.Storage.DecodeErrors = st.PostingDecodeErrors
	resp.Storage.SnapshotMapped = st.SnapshotMapped
	resp.Durability.Enabled = s.cfg.DataDir != ""
	resp.Durability.Snapshots = st.Snapshots
	resp.Durability.WALRecords = st.WALRecords
	resp.Durability.RecoveredSnapshot = st.RecoveredSnapshot
	resp.Durability.WALReplayed = st.WALReplayed
	resp.Durability.WALTornTail = st.WALTornTail
	writeJSON(w, http.StatusOK, resp)
}

type versionResponse struct {
	Version   string `json:"version"`
	GoVersion string `json:"go"`
	Revision  string `json:"revision,omitempty"`
}

// handleVersion serves GET /v1/version from the binary's embedded build
// metadata (module version, Go toolchain, VCS revision when stamped).
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	bi := obs.ReadBuildInfo()
	writeJSON(w, http.StatusOK, versionResponse{
		Version:   bi.Version,
		GoVersion: bi.GoVersion,
		Revision:  bi.Revision,
	})
}

type healthResponse struct {
	Status string `json:"status"`
	Sets   int    `json:"sets"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Sets: s.eng.Len()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w, func(out io.Writer) {
		st := s.eng.Stats()
		fmt.Fprintf(out, "# HELP silkmothd_collection_sets Live sets currently indexed.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_collection_sets gauge\n")
		fmt.Fprintf(out, "silkmothd_collection_sets %d\n", st.Live)
		fmt.Fprintf(out, "# HELP silkmothd_collection_tombstones Deleted sets whose postings await compaction.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_collection_tombstones gauge\n")
		fmt.Fprintf(out, "silkmothd_collection_tombstones %d\n", st.Tombstones)
		fmt.Fprintf(out, "# HELP silkmothd_engine_compactions_total Compaction passes run by the engine.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_engine_compactions_total counter\n")
		fmt.Fprintf(out, "silkmothd_engine_compactions_total %d\n", st.Compactions)
		fmt.Fprintf(out, "# HELP silkmothd_mutation_generation Mutations applied to the collection since startup.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_mutation_generation counter\n")
		fmt.Fprintf(out, "silkmothd_mutation_generation %d\n", atomic.LoadInt64(&s.gen))
		fmt.Fprintf(out, "# HELP silkmothd_engine_shards Shards the collection is partitioned into.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_engine_shards gauge\n")
		fmt.Fprintf(out, "silkmothd_engine_shards %d\n", s.eng.Shards())
		fmt.Fprintf(out, "# HELP silkmothd_engine_search_passes_total Search passes run by the engine.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_engine_search_passes_total counter\n")
		fmt.Fprintf(out, "silkmothd_engine_search_passes_total %d\n", st.SearchPasses)
		fmt.Fprintf(out, "# HELP silkmothd_engine_full_scans_total Signatureless full-scan passes run by the engine.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_engine_full_scans_total counter\n")
		fmt.Fprintf(out, "silkmothd_engine_full_scans_total %d\n", st.FullScans)
		fmt.Fprintf(out, "# HELP silkmothd_engine_signature_tokens_total Signature tokens generated across passes.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_engine_signature_tokens_total counter\n")
		fmt.Fprintf(out, "silkmothd_engine_signature_tokens_total %d\n", st.SigTokens)
		fmt.Fprintf(out, "# HELP silkmothd_engine_candidates_total Candidate sets matched by signature tokens before refinement.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_engine_candidates_total counter\n")
		fmt.Fprintf(out, "silkmothd_engine_candidates_total %d\n", st.Candidates)
		fmt.Fprintf(out, "# HELP silkmothd_engine_check_pruned_total Candidates rejected by the check filter.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_engine_check_pruned_total counter\n")
		fmt.Fprintf(out, "silkmothd_engine_check_pruned_total %d\n", st.CheckPruned)
		fmt.Fprintf(out, "# HELP silkmothd_engine_nn_pruned_total Candidates rejected by the nearest-neighbor filter.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_engine_nn_pruned_total counter\n")
		fmt.Fprintf(out, "silkmothd_engine_nn_pruned_total %d\n", st.NNPruned)
		fmt.Fprintf(out, "# HELP silkmothd_engine_verified_total Maximum-matching verifications run by the engine.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_engine_verified_total counter\n")
		fmt.Fprintf(out, "silkmothd_engine_verified_total %d\n", st.Verified)
		fmt.Fprintf(out, "# HELP silkmothd_engine_scheme_selected_total Signatured passes by concrete signature scheme.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_engine_scheme_selected_total counter\n")
		fmt.Fprintf(out, "silkmothd_engine_scheme_selected_total{scheme=\"weighted\"} %d\n", st.SchemeWeighted)
		fmt.Fprintf(out, "silkmothd_engine_scheme_selected_total{scheme=\"skyline\"} %d\n", st.SchemeSkyline)
		fmt.Fprintf(out, "silkmothd_engine_scheme_selected_total{scheme=\"dichotomy\"} %d\n", st.SchemeDichotomy)
		fmt.Fprintf(out, "silkmothd_engine_scheme_selected_total{scheme=\"combunweighted\"} %d\n", st.SchemeCombUnweighted)
		fmt.Fprintf(out, "# HELP silkmothd_result_cache_entries Entries in the result cache.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_result_cache_entries gauge\n")
		fmt.Fprintf(out, "silkmothd_result_cache_entries %d\n", s.cache.len())
		fmt.Fprintf(out, "# HELP silkmothd_result_cache_evictions_total Cache entries evicted by capacity pressure (purges excluded).\n")
		fmt.Fprintf(out, "# TYPE silkmothd_result_cache_evictions_total counter\n")
		fmt.Fprintf(out, "silkmothd_result_cache_evictions_total %d\n", s.cache.evictions())

		sl := s.eng.StageLatencies()
		obs.WriteHistogramHeader(out, "silkmothd_stage_seconds",
			"Per-pass pipeline stage latency: signature generation, candidate collect/check, NN-refine, exact verification (sampled; see StageSample).")
		for _, st := range []struct {
			name string
			h    silkmoth.LatencyHistogram
		}{
			{"signature", sl.Signature},
			{"collect", sl.Collect},
			{"refine", sl.Refine},
			{"verify", sl.Verify},
		} {
			obs.WriteHistogram(out, "silkmothd_stage_seconds", fmt.Sprintf("stage=%q", st.name), snapFromPublic(st.h))
		}
		if shl := s.eng.ShardLatencies(); shl != nil {
			obs.WriteHistogramHeader(out, "silkmothd_shard_seconds", "Per-shard scatter pass latency.")
			for i, h := range shl {
				obs.WriteHistogram(out, "silkmothd_shard_seconds", fmt.Sprintf("shard=\"%d\"", i), snapFromPublic(h))
			}
		}
		fmt.Fprintf(out, "# HELP silkmothd_shard_stragglers_total Scatters whose slowest shard exceeded twice the median shard time.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_shard_stragglers_total counter\n")
		fmt.Fprintf(out, "silkmothd_shard_stragglers_total %d\n", st.Stragglers)

		fmt.Fprintf(out, "# HELP silkmothd_posting_storage_compressed Whether the inverted index stores posting lists as compressed containers.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_posting_storage_compressed gauge\n")
		fmt.Fprintf(out, "silkmothd_posting_storage_compressed %d\n", b2i(st.CompressedPostings))
		fmt.Fprintf(out, "# HELP silkmothd_posting_storage_bytes Posting storage by form: heap-materialized lists, encoded container bytes, decode-cache resident bytes.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_posting_storage_bytes gauge\n")
		fmt.Fprintf(out, "silkmothd_posting_storage_bytes{form=\"heap\"} %d\n", st.PostingHeapBytes)
		fmt.Fprintf(out, "silkmothd_posting_storage_bytes{form=\"encoded\"} %d\n", st.PostingEncodedBytes)
		fmt.Fprintf(out, "silkmothd_posting_storage_bytes{form=\"resident\"} %d\n", st.PostingResidentBytes)
		fmt.Fprintf(out, "# HELP silkmothd_posting_cache_probes_total Decode-cache probes of compressed posting lists by outcome.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_posting_cache_probes_total counter\n")
		fmt.Fprintf(out, "silkmothd_posting_cache_probes_total{outcome=\"hit\"} %d\n", st.PostingCacheHits)
		fmt.Fprintf(out, "silkmothd_posting_cache_probes_total{outcome=\"miss\"} %d\n", st.PostingCacheMisses)
		fmt.Fprintf(out, "# HELP silkmothd_posting_decode_errors_total Container decode failures (non-zero only with a corrupted snapshot).\n")
		fmt.Fprintf(out, "# TYPE silkmothd_posting_decode_errors_total counter\n")
		fmt.Fprintf(out, "silkmothd_posting_decode_errors_total %d\n", st.PostingDecodeErrors)
		fmt.Fprintf(out, "# HELP silkmothd_snapshot_mapped Whether the index's containers alias a memory-mapped snapshot (zero-copy load).\n")
		fmt.Fprintf(out, "# TYPE silkmothd_snapshot_mapped gauge\n")
		fmt.Fprintf(out, "silkmothd_snapshot_mapped %d\n", b2i(st.SnapshotMapped))

		fmt.Fprintf(out, "# HELP silkmothd_snapshots_total Durable snapshots written since startup.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_snapshots_total counter\n")
		fmt.Fprintf(out, "silkmothd_snapshots_total %d\n", st.Snapshots)
		fmt.Fprintf(out, "# HELP silkmothd_wal_appends_total Mutation records appended (fsync'd) to the write-ahead log since startup.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_wal_appends_total counter\n")
		fmt.Fprintf(out, "silkmothd_wal_appends_total %d\n", st.WALRecords)
		fmt.Fprintf(out, "# HELP silkmothd_wal_replayed_records WAL records replayed over the recovered snapshot at startup.\n")
		fmt.Fprintf(out, "# TYPE silkmothd_wal_replayed_records gauge\n")
		fmt.Fprintf(out, "silkmothd_wal_replayed_records %d\n", st.WALReplayed)
		fmt.Fprintf(out, "# HELP silkmothd_recovered_snapshot Whether startup recovered a durable snapshot (1) or bootstrapped fresh (0).\n")
		fmt.Fprintf(out, "# TYPE silkmothd_recovered_snapshot gauge\n")
		fmt.Fprintf(out, "silkmothd_recovered_snapshot %d\n", b2i(st.RecoveredSnapshot))
		fmt.Fprintf(out, "# HELP silkmothd_wal_torn_tail Whether startup discarded a torn final WAL record (expected after a crash mid-append).\n")
		fmt.Fprintf(out, "# TYPE silkmothd_wal_torn_tail gauge\n")
		fmt.Fprintf(out, "silkmothd_wal_torn_tail %d\n", b2i(st.WALTornTail))

		obs.WriteRuntimeMetrics(out)
		obs.WriteBuildInfoMetric(out)
	})
}

// b2i renders a boolean as a 0/1 Prometheus gauge value.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// snapFromPublic rebuilds an obs snapshot from the engine's public
// histogram shape so the shared text renderer can emit it. The public
// bounds are the obs bounds, so the copy is index-aligned by construction.
func snapFromPublic(h silkmoth.LatencyHistogram) obs.HistogramSnapshot {
	var s obs.HistogramSnapshot
	for i := 0; i < len(h.Counts) && i < len(s.Counts); i++ {
		s.Counts[i] = h.Counts[i]
	}
	s.Count = h.Count
	s.SumNanos = h.Sum.Nanoseconds()
	return s
}
