package dataset

import (
	"strings"
	"testing"

	"silkmoth/internal/tokens"
)

func TestBuildWord(t *testing.T) {
	d := tokens.NewDictionary()
	c := BuildWord(d, []RawSet{
		{Name: "A", Elements: []string{"77 Mass Ave", "5th St"}},
		{Name: "B", Elements: []string{"77 5th St"}},
	})
	if len(c.Sets) != 2 {
		t.Fatalf("sets = %d, want 2", len(c.Sets))
	}
	if c.Mode != ModeWord || c.Q != 0 {
		t.Errorf("mode/q = %v/%d", c.Mode, c.Q)
	}
	a := c.Sets[0]
	if a.Name != "A" || a.Size() != 2 {
		t.Fatalf("set A malformed: %+v", a)
	}
	e := a.Elements[0]
	if len(e.Tokens) != 3 || e.Length != 3 || e.Raw != "77 Mass Ave" {
		t.Errorf("element = %+v", e)
	}
	// Shared dictionary: "77" in both sets should have the same id.
	id77, ok := d.Lookup("77")
	if !ok {
		t.Fatal("77 not interned")
	}
	found := false
	for _, id := range c.Sets[1].Elements[0].Tokens {
		if id == id77 {
			found = true
		}
	}
	if !found {
		t.Error("cross-set token sharing broken")
	}
	// Tokens must be sorted and unique.
	for i := 1; i < len(e.Tokens); i++ {
		if e.Tokens[i-1] >= e.Tokens[i] {
			t.Error("tokens not sorted-unique")
		}
	}
}

func TestBuildWordDuplicateWords(t *testing.T) {
	d := tokens.NewDictionary()
	c := BuildWord(d, []RawSet{{Name: "A", Elements: []string{"go go go"}}})
	e := c.Sets[0].Elements[0]
	if len(e.Tokens) != 1 || e.Length != 1 {
		t.Errorf("duplicate words should dedupe: %+v", e)
	}
}

func TestBuildQGram(t *testing.T) {
	d := tokens.NewDictionary()
	c := BuildQGram(d, []RawSet{{Name: "A", Elements: []string{"Database"}}}, 3)
	if c.Mode != ModeQGram || c.Q != 3 {
		t.Fatalf("mode/q = %v/%d", c.Mode, c.Q)
	}
	e := c.Sets[0].Elements[0]
	if e.Length != len("Database") {
		t.Errorf("Length = %d, want rune length %d", e.Length, len("Database"))
	}
	// 8 runes → 8 grams (some may collide after dedup) and ⌈8/3⌉ = 3 chunks.
	if len(e.Chunks) != 3 {
		t.Errorf("chunks = %d, want 3", len(e.Chunks))
	}
	if len(e.Tokens) == 0 || len(e.Tokens) > 8 {
		t.Errorf("token count = %d", len(e.Tokens))
	}
	// Every chunk id must also be interned (chunks are q-length strings too).
	for _, ch := range e.Chunks {
		if int(ch) >= d.Size() {
			t.Error("chunk id out of dictionary range")
		}
	}
}

func TestBuildQGramEmptyElement(t *testing.T) {
	d := tokens.NewDictionary()
	c := BuildQGram(d, []RawSet{{Name: "A", Elements: []string{""}}}, 3)
	e := c.Sets[0].Elements[0]
	if len(e.Tokens) != 0 || len(e.Chunks) != 0 || e.Length != 0 {
		t.Errorf("empty element should have no tokens: %+v", e)
	}
}

func TestBuildDispatch(t *testing.T) {
	d := tokens.NewDictionary()
	cw := Build(d, []RawSet{{Elements: []string{"a b"}}}, ModeWord, 0)
	if cw.Mode != ModeWord {
		t.Error("Build(ModeWord) dispatched wrong")
	}
	cq := Build(tokens.NewDictionary(), []RawSet{{Elements: []string{"ab"}}}, ModeQGram, 2)
	if cq.Mode != ModeQGram {
		t.Error("Build(ModeQGram) dispatched wrong")
	}
}

func TestElementKeyWordMode(t *testing.T) {
	d := tokens.NewDictionary()
	c := BuildWord(d, []RawSet{{Elements: []string{"x y", "y x", "x z", ""}}})
	es := c.Sets[0].Elements
	k0 := ElementKey(&es[0], ModeWord)
	k1 := ElementKey(&es[1], ModeWord)
	k2 := ElementKey(&es[2], ModeWord)
	k3 := ElementKey(&es[3], ModeWord)
	if k0 != k1 {
		t.Error("token-set-equal elements must share a key")
	}
	if k0 == k2 {
		t.Error("different elements must not share a key")
	}
	if k3 != "" {
		t.Error("empty element must have the empty key")
	}
}

func TestElementKeyQGramMode(t *testing.T) {
	e1 := Element{Raw: "abc"}
	e2 := Element{Raw: "abc"}
	e3 := Element{Raw: "abd"}
	if ElementKey(&e1, ModeQGram) != ElementKey(&e2, ModeQGram) {
		t.Error("equal strings must share a key")
	}
	if ElementKey(&e1, ModeQGram) == ElementKey(&e3, ModeQGram) {
		t.Error("different strings must not share a key")
	}
	empty := Element{Raw: ""}
	if ElementKey(&empty, ModeQGram) != "" {
		t.Error("empty string must have the empty key")
	}
}

func TestComputeStats(t *testing.T) {
	d := tokens.NewDictionary()
	c := BuildWord(d, []RawSet{
		{Elements: []string{"a b c", "d"}},
		{Elements: []string{"a b", "c d", "e f", "g"}},
	})
	st := ComputeStats(c)
	if st.NumSets != 2 || st.NumElements != 6 {
		t.Errorf("stats = %+v", st)
	}
	if st.ElemsPerSet != 3 {
		t.Errorf("ElemsPerSet = %v, want 3", st.ElemsPerSet)
	}
	// Total tokens = 3+1+2+2+2+1 = 11 over 6 elements.
	if st.TokensPerElem < 1.8 || st.TokensPerElem > 1.9 {
		t.Errorf("TokensPerElem = %v", st.TokensPerElem)
	}
	if st.MaxSetSize != 4 || st.MinSetSize != 2 {
		t.Errorf("set size range = [%d,%d]", st.MinSetSize, st.MaxSetSize)
	}
	if st.DistinctTokens != 7 {
		t.Errorf("DistinctTokens = %d, want 7", st.DistinctTokens)
	}
	if !strings.Contains(st.String(), "sets=2") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	c := &Collection{Dict: tokens.NewDictionary()}
	st := ComputeStats(c)
	if st.NumSets != 0 || st.NumElements != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestTokenModeString(t *testing.T) {
	if ModeWord.String() != "word" || ModeQGram.String() != "qgram" {
		t.Error("TokenMode.String broken")
	}
	if TokenMode(99).String() == "" {
		t.Error("unknown mode should still render")
	}
}
