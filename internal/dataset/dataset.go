// Package dataset defines SilkMoth's tokenized data model: collections of
// sets, where each set is a list of elements and each element is a bag of
// tokens (paper §2). It also provides builders that turn raw strings into
// tokenized collections, plain-text file I/O, and summary statistics.
package dataset

import (
	"fmt"

	"silkmoth/internal/tokens"
)

// TokenMode says how raw element strings were turned into index tokens.
type TokenMode int

const (
	// ModeWord tokenizes elements into whitespace-delimited words
	// (Jaccard similarity, paper §3).
	ModeWord TokenMode = iota
	// ModeQGram tokenizes elements into q-grams for the index and
	// q-chunks for signatures (edit similarity, paper §7).
	ModeQGram
)

func (m TokenMode) String() string {
	switch m {
	case ModeWord:
		return "word"
	case ModeQGram:
		return "qgram"
	default:
		return fmt.Sprintf("TokenMode(%d)", int(m))
	}
}

// Element is one tokenized element of a set: a row value, an attribute, or a
// word, depending on the application.
type Element struct {
	// Raw is the original element text, used by edit similarity and for
	// reporting.
	Raw string
	// Tokens are the sorted, deduplicated ids of the element's index
	// tokens: words under ModeWord, q-grams under ModeQGram.
	Tokens []tokens.ID
	// Chunks are the ids of the element's q-chunks, set only under
	// ModeQGram; signatures for edit similarity are chosen from chunks
	// (paper §7.1). Chunks may repeat and are not sorted.
	Chunks []tokens.ID
	// Length is the size the similarity bounds divide by: the number of
	// distinct word tokens under ModeWord, the rune length of Raw under
	// ModeQGram.
	Length int
	// Key is the element's exact content key interned into the shared
	// dictionary's key space (Dict.Keys()): two elements over the same
	// dictionary are identical iff their Keys are equal and not NoKey.
	// The §5.3 verification reduction compares these integers instead of
	// materializing ElementKey strings per pair. NoKey marks elements
	// that can never be reduced (no tokens / empty raw).
	Key tokens.ID
}

// NoKey is the Element.Key of a non-reducible element.
const NoKey = tokens.ID(-1)

// internKey computes and interns e's exact content key, returning NoKey for
// non-reducible (empty) elements. Indexed collections intern (their keys
// are retained/released through the engine lifecycle); query collections
// must use lookupKey instead.
func internKey(dict *tokens.Dictionary, e *Element, mode TokenMode) tokens.ID {
	k := ElementKey(e, mode)
	if k == "" {
		return NoKey
	}
	return dict.Keys().Intern(k)
}

// internKeyBuf is internKey staged through a caller-owned scratch buffer:
// the word-mode key bytes are built in buf (returned for reuse) and
// interned via InternBytes, so a loader re-deriving keys for a whole
// collection pays one string materialization per element instead of a
// buffer plus a string.
func internKeyBuf(dict *tokens.Dictionary, e *Element, mode TokenMode, buf []byte) (tokens.ID, []byte) {
	if mode == ModeQGram {
		if e.Raw == "" {
			return NoKey, buf
		}
		return dict.Keys().Intern(e.Raw), buf
	}
	if len(e.Tokens) == 0 {
		return NoKey, buf
	}
	buf = buf[:0]
	for _, id := range e.Tokens {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return dict.Keys().InternBytes(buf), buf
}

// lookupKey resolves e's content key without interning: a query element
// whose key is not already in the dictionary cannot be identical to any
// indexed element, so NoKey (never reduced, similarity computed exactly) is
// the correct — and leak-free — answer. Interning here instead would grow
// the key table by one entry per distinct query element for the life of the
// process.
func lookupKey(dict *tokens.Dictionary, e *Element, mode TokenMode) tokens.ID {
	k := ElementKey(e, mode)
	if k == "" {
		return NoKey
	}
	if id, ok := dict.Keys().Lookup(k); ok {
		return id
	}
	return NoKey
}

// Set is an ordered list of elements with an external name.
type Set struct {
	Name     string
	Elements []Element
}

// Size returns the number of elements in the set.
func (s *Set) Size() int { return len(s.Elements) }

// Collection is a tokenized list of sets sharing one dictionary.
type Collection struct {
	Sets []Set
	Dict *tokens.Dictionary
	Mode TokenMode
	// Q is the gram length used under ModeQGram, 0 under ModeWord.
	Q int
}

// RawSet is an untokenized set: a name plus raw element strings.
type RawSet struct {
	Name     string
	Elements []string
}

// keyFunc resolves an element's content key: internKey for indexed
// collections, lookupKey for query collections.
type keyFunc func(*tokens.Dictionary, *Element, TokenMode) tokens.ID

// BuildWord tokenizes raw sets by whitespace words for Jaccard similarity.
// All sets share the dictionary dict; pass a fresh dictionary for a new
// corpus, or the dictionary of an existing collection to tokenize query sets
// against it (prefer BuildQuery for query sets — it keeps the key table
// from growing).
func BuildWord(dict *tokens.Dictionary, raws []RawSet) *Collection {
	return buildWord(dict, raws, internKey)
}

func buildWord(dict *tokens.Dictionary, raws []RawSet, key keyFunc) *Collection {
	c := &Collection{Dict: dict, Mode: ModeWord}
	c.Sets = make([]Set, len(raws))
	for i, rs := range raws {
		elems := make([]Element, len(rs.Elements))
		for j, e := range rs.Elements {
			ids := tokens.SortUnique(tokens.InternAll(dict, tokens.Words(e)))
			elems[j] = Element{
				Raw:    e,
				Tokens: ids,
				Length: len(ids),
			}
			elems[j].Key = key(dict, &elems[j], ModeWord)
		}
		c.Sets[i] = Set{Name: rs.Name, Elements: elems}
	}
	return c
}

// BuildQGram tokenizes raw sets into q-grams (index tokens) and q-chunks
// (signature tokens) for edit similarity. q must be positive.
func BuildQGram(dict *tokens.Dictionary, raws []RawSet, q int) *Collection {
	return buildQGram(dict, raws, q, internKey)
}

func buildQGram(dict *tokens.Dictionary, raws []RawSet, q int, key keyFunc) *Collection {
	if q <= 0 {
		panic("dataset: BuildQGram requires q > 0")
	}
	c := &Collection{Dict: dict, Mode: ModeQGram, Q: q}
	c.Sets = make([]Set, len(raws))
	for i, rs := range raws {
		elems := make([]Element, len(rs.Elements))
		for j, e := range rs.Elements {
			grams := tokens.SortUnique(tokens.InternAll(dict, tokens.QGrams(e, q)))
			chunks := tokens.InternAll(dict, tokens.QChunks(e, q))
			elems[j] = Element{
				Raw:    e,
				Tokens: grams,
				Chunks: chunks,
				Length: runeLen(e),
			}
			elems[j].Key = key(dict, &elems[j], ModeQGram)
		}
		c.Sets[i] = Set{Name: rs.Name, Elements: elems}
	}
	return c
}

// Build tokenizes raw sets according to mode: BuildWord for ModeWord,
// BuildQGram for ModeQGram.
func Build(dict *tokens.Dictionary, raws []RawSet, mode TokenMode, q int) *Collection {
	if mode == ModeWord {
		return BuildWord(dict, raws)
	}
	return BuildQGram(dict, raws, q)
}

// BuildQuery tokenizes query sets against an existing collection's
// dictionary. It differs from Build in one way: element keys are looked up,
// never interned, so a steady stream of distinct queries cannot grow the
// key table for the life of the process (a key absent from the dictionary
// proves the element identical to nothing indexed, which is exactly what
// NoKey means to the reduction).
func BuildQuery(dict *tokens.Dictionary, raws []RawSet, mode TokenMode, q int) *Collection {
	if mode == ModeWord {
		return buildWord(dict, raws, lookupKey)
	}
	return buildQGram(dict, raws, q, lookupKey)
}

// Append tokenizes raws with c's dictionary and mode and appends the
// resulting sets to c, returning the index of the first appended set.
// Callers holding an inverted index over c must extend it afterwards
// (index.Inverted.AppendSets).
func Append(c *Collection, raws []RawSet) int {
	from := len(c.Sets)
	add := Build(c.Dict, raws, c.Mode, c.Q)
	c.Sets = append(c.Sets, add.Sets...)
	return from
}

func runeLen(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// ElementKey returns the exact content key string for an element under the
// given mode, for the identical-element reduction of paper §5.3. Identical
// elements get equal keys; the empty key marks non-reducible (empty)
// elements. The hot path never calls this per pair: builders intern the
// string once at build time into Element.Key, and verification compares
// those dense ids instead.
func ElementKey(e *Element, mode TokenMode) string {
	if mode == ModeQGram {
		return e.Raw
	}
	if len(e.Tokens) == 0 {
		return ""
	}
	b := make([]byte, 0, len(e.Tokens)*4)
	for _, id := range e.Tokens {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}
