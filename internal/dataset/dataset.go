// Package dataset defines SilkMoth's tokenized data model: collections of
// sets, where each set is a list of elements and each element is a bag of
// tokens (paper §2). It also provides builders that turn raw strings into
// tokenized collections, plain-text file I/O, and summary statistics.
package dataset

import (
	"fmt"

	"silkmoth/internal/tokens"
)

// TokenMode says how raw element strings were turned into index tokens.
type TokenMode int

const (
	// ModeWord tokenizes elements into whitespace-delimited words
	// (Jaccard similarity, paper §3).
	ModeWord TokenMode = iota
	// ModeQGram tokenizes elements into q-grams for the index and
	// q-chunks for signatures (edit similarity, paper §7).
	ModeQGram
)

func (m TokenMode) String() string {
	switch m {
	case ModeWord:
		return "word"
	case ModeQGram:
		return "qgram"
	default:
		return fmt.Sprintf("TokenMode(%d)", int(m))
	}
}

// Element is one tokenized element of a set: a row value, an attribute, or a
// word, depending on the application.
type Element struct {
	// Raw is the original element text, used by edit similarity and for
	// reporting.
	Raw string
	// Tokens are the sorted, deduplicated ids of the element's index
	// tokens: words under ModeWord, q-grams under ModeQGram.
	Tokens []tokens.ID
	// Chunks are the ids of the element's q-chunks, set only under
	// ModeQGram; signatures for edit similarity are chosen from chunks
	// (paper §7.1). Chunks may repeat and are not sorted.
	Chunks []tokens.ID
	// Length is the size the similarity bounds divide by: the number of
	// distinct word tokens under ModeWord, the rune length of Raw under
	// ModeQGram.
	Length int
}

// Set is an ordered list of elements with an external name.
type Set struct {
	Name     string
	Elements []Element
}

// Size returns the number of elements in the set.
func (s *Set) Size() int { return len(s.Elements) }

// Collection is a tokenized list of sets sharing one dictionary.
type Collection struct {
	Sets []Set
	Dict *tokens.Dictionary
	Mode TokenMode
	// Q is the gram length used under ModeQGram, 0 under ModeWord.
	Q int
}

// RawSet is an untokenized set: a name plus raw element strings.
type RawSet struct {
	Name     string
	Elements []string
}

// BuildWord tokenizes raw sets by whitespace words for Jaccard similarity.
// All sets share the dictionary dict; pass a fresh dictionary for a new
// corpus, or the dictionary of an existing collection to tokenize query sets
// against it.
func BuildWord(dict *tokens.Dictionary, raws []RawSet) *Collection {
	c := &Collection{Dict: dict, Mode: ModeWord}
	c.Sets = make([]Set, len(raws))
	for i, rs := range raws {
		elems := make([]Element, len(rs.Elements))
		for j, e := range rs.Elements {
			ids := tokens.SortUnique(tokens.InternAll(dict, tokens.Words(e)))
			elems[j] = Element{
				Raw:    e,
				Tokens: ids,
				Length: len(ids),
			}
		}
		c.Sets[i] = Set{Name: rs.Name, Elements: elems}
	}
	return c
}

// BuildQGram tokenizes raw sets into q-grams (index tokens) and q-chunks
// (signature tokens) for edit similarity. q must be positive.
func BuildQGram(dict *tokens.Dictionary, raws []RawSet, q int) *Collection {
	if q <= 0 {
		panic("dataset: BuildQGram requires q > 0")
	}
	c := &Collection{Dict: dict, Mode: ModeQGram, Q: q}
	c.Sets = make([]Set, len(raws))
	for i, rs := range raws {
		elems := make([]Element, len(rs.Elements))
		for j, e := range rs.Elements {
			grams := tokens.SortUnique(tokens.InternAll(dict, tokens.QGrams(e, q)))
			chunks := tokens.InternAll(dict, tokens.QChunks(e, q))
			elems[j] = Element{
				Raw:    e,
				Tokens: grams,
				Chunks: chunks,
				Length: runeLen(e),
			}
		}
		c.Sets[i] = Set{Name: rs.Name, Elements: elems}
	}
	return c
}

// Build tokenizes raw sets according to mode: BuildWord for ModeWord,
// BuildQGram for ModeQGram.
func Build(dict *tokens.Dictionary, raws []RawSet, mode TokenMode, q int) *Collection {
	if mode == ModeWord {
		return BuildWord(dict, raws)
	}
	return BuildQGram(dict, raws, q)
}

// Append tokenizes raws with c's dictionary and mode and appends the
// resulting sets to c, returning the index of the first appended set.
// Callers holding an inverted index over c must extend it afterwards
// (index.Inverted.AppendSets).
func Append(c *Collection, raws []RawSet) int {
	from := len(c.Sets)
	add := Build(c.Dict, raws, c.Mode, c.Q)
	c.Sets = append(c.Sets, add.Sets...)
	return from
}

func runeLen(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// ElementKey returns an exact content key for an element under the given
// mode, for the identical-element reduction of paper §5.3. Identical
// elements get equal keys; the empty key marks non-reducible (empty)
// elements.
func ElementKey(e *Element, mode TokenMode) string {
	if mode == ModeQGram {
		return e.Raw
	}
	if len(e.Tokens) == 0 {
		return ""
	}
	b := make([]byte, 0, len(e.Tokens)*4)
	for _, id := range e.Tokens {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}
