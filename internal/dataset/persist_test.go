package dataset

import (
	"bytes"
	"reflect"
	"testing"

	"silkmoth/internal/tokens"
)

func TestSaveLoadWordCollection(t *testing.T) {
	dict := tokens.NewDictionary()
	orig := BuildWord(dict, []RawSet{
		{Name: "A", Elements: []string{"77 Mass Ave", "5th St", ""}},
		{Name: "B", Elements: []string{"77 5th St Chicago IL"}},
	})
	var buf bytes.Buffer
	if err := SaveCollection(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != orig.Mode || got.Q != orig.Q {
		t.Errorf("mode/q = %v/%d", got.Mode, got.Q)
	}
	if got.Dict.Size() != orig.Dict.Size() {
		t.Errorf("dict size = %d, want %d", got.Dict.Size(), orig.Dict.Size())
	}
	compareSets(t, got.Sets, orig.Sets)
	// Token ids must resolve to the same strings.
	for i := 0; i < orig.Dict.Size(); i++ {
		if got.Dict.String(tokens.ID(i)) != orig.Dict.String(tokens.ID(i)) {
			t.Fatalf("token %d renamed", i)
		}
	}
}

func TestSaveLoadQGramCollection(t *testing.T) {
	dict := tokens.NewDictionary()
	orig := BuildQGram(dict, []RawSet{
		{Name: "A", Elements: []string{"Database", "Systems"}},
	}, 3)
	var buf bytes.Buffer
	if err := SaveCollection(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Q != 3 || got.Mode != ModeQGram {
		t.Errorf("q/mode = %d/%v", got.Q, got.Mode)
	}
	compareSets(t, got.Sets, orig.Sets)
}

// compareSets compares collections semantically: the decoder leaves empty
// slices nil, which reflect.DeepEqual would flag spuriously.
func compareSets(t *testing.T, got, want []Set) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("set count %d vs %d", len(got), len(want))
	}
	for i := range got {
		g, w := &got[i], &want[i]
		if g.Name != w.Name || len(g.Elements) != len(w.Elements) {
			t.Fatalf("set %d shape differs", i)
		}
		for j := range g.Elements {
			ge, we := &g.Elements[j], &w.Elements[j]
			if ge.Raw != we.Raw || ge.Length != we.Length ||
				!reflect.DeepEqual(append([]tokens.ID{}, ge.Tokens...), append([]tokens.ID{}, we.Tokens...)) ||
				!reflect.DeepEqual(append([]tokens.ID{}, ge.Chunks...), append([]tokens.ID{}, we.Chunks...)) {
				t.Fatalf("set %d element %d differs: %+v vs %+v", i, j, ge, we)
			}
		}
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := LoadCollection(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("corrupt stream should fail")
	}
	if _, err := LoadCollection(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
}

func TestAppend(t *testing.T) {
	dict := tokens.NewDictionary()
	c := BuildWord(dict, []RawSet{{Name: "A", Elements: []string{"x y"}}})
	from := Append(c, []RawSet{
		{Name: "B", Elements: []string{"x z"}},
		{Name: "C", Elements: []string{"fresh words"}},
	})
	if from != 1 || len(c.Sets) != 3 {
		t.Fatalf("from=%d len=%d", from, len(c.Sets))
	}
	// Shared tokens keep their ids; new tokens extend the dictionary.
	idX, ok := dict.Lookup("x")
	if !ok {
		t.Fatal("x missing")
	}
	foundX := false
	for _, id := range c.Sets[1].Elements[0].Tokens {
		if id == idX {
			foundX = true
		}
	}
	if !foundX {
		t.Error("appended set does not share dictionary ids")
	}
	if _, ok := dict.Lookup("fresh"); !ok {
		t.Error("new tokens not interned")
	}
}
