package dataset

import (
	"silkmoth/internal/tokens"
)

// QueryScratch builds query collections out of reusable buffers. It
// produces exactly what BuildQuery produces — the equivalence is pinned by
// TestQueryScratchMatchesBuildQuery — but stages every element's token ids
// in one arena and every token's bytes in tokenizer scratch, so a warmed-up
// scratch tokenizes a query with a handful of allocations instead of
// several per element.
//
// The returned Collection, its Sets, and every Element slice alias the
// scratch's buffers: they are valid only until the next Build on the same
// scratch. Callers must not retain them past the query (the engine's
// result types copy everything they report, so pooling a scratch per
// in-flight query is safe). A QueryScratch is not safe for concurrent use.
type QueryScratch struct {
	tok   tokens.Scratch
	ids   []tokens.ID // arena: all elements' Tokens then Chunks, span-indexed
	key   []byte      // staging for word-mode element keys
	spans []elemSpan
	elems []Element
	sets  []Set
	coll  Collection
}

// elemSpan records one element's slices as arena offsets. Offsets stay
// valid across arena reallocation, so elements materialize only after all
// appends are done.
type elemSpan struct {
	raw            string
	tokOff, tokEnd int
	chOff, chEnd   int
	length         int
}

// Build tokenizes query sets against an existing collection's dictionary,
// like BuildQuery (element keys are looked up, never interned). The result
// is valid until the next Build on this scratch.
//
//silkmoth:hotpath
func (qs *QueryScratch) Build(dict *tokens.Dictionary, raws []RawSet, mode TokenMode, q int) *Collection {
	qs.ids = qs.ids[:0]
	qs.spans = qs.spans[:0]
	total := 0
	for _, rs := range raws {
		total += len(rs.Elements)
	}
	for _, rs := range raws {
		for _, raw := range rs.Elements {
			sp := elemSpan{raw: raw, tokOff: len(qs.ids)}
			if mode == ModeWord {
				qs.ids = qs.tok.AppendWordIDs(qs.ids, dict, raw)
				sub := tokens.SortUnique(qs.ids[sp.tokOff:])
				qs.ids = qs.ids[:sp.tokOff+len(sub)]
				sp.tokEnd = len(qs.ids)
				sp.length = len(sub)
			} else {
				qs.ids = qs.tok.AppendQGramIDs(qs.ids, dict, raw, q)
				sub := tokens.SortUnique(qs.ids[sp.tokOff:])
				qs.ids = qs.ids[:sp.tokOff+len(sub)]
				sp.tokEnd = len(qs.ids)
				sp.chOff = len(qs.ids)
				qs.ids = qs.tok.AppendQChunkIDs(qs.ids, dict, raw, q)
				sp.chEnd = len(qs.ids)
				sp.length = runeLen(raw)
			}
			qs.spans = append(qs.spans, sp)
		}
	}
	// Materialize elements from the spans — only now are arena offsets
	// final. The element and set backings are sized up front so the
	// sub-slices handed out below never move.
	if cap(qs.elems) < total {
		qs.elems = make([]Element, total)
	} else {
		qs.elems = qs.elems[:total]
	}
	if cap(qs.sets) < len(raws) {
		qs.sets = make([]Set, len(raws))
	} else {
		qs.sets = qs.sets[:len(raws)]
	}
	ei := 0
	for si, rs := range raws {
		first := ei
		for range rs.Elements {
			sp := &qs.spans[ei]
			el := &qs.elems[ei]
			*el = Element{
				Raw:    sp.raw,
				Tokens: qs.ids[sp.tokOff:sp.tokEnd:sp.tokEnd],
				Length: sp.length,
			}
			if mode == ModeQGram {
				el.Chunks = qs.ids[sp.chOff:sp.chEnd:sp.chEnd]
			}
			el.Key = qs.lookupKey(dict, el, mode)
			ei++
		}
		qs.sets[si] = Set{Name: rs.Name, Elements: qs.elems[first:ei:ei]}
	}
	cq := q
	if mode == ModeWord {
		cq = 0
	}
	qs.coll = Collection{Sets: qs.sets, Dict: dict, Mode: mode, Q: cq}
	return &qs.coll
}

// lookupKey is dataset.lookupKey staged through the scratch key buffer:
// same NoKey semantics, but the word-mode key bytes never materialize a
// string (Dictionary.LookupBytes).
//
//silkmoth:hotpath
func (qs *QueryScratch) lookupKey(dict *tokens.Dictionary, e *Element, mode TokenMode) tokens.ID {
	if mode == ModeQGram {
		if e.Raw == "" {
			return NoKey
		}
		if id, ok := dict.Keys().Lookup(e.Raw); ok {
			return id
		}
		return NoKey
	}
	if len(e.Tokens) == 0 {
		return NoKey
	}
	b := qs.key[:0]
	for _, id := range e.Tokens {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	qs.key = b
	if id, ok := dict.Keys().LookupBytes(b); ok {
		return id
	}
	return NoKey
}
