package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// The plain-text set file format: one set per line, elements separated by
// " | " (a pipe character surrounded by optional whitespace). An optional
// "name:" prefix before the first element names the set. Blank lines and
// lines starting with '#' are skipped.
//
//	addresses1: 77 Mass Ave Boston MA | 5th St 02115 Seattle WA
//	# comment
//	77 Fifth Street Chicago IL | One Kendall Square Cambridge MA

// ReadRawSets parses the set file format from r. Sets without an explicit
// name get "set<line>" names.
func ReadRawSets(r io.Reader) ([]RawSet, error) {
	var out []RawSet
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := fmt.Sprintf("set%d", lineNo)
		if i := strings.Index(line, ":"); i >= 0 && !strings.Contains(line[:i], "|") {
			candidate := strings.TrimSpace(line[:i])
			if candidate != "" && !strings.ContainsAny(candidate, " \t") {
				name = candidate
				line = strings.TrimSpace(line[i+1:])
			}
		}
		var elems []string
		for _, part := range strings.Split(line, "|") {
			part = strings.TrimSpace(part)
			if part != "" {
				elems = append(elems, part)
			}
		}
		out = append(out, RawSet{Name: name, Elements: elems})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading sets: %w", err)
	}
	return out, nil
}

// ReadRawSetsFile reads the set file format from path.
func ReadRawSetsFile(path string) ([]RawSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRawSets(f)
}

// WriteRawSets writes sets in the set file format understood by ReadRawSets.
func WriteRawSets(w io.Writer, sets []RawSet) error {
	bw := bufio.NewWriter(w)
	for _, s := range sets {
		if s.Name != "" {
			if _, err := fmt.Fprintf(bw, "%s: ", s.Name); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(strings.Join(s.Elements, " | ")); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteRawSetsFile writes sets to path in the set file format.
func WriteRawSetsFile(path string, sets []RawSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteRawSets(f, sets); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSONSets parses a JSON array of sets from r:
//
//	[{"name": "addresses", "elements": ["77 Mass Ave Boston MA", "..."]}, ...]
//
// Sets without a name get "set<position>" names.
func ReadJSONSets(r io.Reader) ([]RawSet, error) {
	var raw []struct {
		Name     string   `json:"name"`
		Elements []string `json:"elements"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("dataset: reading json sets: %w", err)
	}
	out := make([]RawSet, len(raw))
	for i, s := range raw {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("set%d", i+1)
		}
		out[i] = RawSet{Name: name, Elements: s.Elements}
	}
	return out, nil
}

// ReadJSONSetsFile reads a JSON set array from path.
func ReadJSONSetsFile(path string) ([]RawSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONSets(f)
}

// ReadCSVColumns reads a simple comma-separated file and returns one RawSet
// per column, whose elements are the column's distinct non-empty values.
// The first row is treated as a header naming the columns. This mirrors the
// paper's inclusion-dependency application, where each table column is a
// set. Quoting is not supported; fields are split on commas.
func ReadCSVColumns(r io.Reader, tableName string) ([]RawSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var header []string
	var cols [][]string
	var seen []map[string]bool
	for sc.Scan() {
		fields := strings.Split(sc.Text(), ",")
		if header == nil {
			header = fields
			cols = make([][]string, len(fields))
			seen = make([]map[string]bool, len(fields))
			for i := range seen {
				seen[i] = make(map[string]bool)
			}
			continue
		}
		for i, f := range fields {
			if i >= len(cols) {
				break
			}
			f = strings.TrimSpace(f)
			if f == "" || seen[i][f] {
				continue
			}
			seen[i][f] = true
			cols[i] = append(cols[i], f)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	out := make([]RawSet, 0, len(cols))
	for i, col := range cols {
		name := strings.TrimSpace(header[i])
		if name == "" {
			name = fmt.Sprintf("col%d", i)
		}
		if tableName != "" {
			name = tableName + "." + name
		}
		out = append(out, RawSet{Name: name, Elements: col})
	}
	return out, nil
}
