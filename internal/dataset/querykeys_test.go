package dataset

import (
	"testing"

	"silkmoth/internal/tokens"
)

// TestBuildQueryKeysDoNotGrowTable pins the leak-free property of query
// tokenization: BuildQuery resolves element keys by lookup, so serving any
// number of distinct queries leaves the key table exactly as the indexed
// collection built it, while still matching identical elements to their
// indexed key ids.
func TestBuildQueryKeysDoNotGrowTable(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := BuildWord(dict, []RawSet{
		{Name: "a", Elements: []string{"red bicycle", "blue kettle"}},
	})
	indexedKeys := dict.Keys().Size()
	if indexedKeys == 0 {
		t.Fatal("indexed build interned no keys")
	}

	q := BuildQuery(dict, []RawSet{
		{Name: "q", Elements: []string{"red bicycle", "never seen before", "also novel"}},
	}, ModeWord, 0)
	if got := dict.Keys().Size(); got != indexedKeys {
		t.Fatalf("query tokenization grew key table: %d -> %d", indexedKeys, got)
	}
	els := q.Sets[0].Elements
	if els[0].Key != coll.Sets[0].Elements[0].Key {
		t.Fatalf("identical query element got key %d, indexed twin has %d", els[0].Key, coll.Sets[0].Elements[0].Key)
	}
	if els[1].Key != NoKey || els[2].Key != NoKey {
		t.Fatalf("novel query elements must get NoKey, got %d, %d", els[1].Key, els[2].Key)
	}

	// Same property under q-gram mode, where keys are whole raw strings.
	dict2 := tokens.NewDictionary()
	BuildQGram(dict2, []RawSet{{Name: "a", Elements: []string{"kitten"}}}, 2)
	n2 := dict2.Keys().Size()
	q2 := BuildQuery(dict2, []RawSet{{Name: "q", Elements: []string{"kitten", "sitting"}}}, ModeQGram, 2)
	if got := dict2.Keys().Size(); got != n2 {
		t.Fatalf("qgram query tokenization grew key table: %d -> %d", n2, got)
	}
	if q2.Sets[0].Elements[0].Key == NoKey || q2.Sets[0].Elements[1].Key != NoKey {
		t.Fatalf("qgram query keys wrong: %d, %d", q2.Sets[0].Elements[0].Key, q2.Sets[0].Elements[1].Key)
	}
}
