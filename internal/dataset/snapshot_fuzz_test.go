package dataset

import (
	"bytes"
	"testing"

	"silkmoth/internal/tokens"
)

// FuzzLoadSnapshot: arbitrary bytes must produce an error or a structurally
// sound snapshot — never a panic, and never an allocation driven by an
// unvalidated length field (counts are capped against remaining payload
// bytes before any make, so a hostile header costs a failed read, not
// memory).
func FuzzLoadSnapshot(f *testing.F) {
	// Valid images as seeds: with postings, without, with dead slots.
	snap := buildSnapshotFixture()
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, snap); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	if err := SaveSnapshot(&buf, &SnapshotData{Coll: snap.Coll}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	qc := BuildQGram(tokens.NewDictionary(), []RawSet{{Name: "q", Elements: []string{"abcdef"}}}, 3)
	if err := SaveSnapshot(&buf, &SnapshotData{Coll: qc}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(snapshotMagic))
	f.Add([]byte(snapshotMagic + "\x01"))
	// A header declaring a huge meta section.
	f.Add(append([]byte(snapshotMagic+"\x01"), 0x01, 0xFF, 0xFF, 0xFF, 0x3F))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever loads must satisfy the invariants the engine relies on.
		c := got.Coll
		if c == nil || c.Dict == nil {
			t.Fatal("loaded snapshot with nil collection or dictionary")
		}
		if got.Dead != nil && len(got.Dead) != len(c.Sets) {
			t.Fatalf("dead bitmap length %d over %d sets", len(got.Dead), len(c.Sets))
		}
		for i := range c.Sets {
			for j := range c.Sets[i].Elements {
				for _, id := range c.Sets[i].Elements[j].Tokens {
					if int(id) >= c.Dict.Size() {
						t.Fatalf("set %d element %d token %d out of dictionary range", i, j, id)
					}
				}
			}
		}
		postings, err := got.DecodePostings()
		if err != nil {
			// A structurally sound frame can still hold a corrupt container
			// blob; lazy decode surfaces that here, which is fine.
			return
		}
		for tok, list := range postings {
			for _, p := range list {
				if int(p.Set) >= len(c.Sets) || p.Set < 0 {
					t.Fatalf("token %d posting set %d out of range", tok, p.Set)
				}
				if int(p.Elem) >= len(c.Sets[p.Set].Elements) || p.Elem < 0 {
					t.Fatalf("token %d posting elem %d out of range", tok, p.Elem)
				}
				if got.Dead != nil && got.Dead[p.Set] {
					t.Fatalf("token %d posting references dead set %d", tok, p.Set)
				}
			}
		}
		// A loaded snapshot must save again cleanly (the writer trusts the
		// invariants the loader enforced).
		var out bytes.Buffer
		if err := SaveSnapshot(&out, got); err != nil {
			t.Fatalf("re-saving a loaded snapshot: %v", err)
		}
	})
}
