package dataset

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestReadRawSets(t *testing.T) {
	in := `
addresses: 77 Mass Ave Boston MA | 5th St 02115 Seattle WA
# a comment line
77 Fifth Street Chicago IL | One Kendall Square
`
	sets, err := ReadRawSets(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("sets = %d, want 2", len(sets))
	}
	if sets[0].Name != "addresses" {
		t.Errorf("name = %q", sets[0].Name)
	}
	want := []string{"77 Mass Ave Boston MA", "5th St 02115 Seattle WA"}
	if !reflect.DeepEqual(sets[0].Elements, want) {
		t.Errorf("elements = %v, want %v", sets[0].Elements, want)
	}
	if !strings.HasPrefix(sets[1].Name, "set") {
		t.Errorf("unnamed set should get a default name, got %q", sets[1].Name)
	}
	if len(sets[1].Elements) != 2 {
		t.Errorf("second set elements = %v", sets[1].Elements)
	}
}

func TestReadRawSetsNameWithSpacesNotAName(t *testing.T) {
	// A colon inside text with spaces before it is data, not a set name.
	sets, err := ReadRawSets(strings.NewReader("note to self: buy milk | eggs\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 {
		t.Fatalf("sets = %d", len(sets))
	}
	if sets[0].Elements[0] != "note to self: buy milk" {
		t.Errorf("colon handling wrong: %v", sets[0].Elements)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	orig := []RawSet{
		{Name: "alpha", Elements: []string{"one two", "three"}},
		{Name: "beta", Elements: []string{"four five six"}},
	}
	var buf bytes.Buffer
	if err := WriteRawSets(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRawSets(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, orig)
	}
}

func TestWriteReadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sets.txt")
	orig := []RawSet{{Name: "x", Elements: []string{"a b", "c"}}}
	if err := WriteRawSetsFile(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRawSetsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("file round trip mismatch: %v", got)
	}
}

func TestReadRawSetsFileMissing(t *testing.T) {
	if _, err := ReadRawSetsFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestReadCSVColumns(t *testing.T) {
	in := "city,state\nBoston,MA\nSeattle,WA\nBoston,MA\nChicago,IL\n"
	cols, err := ReadCSVColumns(strings.NewReader(in), "places")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 {
		t.Fatalf("cols = %d, want 2", len(cols))
	}
	if cols[0].Name != "places.city" || cols[1].Name != "places.state" {
		t.Errorf("names = %q, %q", cols[0].Name, cols[1].Name)
	}
	// Distinct values only: Boston appears twice in input.
	if !reflect.DeepEqual(cols[0].Elements, []string{"Boston", "Seattle", "Chicago"}) {
		t.Errorf("city column = %v", cols[0].Elements)
	}
	if !reflect.DeepEqual(cols[1].Elements, []string{"MA", "WA", "IL"}) {
		t.Errorf("state column = %v", cols[1].Elements)
	}
}

func TestReadCSVColumnsRaggedRows(t *testing.T) {
	in := "a,b\n1,2,3\n4\n"
	cols, err := ReadCSVColumns(strings.NewReader(in), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 {
		t.Fatalf("cols = %d", len(cols))
	}
	if !reflect.DeepEqual(cols[0].Elements, []string{"1", "4"}) {
		t.Errorf("col a = %v", cols[0].Elements)
	}
	if !reflect.DeepEqual(cols[1].Elements, []string{"2"}) {
		t.Errorf("col b = %v", cols[1].Elements)
	}
	if cols[0].Name != "a" {
		t.Errorf("no-table name = %q", cols[0].Name)
	}
}
