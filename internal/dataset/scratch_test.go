package dataset

import (
	"fmt"
	"testing"

	"silkmoth/internal/tokens"
)

// queryScratchFixture builds an indexed collection (interning keys the way
// an engine does) and a batch of query raw sets that mix indexed content
// (keys must resolve), novel content (keys must be NoKey), empty elements,
// and Unicode.
func queryScratchFixture(mode TokenMode, q int) (*tokens.Dictionary, []RawSet) {
	dict := tokens.NewDictionary()
	indexed := []RawSet{
		{Name: "I0", Elements: []string{"alpha beta", "gamma delta epsilon", "héllo wörld"}},
		{Name: "I1", Elements: []string{"beta", "zeta eta", ""}},
	}
	Build(dict, indexed, mode, q)
	queries := []RawSet{
		{Name: "Q0", Elements: []string{"alpha beta", "totally novel element", ""}},
		{Name: "Q1", Elements: []string{"gamma delta epsilon", "beta", "  spaced   out  "}},
		{Name: "empty", Elements: nil},
		{Name: "Q2", Elements: []string{"héllo wörld", "日本語 データベース", "\xffinvalid\xfe"}},
	}
	return dict, queries
}

// TestQueryScratchMatchesBuildQuery pins the scratch query builder to
// BuildQuery element by element: same raws, tokens, chunks, lengths, and
// keys, in both token modes — including key lookups resolving for indexed
// content and NoKey for novel content — and across scratch reuse, where a
// second Build on the same scratch must not corrupt what the equivalence
// checks see during the build that produced them.
func TestQueryScratchMatchesBuildQuery(t *testing.T) {
	for _, tc := range []struct {
		mode TokenMode
		q    int
	}{{ModeWord, 0}, {ModeQGram, 2}, {ModeQGram, 3}} {
		t.Run(fmt.Sprintf("%v_q%d", tc.mode, tc.q), func(t *testing.T) {
			dict, queries := queryScratchFixture(tc.mode, tc.q)
			want := BuildQuery(dict, queries, tc.mode, tc.q)
			var qs QueryScratch
			for round := 0; round < 3; round++ { // reuse must not change results
				got := qs.Build(dict, queries, tc.mode, tc.q)
				if got.Mode != want.Mode || got.Q != want.Q || len(got.Sets) != len(want.Sets) {
					t.Fatalf("round %d: collection shape mismatch: got {%v %d %d sets}, want {%v %d %d sets}",
						round, got.Mode, got.Q, len(got.Sets), want.Mode, want.Q, len(want.Sets))
				}
				for i := range want.Sets {
					ws, gs := &want.Sets[i], &got.Sets[i]
					if gs.Name != ws.Name || len(gs.Elements) != len(ws.Elements) {
						t.Fatalf("round %d set %d: header mismatch", round, i)
					}
					for j := range ws.Elements {
						we, ge := &ws.Elements[j], &gs.Elements[j]
						if ge.Raw != we.Raw || ge.Length != we.Length || ge.Key != we.Key {
							t.Errorf("round %d set %d elem %d: scalar mismatch: got {%q %d %d}, want {%q %d %d}",
								round, i, j, ge.Raw, ge.Length, ge.Key, we.Raw, we.Length, we.Key)
						}
						if !equalIDs(ge.Tokens, we.Tokens) {
							t.Errorf("round %d set %d elem %d: tokens %v, want %v", round, i, j, ge.Tokens, we.Tokens)
						}
						if !equalIDs(ge.Chunks, we.Chunks) {
							t.Errorf("round %d set %d elem %d: chunks %v, want %v", round, i, j, ge.Chunks, we.Chunks)
						}
					}
				}
			}
		})
	}
}

// TestQueryScratchLooksUpNeverInterns pins BuildQuery's key contract on the
// scratch path: building queries full of novel elements must not grow the
// key table.
func TestQueryScratchLooksUpNeverInterns(t *testing.T) {
	for _, tc := range []struct {
		mode TokenMode
		q    int
	}{{ModeWord, 0}, {ModeQGram, 2}} {
		dict, _ := queryScratchFixture(tc.mode, tc.q)
		before := dict.Keys().Size()
		var qs QueryScratch
		qs.Build(dict, []RawSet{
			{Name: "N", Elements: []string{"never seen before", "another novel one"}},
		}, tc.mode, tc.q)
		if after := dict.Keys().Size(); after != before {
			t.Errorf("%v: query build grew the key table %d -> %d", tc.mode, before, after)
		}
	}
}

func equalIDs(a, b []tokens.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
