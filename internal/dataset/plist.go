package dataset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Adaptive posting-list containers.
//
// A posting list — every ⟨Set, Elem⟩ occurrence of one token, sorted
// strictly ascending by (Set, Elem) — is stored as one of three container
// encodings chosen per list by size and density:
//
//	array   [0x00][uvarint n][n × (uvarint setDelta, uvarint elem)]
//	        Tiny lists. Deltas are against the previous posting's Set
//	        (the first is absolute), elems are raw uvarints.
//
//	packed  [0x01][uvarint n][uvarint nBlocks]
//	        [skip: nBlocks × (uint32 LE lastSet, uint32 LE endOff)]
//	        [blocks: per block, first posting (uvarint set, uvarint elem)
//	         with the set absolute, then (uvarint setDelta, uvarint elem)]
//	        The long tail. Blocks hold PackedBlockSize postings (the last
//	        may be short); endOff is the block's end relative to the
//	        blocks area, so the skip table supports O(log nBlocks) seeks
//	        and galloping intersection without decoding skipped blocks.
//	        Each block's first set is absolute so blocks decode
//	        standalone.
//
//	bitmap  [0x02][uvarint n][uvarint firstWord][uvarint nWords]
//	        [nWords × uint64 LE]
//	        Dense lists. Bit i of word w is global element id
//	        (firstWord+w)*64 + i, where an element's global id is
//	        elemBase[set] + elem and elemBase is the prefix sum of per-set
//	        element counts (ElemBase). Chosen when it encodes smaller
//	        than packed.
//
// The empty blob (zero bytes) is the empty list; a non-empty blob must
// hold at least one posting. All decoders are written for hostile input:
// arbitrary bytes produce an error, never a panic or an attacker-sized
// allocation (containers inside snapshots are additionally CRC-covered by
// the section framing).
const (
	ContainerArray  = 0x00
	ContainerPacked = 0x01
	ContainerBitmap = 0x02

	// PackedBlockSize is the number of postings per packed block.
	PackedBlockSize = 128

	// ArrayMaxPostings is the largest list stored as a plain array
	// container; longer lists use packed or bitmap.
	ArrayMaxPostings = 24

	skipEntrySize = 8
)

// ErrContainerCorrupt is the sentinel wrapped by posting-container decode
// failures.
var ErrContainerCorrupt = errors.New("dataset: corrupt posting container")

func badContainer(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrContainerCorrupt}, args...)...)
}

// ElemBase returns the global element-id base table of c: eb[i] is the sum
// of element counts of sets 0..i-1, so element e of set s has global id
// eb[s]+e and eb[len(Sets)] is the total element count. Bitmap containers
// are defined over this id space; the table used to decode a container
// must be the one it was encoded against (appending sets keeps existing
// entries stable, so the table extends without invalidating containers).
func ElemBase(c *Collection) []int32 {
	eb := make([]int32, len(c.Sets)+1)
	for i := range c.Sets {
		eb[i+1] = eb[i] + int32(len(c.Sets[i].Elements))
	}
	return eb
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ContainerEncoder encodes posting lists into container blobs, reusing
// internal scratch across calls. The zero value is ready to use.
type ContainerEncoder struct {
	blocks []byte
	skip   []uint64 // lastSet<<32 | endOff
}

// Append encodes list — sorted strictly ascending by (Set, Elem) — as a
// container blob appended to dst. The encoding is chosen adaptively and
// deterministically: array for tiny lists, then whichever of packed or
// bitmap is smaller (bitmap requires eb; pass nil to force packed). An
// empty list appends nothing: the empty blob is the empty list.
func (e *ContainerEncoder) Append(dst []byte, list []Posting, eb []int32) []byte {
	n := len(list)
	if n == 0 {
		return dst
	}
	if n <= ArrayMaxPostings {
		dst = append(dst, ContainerArray)
		dst = binary.AppendUvarint(dst, uint64(n))
		prev := int32(0)
		for _, p := range list {
			dst = binary.AppendUvarint(dst, uint64(p.Set-prev))
			dst = binary.AppendUvarint(dst, uint64(p.Elem))
			prev = p.Set
		}
		return dst
	}

	// Packed candidate: encode blocks into scratch so the skip table —
	// which precedes them on the wire — can be emitted with final offsets.
	e.blocks = e.blocks[:0]
	e.skip = e.skip[:0]
	for b := 0; b < n; b += PackedBlockSize {
		end := min(b+PackedBlockSize, n)
		prev := int32(0)
		for k, p := range list[b:end] {
			if k == 0 {
				e.blocks = binary.AppendUvarint(e.blocks, uint64(p.Set))
			} else {
				e.blocks = binary.AppendUvarint(e.blocks, uint64(p.Set-prev))
			}
			e.blocks = binary.AppendUvarint(e.blocks, uint64(p.Elem))
			prev = p.Set
		}
		e.skip = append(e.skip, uint64(uint32(list[end-1].Set))<<32|uint64(uint32(len(e.blocks))))
	}
	nBlocks := len(e.skip)
	packedSize := 1 + uvarintLen(uint64(n)) + uvarintLen(uint64(nBlocks)) +
		nBlocks*skipEntrySize + len(e.blocks)

	if eb != nil {
		first := int(eb[list[0].Set]) + int(list[0].Elem)
		last := int(eb[list[n-1].Set]) + int(list[n-1].Elem)
		fw, lw := first>>6, last>>6
		nWords := lw - fw + 1
		bmSize := 1 + uvarintLen(uint64(n)) + uvarintLen(uint64(fw)) +
			uvarintLen(uint64(nWords)) + nWords*8
		if bmSize < packedSize {
			dst = append(dst, ContainerBitmap)
			dst = binary.AppendUvarint(dst, uint64(n))
			dst = binary.AppendUvarint(dst, uint64(fw))
			dst = binary.AppendUvarint(dst, uint64(nWords))
			base := len(dst)
			for i := 0; i < nWords; i++ {
				dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
			}
			for _, p := range list {
				if int(p.Elem) >= int(eb[p.Set+1]-eb[p.Set]) {
					panic("dataset: posting element out of range for bitmap container")
				}
				id := int(eb[p.Set]) + int(p.Elem)
				off := base + (id>>6-fw)*8
				word := binary.LittleEndian.Uint64(dst[off:])
				binary.LittleEndian.PutUint64(dst[off:], word|1<<(uint(id)&63))
			}
			return dst
		}
	}

	dst = append(dst, ContainerPacked)
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendUvarint(dst, uint64(nBlocks))
	for _, s := range e.skip {
		var ent [skipEntrySize]byte
		binary.LittleEndian.PutUint32(ent[0:4], uint32(s>>32))
		binary.LittleEndian.PutUint32(ent[4:8], uint32(s))
		dst = append(dst, ent[:]...)
	}
	return append(dst, e.blocks...)
}

// ContainerLen returns the posting count declared by a container blob, or
// false if the header is malformed. The empty blob has length 0.
func ContainerLen(blob []byte) (int, bool) {
	if len(blob) == 0 {
		return 0, true
	}
	if blob[0] > ContainerBitmap {
		return 0, false
	}
	v, sz := binary.Uvarint(blob[1:])
	// Every encoding spends ≥ 1 bit per posting (a bitmap word holds at
	// most 64 postings in 8 bytes), so a declared count the blob cannot
	// possibly back is rejected before anyone allocates on its behalf.
	if sz <= 0 || v == 0 || v > math.MaxInt32 || int(v) > (len(blob)-1)*8 {
		return 0, false
	}
	return int(v), true
}

// PostingList is a read-only view over one encoded container blob plus the
// element-base table it was encoded against. The zero value is the empty
// list.
type PostingList struct {
	blob []byte
	eb   []int32
}

// NewPostingList wraps an encoded container blob. eb must be (a stable
// extension of) the ElemBase table the blob was encoded against.
func NewPostingList(blob []byte, eb []int32) PostingList {
	return PostingList{blob: blob, eb: eb}
}

// Empty reports whether the list holds no postings.
func (pl PostingList) Empty() bool { return len(pl.blob) == 0 }

// Kind returns the container kind byte (ContainerArray for the empty
// blob).
func (pl PostingList) Kind() byte {
	if len(pl.blob) == 0 {
		return ContainerArray
	}
	return pl.blob[0]
}

// Len returns the declared posting count, or 0 for a malformed header.
func (pl PostingList) Len() int {
	n, _ := ContainerLen(pl.blob)
	return n
}

// Iter returns an iterator positioned before the first posting.
func (pl PostingList) Iter() PostingIter {
	var it PostingIter
	it.init(pl)
	return it
}

// Materialize appends every posting to dst. The full container is
// validated (bounds, ordering, canonical block/skip/bitmap structure), so
// a successful materialization is exact; on error the original dst is
// returned unchanged alongside the error.
func (pl PostingList) Materialize(dst []Posting) ([]Posting, error) {
	if len(pl.blob) == 0 {
		return dst, nil
	}
	start := len(dst)
	it := pl.Iter()
	if it.err != nil {
		return dst, it.err
	}
	if cap(dst)-len(dst) < it.n {
		grown := make([]Posting, len(dst), len(dst)+it.n)
		copy(grown, dst)
		dst = grown
	}
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		dst = append(dst, p)
	}
	if err := it.Err(); err != nil {
		return dst[:start], err
	}
	return dst, nil
}

// PostingIter streams a container's postings in (Set, Elem) order without
// materializing the list. It validates as it goes; Next returning false
// means either exhaustion or an error — check Err.
type PostingIter struct {
	eb  []int32
	err error

	kind byte
	n    int // declared postings
	i    int // postings emitted

	// array + packed
	data     []byte // varint area (array payload, or packed blocks area)
	off      int
	skip     []byte // packed skip table
	nBlocks  int
	blockIdx int
	inBlock  int
	prevSet  int32
	prevElem int32

	// bitmap
	words    []byte
	word     uint64
	wordIdx  int
	firstBit int // global element id of words[0] bit 0
	set      int32
}

func (it *PostingIter) fail(format string, args ...any) {
	if it.err == nil {
		it.err = badContainer(format, args...)
	}
}

func (it *PostingIter) init(pl PostingList) {
	it.eb = pl.eb
	blob := pl.blob
	if len(blob) == 0 {
		return
	}
	n, ok := ContainerLen(blob)
	if !ok {
		it.fail("bad container header")
		return
	}
	it.kind = blob[0]
	it.n = n
	_, sz := binary.Uvarint(blob[1:])
	rest := blob[1+sz:]
	switch it.kind {
	case ContainerArray:
		if n > ArrayMaxPostings {
			it.fail("array container with %d postings", n)
			return
		}
		if len(rest) < 2*n { // each posting costs ≥ 2 bytes
			it.fail("array payload too short for %d postings", n)
			return
		}
		it.data = rest
	case ContainerPacked:
		nb, sz := binary.Uvarint(rest)
		if sz <= 0 || nb != uint64((n+PackedBlockSize-1)/PackedBlockSize) {
			it.fail("packed container block count")
			return
		}
		rest = rest[sz:]
		skipLen := int(nb) * skipEntrySize
		if len(rest) < skipLen || len(rest)-skipLen < 2*n {
			it.fail("packed payload too short for %d postings", n)
			return
		}
		it.nBlocks = int(nb)
		it.skip = rest[:skipLen]
		it.data = rest[skipLen:]
	case ContainerBitmap:
		fw, sz := binary.Uvarint(rest)
		if sz <= 0 || fw > math.MaxInt32>>6 {
			it.fail("bitmap first word")
			return
		}
		rest = rest[sz:]
		nw, sz := binary.Uvarint(rest)
		if sz <= 0 || nw == 0 || nw > uint64(len(rest)) {
			it.fail("bitmap word count")
			return
		}
		rest = rest[sz:]
		if len(rest) != int(nw)*8 || uint64(n) > nw*64 {
			it.fail("bitmap payload is %d bytes for %d postings", len(rest), n)
			return
		}
		if it.eb == nil {
			it.fail("bitmap container without element base")
			return
		}
		// Canonical form: the boundary words are nonzero (else the
		// encoder would have shrunk the range).
		if binary.LittleEndian.Uint64(rest[:8]) == 0 ||
			binary.LittleEndian.Uint64(rest[len(rest)-8:]) == 0 {
			it.fail("bitmap with empty boundary word")
			return
		}
		it.words = rest
		it.firstBit = int(fw) << 6
		it.word = binary.LittleEndian.Uint64(rest[:8])
	default:
		it.fail("unknown container kind 0x%02x", it.kind)
	}
}

// Err returns the first decode error encountered, or nil.
func (it *PostingIter) Err() error { return it.err }

// finish runs the end-of-container canonicity checks once.
func (it *PostingIter) finish() {
	switch it.kind {
	case ContainerArray, ContainerPacked:
		if it.data != nil && it.off != len(it.data) {
			it.fail("%d trailing container bytes", len(it.data)-it.off)
		}
		it.data = nil
	case ContainerBitmap:
		if it.words == nil {
			return
		}
		trailing := it.word != 0
		for w := it.wordIdx + 1; !trailing && w*8 < len(it.words); w++ {
			trailing = binary.LittleEndian.Uint64(it.words[w*8:]) != 0
		}
		if trailing {
			it.fail("bitmap popcount exceeds declared %d", it.n)
		}
		it.words = nil
	}
}

// Next returns the next posting, or false when exhausted or on error.
func (it *PostingIter) Next() (Posting, bool) {
	if it.err == nil && it.i >= it.n {
		it.finish()
	}
	if it.err != nil || it.i >= it.n {
		return Posting{}, false
	}
	if it.kind == ContainerBitmap {
		return it.nextBitmap()
	}
	return it.nextVarint()
}

func (it *PostingIter) uvarint() uint64 {
	v, sz := binary.Uvarint(it.data[it.off:])
	if sz <= 0 {
		it.fail("bad uvarint at offset %d", it.off)
		return 0
	}
	it.off += sz
	return v
}

func (it *PostingIter) nextVarint() (Posting, bool) {
	absolute := it.i == 0 || (it.kind == ContainerPacked && it.inBlock == 0)
	dv := it.uvarint()
	ev := it.uvarint()
	if it.err != nil {
		return Posting{}, false
	}
	if ev > math.MaxInt32 {
		it.fail("element %d out of range", ev)
		return Posting{}, false
	}
	elem := int32(ev)
	var set int32
	if absolute {
		if dv > math.MaxInt32 {
			it.fail("set %d out of range", dv)
			return Posting{}, false
		}
		set = int32(dv)
		if it.i > 0 && (set < it.prevSet || (set == it.prevSet && elem <= it.prevElem)) {
			it.fail("postings out of order at %d", it.i)
			return Posting{}, false
		}
	} else {
		if int64(it.prevSet)+int64(dv) > math.MaxInt32 {
			it.fail("set delta %d out of range", dv)
			return Posting{}, false
		}
		set = it.prevSet + int32(dv)
		if dv == 0 && elem <= it.prevElem {
			it.fail("postings out of order at %d", it.i)
			return Posting{}, false
		}
	}
	if it.eb != nil {
		if int(set) >= len(it.eb)-1 {
			it.fail("posting set %d out of range", set)
			return Posting{}, false
		}
		if elem >= it.eb[set+1]-it.eb[set] {
			it.fail("posting element %d out of range for set %d", elem, set)
			return Posting{}, false
		}
	}
	it.prevSet, it.prevElem = set, elem
	it.i++
	if it.kind == ContainerPacked {
		it.inBlock++
		blockLen := PackedBlockSize
		if it.blockIdx == it.nBlocks-1 {
			blockLen = it.n - it.blockIdx*PackedBlockSize
		}
		if it.inBlock == blockLen {
			// Canonical form: the skip entry must match the block exactly.
			ent := it.skip[it.blockIdx*skipEntrySize:]
			if int32(binary.LittleEndian.Uint32(ent[0:4])) != set {
				it.fail("skip entry %d lastSet mismatch", it.blockIdx)
				return Posting{}, false
			}
			if int(binary.LittleEndian.Uint32(ent[4:8])) != it.off {
				it.fail("skip entry %d offset mismatch", it.blockIdx)
				return Posting{}, false
			}
			it.blockIdx++
			it.inBlock = 0
		}
	}
	return Posting{Set: set, Elem: elem}, true
}

func (it *PostingIter) nextBitmap() (Posting, bool) {
	for {
		if it.word != 0 {
			bit := bits.TrailingZeros64(it.word)
			it.word &= it.word - 1
			id := it.firstBit + it.wordIdx<<6 + bit
			for int(it.set) < len(it.eb)-1 && int(it.eb[it.set+1]) <= id {
				it.set++
			}
			if int(it.set) >= len(it.eb)-1 {
				it.fail("bitmap bit %d beyond element space", id)
				return Posting{}, false
			}
			it.i++
			return Posting{Set: it.set, Elem: int32(id - int(it.eb[it.set]))}, true
		}
		it.wordIdx++
		if it.wordIdx*8 >= len(it.words) {
			if it.i != it.n {
				it.fail("bitmap popcount %d, declared %d", it.i, it.n)
			}
			it.i = it.n
			it.words = nil
			return Posting{}, false
		}
		it.word = binary.LittleEndian.Uint64(it.words[it.wordIdx*8:])
	}
}

// SetRange appends the postings of one set to dst, seeking via the skip
// table (packed) or word range (bitmap) rather than scanning the whole
// container. On decode error the original dst is returned with the error.
func (pl PostingList) SetRange(set int32, dst []Posting) ([]Posting, error) {
	start := len(dst)
	if len(pl.blob) == 0 || set < 0 {
		return dst, nil
	}
	switch pl.blob[0] {
	case ContainerArray:
		it := pl.Iter()
		for {
			p, ok := it.Next()
			if !ok || p.Set > set {
				break
			}
			if p.Set == set {
				dst = append(dst, p)
			}
		}
		if err := it.Err(); err != nil {
			return dst[:start], err
		}
		return dst, nil
	case ContainerPacked:
		it := pl.Iter()
		if it.err != nil {
			return dst, it.err
		}
		// First block whose lastSet >= set.
		lo := sort.Search(it.nBlocks, func(b int) bool {
			return int32(binary.LittleEndian.Uint32(it.skip[b*skipEntrySize:])) >= set
		})
		if lo == it.nBlocks {
			return dst, nil
		}
		var scratch [PackedBlockSize]Posting
		for b := lo; b < it.nBlocks; b++ {
			blk, err := pl.decodeBlock(&it, b, &scratch)
			if err != nil {
				return dst[:start], err
			}
			if len(blk) == 0 || blk[0].Set > set {
				break
			}
			i := sort.Search(len(blk), func(i int) bool { return blk[i].Set >= set })
			for ; i < len(blk) && blk[i].Set == set; i++ {
				dst = append(dst, blk[i])
			}
			if blk[len(blk)-1].Set > set {
				break
			}
		}
		return dst, nil
	case ContainerBitmap:
		it := pl.Iter()
		if it.err != nil {
			return dst, it.err
		}
		if int(set)+1 >= len(pl.eb) {
			return dst, nil
		}
		return appendBitmapRange(dst, it.words, it.firstBit, set,
			int(pl.eb[set]), int(pl.eb[set+1])), nil
	default:
		return dst, badContainer("unknown container kind 0x%02x", pl.blob[0])
	}
}

// appendBitmapRange appends postings of one set — global element ids in
// [base, hi) — from a bitmap's word area.
func appendBitmapRange(dst []Posting, words []byte, firstBit int, set int32, base, hi int) []Posting {
	lo := base
	lastBit := firstBit + len(words)*8
	if lo < firstBit {
		lo = firstBit
	}
	if hi > lastBit {
		hi = lastBit
	}
	if lo >= hi {
		return dst
	}
	for w := lo >> 6; w<<6 < hi; w++ {
		idx := w - firstBit>>6
		word := binary.LittleEndian.Uint64(words[idx*8:])
		if w<<6 < lo {
			word &= ^uint64(0) << (uint(lo) & 63)
		}
		if (w+1)<<6 > hi {
			word &= ^uint64(0) >> ((64 - uint(hi)&63) & 63)
		}
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &= word - 1
			dst = append(dst, Posting{Set: set, Elem: int32(w<<6 + bit - base)})
		}
	}
	return dst
}

// decodeBlock decodes packed block b into scratch. it must be a freshly
// initialized iterator over the same container (used for its parsed
// layout). Bounds are checked; intra-block ordering is not — full
// validation is Materialize's job, and callers only binary-search the
// result.
func (pl PostingList) decodeBlock(it *PostingIter, b int, scratch *[PackedBlockSize]Posting) ([]Posting, error) {
	start := 0
	if b > 0 {
		start = int(binary.LittleEndian.Uint32(it.skip[(b-1)*skipEntrySize+4:]))
	}
	end := int(binary.LittleEndian.Uint32(it.skip[b*skipEntrySize+4:]))
	if start > end || end > len(it.data) {
		return nil, badContainer("skip table offsets out of range")
	}
	data := it.data[start:end]
	blockLen := PackedBlockSize
	if b == it.nBlocks-1 {
		blockLen = it.n - b*PackedBlockSize
	}
	off := 0
	prev := int32(0)
	out := scratch[:0]
	for k := 0; k < blockLen; k++ {
		sv, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return nil, badContainer("bad uvarint in block %d", b)
		}
		off += sz
		ev, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return nil, badContainer("bad uvarint in block %d", b)
		}
		off += sz
		if ev > math.MaxInt32 {
			return nil, badContainer("element out of range in block %d", b)
		}
		var set int32
		if k == 0 {
			if sv > math.MaxInt32 {
				return nil, badContainer("set out of range in block %d", b)
			}
			set = int32(sv)
		} else {
			if int64(prev)+int64(sv) > math.MaxInt32 {
				return nil, badContainer("set delta out of range in block %d", b)
			}
			set = prev + int32(sv)
		}
		out = append(out, Posting{Set: set, Elem: int32(ev)})
		prev = set
	}
	if off != len(data) {
		return nil, badContainer("%d trailing bytes in block %d", len(data)-off, b)
	}
	return out, nil
}

// IntersectInto appends the postings whose Set appears in sets (sorted
// ascending, unique) to dst. Packed containers gallop: runs of blocks with
// nothing wanted are jumped over via binary search on the skip table and
// are never decoded.
func (pl PostingList) IntersectInto(dst []Posting, sets []int32) ([]Posting, error) {
	start := len(dst)
	if len(pl.blob) == 0 || len(sets) == 0 {
		return dst, nil
	}
	switch pl.blob[0] {
	case ContainerArray:
		it := pl.Iter()
		si := 0
		for {
			p, ok := it.Next()
			if !ok {
				break
			}
			for si < len(sets) && sets[si] < p.Set {
				si++
			}
			if si == len(sets) {
				break
			}
			if sets[si] == p.Set {
				dst = append(dst, p)
			}
		}
		if err := it.Err(); err != nil {
			return dst[:start], err
		}
		return dst, nil
	case ContainerBitmap:
		it := pl.Iter()
		if it.err != nil {
			return dst, it.err
		}
		for _, set := range sets {
			if set < 0 || int(set)+1 >= len(pl.eb) {
				continue
			}
			dst = appendBitmapRange(dst, it.words, it.firstBit, set,
				int(pl.eb[set]), int(pl.eb[set+1]))
		}
		return dst, nil
	case ContainerPacked:
		it := pl.Iter()
		if it.err != nil {
			return dst, it.err
		}
		var scratch [PackedBlockSize]Posting
		si := 0
		for b := 0; b < it.nBlocks && si < len(sets); b++ {
			lastSet := int32(binary.LittleEndian.Uint32(it.skip[b*skipEntrySize:]))
			if sets[si] > lastSet {
				// Gallop: jump to the first later block that can hold the
				// next wanted set, without decoding the ones in between.
				b += sort.Search(it.nBlocks-b-1, func(j int) bool {
					return int32(binary.LittleEndian.Uint32(it.skip[(b+1+j)*skipEntrySize:])) >= sets[si]
				})
				if b+1 >= it.nBlocks {
					break
				}
				continue
			}
			blk, err := pl.decodeBlock(&it, b, &scratch)
			if err != nil {
				return dst[:start], err
			}
			bi := 0
			for bi < len(blk) && si < len(sets) {
				switch {
				case blk[bi].Set < sets[si]:
					bi++
				case blk[bi].Set > sets[si]:
					si++
				default:
					dst = append(dst, blk[bi])
					bi++
				}
			}
		}
		return dst, nil
	default:
		return dst, badContainer("unknown container kind 0x%02x", pl.blob[0])
	}
}

// ContainerStore is an immutable token-id-indexed array of container
// blobs: a uint32 LE offset table of numTokens+1 entries over one
// concatenated blob area. It is the on-disk postings section of a v2
// snapshot viewed in place — both slices may alias a memory-mapped file —
// so resolving a token's blob is O(1) and allocation-free.
type ContainerStore struct {
	offs []byte // (n+1) × uint32 LE
	data []byte
	n    int
}

// NewContainerStore validates the offset table (monotone, bounded by the
// blob area) and wraps the two byte areas. Individual blob contents are
// validated lazily on first decode.
func NewContainerStore(numTokens int, offs, data []byte) (*ContainerStore, error) {
	if numTokens < 0 || len(offs) != (numTokens+1)*4 {
		return nil, badContainer("offset table is %d bytes for %d tokens", len(offs), numTokens)
	}
	if binary.LittleEndian.Uint32(offs) != 0 {
		return nil, badContainer("offset table does not start at 0")
	}
	prev := uint32(0)
	for i := 1; i <= numTokens; i++ {
		o := binary.LittleEndian.Uint32(offs[i*4:])
		if o < prev {
			return nil, badContainer("offset table not monotone at %d", i)
		}
		prev = o
	}
	if int(prev) != len(data) {
		return nil, badContainer("offset table ends at %d, blob area is %d bytes", prev, len(data))
	}
	return &ContainerStore{offs: offs, data: data, n: numTokens}, nil
}

// NumTokens returns the number of token slots.
func (cs *ContainerStore) NumTokens() int { return cs.n }

// Blob returns token t's container blob (empty for an empty list or an
// out-of-range token). The returned slice aliases the store.
func (cs *ContainerStore) Blob(t int) []byte {
	if cs == nil || t < 0 || t >= cs.n {
		return nil
	}
	lo := binary.LittleEndian.Uint32(cs.offs[t*4:])
	hi := binary.LittleEndian.Uint32(cs.offs[(t+1)*4:])
	return cs.data[lo:hi]
}

// EncodedBytes returns the store's total footprint: blob area plus offset
// table.
func (cs *ContainerStore) EncodedBytes() int64 {
	if cs == nil {
		return 0
	}
	return int64(len(cs.data)) + int64(len(cs.offs))
}

// Clone returns a heap copy of the store, detaching it from any memory-
// mapped backing.
func (cs *ContainerStore) Clone() *ContainerStore {
	return &ContainerStore{
		offs: append([]byte(nil), cs.offs...),
		data: append([]byte(nil), cs.data...),
		n:    cs.n,
	}
}

// ContainerStoreBuilder accumulates container blobs in token-id order.
type ContainerStoreBuilder struct {
	enc  ContainerEncoder
	offs []byte
	data []byte
	n    int
}

// NewContainerStoreBuilder returns a builder sized for numTokens slots.
func NewContainerStoreBuilder(numTokens int) *ContainerStoreBuilder {
	return &ContainerStoreBuilder{offs: make([]byte, 4, (numTokens+1)*4)}
}

// Add encodes list as the next token's container.
func (b *ContainerStoreBuilder) Add(list []Posting, eb []int32) {
	b.data = b.enc.Append(b.data, list, eb)
	b.closeSlot()
}

// AddBlob copies an already-encoded container verbatim as the next
// token's container.
func (b *ContainerStoreBuilder) AddBlob(blob []byte) {
	b.data = append(b.data, blob...)
	b.closeSlot()
}

func (b *ContainerStoreBuilder) closeSlot() {
	if uint64(len(b.data)) > math.MaxUint32 {
		panic("dataset: container store exceeds 4 GiB")
	}
	b.offs = binary.LittleEndian.AppendUint32(b.offs, uint32(len(b.data)))
	b.n++
}

// Finish returns the completed store.
func (b *ContainerStoreBuilder) Finish() *ContainerStore {
	return &ContainerStore{offs: b.offs, data: b.data, n: b.n}
}
