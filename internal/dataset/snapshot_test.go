package dataset

import (
	"bytes"
	"errors"
	"testing"

	"silkmoth/internal/tokens"
)

// buildSnapshotFixture tokenizes a small word collection, tombstones one
// slot, and assembles a SnapshotData with postings filtered the way the
// engine's snapshot writer would (dead slots contribute nothing).
func buildSnapshotFixture() *SnapshotData {
	dict := tokens.NewDictionary()
	c := BuildWord(dict, []RawSet{
		{Name: "A", Elements: []string{"77 Mass Ave", "5th St"}},
		{Name: "doomed", Elements: []string{"goes away entirely"}},
		{Name: "B", Elements: []string{"77 5th St Chicago"}},
	})
	dead := []bool{false, true, false}
	// Postings over live sets only, sorted by (Set, Elem) per token id.
	lists := make([][]Posting, dict.Size())
	for i := range c.Sets {
		if dead[i] {
			continue
		}
		for j := range c.Sets[i].Elements {
			for _, t := range c.Sets[i].Elements[j].Tokens {
				lists[t] = append(lists[t], Posting{Set: int32(i), Elem: int32(j)})
			}
		}
	}
	// Mimic the engine: dead slots keep their index reservation but hold
	// nothing (the saver writes them as placeholders regardless, but the
	// fixture should match the runtime shape post-compaction too).
	return &SnapshotData{Coll: c, Dead: dead, Postings: lists}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := buildSnapshotFixture()
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c, gc := snap.Coll, got.Coll
	if gc.Mode != c.Mode || gc.Q != c.Q || len(gc.Sets) != len(c.Sets) {
		t.Fatalf("shape: mode %v q %d sets %d", gc.Mode, gc.Q, len(gc.Sets))
	}
	if len(got.Dead) != len(snap.Dead) || !got.Dead[1] || got.Dead[0] || got.Dead[2] {
		t.Fatalf("dead bitmap %v", got.Dead)
	}
	// The dead slot is an empty placeholder: id space intact, content gone.
	if gc.Sets[1].Name != "" || len(gc.Sets[1].Elements) != 0 {
		t.Fatalf("dead slot persisted content: %+v", gc.Sets[1])
	}
	// Live sets round-trip semantically: same raws, lengths, and — after
	// the pruned remap — token ids that resolve to the same strings.
	for _, i := range []int{0, 2} {
		s, gs := &c.Sets[i], &gc.Sets[i]
		if gs.Name != s.Name || len(gs.Elements) != len(s.Elements) {
			t.Fatalf("set %d shape differs", i)
		}
		for j := range s.Elements {
			e, ge := &s.Elements[j], &gs.Elements[j]
			if ge.Raw != e.Raw || ge.Length != e.Length || len(ge.Tokens) != len(e.Tokens) {
				t.Fatalf("set %d element %d differs: %+v vs %+v", i, j, ge, e)
			}
			for k := range e.Tokens {
				if gc.Dict.String(ge.Tokens[k]) != c.Dict.String(e.Tokens[k]) {
					t.Fatalf("set %d element %d token %d renamed", i, j, k)
				}
			}
			// Keys are re-interned, never NoKey for word mode.
			if ge.Key == NoKey {
				t.Fatalf("set %d element %d lost its key", i, j)
			}
		}
	}
	// The token table was pruned to live usage: the dead set's exclusive
	// words are gone.
	if _, ok := gc.Dict.Lookup("goes"); ok {
		t.Fatal("dead set's exclusive token survived pruning")
	}
	if _, ok := gc.Dict.Lookup("77"); !ok {
		t.Fatal("live token lost")
	}
	// Postings round-trip: same per-token multiset of (set, elem) pairs,
	// modulo the token renumbering — compare via token strings. v2 keeps
	// them as lazy containers; DecodePostings materializes and validates.
	if got.Containers == nil {
		t.Fatal("postings not persisted")
	}
	gotPostings, err := got.DecodePostings()
	if err != nil {
		t.Fatal(err)
	}
	for old, list := range snap.Postings {
		if len(list) == 0 {
			continue
		}
		word := c.Dict.String(tokens.ID(old))
		nid, ok := gc.Dict.Lookup(word)
		if !ok {
			t.Fatalf("token %q missing after load", word)
		}
		glist := gotPostings[nid]
		if len(glist) != len(list) {
			t.Fatalf("token %q list length %d, want %d", word, len(glist), len(list))
		}
		for k := range list {
			if glist[k] != list[k] {
				t.Fatalf("token %q posting %d = %+v, want %+v", word, k, glist[k], list[k])
			}
		}
	}
}

func TestSnapshotRoundTripQGramNoPostings(t *testing.T) {
	dict := tokens.NewDictionary()
	c := BuildQGram(dict, []RawSet{
		{Name: "A", Elements: []string{"Database", "Systems"}},
	}, 3)
	snap := &SnapshotData{Coll: c}
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasPostings() {
		t.Fatal("postings materialized from a snapshot without them")
	}
	gc := got.Coll
	if gc.Mode != ModeQGram || gc.Q != 3 {
		t.Fatalf("mode/q = %v/%d", gc.Mode, gc.Q)
	}
	for j := range c.Sets[0].Elements {
		e, ge := &c.Sets[0].Elements[j], &gc.Sets[0].Elements[j]
		if ge.Raw != e.Raw || ge.Length != e.Length ||
			len(ge.Tokens) != len(e.Tokens) || len(ge.Chunks) != len(e.Chunks) {
			t.Fatalf("element %d shape differs", j)
		}
		for k := range e.Chunks {
			if gc.Dict.String(ge.Chunks[k]) != c.Dict.String(e.Chunks[k]) {
				t.Fatalf("element %d chunk %d renamed", j, k)
			}
		}
	}
}

// A snapshot from a future format version must be rejected with the typed
// error, not misparsed.
func TestSnapshotFutureVersion(t *testing.T) {
	snap := buildSnapshotFixture()
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(snapshotMagic)] = snapshotVersion + 1
	_, err := LoadSnapshot(bytes.NewReader(data))
	var uve *UnsupportedVersionError
	if !errors.As(err, &uve) {
		t.Fatalf("future version: got %v, want UnsupportedVersionError", err)
	}
	if uve.Format != "snapshot" || uve.Version != snapshotVersion+1 || uve.Supported != snapshotVersion {
		t.Fatalf("error fields %+v", uve)
	}
}

// Every single-byte flip of a valid snapshot must fail cleanly (the CRC
// per section guarantees detection for payload bytes; header corruption
// fails structurally), never panic, and never load successfully unless the
// flip is in a checksum byte itself... which still mismatches. A full
// sweep is the fuzz target's job; this pins a few strategic offsets.
func TestSnapshotCorruptionDetected(t *testing.T) {
	snap := buildSnapshotFixture()
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for _, off := range []int{0, 5, len(snapshotMagic) + 1, len(valid) / 2, len(valid) - 1} {
		data := append([]byte(nil), valid...)
		data[off] ^= 0xFF
		if _, err := LoadSnapshot(bytes.NewReader(data)); err == nil {
			t.Errorf("flip at %d loaded successfully", off)
		}
	}
	// Truncations at every length must also fail cleanly.
	for cut := 0; cut < len(valid); cut += 7 {
		if _, err := LoadSnapshot(bytes.NewReader(valid[:cut])); err == nil {
			t.Errorf("truncation to %d bytes loaded successfully", cut)
		}
	}
}
