package dataset

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// fuzzElemBase is the fixed element-id space container fuzzing decodes
// against: 64 sets of 16 elements.
func fuzzElemBase() []int32 {
	return synthElemBase(64, 16)
}

// FuzzPostingContainer: arbitrary bytes fed to every container entry point
// must produce an error or a valid list — never a panic, and never an
// allocation driven by an unvalidated length field. When the blob does
// decode, re-encoding the decoded postings must reproduce it byte for byte
// (the decoder enforces canonical form).
func FuzzPostingContainer(f *testing.F) {
	eb := fuzzElemBase()
	rng := rand.New(rand.NewSource(1))
	var enc ContainerEncoder
	// One valid seed per container kind, plus malformed scraps.
	f.Add(enc.Append(nil, []Posting{{Set: 3, Elem: 2}, {Set: 9, Elem: 0}}, eb))
	f.Add(enc.Append(nil, randPostings(rng, eb, 0.08), eb))
	f.Add(enc.Append(nil, randPostings(rng, eb, 0.9), eb))
	f.Add([]byte{})
	f.Add([]byte{ContainerPacked, 0x80, 0x02, 0x03})
	f.Add([]byte{ContainerBitmap, 0x40, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, blob []byte) {
		pl := NewPostingList(blob, eb)
		list, err := pl.Materialize(nil)
		if err != nil {
			// Malformed blobs must also fail (or at least not panic) via
			// the seek paths.
			_, _ = pl.SetRange(5, nil)
			_, _ = pl.IntersectInto(nil, []int32{1, 5, 63})
			return
		}
		if len(blob) > 0 && len(list) == 0 {
			t.Fatal("non-empty blob decoded to empty list")
		}
		// Decoded postings are sorted, unique, in range.
		for i, p := range list {
			if int(p.Set) >= len(eb)-1 || p.Set < 0 || p.Elem < 0 || p.Elem >= eb[p.Set+1]-eb[p.Set] {
				t.Fatalf("posting %d out of range: %+v", i, p)
			}
			if i > 0 && (p.Set < list[i-1].Set || (p.Set == list[i-1].Set && p.Elem <= list[i-1].Elem)) {
				t.Fatalf("postings out of order at %d", i)
			}
		}
		// Canonical form: decode→encode is byte-stable.
		var enc ContainerEncoder
		again := enc.Append(nil, list, eb)
		if !bytes.Equal(again, blob) {
			t.Fatalf("re-encode differs: %d bytes vs %d", len(again), len(blob))
		}
		// The seek entry points must agree with the materialized list.
		for _, set := range []int32{0, 5, 31, 63, 64, 100} {
			var want []Posting
			for _, p := range list {
				if p.Set == set {
					want = append(want, p)
				}
			}
			got, err := pl.SetRange(set, nil)
			if err != nil {
				t.Fatalf("SetRange(%d) on valid blob: %v", set, err)
			}
			if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("SetRange(%d) mismatch", set)
			}
		}
	})
}

// FuzzPostingContainerEncode: any sorted unique posting list must survive
// encode→decode→encode byte-stably, for every container kind the adaptive
// encoder can choose.
func FuzzPostingContainerEncode(f *testing.F) {
	f.Add(int64(1), 10, false)
	f.Add(int64(2), 300, false)
	f.Add(int64(3), 800, true)
	f.Fuzz(func(t *testing.T, seed int64, n int, forcePacked bool) {
		if n < 0 || n > 1024 {
			return
		}
		eb := fuzzElemBase()
		rng := rand.New(rand.NewSource(seed))
		total := int(eb[len(eb)-1])
		if n > total {
			n = total
		}
		// n distinct global ids, sorted — i.e. a valid posting list.
		perm := rng.Perm(total)[:n]
		ids := append([]int(nil), perm...)
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		list := make([]Posting, 0, n)
		set := int32(0)
		for _, id := range ids {
			for int(eb[set+1]) <= id {
				set++
			}
			list = append(list, Posting{Set: set, Elem: int32(id - int(eb[set]))})
		}
		encodeEB := eb
		if forcePacked {
			encodeEB = nil
		}
		var enc ContainerEncoder
		blob := enc.Append(nil, list, encodeEB)
		got, err := NewPostingList(blob, eb).Materialize(nil)
		if err != nil {
			t.Fatalf("decode of fresh encoding: %v", err)
		}
		if len(list) > 0 && !reflect.DeepEqual(got, list) {
			t.Fatalf("decode mismatch: %d vs %d postings", len(got), len(list))
		}
		again := enc.Append(nil, got, encodeEB)
		if !bytes.Equal(again, blob) {
			t.Fatalf("re-encode not byte-stable (%d vs %d bytes)", len(again), len(blob))
		}
	})
}
