package dataset

import "fmt"

// Stats summarizes a collection the way the paper's Table 3 does.
type Stats struct {
	NumSets        int
	NumElements    int
	DistinctTokens int
	ElemsPerSet    float64 // mean elements per set
	TokensPerElem  float64 // mean index tokens per element
	MaxSetSize     int
	MinSetSize     int
}

// ComputeStats scans the collection and returns its summary statistics.
func ComputeStats(c *Collection) Stats {
	st := Stats{NumSets: len(c.Sets), DistinctTokens: c.Dict.Size()}
	if len(c.Sets) == 0 {
		return st
	}
	st.MinSetSize = c.Sets[0].Size()
	totalTokens := 0
	for i := range c.Sets {
		s := &c.Sets[i]
		n := s.Size()
		st.NumElements += n
		if n > st.MaxSetSize {
			st.MaxSetSize = n
		}
		if n < st.MinSetSize {
			st.MinSetSize = n
		}
		for j := range s.Elements {
			totalTokens += len(s.Elements[j].Tokens)
		}
	}
	st.ElemsPerSet = float64(st.NumElements) / float64(st.NumSets)
	if st.NumElements > 0 {
		st.TokensPerElem = float64(totalTokens) / float64(st.NumElements)
	}
	return st
}

// String renders the statistics as a single report line.
func (st Stats) String() string {
	return fmt.Sprintf("sets=%d elements=%d elems/set=%.1f tokens/elem=%.1f distinct-tokens=%d set-size=[%d,%d]",
		st.NumSets, st.NumElements, st.ElemsPerSet, st.TokensPerElem, st.DistinctTokens, st.MinSetSize, st.MaxSetSize)
}
