package dataset

import (
	"bytes"
	"testing"

	"silkmoth/internal/binenc"
	"silkmoth/internal/tokens"
)

// writeSnapshotV1 emits a version-1 snapshot image (delta-varint posting
// streams, eagerly decoded on load) for a collection with no dead slots
// and every token in use, so the save-side token remap is the identity.
// SaveSnapshot only writes the current version; old DataDirs still hold
// v1 files, and this pins that they stay readable.
func writeSnapshotV1(t *testing.T, c *Collection, lists [][]Posting) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	buf.WriteByte(snapshotVersionV1)

	var meta binenc.Writer
	meta.Uint(int(c.Mode))
	meta.Uint(c.Q)
	meta.Uint(len(c.Sets))
	meta.Uint(c.Dict.Size())
	meta.Byte(1)
	if err := writeSection(&buf, secMeta, meta.Bytes()); err != nil {
		t.Fatal(err)
	}

	var dict binenc.Writer
	for i := 0; i < c.Dict.Size(); i++ {
		dict.String(c.Dict.String(tokens.ID(i)))
	}
	if err := writeSection(&buf, secDict, dict.Bytes()); err != nil {
		t.Fatal(err)
	}

	var sets binenc.Writer
	for i := range c.Sets {
		sets.Byte(1)
		s := &c.Sets[i]
		sets.String(s.Name)
		sets.Uint(len(s.Elements))
		for j := range s.Elements {
			e := &s.Elements[j]
			sets.String(e.Raw)
			sets.Uint(len(e.Tokens))
			prev := int32(0)
			for _, id := range e.Tokens {
				sets.Uint(int(int32(id) - prev))
				prev = int32(id)
			}
			sets.Uint(len(e.Chunks))
			for _, id := range e.Chunks {
				sets.Uint(int(id))
			}
			sets.Uint(e.Length)
		}
	}
	if err := writeSection(&buf, secSets, sets.Bytes()); err != nil {
		t.Fatal(err)
	}

	var post binenc.Writer
	for tok := 0; tok < c.Dict.Size(); tok++ {
		var list []Posting
		if tok < len(lists) {
			list = lists[tok]
		}
		post.Uint(len(list))
		prevSet := int32(0)
		for _, p := range list {
			post.Uint(int(p.Set - prevSet))
			post.Uint(int(p.Elem))
			prevSet = p.Set
		}
	}
	if err := writeSection(&buf, secPostings, post.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := writeSection(&buf, secEnd, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotV1StillLoads(t *testing.T) {
	dict := tokens.NewDictionary()
	c := BuildWord(dict, []RawSet{
		{Name: "A", Elements: []string{"77 Mass Ave", "5th St"}},
		{Name: "B", Elements: []string{"77 5th St Chicago"}},
	})
	lists := make([][]Posting, dict.Size())
	for i := range c.Sets {
		for j := range c.Sets[i].Elements {
			for _, tok := range c.Sets[i].Elements[j].Tokens {
				lists[tok] = append(lists[tok], Posting{Set: int32(i), Elem: int32(j)})
			}
		}
	}
	data := writeSnapshotV1(t, c, lists)

	got, err := LoadSnapshotBytes(data)
	if err != nil {
		t.Fatalf("loading v1 snapshot: %v", err)
	}
	if got.Containers != nil {
		t.Fatal("v1 load produced a container store")
	}
	if got.Postings == nil {
		t.Fatal("v1 postings not materialized")
	}
	gc := got.Coll
	if len(gc.Sets) != 2 || gc.Dict.Size() != dict.Size() {
		t.Fatalf("v1 collection shape: %d sets, %d words", len(gc.Sets), gc.Dict.Size())
	}
	for tok, want := range lists {
		gotList := got.Postings[tok]
		if len(gotList) != len(want) {
			t.Fatalf("token %d: %d postings, want %d", tok, len(gotList), len(want))
		}
		for k := range want {
			if gotList[k] != want[k] {
				t.Fatalf("token %d posting %d differs", tok, k)
			}
		}
	}

	// A v1 image saved again comes back as v2 with identical postings.
	var out bytes.Buffer
	if err := SaveSnapshot(&out, got); err != nil {
		t.Fatal(err)
	}
	again, err := LoadSnapshot(&out)
	if err != nil {
		t.Fatal(err)
	}
	if again.Containers == nil {
		t.Fatal("re-save did not produce v2 containers")
	}
	rl, err := again.DecodePostings()
	if err != nil {
		t.Fatal(err)
	}
	for tok, want := range lists {
		word := c.Dict.String(tokens.ID(tok))
		nid, ok := again.Coll.Dict.Lookup(word)
		if !ok {
			t.Fatalf("token %q lost", word)
		}
		gotList := rl[nid]
		if len(gotList) != len(want) {
			t.Fatalf("token %q: %d postings, want %d", word, len(gotList), len(want))
		}
	}
}
