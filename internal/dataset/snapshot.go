package dataset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"silkmoth/internal/binenc"
	"silkmoth/internal/tokens"
)

// Posting locates one element occurrence of a token: element Elem of set
// Set in a collection. It is the canonical posting representation —
// index.Inverted aliases it — so a snapshot can carry inverted-index
// posting lists without this package importing the index.
type Posting struct {
	Set  int32
	Elem int32
}

// SnapshotData is the full durable image of an engine's logical state: the
// tokenized collection (dead slots as empty placeholders, preserving the
// runtime id space that WAL records reference), the tombstone bitmap, and
// optionally the inverted-index posting lists so a load rebuilds nothing.
type SnapshotData struct {
	Coll *Collection
	// Dead marks tombstoned slots; nil (or all-false) means every slot is
	// live. Saved snapshots are compacted images: dead slots persist with
	// no elements, name, or postings, only their index reservation.
	Dead []bool
	// Postings holds the inverted index by token id, filtered to live
	// sets. Nil means the snapshot carries no index (a sharded engine's
	// per-shard indexes are not meaningful globally) and the loader must
	// rebuild it from the collection — still with zero re-tokenization.
	Postings [][]Posting
}

// UnsupportedVersionError reports a persisted artifact written by a newer
// format version than this build can read.
type UnsupportedVersionError struct {
	Format    string // "collection" or "snapshot"
	Version   int
	Supported int
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("dataset: %s format version %d is newer than supported version %d",
		e.Format, e.Version, e.Supported)
}

// Snapshot wire format: an 8-byte magic, a format-version byte, then a
// fixed order of sections — meta, dictionary, sets, postings (only when
// meta says so), end. Each section is framed
//
//	[tag byte][uint32 LE payload length][payload][uint32 LE CRC32(payload)]
//
// so every byte of content is covered by a checksum and a reader can
// verify each section before trusting its lengths structurally.
const (
	snapshotMagic   = "SMOTHSNP"
	snapshotVersion = 1

	secMeta     = 0x01
	secDict     = 0x02
	secSets     = 0x03
	secPostings = 0x04
	secEnd      = 0xFF

	// maxSectionSize caps the declared length a reader accepts: a flipped
	// bit in a length field must bound at a read attempt, not a
	// multi-gigabyte allocation (reads themselves grow incrementally).
	maxSectionSize = 1 << 30
)

// ErrSnapshotCorrupt is the sentinel wrapped by snapshot decode failures.
var ErrSnapshotCorrupt = errors.New("dataset: corrupt snapshot")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrSnapshotCorrupt}, args...)...)
}

// SaveSnapshot writes snap to w in the versioned binary snapshot format.
// The image is compacted on the way out: dead slots are written as empty
// placeholders (keeping the id space intact for WAL replay), postings are
// filtered to live sets, and the token table is pruned — and renumbered
// monotonically, preserving sorted-token invariants — to what live sets
// reference.
func SaveSnapshot(w io.Writer, snap *SnapshotData) error {
	c := snap.Coll
	alive := func(i int) bool { return i >= len(snap.Dead) || !snap.Dead[i] }

	// Prune and monotonically renumber the token table, exactly like the
	// compacted collection save.
	used := make([]bool, c.Dict.Size())
	for i := range c.Sets {
		if !alive(i) {
			continue
		}
		for j := range c.Sets[i].Elements {
			e := &c.Sets[i].Elements[j]
			for _, id := range e.Tokens {
				used[id] = true
			}
			for _, id := range e.Chunks {
				used[id] = true
			}
		}
	}
	remap := make([]int32, len(used))
	var words []string
	for old, u := range used {
		if u {
			remap[old] = int32(len(words))
			words = append(words, c.Dict.String(tokens.ID(old)))
		}
	}

	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{snapshotVersion}); err != nil {
		return err
	}

	var meta binenc.Writer
	meta.Uint(int(c.Mode))
	meta.Uint(c.Q)
	meta.Uint(len(c.Sets))
	meta.Uint(len(words))
	if snap.Postings != nil {
		meta.Byte(1)
	} else {
		meta.Byte(0)
	}
	if err := writeSection(w, secMeta, meta.Bytes()); err != nil {
		return err
	}

	var dict binenc.Writer
	for _, word := range words {
		dict.String(word)
	}
	if err := writeSection(w, secDict, dict.Bytes()); err != nil {
		return err
	}

	var sets binenc.Writer
	for i := range c.Sets {
		if !alive(i) {
			sets.Byte(0)
			continue
		}
		sets.Byte(1)
		s := &c.Sets[i]
		sets.String(s.Name)
		sets.Uint(len(s.Elements))
		for j := range s.Elements {
			e := &s.Elements[j]
			sets.String(e.Raw)
			sets.Uint(len(e.Tokens))
			prev := int32(0)
			for _, id := range e.Tokens {
				nid := remap[id]
				sets.Uint(int(nid - prev)) // sorted strictly ascending
				prev = nid
			}
			sets.Uint(len(e.Chunks))
			for _, id := range e.Chunks {
				sets.Uint(int(remap[id]))
			}
			sets.Uint(e.Length)
		}
	}
	if err := writeSection(w, secSets, sets.Bytes()); err != nil {
		return err
	}

	if snap.Postings != nil {
		var post binenc.Writer
		for old, u := range used {
			if !u {
				continue
			}
			var list []Posting
			if old < len(snap.Postings) {
				list = snap.Postings[old]
			}
			n := 0
			for _, p := range list {
				if alive(int(p.Set)) {
					n++
				}
			}
			post.Uint(n)
			prevSet := int32(0)
			for _, p := range list {
				if !alive(int(p.Set)) {
					continue
				}
				post.Uint(int(p.Set - prevSet)) // sorted by Set, ascending
				post.Uint(int(p.Elem))
				prevSet = p.Set
			}
		}
		if err := writeSection(w, secPostings, post.Bytes()); err != nil {
			return err
		}
	}

	return writeSection(w, secEnd, nil)
}

func writeSection(w io.Writer, tag byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = tag
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(sum[:])
	return err
}

// readSection reads the next section frame, verifying its checksum. The
// declared length is capped and the payload is read incrementally, so a
// hostile length field costs a failed read, not an allocation.
func readSection(r io.Reader) (tag byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, corrupt("truncated section header: %v", err)
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > maxSectionSize {
		return 0, nil, corrupt("section length %d exceeds cap", n)
	}
	payload, err = io.ReadAll(io.LimitReader(r, int64(n)))
	if err != nil {
		return 0, nil, corrupt("reading section payload: %v", err)
	}
	if uint32(len(payload)) != n {
		return 0, nil, corrupt("truncated section payload (%d of %d bytes)", len(payload), n)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return 0, nil, corrupt("truncated section checksum: %v", err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc32.ChecksumIEEE(payload) {
		return 0, nil, corrupt("section 0x%02x checksum mismatch", hdr[0])
	}
	return hdr[0], payload, nil
}

func expectSection(r io.Reader, want byte) ([]byte, error) {
	tag, payload, err := readSection(r)
	if err != nil {
		return nil, err
	}
	if tag != want {
		return nil, corrupt("expected section 0x%02x, found 0x%02x", want, tag)
	}
	return payload, nil
}

// LoadSnapshot reads a snapshot written by SaveSnapshot. The returned
// collection owns a fresh dictionary rebuilt from the persisted token
// table; element keys are re-interned (a dictionary operation, not a
// tokenization), and no element string is ever re-tokenized.
func LoadSnapshot(r io.Reader) (*SnapshotData, error) {
	var hdr [len(snapshotMagic) + 1]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, corrupt("truncated header: %v", err)
	}
	if string(hdr[:len(snapshotMagic)]) != snapshotMagic {
		return nil, corrupt("bad magic %q", hdr[:len(snapshotMagic)])
	}
	if v := int(hdr[len(snapshotMagic)]); v != snapshotVersion {
		if v > snapshotVersion {
			return nil, &UnsupportedVersionError{Format: "snapshot", Version: v, Supported: snapshotVersion}
		}
		return nil, corrupt("unknown snapshot version %d", v)
	}

	metaPayload, err := expectSection(r, secMeta)
	if err != nil {
		return nil, err
	}
	meta := binenc.NewReader(metaPayload)
	mode := TokenMode(meta.Uint())
	q := meta.Uint()
	numSets := meta.Uint()
	numWords := meta.Uint()
	hasPostings := meta.Byte()
	if err := meta.Err(); err != nil {
		return nil, corrupt("meta: %v", err)
	}
	if mode != ModeWord && mode != ModeQGram {
		return nil, corrupt("unknown token mode %d", mode)
	}
	if hasPostings > 1 {
		return nil, corrupt("bad postings flag %d", hasPostings)
	}

	dictPayload, err := expectSection(r, secDict)
	if err != nil {
		return nil, err
	}
	dr := binenc.NewReader(dictPayload)
	if numWords > dr.Remaining() { // each word costs ≥ 1 byte (its length)
		return nil, corrupt("word count %d exceeds dictionary payload", numWords)
	}
	dict := tokens.NewDictionary()
	for i := 0; i < numWords; i++ {
		word := dr.String()
		if err := dr.Err(); err != nil {
			return nil, corrupt("dictionary: %v", err)
		}
		if id := dict.Intern(word); int(id) != i {
			return nil, corrupt("token table duplicate %q at %d", word, i)
		}
	}
	if dr.Remaining() != 0 {
		return nil, corrupt("%d trailing dictionary bytes", dr.Remaining())
	}

	setsPayload, err := expectSection(r, secSets)
	if err != nil {
		return nil, err
	}
	sr := binenc.NewReader(setsPayload)
	if numSets > sr.Remaining() { // each slot costs ≥ 1 byte (its flag)
		return nil, corrupt("set count %d exceeds sets payload", numSets)
	}
	c := &Collection{Dict: dict, Mode: mode, Q: q, Sets: make([]Set, numSets)}
	var dead []bool
	var keyBuf []byte
	for i := 0; i < numSets; i++ {
		switch sr.Byte() {
		case 0:
			if dead == nil {
				dead = make([]bool, numSets)
			}
			dead[i] = true
			continue
		case 1:
		default:
			if err := sr.Err(); err != nil {
				return nil, corrupt("sets: %v", err)
			}
			return nil, corrupt("bad liveness flag for set %d", i)
		}
		s := Set{Name: sr.String()}
		ne := sr.Count(2) // each element costs ≥ 2 bytes (raw len + token count)
		if err := sr.Err(); err != nil {
			return nil, corrupt("set %d: %v", i, err)
		}
		s.Elements = make([]Element, ne)
		for j := 0; j < ne; j++ {
			e := &s.Elements[j]
			e.Raw = sr.String()
			nt := sr.Count(1)
			if err := sr.Err(); err != nil {
				return nil, corrupt("set %d element %d: %v", i, j, err)
			}
			e.Tokens = make([]tokens.ID, nt)
			id := int32(0)
			for k := 0; k < nt; k++ {
				id += int32(sr.Uint())
				if sr.Err() == nil && (int(id) >= numWords || id < 0) {
					return nil, corrupt("set %d element %d token id %d out of range", i, j, id)
				}
				e.Tokens[k] = tokens.ID(id)
			}
			nc := sr.Count(1)
			if err := sr.Err(); err != nil {
				return nil, corrupt("set %d element %d: %v", i, j, err)
			}
			e.Chunks = make([]tokens.ID, 0, nc)
			for k := 0; k < nc; k++ {
				cid := sr.Uint()
				if sr.Err() == nil && cid >= numWords {
					return nil, corrupt("set %d element %d chunk id %d out of range", i, j, cid)
				}
				e.Chunks = append(e.Chunks, tokens.ID(cid))
			}
			if len(e.Chunks) == 0 {
				e.Chunks = nil
			}
			e.Length = sr.Uint()
			if err := sr.Err(); err != nil {
				return nil, corrupt("set %d element %d: %v", i, j, err)
			}
			// Keys are derived, never persisted: re-intern against the
			// fresh dictionary (no tokenization happens here).
			e.Key, keyBuf = internKeyBuf(dict, e, mode, keyBuf)
		}
		c.Sets[i] = s
	}
	if sr.Remaining() != 0 {
		return nil, corrupt("%d trailing set bytes", sr.Remaining())
	}

	snap := &SnapshotData{Coll: c, Dead: dead}
	if hasPostings == 1 {
		postPayload, err := expectSection(r, secPostings)
		if err != nil {
			return nil, err
		}
		pr := binenc.NewReader(postPayload)
		lists := make([][]Posting, numWords)
		for t := 0; t < numWords; t++ {
			n := pr.Count(2) // each posting costs ≥ 2 bytes
			if err := pr.Err(); err != nil {
				return nil, corrupt("postings for token %d: %v", t, err)
			}
			if n == 0 {
				continue
			}
			list := make([]Posting, n)
			set := int32(0)
			for k := 0; k < n; k++ {
				set += int32(pr.Uint())
				elem := pr.Uint()
				if err := pr.Err(); err != nil {
					return nil, corrupt("postings for token %d: %v", t, err)
				}
				if int(set) >= numSets || set < 0 {
					return nil, corrupt("posting set %d out of range for token %d", set, t)
				}
				if dead != nil && dead[set] {
					return nil, corrupt("posting references dead set %d", set)
				}
				if elem >= len(c.Sets[set].Elements) {
					return nil, corrupt("posting element %d out of range for set %d", elem, set)
				}
				list[k] = Posting{Set: set, Elem: int32(elem)}
			}
			lists[t] = list
		}
		if pr.Remaining() != 0 {
			return nil, corrupt("%d trailing posting bytes", pr.Remaining())
		}
		snap.Postings = lists
	}

	if _, err := expectSection(r, secEnd); err != nil {
		return nil, err
	}
	return snap, nil
}
