package dataset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"silkmoth/internal/binenc"
	"silkmoth/internal/tokens"
)

// Posting locates one element occurrence of a token: element Elem of set
// Set in a collection. It is the canonical posting representation —
// index.Inverted aliases it — so a snapshot can carry inverted-index
// posting lists without this package importing the index.
type Posting struct {
	Set  int32
	Elem int32
}

// PostingProvider is the save-side source of posting lists. The index
// implements it so SaveSnapshot can copy still-exact encoded containers
// verbatim — no decode, no re-encode — and fall back to materialized
// postings only where the encoded form is stale or absent.
type PostingProvider interface {
	// NumTokens returns the number of token slots.
	NumTokens() int
	// EncodedContainer returns token t's posting list as an encoded
	// container blob when that blob is still exact (no overlay of
	// unflushed appends, no materialized-only list), or false.
	EncodedContainer(t int) ([]byte, bool)
	// AppendPostings appends token t's postings to dst in (Set, Elem)
	// order.
	AppendPostings(t int, dst []Posting) []Posting
}

// SnapshotData is the full durable image of an engine's logical state: the
// tokenized collection (dead slots as empty placeholders, preserving the
// runtime id space that WAL records reference), the tombstone bitmap, and
// optionally the inverted-index posting lists so a load rebuilds nothing.
type SnapshotData struct {
	Coll *Collection
	// Dead marks tombstoned slots; nil (or all-false) means every slot is
	// live. Saved snapshots are compacted images: dead slots persist with
	// no elements, name, or postings, only their index reservation.
	Dead []bool
	// Postings holds materialized posting lists by token id. On save it
	// is one possible source (see Source); LoadSnapshot no longer fills
	// it — decode Containers lazily, or call DecodePostings.
	Postings [][]Posting
	// Containers is the postings section viewed in place: token-indexed
	// encoded container blobs, possibly aliasing a memory-mapped file.
	// Set by LoadSnapshot(Bytes) when the snapshot carries postings.
	Containers *ContainerStore
	// Source, when non-nil, supplies postings on save (it wins over
	// Postings and Containers). Typically the live inverted index.
	Source PostingProvider
}

// HasPostings reports whether the snapshot carries an index image.
func (sd *SnapshotData) HasPostings() bool {
	return sd.Source != nil || sd.Postings != nil || sd.Containers != nil
}

// DecodePostings materializes every posting list from Containers (or
// returns Postings as-is when already materialized). Each container is
// fully validated; a decode error means the snapshot is corrupt.
func (sd *SnapshotData) DecodePostings() ([][]Posting, error) {
	if sd.Postings != nil || sd.Containers == nil {
		return sd.Postings, nil
	}
	eb := ElemBase(sd.Coll)
	lists := make([][]Posting, sd.Containers.NumTokens())
	for t := range lists {
		blob := sd.Containers.Blob(t)
		if len(blob) == 0 {
			continue
		}
		l, err := NewPostingList(blob, eb).Materialize(nil)
		if err != nil {
			return nil, corrupt("postings for token %d: %v", t, err)
		}
		lists[t] = l
	}
	return lists, nil
}

// UnsupportedVersionError reports a persisted artifact written by a newer
// format version than this build can read.
type UnsupportedVersionError struct {
	Format    string // "collection" or "snapshot"
	Version   int
	Supported int
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("dataset: %s format version %d is newer than supported version %d",
		e.Format, e.Version, e.Supported)
}

// Snapshot wire format: an 8-byte magic, a format-version byte, then a
// fixed order of sections — meta, dictionary, sets, postings (only when
// meta says so), end. Each section is framed
//
//	[tag byte][uint32 LE payload length][payload][uint32 LE CRC32(payload)]
//
// so every byte of content is covered by a checksum and a reader can
// verify each section before trusting its lengths structurally.
//
// Version 1 stored postings as one delta-varint stream per token, decoded
// eagerly. Version 2 stores the postings section as adaptive container
// blobs behind a fixed-width offset table:
//
//	[uvarint numTokens]
//	[(numTokens+1) × uint32 LE blob offsets]
//	[concatenated container blobs — see plist.go]
//
// which a loader can hand to the index as in-place byte views (the file
// may stay memory-mapped): resolving one token's blob is O(1), and a blob
// is decoded only on first probe. Version 1 snapshots remain readable.
const (
	snapshotMagic     = "SMOTHSNP"
	snapshotVersion   = 2
	snapshotVersionV1 = 1

	secMeta     = 0x01
	secDict     = 0x02
	secSets     = 0x03
	secPostings = 0x04
	secEnd      = 0xFF

	// maxSectionSize caps the declared length a reader accepts: a flipped
	// bit in a length field must bound at a read attempt, not a
	// multi-gigabyte allocation (payloads are validated against the bytes
	// actually present).
	maxSectionSize = 1 << 30
)

// ErrSnapshotCorrupt is the sentinel wrapped by snapshot decode failures.
var ErrSnapshotCorrupt = errors.New("dataset: corrupt snapshot")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrSnapshotCorrupt}, args...)...)
}

// listsProvider adapts materialized [][]Posting to PostingProvider.
type listsProvider struct{ lists [][]Posting }

func (p listsProvider) NumTokens() int                      { return len(p.lists) }
func (p listsProvider) EncodedContainer(int) ([]byte, bool) { return nil, false }
func (p listsProvider) AppendPostings(t int, dst []Posting) []Posting {
	if t < len(p.lists) {
		return append(dst, p.lists[t]...)
	}
	return dst
}

// containerProvider adapts a loaded ContainerStore to PostingProvider
// (used when re-saving a loaded snapshot without an index).
type containerProvider struct {
	cs *ContainerStore
	eb []int32
}

func (p containerProvider) NumTokens() int { return p.cs.NumTokens() }
func (p containerProvider) EncodedContainer(t int) ([]byte, bool) {
	return p.cs.Blob(t), true
}
func (p containerProvider) AppendPostings(t int, dst []Posting) []Posting {
	out, err := NewPostingList(p.cs.Blob(t), p.eb).Materialize(dst)
	if err != nil {
		return dst
	}
	return out
}

// SaveSnapshot writes snap to w in the versioned binary snapshot format.
// The image is compacted on the way out: dead slots are written as empty
// placeholders (keeping the id space intact for WAL replay), postings are
// filtered to live sets, and the token table is pruned — and renumbered
// monotonically, preserving sorted-token invariants — to what live sets
// reference. Container blobs are reused verbatim from the provider
// whenever they are still exact, so re-saving an unmutated compressed
// index copies bytes instead of re-encoding.
func SaveSnapshot(w io.Writer, snap *SnapshotData) error {
	c := snap.Coll
	alive := func(i int) bool { return i >= len(snap.Dead) || !snap.Dead[i] }

	// Prune and monotonically renumber the token table, exactly like the
	// compacted collection save.
	used := make([]bool, c.Dict.Size())
	for i := range c.Sets {
		if !alive(i) {
			continue
		}
		for j := range c.Sets[i].Elements {
			e := &c.Sets[i].Elements[j]
			for _, id := range e.Tokens {
				used[id] = true
			}
			for _, id := range e.Chunks {
				used[id] = true
			}
		}
	}
	remap := make([]int32, len(used))
	var words []string
	for old, u := range used {
		if u {
			remap[old] = int32(len(words))
			words = append(words, c.Dict.String(tokens.ID(old)))
		}
	}

	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{snapshotVersion}); err != nil {
		return err
	}

	hasPostings := snap.HasPostings()
	var meta binenc.Writer
	meta.Uint(int(c.Mode))
	meta.Uint(c.Q)
	meta.Uint(len(c.Sets))
	meta.Uint(len(words))
	if hasPostings {
		meta.Byte(1)
	} else {
		meta.Byte(0)
	}
	if err := writeSection(w, secMeta, meta.Bytes()); err != nil {
		return err
	}

	var dict binenc.Writer
	for _, word := range words {
		dict.String(word)
	}
	if err := writeSection(w, secDict, dict.Bytes()); err != nil {
		return err
	}

	var sets binenc.Writer
	for i := range c.Sets {
		if !alive(i) {
			sets.Byte(0)
			continue
		}
		sets.Byte(1)
		s := &c.Sets[i]
		sets.String(s.Name)
		sets.Uint(len(s.Elements))
		for j := range s.Elements {
			e := &s.Elements[j]
			sets.String(e.Raw)
			sets.Uint(len(e.Tokens))
			prev := int32(0)
			for _, id := range e.Tokens {
				nid := remap[id]
				sets.Uint(int(nid - prev)) // sorted strictly ascending
				prev = nid
			}
			sets.Uint(len(e.Chunks))
			for _, id := range e.Chunks {
				sets.Uint(int(remap[id]))
			}
			sets.Uint(e.Length)
		}
	}
	if err := writeSection(w, secSets, sets.Bytes()); err != nil {
		return err
	}

	if hasPostings {
		payload, err := encodePostingsSection(snap, used, len(words), alive)
		if err != nil {
			return err
		}
		if err := writeSection(w, secPostings, payload); err != nil {
			return err
		}
	}

	return writeSection(w, secEnd, nil)
}

// encodePostingsSection builds the v2 postings payload: container blobs in
// remapped token order behind an offset table. Blobs carry no token ids,
// so a still-exact container can be copied verbatim even though the token
// table is renumbered.
func encodePostingsSection(snap *SnapshotData, used []bool, numTok int, alive func(int) bool) ([]byte, error) {
	c := snap.Coll
	src := snap.Source
	if src == nil {
		if snap.Postings != nil {
			src = listsProvider{snap.Postings}
		} else {
			src = containerProvider{cs: snap.Containers, eb: ElemBase(c)}
		}
	}

	// Verbatim blob reuse is sound only when the save-side element-id
	// space equals the live one a provider's containers were encoded
	// against: every dead slot must already hold zero elements
	// (tombstoned-but-uncompacted sets still carry elements the save
	// filters out, shifting the id space).
	verbatimOK := true
	for i := range c.Sets {
		if !alive(i) && len(c.Sets[i].Elements) > 0 {
			verbatimOK = false
			break
		}
	}
	saveEB := make([]int32, len(c.Sets)+1)
	for i := range c.Sets {
		n := 0
		if alive(i) {
			n = len(c.Sets[i].Elements)
		}
		saveEB[i+1] = saveEB[i] + int32(n)
	}

	b := NewContainerStoreBuilder(numTok)
	var scratch []Posting
	for old, u := range used {
		if !u {
			continue
		}
		if verbatimOK {
			if blob, ok := src.EncodedContainer(old); ok {
				b.AddBlob(blob)
				continue
			}
		}
		scratch = src.AppendPostings(old, scratch[:0])
		k := 0
		for _, p := range scratch {
			if alive(int(p.Set)) {
				scratch[k] = p
				k++
			}
		}
		b.Add(scratch[:k], saveEB)
	}
	cs := b.Finish()

	payload := make([]byte, 0, uvarintLen(uint64(numTok))+len(cs.offs)+len(cs.data))
	payload = binary.AppendUvarint(payload, uint64(numTok))
	payload = append(payload, cs.offs...)
	payload = append(payload, cs.data...)
	return payload, nil
}

func writeSection(w io.Writer, tag byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = tag
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(sum[:])
	return err
}

// byteSections walks the section frames of an in-memory snapshot image,
// verifying each checksum. Payloads are subslices of the image — nothing
// is copied — so a loader over a memory-mapped file stays zero-copy.
type byteSections struct {
	rest []byte
}

func (r *byteSections) next() (tag byte, payload []byte, err error) {
	if len(r.rest) < 5 {
		return 0, nil, corrupt("truncated section header")
	}
	tag = r.rest[0]
	n := binary.LittleEndian.Uint32(r.rest[1:5])
	if n > maxSectionSize {
		return 0, nil, corrupt("section length %d exceeds cap", n)
	}
	if uint64(len(r.rest)) < 5+uint64(n)+4 {
		return 0, nil, corrupt("truncated section payload (%d of %d bytes)", len(r.rest)-5, n)
	}
	payload = r.rest[5 : 5+n]
	sum := binary.LittleEndian.Uint32(r.rest[5+n:])
	if sum != crc32.ChecksumIEEE(payload) {
		return 0, nil, corrupt("section 0x%02x checksum mismatch", tag)
	}
	r.rest = r.rest[9+n:]
	return tag, payload, nil
}

func (r *byteSections) expect(want byte) ([]byte, error) {
	tag, payload, err := r.next()
	if err != nil {
		return nil, err
	}
	if tag != want {
		return nil, corrupt("expected section 0x%02x, found 0x%02x", want, tag)
	}
	return payload, nil
}

// LoadSnapshot reads a snapshot written by SaveSnapshot from a stream. It
// buffers the stream and delegates to LoadSnapshotBytes; callers holding
// the image in memory (or mapped) should call LoadSnapshotBytes directly
// to stay zero-copy.
func LoadSnapshot(r io.Reader) (*SnapshotData, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, corrupt("reading snapshot: %v", err)
	}
	return LoadSnapshotBytes(data)
}

// LoadSnapshotBytes parses a snapshot image in place. The returned
// collection owns a fresh dictionary rebuilt from the persisted token
// table; element keys are re-interned (a dictionary operation, not a
// tokenization), and no element string is ever re-tokenized. The returned
// Containers view aliases data — the caller keeps the backing memory
// (heap buffer or mapping) alive for the life of the snapshot's users.
// Container blob contents are CRC-verified here and validated
// structurally on first decode.
func LoadSnapshotBytes(data []byte) (*SnapshotData, error) {
	if len(data) < len(snapshotMagic)+1 {
		return nil, corrupt("truncated header")
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, corrupt("bad magic %q", data[:len(snapshotMagic)])
	}
	version := int(data[len(snapshotMagic)])
	if version != snapshotVersion && version != snapshotVersionV1 {
		if version > snapshotVersion {
			return nil, &UnsupportedVersionError{Format: "snapshot", Version: version, Supported: snapshotVersion}
		}
		return nil, corrupt("unknown snapshot version %d", version)
	}
	r := &byteSections{rest: data[len(snapshotMagic)+1:]}

	metaPayload, err := r.expect(secMeta)
	if err != nil {
		return nil, err
	}
	meta := binenc.NewReader(metaPayload)
	mode := TokenMode(meta.Uint())
	q := meta.Uint()
	numSets := meta.Uint()
	numWords := meta.Uint()
	hasPostings := meta.Byte()
	if err := meta.Err(); err != nil {
		return nil, corrupt("meta: %v", err)
	}
	if mode != ModeWord && mode != ModeQGram {
		return nil, corrupt("unknown token mode %d", mode)
	}
	if hasPostings > 1 {
		return nil, corrupt("bad postings flag %d", hasPostings)
	}

	dictPayload, err := r.expect(secDict)
	if err != nil {
		return nil, err
	}
	dr := binenc.NewReader(dictPayload)
	if numWords > dr.Remaining() { // each word costs ≥ 1 byte (its length)
		return nil, corrupt("word count %d exceeds dictionary payload", numWords)
	}
	dict := tokens.NewDictionary()
	for i := 0; i < numWords; i++ {
		word := dr.String()
		if err := dr.Err(); err != nil {
			return nil, corrupt("dictionary: %v", err)
		}
		if id := dict.Intern(word); int(id) != i {
			return nil, corrupt("token table duplicate %q at %d", word, i)
		}
	}
	if dr.Remaining() != 0 {
		return nil, corrupt("%d trailing dictionary bytes", dr.Remaining())
	}

	setsPayload, err := r.expect(secSets)
	if err != nil {
		return nil, err
	}
	sr := binenc.NewReader(setsPayload)
	if numSets > sr.Remaining() { // each slot costs ≥ 1 byte (its flag)
		return nil, corrupt("set count %d exceeds sets payload", numSets)
	}
	c := &Collection{Dict: dict, Mode: mode, Q: q, Sets: make([]Set, numSets)}
	var dead []bool
	var keyBuf []byte
	for i := 0; i < numSets; i++ {
		switch sr.Byte() {
		case 0:
			if dead == nil {
				dead = make([]bool, numSets)
			}
			dead[i] = true
			continue
		case 1:
		default:
			if err := sr.Err(); err != nil {
				return nil, corrupt("sets: %v", err)
			}
			return nil, corrupt("bad liveness flag for set %d", i)
		}
		s := Set{Name: sr.String()}
		ne := sr.Count(2) // each element costs ≥ 2 bytes (raw len + token count)
		if err := sr.Err(); err != nil {
			return nil, corrupt("set %d: %v", i, err)
		}
		s.Elements = make([]Element, ne)
		for j := 0; j < ne; j++ {
			e := &s.Elements[j]
			e.Raw = sr.String()
			nt := sr.Count(1)
			if err := sr.Err(); err != nil {
				return nil, corrupt("set %d element %d: %v", i, j, err)
			}
			e.Tokens = make([]tokens.ID, nt)
			id := int32(0)
			for k := 0; k < nt; k++ {
				id += int32(sr.Uint())
				if sr.Err() == nil && (int(id) >= numWords || id < 0) {
					return nil, corrupt("set %d element %d token id %d out of range", i, j, id)
				}
				e.Tokens[k] = tokens.ID(id)
			}
			nc := sr.Count(1)
			if err := sr.Err(); err != nil {
				return nil, corrupt("set %d element %d: %v", i, j, err)
			}
			e.Chunks = make([]tokens.ID, 0, nc)
			for k := 0; k < nc; k++ {
				cid := sr.Uint()
				if sr.Err() == nil && cid >= numWords {
					return nil, corrupt("set %d element %d chunk id %d out of range", i, j, cid)
				}
				e.Chunks = append(e.Chunks, tokens.ID(cid))
			}
			if len(e.Chunks) == 0 {
				e.Chunks = nil
			}
			e.Length = sr.Uint()
			if err := sr.Err(); err != nil {
				return nil, corrupt("set %d element %d: %v", i, j, err)
			}
			// Keys are derived, never persisted: re-intern against the
			// fresh dictionary (no tokenization happens here).
			e.Key, keyBuf = internKeyBuf(dict, e, mode, keyBuf)
		}
		c.Sets[i] = s
	}
	if sr.Remaining() != 0 {
		return nil, corrupt("%d trailing set bytes", sr.Remaining())
	}

	snap := &SnapshotData{Coll: c, Dead: dead}
	if hasPostings == 1 {
		postPayload, err := r.expect(secPostings)
		if err != nil {
			return nil, err
		}
		if version == snapshotVersionV1 {
			lists, err := decodePostingsV1(postPayload, numWords, numSets, dead, c)
			if err != nil {
				return nil, err
			}
			snap.Postings = lists
		} else {
			cs, err := decodePostingsV2(postPayload, numWords)
			if err != nil {
				return nil, err
			}
			snap.Containers = cs
		}
	}

	if _, err := r.expect(secEnd); err != nil {
		return nil, err
	}
	if len(r.rest) != 0 {
		return nil, corrupt("%d trailing snapshot bytes", len(r.rest))
	}
	return snap, nil
}

// decodePostingsV2 wraps the container postings payload in place: a
// uvarint token count, the offset table, and the blob area, all validated
// structurally in O(numTokens) with zero decoding of blob contents.
func decodePostingsV2(payload []byte, numWords int) (*ContainerStore, error) {
	numTok, sz := binary.Uvarint(payload)
	if sz <= 0 || numTok != uint64(numWords) {
		return nil, corrupt("postings token count %d, want %d", numTok, numWords)
	}
	rest := payload[sz:]
	need := (numWords + 1) * 4
	if len(rest) < need {
		return nil, corrupt("postings offset table truncated")
	}
	cs, err := NewContainerStore(numWords, rest[:need], rest[need:])
	if err != nil {
		return nil, corrupt("postings: %v", err)
	}
	return cs, nil
}

// decodePostingsV1 decodes the version-1 postings payload: one
// delta-varint stream per token, eagerly materialized and validated.
func decodePostingsV1(payload []byte, numWords, numSets int, dead []bool, c *Collection) ([][]Posting, error) {
	pr := binenc.NewReader(payload)
	lists := make([][]Posting, numWords)
	for t := 0; t < numWords; t++ {
		n := pr.Count(2) // each posting costs ≥ 2 bytes
		if err := pr.Err(); err != nil {
			return nil, corrupt("postings for token %d: %v", t, err)
		}
		if n == 0 {
			continue
		}
		list := make([]Posting, n)
		set := int32(0)
		for k := 0; k < n; k++ {
			set += int32(pr.Uint())
			elem := pr.Uint()
			if err := pr.Err(); err != nil {
				return nil, corrupt("postings for token %d: %v", t, err)
			}
			if int(set) >= numSets || set < 0 {
				return nil, corrupt("posting set %d out of range for token %d", set, t)
			}
			if dead != nil && dead[set] {
				return nil, corrupt("posting references dead set %d", set)
			}
			if elem >= len(c.Sets[set].Elements) {
				return nil, corrupt("posting element %d out of range for set %d", elem, set)
			}
			list[k] = Posting{Set: set, Elem: int32(elem)}
		}
		lists[t] = list
	}
	if pr.Remaining() != 0 {
		return nil, corrupt("%d trailing posting bytes", pr.Remaining())
	}
	return lists, nil
}
