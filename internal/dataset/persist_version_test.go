package dataset

import (
	"bytes"
	"errors"
	"testing"

	"silkmoth/internal/tokens"
)

// The collection format opens with a magic + version byte. A file claiming
// a future version must be rejected with the typed error before any payload
// bytes are consumed; a file with the wrong magic must be rejected as
// not-a-collection.
func TestLoadCollectionVersionGate(t *testing.T) {
	dict := tokens.NewDictionary()
	c := BuildWord(dict, []RawSet{{Name: "A", Elements: []string{"x y"}}})
	var buf bytes.Buffer
	if err := SaveCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Sanity: the header is exactly where the loader expects it.
	if string(valid[:len(collectionMagic)]) != collectionMagic {
		t.Fatalf("saved file does not open with the magic: %q", valid[:len(collectionMagic)])
	}
	if valid[len(collectionMagic)] != persistVersion {
		t.Fatalf("saved version byte = %d", valid[len(collectionMagic)])
	}

	// Future version: typed rejection.
	future := append([]byte(nil), valid...)
	future[len(collectionMagic)] = persistVersion + 41
	_, err := LoadCollection(bytes.NewReader(future))
	var uve *UnsupportedVersionError
	if !errors.As(err, &uve) {
		t.Fatalf("future version: got %v, want UnsupportedVersionError", err)
	}
	if uve.Format != "collection" || uve.Version != persistVersion+41 || uve.Supported != persistVersion {
		t.Fatalf("error fields %+v", uve)
	}

	// Version 0 (below supported): plain rejection, not the future-version
	// error.
	past := append([]byte(nil), valid...)
	past[len(collectionMagic)] = 0
	if _, err := LoadCollection(bytes.NewReader(past)); err == nil || errors.As(err, &uve) {
		t.Fatalf("version 0: got %v, want a plain unknown-version error", err)
	}

	// Version 1 (retired gob format): plain rejection with a migration hint,
	// again not the future-version error.
	gob := append([]byte(nil), valid...)
	gob[len(collectionMagic)] = persistVersionGob
	if _, err := LoadCollection(bytes.NewReader(gob)); err == nil || errors.As(err, &uve) {
		t.Fatalf("version 1: got %v, want a plain legacy-format error", err)
	}

	// Wrong magic: a pre-header gob stream (or any other file) is rejected
	// up front instead of reaching the gob decoder.
	garbled := append([]byte("NOTACOLL"), valid[len(collectionMagic):]...)
	if _, err := LoadCollection(bytes.NewReader(garbled)); err == nil {
		t.Fatal("wrong magic accepted")
	}

	// And the untouched file still loads.
	got, err := LoadCollection(bytes.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sets) != 1 || got.Sets[0].Name != "A" {
		t.Fatalf("round-trip lost the collection: %+v", got.Sets)
	}
}
