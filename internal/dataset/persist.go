package dataset

import (
	"encoding/gob"
	"fmt"
	"io"

	"silkmoth/internal/tokens"
)

// persisted is the gob wire form of a tokenized collection. Token ids are
// dictionary-dense, so storing the dictionary's string table by position
// reconstructs the ids exactly.
type persisted struct {
	Version int
	Mode    TokenMode
	Q       int
	Words   []string
	Sets    []persistedSet
}

type persistedSet struct {
	Name     string
	Elements []persistedElement
}

type persistedElement struct {
	Raw    string
	Tokens []int32
	Chunks []int32
	Length int
}

const persistVersion = 1

// SaveCollection writes a tokenized collection to w in a self-contained
// binary form (gob). Loading it back avoids re-tokenizing large corpora.
func SaveCollection(w io.Writer, c *Collection) error {
	p := persisted{
		Version: persistVersion,
		Mode:    c.Mode,
		Q:       c.Q,
		Words:   make([]string, c.Dict.Size()),
		Sets:    make([]persistedSet, len(c.Sets)),
	}
	for i := 0; i < c.Dict.Size(); i++ {
		p.Words[i] = c.Dict.String(tokens.ID(i))
	}
	for i := range c.Sets {
		s := &c.Sets[i]
		ps := persistedSet{Name: s.Name, Elements: make([]persistedElement, len(s.Elements))}
		for j := range s.Elements {
			e := &s.Elements[j]
			ps.Elements[j] = persistedElement{
				Raw:    e.Raw,
				Tokens: idsToInts(e.Tokens),
				Chunks: idsToInts(e.Chunks),
				Length: e.Length,
			}
		}
		p.Sets[i] = ps
	}
	return gob.NewEncoder(w).Encode(&p)
}

// LoadCollection reads a collection written by SaveCollection. The returned
// collection owns a fresh dictionary with the persisted token table.
func LoadCollection(r io.Reader) (*Collection, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("dataset: loading collection: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("dataset: unsupported collection version %d", p.Version)
	}
	dict := tokens.NewDictionary()
	for i, w := range p.Words {
		if id := dict.Intern(w); int(id) != i {
			return nil, fmt.Errorf("dataset: corrupt token table at %d (duplicate %q)", i, w)
		}
	}
	c := &Collection{Dict: dict, Mode: p.Mode, Q: p.Q, Sets: make([]Set, len(p.Sets))}
	for i, ps := range p.Sets {
		s := Set{Name: ps.Name, Elements: make([]Element, len(ps.Elements))}
		for j, pe := range ps.Elements {
			s.Elements[j] = Element{
				Raw:    pe.Raw,
				Tokens: intsToIDs(pe.Tokens),
				Chunks: intsToIDs(pe.Chunks),
				Length: pe.Length,
			}
			for _, id := range s.Elements[j].Tokens {
				if int(id) >= dict.Size() {
					return nil, fmt.Errorf("dataset: token id %d out of range", id)
				}
			}
		}
		c.Sets[i] = s
	}
	return c, nil
}

func idsToInts(ids []tokens.ID) []int32 {
	if ids == nil {
		return nil
	}
	out := make([]int32, len(ids))
	for i, id := range ids {
		out[i] = int32(id)
	}
	return out
}

func intsToIDs(ints []int32) []tokens.ID {
	if ints == nil {
		return nil
	}
	out := make([]tokens.ID, len(ints))
	for i, v := range ints {
		out[i] = tokens.ID(v)
	}
	return out
}
