package dataset

import (
	"fmt"
	"io"

	"silkmoth/internal/binenc"
	"silkmoth/internal/tokens"
)

// Collection files open with a magic string and a format-version byte
// ahead of the payload. The leading byte is what lets a reader reject a
// future format outright (UnsupportedVersionError) instead of feeding its
// bytes to the wrong decoder and misparsing.
//
// Version 1 was a gob stream; version 2 is the same logical image on the
// shared binenc varint codec (the one the snapshot and WAL formats use):
//
//	[uvarint mode][uvarint q][uvarint numWords][uvarint numSets]
//	[numWords × string]
//	[numSets × (string name, uvarint numElems,
//	            numElems × (string raw,
//	                        uvarint numTokens, numTokens × uvarint tokenDelta,
//	                        uvarint numChunks, numChunks × uvarint chunkId,
//	                        uvarint length))]
//
// Token ids are delta-encoded (element token slices are sorted strictly
// ascending), strings are length-prefixed, and the decoder validates every
// count against the bytes actually present before allocating.
const (
	collectionMagic   = "SMOTHCOL"
	persistVersion    = 2
	persistVersionGob = 1 // retired: gob payload, rejected with a clear error
)

// SaveCollection writes a tokenized collection to w in a self-contained
// binary form. Loading it back avoids re-tokenizing large corpora. Only
// tokens the collection's sets actually reference are persisted, so
// query-interned strays and reclaimed dictionary slots never reach disk.
func SaveCollection(w io.Writer, c *Collection) error {
	return saveCollection(w, c, func(int) bool { return true })
}

// SaveCollectionLive writes only the sets for which alive(i) reports true,
// renumbered densely, with a token table pruned to the tokens those sets
// actually use. This is the persistence form of compaction: a mutated
// engine saves as if it had been built fresh from its surviving sets, and
// LoadCollection reads the result like any other saved collection.
func SaveCollectionLive(w io.Writer, c *Collection, alive func(i int) bool) error {
	return saveCollection(w, c, alive)
}

// saveCollection is the one encoder behind both save forms: it persists
// the alive sets with a token table pruned to what they reference. Token
// ids are remapped monotonically (ascending old id → ascending new id),
// so element token slices — sorted by id — stay sorted after the remap
// and the loaded collection satisfies every builder invariant; when every
// dictionary token is used the remap is the identity.
func saveCollection(w io.Writer, c *Collection, alive func(i int) bool) error {
	used := make([]bool, c.Dict.Size())
	nLive := 0
	for i := range c.Sets {
		if !alive(i) {
			continue
		}
		nLive++
		for j := range c.Sets[i].Elements {
			e := &c.Sets[i].Elements[j]
			for _, id := range e.Tokens {
				used[id] = true
			}
			for _, id := range e.Chunks {
				used[id] = true
			}
		}
	}
	remap := make([]int32, len(used))
	var words []string
	for old, u := range used {
		if u {
			remap[old] = int32(len(words))
			words = append(words, c.Dict.String(tokens.ID(old)))
		}
	}

	var enc binenc.Writer
	enc.Uint(int(c.Mode))
	enc.Uint(c.Q)
	enc.Uint(len(words))
	enc.Uint(nLive)
	for _, word := range words {
		enc.String(word)
	}
	for i := range c.Sets {
		if !alive(i) {
			continue
		}
		s := &c.Sets[i]
		enc.String(s.Name)
		enc.Uint(len(s.Elements))
		for j := range s.Elements {
			e := &s.Elements[j]
			enc.String(e.Raw)
			enc.Uint(len(e.Tokens))
			prev := int32(0)
			for _, id := range e.Tokens {
				nid := remap[id]
				enc.Uint(int(nid - prev))
				prev = nid
			}
			enc.Uint(len(e.Chunks))
			for _, id := range e.Chunks {
				enc.Uint(int(remap[id]))
			}
			enc.Uint(e.Length)
		}
	}

	if _, err := io.WriteString(w, collectionMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{persistVersion}); err != nil {
		return err
	}
	_, err := w.Write(enc.Bytes())
	return err
}

// LoadCollection reads a collection written by SaveCollection. The returned
// collection owns a fresh dictionary with the persisted token table. A file
// written by a newer format version fails with *UnsupportedVersionError; a
// retired version-1 (gob) file fails with a clear migration error.
func LoadCollection(r io.Reader) (*Collection, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: loading collection: %w", err)
	}
	if len(data) < len(collectionMagic)+1 {
		return nil, fmt.Errorf("dataset: truncated collection header")
	}
	if string(data[:len(collectionMagic)]) != collectionMagic {
		return nil, fmt.Errorf("dataset: not a saved collection (bad magic %q)", data[:len(collectionMagic)])
	}
	switch v := int(data[len(collectionMagic)]); {
	case v == persistVersion:
	case v > persistVersion:
		return nil, &UnsupportedVersionError{Format: "collection", Version: v, Supported: persistVersion}
	case v == persistVersionGob:
		return nil, fmt.Errorf("dataset: collection format version 1 (gob) is no longer supported; re-save the collection with this build")
	default:
		return nil, fmt.Errorf("dataset: unknown collection format version %d", v)
	}

	dec := binenc.NewReader(data[len(collectionMagic)+1:])
	mode := TokenMode(dec.Uint())
	q := dec.Uint()
	numWords := dec.Count(1) // each word costs ≥ 1 byte (its length)
	numSets := dec.Uint()
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("dataset: collection header: %w", err)
	}
	if mode != ModeWord && mode != ModeQGram {
		return nil, fmt.Errorf("dataset: unknown token mode %d", mode)
	}

	dict := tokens.NewDictionary()
	for i := 0; i < numWords; i++ {
		word := dec.String()
		if err := dec.Err(); err != nil {
			return nil, fmt.Errorf("dataset: token table: %w", err)
		}
		if id := dict.Intern(word); int(id) != i {
			return nil, fmt.Errorf("dataset: corrupt token table at %d (duplicate %q)", i, word)
		}
	}
	if numSets > dec.Remaining() { // each set costs ≥ 1 byte
		return nil, fmt.Errorf("dataset: set count %d exceeds remaining payload", numSets)
	}

	c := &Collection{Dict: dict, Mode: mode, Q: q, Sets: make([]Set, numSets)}
	for i := 0; i < numSets; i++ {
		s := Set{Name: dec.String()}
		ne := dec.Count(2)
		if err := dec.Err(); err != nil {
			return nil, fmt.Errorf("dataset: set %d: %w", i, err)
		}
		s.Elements = make([]Element, ne)
		for j := 0; j < ne; j++ {
			e := &s.Elements[j]
			e.Raw = dec.String()
			nt := dec.Count(1)
			if err := dec.Err(); err != nil {
				return nil, fmt.Errorf("dataset: set %d element %d: %w", i, j, err)
			}
			e.Tokens = make([]tokens.ID, nt)
			id := int32(0)
			for k := 0; k < nt; k++ {
				id += int32(dec.Uint())
				if dec.Err() == nil && (int(id) >= numWords || id < 0) {
					return nil, fmt.Errorf("dataset: set %d element %d token id %d out of range", i, j, id)
				}
				e.Tokens[k] = tokens.ID(id)
			}
			nc := dec.Count(1)
			if err := dec.Err(); err != nil {
				return nil, fmt.Errorf("dataset: set %d element %d: %w", i, j, err)
			}
			if nc > 0 {
				e.Chunks = make([]tokens.ID, nc)
				for k := 0; k < nc; k++ {
					cid := dec.Uint()
					if dec.Err() == nil && cid >= numWords {
						return nil, fmt.Errorf("dataset: set %d element %d chunk id %d out of range", i, j, cid)
					}
					e.Chunks[k] = tokens.ID(cid)
				}
			}
			e.Length = dec.Uint()
			if err := dec.Err(); err != nil {
				return nil, fmt.Errorf("dataset: set %d element %d: %w", i, j, err)
			}
			// Keys are derived, not persisted: token ids were remapped at
			// save time, so recompute against the fresh dictionary.
			e.Key = internKey(dict, e, mode)
		}
		c.Sets[i] = s
	}
	if dec.Remaining() != 0 {
		return nil, fmt.Errorf("dataset: %d trailing collection bytes", dec.Remaining())
	}
	return c, nil
}
