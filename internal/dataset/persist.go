package dataset

import (
	"encoding/gob"
	"fmt"
	"io"

	"silkmoth/internal/tokens"
)

// persisted is the gob wire form of a tokenized collection. Token ids are
// dictionary-dense, so storing the dictionary's string table by position
// reconstructs the ids exactly.
type persisted struct {
	Version int
	Mode    TokenMode
	Q       int
	Words   []string
	Sets    []persistedSet
}

type persistedSet struct {
	Name     string
	Elements []persistedElement
}

// persistedElement's id slices are typed []tokens.ID (an int32) rather
// than []int32: gob matches types structurally, so the wire format is
// unchanged, and the decoder hands back slices the Element can adopt
// as-is instead of copying every element's ids on load.
type persistedElement struct {
	Raw    string
	Tokens []tokens.ID
	Chunks []tokens.ID
	Length int
}

const persistVersion = 1

// Collection files open with a magic string and a format-version byte
// ahead of the gob stream. The leading byte is what lets a reader reject a
// future format outright (UnsupportedVersionError) instead of feeding its
// bytes to the wrong decoder and misparsing — gob's own Version field only
// checks after a successful decode, which a layout change would never
// reach.
const collectionMagic = "SMOTHCOL"

// SaveCollection writes a tokenized collection to w in a self-contained
// binary form (a version header followed by gob). Loading it back avoids
// re-tokenizing large corpora. Only tokens the collection's sets actually
// reference are persisted, so query-interned strays and reclaimed
// dictionary slots never reach disk.
func SaveCollection(w io.Writer, c *Collection) error {
	return saveCollection(w, c, func(int) bool { return true })
}

// LoadCollection reads a collection written by SaveCollection. The returned
// collection owns a fresh dictionary with the persisted token table. A file
// written by a newer format version fails with *UnsupportedVersionError.
func LoadCollection(r io.Reader) (*Collection, error) {
	var hdr [len(collectionMagic) + 1]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("dataset: loading collection header: %w", err)
	}
	if string(hdr[:len(collectionMagic)]) != collectionMagic {
		return nil, fmt.Errorf("dataset: not a saved collection (bad magic %q)", hdr[:len(collectionMagic)])
	}
	if v := int(hdr[len(collectionMagic)]); v != persistVersion {
		if v > persistVersion {
			return nil, &UnsupportedVersionError{Format: "collection", Version: v, Supported: persistVersion}
		}
		return nil, fmt.Errorf("dataset: unknown collection format version %d", v)
	}
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("dataset: loading collection: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("dataset: unsupported collection version %d", p.Version)
	}
	dict := tokens.NewDictionary()
	for i, w := range p.Words {
		if id := dict.Intern(w); int(id) != i {
			return nil, fmt.Errorf("dataset: corrupt token table at %d (duplicate %q)", i, w)
		}
	}
	c := &Collection{Dict: dict, Mode: p.Mode, Q: p.Q, Sets: make([]Set, len(p.Sets))}
	for i, ps := range p.Sets {
		s := Set{Name: ps.Name, Elements: make([]Element, len(ps.Elements))}
		for j, pe := range ps.Elements {
			s.Elements[j] = Element{
				Raw:    pe.Raw,
				Tokens: pe.Tokens,
				Chunks: pe.Chunks,
				Length: pe.Length,
			}
			for _, id := range s.Elements[j].Tokens {
				if int(id) >= dict.Size() {
					return nil, fmt.Errorf("dataset: token id %d out of range", id)
				}
			}
			// Keys are derived, not persisted: token ids were remapped at
			// save time, so recompute against the fresh dictionary.
			s.Elements[j].Key = internKey(dict, &s.Elements[j], p.Mode)
		}
		c.Sets[i] = s
	}
	return c, nil
}

// SaveCollectionLive writes only the sets for which alive(i) reports true,
// renumbered densely, with a token table pruned to the tokens those sets
// actually use. This is the persistence form of compaction: a mutated
// engine saves as if it had been built fresh from its surviving sets, and
// LoadCollection reads the result like any other saved collection.
func SaveCollectionLive(w io.Writer, c *Collection, alive func(i int) bool) error {
	return saveCollection(w, c, alive)
}

// saveCollection is the one encoder behind both save forms: it persists
// the alive sets with a token table pruned to what they reference. Token
// ids are remapped monotonically (ascending old id → ascending new id),
// so element token slices — sorted by id — stay sorted after the remap
// and the loaded collection satisfies every builder invariant; when every
// dictionary token is used the remap is the identity.
func saveCollection(w io.Writer, c *Collection, alive func(i int) bool) error {
	used := make([]bool, c.Dict.Size())
	nLive := 0
	for i := range c.Sets {
		if !alive(i) {
			continue
		}
		nLive++
		for j := range c.Sets[i].Elements {
			e := &c.Sets[i].Elements[j]
			for _, id := range e.Tokens {
				used[id] = true
			}
			for _, id := range e.Chunks {
				used[id] = true
			}
		}
	}
	remap := make([]int32, len(used))
	var words []string
	for old, u := range used {
		if u {
			remap[old] = int32(len(words))
			words = append(words, c.Dict.String(tokens.ID(old)))
		}
	}
	p := persisted{
		Version: persistVersion,
		Mode:    c.Mode,
		Q:       c.Q,
		Words:   words,
		Sets:    make([]persistedSet, 0, nLive),
	}
	for i := range c.Sets {
		if !alive(i) {
			continue
		}
		s := &c.Sets[i]
		ps := persistedSet{Name: s.Name, Elements: make([]persistedElement, len(s.Elements))}
		for j := range s.Elements {
			e := &s.Elements[j]
			ps.Elements[j] = persistedElement{
				Raw:    e.Raw,
				Tokens: remapInts(e.Tokens, remap),
				Chunks: remapInts(e.Chunks, remap),
				Length: e.Length,
			}
		}
		p.Sets = append(p.Sets, ps)
	}
	if _, err := io.WriteString(w, collectionMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{persistVersion}); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(&p)
}

func remapInts(ids []tokens.ID, remap []int32) []tokens.ID {
	if ids == nil {
		return nil
	}
	out := make([]tokens.ID, len(ids))
	for i, id := range ids {
		out[i] = tokens.ID(remap[id])
	}
	return out
}
