package dataset

import (
	"bytes"
	"strings"
	"testing"

	"silkmoth/internal/tokens"
)

// The loader fuzz targets: every input format silkmothd accepts at startup
// — JSON set arrays, the plain-text set file format, and CSV columns —
// must never panic on arbitrary bytes (malformed UTF-8, truncated
// structures, duplicate names, empty sets), and whatever parses must
// satisfy the loader invariants the engine builders rely on: every set is
// named, and the parsed sets tokenize and index cleanly.

// checkLoaded asserts the loader invariants on a successful parse, then
// pushes the sets through both tokenizers — the step where a bad loader
// output would blow up the engine build.
func checkLoaded(t *testing.T, raws []RawSet) {
	t.Helper()
	for i, r := range raws {
		if r.Name == "" {
			t.Fatalf("set %d has no name", i)
		}
	}
	if len(raws) > 32 {
		raws = raws[:32] // keep the fuzz iteration cheap
	}
	wc := BuildWord(tokens.NewDictionary(), raws)
	if len(wc.Sets) != len(raws) {
		t.Fatalf("BuildWord produced %d sets for %d raws", len(wc.Sets), len(raws))
	}
	for i := range wc.Sets {
		for j := range wc.Sets[i].Elements {
			el := &wc.Sets[i].Elements[j]
			for k := 1; k < len(el.Tokens); k++ {
				if el.Tokens[k-1] >= el.Tokens[k] {
					t.Fatalf("set %d element %d tokens not sorted-unique", i, j)
				}
			}
		}
	}
	qc := BuildQGram(tokens.NewDictionary(), raws, 2)
	if len(qc.Sets) != len(raws) {
		t.Fatalf("BuildQGram produced %d sets for %d raws", len(qc.Sets), len(raws))
	}
}

func FuzzReadJSONSets(f *testing.F) {
	f.Add([]byte(`[{"name": "a", "elements": ["x y", "z"]}]`))
	f.Add([]byte(`[{"elements": []}]`))
	f.Add([]byte(`[{"name": "dup", "elements": ["x"]}, {"name": "dup", "elements": ["x"]}]`))
	f.Add([]byte(`[{"name": "\xff\xfe", "elements": ["\xc3\x28"]}]`))
	f.Add([]byte(`[`))
	f.Add([]byte(`{}`))
	f.Add([]byte("\xff\xfe\xfd"))
	f.Fuzz(func(t *testing.T, data []byte) {
		raws, err := ReadJSONSets(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkLoaded(t, raws)
	})
}

func FuzzReadRawSets(f *testing.F) {
	f.Add("addr: 77 Mass Ave | 5th St\n# comment\nno name here | second\n")
	f.Add("dup: a | b\ndup: a | b\n")
	f.Add(": | | |\n")
	f.Add("\xff\xfe: bad \xc3\x28 utf8 | x\n")
	f.Add("empty:\n\n\n")
	f.Add(strings.Repeat("|", 100) + "\n")
	f.Fuzz(func(t *testing.T, data string) {
		raws, err := ReadRawSets(strings.NewReader(data))
		if err != nil {
			return
		}
		checkLoaded(t, raws)
		// The set-file format round-trips whatever it parsed: writing the
		// parsed sets and re-reading them must preserve the element lists
		// whenever names and elements are representable (no pipes or
		// newlines introduced by the parse — it strips them by design).
		var buf bytes.Buffer
		if err := WriteRawSets(&buf, raws); err != nil {
			t.Fatalf("writing parsed sets: %v", err)
		}
		if _, err := ReadRawSets(&buf); err != nil {
			t.Fatalf("re-reading written sets: %v", err)
		}
	})
}

func FuzzReadCSVColumns(f *testing.F) {
	f.Add("city,state\nBoston,MA\nSeattle,WA\n", "t")
	f.Add("a,a,a\n1,2\n3,4,5,6\n", "")
	f.Add(",,,\n,,,\n", "x")
	f.Add("h\xc3\x28eader\nval\xff\n", "")
	f.Add("", "empty")
	f.Fuzz(func(t *testing.T, data, table string) {
		raws, err := ReadCSVColumns(strings.NewReader(data), table)
		if err != nil {
			return
		}
		for i, r := range raws {
			if r.Name == "" {
				t.Fatalf("column %d has no name", i)
			}
			seen := make(map[string]bool, len(r.Elements))
			for _, el := range r.Elements {
				if el == "" {
					t.Fatalf("column %d holds an empty value", i)
				}
				if seen[el] {
					t.Fatalf("column %d holds duplicate value %q", i, el)
				}
				seen[el] = true
			}
		}
		checkLoaded(t, raws)
	})
}
