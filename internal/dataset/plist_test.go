package dataset

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// synthElemBase builds an element-base table for numSets sets of
// elemsPerSet elements each.
func synthElemBase(numSets, elemsPerSet int) []int32 {
	eb := make([]int32, numSets+1)
	for i := 0; i < numSets; i++ {
		eb[i+1] = eb[i] + int32(elemsPerSet)
	}
	return eb
}

// randPostings draws a sorted, duplicate-free posting list over the id
// space of eb. density in (0,1] steers how many of the possible
// (set, elem) pairs appear.
func randPostings(rng *rand.Rand, eb []int32, density float64) []Posting {
	var out []Posting
	numSets := len(eb) - 1
	for s := 0; s < numSets; s++ {
		n := int(eb[s+1] - eb[s])
		for e := 0; e < n; e++ {
			if rng.Float64() < density {
				out = append(out, Posting{Set: int32(s), Elem: int32(e)})
			}
		}
	}
	return out
}

func encodeList(t *testing.T, list []Posting, eb []int32) []byte {
	t.Helper()
	var enc ContainerEncoder
	return enc.Append(nil, list, eb)
}

func TestContainerRoundTripKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	eb := synthElemBase(200, 10)

	cases := []struct {
		name    string
		list    []Posting
		want    byte
		density string
	}{
		{name: "empty", list: nil, want: ContainerArray},
		{name: "single", list: []Posting{{Set: 7, Elem: 3}}, want: ContainerArray},
		{name: "tiny", list: randPostings(rng, synthElemBase(30, 1), 0.5), want: ContainerArray},
		{name: "sparse-long", list: randPostings(rng, eb, 0.05), want: ContainerPacked},
		{name: "dense", list: randPostings(rng, eb, 0.9), want: ContainerBitmap},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			blob := encodeList(t, tc.list, eb)
			if len(tc.list) == 0 {
				if len(blob) != 0 {
					t.Fatalf("empty list encoded to %d bytes", len(blob))
				}
				return
			}
			pl := NewPostingList(blob, eb)
			if got := pl.Kind(); got != tc.want {
				t.Fatalf("kind = 0x%02x, want 0x%02x (n=%d)", got, tc.want, len(tc.list))
			}
			if got := pl.Len(); got != len(tc.list) {
				t.Fatalf("Len = %d, want %d", got, len(tc.list))
			}
			got, err := pl.Materialize(nil)
			if err != nil {
				t.Fatalf("Materialize: %v", err)
			}
			if !reflect.DeepEqual(got, tc.list) {
				t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, tc.list)
			}
			// Re-encoding the decoded postings must be byte-stable.
			again := encodeList(t, got, eb)
			if !bytes.Equal(again, blob) {
				t.Fatalf("re-encode not byte-stable: %d vs %d bytes", len(again), len(blob))
			}
		})
	}
}

func TestContainerIterMatchesMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eb := synthElemBase(500, 6)
	for _, density := range []float64{0.01, 0.1, 0.4, 0.95} {
		list := randPostings(rng, eb, density)
		blob := encodeList(t, list, eb)
		pl := NewPostingList(blob, eb)
		it := pl.Iter()
		var got []Posting
		for {
			p, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, p)
		}
		if err := it.Err(); err != nil {
			t.Fatalf("density %v: iter error: %v", density, err)
		}
		if !reflect.DeepEqual(got, list) {
			t.Fatalf("density %v (kind 0x%02x): iterator mismatch (%d vs %d postings)",
				density, pl.Kind(), len(got), len(list))
		}
	}
}

func TestContainerSetRange(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	eb := synthElemBase(300, 8)
	for _, density := range []float64{0.02, 0.3, 0.9} {
		list := randPostings(rng, eb, density)
		blob := encodeList(t, list, eb)
		pl := NewPostingList(blob, eb)
		for set := int32(-1); set < 302; set++ {
			var want []Posting
			for _, p := range list {
				if p.Set == set {
					want = append(want, p)
				}
			}
			got, err := pl.SetRange(set, nil)
			if err != nil {
				t.Fatalf("SetRange(%d): %v", set, err)
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("density %v SetRange(%d) = %v, want %v", density, set, got, want)
			}
		}
	}
}

func TestContainerIntersectInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eb := synthElemBase(400, 5)
	for _, density := range []float64{0.02, 0.2, 0.9} {
		list := randPostings(rng, eb, density)
		blob := encodeList(t, list, eb)
		pl := NewPostingList(blob, eb)
		for trial := 0; trial < 20; trial++ {
			nSets := rng.Intn(30) + 1
			seen := map[int32]bool{}
			var sets []int32
			for len(sets) < nSets {
				s := int32(rng.Intn(410)) // some beyond range
				if !seen[s] {
					seen[s] = true
					sets = append(sets, s)
				}
			}
			sort.Slice(sets, func(i, j int) bool { return sets[i] < sets[j] })
			var want []Posting
			for _, p := range list {
				if seen[p.Set] {
					want = append(want, p)
				}
			}
			got, err := pl.IntersectInto(nil, sets)
			if err != nil {
				t.Fatalf("IntersectInto: %v", err)
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("density %v kind 0x%02x IntersectInto(%v):\n got %v\nwant %v",
					density, pl.Kind(), sets, got, want)
			}
		}
	}
}

// TestContainerBlockBoundarySets pins the packed-container edge where one
// set's postings span a block boundary.
func TestContainerBlockBoundarySets(t *testing.T) {
	// 3 sets × 200 elements: set 1 spans the first block boundary.
	eb := synthElemBase(3, 200)
	var list []Posting
	for s := int32(0); s < 3; s++ {
		for e := int32(0); e < 200; e += 2 {
			list = append(list, Posting{Set: s, Elem: e})
		}
	}
	var enc ContainerEncoder
	blob := enc.Append(nil, list, nil) // force packed
	pl := NewPostingList(blob, eb)
	if pl.Kind() != ContainerPacked {
		t.Fatalf("kind = 0x%02x, want packed", pl.Kind())
	}
	for s := int32(0); s < 3; s++ {
		got, err := pl.SetRange(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("SetRange(%d) returned %d postings, want 100", s, len(got))
		}
	}
	got, err := pl.IntersectInto(nil, []int32{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("IntersectInto([0,2]) returned %d postings, want 200", len(got))
	}
}

func TestContainerRejectsMalformed(t *testing.T) {
	eb := synthElemBase(10, 4)
	list := randPostings(rand.New(rand.NewSource(1)), eb, 0.8)
	blob := encodeList(t, list, eb)

	cases := []struct {
		name string
		blob []byte
	}{
		{"unknown kind", []byte{0x07, 3, 0, 0}},
		{"truncated header", []byte{ContainerArray}},
		{"zero count", []byte{ContainerArray, 0, 1, 1}},
		{"count overruns", []byte{ContainerArray, 200, 1}},
		{"truncated body", blob[:len(blob)-1]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl := NewPostingList(tc.blob, eb)
			if _, err := pl.Materialize(nil); !errors.Is(err, ErrContainerCorrupt) {
				t.Fatalf("Materialize = %v, want ErrContainerCorrupt", err)
			}
		})
	}

	// Out-of-order postings must be rejected whatever the kind.
	var enc ContainerEncoder
	bad := enc.Append(nil, []Posting{{Set: 5, Elem: 0}, {Set: 5, Elem: 0}}, nil)
	if _, err := NewPostingList(bad, eb).Materialize(nil); err == nil {
		t.Fatal("duplicate posting not rejected")
	}
	// A posting beyond the element base must be rejected.
	oob := enc.Append(nil, []Posting{{Set: 3, Elem: 99}}, nil)
	if _, err := NewPostingList(oob, eb).Materialize(nil); err == nil {
		t.Fatal("out-of-range element not rejected")
	}
}

func TestContainerStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	eb := synthElemBase(100, 10)
	lists := make([][]Posting, 50)
	for i := range lists {
		switch i % 4 {
		case 0: // empty
		case 1:
			lists[i] = randPostings(rng, eb, 0.01)
		case 2:
			lists[i] = randPostings(rng, eb, 0.1)
		default:
			lists[i] = randPostings(rng, eb, 0.8)
		}
	}
	b := NewContainerStoreBuilder(len(lists))
	for _, l := range lists {
		b.Add(l, eb)
	}
	cs := b.Finish()
	if cs.NumTokens() != len(lists) {
		t.Fatalf("NumTokens = %d, want %d", cs.NumTokens(), len(lists))
	}
	// The store must survive its own validation path.
	cs2, err := NewContainerStore(cs.n, cs.offs, cs.data)
	if err != nil {
		t.Fatalf("NewContainerStore on builder output: %v", err)
	}
	for i, want := range lists {
		got, err := NewPostingList(cs2.Blob(i), eb).Materialize(nil)
		if err != nil {
			t.Fatalf("token %d: %v", i, err)
		}
		if len(want) == 0 {
			if len(got) != 0 {
				t.Fatalf("token %d: got %d postings from empty list", i, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("token %d mismatch", i)
		}
	}
	if cs.Blob(-1) != nil || cs.Blob(len(lists)) != nil {
		t.Fatal("out-of-range Blob not nil")
	}

	clone := cs.Clone()
	for i := range lists {
		if !bytes.Equal(clone.Blob(i), cs.Blob(i)) {
			t.Fatalf("clone blob %d differs", i)
		}
	}
}

func TestContainerStoreRejectsBadOffsets(t *testing.T) {
	mk := func(offs []byte, data []byte, n int) error {
		_, err := NewContainerStore(n, offs, data)
		return err
	}
	if err := mk([]byte{0, 0, 0, 0, 2, 0, 0, 0}, []byte{1, 2}, 1); err != nil {
		t.Fatalf("valid store rejected: %v", err)
	}
	bad := []struct {
		name string
		offs []byte
		data []byte
		n    int
	}{
		{"short table", []byte{0, 0, 0, 0}, nil, 1},
		{"nonzero start", []byte{1, 0, 0, 0, 2, 0, 0, 0}, []byte{1, 2}, 1},
		{"not monotone", []byte{0, 0, 0, 0, 5, 0, 0, 0, 2, 0, 0, 0}, []byte{1, 2, 3, 4, 5}, 2},
		{"bad end", []byte{0, 0, 0, 0, 9, 0, 0, 0}, []byte{1, 2}, 1},
	}
	for _, tc := range bad {
		if err := mk(tc.offs, tc.data, tc.n); !errors.Is(err, ErrContainerCorrupt) {
			t.Fatalf("%s: err = %v, want ErrContainerCorrupt", tc.name, err)
		}
	}
}

// TestContainerAdaptiveChoiceIsSmallest cross-checks that the encoder's
// packed/bitmap choice actually picks the smaller encoding.
func TestContainerAdaptiveChoiceIsSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	eb := synthElemBase(256, 8)
	for _, density := range []float64{0.05, 0.2, 0.5, 0.95} {
		list := randPostings(rng, eb, density)
		if len(list) <= ArrayMaxPostings {
			continue
		}
		var enc ContainerEncoder
		adaptive := enc.Append(nil, list, eb)
		packed := enc.Append(nil, list, nil) // nil eb forces packed
		if len(adaptive) > len(packed) {
			t.Fatalf("density %v: adaptive %d bytes > packed %d bytes",
				density, len(adaptive), len(packed))
		}
	}
}

func BenchmarkContainerIntersectPacked(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	eb := synthElemBase(4096, 4)
	list := randPostings(rng, eb, 0.25)
	var enc ContainerEncoder
	blob := enc.Append(nil, list, nil) // force packed
	pl := NewPostingList(blob, eb)
	sets := make([]int32, 0, 16)
	for s := int32(0); s < 4096; s += 256 {
		sets = append(sets, s)
	}
	dst := make([]Posting, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = pl.IntersectInto(dst[:0], sets)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(dst) == 0 {
		b.Fatal("no intersections")
	}
}

func BenchmarkContainerIntersectMaterialized(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	eb := synthElemBase(4096, 4)
	list := randPostings(rng, eb, 0.25)
	sets := make([]int32, 0, 16)
	for s := int32(0); s < 4096; s += 256 {
		sets = append(sets, s)
	}
	dst := make([]Posting, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		si := 0
		for _, p := range list {
			for si < len(sets) && sets[si] < p.Set {
				si++
			}
			if si == len(sets) {
				break
			}
			if sets[si] == p.Set {
				dst = append(dst, p)
			}
		}
		si = 0
	}
	_ = fmt.Sprint(len(dst))
}
