package harness

import (
	"bytes"
	"strings"
	"testing"

	"silkmoth/internal/core"
	"silkmoth/internal/signature"
)

// tinyScale keeps harness tests fast; shapes are asserted, not magnitudes.
const tinyScale = 0.05

func TestBuildWorkloadShapes(t *testing.T) {
	sm := BuildWorkload(StringMatching, tinyScale, 0.75, 0.8, 1)
	if !sm.SelfJoin || sm.Search {
		t.Error("string matching should be self-join discovery")
	}
	if sm.Base.Sim != core.Eds || sm.Base.Q != 3 {
		t.Errorf("string matching base = %+v, want Eds q=3", sm.Base)
	}
	sch := BuildWorkload(SchemaMatching, tinyScale, 0.75, 0, 1)
	if sch.Base.Sim != core.Jaccard || sch.Base.Metric != core.SetSimilarity {
		t.Errorf("schema matching base = %+v", sch.Base)
	}
	inc := BuildWorkload(InclusionDependency, tinyScale, 0.75, 0.5, 1)
	if !inc.Search || inc.Base.Metric != core.SetContainment {
		t.Errorf("inclusion dependency should be containment search: %+v", inc.Base)
	}
	if inc.Index == nil {
		t.Error("search workload must carry a prebuilt index")
	}
	if len(inc.Refs.Sets) == 0 || len(inc.Refs.Sets) > len(inc.Coll.Sets) {
		t.Errorf("refs = %d of %d", len(inc.Refs.Sets), len(inc.Coll.Sets))
	}
}

func TestRunConfigDiscovery(t *testing.T) {
	w := BuildWorkload(SchemaMatching, tinyScale, 0.75, 0, 1)
	opts := core.DefaultOptions(w.Base.Metric, w.Base.Sim, 0.75, 0)
	row := RunConfig(w, opts, "OPT", "test")
	if row.Sets != len(w.Coll.Sets) || row.TimeSec < 0 {
		t.Errorf("row = %+v", row)
	}
	if row.Results == 0 {
		t.Error("schema workload should contain related pairs (planted dups)")
	}
	if row.Candidates < row.AfterCheck || row.AfterCheck < row.AfterNN {
		t.Errorf("funnel not monotone: %+v", row)
	}
}

func TestRunConfigSearch(t *testing.T) {
	w := BuildWorkload(InclusionDependency, tinyScale, 0.75, 0.5, 1)
	opts := core.DefaultOptions(w.Base.Metric, w.Base.Sim, 0.75, 0.5)
	row := RunConfig(w, opts, "OPT", "test")
	if row.Results == 0 {
		t.Error("inclusion workload should find planted containments")
	}
}

// Filters must never change results, only the funnel and runtime — the
// harness-level restatement of the exactness property.
func TestVariantsAgreeOnResults(t *testing.T) {
	for _, app := range []App{SchemaMatching, InclusionDependency} {
		alpha := 0.0
		if app == InclusionDependency {
			alpha = 0.5
		}
		w := BuildWorkload(app, tinyScale, 0.75, alpha, 2)
		var results []int
		for _, scheme := range []signature.Kind{signature.Weighted, signature.CombUnweighted, signature.Dichotomy} {
			for _, nn := range []bool{false, true} {
				opts := core.Options{
					Delta: 0.75, Alpha: alpha, Scheme: scheme,
					CheckFilter: nn, NNFilter: nn,
				}
				row := RunConfig(w, opts, "x", "t")
				results = append(results, row.Results)
			}
		}
		for _, r := range results[1:] {
			if r != results[0] {
				t.Fatalf("%v: variants disagree on results: %v", app, results)
			}
		}
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if _, err := RunFigure("fig99", 1, 1, nil); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestRunTable3(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunFigure("table3", tinyScale, 1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("table3 rows = %d", len(rows))
	}
	if !strings.Contains(buf.String(), "string-matching") {
		t.Error("table3 output missing apps")
	}
}

func TestRunFig5cSmall(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunFigure("fig5c", tinyScale, 1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// 4 deltas × 4 schemes.
	if len(rows) != 16 {
		t.Fatalf("fig5c rows = %d, want 16", len(rows))
	}
	// All schemes must agree on result counts at each δ (exactness).
	byDelta := map[float64]map[int]bool{}
	for _, r := range rows {
		if byDelta[r.Delta] == nil {
			byDelta[r.Delta] = map[int]bool{}
		}
		byDelta[r.Delta][r.Results] = true
	}
	for d, set := range byDelta {
		if len(set) != 1 {
			t.Errorf("schemes disagree at δ=%v: %v", d, set)
		}
	}
	// The weighted-family schemes must produce no more candidates than
	// COMBUNWEIGHTED (the headline of §8.2) at the default δ.
	cands := map[string]int64{}
	for _, r := range rows {
		if r.Delta == 0.75 {
			cands[r.Variant] = r.Candidates
		}
	}
	if cands["DICHOTOMY"] > cands["COMBUNWEIGHTED"] {
		t.Errorf("dichotomy produced more candidates than the baseline: %v", cands)
	}
}

func TestRunFig6cSmall(t *testing.T) {
	rows, err := RunFigure("fig6c", tinyScale, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("fig6c rows = %d, want 12", len(rows))
	}
	// Verified counts must shrink monotonically NOFILTER ≥ CHECK ≥ NN.
	byDelta := map[float64]map[string]int64{}
	for _, r := range rows {
		if byDelta[r.Delta] == nil {
			byDelta[r.Delta] = map[string]int64{}
		}
		byDelta[r.Delta][r.Variant] = r.Verified
	}
	for d, m := range byDelta {
		if m[VariantNoFilter] < m[VariantCheck] || m[VariantCheck] < m[VariantNN] {
			t.Errorf("filter funnel broken at δ=%v: %v", d, m)
		}
	}
}

func TestRunFig7Small(t *testing.T) {
	rows, err := RunFigure("fig7", tinyScale, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("fig7 rows = %d, want 8", len(rows))
	}
	// Reduction must not change results.
	for i := 0; i < len(rows); i += 2 {
		if rows[i].Results != rows[i+1].Results {
			t.Errorf("reduction changed results: %+v vs %+v", rows[i], rows[i+1])
		}
	}
}

func TestAppString(t *testing.T) {
	if StringMatching.String() != "string-matching" ||
		SchemaMatching.String() != "schema-matching" ||
		InclusionDependency.String() != "inclusion-dependency" {
		t.Error("App strings broken")
	}
	if App(9).String() == "" {
		t.Error("unknown app should render")
	}
}

func TestWriteHeaderAndRow(t *testing.T) {
	var buf bytes.Buffer
	WriteHeader(&buf)
	Row{Figure: "figX", App: "a", Variant: "v"}.Write(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("output = %q", buf.String())
	}
	if !strings.HasPrefix(lines[0], "figure") || !strings.HasPrefix(lines[1], "figX") {
		t.Errorf("alignment broken: %q", buf.String())
	}
}

func TestRunFig4Small(t *testing.T) {
	rows, err := RunFigure("fig4", tinyScale, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("fig4 rows = %d, want 6", len(rows))
	}
	// NOOPT and OPT must agree on results per app (exactness), and OPT
	// must verify no more candidates than NOOPT.
	for i := 0; i < len(rows); i += 2 {
		noopt, opt := rows[i], rows[i+1]
		if noopt.Results != opt.Results {
			t.Errorf("%s: NOOPT %d results vs OPT %d", noopt.App, noopt.Results, opt.Results)
		}
		if opt.Verified > noopt.Verified {
			t.Errorf("%s: OPT verified more than NOOPT: %d vs %d", noopt.App, opt.Verified, noopt.Verified)
		}
	}
}

func TestRunFig8bSmall(t *testing.T) {
	rows, err := RunFigure("fig8b", tinyScale, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 alphas × 2 systems
		t.Fatalf("fig8b rows = %d, want 8", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		if rows[i].Results != rows[i+1].Results {
			t.Errorf("α=%v: SILKMOTH %d results vs FASTJOIN %d",
				rows[i].Alpha, rows[i].Results, rows[i+1].Results)
		}
	}
}

func TestRunFig9cSmall(t *testing.T) {
	rows, err := RunFigure("fig9c", 0.03, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ScaleSweep)*len(DeltaSweep) {
		t.Fatalf("fig9c rows = %d", len(rows))
	}
	// Corpus sizes must grow along the scale sweep.
	for i := len(DeltaSweep); i < len(rows); i++ {
		if rows[i].Sets < rows[i-len(DeltaSweep)].Sets {
			t.Errorf("scale sweep not monotone at row %d", i)
		}
	}
}

func TestRefsFromLargeSets(t *testing.T) {
	w := BuildWorkload(InclusionDependency, tinyScale, 0.75, 0, 1)
	w2 := RefsFromLargeSets(w, 50, 5)
	if len(w2.Refs.Sets) > 5 {
		t.Errorf("refs = %d, want ≤ 5", len(w2.Refs.Sets))
	}
	for _, s := range w2.Refs.Sets {
		if len(s.Elements) < 50 {
			t.Errorf("ref %s has %d elements, want ≥ 50", s.Name, len(s.Elements))
		}
	}
}
