package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"

	"silkmoth/internal/core"
	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/signature"
)

// DeltaSweep is the relatedness threshold axis of Figures 5-9.
var DeltaSweep = []float64{0.7, 0.75, 0.8, 0.85}

// AlphaSweepString is the similarity threshold axis of Figure 8b.
var AlphaSweepString = []float64{0.7, 0.75, 0.8, 0.85}

// ScaleSweep multiplies the base corpus size in Figure 9.
var ScaleSweep = []float64{0.25, 0.5, 1, 2}

// Figures lists every experiment id RunFigure accepts, in paper order.
var Figures = []string{
	"table3",
	"fig4",
	"fig5a", "fig5b", "fig5c",
	"fig6a", "fig6b", "fig6c",
	"fig7",
	"fig8a", "fig8b",
	"fig9a", "fig9b", "fig9c",
}

// RunFigure regenerates one table/figure of §8 (or "all") at the given
// corpus scale, writing rows to out as they complete and returning them.
func RunFigure(figure string, scale float64, seed int64, out io.Writer) ([]Row, error) {
	if figure == "all" {
		var all []Row
		for _, f := range Figures {
			rows, err := RunFigure(f, scale, seed, out)
			if err != nil {
				return all, err
			}
			all = append(all, rows...)
		}
		return all, nil
	}
	switch figure {
	case "table3":
		return runTable3(scale, seed, out)
	case "fig4":
		return runFig4(scale, seed, out)
	case "fig5a":
		return runFig5(StringMatching, DefaultAlphaString, scale, seed, "fig5a", out)
	case "fig5b":
		return runFig5(SchemaMatching, DefaultAlphaSchema, scale, seed, "fig5b", out)
	case "fig5c":
		return runFig5(InclusionDependency, DefaultAlphaInclusion, scale, seed, "fig5c", out)
	case "fig6a":
		return runFig6(StringMatching, DefaultAlphaString, scale, seed, "fig6a", out)
	case "fig6b":
		return runFig6(SchemaMatching, DefaultAlphaSchema, scale, seed, "fig6b", out)
	case "fig6c":
		return runFig6(InclusionDependency, DefaultAlphaInclusion, scale, seed, "fig6c", out)
	case "fig7":
		return runFig7(scale, seed, out)
	case "fig8a":
		return runFig8a(scale, seed, out)
	case "fig8b":
		return runFig8b(scale, seed, out)
	case "fig9a":
		return runFig9(StringMatching, DefaultAlphaString, scale, seed, "fig9a", out)
	case "fig9b":
		return runFig9(SchemaMatching, DefaultAlphaSchema, scale, seed, "fig9b", out)
	case "fig9c":
		return runFig9(InclusionDependency, DefaultAlphaInclusion, scale, seed, "fig9c", out)
	default:
		return nil, fmt.Errorf("harness: unknown figure %q (have %v)", figure, Figures)
	}
}

// emit writes and collects one row.
func emit(out io.Writer, rows *[]Row, r Row) {
	if out != nil {
		r.Write(out)
	}
	*rows = append(*rows, r)
}

// runTable3 reports dataset statistics in the shape of the paper's Table 3.
func runTable3(scale float64, seed int64, out io.Writer) ([]Row, error) {
	type entry struct {
		app   App
		delta float64
		alpha float64
	}
	entries := []entry{
		{StringMatching, DefaultDeltaString, DefaultAlphaString},
		{SchemaMatching, DefaultDeltaSchema, DefaultAlphaSchema},
		{InclusionDependency, DefaultDeltaInclusion, DefaultAlphaInclusion},
	}
	var rows []Row
	for _, e := range entries {
		before := heapInUse()
		w := BuildWorkload(e.app, scale, e.delta, e.alpha, seed)
		ix := w.Index
		if ix == nil {
			ix = index.Build(w.Coll)
		}
		after := heapInUse()
		st := dataset.ComputeStats(w.Coll)
		if out != nil {
			fmt.Fprintf(out, "table3   %-22s %s postings=%d mem≈%.1fMB\n",
				e.app.String(), st.String(), ix.TotalPostings(),
				float64(after-before)/(1<<20))
		}
		rows = append(rows, Row{
			Figure: "table3", App: e.app.String(), Variant: "stats",
			Delta: e.delta, Alpha: e.alpha, Sets: st.NumSets,
		})
	}
	return rows, nil
}

// heapInUse samples live heap bytes after a GC, approximating the paper's
// §8.1 memory consumption report (dominated by the dataset and the index).
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// runFig4 compares NOOPT (FastJoin-style signature, no refinement, no
// reduction) against OPT (full SilkMoth) on all three applications.
func runFig4(scale float64, seed int64, out io.Writer) ([]Row, error) {
	type entry struct {
		app   App
		delta float64
		alpha float64
	}
	entries := []entry{
		{StringMatching, DefaultDeltaString, DefaultAlphaString},
		{SchemaMatching, DefaultDeltaSchema, DefaultAlphaSchema},
		{InclusionDependency, DefaultDeltaInclusion, DefaultAlphaInclusion},
	}
	var rows []Row
	for _, e := range entries {
		w := BuildWorkload(e.app, scale, e.delta, e.alpha, seed)
		noopt := core.FastJoinOptions(w.Base.Metric, w.Base.Sim, e.delta, e.alpha)
		emit(out, &rows, RunConfig(w, noopt, VariantNoOpt, "fig4"))
		opt := core.DefaultOptions(w.Base.Metric, w.Base.Sim, e.delta, e.alpha)
		emit(out, &rows, RunConfig(w, opt, VariantOpt, "fig4"))
	}
	return rows, nil
}

// runFig5 sweeps the four signature schemes over δ with refinement filters
// and reduction disabled, isolating signature selectivity (§8.2).
func runFig5(app App, alpha float64, scale float64, seed int64, figure string, out io.Writer) ([]Row, error) {
	var rows []Row
	for _, delta := range DeltaSweep {
		w := BuildWorkload(app, scale, delta, alpha, seed)
		for _, scheme := range []signature.Kind{
			signature.Weighted, signature.CombUnweighted, signature.Skyline, signature.Dichotomy,
		} {
			opts := core.Options{
				Delta: delta, Alpha: alpha, Scheme: scheme,
				CheckFilter: false, NNFilter: false, Reduction: false,
			}
			emit(out, &rows, RunConfig(w, opts, schemeVariant(scheme), figure))
		}
	}
	return rows, nil
}

// runFig6 sweeps the refinement filters over δ with the dichotomy signature
// and no reduction (§8.3).
func runFig6(app App, alpha float64, scale float64, seed int64, figure string, out io.Writer) ([]Row, error) {
	var rows []Row
	for _, delta := range DeltaSweep {
		w := BuildWorkload(app, scale, delta, alpha, seed)
		variants := []struct {
			name      string
			check, nn bool
		}{
			{VariantNoFilter, false, false},
			{VariantCheck, true, false},
			{VariantNN, true, true},
		}
		for _, v := range variants {
			opts := core.Options{
				Delta: delta, Alpha: alpha, Scheme: signature.Dichotomy,
				CheckFilter: v.check, NNFilter: v.nn, Reduction: false,
			}
			emit(out, &rows, RunConfig(w, opts, v.name, figure))
		}
	}
	return rows, nil
}

// runFig7 measures reduction-based verification on the inclusion dependency
// application at α = 0, using only reference sets with at least 100
// elements (§8.4).
func runFig7(scale float64, seed int64, out io.Writer) ([]Row, error) {
	var rows []Row
	for _, delta := range DeltaSweep {
		w := BuildWorkload(InclusionDependency, scale, delta, 0, seed)
		w = RefsFromLargeSets(w, 100, 50)
		for _, reduction := range []bool{false, true} {
			name := VariantNoRed
			if reduction {
				name = VariantRed
			}
			opts := core.Options{
				Delta: delta, Alpha: 0, Scheme: signature.Dichotomy,
				CheckFilter: true, NNFilter: true, Reduction: reduction,
			}
			emit(out, &rows, RunConfig(w, opts, name, "fig7"))
		}
	}
	return rows, nil
}

// RefsFromLargeSets replaces a search workload's references with up to max
// collection sets of at least minElems elements (Figure 7 uses ≥ 100).
func RefsFromLargeSets(w Workload, minElems, max int) Workload {
	var kept []dataset.Set
	for _, s := range w.Coll.Sets {
		if len(s.Elements) >= minElems {
			kept = append(kept, s)
			if len(kept) == max {
				break
			}
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Name < kept[j].Name })
	w.Refs = &dataset.Collection{Sets: kept, Dict: w.Coll.Dict, Mode: w.Coll.Mode, Q: w.Coll.Q}
	w.SelfJoin = false
	return w
}

// runFig8a compares full SilkMoth against the FastJoin-style baseline on
// string matching over δ at α = 0.8 (§8.5).
func runFig8a(scale float64, seed int64, out io.Writer) ([]Row, error) {
	var rows []Row
	for _, delta := range DeltaSweep {
		w := BuildWorkload(StringMatching, scale, delta, DefaultAlphaString, seed)
		sm := core.DefaultOptions(w.Base.Metric, w.Base.Sim, delta, DefaultAlphaString)
		emit(out, &rows, RunConfig(w, sm, VariantSilkmoth, "fig8a"))
		fj := core.FastJoinOptions(w.Base.Metric, w.Base.Sim, delta, DefaultAlphaString)
		emit(out, &rows, RunConfig(w, fj, VariantFastJoin, "fig8a"))
	}
	return rows, nil
}

// runFig8b compares the same two systems over α at δ = 0.8; each α
// retokenizes the corpus with its own maximal sound q (footnote 11).
func runFig8b(scale float64, seed int64, out io.Writer) ([]Row, error) {
	const delta = 0.8
	var rows []Row
	for _, alpha := range AlphaSweepString {
		w := BuildWorkload(StringMatching, scale, delta, alpha, seed)
		sm := core.DefaultOptions(w.Base.Metric, w.Base.Sim, delta, alpha)
		emit(out, &rows, RunConfig(w, sm, VariantSilkmoth, "fig8b"))
		fj := core.FastJoinOptions(w.Base.Metric, w.Base.Sim, delta, alpha)
		emit(out, &rows, RunConfig(w, fj, VariantFastJoin, "fig8b"))
	}
	return rows, nil
}

// runFig9 measures scalability: full SilkMoth over growing corpus sizes for
// each δ (§8.6).
func runFig9(app App, alpha float64, scale float64, seed int64, figure string, out io.Writer) ([]Row, error) {
	var rows []Row
	for _, mult := range ScaleSweep {
		for _, delta := range DeltaSweep {
			w := BuildWorkload(app, scale*mult, delta, alpha, seed)
			opts := core.DefaultOptions(w.Base.Metric, w.Base.Sim, delta, alpha)
			emit(out, &rows, RunConfig(w, opts, VariantSilkmoth, figure))
		}
	}
	return rows, nil
}
