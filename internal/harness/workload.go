// Package harness regenerates every table and figure of the paper's
// evaluation (§8). Each experiment builds one of the three applications'
// workloads — approximate string matching on a DBLP-like corpus, schema
// matching and approximate inclusion dependency on WebTable-like corpora —
// and sweeps the variants the corresponding figure compares, reporting
// runtime and the candidate funnel at each stage.
package harness

import (
	"fmt"

	"silkmoth/internal/core"
	"silkmoth/internal/datagen"
	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/signature"
	"silkmoth/internal/tokens"
)

// App identifies one of the paper's three evaluation applications (§8.1).
type App int

const (
	// StringMatching: RELATED SET DISCOVERY, SET-SIMILARITY, Eds on a
	// DBLP-like title corpus.
	StringMatching App = iota
	// SchemaMatching: RELATED SET DISCOVERY, SET-SIMILARITY, Jac on a
	// WebTable-like schema corpus.
	SchemaMatching
	// InclusionDependency: RELATED SET SEARCH, SET-CONTAINMENT, Jac on a
	// WebTable-like column corpus.
	InclusionDependency
)

func (a App) String() string {
	switch a {
	case StringMatching:
		return "string-matching"
	case SchemaMatching:
		return "schema-matching"
	case InclusionDependency:
		return "inclusion-dependency"
	default:
		return fmt.Sprintf("App(%d)", int(a))
	}
}

// Paper default parameters per application (Table 3; α of the figure
// captions, δ middle of the sweep).
const (
	DefaultDeltaString    = 0.75
	DefaultAlphaString    = 0.8
	DefaultDeltaSchema    = 0.75
	DefaultAlphaSchema    = 0.0
	DefaultDeltaInclusion = 0.75
	DefaultAlphaInclusion = 0.5
)

// Base corpus sizes at scale 1. The paper uses 100K titles and 500K
// tables/columns on a 64-core server; these defaults keep every figure
// regenerable in minutes on a laptop. Scale up via the scale parameter
// (paper sizes ≈ scale 50-170).
const (
	baseTitles  = 2000
	baseTables  = 3000
	baseColumns = 3000
	baseRefs    = 100
)

// Workload is a built, tokenized corpus ready for engines.
type Workload struct {
	App  App
	Coll *dataset.Collection
	// Refs are the reference sets: the collection itself for discovery
	// applications, the drawn reference columns for search.
	Refs *dataset.Collection
	// SelfJoin reports whether Refs is the collection itself.
	SelfJoin bool
	// Search reports search mode (per-reference passes, index excluded
	// from timing) versus discovery mode (index build included, §8.2).
	Search bool
	// Base carries the application's metric, similarity, α, and q.
	Base core.Options
	// Index is the pre-built inverted index, shared by search-mode runs.
	Index *index.Inverted
}

// BuildWorkload constructs the corpus for app at the given scale with the
// given thresholds. Alpha participates in tokenization for string matching
// (q = the largest sound gram length, footnote 11), so workloads are built
// per (app, scale, alpha).
func BuildWorkload(app App, scale float64, delta, alpha float64, seed int64) Workload {
	if scale <= 0 {
		scale = 1
	}
	switch app {
	case StringMatching:
		raws := datagen.DBLP(datagen.DBLPConfig{
			NumTitles: int(float64(baseTitles) * scale),
			Seed:      seed,
		})
		opts := core.Options{
			Metric: core.SetSimilarity,
			Sim:    core.Eds,
			Delta:  delta,
			Alpha:  alpha,
			Q:      core.DefaultQ(delta, alpha),
		}
		coll := dataset.BuildQGram(tokens.NewDictionary(), raws, opts.Q)
		return Workload{App: app, Coll: coll, Refs: coll, SelfJoin: true, Base: opts}
	case SchemaMatching:
		raws := datagen.WebTableSchemas(datagen.SchemaConfig{
			NumTables: int(float64(baseTables) * scale),
			Seed:      seed,
		})
		opts := core.Options{
			Metric: core.SetSimilarity,
			Sim:    core.Jaccard,
			Delta:  delta,
			Alpha:  alpha,
		}
		coll := dataset.BuildWord(tokens.NewDictionary(), raws)
		return Workload{App: app, Coll: coll, Refs: coll, SelfJoin: true, Base: opts}
	case InclusionDependency:
		raws := datagen.WebTableColumns(datagen.ColumnConfig{
			NumColumns: int(float64(baseColumns) * scale),
			Seed:       seed,
		})
		dict := tokens.NewDictionary()
		coll := dataset.BuildWord(dict, raws)
		refRaws := datagen.PickReferences(raws, baseRefs, 4)
		refs := dataset.BuildWord(dict, refRaws)
		opts := core.Options{
			Metric: core.SetContainment,
			Sim:    core.Jaccard,
			Delta:  delta,
			Alpha:  alpha,
		}
		return Workload{
			App: app, Coll: coll, Refs: refs, Search: true,
			Base:  opts,
			Index: index.Build(coll),
		}
	default:
		panic("harness: unknown app")
	}
}

// Variant names shared with the paper's figures.
const (
	VariantNoOpt    = "NOOPT"
	VariantOpt      = "OPT"
	VariantNoFilter = "NOFILTER"
	VariantCheck    = "CHECK"
	VariantNN       = "NEARESTNEIGHBOR"
	VariantNoRed    = "NOREDUCTION"
	VariantRed      = "REDUCTION"
	VariantSilkmoth = "SILKMOTH"
	VariantFastJoin = "FASTJOIN"
)

// schemeVariant maps scheme kinds to figure series names.
func schemeVariant(k signature.Kind) string { return k.String() }
