package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"silkmoth/internal/core"
)

// Row is one measured cell of a figure: a variant at one parameter point.
type Row struct {
	Figure  string
	App     string
	Variant string
	Delta   float64
	Alpha   float64
	Sets    int
	TimeSec float64
	// Funnel counters, cumulative over all search passes of the run.
	Candidates int64
	AfterCheck int64
	AfterNN    int64
	Verified   int64
	Results    int
}

// RunConfig executes one workload under one engine configuration and
// returns its measured row. Discovery runs time index building plus the
// discovery pass (as the paper does); search runs reuse the prebuilt index
// and time only the passes.
func RunConfig(w Workload, opts core.Options, variant, figure string) Row {
	opts.Metric = w.Base.Metric
	opts.Sim = w.Base.Sim
	opts.Q = w.Base.Q
	if opts.Concurrency == 0 {
		opts.Concurrency = runtime.GOMAXPROCS(0)
	}

	row := Row{
		Figure:  figure,
		App:     w.App.String(),
		Variant: variant,
		Delta:   opts.Delta,
		Alpha:   opts.Alpha,
		Sets:    len(w.Coll.Sets),
	}

	var eng *core.Engine
	var err error
	start := time.Now()
	if w.Search {
		eng, err = core.NewEngineFromIndex(w.Index, opts)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		start = time.Now() // exclude index build for search mode
		results := 0
		for i := range w.Refs.Sets {
			ms, serr := eng.SearchContext(context.Background(), &w.Refs.Sets[i])
			if serr != nil {
				panic(fmt.Sprintf("harness: %v", serr))
			}
			results += len(ms)
		}
		row.Results = results
	} else {
		eng, err = core.NewEngine(w.Coll, opts)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		ps, derr := eng.DiscoverContext(context.Background(), w.Refs)
		if derr != nil {
			panic(fmt.Sprintf("harness: %v", derr))
		}
		row.Results = len(ps)
	}
	row.TimeSec = time.Since(start).Seconds()

	st := eng.Stats()
	row.Candidates = st.Candidates
	row.AfterCheck = st.AfterCheck
	row.AfterNN = st.AfterNN
	row.Verified = st.Verified
	return row
}

// WriteHeader prints the aligned column header for result rows.
func WriteHeader(out io.Writer) {
	fmt.Fprintf(out, "%-8s %-22s %-16s %6s %6s %9s %10s %11s %11s %9s %8s %10s\n",
		"figure", "app", "variant", "delta", "alpha", "sets",
		"cands", "afterCheck", "afterNN", "verified", "results", "time(s)")
}

// Write prints one row aligned under WriteHeader.
func (r Row) Write(out io.Writer) {
	fmt.Fprintf(out, "%-8s %-22s %-16s %6.2f %6.2f %9d %10d %11d %11d %9d %8d %10.3f\n",
		r.Figure, r.App, r.Variant, r.Delta, r.Alpha, r.Sets,
		r.Candidates, r.AfterCheck, r.AfterNN, r.Verified, r.Results, r.TimeSec)
}
