package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

// synthCorpus builds a deterministic word-mode collection shaped to exercise
// every container kind: a token in every element (dense → bitmap), a handful
// of mid-frequency tokens (packed), and a long tail of rare ones (array).
func synthCorpus(nSets int, seed int64) (*dataset.Collection, *tokens.Dictionary) {
	return synthCorpusVocab(nSets, nSets*6, seed)
}

// synthCorpusVocab is synthCorpus with an explicit rare-token vocabulary
// size: nSets*6 makes most rare lists singletons (worst case for the
// encoder), nSets/2 gives the zipf-ish long tail real corpora show, where
// each tail token still lands in a handful of sets.
func synthCorpusVocab(nSets, rareVocab int, seed int64) (*dataset.Collection, *tokens.Dictionary) {
	rng := rand.New(rand.NewSource(seed))
	raws := make([]dataset.RawSet, nSets)
	for i := range raws {
		ne := 1 + rng.Intn(3)
		elems := make([]string, ne)
		for j := range elems {
			var b bytes.Buffer
			b.WriteString("common") // in every element
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&b, " mid%d", rng.Intn(4))
			}
			for w := 0; w < 1+rng.Intn(4); w++ {
				fmt.Fprintf(&b, " rare%d", rng.Intn(rareVocab))
			}
			elems[j] = b.String()
		}
		raws[i] = dataset.RawSet{Name: fmt.Sprintf("s%d", i), Elements: elems}
	}
	dict := tokens.NewDictionary()
	return dataset.BuildWord(dict, raws), dict
}

// requireSameIndex asserts got answers every read entry point — ListLen,
// List, Cursor, SetRange, SetRangeInto, TotalPostings — identically to want.
func requireSameIndex(t *testing.T, stage string, want, got *Inverted) {
	t.Helper()
	nt := want.NumTokens()
	if g := got.NumTokens(); g > nt {
		nt = g
	}
	numSets := int32(len(want.Collection().Sets))
	var scratch []Posting
	for tid := 0; tid < nt+1; tid++ {
		id := tokens.ID(tid)
		wl := want.List(id)
		if gn := got.ListLen(id); gn != len(wl) {
			t.Fatalf("%s: token %d: ListLen = %d, want %d", stage, tid, gn, len(wl))
		}
		gl := got.List(id)
		if len(gl) != len(wl) {
			t.Fatalf("%s: token %d: List len %d, want %d", stage, tid, len(gl), len(wl))
		}
		for i := range wl {
			if gl[i] != wl[i] {
				t.Fatalf("%s: token %d posting %d = %+v, want %+v", stage, tid, i, gl[i], wl[i])
			}
		}
		cur := got.Cursor(id)
		for i := 0; ; i++ {
			p, ok := cur.Next()
			if !ok {
				if i != len(wl) {
					t.Fatalf("%s: token %d: cursor ended at %d, want %d", stage, tid, i, len(wl))
				}
				break
			}
			if i >= len(wl) || p != wl[i] {
				t.Fatalf("%s: token %d: cursor posting %d = %+v", stage, tid, i, p)
			}
		}
		for set := int32(0); set <= numSets; set++ {
			wr := want.SetRange(id, set)
			gr := got.SetRange(id, set)
			if len(gr) != len(wr) {
				t.Fatalf("%s: token %d set %d: SetRange len %d, want %d", stage, tid, set, len(gr), len(wr))
			}
			var ir []Posting
			ir, scratch = got.SetRangeInto(id, set, scratch)
			if len(ir) != len(wr) {
				t.Fatalf("%s: token %d set %d: SetRangeInto len %d, want %d", stage, tid, set, len(ir), len(wr))
			}
			for i := range wr {
				if gr[i] != wr[i] || ir[i] != wr[i] {
					t.Fatalf("%s: token %d set %d posting %d mismatch", stage, tid, set, i)
				}
			}
		}
	}
	if g, w := got.TotalPostings(), want.TotalPostings(); g != w {
		t.Fatalf("%s: TotalPostings = %d, want %d", stage, g, w)
	}
}

// TestCompressedEquivalence: the compressed form answers every read
// identically to the heap form, for cache budgets from "evict constantly"
// through "everything fits" — including budget 1, which forces the cursor's
// streaming decode path.
func TestCompressedEquivalence(t *testing.T) {
	coll, _ := synthCorpus(60, 1)
	heap := Build(coll)
	for _, budget := range []int64{1, 1 << 10, 0} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			cx := BuildCompressed(coll, budget)
			if !cx.Compressed() {
				t.Fatal("BuildCompressed produced a non-compressed index")
			}
			requireSameIndex(t, "fresh", heap, cx)
			// Second sweep hits whatever the cache kept; still identical.
			requireSameIndex(t, "warm", heap, cx)
			st := cx.Storage()
			if st.DecodeErrors != 0 {
				t.Fatalf("decode errors on canonical containers: %d", st.DecodeErrors)
			}
			if st.EncodedBytes == 0 {
				t.Fatal("compressed index reports no encoded bytes")
			}
		})
	}
}

// TestCompressedCompressionRatio pins the tentpole's storage win on a
// long-tail distribution: containers must undercut materialized lists by at
// least 3× on this corpus.
func TestCompressedCompressionRatio(t *testing.T) {
	coll, _ := synthCorpusVocab(400, 200, 2)
	cx := BuildCompressed(coll, 0)
	st := cx.Storage()
	raw := int64(st.Postings) * postingBytes
	if st.EncodedBytes*3 > raw {
		t.Fatalf("compression ratio %.2fx (raw %d, encoded %d), want >= 3x",
			float64(raw)/float64(st.EncodedBytes), raw, st.EncodedBytes)
	}
}

// TestCompressedAppendAndRebuild: incremental appends land in the extras
// overlay and answer identically to a heap index over the same grown
// collection; Rebuild folds them back into containers.
func TestCompressedAppendAndRebuild(t *testing.T) {
	coll, _ := synthCorpus(40, 3)
	cx := BuildCompressed(coll, 1<<10)
	// Warm the cache so appends must invalidate stale materializations.
	requireSameIndex(t, "prewarm", Build(coll), cx)

	from := dataset.Append(coll, []dataset.RawSet{
		{Name: "n1", Elements: []string{"common mid0 fresh0", "rare1 fresh1"}},
		{Name: "n2", Elements: []string{"common fresh0 fresh2"}},
	})
	cx.AppendSets(from)
	heap := Build(coll)
	requireSameIndex(t, "appended", heap, cx)

	cx.Rebuild()
	if !cx.Compressed() {
		t.Fatal("Rebuild dropped the compressed form")
	}
	requireSameIndex(t, "rebuilt", heap, cx)
	if st := cx.Storage(); st.HeapBytes != 0 {
		t.Fatalf("rebuilt compressed index still holds %d heap bytes", st.HeapBytes)
	}
}

// TestFromContainersLazy: wrapping a container store decodes nothing until
// probed, and a probe decodes only the touched token.
func TestFromContainersLazy(t *testing.T) {
	coll, dict := synthCorpus(60, 4)
	src := BuildCompressed(coll, 0)
	b := dataset.NewContainerStoreBuilder(src.NumTokens())
	for tid := 0; tid < src.NumTokens(); tid++ {
		blob, ok := src.EncodedContainer(tid)
		if !ok {
			t.Fatalf("EncodedContainer(%d) not verbatim on a fresh compressed index", tid)
		}
		b.AddBlob(blob)
	}
	lx := FromContainers(coll, b.Finish(), true, 0)

	st := lx.Storage()
	if st.ResidentBytes != 0 || st.CacheMisses != 0 || st.CacheHits != 0 {
		t.Fatalf("lazy index did work before any probe: %+v", st)
	}
	id, _ := dict.Lookup("common")
	_ = lx.List(id)
	st = lx.Storage()
	if st.CacheMisses != 1 {
		t.Fatalf("one probe cost %d decodes, want 1", st.CacheMisses)
	}
	if !lx.SharesContainers() {
		t.Fatal("shared store not reported")
	}
	lx.UnshareContainers()
	if lx.SharesContainers() {
		t.Fatal("UnshareContainers left the store shared")
	}
	requireSameIndex(t, "unshared", Build(coll), lx)
}

// TestFromContainersConstantAllocs: wrapping a loaded container store is
// O(1) in the vocabulary — a fixed handful of objects (index header, cache,
// element-base table) no matter how many tokens the store holds. This is
// the index-layer half of the lazy-load allocation gate: decode allocations
// happen per probed token, never per vocabulary slot.
func TestFromContainersConstantAllocs(t *testing.T) {
	coll, _ := synthCorpus(200, 7)
	src := BuildCompressed(coll, 0)
	b := dataset.NewContainerStoreBuilder(src.NumTokens())
	for tid := 0; tid < src.NumTokens(); tid++ {
		blob, _ := src.EncodedContainer(tid)
		b.AddBlob(blob)
	}
	cs := b.Finish()
	allocs := testing.AllocsPerRun(10, func() {
		_ = FromContainers(coll, cs, true, 0)
	})
	if allocs > 16 {
		t.Errorf("FromContainers allocates %.0f objects over %d tokens — wrapping must not scale with the vocabulary",
			allocs, src.NumTokens())
	}
}

// TestListCacheEviction: the LRU stays within its byte budget (modulo the
// keep-newest rule), repeated probes hit, and evicted lists decode again
// correctly.
func TestListCacheEviction(t *testing.T) {
	coll, _ := synthCorpus(80, 5)
	budget := int64(2 << 10)
	cx := BuildCompressed(coll, budget)
	for tid := 0; tid < cx.NumTokens(); tid++ {
		_ = cx.List(tokens.ID(tid))
	}
	st := cx.Storage()
	// One over-budget entry may be retained; anything beyond that is a leak.
	if st.ResidentBytes > 2*budget {
		t.Fatalf("resident %d bytes exceeds budget %d", st.ResidentBytes, budget)
	}
	if st.CacheMisses == 0 {
		t.Fatal("no decode traffic recorded")
	}
	// Re-probe the most recent token: must be a hit.
	last := tokens.ID(cx.NumTokens() - 1)
	_ = cx.List(last)
	if after := cx.Storage(); after.CacheHits == st.CacheHits && after.CacheMisses == st.CacheMisses {
		t.Fatal("re-probe registered neither hit nor miss")
	}
	requireSameIndex(t, "thrashed", Build(coll), cx)
}

// TestCompressedSnapshotRoundTrip: saving a snapshot from a compressed index
// (verbatim container reuse) and re-wrapping the loaded store reproduces the
// index bit-for-bit — and matches a save from the equivalent heap index.
func TestCompressedSnapshotRoundTrip(t *testing.T) {
	coll, _ := synthCorpus(50, 6)
	heap := Build(coll)
	cx := BuildCompressed(coll, 0)

	var fromHeap, fromCx bytes.Buffer
	if err := dataset.SaveSnapshot(&fromHeap, &dataset.SnapshotData{Coll: coll, Source: heap}); err != nil {
		t.Fatal(err)
	}
	if err := dataset.SaveSnapshot(&fromCx, &dataset.SnapshotData{Coll: coll, Source: cx}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromHeap.Bytes(), fromCx.Bytes()) {
		t.Fatal("heap-sourced and container-sourced snapshots differ")
	}
	snap, err := dataset.LoadSnapshotBytes(fromCx.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Containers == nil {
		t.Fatal("v2 snapshot carries no container store")
	}
	lx := FromContainers(snap.Coll, snap.Containers, true, 0)
	requireSameIndex(t, "roundtrip", Build(snap.Coll), lx)
}
