// Package index implements SilkMoth's inverted index (paper §3): for each
// token t, I[t] is the list of ⟨set, element⟩ pairs containing t, used for
// candidate selection, the check filter, and nearest-neighbor search.
package index

import (
	"sort"

	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

// Posting locates one element occurrence of a token: element Elem of set Set
// in the indexed collection. It aliases dataset.Posting — the snapshot wire
// form — so saved posting lists import and export without copying.
type Posting = dataset.Posting

// Inverted is an immutable inverted index over a tokenized collection.
// Posting lists are sorted by (Set, Elem), which Build guarantees by
// construction, so per-set ranges can be located by binary search
// (paper footnote 7).
type Inverted struct {
	lists [][]Posting
	coll  *dataset.Collection
}

// Build indexes every element token of every set in c. Element token slices
// are deduplicated (dataset builders guarantee this), so each ⟨set, elem⟩
// appears at most once per list, matching the paper's deduplicated index
// (footnote 4).
func Build(c *dataset.Collection) *Inverted {
	// First pass: list lengths, so each list is allocated exactly once.
	counts := make([]int32, c.Dict.Size())
	for i := range c.Sets {
		for j := range c.Sets[i].Elements {
			for _, t := range c.Sets[i].Elements[j].Tokens {
				counts[t]++
			}
		}
	}
	lists := make([][]Posting, c.Dict.Size())
	for t, n := range counts {
		if n > 0 {
			lists[t] = make([]Posting, 0, n)
		}
	}
	for i := range c.Sets {
		for j := range c.Sets[i].Elements {
			for _, t := range c.Sets[i].Elements[j].Tokens {
				lists[t] = append(lists[t], Posting{Set: int32(i), Elem: int32(j)})
			}
		}
	}
	return &Inverted{lists: lists, coll: c}
}

// FromLists wraps imported posting lists (a loaded snapshot's) as an index
// over c without rebuilding anything. lists is indexed by token id and each
// list must be sorted by (Set, Elem) — the order SaveSnapshot persists.
// The index takes ownership of lists, extending it to the dictionary's
// size.
func FromLists(c *dataset.Collection, lists [][]Posting) *Inverted {
	for len(lists) < c.Dict.Size() {
		lists = append(lists, nil)
	}
	return &Inverted{lists: lists, coll: c}
}

// Lists returns the underlying posting lists indexed by token id, for
// snapshot writers. The slices are the index's own storage: callers must
// treat them as read-only and hold the engine's mutation lock while
// reading.
func (ix *Inverted) Lists() [][]Posting { return ix.lists }

// Collection returns the collection this index was built over.
func (ix *Inverted) Collection() *dataset.Collection { return ix.coll }

// List returns the posting list for token t, or nil when t never occurs in
// the indexed collection (including ids interned after Build).
func (ix *Inverted) List(t tokens.ID) []Posting {
	if int(t) >= len(ix.lists) {
		return nil
	}
	return ix.lists[t]
}

// ListLen returns |I[t]|, the signature selection cost of token t
// (paper §4.3).
func (ix *Inverted) ListLen(t tokens.ID) int {
	if int(t) >= len(ix.lists) {
		return 0
	}
	return len(ix.lists[t])
}

// SetRange returns the postings of token t that belong to the given set,
// located by binary search within the sorted list.
func (ix *Inverted) SetRange(t tokens.ID, set int32) []Posting {
	l := ix.List(t)
	lo := sort.Search(len(l), func(i int) bool { return l[i].Set >= set })
	hi := sort.Search(len(l), func(i int) bool { return l[i].Set > set })
	return l[lo:hi]
}

// AppendSets indexes the collection's sets from index `from` onward,
// extending the token dimension to the dictionary's current size. Because
// new sets carry the largest ids, appending their postings preserves each
// list's (Set, Elem) order, so lookups stay correct without re-sorting.
// Not safe concurrently with readers.
func (ix *Inverted) AppendSets(from int) {
	c := ix.coll
	for len(ix.lists) < c.Dict.Size() {
		ix.lists = append(ix.lists, nil)
	}
	for i := from; i < len(c.Sets); i++ {
		for j := range c.Sets[i].Elements {
			for _, t := range c.Sets[i].Elements[j].Tokens {
				ix.lists[t] = append(ix.lists[t], Posting{Set: int32(i), Elem: int32(j)})
			}
		}
	}
}

// Rebuild recomputes every posting list from the collection's current
// contents in place, keeping the Inverted pointer stable for engines that
// hold it. Sets whose Elements were cleared (tombstoned and compacted)
// contribute nothing, so their stale postings disappear and the memory is
// reclaimed. Not safe concurrently with readers.
func (ix *Inverted) Rebuild() {
	ix.lists = Build(ix.coll).lists
}

// NumTokens returns the number of token ids the index covers.
func (ix *Inverted) NumTokens() int { return len(ix.lists) }

// TotalPostings returns the total number of postings across all lists,
// which is the index's dominant memory cost.
func (ix *Inverted) TotalPostings() int {
	n := 0
	for _, l := range ix.lists {
		n += len(l)
	}
	return n
}
