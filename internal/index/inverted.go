// Package index implements SilkMoth's inverted index (paper §3): for each
// token t, I[t] is the list of ⟨set, element⟩ pairs containing t, used for
// candidate selection, the check filter, and nearest-neighbor search.
package index

import (
	"sort"
	"sync/atomic"

	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

// Posting locates one element occurrence of a token: element Elem of set Set
// in the indexed collection. It aliases dataset.Posting — the snapshot wire
// form — so saved posting lists import and export without copying.
type Posting = dataset.Posting

// Inverted is an inverted index over a tokenized collection. Posting lists
// are sorted by (Set, Elem), which Build guarantees by construction, so
// per-set ranges can be located by binary search (paper footnote 7).
//
// The index stores its lists in one of two forms. The heap form (Build,
// FromLists) keeps every list as a materialized []Posting in lists. The
// compressed form (BuildCompressed, FromContainers) keeps lists as adaptive
// container blobs in cs — possibly aliasing a memory-mapped snapshot — and
// materializes a list only when a probe needs it, holding hot decodes in a
// byte-budgeted LRU. Either form answers the same read API with identical
// results; readers may run concurrently (the cache is internally locked),
// while AppendSets/Rebuild require the caller's exclusive lock as before.
type Inverted struct {
	lists [][]Posting
	coll  *dataset.Collection

	// Compressed-form state; cs == nil means pure heap form.
	cs       *dataset.ContainerStore
	csShared bool    // cs may alias borrowed (mmap) memory
	compress bool    // Rebuild re-encodes instead of going to heap lists
	eb       []int32 // element-base table the containers were encoded with
	// extras overlays postings of sets appended after cs was built,
	// indexed by token id. Appended sets carry larger ids than anything
	// in cs, so container postings followed by extras stay sorted.
	extras [][]Posting
	cache  *listCache

	cacheHits, cacheMisses, decodeErrs atomic.Int64
}

// Build indexes every element token of every set in c. Element token slices
// are deduplicated (dataset builders guarantee this), so each ⟨set, elem⟩
// appears at most once per list, matching the paper's deduplicated index
// (footnote 4).
func Build(c *dataset.Collection) *Inverted {
	// First pass: list lengths, so each list is allocated exactly once.
	counts := make([]int32, c.Dict.Size())
	for i := range c.Sets {
		for j := range c.Sets[i].Elements {
			for _, t := range c.Sets[i].Elements[j].Tokens {
				counts[t]++
			}
		}
	}
	lists := make([][]Posting, c.Dict.Size())
	for t, n := range counts {
		if n > 0 {
			lists[t] = make([]Posting, 0, n)
		}
	}
	for i := range c.Sets {
		for j := range c.Sets[i].Elements {
			for _, t := range c.Sets[i].Elements[j].Tokens {
				lists[t] = append(lists[t], Posting{Set: int32(i), Elem: int32(j)})
			}
		}
	}
	return &Inverted{lists: lists, coll: c}
}

// FromLists wraps imported posting lists (a loaded snapshot's) as an index
// over c without rebuilding anything. lists is indexed by token id and each
// list must be sorted by (Set, Elem) — the order SaveSnapshot persists.
// The index takes ownership of lists, extending it to the dictionary's
// size.
func FromLists(c *dataset.Collection, lists [][]Posting) *Inverted {
	for len(lists) < c.Dict.Size() {
		lists = append(lists, nil)
	}
	return &Inverted{lists: lists, coll: c}
}

// Collection returns the collection this index was built over.
func (ix *Inverted) Collection() *dataset.Collection { return ix.coll }

// List returns the posting list for token t, or nil when t never occurs in
// the indexed collection (including ids interned after Build). In the
// compressed form this materializes the container on first probe and holds
// it in the LRU; prefer Cursor for one-shot scans of large lists.
func (ix *Inverted) List(t tokens.ID) []Posting {
	if int(t) < len(ix.lists) {
		if l := ix.lists[t]; l != nil {
			return l
		}
	}
	if ix.cs == nil {
		return nil
	}
	return ix.materialize(int(t))
}

// ListLen returns |I[t]|, the signature selection cost of token t
// (paper §4.3). In the compressed form this reads the container header —
// no decode.
func (ix *Inverted) ListLen(t tokens.ID) int {
	if int(t) < len(ix.lists) {
		if l := ix.lists[t]; l != nil {
			return len(l)
		}
	}
	if ix.cs == nil {
		return 0
	}
	n, ok := dataset.ContainerLen(ix.cs.Blob(int(t)))
	if !ok {
		ix.decodeErrs.Add(1)
		n = 0
	}
	if int(t) < len(ix.extras) {
		n += len(ix.extras[t])
	}
	return n
}

// SetRange returns the postings of token t that belong to the given set,
// located by binary search within the sorted list.
func (ix *Inverted) SetRange(t tokens.ID, set int32) []Posting {
	r, _ := ix.SetRangeInto(t, set, nil)
	return r
}

// setRangeOf binary-searches a sorted list for one set's postings.
func setRangeOf(l []Posting, set int32) []Posting {
	lo := sort.Search(len(l), func(i int) bool { return l[i].Set >= set })
	hi := lo
	for hi < len(l) && l[hi].Set == set {
		hi++
	}
	return l[lo:hi]
}

// AppendSets indexes the collection's sets from index `from` onward,
// extending the token dimension to the dictionary's current size. Because
// new sets carry the largest ids, appending their postings preserves each
// list's (Set, Elem) order, so lookups stay correct without re-sorting.
// Not safe concurrently with readers.
func (ix *Inverted) AppendSets(from int) {
	c := ix.coll
	if ix.cs != nil {
		for len(ix.extras) < c.Dict.Size() {
			ix.extras = append(ix.extras, nil)
		}
		for i := from; i < len(c.Sets); i++ {
			for j := range c.Sets[i].Elements {
				for _, t := range c.Sets[i].Elements[j].Tokens {
					ix.addCompressed(t, Posting{Set: int32(i), Elem: int32(j)})
				}
			}
		}
		return
	}
	for len(ix.lists) < c.Dict.Size() {
		ix.lists = append(ix.lists, nil)
	}
	for i := from; i < len(c.Sets); i++ {
		for j := range c.Sets[i].Elements {
			for _, t := range c.Sets[i].Elements[j].Tokens {
				ix.lists[t] = append(ix.lists[t], Posting{Set: int32(i), Elem: int32(j)})
			}
		}
	}
}

// addCompressed routes one appended posting in the compressed form: tokens
// with a materialized heap list extend it directly; everything else goes to
// the extras overlay, invalidating any cached decode of that token so the
// next probe re-materializes container + overlay together.
func (ix *Inverted) addCompressed(t tokens.ID, p Posting) {
	if int(t) < len(ix.lists) && ix.lists[t] != nil {
		ix.lists[t] = append(ix.lists[t], p)
		return
	}
	ix.extras[t] = append(ix.extras[t], p)
	ix.cache.remove(int(t))
}

// Rebuild recomputes every posting list from the collection's current
// contents in place, keeping the Inverted pointer stable for engines that
// hold it. Sets whose Elements were cleared (tombstoned and compacted)
// contribute nothing, so their stale postings disappear and the memory is
// reclaimed. A compressed index re-encodes fresh containers (absorbing the
// extras overlay and detaching from any mapped snapshot); a heap index
// rebuilds heap lists. Not safe concurrently with readers.
func (ix *Inverted) Rebuild() {
	lists := Build(ix.coll).lists
	if ix.compress {
		ix.adoptCompressed(lists)
		return
	}
	ix.lists = lists
}

// NumTokens returns the number of token ids the index covers.
func (ix *Inverted) NumTokens() int {
	n := len(ix.lists)
	if ix.cs != nil && ix.cs.NumTokens() > n {
		n = ix.cs.NumTokens()
	}
	if len(ix.extras) > n {
		n = len(ix.extras)
	}
	return n
}

// TotalPostings returns the total number of postings across all lists,
// which is the index's dominant logical size. Compressed containers are
// counted from their headers without decoding.
func (ix *Inverted) TotalPostings() int {
	n := 0
	for _, l := range ix.lists {
		n += len(l)
	}
	for _, l := range ix.extras {
		n += len(l)
	}
	if ix.cs != nil {
		for t := 0; t < ix.cs.NumTokens(); t++ {
			if t < len(ix.lists) && ix.lists[t] != nil {
				continue // materialized: already counted
			}
			if c, ok := dataset.ContainerLen(ix.cs.Blob(t)); ok {
				n += c
			}
		}
	}
	return n
}
