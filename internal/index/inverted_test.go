package index

import (
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/paperdata"
	"silkmoth/internal/tokens"
)

func buildPaperIndex(t *testing.T) (*Inverted, *dataset.Collection, *tokens.Dictionary) {
	t.Helper()
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, paperdata.CollectionS())
	return Build(coll), coll, dict
}

// The paper's Example 7 gives the exact inverted list lengths for tokens
// t1..t12 over the collection S of Table 2: 9, 8, 7, 6, 6, 6, 5, 3, 3, 1, 1, 1.
func TestPaperExample7ListLengths(t *testing.T) {
	ix, _, dict := buildPaperIndex(t)
	want := map[string]int{
		"t1": 9, "t2": 8, "t3": 7, "t4": 6, "t5": 6, "t6": 6,
		"t7": 5, "t8": 3, "t9": 3, "t10": 1, "t11": 1, "t12": 1,
	}
	for label, n := range want {
		id, ok := dict.Lookup(paperdata.TokenName(label))
		if !ok {
			t.Fatalf("token %s (%s) not in dictionary", label, paperdata.TokenName(label))
		}
		if got := ix.ListLen(id); got != n {
			t.Errorf("|I[%s]| = %d, want %d", label, got, n)
		}
	}
}

// Paper §3: t8 (= "MA") appears in s21, s31, and s41.
func TestPaperT8Postings(t *testing.T) {
	ix, _, dict := buildPaperIndex(t)
	id, _ := dict.Lookup(paperdata.TokenName("t8"))
	l := ix.List(id)
	if len(l) != 3 {
		t.Fatalf("postings = %v", l)
	}
	want := []Posting{{Set: 1, Elem: 0}, {Set: 2, Elem: 0}, {Set: 3, Elem: 0}}
	for i, p := range l {
		if p != want[i] {
			t.Errorf("posting %d = %+v, want %+v", i, p, want[i])
		}
	}
}

func TestPostingsSortedBySetElem(t *testing.T) {
	ix, _, _ := buildPaperIndex(t)
	for tid := 0; tid < ix.NumTokens(); tid++ {
		l := ix.List(tokens.ID(tid))
		for i := 1; i < len(l); i++ {
			if l[i-1].Set > l[i].Set ||
				(l[i-1].Set == l[i].Set && l[i-1].Elem >= l[i].Elem) {
				t.Fatalf("list for token %d not sorted: %v", tid, l)
			}
		}
	}
}

func TestSetRange(t *testing.T) {
	ix, _, dict := buildPaperIndex(t)
	id, _ := dict.Lookup(paperdata.TokenName("t1")) // "77", in many sets
	for set := int32(0); set < 4; set++ {
		r := ix.SetRange(id, set)
		for _, p := range r {
			if p.Set != set {
				t.Fatalf("SetRange(%d) returned posting of set %d", set, p.Set)
			}
		}
	}
	// Sum of per-set ranges must equal the full list.
	total := 0
	for set := int32(0); set < 4; set++ {
		total += len(ix.SetRange(id, set))
	}
	if total != ix.ListLen(id) {
		t.Errorf("per-set ranges sum to %d, list length %d", total, ix.ListLen(id))
	}
	// A set id beyond the collection yields an empty range.
	if len(ix.SetRange(id, 99)) != 0 {
		t.Error("out-of-range set should return empty range")
	}
}

func TestUnknownTokens(t *testing.T) {
	ix, _, dict := buildPaperIndex(t)
	// A token interned after Build (e.g. from a query set) has no list.
	newID := dict.Intern("totally-new-token")
	if ix.List(newID) != nil {
		t.Error("post-build token should have a nil list")
	}
	if ix.ListLen(newID) != 0 {
		t.Error("post-build token should have length 0")
	}
	if len(ix.SetRange(newID, 0)) != 0 {
		t.Error("post-build token should have empty set range")
	}
}

func TestTotalPostings(t *testing.T) {
	ix, coll, _ := buildPaperIndex(t)
	want := 0
	for i := range coll.Sets {
		for j := range coll.Sets[i].Elements {
			want += len(coll.Sets[i].Elements[j].Tokens)
		}
	}
	if got := ix.TotalPostings(); got != want {
		t.Errorf("TotalPostings = %d, want %d", got, want)
	}
	if ix.Collection() != coll {
		t.Error("Collection() should return the indexed collection")
	}
}

func TestBuildEmptyCollection(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, nil)
	ix := Build(coll)
	if ix.TotalPostings() != 0 || ix.NumTokens() != 0 {
		t.Error("empty collection should produce an empty index")
	}
}

func TestBuildQGramIndex(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildQGram(dict, []dataset.RawSet{
		{Name: "A", Elements: []string{"Database", "Databases"}},
	}, 3)
	ix := Build(coll)
	// The gram "Dat" occurs in both elements.
	id, ok := dict.Lookup("Dat")
	if !ok {
		t.Fatal("gram Dat not interned")
	}
	if ix.ListLen(id) != 2 {
		t.Errorf("|I[Dat]| = %d, want 2", ix.ListLen(id))
	}
}

func TestAppendSets(t *testing.T) {
	dict := tokens.NewDictionary()
	coll := dataset.BuildWord(dict, []dataset.RawSet{
		{Name: "A", Elements: []string{"x y", "z"}},
	})
	ix := Build(coll)
	from := dataset.Append(coll, []dataset.RawSet{
		{Name: "B", Elements: []string{"x w"}},
	})
	ix.AppendSets(from)

	// Existing token x now lists both sets, in sorted order.
	idX, _ := dict.Lookup("x")
	l := ix.List(idX)
	if len(l) != 2 || l[0].Set != 0 || l[1].Set != 1 {
		t.Fatalf("x postings = %+v", l)
	}
	// The brand-new token w resolves.
	idW, ok := dict.Lookup("w")
	if !ok || ix.ListLen(idW) != 1 {
		t.Errorf("w postings = %d", ix.ListLen(idW))
	}
	// An incremental index equals a from-scratch rebuild.
	fresh := Build(coll)
	for tid := 0; tid < fresh.NumTokens(); tid++ {
		a, b := ix.List(tokens.ID(tid)), fresh.List(tokens.ID(tid))
		if len(a) != len(b) {
			t.Fatalf("token %d: %v vs %v", tid, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("token %d posting %d: %v vs %v", tid, i, a[i], b[i])
			}
		}
	}
}
