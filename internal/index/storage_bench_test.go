// Benchmarks for the posting-storage layer: what opening a snapshot's
// postings section costs eagerly (decode every container into heap lists,
// the uncompressed engine's load) versus lazily (wrap the container bytes,
// decode on first probe), and what compressed probes cost hot and cold.
// Results land in BENCH_storage.json.
package index

import (
	"bytes"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

// storageBenchSnap builds a long-tail corpus (each tail token in a handful
// of sets, a few dense tokens), snapshots it, and re-parses the image once
// so each benchmark iteration pays only the postings-section work.
func storageBenchSnap(b *testing.B) *dataset.SnapshotData {
	b.Helper()
	coll, _ := synthCorpusVocab(3000, 1500, 11)
	var buf bytes.Buffer
	if err := dataset.SaveSnapshot(&buf, &dataset.SnapshotData{Coll: coll, Source: Build(coll)}); err != nil {
		b.Fatal(err)
	}
	snap, err := dataset.LoadSnapshotBytes(buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	if snap.Containers == nil {
		b.Fatal("snapshot carries no containers")
	}
	return snap
}

// TestStorageFootprintReport logs the posting-section footprint of the
// benchmark corpora (run with -v); the numbers feed BENCH_storage.json.
func TestStorageFootprintReport(t *testing.T) {
	for _, tc := range []struct {
		name        string
		sets, vocab int
		seed        int64
	}{
		{"ratio-corpus", 400, 200, 2},
		{"bench-corpus", 3000, 1500, 11},
	} {
		coll, _ := synthCorpusVocab(tc.sets, tc.vocab, tc.seed)
		st := BuildCompressed(coll, 0).Storage()
		raw := int64(st.Postings) * postingBytes
		t.Logf("%s: %d postings over %d tokens: raw %d B, encoded %d B (%.2fx)",
			tc.name, st.Postings, coll.Dict.Size(), raw, st.EncodedBytes,
			float64(raw)/float64(st.EncodedBytes))
	}
}

// BenchmarkSnapshotOpenPostingsEager is the uncompressed load: every
// container decoded into a heap list before the first query can run.
func BenchmarkSnapshotOpenPostingsEager(b *testing.B) {
	snap := storageBenchSnap(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lists, err := snap.DecodePostings()
		if err != nil {
			b.Fatal(err)
		}
		_ = FromLists(snap.Coll, lists)
	}
}

// BenchmarkSnapshotOpenPostingsLazy is the zero-copy load: wrap the encoded
// containers and return; decode happens per probed token later.
func BenchmarkSnapshotOpenPostingsLazy(b *testing.B) {
	snap := storageBenchSnap(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromContainers(snap.Coll, snap.Containers, true, 0)
	}
}

// BenchmarkCompressedProbeHot is a cache-hit List on a compressed index —
// the steady-state probe cost queries pay after the working set warms.
func BenchmarkCompressedProbeHot(b *testing.B) {
	coll, dict := synthCorpus(200, 12)
	cx := BuildCompressed(coll, 0)
	id, _ := dict.Lookup("mid0")
	_ = cx.List(id) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cx.List(id)
	}
}

// BenchmarkCompressedCursorStream walks the densest list through the
// streaming cursor (budget 1 disables materialization) — the cold-scan cost
// of a long-tail list too big to be worth caching.
func BenchmarkCompressedCursorStream(b *testing.B) {
	coll, dict := synthCorpus(200, 12)
	cx := BuildCompressed(coll, 1)
	id, _ := dict.Lookup("common")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := cx.Cursor(id)
		for {
			if _, ok := cur.Next(); !ok {
				break
			}
		}
	}
}

// BenchmarkHeapCursorScan is BenchmarkCompressedCursorStream's baseline: the
// same walk over the heap index's materialized list.
func BenchmarkHeapCursorScan(b *testing.B) {
	coll, dict := synthCorpus(200, 12)
	ix := Build(coll)
	id, _ := dict.Lookup("common")
	var tid tokens.ID = id
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := ix.Cursor(tid)
		for {
			if _, ok := cur.Next(); !ok {
				break
			}
		}
	}
}
