package index

import (
	"sync"

	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

// DefaultPostingCacheBytes bounds the LRU of materialized posting lists a
// compressed index keeps when the caller passes no explicit budget.
const DefaultPostingCacheBytes = 64 << 20

// BuildCompressed indexes c like Build but stores every posting list as an
// adaptive container blob (array / packed / bitmap, whichever is smallest),
// trading decode work on first probe for a fraction of the heap footprint.
// cacheBytes bounds the LRU of materialized hot lists; <= 0 selects
// DefaultPostingCacheBytes.
func BuildCompressed(c *dataset.Collection, cacheBytes int64) *Inverted {
	ix := &Inverted{coll: c, compress: true, cache: newListCache(cacheBytes)}
	ix.adoptCompressed(Build(c).lists)
	return ix
}

// FromContainers wraps a loaded snapshot's container store as an index over
// c without decoding anything: a posting list is materialized only when a
// probe first touches it. When shared is true the store's bytes are
// borrowed (a memory-mapped snapshot); UnshareContainers must be called
// before the backing goes away. cacheBytes as in BuildCompressed.
//
// The element-base table is recomputed from c, which matches the table the
// containers were encoded with: the snapshot writer encodes dead slots as
// zero-element placeholders, exactly how they load back.
func FromContainers(c *dataset.Collection, cs *dataset.ContainerStore, shared bool, cacheBytes int64) *Inverted {
	return &Inverted{
		coll:     c,
		cs:       cs,
		csShared: shared,
		compress: true,
		eb:       dataset.ElemBase(c),
		cache:    newListCache(cacheBytes),
	}
}

// FromListsCompressed imports already-built posting lists (a legacy
// snapshot's, which persisted decoded lists) and re-encodes them into
// containers, for engines configured compressed whose snapshot predates the
// container format. lists as in FromLists; cacheBytes as in BuildCompressed.
func FromListsCompressed(c *dataset.Collection, lists [][]Posting, cacheBytes int64) *Inverted {
	for len(lists) < c.Dict.Size() {
		lists = append(lists, nil)
	}
	ix := &Inverted{coll: c, compress: true, cache: newListCache(cacheBytes)}
	ix.adoptCompressed(lists)
	return ix
}

// Compressed reports whether the index stores its lists as containers.
func (ix *Inverted) Compressed() bool { return ix.compress }

// SharesContainers reports whether the container store borrows its bytes
// from an external backing (a memory-mapped snapshot): the owner must call
// UnshareContainers before that backing is released.
func (ix *Inverted) SharesContainers() bool { return ix.cs != nil && ix.csShared }

// adoptCompressed replaces the index's storage with freshly encoded
// containers for lists, dropping any extras overlay and cache.
func (ix *Inverted) adoptCompressed(lists [][]Posting) {
	eb := dataset.ElemBase(ix.coll)
	b := dataset.NewContainerStoreBuilder(len(lists))
	for _, l := range lists {
		b.Add(l, eb)
	}
	ix.cs = b.Finish()
	ix.csShared = false
	ix.eb = eb
	ix.lists = nil
	ix.extras = nil
	ix.cache.reset()
}

// UnshareContainers copies a borrowed container store onto the heap so the
// index survives its backing (an unmapped snapshot). No-op when the store
// is already owned. Cached materializations are heap copies and need no
// treatment. Requires the caller's exclusive lock.
func (ix *Inverted) UnshareContainers() {
	if ix.cs != nil && ix.csShared {
		ix.cs = ix.cs.Clone()
		ix.csShared = false
	}
}

// materialize decodes token t's container (plus any extras overlay) into a
// heap list, serving repeats from the LRU. Decode errors — possible only
// with a corrupted snapshot, since built containers are canonical by
// construction — are counted and yield the valid prefix.
func (ix *Inverted) materialize(t int) []Posting {
	blob := ix.cs.Blob(t)
	var ex []Posting
	if t < len(ix.extras) {
		ex = ix.extras[t]
	}
	if len(blob) == 0 {
		return ex
	}
	if l, ok := ix.cache.get(t); ok {
		ix.cacheHits.Add(1)
		return l
	}
	ix.cacheMisses.Add(1)
	n, _ := dataset.ContainerLen(blob)
	pl := dataset.NewPostingList(blob, ix.eb)
	out, err := pl.Materialize(make([]Posting, 0, n+len(ex)))
	if err != nil {
		ix.decodeErrs.Add(1)
	}
	out = append(out, ex...)
	ix.cache.put(t, out)
	return out
}

// SetRangeInto returns the postings of token t in the given set, plus a
// scratch buffer for the caller to pass back next call. The result aliases
// index storage (heap list, cached decode, or extras) when possible —
// zero-copy — and otherwise is decoded into scratch, so a worker reusing
// its buffer probes compressed lists without steady-state allocation. The
// result is valid only until the next call with the same scratch.
func (ix *Inverted) SetRangeInto(t tokens.ID, set int32, scratch []Posting) (res, scratch2 []Posting) {
	if int(t) < len(ix.lists) {
		if l := ix.lists[t]; l != nil {
			return setRangeOf(l, set), scratch
		}
	}
	if ix.cs == nil {
		return nil, scratch
	}
	// Sets appended after the containers were built live only in extras.
	if int(t) < len(ix.extras) {
		if r := setRangeOf(ix.extras[t], set); len(r) > 0 {
			return r, scratch
		}
	}
	blob := ix.cs.Blob(int(t))
	if len(blob) == 0 {
		return nil, scratch
	}
	if l, ok := ix.cache.get(int(t)); ok {
		ix.cacheHits.Add(1)
		return setRangeOf(l, set), scratch
	}
	pl := dataset.NewPostingList(blob, ix.eb)
	out, err := pl.SetRange(set, scratch[:0])
	if err != nil {
		ix.decodeErrs.Add(1)
		return nil, out
	}
	return out, out
}

// Cursor iterates one posting list in (Set, Elem) order without requiring
// it to be materialized: heap and cached lists are walked as slices, and
// large cold containers are streamed directly off the compressed bytes.
// The zero Cursor is an exhausted cursor. Not safe for concurrent use;
// obtain with Inverted.Cursor.
type Cursor struct {
	slice  []Posting
	i      int
	stream bool
	it     dataset.PostingIter
	extras []Posting // streamed after the container's postings
	ix     *Inverted // decode-error accounting for the stream path
}

// Cursor returns a cursor over I[t]. Lists already materialized (heap form,
// tiny, or cache-hot) cost nothing; a cold container either materializes
// through the LRU (small enough to be worth keeping) or streams one posting
// at a time, so scanning a huge long-tail list never allocates its decoded
// form at all.
func (ix *Inverted) Cursor(t tokens.ID) Cursor {
	if int(t) < len(ix.lists) {
		if l := ix.lists[t]; l != nil {
			return Cursor{slice: l}
		}
	}
	if ix.cs == nil {
		return Cursor{}
	}
	blob := ix.cs.Blob(int(t))
	var ex []Posting
	if int(t) < len(ix.extras) {
		ex = ix.extras[t]
	}
	if len(blob) == 0 {
		return Cursor{slice: ex}
	}
	if l, ok := ix.cache.get(int(t)); ok {
		ix.cacheHits.Add(1)
		return Cursor{slice: l}
	}
	// Cold. Materialize mid-size lists (repeat probes hit the cache);
	// stream anything that would claim an outsized share of the budget.
	n, ok := dataset.ContainerLen(blob)
	if !ok {
		ix.decodeErrs.Add(1)
		return Cursor{slice: ex}
	}
	if int64(n)*postingBytes <= ix.cache.budget/4 {
		return Cursor{slice: ix.materialize(int(t))}
	}
	pl := dataset.NewPostingList(blob, ix.eb)
	return Cursor{stream: true, it: pl.Iter(), extras: ex, ix: ix}
}

// Next returns the next posting, or ok=false when the list is exhausted.
// A decode error on the stream path truncates the iteration (counted in
// the index's DecodeErrors stat).
func (c *Cursor) Next() (Posting, bool) {
	if !c.stream {
		if c.i >= len(c.slice) {
			return Posting{}, false
		}
		p := c.slice[c.i]
		c.i++
		return p, true
	}
	p, ok := c.it.Next()
	if ok {
		return p, true
	}
	if c.it.Err() != nil {
		c.ix.decodeErrs.Add(1)
	}
	// Container exhausted: fall through to the extras overlay.
	c.stream = false
	c.slice, c.i = c.extras, 0
	return c.Next()
}

// PostingProvider implementation (dataset.SaveSnapshot's Source): the
// snapshot writer pulls lists straight from the index, reusing encoded
// containers verbatim when the image's element-id space matches.

// EncodedContainer returns token t's container blob when it is exact —
// encoded, with no extras overlay and no materialized override — so the
// snapshot writer can copy it without a decode/encode round-trip. The
// second result is false when the caller must fall back to AppendPostings.
func (ix *Inverted) EncodedContainer(t int) ([]byte, bool) {
	if ix.cs == nil {
		return nil, false
	}
	if t < len(ix.lists) && ix.lists[t] != nil {
		return nil, false
	}
	if t < len(ix.extras) && len(ix.extras[t]) > 0 {
		return nil, false
	}
	if t >= ix.cs.NumTokens() {
		return nil, true // token never indexed: exactly the empty list
	}
	return ix.cs.Blob(t), true
}

// AppendPostings appends I[t] to dst, materializing if needed.
func (ix *Inverted) AppendPostings(t int, dst []Posting) []Posting {
	return append(dst, ix.List(tokens.ID(t))...)
}

// StorageStats describes how the index's postings are stored right now.
type StorageStats struct {
	// Postings is the logical posting count across all lists.
	Postings int
	// HeapBytes approximates materialized posting bytes outside the cache:
	// heap-form lists and the extras overlay.
	HeapBytes int64
	// EncodedBytes is the compressed container store's size (0 for heap
	// form).
	EncodedBytes int64
	// ResidentBytes is the LRU's current holding of decoded hot lists.
	ResidentBytes int64
	// CacheHits / CacheMisses / DecodeErrors count cache probes of
	// compressed lists and container decode failures since build/load.
	CacheHits, CacheMisses, DecodeErrors int64
	// Compressed reports the index form.
	Compressed bool
}

// postingBytes is the heap cost of one materialized posting.
const postingBytes = 8

// Storage returns current posting-storage statistics. O(vocabulary) for
// the posting count; intended for stats endpoints, not hot paths.
func (ix *Inverted) Storage() StorageStats {
	st := StorageStats{
		Postings:     ix.TotalPostings(),
		EncodedBytes: ix.cs.EncodedBytes(),
		CacheHits:    ix.cacheHits.Load(),
		CacheMisses:  ix.cacheMisses.Load(),
		DecodeErrors: ix.decodeErrs.Load(),
		Compressed:   ix.compress,
	}
	for _, l := range ix.lists {
		st.HeapBytes += int64(cap(l)) * postingBytes
	}
	for _, l := range ix.extras {
		st.HeapBytes += int64(cap(l)) * postingBytes
	}
	if ix.cache != nil {
		st.ResidentBytes = ix.cache.bytes()
	}
	return st
}

// listCache is a mutex-guarded LRU of materialized posting lists keyed by
// token id, bounded by an approximate byte budget. Concurrent readers of a
// compressed index synchronize only here.
type listCache struct {
	mu      sync.Mutex
	budget  int64
	size    int64
	entries map[int]*cacheEntry
	// Doubly-linked LRU ring through sentinel root: root.next is
	// most-recent, root.prev least-recent.
	root cacheEntry
}

type cacheEntry struct {
	t          int
	list       []Posting
	prev, next *cacheEntry
}

func newListCache(budget int64) *listCache {
	if budget <= 0 {
		budget = DefaultPostingCacheBytes
	}
	c := &listCache{budget: budget, entries: make(map[int]*cacheEntry)}
	c.root.prev, c.root.next = &c.root, &c.root
	return c
}

// entryCost approximates an entry's heap footprint: postings plus fixed
// bookkeeping overhead.
func entryCost(list []Posting) int64 { return int64(cap(list))*postingBytes + 64 }

func (c *listCache) get(t int) ([]Posting, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[t]
	if !ok {
		return nil, false
	}
	c.unlink(e)
	c.pushFront(e)
	return e.list, true
}

func (c *listCache) put(t int, list []Posting) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[t]; ok {
		// Concurrent miss on the same token: keep the incumbent.
		c.unlink(e)
		c.pushFront(e)
		return
	}
	e := &cacheEntry{t: t, list: list}
	c.entries[t] = e
	c.pushFront(e)
	c.size += entryCost(list)
	// Evict cold entries past the budget, but always retain the newest:
	// an over-budget single list stays until something displaces it.
	for c.size > c.budget && len(c.entries) > 1 {
		old := c.root.prev
		c.unlink(old)
		delete(c.entries, old.t)
		c.size -= entryCost(old.list)
	}
}

func (c *listCache) remove(t int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[t]; ok {
		c.unlink(e)
		delete(c.entries, t)
		c.size -= entryCost(e.list)
	}
}

func (c *listCache) reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[int]*cacheEntry)
	c.root.prev, c.root.next = &c.root, &c.root
	c.size = 0
}

func (c *listCache) bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

func (c *listCache) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *listCache) pushFront(e *cacheEntry) {
	e.prev = &c.root
	e.next = c.root.next
	e.prev.next = e
	e.next.prev = e
}
