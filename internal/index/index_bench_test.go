package index

import (
	"fmt"
	"math/rand"
	"testing"

	"silkmoth/internal/dataset"
	"silkmoth/internal/tokens"
)

func benchCollection(numSets int) *dataset.Collection {
	rng := rand.New(rand.NewSource(4))
	var raws []dataset.RawSet
	for i := 0; i < numSets; i++ {
		elems := make([]string, 10)
		for j := range elems {
			s := ""
			for k := 0; k < 5; k++ {
				if k > 0 {
					s += " "
				}
				s += fmt.Sprintf("w%d", rng.Intn(3000))
			}
			elems[j] = s
		}
		raws = append(raws, dataset.RawSet{Name: fmt.Sprintf("S%d", i), Elements: elems})
	}
	return dataset.BuildWord(tokens.NewDictionary(), raws)
}

// BenchmarkBuild measures inverted index construction, the fixed setup cost
// discovery timings include (§8.2).
func BenchmarkBuild(b *testing.B) {
	coll := benchCollection(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(coll)
	}
}

// BenchmarkSetRange measures the binary-search range lookup the NN search
// leans on (paper footnote 7).
func BenchmarkSetRange(b *testing.B) {
	coll := benchCollection(5000)
	ix := Build(coll)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SetRange(tokens.ID(i%ix.NumTokens()), int32(i%len(coll.Sets)))
	}
}
