package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"silkmoth/internal/binenc"
	"silkmoth/internal/dataset"
)

// Op identifies the public mutation a WAL record replays.
type Op uint8

const (
	// OpAdd appends Sets at the next collection indices.
	OpAdd Op = 1
	// OpDelete tombstones set ID.
	OpDelete Op = 2
	// OpUpdate appends Sets[0] at the next index and tombstones set ID.
	OpUpdate Op = 3
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Record is one logged mutation. Replaying records in log order over the
// snapshot they follow reproduces the engine's id assignment exactly:
// Add and Update always append at len(collection), so the ids a replay
// allocates equal the ids the original process allocated.
type Record struct {
	Op Op
	// ID is the target slot of OpDelete and OpUpdate.
	ID int
	// Sets are the raw sets of OpAdd (the whole batch) or OpUpdate (one).
	Sets []dataset.RawSet
}

// Record framing: a fixed header of payload length and payload CRC32
// (IEEE), both little-endian uint32, followed by the payload. A record is
// valid only when the full payload is present and its checksum matches;
// anything else is a torn tail and replay stops in front of it.
const recordHeaderSize = 8

// maxRecordPayload caps the declared payload length a decoder will accept.
// It exists to bound corruption damage, not capacity: a flipped bit in the
// length field must not turn into a multi-gigabyte read.
const maxRecordPayload = 1 << 30

// ErrTorn reports an incomplete or checksum-failing record at the end of a
// log — the expected shape after a crash mid-append.
var ErrTorn = errors.New("wal: torn record")

// AppendRecord appends rec's encoded frame to buf and returns the result.
func AppendRecord(buf []byte, rec *Record) []byte {
	var w binenc.Writer
	w.Byte(byte(rec.Op))
	switch rec.Op {
	case OpAdd:
		w.Uint(len(rec.Sets))
		for i := range rec.Sets {
			appendRawSet(&w, &rec.Sets[i])
		}
	case OpDelete:
		w.Uint(rec.ID)
	case OpUpdate:
		w.Uint(rec.ID)
		appendRawSet(&w, &rec.Sets[0])
	}
	payload := w.Bytes()
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

func appendRawSet(w *binenc.Writer, rs *dataset.RawSet) {
	w.String(rs.Name)
	w.Uint(len(rs.Elements))
	for _, e := range rs.Elements {
		w.String(e)
	}
}

// DecodeRecord decodes the first record frame in buf, returning the record
// and the number of bytes consumed. A header declaring more bytes than buf
// holds, an over-cap length, or a checksum mismatch all return ErrTorn —
// the caller treats buf's remainder as the log's torn tail. A present,
// checksummed payload that fails structural decoding returns a non-torn
// error: that is corruption in the middle of synced data, not a tail.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < recordHeaderSize {
		return Record{}, 0, ErrTorn
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	sum := binary.LittleEndian.Uint32(buf[4:8])
	if n > maxRecordPayload || int(n) > len(buf)-recordHeaderSize {
		return Record{}, 0, ErrTorn
	}
	payload := buf[recordHeaderSize : recordHeaderSize+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, 0, ErrTorn
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, recordHeaderSize + int(n), nil
}

func decodePayload(payload []byte) (Record, error) {
	r := binenc.NewReader(payload)
	rec := Record{Op: Op(r.Byte())}
	switch rec.Op {
	case OpAdd:
		n := r.Count(2) // each raw set costs ≥ 2 bytes (name len + count)
		if r.Err() != nil {
			break
		}
		rec.Sets = make([]dataset.RawSet, 0, n)
		for i := 0; i < n; i++ {
			rs, ok := decodeRawSet(r)
			if !ok {
				break
			}
			rec.Sets = append(rec.Sets, rs)
		}
	case OpDelete:
		rec.ID = r.Uint()
	case OpUpdate:
		rec.ID = r.Uint()
		if rs, ok := decodeRawSet(r); ok {
			rec.Sets = []dataset.RawSet{rs}
		}
	default:
		return Record{}, fmt.Errorf("wal: unknown record op %d", rec.Op)
	}
	if err := r.Err(); err != nil {
		return Record{}, fmt.Errorf("wal: decoding %s record: %w", rec.Op, err)
	}
	if r.Remaining() != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing bytes after %s record", r.Remaining(), rec.Op)
	}
	return rec, nil
}

func decodeRawSet(r *binenc.Reader) (dataset.RawSet, bool) {
	rs := dataset.RawSet{Name: r.String()}
	n := r.Count(1)
	if r.Err() != nil {
		return rs, false
	}
	rs.Elements = make([]string, 0, n)
	for i := 0; i < n; i++ {
		rs.Elements = append(rs.Elements, r.String())
		if r.Err() != nil {
			return rs, false
		}
	}
	return rs, true
}
