package wal

import (
	"errors"
	"fmt"
	"io"
	"testing"
)

// openDir opens a store over a real temp directory.
func openDir(t *testing.T, dir string) *Store {
	t.Helper()
	fsys, err := DirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(fsys)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// writeString is a snapshot writer that emits a fixed payload.
func writeString(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

// readAll is a snapshot loader capturing the image into dst.
func readAll(dst *string) func(io.Reader) error {
	return func(r io.Reader) error {
		b, err := io.ReadAll(r)
		*dst = string(b)
		return err
	}
}

func TestStoreEmptyRecovery(t *testing.T) {
	st := openDir(t, t.TempDir())
	loaded, err := st.Recover(func(io.Reader) error { t.Fatal("load on empty store"); return nil })
	if err != nil || loaded {
		t.Fatalf("Recover on empty store = (%v, %v), want (false, nil)", loaded, err)
	}
	n, torn, err := st.ReplayWAL(func(*Record) error { t.Fatal("apply on empty store"); return nil })
	if n != 0 || torn || err != nil {
		t.Fatalf("ReplayWAL on empty store = (%d, %v, %v)", n, torn, err)
	}
	if err := st.Begin(); err == nil {
		t.Fatal("Begin on an empty store should fail: there is no pair to append to")
	}
}

func TestStoreSnapshotAppendRecover(t *testing.T) {
	dir := t.TempDir()
	st := openDir(t, dir)
	if err := st.WriteSnapshot(writeString("image-1")); err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for i := range recs {
		if err := st.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Appended(); got != int64(len(recs)) {
		t.Fatalf("Appended = %d, want %d", got, len(recs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the snapshot loads and the log replays in order.
	st2 := openDir(t, dir)
	var img string
	loaded, err := st2.Recover(readAll(&img))
	if err != nil || !loaded {
		t.Fatalf("Recover = (%v, %v), want (true, nil)", loaded, err)
	}
	if img != "image-1" {
		t.Fatalf("recovered image %q", img)
	}
	var ids []int
	n, torn, err := st2.ReplayWAL(func(r *Record) error { ids = append(ids, int(r.Op)); return nil })
	if err != nil || torn {
		t.Fatalf("ReplayWAL = (%d, %v, %v)", n, torn, err)
	}
	if n != len(recs) {
		t.Fatalf("replayed %d records, want %d", n, len(recs))
	}
	// Appends continue on the recovered log.
	if err := st2.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Append(&Record{Op: OpDelete, ID: 9}); err != nil {
		t.Fatal(err)
	}

	st3 := openDir(t, dir)
	if _, err := st3.Recover(readAll(&img)); err != nil {
		t.Fatal(err)
	}
	n, _, err = st3.ReplayWAL(func(*Record) error { return nil })
	if err != nil || n != len(recs)+1 {
		t.Fatalf("after continued append: replayed %d (err %v), want %d", n, err, len(recs)+1)
	}
}

// A new snapshot rotates the pair: the old log's records are subsumed and
// replay after recovery sees only post-rotation appends.
func TestStoreRotation(t *testing.T) {
	dir := t.TempDir()
	st := openDir(t, dir)
	if err := st.WriteSnapshot(writeString("v1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(&Record{Op: OpDelete, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(writeString("v2")); err != nil {
		t.Fatal(err)
	}
	if got := st.Snapshots(); got != 2 {
		t.Fatalf("Snapshots = %d, want 2", got)
	}
	if err := st.Append(&Record{Op: OpDelete, ID: 2}); err != nil {
		t.Fatal(err)
	}

	st2 := openDir(t, dir)
	var img string
	if loaded, err := st2.Recover(readAll(&img)); err != nil || !loaded {
		t.Fatalf("Recover = (%v, %v)", loaded, err)
	}
	if img != "v2" {
		t.Fatalf("recovered %q, want the newest snapshot", img)
	}
	var ids []int
	n, torn, err := st2.ReplayWAL(func(r *Record) error { ids = append(ids, r.ID); return nil })
	if err != nil || torn || n != 1 || ids[0] != 2 {
		t.Fatalf("replay after rotation = (%d, %v, %v), ids %v; want just the post-rotation record", n, torn, err, ids)
	}
}

// A torn tail (truncated final record) is discarded, reported, and
// physically truncated so the next generation of appends extends a valid
// log.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	st := openDir(t, dir)
	if err := st.WriteSnapshot(writeString("img")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append(&Record{Op: OpDelete, ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Tear the last record: chop bytes off the log's end.
	fsys, _ := DirFS(dir)
	names, err := fsys.List()
	if err != nil {
		t.Fatal(err)
	}
	var logFile string
	for _, n := range names {
		if _, ok := parseSeq(n, "wal-", ".log"); ok {
			logFile = n
		}
	}
	rc, err := fsys.Open(logFile)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := io.ReadAll(rc)
	rc.Close()
	if err := fsys.Truncate(logFile, int64(len(all)-3)); err != nil {
		t.Fatal(err)
	}

	st2 := openDir(t, dir)
	var img string
	if _, err := st2.Recover(readAll(&img)); err != nil {
		t.Fatal(err)
	}
	n, torn, err := st2.ReplayWAL(func(*Record) error { return nil })
	if err != nil || !torn || n != 2 {
		t.Fatalf("torn replay = (%d, %v, %v), want (2, true, nil)", n, torn, err)
	}
	// The torn suffix is gone: appends now extend a valid log.
	if err := st2.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Append(&Record{Op: OpDelete, ID: 99}); err != nil {
		t.Fatal(err)
	}
	st3 := openDir(t, dir)
	if _, err := st3.Recover(readAll(&img)); err != nil {
		t.Fatal(err)
	}
	var ids []int
	n, torn, err = st3.ReplayWAL(func(r *Record) error { ids = append(ids, r.ID); return nil })
	if err != nil || torn || n != 3 {
		t.Fatalf("replay after truncation+append = (%d, %v, %v) ids %v", n, torn, err, ids)
	}
	if ids[2] != 99 {
		t.Fatalf("ids = %v, want the new record after the surviving prefix", ids)
	}
}

// Mid-log corruption — a record damaged before the tail — must abort
// replay with a hard error, never silently skip.
func TestStoreMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	st := openDir(t, dir)
	if err := st.WriteSnapshot(writeString("img")); err != nil {
		t.Fatal(err)
	}
	// An invalid op with a valid checksum, followed by a valid record.
	frame := AppendRecord(nil, &Record{Op: Op(77), ID: 1})
	frame = AppendRecord(frame, &Record{Op: OpDelete, ID: 2})
	f, err := st.fsys.OpenAppend(logName(st.Seq()))
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame)
	f.Sync()
	f.Close()

	st2 := openDir(t, dir)
	var img string
	if _, err := st2.Recover(readAll(&img)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st2.ReplayWAL(func(*Record) error { return nil }); err == nil {
		t.Fatal("mid-log corruption should abort replay with an error")
	}
}

// An apply error aborts replay and reports which record failed.
func TestStoreApplyError(t *testing.T) {
	dir := t.TempDir()
	st := openDir(t, dir)
	if err := st.WriteSnapshot(writeString("img")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := st.Append(&Record{Op: OpDelete, ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	st2 := openDir(t, dir)
	var img string
	if _, err := st2.Recover(readAll(&img)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	n, _, err := st2.ReplayWAL(func(r *Record) error {
		if r.ID == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("apply error: replayed %d, err %v", n, err)
	}
}

// Recovery falls back to an older snapshot when the newest fails to load,
// and errors only when none loads.
func TestStoreRecoverFallback(t *testing.T) {
	dir := t.TempDir()
	st := openDir(t, dir)
	if err := st.WriteSnapshot(writeString("old")); err != nil {
		t.Fatal(err)
	}
	// Plant a newer, unloadable snapshot alongside (rotation normally
	// removes the old pair; writing the file directly keeps both).
	fsys, _ := DirFS(dir)
	f, err := fsys.Create(snapName(st.Seq() + 1))
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, "garbage")
	f.Sync()
	f.Close()
	fsys.SyncDir()

	st2 := openDir(t, dir)
	var img string
	loaded, err := st2.Recover(func(r io.Reader) error {
		b, _ := io.ReadAll(r)
		if string(b) != "old" {
			return fmt.Errorf("unloadable image %q", b)
		}
		img = string(b)
		return nil
	})
	if err != nil || !loaded || img != "old" {
		t.Fatalf("fallback Recover = (%v, %v), img %q", loaded, err, img)
	}

	st3 := openDir(t, dir)
	if _, err := st3.Recover(func(io.Reader) error { return errors.New("nope") }); err == nil {
		t.Fatal("Recover with no loadable snapshot should error")
	}
}

// After Close the store refuses writes; a second Close is a no-op.
func TestStoreClosed(t *testing.T) {
	st := openDir(t, t.TempDir())
	if err := st.WriteSnapshot(writeString("img")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(&Record{Op: OpDelete, ID: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := st.WriteSnapshot(writeString("img2")); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteSnapshot after Close = %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}
