package wal

import (
	"errors"
	"reflect"
	"testing"

	"silkmoth/internal/dataset"
)

func testRecords() []Record {
	return []Record{
		{Op: OpAdd, Sets: []dataset.RawSet{
			{Name: "a", Elements: []string{"x y", "z"}},
			{Name: "", Elements: []string{""}},
		}},
		{Op: OpAdd, Sets: nil},
		{Op: OpDelete, ID: 0},
		{Op: OpDelete, ID: 1 << 20},
		{Op: OpUpdate, ID: 7, Sets: []dataset.RawSet{{Name: "n", Elements: []string{"e1", "e2"}}}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	recs := testRecords()
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	off := 0
	for i := range recs {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want := recs[i]
		// Encoding does not distinguish nil from empty slices.
		if len(want.Sets) == 0 {
			want.Sets = nil
		}
		if len(got.Sets) == 0 {
			got.Sets = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

// Every strict prefix of a valid frame must decode as a torn tail, not an
// error and not a record — that is the contract replay's stop condition
// relies on after a crash mid-append.
func TestRecordTornPrefixes(t *testing.T) {
	rec := Record{Op: OpAdd, Sets: []dataset.RawSet{{Name: "abc", Elements: []string{"d", "e"}}}}
	frame := AppendRecord(nil, &rec)
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeRecord(frame[:cut]); !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrTorn", cut, len(frame), err)
		}
	}
}

// A complete frame whose payload byte was flipped fails the checksum and is
// torn; flipping a payload byte while fixing the checksum is structural
// corruption and must be a hard (non-torn) error when it breaks decoding.
func TestRecordCorruption(t *testing.T) {
	rec := Record{Op: OpDelete, ID: 42}
	frame := AppendRecord(nil, &rec)
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0xFF
	if _, _, err := DecodeRecord(flipped); !errors.Is(err, ErrTorn) {
		t.Fatalf("checksum mismatch: got %v, want ErrTorn", err)
	}

	// Unknown op with a valid checksum: mid-log corruption, hard error.
	bad := AppendRecord(nil, &Record{Op: Op(99), ID: 1})
	if _, _, err := DecodeRecord(bad); err == nil || errors.Is(err, ErrTorn) {
		t.Fatalf("unknown op: got %v, want non-torn error", err)
	}
}

// A frame declaring a huge payload length must be treated as torn without
// attempting to allocate or read it.
func TestRecordLengthCap(t *testing.T) {
	frame := make([]byte, recordHeaderSize)
	frame[0], frame[1], frame[2], frame[3] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, _, err := DecodeRecord(frame); !errors.Is(err, ErrTorn) {
		t.Fatalf("over-cap length: got %v, want ErrTorn", err)
	}
}
